(* Tests for the fault-tolerant multi-tenant farm controller: tenant
   workload generation, availability accounting, determinism, fault
   churn and the strict-SLO failover contract. *)

open Tapa_cs_device
open Tapa_cs_farm
module Fault = Tapa_cs_network.Fault

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let fl = Alcotest.float 1e-9

let farm_cluster n =
  Cluster.heterogeneous ~boards_per_node:4 [ Board.u55c; Board.u250; Board.stratix10 ] n

let small_config =
  { Farm.default_config with Farm.horizon_s = 300.0; max_retries = 2; backoff_s = 5.0 }

let churn_timeline =
  Fault.timeline
    [
      (40.0, Fault.Device_down 3);
      (90.0, Fault.Device_up 3);
      (120.0, Fault.Loss_rate 0.02);
      (180.0, Fault.Loss_rate 0.0);
      (200.0, Fault.Link_down (0, 1));
      (250.0, Fault.Link_up (0, 1));
    ]

let run_small ?pool ?(seed = 3) ?(tenants = 6) ?(timeline = churn_timeline) () =
  let workload = Tenant.workload ~seed ~tenants () in
  Farm.run ?pool ~config:{ small_config with Farm.seed } ~cluster:(farm_cluster 16) ~timeline
    workload

(* ------------------------------------------------------------------ *)
(* Tenant workloads                                                    *)
(* ------------------------------------------------------------------ *)

let test_workload_deterministic () =
  let w1 = Tenant.workload ~seed:7 ~tenants:10 () in
  let w2 = Tenant.workload ~seed:7 ~tenants:10 () in
  check int "10 tenants" 10 (List.length w1);
  List.iter2
    (fun (a : Tenant.t) (b : Tenant.t) ->
      check Alcotest.string "same name" a.Tenant.name b.Tenant.name;
      check fl "same arrival" a.Tenant.arrival_s b.Tenant.arrival_s;
      check bool "same slo" true (a.Tenant.slo = b.Tenant.slo))
    w1 w2;
  let w3 = Tenant.workload ~seed:8 ~tenants:10 () in
  check bool "different seed diverges" true
    (List.exists2
       (fun (a : Tenant.t) (b : Tenant.t) -> a.Tenant.arrival_s <> b.Tenant.arrival_s)
       w1 w3);
  (* strict_every paces the SLO classes; arrivals never decrease. *)
  let strict =
    List.filter (fun (t : Tenant.t) -> t.Tenant.slo = Tenant.Strict) w1 |> List.length
  in
  check int "every 3rd tenant strict" 4 strict;
  let rec monotone = function
    | (a : Tenant.t) :: (b : Tenant.t) :: rest ->
      a.Tenant.arrival_s <= b.Tenant.arrival_s && monotone (b :: rest)
    | _ -> true
  in
  check bool "arrivals monotone" true (monotone w1)

(* ------------------------------------------------------------------ *)
(* Availability accounting                                             *)
(* ------------------------------------------------------------------ *)

let test_accounting_sums_to_tenant_time () =
  let stats = run_small () in
  (* Per tenant: healthy + degraded + down = horizon - arrival, exactly. *)
  List.iter
    (fun (r : Farm.tenant_report) ->
      let expected = small_config.Farm.horizon_s -. r.Farm.tenant.Tenant.arrival_s in
      check (Alcotest.float 1e-6)
        (r.Farm.tenant.Tenant.name ^ ": buckets sum to lifetime")
        expected
        (r.Farm.healthy_s +. r.Farm.degraded_s +. r.Farm.down_s))
    stats.Farm.tenants;
  let lifetimes =
    List.fold_left
      (fun acc (r : Farm.tenant_report) ->
        acc +. (small_config.Farm.horizon_s -. r.Farm.tenant.Tenant.arrival_s))
      0.0 stats.Farm.tenants
  in
  check (Alcotest.float 1e-6) "total tenant-time" lifetimes (Farm.total_tenant_s stats)

let test_fault_reports_and_recovery () =
  let stats = run_small () in
  (* The two down-type events (device-down, link-down) produce fault
     reports; recoveries and loss episodes are visible in the sample
     timeline instead. *)
  check int "two fault reports" 2 (List.length stats.Farm.faults);
  let rec ordered = function
    | (a : Farm.fault_report) :: (b : Farm.fault_report) :: rest ->
      a.Farm.at_s <= b.Farm.at_s && ordered (b :: rest)
    | _ -> true
  in
  check bool "reports in time order" true (ordered stats.Farm.faults);
  (* Down-type events carry a TTR once everyone displaced recovered. *)
  List.iter
    (fun (f : Farm.fault_report) ->
      match f.Farm.ttr_s with
      | Some t -> check bool (f.Farm.event ^ ": ttr non-negative") true (t >= 0.0)
      | None ->
        check bool (f.Farm.event ^ ": unresolved only with displacement") true
          (f.Farm.displaced <> []))
    stats.Farm.faults;
  (* The loss episode closes before the horizon, so nobody ends degraded
     by ambient loss alone. *)
  check bool "mean ttr defined" true (Farm.mean_ttr_s stats <> None)

let test_device_ownership_exclusive () =
  let stats = run_small () in
  (* No board is owned by two tenants at the horizon. *)
  let all = List.concat_map (fun (r : Farm.tenant_report) -> r.Farm.devices) stats.Farm.tenants in
  check int "device ownership exclusive" (List.length all)
    (List.length (List.sort_uniq compare all));
  (* Every placed tenant owns at least one in-range board. *)
  List.iter
    (fun (r : Farm.tenant_report) ->
      if r.Farm.final_health <> Farm.Down then begin
        check bool (r.Farm.tenant.Tenant.name ^ ": owns boards") true (r.Farm.devices <> []);
        check bool (r.Farm.tenant.Tenant.name ^ ": boards in range") true
          (List.for_all (fun d -> d >= 0 && d < stats.Farm.boards) r.Farm.devices)
      end)
    stats.Farm.tenants

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let test_run_deterministic () =
  let a = run_small () and b = run_small () in
  check Alcotest.string "identical stats json across runs" (Farm.stats_json a)
    (Farm.stats_json b)

let test_jobs_independent () =
  if Tapa_cs_util.Pool.default_jobs () < 2 then ()
  else begin
    let seq = run_small () in
    let pool = Tapa_cs_util.Pool.create ~domains:2 () in
    Fun.protect ~finally:(fun () -> Tapa_cs_util.Pool.shutdown pool) @@ fun () ->
    let par = run_small ~pool () in
    check Alcotest.string "pool does not change the stats" (Farm.stats_json seq)
      (Farm.stats_json par)
  end

(* ------------------------------------------------------------------ *)
(* Fault churn and SLO semantics                                       *)
(* ------------------------------------------------------------------ *)

let test_strict_tenants_never_silently_degraded () =
  let stats = run_small ~tenants:8 () in
  List.iter
    (fun (r : Farm.tenant_report) ->
      if r.Farm.tenant.Tenant.slo = Tenant.Strict then
        match r.Farm.final_health with
        | Farm.Healthy -> ()
        | Farm.Down -> check bool "down only out of budget or waiting" true true
        | Farm.Degraded ->
          Alcotest.failf "strict tenant %s ended silently degraded" r.Farm.tenant.Tenant.name)
    stats.Farm.tenants

let test_displacement_and_failover () =
  (* Kill a board for good mid-run: tenants on it must re-place (failover)
     or end explicitly down — never keep the dead board. *)
  let timeline = Fault.timeline [ (60.0, Fault.Device_down 0); (60.0, Fault.Device_down 1) ] in
  let stats = run_small ~tenants:8 ~timeline () in
  List.iter
    (fun (r : Farm.tenant_report) ->
      check bool
        (r.Farm.tenant.Tenant.name ^ ": no dead board owned")
        true
        (not (List.mem 0 r.Farm.devices || List.mem 1 r.Farm.devices)))
    stats.Farm.tenants;
  (* Displaced tenants show up in the fault report of the down event. *)
  let displaced =
    List.concat_map (fun (f : Farm.fault_report) -> f.Farm.displaced) stats.Farm.faults
  in
  List.iter
    (fun id ->
      let r = List.find (fun (r : Farm.tenant_report) -> r.Farm.tenant.Tenant.id = id) stats.Farm.tenants in
      check bool
        (r.Farm.tenant.Tenant.name ^ ": displaced tenant re-placed, failed over or down")
        true
        (r.Farm.failed_over || r.Farm.replacements > 0 || r.Farm.final_health = Farm.Down))
    (List.sort_uniq compare displaced)

let test_retry_budget_exhaustion () =
  (* One board left alive cannot host everyone: some tenants must burn
     their retry budget and be explicitly reported down, no exception. *)
  let timeline =
    Fault.timeline (List.init 15 (fun d -> (50.0, Fault.Device_down (d + 1))))
  in
  let stats = run_small ~tenants:8 ~timeline () in
  let downed =
    List.filter (fun (r : Farm.tenant_report) -> r.Farm.final_health = Farm.Down) stats.Farm.tenants
  in
  check bool "some tenants explicitly down" true (downed <> []);
  List.iter
    (fun (r : Farm.tenant_report) ->
      check bool (r.Farm.tenant.Tenant.name ^ ": down tenants own nothing") true
        (r.Farm.devices = []))
    downed;
  (* Out-of-budget tenants are flagged; accounting still balances. *)
  check bool "give-ups recorded" true
    (List.exists (fun (r : Farm.tenant_report) -> r.Farm.gave_up) downed);
  let sum =
    List.fold_left
      (fun acc (r : Farm.tenant_report) -> acc +. r.Farm.healthy_s +. r.Farm.degraded_s +. r.Farm.down_s)
      0.0 stats.Farm.tenants
  in
  check (Alcotest.float 1e-6) "accounting survives give-ups" sum (Farm.total_tenant_s stats)

let test_loss_episode_degrades_spanning_tenants () =
  (* An ambient-loss episode only touches tenants with cut traffic; the
     samples inside the episode reflect it and it clears afterwards. *)
  let timeline = Fault.timeline [ (100.0, Fault.Loss_rate 0.05); (200.0, Fault.Loss_rate 0.0) ] in
  let stats = run_small ~tenants:6 ~timeline () in
  (* Loss episodes displace nobody, so they are not fault reports; they
     appear as processed instants in the sample timeline. *)
  check int "no displacement faults" 0 (List.length stats.Farm.faults);
  check bool "episode instants sampled" true
    (List.exists (fun (s : Farm.sample) -> s.Farm.t_s = 100.0) stats.Farm.timeline
    && List.exists (fun (s : Farm.sample) -> s.Farm.t_s = 200.0) stats.Farm.timeline);
  (* After the episode ends nobody is degraded by loss alone. *)
  List.iter
    (fun (r : Farm.tenant_report) ->
      if r.Farm.final_health = Farm.Degraded then
        check bool (r.Farm.tenant.Tenant.name ^ ": degradation has a cause") true
          (r.Farm.gave_up || r.Farm.degraded_s > 0.0))
    stats.Farm.tenants

let test_stats_json_shape () =
  let stats = run_small ~tenants:4 () in
  let json = Farm.stats_json stats in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and hl = String.length json in
        let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
        go 0
      in
      check bool ("json carries " ^ needle) true found)
    [
      {|"boards":16|}; {|"seed":3|}; {|"tenants":[|}; {|"faults":[|}; {|"timeline":[|};
      {|"final_health"|}; {|"utilization"|}; {|"fragmentation"|}; {|"max_link_sharers"|};
      {|"ttr_s"|}; {|"reused_placements"|};
    ];
  (* Samples cover every processed instant in time order. *)
  let rec ordered = function
    | (a : Farm.sample) :: (b : Farm.sample) :: rest -> a.Farm.t_s <= b.Farm.t_s && ordered (b :: rest)
    | _ -> true
  in
  check bool "samples in time order" true (ordered stats.Farm.timeline);
  check bool "samples exist" true (stats.Farm.timeline <> [])

let () =
  Alcotest.run "farm"
    [
      ("workload", [ Alcotest.test_case "deterministic generation" `Quick test_workload_deterministic ]);
      ( "accounting",
        [
          Alcotest.test_case "buckets sum to tenant-time" `Quick test_accounting_sums_to_tenant_time;
          Alcotest.test_case "fault reports and TTR" `Quick test_fault_reports_and_recovery;
          Alcotest.test_case "exclusive device ownership" `Quick test_device_ownership_exclusive;
          Alcotest.test_case "stats json shape" `Quick test_stats_json_shape;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical across runs" `Quick test_run_deterministic;
          Alcotest.test_case "identical across jobs" `Quick test_jobs_independent;
        ] );
      ( "churn",
        [
          Alcotest.test_case "strict never silently degraded" `Quick
            test_strict_tenants_never_silently_degraded;
          Alcotest.test_case "displacement and failover" `Quick test_displacement_and_failover;
          Alcotest.test_case "retry budget exhaustion" `Quick test_retry_budget_exhaustion;
          Alcotest.test_case "loss episodes" `Quick test_loss_episode_degrades_spanning_tenants;
        ] );
    ]
