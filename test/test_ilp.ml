(* Tests for the exact LP/ILP solver: linear expressions, simplex against
   known optima, branch-and-bound cross-checked with brute force. *)

open Tapa_cs_util
open Tapa_cs_ilp

let check = Alcotest.check
let bool = Alcotest.bool
let r = Rat.of_int
let ri = Rat.of_ints

let rat = Alcotest.testable (fun fmt x -> Format.pp_print_string fmt (Rat.to_string x)) Rat.equal

(* ------------------------------------------------------------------ *)
(* Linear                                                              *)
(* ------------------------------------------------------------------ *)

let test_linear_combination () =
  let e = Linear.of_terms ~const:(r 3) [ (0, r 2); (1, r (-1)) ] in
  check rat "coeff 0" (r 2) (Linear.coeff e 0);
  check rat "coeff 1" (r (-1)) (Linear.coeff e 1);
  check rat "coeff absent" Rat.zero (Linear.coeff e 7);
  check rat "const" (r 3) (Linear.const e);
  let v = function 0 -> r 5 | 1 -> r 2 | _ -> Rat.zero in
  check rat "eval" (r 11) (Linear.eval e v)

let test_linear_cancellation () =
  let e = Linear.add (Linear.var 0) (Linear.var 0 ~coeff:(r (-1))) in
  check bool "cancelled term dropped" true (Linear.terms e = []);
  check Alcotest.int "max_var of constant" (-1) (Linear.max_var e)

let test_linear_scale_sub () =
  let e = Linear.scale (r 3) (Linear.of_terms [ (2, ri 1 3) ]) in
  check rat "scaled" (r 1) (Linear.coeff e 2);
  let d = Linear.sub e e in
  check bool "self subtraction empty" true (Linear.terms d = [] && Rat.is_zero (Linear.const d))

(* ------------------------------------------------------------------ *)
(* Simplex                                                             *)
(* ------------------------------------------------------------------ *)

let test_simplex_textbook () =
  (* max 3x + 2y st x+y<=4, x+3y<=6 -> 12 at (4,0) *)
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous and y = Model.add_var m Model.Continuous in
  Model.add_constraint m (Linear.of_terms [ (x, r 1); (y, r 1) ]) Model.Le (r 4);
  Model.add_constraint m (Linear.of_terms [ (x, r 1); (y, r 3) ]) Model.Le (r 6);
  Model.set_objective m Model.Maximize (Linear.of_terms [ (x, r 3); (y, r 2) ]);
  match Simplex.solve m with
  | Simplex.Optimal s ->
    check rat "objective" (r 12) s.objective;
    check rat "x" (r 4) s.values.(x);
    check rat "y" Rat.zero s.values.(y)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_equality_and_ge () =
  (* min x + y st x + y = 10, x >= 3, y >= 2 -> 10 *)
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous and y = Model.add_var m Model.Continuous in
  Model.add_constraint m (Linear.of_terms [ (x, r 1); (y, r 1) ]) Model.Eq (r 10);
  Model.add_constraint m (Linear.var x) Model.Ge (r 3);
  Model.add_constraint m (Linear.var y) Model.Ge (r 2);
  Model.set_objective m Model.Minimize (Linear.of_terms [ (x, r 1); (y, r 1) ]);
  match Simplex.solve m with
  | Simplex.Optimal s -> check rat "objective" (r 10) s.objective
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous in
  Model.add_constraint m (Linear.var x) Model.Ge (r 5);
  Model.add_constraint m (Linear.var x) Model.Le (r 3);
  check bool "infeasible" true (Simplex.solve m = Simplex.Infeasible)

let test_simplex_unbounded () =
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous in
  Model.set_objective m Model.Maximize (Linear.var x);
  check bool "unbounded" true (Simplex.solve m = Simplex.Unbounded)

let test_simplex_bounds_override () =
  (* Same model, tightened bounds through the B&B hook. *)
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous ~ub:(r 10) in
  Model.set_objective m Model.Maximize (Linear.var x);
  (match Simplex.solve m with
  | Simplex.Optimal s -> check rat "default ub" (r 10) s.objective
  | _ -> Alcotest.fail "expected optimal");
  match Simplex.solve ~bounds:([| r 2 |], [| Some (r 5) |]) m with
  | Simplex.Optimal s -> check rat "overridden ub" (r 5) s.objective
  | _ -> Alcotest.fail "expected optimal with bounds"

let test_simplex_fractional_optimum () =
  (* max x + y st 2x + y <= 3, x + 2y <= 3 -> optimum at (1,1): 2 exactly *)
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous and y = Model.add_var m Model.Continuous in
  Model.add_constraint m (Linear.of_terms [ (x, r 2); (y, r 1) ]) Model.Le (r 3);
  Model.add_constraint m (Linear.of_terms [ (x, r 1); (y, r 2) ]) Model.Le (r 3);
  Model.set_objective m Model.Maximize (Linear.of_terms [ (x, r 1); (y, r 1) ]);
  match Simplex.solve m with
  | Simplex.Optimal s -> check rat "exact rational objective" (r 2) s.objective
  | _ -> Alcotest.fail "expected optimal"

(* Random LPs: any claimed optimum must satisfy all constraints, and beat a
   sampled grid of feasible points. *)
let prop_simplex_sound =
  QCheck.Test.make ~name:"simplex optimum is feasible and dominates samples" ~count:60
    QCheck.(pair (int_range 0 10000) (int_range 1 4))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let m = Model.create () in
      let vars = List.init n (fun _ -> Model.add_var m Model.Continuous ~ub:(r 5)) in
      let ncon = 1 + Prng.int rng 4 in
      let cons =
        List.init ncon (fun _ ->
            let coeffs = List.map (fun v -> (v, r (Prng.int_in rng 0 4))) vars in
            let rhs = r (Prng.int_in rng 1 20) in
            Model.add_constraint m (Linear.of_terms coeffs) Model.Le rhs;
            (coeffs, rhs))
      in
      let obj = List.map (fun v -> (v, r (Prng.int_in rng (-3) 5))) vars in
      Model.set_objective m Model.Maximize (Linear.of_terms obj);
      match Simplex.solve m with
      | Simplex.Optimal s ->
        let value v = s.values.(v) in
        let feasible =
          List.for_all
            (fun (coeffs, rhs) ->
              Rat.compare (Linear.eval (Linear.of_terms coeffs) value) rhs <= 0)
            cons
          && List.for_all (fun v -> Rat.sign (value v) >= 0 && Rat.compare (value v) (r 5) <= 0) vars
        in
        (* sample integer grid points in [0,2]^n *)
        let dominates = ref true in
        let rec grid assign = function
          | [] ->
            let value v = r (List.assoc v assign) in
            let ok =
              List.for_all
                (fun (coeffs, rhs) ->
                  Rat.compare (Linear.eval (Linear.of_terms coeffs) value) rhs <= 0)
                cons
            in
            if ok then begin
              let o = Linear.eval (Linear.of_terms obj) value in
              if Rat.compare o s.objective > 0 then dominates := false
            end
          | v :: rest ->
            for c = 0 to 2 do
              grid ((v, c) :: assign) rest
            done
        in
        grid [] vars;
        feasible && !dominates
      | Simplex.Unbounded -> false (* bounded by construction: ub on every var *)
      | Simplex.Infeasible -> false (* origin is always feasible *))

(* Differential check of the prepared (bounded-variable) simplex against
   the reference solver: random mixed models, random bound restrictions —
   same result constructor and, when optimal, the same objective (the
   optimal vertex may legitimately differ). *)
let prop_prepared_matches_reference =
  QCheck.Test.make ~name:"prepared simplex matches reference solver" ~count:300
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = Prng.int_in rng 1 6 in
      let m = Model.create () in
      let vars =
        List.init n (fun _ ->
            if Prng.int rng 2 = 0 then Model.add_var m Model.Binary
            else begin
              let lb = r (Prng.int rng 3) in
              match Prng.int rng 3 with
              | 0 -> Model.add_var m Model.Continuous ~lb
              | _ -> Model.add_var m Model.Continuous ~lb ~ub:(Rat.add lb (r (Prng.int rng 5)))
            end)
      in
      let ncon = Prng.int_in rng 1 5 in
      for _ = 1 to ncon do
        let coeffs = List.map (fun v -> (v, r (Prng.int_in rng (-4) 4))) vars in
        let rel = match Prng.int rng 3 with 0 -> Model.Le | 1 -> Model.Ge | _ -> Model.Eq in
        Model.add_constraint m (Linear.of_terms coeffs) rel (r (Prng.int_in rng (-5) 10))
      done;
      let sense = if Prng.int rng 2 = 0 then Model.Minimize else Model.Maximize in
      Model.set_objective m sense
        (Linear.of_terms (List.map (fun v -> (v, r (Prng.int_in rng (-5) 5))) vars));
      (* Random bound restriction, as branch-and-bound would apply. *)
      let bounds =
        if Prng.int rng 2 = 0 then None
        else begin
          let lbs = Array.init n (Model.var_lb m) in
          let ubs = Array.init n (Model.var_ub m) in
          List.iter
            (fun v ->
              if Prng.int rng 3 = 0 then lbs.(v) <- Rat.add lbs.(v) (r (Prng.int rng 2));
              if Prng.int rng 3 = 0 then ubs.(v) <- Some (r (Prng.int rng 3)))
            vars;
          Some (lbs, ubs)
        end
      in
      let reference = Simplex.solve_reference ?bounds m in
      let prepared = Simplex.solve_prepared ?bounds (Simplex.prepare m) in
      match (reference, prepared) with
      | Simplex.Optimal a, Simplex.Optimal b -> Rat.equal a.objective b.objective
      | Simplex.Infeasible, Simplex.Infeasible -> true
      | Simplex.Unbounded, Simplex.Unbounded -> true
      | _ -> false)

(* Differential check of the float-first certified path against the
   reference solver: the certify-then-fallback contract promises exact
   equality of the objective (not mere closeness), whichever of the two
   internal routes produced it. *)
let prop_float_first_matches_reference =
  QCheck.Test.make ~name:"float-first certified simplex matches reference solver" ~count:300
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = Prng.int_in rng 1 6 in
      let m = Model.create () in
      let vars =
        List.init n (fun _ ->
            if Prng.int rng 2 = 0 then Model.add_var m Model.Binary
            else begin
              let lb = r (Prng.int rng 3) in
              match Prng.int rng 3 with
              | 0 -> Model.add_var m Model.Continuous ~lb
              | _ -> Model.add_var m Model.Continuous ~lb ~ub:(Rat.add lb (r (Prng.int rng 5)))
            end)
      in
      let ncon = Prng.int_in rng 1 5 in
      for _ = 1 to ncon do
        let coeffs = List.map (fun v -> (v, r (Prng.int_in rng (-4) 4))) vars in
        let rel = match Prng.int rng 3 with 0 -> Model.Le | 1 -> Model.Ge | _ -> Model.Eq in
        Model.add_constraint m (Linear.of_terms coeffs) rel (r (Prng.int_in rng (-5) 10))
      done;
      let sense = if Prng.int rng 2 = 0 then Model.Minimize else Model.Maximize in
      Model.set_objective m sense
        (Linear.of_terms (List.map (fun v -> (v, r (Prng.int_in rng (-5) 5))) vars));
      let bounds =
        if Prng.int rng 2 = 0 then None
        else begin
          let lbs = Array.init n (Model.var_lb m) in
          let ubs = Array.init n (Model.var_ub m) in
          List.iter
            (fun v ->
              if Prng.int rng 3 = 0 then lbs.(v) <- Rat.add lbs.(v) (r (Prng.int rng 2));
              if Prng.int rng 3 = 0 then ubs.(v) <- Some (r (Prng.int rng 3)))
            vars;
          Some (lbs, ubs)
        end
      in
      let reference = Simplex.solve_reference ?bounds m in
      let ff = Simplex.solve_float_first ?bounds (Simplex.prepare m) in
      match (reference, ff.Simplex.ff_result) with
      | Simplex.Optimal a, Simplex.Optimal b ->
        Rat.equal a.objective b.objective
        && List.for_all
             (fun (e, rel, rhs) ->
               let lhs = Linear.eval e (fun v -> b.values.(v)) in
               match rel with
               | Model.Le -> Rat.compare lhs rhs <= 0
               | Model.Ge -> Rat.compare lhs rhs >= 0
               | Model.Eq -> Rat.equal lhs rhs)
             (Model.constraints m)
      | Simplex.Infeasible, Simplex.Infeasible -> true
      | Simplex.Unbounded, Simplex.Unbounded -> true
      | _ -> false)

(* Adversarial near-degenerate instances: coefficients whose differences
   vanish in double precision.  The float path must NOT be trusted here —
   certification has to reject its basis (or its feasibility verdict) and
   the exact fallback must still return the exact optimum. *)
let big_rat num den = Rat.make (Bigint.of_string num) (Bigint.of_string den)

let test_float_first_adversarial_tie () =
  (* max x + (1 + 10^-30) y  st  x + y <= 1.  In doubles both objective
     coefficients round to 1.0 and Dantzig pricing picks x; the true
     optimum needs y.  The exact dual check sees the 10^-30 reduced cost
     and must refuse to certify. *)
  let q = big_rat "1" "1000000000000000000000000000000" in
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous and y = Model.add_var m Model.Continuous in
  Model.add_constraint m (Linear.of_terms [ (x, r 1); (y, r 1) ]) Model.Le (r 1);
  Model.set_objective m Model.Maximize
    (Linear.of_terms [ (x, r 1); (y, Rat.add (r 1) q) ]);
  let ff = Simplex.solve_float_first (Simplex.prepare m) in
  (match ff.Simplex.ff_result with
  | Simplex.Optimal s ->
    check rat "exact tie-broken optimum" (Rat.add (r 1) q) s.objective;
    check rat "y carries the bonus" (r 1) s.values.(y)
  | _ -> Alcotest.fail "expected optimal");
  check bool "certification refused the float basis" false ff.Simplex.ff_certified;
  match Simplex.solve_reference m with
  | Simplex.Optimal s -> check rat "reference agrees" (Rat.add (r 1) q) s.objective
  | _ -> Alcotest.fail "reference should be optimal"

let test_float_first_adversarial_infeasible () =
  (* x <= 10^-21 yet x >= 10^-20: truly infeasible, but the violation is
     far below any float feasibility tolerance, so the float phase 1
     accepts it.  Exact certification must catch the lie and the fallback
     must return Infeasible. *)
  let tiny_ub = big_rat "1" "1000000000000000000000" in
  let tiny_lb = big_rat "1" "100000000000000000000" in
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous ~ub:tiny_ub in
  Model.add_constraint m (Linear.var x) Model.Ge tiny_lb;
  Model.set_objective m Model.Maximize (Linear.var x);
  let ff = Simplex.solve_float_first (Simplex.prepare m) in
  check bool "exactly infeasible" true (ff.Simplex.ff_result = Simplex.Infeasible);
  check bool "float path could not certify" false ff.Simplex.ff_certified

let test_float_first_certifies_clean_lp () =
  (* Well-conditioned LP: the float basis must pass exact certification
     (no fallback) and reproduce the known rational optimum. *)
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous and y = Model.add_var m Model.Continuous in
  Model.add_constraint m (Linear.of_terms [ (x, r 2); (y, r 1) ]) Model.Le (r 3);
  Model.add_constraint m (Linear.of_terms [ (x, r 1); (y, r 2) ]) Model.Le (r 3);
  Model.set_objective m Model.Maximize (Linear.of_terms [ (x, r 1); (y, r 1) ]);
  let ff = Simplex.solve_float_first (Simplex.prepare m) in
  (match ff.Simplex.ff_result with
  | Simplex.Optimal s ->
    check rat "exact objective from certified basis" (r 2) s.objective;
    check rat "x" (r 1) s.values.(x);
    check rat "y" (r 1) s.values.(y)
  | _ -> Alcotest.fail "expected optimal");
  check bool "certified without fallback" true ff.Simplex.ff_certified

(* ------------------------------------------------------------------ *)
(* Branch and bound                                                    *)
(* ------------------------------------------------------------------ *)

let test_bb_knapsack () =
  let m = Model.create () in
  let a = Model.add_var m Model.Binary
  and b = Model.add_var m Model.Binary
  and c = Model.add_var m Model.Binary in
  Model.add_constraint m (Linear.of_terms [ (a, r 5); (b, r 4); (c, r 3) ]) Model.Le (r 10);
  Model.set_objective m Model.Maximize (Linear.of_terms [ (a, r 10); (b, r 6); (c, r 4) ]);
  match Branch_bound.solve m with
  | Branch_bound.Optimal s ->
    check rat "knapsack optimum" (r 16) s.objective;
    check bool "solution is feasible" true (Branch_bound.is_feasible m s.values)
  | _ -> Alcotest.fail "expected optimal"

let test_bb_integer_infeasible () =
  (* 2x = 1 has a fractional LP solution but no binary solution. *)
  let m = Model.create () in
  let x = Model.add_var m Model.Binary in
  Model.add_constraint m (Linear.var x ~coeff:(r 2)) Model.Eq (r 1);
  check bool "integer infeasible" true (Branch_bound.solve m = Branch_bound.Infeasible)

let test_bb_respects_incumbent () =
  let m = Model.create () in
  let x = Model.add_var m Model.Binary and y = Model.add_var m Model.Binary in
  Model.add_constraint m (Linear.of_terms [ (x, r 1); (y, r 1) ]) Model.Le (r 1);
  Model.set_objective m Model.Maximize (Linear.of_terms [ (x, r 2); (y, r 3) ]);
  let incumbent = [| Rat.zero; Rat.one |] in
  match Branch_bound.solve ~incumbent m with
  | Branch_bound.Optimal s -> check rat "optimum" (r 3) s.objective
  | _ -> Alcotest.fail "expected optimal"

let test_bb_minimization () =
  let m = Model.create () in
  let x = Model.add_var m Model.Binary and y = Model.add_var m Model.Binary in
  Model.add_constraint m (Linear.of_terms [ (x, r 1); (y, r 1) ]) Model.Ge (r 1);
  Model.set_objective m Model.Minimize (Linear.of_terms [ (x, r 5); (y, r 3) ]);
  match Branch_bound.solve m with
  | Branch_bound.Optimal s -> check rat "min optimum" (r 3) s.objective
  | _ -> Alcotest.fail "expected optimal"

let test_is_feasible_rejects () =
  let m = Model.create () in
  let x = Model.add_var m Model.Binary in
  Model.add_constraint m (Linear.var x) Model.Le Rat.zero;
  check bool "violating assignment rejected" false (Branch_bound.is_feasible m [| Rat.one |]);
  check bool "fractional rejected" false (Branch_bound.is_feasible m [| ri 1 2 |]);
  check bool "ok accepted" true (Branch_bound.is_feasible m [| Rat.zero |])

(* Exhaustive cross-check on random small ILPs. *)
let prop_bb_matches_brute_force =
  QCheck.Test.make ~name:"branch&bound matches brute force" ~count:120
    (QCheck.int_range 0 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = Prng.int_in rng 2 6 in
      let ncon = Prng.int_in rng 1 4 in
      let m = Model.create () in
      let vars = List.init n (fun _ -> Model.add_var m Model.Binary) in
      let cons =
        List.init ncon (fun _ ->
            let coeffs = List.map (fun v -> (v, r (Prng.int_in rng (-5) 5))) vars in
            let rhs = r (Prng.int_in rng (-3) 8) in
            Model.add_constraint m (Linear.of_terms coeffs) Model.Le rhs;
            (coeffs, rhs))
      in
      let obj = List.map (fun v -> (v, r (Prng.int_in rng (-9) 9))) vars in
      Model.set_objective m Model.Maximize (Linear.of_terms obj);
      let best = ref None in
      for mask = 0 to (1 lsl n) - 1 do
        let value v = if (mask lsr v) land 1 = 1 then Rat.one else Rat.zero in
        let ok =
          List.for_all
            (fun (coeffs, rhs) -> Rat.compare (Linear.eval (Linear.of_terms coeffs) value) rhs <= 0)
            cons
        in
        if ok then begin
          let o = Linear.eval (Linear.of_terms obj) value in
          match !best with
          | Some b when Rat.compare b o >= 0 -> ()
          | _ -> best := Some o
        end
      done;
      match (Branch_bound.solve m, !best) with
      | Branch_bound.Optimal s, Some b ->
        Rat.equal s.objective b && Branch_bound.is_feasible m s.values
      | Branch_bound.Infeasible, None -> true
      | _ -> false)

(* Warm-started branch-and-bound (prepared template at the root) must agree
   with the cold per-node-rebuild baseline on result and objective. *)
let prop_bb_warm_matches_cold =
  QCheck.Test.make ~name:"warm-started B&B matches cold baseline" ~count:80
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = Prng.int_in rng 2 7 in
      let ncon = Prng.int_in rng 1 4 in
      let m = Model.create () in
      let vars = List.init n (fun _ -> Model.add_var m Model.Binary) in
      for _ = 1 to ncon do
        let coeffs = List.map (fun v -> (v, r (Prng.int_in rng (-5) 5))) vars in
        Model.add_constraint m (Linear.of_terms coeffs) Model.Le (r (Prng.int_in rng (-3) 8))
      done;
      Model.set_objective m Model.Maximize
        (Linear.of_terms (List.map (fun v -> (v, r (Prng.int_in rng (-9) 9))) vars));
      match (Branch_bound.solve ~warm_start:true m, Branch_bound.solve ~warm_start:false m) with
      | Branch_bound.Optimal a, Branch_bound.Optimal b ->
        Rat.equal a.objective b.objective && a.lp_solves > 0 && b.lp_solves > 0
      | Branch_bound.Infeasible, Branch_bound.Infeasible -> true
      | Branch_bound.Unbounded, Branch_bound.Unbounded -> true
      | Branch_bound.Feasible a, Branch_bound.Feasible b -> Rat.equal a.objective b.objective
      | _ -> false)

(* The float-first B&B (dual warm restarts + certification) must agree
   with the pure exact prepared path on result and objective, and its
   certified + fallback counters must account for every LP solve. *)
let prop_bb_float_first_matches_exact =
  QCheck.Test.make ~name:"float-first B&B matches exact prepared B&B" ~count:80
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = Prng.int_in rng 2 7 in
      let ncon = Prng.int_in rng 1 4 in
      let m = Model.create () in
      let vars = List.init n (fun _ -> Model.add_var m Model.Binary) in
      for _ = 1 to ncon do
        let coeffs = List.map (fun v -> (v, r (Prng.int_in rng (-5) 5))) vars in
        Model.add_constraint m (Linear.of_terms coeffs) Model.Le (r (Prng.int_in rng (-3) 8))
      done;
      Model.set_objective m Model.Maximize
        (Linear.of_terms (List.map (fun v -> (v, r (Prng.int_in rng (-9) 9))) vars));
      let accounted (a : Branch_bound.solution) =
        a.lp_certified + a.lp_fallbacks = a.lp_solves
      in
      match
        (Branch_bound.solve ~float_first:true m, Branch_bound.solve ~float_first:false m)
      with
      | Branch_bound.Optimal a, Branch_bound.Optimal b ->
        Rat.equal a.objective b.objective
        && Branch_bound.is_feasible m a.values
        && accounted a
        && b.lp_certified = 0 && b.lp_fallbacks = 0
      | Branch_bound.Infeasible, Branch_bound.Infeasible -> true
      | Branch_bound.Unbounded, Branch_bound.Unbounded -> true
      | Branch_bound.Feasible a, Branch_bound.Feasible b -> Rat.equal a.objective b.objective
      | _ -> false)

(* Budget-limited searches must never hand back an unchecked incumbent:
   whatever constructor comes out, any solution it carries is a feasible
   integral assignment whose stored objective matches an exact
   re-evaluation of the objective at those values. *)
let prop_bb_limited_incumbents_certified =
  QCheck.Test.make ~name:"budget-limited B&B incumbents stay feasible and certified" ~count:100
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = Prng.int_in rng 3 8 in
      let ncon = Prng.int_in rng 1 4 in
      let m = Model.create () in
      let vars = List.init n (fun _ -> Model.add_var m Model.Binary) in
      for _ = 1 to ncon do
        let coeffs = List.map (fun v -> (v, r (Prng.int_in rng (-5) 5))) vars in
        Model.add_constraint m (Linear.of_terms coeffs) Model.Le (r (Prng.int_in rng 0 8))
      done;
      let obj = Linear.of_terms (List.map (fun v -> (v, r (Prng.int_in rng (-9) 9))) vars) in
      Model.set_objective m Model.Maximize obj;
      let max_nodes = Prng.int_in rng 0 6 in
      let certified (s : Branch_bound.solution) =
        Branch_bound.is_feasible m s.values
        && Rat.equal s.objective (Linear.eval obj (fun v -> s.values.(v)))
      in
      match Branch_bound.solve ~max_nodes m with
      | Branch_bound.Optimal s | Branch_bound.Feasible s -> certified s
      | Branch_bound.Timeout (Some s) -> certified s
      | Branch_bound.Timeout None | Branch_bound.Infeasible | Branch_bound.Unbounded -> true)

(* The parallel search is a wall-clock lever only: under a fixed node
   budget — i.e. when the search may stop mid-tree with a best-so-far —
   running on a worker pool must reproduce the poolless run byte for
   byte, par_stats included, and every returned incumbent is feasible. *)
let prop_bb_parallel_deterministic_best_so_far =
  let same_solution (a : Branch_bound.solution) (b : Branch_bound.solution) =
    Rat.equal a.objective b.objective
    && Array.length a.values = Array.length b.values
    && Array.for_all2 Rat.equal a.values b.values
  in
  let same_result a b =
    match (a, b) with
    | Branch_bound.Optimal x, Branch_bound.Optimal y
    | Branch_bound.Feasible x, Branch_bound.Feasible y
    | Branch_bound.Timeout (Some x), Branch_bound.Timeout (Some y) -> same_solution x y
    | Branch_bound.Infeasible, Branch_bound.Infeasible
    | Branch_bound.Unbounded, Branch_bound.Unbounded
    | Branch_bound.Timeout None, Branch_bound.Timeout None -> true
    | _ -> false
  in
  QCheck.Test.make ~name:"parallel B&B: deterministic best-so-far under a node budget" ~count:25
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = Prng.int_in rng 4 9 in
      let ncon = Prng.int_in rng 1 4 in
      let m = Model.create () in
      let vars = List.init n (fun _ -> Model.add_var m Model.Binary) in
      for _ = 1 to ncon do
        let coeffs = List.map (fun v -> (v, r (Prng.int_in rng (-5) 5))) vars in
        Model.add_constraint m (Linear.of_terms coeffs) Model.Le (r (Prng.int_in rng 0 8))
      done;
      Model.set_objective m Model.Maximize
        (Linear.of_terms (List.map (fun v -> (v, r (Prng.int_in rng (-9) 9))) vars));
      let max_nodes = Prng.int_in rng 2 14 in
      let r_seq, s_seq = Branch_bound.solve_parallel ~max_nodes m in
      let pool = Pool.create ~domains:2 () in
      let r_par, s_par =
        Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
        Branch_bound.solve_parallel ~max_nodes ~pool m
      in
      let feasible_incumbent = function
        | Branch_bound.Optimal s | Branch_bound.Feasible s | Branch_bound.Timeout (Some s) ->
          Branch_bound.is_feasible m s.values
        | Branch_bound.Infeasible | Branch_bound.Unbounded | Branch_bound.Timeout None -> true
      in
      same_result r_seq r_par && s_seq = s_par && feasible_incumbent r_seq)

let test_simplex_pivot_limit () =
  (* A model that needs pivots must raise when given none. *)
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous ~ub:(r 5) in
  let y = Model.add_var m Model.Continuous ~ub:(r 5) in
  Model.add_constraint m (Linear.of_terms [ (x, r 1); (y, r 1) ]) Model.Le (r 7);
  Model.set_objective m Model.Maximize (Linear.of_terms [ (x, r 3); (y, r 2) ]);
  Alcotest.check_raises "pivot limit" Simplex.Pivot_limit (fun () ->
      ignore (Simplex.solve ~max_pivots:1 m))

let test_simplex_degenerate () =
  (* Several redundant constraints through one vertex: degeneracy must not
     cycle (Bland fallback) and the optimum stays exact. *)
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous and y = Model.add_var m Model.Continuous in
  Model.add_constraint m (Linear.of_terms [ (x, r 1); (y, r 1) ]) Model.Le (r 4);
  Model.add_constraint m (Linear.of_terms [ (x, r 2); (y, r 2) ]) Model.Le (r 8);
  Model.add_constraint m (Linear.of_terms [ (x, r 3); (y, r 3) ]) Model.Le (r 12);
  Model.add_constraint m (Linear.var x) Model.Le (r 4);
  Model.set_objective m Model.Maximize (Linear.of_terms [ (x, r 1); (y, r 1) ]);
  match Simplex.solve m with
  | Simplex.Optimal s -> check rat "degenerate optimum" (r 4) s.objective
  | _ -> Alcotest.fail "expected optimal"

let test_bb_stall_returns_incumbent () =
  (* With a zero node budget the solver must surface the seeded incumbent
     as Feasible rather than claiming optimality. *)
  let m = Model.create () in
  let vars = List.init 6 (fun _ -> Model.add_var m Model.Binary) in
  Model.add_constraint m (Linear.of_terms (List.map (fun v -> (v, r 3)) vars)) Model.Le (r 8);
  Model.set_objective m Model.Maximize (Linear.of_terms (List.map (fun v -> (v, r 5)) vars));
  let incumbent = Array.of_list (List.mapi (fun i _ -> if i = 0 then Rat.one else Rat.zero) vars) in
  match Branch_bound.solve ~max_nodes:0 ~incumbent m with
  | Branch_bound.Feasible s -> check rat "incumbent objective" (r 5) s.objective
  | Branch_bound.Optimal _ -> Alcotest.fail "cannot prove optimality with zero nodes"
  | _ -> Alcotest.fail "expected the incumbent back"

let test_bb_deadline_timeout () =
  (* A zero wall-clock budget must fire before the first node: with an
     incumbent the solver hands it back under Timeout (Some _) instead of
     claiming optimality; without one it reports Timeout None. *)
  let build () =
    let m = Model.create () in
    let vars = List.init 6 (fun _ -> Model.add_var m Model.Binary) in
    Model.add_constraint m (Linear.of_terms (List.map (fun v -> (v, r 3)) vars)) Model.Le (r 8);
    Model.set_objective m Model.Maximize (Linear.of_terms (List.map (fun v -> (v, r 5)) vars));
    (m, vars)
  in
  let m, vars = build () in
  let incumbent = Array.of_list (List.mapi (fun i _ -> if i = 0 then Rat.one else Rat.zero) vars) in
  (match Branch_bound.solve ~deadline_s:0.0 ~incumbent m with
  | Branch_bound.Timeout (Some s) ->
    check rat "best incumbent returned" (r 5) s.objective;
    check bool "incumbent is feasible" true (Branch_bound.is_feasible m s.values)
  | Branch_bound.Optimal _ -> Alcotest.fail "cannot prove optimality with a zero deadline"
  | _ -> Alcotest.fail "expected Timeout (Some incumbent)");
  let m2, _ = build () in
  (match Branch_bound.solve ~deadline_s:0.0 m2 with
  | Branch_bound.Timeout None -> ()
  | Branch_bound.Timeout (Some _) -> Alcotest.fail "no incumbent was seeded"
  | _ -> Alcotest.fail "expected Timeout None");
  (* A generous deadline changes nothing. *)
  let m3, _ = build () in
  match Branch_bound.solve ~deadline_s:3600.0 m3 with
  | Branch_bound.Optimal s -> check rat "optimum under generous deadline" (r 10) s.objective
  | _ -> Alcotest.fail "expected optimal"

let test_model_validation () =
  let m = Model.create () in
  Alcotest.check_raises "negative lb rejected"
    (Invalid_argument "Model.add_var: negative lower bound unsupported") (fun () ->
      ignore (Model.add_var m Model.Continuous ~lb:(r (-1))));
  Alcotest.check_raises "ub < lb rejected" (Invalid_argument "Model.add_var: ub < lb") (fun () ->
      ignore (Model.add_var m Model.Continuous ~lb:(r 3) ~ub:(r 2)));
  let _x = Model.add_var m Model.Binary in
  Alcotest.check_raises "unknown var in constraint"
    (Invalid_argument "Model.add_constraint: unknown variable") (fun () ->
      Model.add_constraint m (Linear.var 5) Model.Le (r 1))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_simplex_sound;
      prop_prepared_matches_reference;
      prop_float_first_matches_reference;
      prop_bb_matches_brute_force;
      prop_bb_warm_matches_cold;
      prop_bb_float_first_matches_exact;
      prop_bb_limited_incumbents_certified;
      prop_bb_parallel_deterministic_best_so_far;
    ]

let () =
  Alcotest.run "ilp"
    [
      ( "linear",
        [
          Alcotest.test_case "combination" `Quick test_linear_combination;
          Alcotest.test_case "cancellation" `Quick test_linear_cancellation;
          Alcotest.test_case "scale and sub" `Quick test_linear_scale_sub;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "textbook max" `Quick test_simplex_textbook;
          Alcotest.test_case "equality + ge" `Quick test_simplex_equality_and_ge;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "bounds override" `Quick test_simplex_bounds_override;
          Alcotest.test_case "fractional optimum exact" `Quick test_simplex_fractional_optimum;
          Alcotest.test_case "pivot limit" `Quick test_simplex_pivot_limit;
          Alcotest.test_case "degeneracy" `Quick test_simplex_degenerate;
          Alcotest.test_case "float-first certifies clean LP" `Quick
            test_float_first_certifies_clean_lp;
          Alcotest.test_case "float-first adversarial objective tie" `Quick
            test_float_first_adversarial_tie;
          Alcotest.test_case "float-first adversarial infeasibility" `Quick
            test_float_first_adversarial_infeasible;
        ] );
      ( "branch_bound",
        [
          Alcotest.test_case "knapsack" `Quick test_bb_knapsack;
          Alcotest.test_case "integer infeasible" `Quick test_bb_integer_infeasible;
          Alcotest.test_case "incumbent seeding" `Quick test_bb_respects_incumbent;
          Alcotest.test_case "minimization" `Quick test_bb_minimization;
          Alcotest.test_case "is_feasible" `Quick test_is_feasible_rejects;
          Alcotest.test_case "stall returns incumbent" `Quick test_bb_stall_returns_incumbent;
          Alcotest.test_case "deadline timeout" `Quick test_bb_deadline_timeout;
          Alcotest.test_case "model validation" `Quick test_model_validation;
        ] );
      ("properties", qsuite);
    ]
