(* Compile service: wire format, coalescing, admission control and the
   deterministic scripted replay (DESIGN.md §5j). *)

open Tapa_cs_service
module Tenant = Tapa_cs_farm.Tenant

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Wire format                                                         *)
(* ------------------------------------------------------------------ *)

let test_request_roundtrip () =
  let r =
    Request.make ~id:7 ~fpgas:2 ~iters:24 ~seed:5 ~klass:Tenant.Strict ~kind:Request.Simulate
      ~app:"stencil" ()
  in
  (match Request.of_line (Request.to_line r) with
  | Ok r' -> check bool "round trip" true (r = r')
  | Error e -> Alcotest.failf "round trip failed: %s" e);
  (* Defaults apply for omitted fields; kind is mandatory. *)
  (match Request.of_line {|{"kind":"compile","app":"knn"}|} with
  | Ok r -> check string "app" "knn" r.Request.app
  | Error e -> Alcotest.failf "minimal request rejected: %s" e);
  (match Request.of_line {|{"app":"knn"}|} with
  | Ok _ -> Alcotest.fail "missing kind accepted"
  | Error _ -> ());
  (match Request.of_line {|{"kind":"compile","bogus":1}|} with
  | Ok _ -> Alcotest.fail "unknown field accepted"
  | Error _ -> ());
  match Request.of_line "{not json" with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error _ -> ()

let test_request_key () =
  let base = Request.make ~kind:Request.Compile ~app:"stencil" () in
  (* id and admission class are not part of the content address … *)
  check string "id excluded" (Request.key base)
    (Request.key { base with Request.id = 99 });
  check string "class excluded" (Request.key base)
    (Request.key { base with Request.klass = Tenant.Strict });
  (* … but every answer-changing field is. *)
  check bool "iters included" true
    (Request.key base <> Request.key { base with Request.iters = base.Request.iters + 1 });
  check bool "kind included" true
    (Request.key base <> Request.key { base with Request.kind = Request.Simulate })

(* ------------------------------------------------------------------ *)
(* Coalescing and admission                                            *)
(* ------------------------------------------------------------------ *)

let test_coalesced_equals_uncoalesced () =
  Service.reset_process_caches ();
  let svc = Service.create () in
  let reqs =
    Array.init 3 (fun i -> Request.make ~id:i ~iters:8 ~kind:Request.Compile ~app:"stencil" ())
  in
  let verdicts = Service.schedule svc reqs in
  let reply_of = function
    | Service.Hit reply | Service.Done { reply; _ } -> reply
    | Service.Rejected _ -> Alcotest.fail "rejected below the admission bound"
  in
  let leader = reply_of verdicts.(0) in
  Array.iter (fun v -> check bool "followers equal leader" true (reply_of v = leader)) verdicts;
  (* An uncoalesced compute of the same request gives the same reply. *)
  check bool "uncoalesced equal" true (Service.compute svc reqs.(0) = leader);
  let c = Service.counters svc in
  check int "one miss" 1 c.Service.misses;
  check int "two coalesced" 2 c.Service.coalesced;
  (* A later identical request is a cache hit with the same payload. *)
  match Service.handle svc reqs.(1) with
  | Service.Hit reply -> check bool "cache hit equal" true (reply = leader)
  | _ -> Alcotest.fail "repeat request did not hit the cache"

let test_rejection_explicit () =
  Service.reset_process_caches ();
  let config = { Service.max_depth = 2; best_effort_depth = 1; cache_entries = 64 } in
  let svc = Service.create ~config () in
  let reqs =
    Array.init 5 (fun i ->
        let klass = if i = 0 then Tenant.Strict else Tenant.Best_effort in
        Request.make ~id:i ~iters:(8 + i) ~klass ~kind:Request.Compile ~app:"stencil" ())
  in
  let verdicts = Service.schedule svc reqs in
  check int "every request answered" 5 (Array.length verdicts);
  let rejected =
    Array.to_list verdicts
    |> List.filter_map (function Service.Rejected { code; _ } -> Some code | _ -> None)
  in
  (* The strict request admits first; with best_effort_depth = 1 and one
     computation already pending, every best-effort request sheds. *)
  check int "four explicit rejections" 4 (List.length rejected);
  List.iter (fun code -> check string "TCS-coded" "TCS701" code) rejected;
  let c = Service.counters svc in
  check int "books close" c.Service.received
    (c.Service.completed + c.Service.rejected_strict + c.Service.shed_best_effort);
  check int "nothing silently dropped" 5 c.Service.received;
  (* The rejection renders as a response line carrying the code. *)
  let line = Service.response_json ~id:9 verdicts.(1) in
  check bool "response carries the code" true (contains line "TCS701")

(* ------------------------------------------------------------------ *)
(* Scripted replay determinism                                         *)
(* ------------------------------------------------------------------ *)

let script_cfg =
  { Script.default_config with Script.clients = 3; requests_per_client = 6; distinct = 5; seed = 9 }

let test_script_deterministic () =
  let a = Script.report_json (Script.run script_cfg) in
  let b = Script.report_json (Script.run script_cfg) in
  check string "repeat runs byte-identical" a b;
  (* A pool changes wall-clock only, never the report. *)
  let pool = Tapa_cs_util.Pool.create ~domains:2 () in
  let c =
    Fun.protect
      ~finally:(fun () -> Tapa_cs_util.Pool.shutdown pool)
      (fun () -> Script.report_json (Script.run ~pool script_cfg))
  in
  check string "jobs=1 vs jobs=N byte-identical" a c

let test_script_books_close () =
  let report = Script.run script_cfg in
  let c = report.Script.counters in
  check int "every request issued" (script_cfg.Script.clients * script_cfg.Script.requests_per_client)
    c.Service.received;
  check int "books close" c.Service.received
    (c.Service.completed + c.Service.rejected_strict + c.Service.shed_best_effort);
  check int "hits + misses + coalesced = completed" c.Service.completed
    (c.Service.hits + c.Service.misses + c.Service.coalesced);
  check bool "positive virtual throughput" true (report.Script.virtual_requests_per_s > 0.0)

let test_script_warm_faster () =
  let cold = Script.run script_cfg in
  let warm = Script.run { script_cfg with Script.warm = true } in
  check int "warm misses" 0 warm.Script.counters.Service.misses;
  check bool "warm virtual throughput higher" true
    (warm.Script.virtual_requests_per_s > cold.Script.virtual_requests_per_s)

(* ------------------------------------------------------------------ *)
(* Socket round trip                                                   *)
(* ------------------------------------------------------------------ *)

let test_socket_roundtrip () =
  Service.reset_process_caches ();
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tcs-test-%d.sock" (Unix.getpid ()))
  in
  let svc = Service.create () in
  let server = Server.create ~socket_path svc in
  let server_domain = Domain.spawn (fun () -> Server.serve ~max_requests:3 server) in
  Fun.protect
    ~finally:(fun () ->
      ignore (Domain.join server_domain);
      Server.close server)
    (fun () ->
      let r = Request.make ~id:1 ~iters:8 ~kind:Request.Compile ~app:"stencil" () in
      (match Server.request_once ~socket_path (Request.to_line r) with
      | Ok line ->
        check bool "computed response" true
          (String.length line > 0 && String.sub line 0 1 = "{")
      | Error e -> Alcotest.failf "first request failed: %s" e);
      (match Server.request_once ~socket_path (Request.to_line r) with
      | Ok line ->
        check bool "second request served from cache" true (contains line {|"served":"cache"|})
      | Error e -> Alcotest.failf "second request failed: %s" e);
      match Server.request_once ~socket_path {|{"kind":"metrics"}|} with
      | Ok line -> check bool "metrics reports the hit" true (contains line {|"cache_hits":1|})
      | Error e -> Alcotest.failf "metrics request failed: %s" e)

let () =
  Alcotest.run "service"
    [
      ( "wire",
        [
          Alcotest.test_case "request round trip" `Quick test_request_roundtrip;
          Alcotest.test_case "content address" `Quick test_request_key;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "coalesced equals uncoalesced" `Quick test_coalesced_equals_uncoalesced;
          Alcotest.test_case "explicit TCS701 rejection" `Quick test_rejection_explicit;
        ] );
      ( "script",
        [
          Alcotest.test_case "deterministic across runs and jobs" `Quick test_script_deterministic;
          Alcotest.test_case "books close" `Quick test_script_books_close;
          Alcotest.test_case "warm beats cold" `Quick test_script_warm_faster;
        ] );
      ("socket", [ Alcotest.test_case "round trip" `Quick test_socket_roundtrip ]);
    ]
