(* Unit and property tests for the tapa_cs_util substrate. *)

open Tapa_cs_util
module B = Bigint
module R = Rat

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Bigint                                                              *)
(* ------------------------------------------------------------------ *)

let test_bigint_basics () =
  check string "zero" "0" (B.to_string B.zero);
  check string "of_int" "42" (B.to_string (B.of_int 42));
  check string "negative" "-17" (B.to_string (B.of_int (-17)));
  check bool "zero is zero" true (B.is_zero B.zero);
  check int "sign pos" 1 (B.sign (B.of_int 5));
  check int "sign neg" (-1) (B.sign (B.of_int (-5)));
  check int "sign zero" 0 (B.sign B.zero)

let test_bigint_min_int () =
  let m = B.of_int min_int in
  check bool "min_int round trip text" true (B.to_string m = string_of_int min_int);
  check bool "abs min_int positive" true (B.sign (B.abs m) = 1);
  check bool "max_int round trip" true (B.to_int_opt (B.of_int max_int) = Some max_int)

let test_bigint_string_round_trip () =
  let cases =
    [ "0"; "1"; "-1"; "999999999"; "1000000000"; "123456789012345678901234567890";
      "-98765432109876543210987654321" ]
  in
  List.iter (fun s -> check string s s (B.to_string (B.of_string s))) cases

let test_bigint_big_mul () =
  let a = B.of_string "123456789012345678901234567890" in
  let b = B.of_string "98765432109876543210" in
  check string "product"
    "12193263113702179522496570642237463801111263526900"
    (B.to_string (B.mul a b))

let test_bigint_divmod_sign_convention () =
  (* Truncated division: r has the sign of a. *)
  let t a b q r =
    let qq, rr = B.divmod (B.of_int a) (B.of_int b) in
    check int (Printf.sprintf "%d/%d q" a b) q (B.to_int_exn qq);
    check int (Printf.sprintf "%d/%d r" a b) r (B.to_int_exn rr)
  in
  t 7 2 3 1;
  t (-7) 2 (-3) (-1);
  t 7 (-2) (-3) 1;
  t (-7) (-2) 3 (-1)

let test_bigint_div_by_zero () =
  Alcotest.check_raises "divmod by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_bigint_pow () =
  check string "2^100" "1267650600228229401496703205376" (B.to_string (B.pow (B.of_int 2) 100));
  check string "x^0" "1" (B.to_string (B.pow (B.of_int 12345) 0))

let test_bigint_gcd () =
  check string "gcd" "6" (B.to_string (B.gcd (B.of_int 54) (B.of_int (-24))));
  check string "gcd with zero" "7" (B.to_string (B.gcd B.zero (B.of_int 7)))

let test_bigint_mixed_sign_chain () =
  (* A long alternating-sign accumulation exercised against int64. *)
  let acc = ref B.zero and reference = ref 0L in
  for i = 1 to 500 do
    let v = if i mod 2 = 0 then i * 1013 else -(i * 977) in
    acc := B.add !acc (B.of_int v);
    reference := Int64.add !reference (Int64.of_int v)
  done;
  check string "chain sum" (Int64.to_string !reference) (B.to_string !acc)

let test_bigint_min_max () =
  let a = B.of_int (-5) and b = B.of_int 3 in
  check string "min" "-5" (B.to_string (B.min a b));
  check string "max" "3" (B.to_string (B.max a b));
  check string "mul_int" "-15" (B.to_string (B.mul_int a 3));
  check string "add_int" "-2" (B.to_string (B.add_int a 3))

let test_bigint_of_string_invalid () =
  Alcotest.check_raises "empty" (Failure "Bigint.of_string: empty string") (fun () ->
      ignore (B.of_string ""));
  Alcotest.check_raises "bad digit" (Failure "Bigint.of_string: invalid digit") (fun () ->
      ignore (B.of_string "12x4"));
  Alcotest.check_raises "lone sign" (Failure "Bigint.of_string: no digits") (fun () ->
      ignore (B.of_string "-"))

let test_bigint_to_float () =
  check (Alcotest.float 1.0) "to_float small" 12345.0 (B.to_float (B.of_int 12345));
  check bool "to_float large magnitude" true
    (let f = B.to_float (B.of_string "1000000000000000000000") in
     f > 0.99e21 && f < 1.01e21)

(* Property tests against native int semantics. *)
let arb_small = QCheck.int_range (-1_000_000_000) 1_000_000_000

let prop_add_matches_int =
  QCheck.Test.make ~name:"bigint add matches int" ~count:500 (QCheck.pair arb_small arb_small)
    (fun (a, b) -> B.to_int_exn (B.add (B.of_int a) (B.of_int b)) = a + b)

let prop_mul_matches_int =
  QCheck.Test.make ~name:"bigint mul matches int" ~count:500
    (QCheck.pair (QCheck.int_range (-2_000_000) 2_000_000) (QCheck.int_range (-2_000_000) 2_000_000))
    (fun (a, b) -> B.to_int_exn (B.mul (B.of_int a) (B.of_int b)) = a * b)

let prop_divmod_identity =
  QCheck.Test.make ~name:"bigint divmod identity on large operands" ~count:300
    (QCheck.pair (QCheck.string_gen_of_size (QCheck.Gen.int_range 1 40) QCheck.Gen.numeral)
       (QCheck.string_gen_of_size (QCheck.Gen.int_range 1 20) QCheck.Gen.numeral))
    (fun (sa, sb) ->
      let a = B.of_string ("1" ^ sa) and b = B.of_string ("1" ^ sb) in
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r) && B.compare (B.abs r) (B.abs b) < 0)

let prop_compare_total_order =
  QCheck.Test.make ~name:"bigint compare matches int compare" ~count:500
    (QCheck.pair arb_small arb_small)
    (fun (a, b) -> B.compare (B.of_int a) (B.of_int b) = compare a b)

(* ------------------------------------------------------------------ *)
(* Rat                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rat_normalization () =
  check bool "2/4 = 1/2" true (R.equal (R.of_ints 2 4) (R.of_ints 1 2));
  check bool "neg den normalizes" true (R.equal (R.of_ints 1 (-2)) (R.of_ints (-1) 2));
  check string "print" "-1/2" (R.to_string (R.of_ints 1 (-2)))

let test_rat_arith () =
  check bool "1/3 + 1/6 = 1/2" true (R.equal (R.add (R.of_ints 1 3) (R.of_ints 1 6)) (R.of_ints 1 2));
  check bool "div" true (R.equal (R.div (R.of_ints 1 3) (R.of_ints 1 6)) (R.of_int 2));
  check bool "inv" true (R.equal (R.inv (R.of_ints (-2) 3)) (R.of_ints (-3) 2))

let test_rat_floor_ceil () =
  check string "floor -7/2" "-4" (B.to_string (R.floor (R.of_ints (-7) 2)));
  check string "ceil -7/2" "-3" (B.to_string (R.ceil (R.of_ints (-7) 2)));
  check string "floor 7/2" "3" (B.to_string (R.floor (R.of_ints 7 2)));
  check bool "fractional in [0,1)" true
    (let f = R.fractional (R.of_ints (-7) 2) in
     R.compare f R.zero >= 0 && R.compare f R.one < 0)

let test_rat_of_float_approx () =
  check bool "0.5" true (R.equal (R.of_float_approx 0.5) (R.of_ints 1 2));
  check bool "integral" true (R.equal (R.of_float_approx 3.0) (R.of_int 3));
  check bool "-0.25" true (R.equal (R.of_float_approx (-0.25)) (R.of_ints (-1) 4));
  check bool "1/3" true (R.equal (R.of_float_approx (1.0 /. 3.0)) (R.of_ints 1 3));
  check bool "12.5" true (R.equal (R.of_float_approx 12.5) (R.of_ints 25 2))

let arb_rat =
  QCheck.map
    (fun (n, d) -> R.of_ints n (if d = 0 then 1 else d))
    (QCheck.pair (QCheck.int_range (-10000) 10000) (QCheck.int_range 1 10000))

let prop_rat_field_laws =
  QCheck.Test.make ~name:"rat field laws" ~count:300 (QCheck.triple arb_rat arb_rat arb_rat)
    (fun (a, b, c) ->
      R.equal (R.add a b) (R.add b a)
      && R.equal (R.mul a b) (R.mul b a)
      && R.equal (R.add (R.add a b) c) (R.add a (R.add b c))
      && R.equal (R.mul a (R.add b c)) (R.add (R.mul a b) (R.mul a c))
      && R.equal (R.sub a a) R.zero
      && (R.is_zero a || R.equal (R.mul a (R.inv a)) R.one))

let prop_rat_floor_bound =
  QCheck.Test.make ~name:"floor(x) <= x < floor(x)+1" ~count:300 arb_rat (fun x ->
      let f = R.of_bigint (R.floor x) in
      R.compare f x <= 0 && R.compare x (R.add f R.one) < 0)

let prop_rat_compare_antisym =
  QCheck.Test.make ~name:"rat compare antisymmetric" ~count:300 (QCheck.pair arb_rat arb_rat)
    (fun (a, b) -> R.compare a b = -R.compare b a)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    check bool "same stream" true (Prng.next_int64 a = Prng.next_int64 b)
  done

let test_prng_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    check bool "in range" true (v >= 0 && v < 17);
    let w = Prng.int_in rng (-5) 5 in
    check bool "int_in range" true (w >= -5 && w <= 5);
    let f = Prng.float rng 2.0 in
    check bool "float range" true (f >= 0.0 && f < 2.0)
  done

let test_prng_shuffle_permutes () =
  let rng = Prng.create 11 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check bool "is permutation" true (sorted = Array.init 50 Fun.id)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_sorts () =
  let h = Heap.create ~cmp:compare in
  let rng = Prng.create 5 in
  let input = List.init 200 (fun _ -> Prng.int rng 1000) in
  List.iter (Heap.push h) input;
  check int "length" 200 (Heap.length h);
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  let out = drain [] in
  check bool "sorted ascending" true (out = List.sort compare input);
  check bool "empty after drain" true (Heap.is_empty h)

let test_heap_pop_empty () =
  let h = Heap.create ~cmp:compare in
  check bool "pop empty" true (Heap.pop h = None);
  Alcotest.check_raises "pop_exn empty" Not_found (fun () -> ignore (Heap.pop_exn h : int))

let test_heap_peek () =
  let h = Heap.create ~cmp:compare in
  Heap.push h 5;
  Heap.push h 2;
  Heap.push h 9;
  check bool "peek is min" true (Heap.peek h = Some 2);
  check int "peek does not remove" 3 (Heap.length h)

(* ------------------------------------------------------------------ *)
(* Fourheap (the coalesced engine's event queue)                       *)
(* ------------------------------------------------------------------ *)

let test_fourheap_ties_by_secondary () =
  (* The engine orders events by (time, seq); the heap must honour the
     full comparator, including the tie-break component. *)
  let cmp (ta, sa) (tb, sb) =
    if compare ta tb <> 0 then compare ta tb else compare sa sb
  in
  let h = Fourheap.create ~cmp in
  List.iter (Fourheap.push h) [ (1.0, 3); (1.0, 1); (0.5, 2); (1.0, 2) ];
  let rec drain acc = match Fourheap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  check bool "ties drain in secondary order" true
    (drain [] = [ (0.5, 2); (1.0, 1); (1.0, 2); (1.0, 3) ])

(* Interleaved push/pop against a sorted-list model: peek, pop and
   length must agree with the model after every single operation, not
   just on a final drain. *)
let prop_fourheap_matches_model =
  QCheck.Test.make ~name:"fourheap matches sorted-list model under interleaving" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 0 300) (QCheck.pair QCheck.bool QCheck.small_int))
    (fun ops ->
      let h = Fourheap.create ~cmp:Int.compare in
      let model = ref [] in
      List.for_all
        (fun (is_pop, v) ->
          if is_pop then begin
            let expect =
              match !model with
              | [] -> None
              | x :: tl ->
                model := tl;
                Some x
            in
            Fourheap.pop h = expect
          end
          else begin
            Fourheap.push h v;
            model := List.merge Int.compare [ v ] !model;
            Fourheap.peek h = Some (List.hd !model) && Fourheap.length h = List.length !model
          end)
        ops)

let prop_heap_is_sorted =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 0 200) QCheck.small_int)
    (fun input ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) input;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort compare input)

(* ------------------------------------------------------------------ *)
(* Union_find                                                          *)
(* ------------------------------------------------------------------ *)

let test_union_find () =
  let uf = Union_find.create 6 in
  check int "initial components" 6 (Union_find.count uf);
  Union_find.union uf 0 1;
  Union_find.union uf 2 3;
  check int "after two unions" 4 (Union_find.count uf);
  check bool "same 0 1" true (Union_find.same uf 0 1);
  check bool "not same 0 2" false (Union_find.same uf 0 2);
  Union_find.union uf 1 2;
  check bool "transitively same" true (Union_find.same uf 0 3);
  Union_find.union uf 0 3;
  check int "idempotent union" 3 (Union_find.count uf)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "10"; "20" ] ] in
  check bool "contains header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  check bool "has 4+ lines" true (List.length lines >= 4)

let test_table_formatting () =
  check string "fmt_float trims zeros" "2.5" (Table.fmt_float 2.50);
  check string "fmt_float integral" "3" (Table.fmt_float 3.0);
  check string "speedup" "2.64x" (Table.fmt_speedup 2.64);
  check string "pct" "42.3%" (Table.fmt_pct 0.423);
  check string "MB" "144.22MB" (Table.fmt_bytes (144.22 *. 1024. *. 1024.));
  check string "GB" "1.13GB" (Table.fmt_bytes (1.13 *. 1024. *. 1024. *. 1024.))

let test_table_pads_short_rows () =
  let s = Table.render ~header:[ "x"; "y"; "z" ] [ [ "only" ] ] in
  check bool "renders without exception" true (String.length s > 0)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_matches_sequential () =
  (* Real worker domains (explicit ~domains so a 1-core host still
     exercises the concurrent path), index-ordered assembly. *)
  let input = Array.init 100 Fun.id in
  let expected = Array.map (fun i -> i * i) input in
  let pool = Pool.create ~domains:3 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  check int "pool size" 3 (Pool.size pool);
  let got = Pool.parallel_map ~pool (fun i -> i * i) input in
  check bool "same as Array.map" true (got = expected);
  (* A pool is reusable across batches. *)
  let got2 = Pool.parallel_map ~pool (fun i -> i + 1) input in
  check bool "second batch" true (got2 = Array.map succ input)

let test_pool_exception_propagates () =
  let pool = Pool.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  (match Pool.parallel_map ~pool (fun i -> if i = 17 then failwith "boom" else i) (Array.init 40 Fun.id) with
  | _ -> Alcotest.fail "expected the worker exception to re-raise"
  | exception Failure msg -> check string "exception payload" "boom" msg);
  (* The pool survives a failing batch. *)
  let ok = Pool.parallel_map ~pool Fun.id (Array.init 10 Fun.id) in
  check bool "pool alive after failure" true (ok = Array.init 10 Fun.id)

let test_pool_nested_and_shutdown () =
  let pool = Pool.create ~domains:2 () in
  (* Nested parallel_map inside a worker degrades to sequential instead of
     deadlocking on the saturated pool. *)
  let got =
    Pool.parallel_map ~pool
      (fun i -> Array.fold_left ( + ) 0 (Pool.parallel_map (fun j -> i + j) (Array.init 5 Fun.id)))
      (Array.init 8 Fun.id)
  in
  check bool "nested map correct" true (got = Array.init 8 (fun i -> (5 * i) + 10));
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* After shutdown the pool runs batches sequentially on the caller. *)
  let seq = Pool.parallel_map ~pool (fun i -> i * 2) (Array.init 6 Fun.id) in
  check bool "post-shutdown sequential" true (seq = Array.init 6 (fun i -> i * 2))

let test_pool_failing_batch_drains () =
  (* Documented behaviour: a worker raising mid-batch does not cancel the
     batch — every element is still evaluated, and the first exception
     observed re-raises in the caller only after the drain. *)
  let n = 64 in
  let evaluated = Atomic.make 0 in
  let pool = Pool.create ~domains:3 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  (match
     Pool.parallel_map ~pool
       (fun i ->
         Atomic.incr evaluated;
         if i mod 16 = 3 then failwith (Printf.sprintf "boom-%d" i) else i)
       (Array.init n Fun.id)
   with
  | _ -> Alcotest.fail "expected the batch failure to re-raise"
  | exception Failure msg ->
    check bool "one of the raised exceptions wins" true
      (List.mem msg [ "boom-3"; "boom-19"; "boom-35"; "boom-51" ]));
  check int "every element still evaluated" n (Atomic.get evaluated);
  (* The drained pool runs the next batch normally. *)
  let ok = Pool.parallel_map ~pool succ (Array.init 10 Fun.id) in
  check bool "next batch clean" true (ok = Array.init 10 succ)

let test_pool_snapshot () =
  (* The queue/busy snapshot is observability-only: idle pools read
     (0, 0), and a batch in flight shows busy workers without perturbing
     the result. *)
  let pool = Pool.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  check bool "idle snapshot" true (Pool.snapshot pool = (0, 0));
  let seen_busy = Atomic.make 0 in
  let got =
    Pool.parallel_map ~pool
      (fun i ->
        let queued, busy = Pool.snapshot pool in
        if busy > 0 then Atomic.incr seen_busy;
        (* 2 workers + the helping caller bound the busy count. *)
        check bool "snapshot sane mid-batch" true (queued >= 0 && busy >= 1 && busy <= 3);
        i * 3)
      (Array.init 64 Fun.id)
  in
  check bool "result unperturbed" true (got = Array.init 64 (fun i -> i * 3));
  (* Every mapped closure at least observes itself as busy. *)
  check int "busy observed by every item" 64 (Atomic.get seen_busy);
  check bool "drained snapshot" true (Pool.snapshot pool = (0, 0))

let test_pool_small_arrays () =
  check bool "empty" true (Pool.parallel_map Fun.id [||] = [||]);
  check bool "singleton" true (Pool.parallel_map succ [| 41 |] = [| 42 |]);
  check bool "no pool" true (Pool.parallel_map succ (Array.init 20 Fun.id) = Array.init 20 succ);
  check bool "jobs floor" true (Pool.default_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* Memo: content-addressed memoization                                  *)
(* ------------------------------------------------------------------ *)

let test_memo_basics () =
  let m = Memo.create () in
  let computes = ref 0 in
  let f () = incr computes; 42 in
  let v1, hit1 = Memo.find_or_compute m ~key:"a" f in
  let v2, hit2 = Memo.find_or_compute m ~key:"a" f in
  check int "value" 42 v1;
  check int "cached value" 42 v2;
  check bool "first is a miss" false hit1;
  check bool "second is a hit" true hit2;
  check int "computed once" 1 !computes;
  check int "length" 1 (Memo.length m);
  let s = Memo.stats m in
  check int "one hit" 1 s.Memo.hits;
  check int "one miss" 1 s.Memo.misses;
  check int "no evictions yet" 0 s.Memo.evictions;
  check int "generation sizes cover length" (Memo.length m)
    (s.Memo.young_entries + s.Memo.old_entries);
  check bool "find present" true (Memo.find m ~key:"a" = Some 42);
  check bool "find absent" true (Memo.find m ~key:"b" = None);
  let s = Memo.stats m in
  check bool "find counts toward stats" true (s.Memo.hits = 2 && s.Memo.misses = 2);
  Memo.reset m;
  check int "reset empties" 0 (Memo.length m);
  let s = Memo.stats m in
  check bool "reset clears counters" true
    (s.Memo.hits = 0 && s.Memo.misses = 0 && s.Memo.evictions = 0
    && s.Memo.young_entries = 0 && s.Memo.old_entries = 0)

let test_memo_capacity () =
  let m = Memo.create ~max_entries:4 () in
  for i = 0 to 9 do
    ignore (Memo.find_or_compute m ~key:(string_of_int i) (fun () -> i))
  done;
  (* Overflow rotates the young generation into the old one and drops
     the previous old generation; it must never exceed max_entries. *)
  check bool "bounded" true (Memo.length m <= 4)

let test_memo_single_flight () =
  (* N domains race the same absent key.  Single-flight means exactly
     one computes (the leader); every waiter blocks for the leader's
     value instead of duplicating the work, and counts as a hit — so
     hit/miss totals are interleaving-independent. *)
  let m = Memo.create () in
  let computes = Atomic.make 0 in
  let release = Atomic.make false in
  let domains = 6 in
  let worker () =
    Memo.find_or_compute m ~key:"heavy" (fun () ->
        Atomic.incr computes;
        while not (Atomic.get release) do Domain.cpu_relax () done;
        1234)
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  (* Let every waiter pile up behind the leader before releasing it. *)
  while Atomic.get computes = 0 do Domain.cpu_relax () done;
  Unix.sleepf 0.02;
  Atomic.set release true;
  let results = List.map Domain.join ds in
  check int "computed exactly once" 1 (Atomic.get computes);
  List.iter (fun (v, _) -> check int "every racer got the value" 1234 v) results;
  let s = Memo.stats m in
  check int "one miss (the leader)" 1 s.Memo.misses;
  check int "every other racer is a hit" (domains - 1) s.Memo.hits;
  check int "counters close" domains (s.Memo.hits + s.Memo.misses)

let test_memo_single_flight_failure () =
  (* A leader that raises must not poison the key: waiters retry, and a
     later computation can succeed. *)
  let m = Memo.create () in
  let attempts = ref 0 in
  (try ignore (Memo.find_or_compute m ~key:"k" (fun () -> incr attempts; failwith "boom"))
   with Failure _ -> ());
  let v, hit = Memo.find_or_compute m ~key:"k" (fun () -> incr attempts; 7) in
  check int "value after a failed first attempt" 7 v;
  check bool "recomputation is a miss" false hit;
  check int "both attempts ran" 2 !attempts

let test_memo_two_generations () =
  (* A key that stays hot survives generation rotation by promotion;
     untouched keys age out.  Re-computation after eviction returns the
     identical value (cold/warm bit-identity). *)
  let m = Memo.create ~max_entries:8 () in
  let compute k () = k * 11 in
  ignore (Memo.find_or_compute m ~key:"hot" (fun () -> 999));
  for i = 0 to 30 do
    ignore (Memo.find_or_compute m ~key:(string_of_int i) (compute i));
    (* Touch the hot key every insert so each lookup either hits young
       or promotes it out of the old generation before rotation. *)
    let v, hit = Memo.find_or_compute m ~key:"hot" (fun () -> 999) in
    check bool "hot key never recomputed" true hit;
    check int "hot value stable" 999 v
  done;
  check bool "rotation happened" true ((Memo.stats m).Memo.evictions > 0);
  check bool "still bounded" true (Memo.length m <= 8);
  (* Key 0 is long gone; recomputing it gives the same answer. *)
  let v, hit = Memo.find_or_compute m ~key:"0" (compute 0) in
  check bool "cold key aged out" false hit;
  check int "recompute identical" 0 v;
  Memo.reset m;
  check int "reset clears evictions" 0 (Memo.stats m).Memo.evictions

let test_memo_concurrent () =
  (* Hammer one table from several domains: every computed value must be
     correct, and hits + misses must equal the number of lookups — no
     update may be lost to a race. *)
  let m = Memo.create () in
  let domains = 4 and per_domain = 500 and keyspace = 40 in
  let worker seed () =
    let rng = Prng.create seed in
    for _ = 1 to per_domain do
      let k = Prng.int rng keyspace in
      let v, _ = Memo.find_or_compute m ~key:(string_of_int k) (fun () -> k * 7) in
      assert (v = k * 7)
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker (i + 1))) in
  List.iter Domain.join ds;
  let s = Memo.stats m in
  check int "every lookup accounted" (domains * per_domain) (s.Memo.hits + s.Memo.misses);
  check bool "table bounded by keyspace" true (Memo.length m <= keyspace);
  (* Every stored value is right regardless of which domain stored it. *)
  for k = 0 to keyspace - 1 do
    match Memo.find m ~key:(string_of_int k) with
    | Some v -> check int "stored value" (k * 7) v
    | None -> ()
  done

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_add_matches_int; prop_mul_matches_int; prop_divmod_identity; prop_compare_total_order;
    prop_rat_field_laws; prop_rat_compare_antisym; prop_rat_floor_bound; prop_heap_is_sorted;
    prop_fourheap_matches_model ]

let () =
  Alcotest.run "util"
    [
      ( "bigint",
        [
          Alcotest.test_case "basics" `Quick test_bigint_basics;
          Alcotest.test_case "min_int" `Quick test_bigint_min_int;
          Alcotest.test_case "string round trip" `Quick test_bigint_string_round_trip;
          Alcotest.test_case "big multiplication" `Quick test_bigint_big_mul;
          Alcotest.test_case "divmod sign convention" `Quick test_bigint_divmod_sign_convention;
          Alcotest.test_case "division by zero" `Quick test_bigint_div_by_zero;
          Alcotest.test_case "pow" `Quick test_bigint_pow;
          Alcotest.test_case "gcd" `Quick test_bigint_gcd;
          Alcotest.test_case "mixed-sign chain" `Quick test_bigint_mixed_sign_chain;
          Alcotest.test_case "min/max helpers" `Quick test_bigint_min_max;
          Alcotest.test_case "of_string validation" `Quick test_bigint_of_string_invalid;
          Alcotest.test_case "to_float" `Quick test_bigint_to_float;
        ] );
      ( "rat",
        [
          Alcotest.test_case "normalization" `Quick test_rat_normalization;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil;
          Alcotest.test_case "of_float_approx" `Quick test_rat_of_float_approx;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        ] );
      ( "heap",
        [
          Alcotest.test_case "heapsort" `Quick test_heap_sorts;
          Alcotest.test_case "fourheap tie-break" `Quick test_fourheap_ties_by_secondary;
          Alcotest.test_case "pop empty" `Quick test_heap_pop_empty;
          Alcotest.test_case "peek" `Quick test_heap_peek;
        ] );
      ("union_find", [ Alcotest.test_case "components" `Quick test_union_find ]);
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formatting" `Quick test_table_formatting;
          Alcotest.test_case "short rows" `Quick test_table_pads_short_rows;
        ] );
      ( "pool",
        [
          Alcotest.test_case "matches sequential map" `Quick test_pool_matches_sequential;
          Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
          Alcotest.test_case "failing batch drains" `Quick test_pool_failing_batch_drains;
          Alcotest.test_case "nested + shutdown" `Quick test_pool_nested_and_shutdown;
          Alcotest.test_case "snapshot observability" `Quick test_pool_snapshot;
          Alcotest.test_case "small arrays" `Quick test_pool_small_arrays;
        ] );
      ( "memo",
        [
          Alcotest.test_case "basics" `Quick test_memo_basics;
          Alcotest.test_case "capacity bound" `Quick test_memo_capacity;
          Alcotest.test_case "domain concurrency" `Quick test_memo_concurrent;
          Alcotest.test_case "single flight" `Quick test_memo_single_flight;
          Alcotest.test_case "single flight failure" `Quick test_memo_single_flight_failure;
          Alcotest.test_case "two generations" `Quick test_memo_two_generations;
        ] );
      ("properties", qsuite);
    ]
