(* Tests for the link models and the Table-10 protocol library. *)

open Tapa_cs_device
open Tapa_cs_network

let check = Alcotest.check
let bool = Alcotest.bool
let fl = Alcotest.float 1e-9

let test_alveolink_parameters () =
  let l = Link.alveolink in
  check fl "line rate 12.5 GB/s" 12.5 l.Link.bandwidth_gbytes;
  check fl "one-way 0.5us (1us RTT, §4.4)" 0.5 l.Link.one_way_latency_us

let test_transfer_time_components () =
  let l = Link.alveolink in
  let setup_only = Link.transfer_time_s l 0.0 in
  check fl "zero bytes = setup" (0.5e-6) setup_only;
  let t1 = Link.transfer_time_s l 1e6 and t2 = Link.transfer_time_s l 2e6 in
  check bool "monotone in volume" true (t2 > t1);
  check bool "roughly linear for large transfers" true
    (let ratio = (t2 -. setup_only) /. (t1 -. setup_only) in
     ratio > 1.9 && ratio < 2.1)

let test_packet_size_effect () =
  (* §7: halving packet size increases total time. *)
  let l = Link.alveolink in
  let t64 = Link.transfer_time_s ~packet_bytes:64 l 64e6 in
  let t128 = Link.transfer_time_s ~packet_bytes:128 l 64e6 in
  let t4096 = Link.transfer_time_s ~packet_bytes:4096 l 64e6 in
  check bool "64B slower than 128B" true (t64 > t128);
  check bool "128B slower than 4KB" true (t128 > t4096);
  (* 64MB at 64B packets lands in the §7 millisecond regime *)
  check bool "6-7ms ballpark at 64B" true (t64 > 5e-3 && t64 < 8e-3)

let test_effective_throughput_curve () =
  (* Fig. 8 shape: throughput ramps with transfer size and saturates
     below the 100 Gb/s line rate. *)
  let l = Link.alveolink in
  let sizes = [ 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 ] in
  let tps = List.map (fun s -> Link.effective_throughput_gbps l s) sizes in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  check bool "monotone ramp" true (monotone tps);
  let peak = List.fold_left Float.max 0.0 tps in
  check bool "saturates near 90+ Gbps" true (peak > 85.0 && peak < 100.0);
  check bool "small transfers latency-dominated" true (List.hd tps < 20.0)

let test_pcie_slower () =
  (* §4.4: AlveoLink is 12.5x faster than PCIe Gen3x16. *)
  check bool "PCIe rate = Ethernet/12.5" true
    (Link.alveolink.Link.bandwidth_gbytes /. Link.pcie_p2p.Link.bandwidth_gbytes = 12.5);
  let va = Link.transfer_time_s Link.alveolink 1e9 in
  let vp = Link.transfer_time_s Link.pcie_p2p 1e9 in
  check bool "large transfer ~12x slower on PCIe" true (vp /. va > 10.0 && vp /. va < 15.0)

let test_host_mpi_slowest () =
  let v10g = Link.transfer_time_s Link.host_mpi_10g 1e9 in
  let veth = Link.transfer_time_s Link.alveolink 1e9 in
  check bool "inter-node ~10x slower (§5.7)" true (v10g /. veth > 8.0 && v10g /. veth < 12.0)

let test_table10_rows () =
  check Alcotest.int "7 protocols" 7 (List.length Protocol.all);
  let names = List.map (fun p -> p.Protocol.name) Protocol.all in
  check (Alcotest.list Alcotest.string) "paper order"
    [ "TMD-MPI"; "Galapagos"; "SMI"; "EasyNet"; "ZRLMPI"; "ACCL"; "AlveoLink" ]
    names

let test_alveolink_wins_tradeoff () =
  (* AlveoLink: EasyNet-class throughput at roughly half the overhead. *)
  let a = Protocol.alveolink and e = Protocol.easynet in
  check fl "same 90 Gbps class" a.Protocol.performance_gbps e.Protocol.performance_gbps;
  (match (a.Protocol.resource_overhead_pct, e.Protocol.resource_overhead_pct) with
  | Some ao, Some eo -> check bool "half the overhead" true (ao = 5.0 && eo = 10.0)
  | _ -> Alcotest.fail "overheads must be reported");
  check bool "device orchestrated" true (a.Protocol.orchestration = Protocol.Device);
  check bool "zrlmpi overhead unreported" true (Protocol.zrlmpi.Protocol.resource_overhead_pct = None)

let test_port_overhead_resources () =
  let b = Board.u55c () in
  let ov = Protocol.alveolink_port_overhead b in
  check bool "charges LUT FF BRAM only" true
    (ov.Resource.lut > 0 && ov.Resource.ff > 0 && ov.Resource.bram > 0 && ov.Resource.dsp = 0
   && ov.Resource.uram = 0)

(* ------------------------------------------------------------------ *)
(* Link.transfer_time_s edge cases (satellite)                         *)
(* ------------------------------------------------------------------ *)

let test_link_edge_cases () =
  let l = Link.alveolink in
  (* Zero-byte transfer: pure setup latency, no per-packet charge. *)
  check fl "zero bytes = setup only" (l.Link.one_way_latency_us *. 1e-6)
    (Link.transfer_time_s l 0.0);
  check fl "negative bytes treated as empty" (l.Link.one_way_latency_us *. 1e-6)
    (Link.transfer_time_s l (-5.0));
  (* packet_bytes larger than the message: exactly one packet is charged. *)
  let one_big = Link.transfer_time_s ~packet_bytes:1_000_000 l 100.0 in
  let expected =
    (l.Link.one_way_latency_us *. 1e-6)
    +. (l.Link.per_packet_overhead_ns *. 1e-9)
    +. (100.0 /. (l.Link.bandwidth_gbytes *. l.Link.derate *. 1e9))
  in
  check fl "oversized packet charges one packet" expected one_big;
  (* Derate bounds: every shipped preset keeps derate in (0, 1]. *)
  List.iter
    (fun (lk : Link.t) ->
      check bool (lk.Link.name ^ " derate in (0,1]") true
        (lk.Link.derate > 0.0 && lk.Link.derate <= 1.0))
    [ Link.alveolink; Link.pcie_p2p; Link.host_mpi_10g ];
  (* A derate below 1 strictly slows the wire component. *)
  let full = { l with Link.derate = 1.0 } in
  check bool "derate < 1 slows transfers" true
    (Link.transfer_time_s l 1e8 > Link.transfer_time_s full 1e8)

(* ------------------------------------------------------------------ *)
(* Fault model: closed forms and sampling (tentpole)                   *)
(* ------------------------------------------------------------------ *)

let test_fault_closed_forms () =
  let r = Fault.roce_v2 in
  (* E[transmissions] = (1 - p + N*p) / (1 - p). *)
  check fl "no loss, one transmission" 1.0 (Fault.expected_transmissions ~loss_rate:0.0 r);
  let p = 0.01 in
  check fl "go-back-N expectation"
    ((1.0 -. p +. (float_of_int r.Fault.window *. p)) /. (1.0 -. p))
    (Fault.expected_transmissions ~loss_rate:p r);
  (* E[timeout] = timeout * p * partial geometric sum. *)
  check fl "no loss, no timeouts" 0.0 (Fault.expected_timeout_s ~loss_rate:0.0 r);
  let ratio = p *. r.Fault.backoff in
  let geo = (1.0 -. (ratio ** float_of_int r.Fault.max_retries)) /. (1.0 -. ratio) in
  check fl "backed-off timeout expectation" (r.Fault.timeout_s *. p *. geo)
    (Fault.expected_timeout_s ~loss_rate:p r);
  (* The partial sum stays finite even at p*backoff >= 1. *)
  let heavy = { r with Fault.backoff = 4.0 } in
  check bool "finite past the geometric radius" true
    (Float.is_finite (Fault.expected_timeout_s ~loss_rate:0.5 heavy));
  (* Slowdown is 1 at p = 0 and grows with p. *)
  let l = Link.alveolink in
  check fl "slowdown 1 at p=0" 1.0 (Fault.slowdown ~loss_rate:0.0 l);
  check bool "slowdown grows with loss" true
    (Fault.slowdown ~loss_rate:0.05 l > Fault.slowdown ~loss_rate:0.01 l
    && Fault.slowdown ~loss_rate:0.01 l > 1.0)

let test_fault_transfer_time () =
  let l = Link.alveolink in
  (* fault = ideal reproduces Link.transfer_time_s exactly. *)
  List.iter
    (fun bytes ->
      check fl
        (Printf.sprintf "ideal fault = ideal link at %g B" bytes)
        (Link.transfer_time_s l bytes)
        (Fault.transfer_time_s ~fault:Fault.ideal l bytes))
    [ 0.0; 100.0; 1e6; 64e6 ];
  (* A down window the busy interval overlaps adds its remaining length. *)
  let ideal_t = Link.transfer_time_s l 1e6 in
  let fault = { Fault.ideal with Fault.down = [ (0.0, 1e-3) ] } in
  check fl "down window at t=0 adds its full length" (ideal_t +. 1e-3)
    (Fault.transfer_time_s ~fault l 1e6);
  (* A window entirely after completion adds nothing. *)
  let late = { Fault.ideal with Fault.down = [ (10.0, 11.0) ] } in
  check fl "late window adds nothing" ideal_t (Fault.transfer_time_s ~fault:late l 1e6);
  (* Starting inside the window waits it out. *)
  check fl "start mid-window waits" (ideal_t +. 0.5e-3)
    (Fault.transfer_time_s ~at:0.5e-3 ~fault l 1e6);
  (* Mean jitter is jitter/2 per packet. *)
  let jit = { Fault.ideal with Fault.jitter_s = 1e-6 } in
  let packets = Float.ceil (1e6 /. float_of_int l.Link.default_packet_bytes) in
  check fl "mean jitter jitter/2 per packet" (ideal_t +. (packets *. 0.5e-6))
    (Fault.transfer_time_s ~fault:jit l 1e6);
  (* Invalid fault specs are rejected. *)
  Alcotest.check_raises "loss_rate 1 rejected" (Invalid_argument "Fault: loss_rate 1 outside [0, 1)")
    (fun () -> ignore (Fault.transfer_time_s ~fault:(Fault.lossy 1.0) l 1e6))

let test_fault_sampling () =
  let l = Link.alveolink in
  let fault = Fault.lossy 0.02 in
  (* Same seed -> bit-identical sample; different seed -> (almost surely)
     different timeline. *)
  let sample seed =
    Fault.sample_transfer_time_s ~fault ~prng:(Tapa_cs_util.Prng.create seed) l 64e6
  in
  check fl "same seed, same sample" (sample 42) (sample 42);
  check bool "different seeds diverge" true (sample 42 <> sample 43);
  (* Sampled time is at least the loss-free wire time. *)
  check bool "sample >= ideal" true (sample 7 >= Link.transfer_time_s l 64e6);
  (* A link with max_retries = 0 gives up on the first loss. *)
  let fragile = { Fault.roce_v2 with Fault.max_retries = 0 } in
  let hot = Fault.lossy 0.9 in
  check bool "fragile link raises Link_lost" true
    (match
       Fault.sample_transfer_time_s ~retrans:fragile ~fault:hot
         ~prng:(Tapa_cs_util.Prng.create 1) l 64e6
     with
    | _ -> false
    | exception Fault.Link_lost _ -> true)

(* ------------------------------------------------------------------ *)
(* Fault-model edge cases and the link_fault smart constructor         *)
(* ------------------------------------------------------------------ *)

let test_fault_edge_cases () =
  let l = Link.alveolink in
  (* Loss rate at the open boundary: huge slowdown, but still finite and
     above the ideal time — the closed forms never divide by zero. *)
  let near_one = 1.0 -. 1e-9 in
  let t = Fault.transfer_time_s ~fault:(Fault.lossy near_one) l 1e6 in
  check bool "loss 1-1e-9 finite" true (Float.is_finite t);
  check bool "loss 1-1e-9 dominates ideal" true (t > Link.transfer_time_s l 1e6);
  check bool "expected transmissions finite at 1-1e-9" true
    (Float.is_finite (Fault.expected_transmissions ~loss_rate:near_one Fault.roce_v2));
  (* Link_lost carries the retry count at which the link gave up. *)
  let fragile = { Fault.roce_v2 with Fault.max_retries = 2 } in
  (match
     Fault.sample_transfer_time_s ~retrans:fragile ~fault:(Fault.lossy 0.999)
       ~prng:(Tapa_cs_util.Prng.create 5) l 64e6
   with
  | _ -> Alcotest.fail "0.999 loss with 2 retries must lose the link"
  | exception Fault.Link_lost { retries; link } ->
    check Alcotest.int "gave up at max_retries" 2 retries;
    check Alcotest.string "names the link" l.Link.name link);
  (* A transfer starting exactly at a window's stop edge is unaffected
     ([(start, stop)) is half-open); starting exactly at its start waits
     the full window. *)
  let ideal_t = Link.transfer_time_s l 1e6 in
  let fault = Fault.link_fault ~down:[ (1.0, 1.5) ] () in
  check fl "start at stop edge: untouched" ideal_t
    (Fault.transfer_time_s ~at:1.5 ~fault l 1e6);
  check fl "start at start edge: waits full window" (ideal_t +. 0.5)
    (Fault.transfer_time_s ~at:1.0 ~fault l 1e6);
  (* Zero jitter, zero loss: the sampler is fully deterministic and equals
     the closed form, whatever the seed. *)
  let plain = Fault.link_fault ~down:[ (0.0, 1e-3) ] () in
  let s seed =
    Fault.sample_transfer_time_s ~fault:plain ~prng:(Tapa_cs_util.Prng.create seed) l 1e6
  in
  check fl "zero-jitter sample seed-independent" (s 11) (s 99);
  (* Fault-free sampling consumes no randomness at all: identical across
     seeds and never below the ideal wire time (the sampler rounds the
     last partial packet up to a full service slot). *)
  let plain_sample seed =
    Fault.sample_transfer_time_s ~fault:Fault.ideal ~prng:(Tapa_cs_util.Prng.create seed) l 1e6
  in
  check fl "fault-free sample seed-independent" (plain_sample 11) (plain_sample 99);
  check bool "fault-free sample >= ideal" true (plain_sample 11 >= Link.transfer_time_s l 1e6)

let test_link_fault_constructor () =
  (* Windows are sorted, overlapping and touching windows merged,
     zero-length windows dropped. *)
  let f = Fault.link_fault ~down:[ (5.0, 6.0); (1.0, 2.0); (1.5, 3.0); (3.0, 4.0); (7.0, 7.0) ] () in
  check
    (Alcotest.list (Alcotest.pair fl fl))
    "sorted, merged, zero-length dropped"
    [ (1.0, 4.0); (5.0, 6.0) ]
    f.Fault.down;
  (* Invalid inputs are rejected with precise messages. *)
  let rejects name bad =
    check bool name true
      (match bad () with _ -> false | exception Invalid_argument _ -> true)
  in
  rejects "negative window start" (fun () -> Fault.link_fault ~down:[ (-1.0, 2.0) ] ());
  rejects "stop before start" (fun () -> Fault.link_fault ~down:[ (3.0, 2.0) ] ());
  rejects "loss rate 1" (fun () -> Fault.link_fault ~loss_rate:1.0 ());
  rejects "negative jitter" (fun () -> Fault.link_fault ~jitter_s:(-1e-9) ());
  (* ideal/lossy go through the same validation path. *)
  check fl "ideal has no loss" 0.0 Fault.ideal.Fault.loss_rate;
  check fl "lossy keeps rate" 0.25 (Fault.lossy 0.25).Fault.loss_rate

let test_fleet_timeline () =
  let tl =
    Fault.timeline
      [
        (40.0, Fault.Device_down 3);
        (10.0, Fault.Link_down (5, 2));
        (90.0, Fault.Device_up 3);
        (55.0, Fault.Link_up (2, 5));
        (100.0, Fault.Loss_rate 0.05);
        (160.0, Fault.Loss_rate 0.0);
      ]
  in
  (* Sorted by time, link pairs normalized to (min, max). *)
  (match Fault.timeline_events tl with
  | (10.0, Fault.Link_down (2, 5)) :: _ -> ()
  | _ -> Alcotest.fail "expected normalized link-down first");
  check
    (Alcotest.list (Alcotest.pair fl fl))
    "device windows from down/up pairs"
    [ (40.0, 90.0) ]
    (Fault.device_down_windows tl ~horizon_s:600.0 3);
  (* A link is down while it is down OR either endpoint is: here only its
     own window matters (devices 2 and 5 never fail). *)
  check
    (Alcotest.list (Alcotest.pair fl fl))
    "link windows" [ (10.0, 55.0) ]
    (Fault.link_down_windows tl ~horizon_s:600.0 (2, 5));
  (* A link touching the downed device inherits its outage. *)
  check
    (Alcotest.list (Alcotest.pair fl fl))
    "endpoint outage folds into link windows"
    [ (40.0, 90.0) ]
    (Fault.link_down_windows tl ~horizon_s:600.0 (0, 3));
  (* Unclosed down events clamp at the horizon. *)
  let open_ended = Fault.timeline [ (500.0, Fault.Device_down 1) ] in
  check
    (Alcotest.list (Alcotest.pair fl fl))
    "open outage clamps to horizon"
    [ (500.0, 600.0) ]
    (Fault.device_down_windows open_ended ~horizon_s:600.0 1);
  (* Loss episodes close at the next Loss_rate event. *)
  (match Fault.loss_episodes tl ~horizon_s:600.0 with
  | [ (100.0, 160.0, rate) ] -> check fl "episode rate" 0.05 rate
  | eps -> Alcotest.failf "expected one loss episode, got %d" (List.length eps));
  (* The smart constructor rejects malformed events. *)
  let rejects name bad =
    check bool name true
      (match bad () with _ -> false | exception Invalid_argument _ -> true)
  in
  rejects "negative timestamp" (fun () -> Fault.timeline [ (-1.0, Fault.Device_down 0) ]);
  rejects "self link" (fun () -> Fault.timeline [ (0.0, Fault.Link_down (2, 2)) ]);
  rejects "loss rate 1" (fun () -> Fault.timeline [ (0.0, Fault.Loss_rate 1.0) ])

let test_fault_spec_parsing () =
  (* parse_link_spec: the --fail-link format, normalized, never raising. *)
  check bool "0:3 parses normalized" true (Fault.parse_link_spec "3:0" = Ok (0, 3));
  check bool "self link rejected" true (Result.is_error (Fault.parse_link_spec "2:2"));
  check bool "garbage rejected" true (Result.is_error (Fault.parse_link_spec "a:b"));
  check bool "negative rejected" true (Result.is_error (Fault.parse_link_spec "-1:2"));
  (* parse_timeline_entry: the --timeline / --event line format. *)
  check bool "device-down line" true
    (Fault.parse_timeline_entry "40 device-down 3" = Ok (40.0, Fault.Device_down 3));
  check bool "link-up line normalized" true
    (Fault.parse_timeline_entry "55 link-up 5:2" = Ok (55.0, Fault.Link_up (2, 5)));
  check bool "loss line" true
    (Fault.parse_timeline_entry "100 loss 0.05" = Ok (100.0, Fault.Loss_rate 0.05));
  check bool "unknown verb rejected" true
    (Result.is_error (Fault.parse_timeline_entry "10 reboot 3"));
  check bool "missing argument rejected" true
    (Result.is_error (Fault.parse_timeline_entry "10 device-down"));
  check bool "negative time rejected" true
    (Result.is_error (Fault.parse_timeline_entry "-5 loss 0.1"))

(* qcheck property: the faulty expected time dominates the ideal time and
   equals it at loss rate 0 (satellite). *)
let prop_faulty_dominates =
  QCheck.Test.make ~name:"faulty expected time >= ideal; equal at p=0" ~count:200
    QCheck.(pair (float_bound_exclusive 0.5) (float_range 1.0 1e8))
    (fun (p, bytes) ->
      let l = Link.alveolink in
      let ideal_t = Link.transfer_time_s l bytes in
      let faulty = Fault.transfer_time_s ~fault:(Fault.lossy p) l bytes in
      let at_zero = Fault.transfer_time_s ~fault:(Fault.lossy 0.0) l bytes in
      faulty >= ideal_t -. 1e-12 && Float.abs (at_zero -. ideal_t) < 1e-12)

let () =
  Alcotest.run "network"
    [
      ( "link",
        [
          Alcotest.test_case "alveolink parameters" `Quick test_alveolink_parameters;
          Alcotest.test_case "transfer time components" `Quick test_transfer_time_components;
          Alcotest.test_case "packet size (§7)" `Quick test_packet_size_effect;
          Alcotest.test_case "throughput curve (Fig. 8)" `Quick test_effective_throughput_curve;
          Alcotest.test_case "pcie 12.5x slower" `Quick test_pcie_slower;
          Alcotest.test_case "inter-node slowest" `Quick test_host_mpi_slowest;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "table 10 rows" `Quick test_table10_rows;
          Alcotest.test_case "alveolink tradeoff" `Quick test_alveolink_wins_tradeoff;
          Alcotest.test_case "port overhead (§5.6)" `Quick test_port_overhead_resources;
        ] );
      ( "faults",
        [
          Alcotest.test_case "link edge cases" `Quick test_link_edge_cases;
          Alcotest.test_case "closed forms" `Quick test_fault_closed_forms;
          Alcotest.test_case "faulty transfer time" `Quick test_fault_transfer_time;
          Alcotest.test_case "deterministic sampling" `Quick test_fault_sampling;
          Alcotest.test_case "edge cases" `Quick test_fault_edge_cases;
          Alcotest.test_case "link_fault constructor" `Quick test_link_fault_constructor;
          QCheck_alcotest.to_alcotest prop_faulty_dominates;
        ] );
      ( "timelines",
        [
          Alcotest.test_case "fleet timeline" `Quick test_fleet_timeline;
          Alcotest.test_case "fault-spec parsing" `Quick test_fault_spec_parsing;
        ] );
    ]
