(* Tests for the link models and the Table-10 protocol library. *)

open Tapa_cs_device
open Tapa_cs_network

let check = Alcotest.check
let bool = Alcotest.bool
let fl = Alcotest.float 1e-9

let test_alveolink_parameters () =
  let l = Link.alveolink in
  check fl "line rate 12.5 GB/s" 12.5 l.Link.bandwidth_gbytes;
  check fl "one-way 0.5us (1us RTT, §4.4)" 0.5 l.Link.one_way_latency_us

let test_transfer_time_components () =
  let l = Link.alveolink in
  let setup_only = Link.transfer_time_s l 0.0 in
  check fl "zero bytes = setup" (0.5e-6) setup_only;
  let t1 = Link.transfer_time_s l 1e6 and t2 = Link.transfer_time_s l 2e6 in
  check bool "monotone in volume" true (t2 > t1);
  check bool "roughly linear for large transfers" true
    (let ratio = (t2 -. setup_only) /. (t1 -. setup_only) in
     ratio > 1.9 && ratio < 2.1)

let test_packet_size_effect () =
  (* §7: halving packet size increases total time. *)
  let l = Link.alveolink in
  let t64 = Link.transfer_time_s ~packet_bytes:64 l 64e6 in
  let t128 = Link.transfer_time_s ~packet_bytes:128 l 64e6 in
  let t4096 = Link.transfer_time_s ~packet_bytes:4096 l 64e6 in
  check bool "64B slower than 128B" true (t64 > t128);
  check bool "128B slower than 4KB" true (t128 > t4096);
  (* 64MB at 64B packets lands in the §7 millisecond regime *)
  check bool "6-7ms ballpark at 64B" true (t64 > 5e-3 && t64 < 8e-3)

let test_effective_throughput_curve () =
  (* Fig. 8 shape: throughput ramps with transfer size and saturates
     below the 100 Gb/s line rate. *)
  let l = Link.alveolink in
  let sizes = [ 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 ] in
  let tps = List.map (fun s -> Link.effective_throughput_gbps l s) sizes in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  check bool "monotone ramp" true (monotone tps);
  let peak = List.fold_left Float.max 0.0 tps in
  check bool "saturates near 90+ Gbps" true (peak > 85.0 && peak < 100.0);
  check bool "small transfers latency-dominated" true (List.hd tps < 20.0)

let test_pcie_slower () =
  (* §4.4: AlveoLink is 12.5x faster than PCIe Gen3x16. *)
  check bool "PCIe rate = Ethernet/12.5" true
    (Link.alveolink.Link.bandwidth_gbytes /. Link.pcie_p2p.Link.bandwidth_gbytes = 12.5);
  let va = Link.transfer_time_s Link.alveolink 1e9 in
  let vp = Link.transfer_time_s Link.pcie_p2p 1e9 in
  check bool "large transfer ~12x slower on PCIe" true (vp /. va > 10.0 && vp /. va < 15.0)

let test_host_mpi_slowest () =
  let v10g = Link.transfer_time_s Link.host_mpi_10g 1e9 in
  let veth = Link.transfer_time_s Link.alveolink 1e9 in
  check bool "inter-node ~10x slower (§5.7)" true (v10g /. veth > 8.0 && v10g /. veth < 12.0)

let test_table10_rows () =
  check Alcotest.int "7 protocols" 7 (List.length Protocol.all);
  let names = List.map (fun p -> p.Protocol.name) Protocol.all in
  check (Alcotest.list Alcotest.string) "paper order"
    [ "TMD-MPI"; "Galapagos"; "SMI"; "EasyNet"; "ZRLMPI"; "ACCL"; "AlveoLink" ]
    names

let test_alveolink_wins_tradeoff () =
  (* AlveoLink: EasyNet-class throughput at roughly half the overhead. *)
  let a = Protocol.alveolink and e = Protocol.easynet in
  check fl "same 90 Gbps class" a.Protocol.performance_gbps e.Protocol.performance_gbps;
  (match (a.Protocol.resource_overhead_pct, e.Protocol.resource_overhead_pct) with
  | Some ao, Some eo -> check bool "half the overhead" true (ao = 5.0 && eo = 10.0)
  | _ -> Alcotest.fail "overheads must be reported");
  check bool "device orchestrated" true (a.Protocol.orchestration = Protocol.Device);
  check bool "zrlmpi overhead unreported" true (Protocol.zrlmpi.Protocol.resource_overhead_pct = None)

let test_port_overhead_resources () =
  let b = Board.u55c () in
  let ov = Protocol.alveolink_port_overhead b in
  check bool "charges LUT FF BRAM only" true
    (ov.Resource.lut > 0 && ov.Resource.ff > 0 && ov.Resource.bram > 0 && ov.Resource.dsp = 0
   && ov.Resource.uram = 0)

(* ------------------------------------------------------------------ *)
(* Link.transfer_time_s edge cases (satellite)                         *)
(* ------------------------------------------------------------------ *)

let test_link_edge_cases () =
  let l = Link.alveolink in
  (* Zero-byte transfer: pure setup latency, no per-packet charge. *)
  check fl "zero bytes = setup only" (l.Link.one_way_latency_us *. 1e-6)
    (Link.transfer_time_s l 0.0);
  check fl "negative bytes treated as empty" (l.Link.one_way_latency_us *. 1e-6)
    (Link.transfer_time_s l (-5.0));
  (* packet_bytes larger than the message: exactly one packet is charged. *)
  let one_big = Link.transfer_time_s ~packet_bytes:1_000_000 l 100.0 in
  let expected =
    (l.Link.one_way_latency_us *. 1e-6)
    +. (l.Link.per_packet_overhead_ns *. 1e-9)
    +. (100.0 /. (l.Link.bandwidth_gbytes *. l.Link.derate *. 1e9))
  in
  check fl "oversized packet charges one packet" expected one_big;
  (* Derate bounds: every shipped preset keeps derate in (0, 1]. *)
  List.iter
    (fun (lk : Link.t) ->
      check bool (lk.Link.name ^ " derate in (0,1]") true
        (lk.Link.derate > 0.0 && lk.Link.derate <= 1.0))
    [ Link.alveolink; Link.pcie_p2p; Link.host_mpi_10g ];
  (* A derate below 1 strictly slows the wire component. *)
  let full = { l with Link.derate = 1.0 } in
  check bool "derate < 1 slows transfers" true
    (Link.transfer_time_s l 1e8 > Link.transfer_time_s full 1e8)

(* ------------------------------------------------------------------ *)
(* Fault model: closed forms and sampling (tentpole)                   *)
(* ------------------------------------------------------------------ *)

let test_fault_closed_forms () =
  let r = Fault.roce_v2 in
  (* E[transmissions] = (1 - p + N*p) / (1 - p). *)
  check fl "no loss, one transmission" 1.0 (Fault.expected_transmissions ~loss_rate:0.0 r);
  let p = 0.01 in
  check fl "go-back-N expectation"
    ((1.0 -. p +. (float_of_int r.Fault.window *. p)) /. (1.0 -. p))
    (Fault.expected_transmissions ~loss_rate:p r);
  (* E[timeout] = timeout * p * partial geometric sum. *)
  check fl "no loss, no timeouts" 0.0 (Fault.expected_timeout_s ~loss_rate:0.0 r);
  let ratio = p *. r.Fault.backoff in
  let geo = (1.0 -. (ratio ** float_of_int r.Fault.max_retries)) /. (1.0 -. ratio) in
  check fl "backed-off timeout expectation" (r.Fault.timeout_s *. p *. geo)
    (Fault.expected_timeout_s ~loss_rate:p r);
  (* The partial sum stays finite even at p*backoff >= 1. *)
  let heavy = { r with Fault.backoff = 4.0 } in
  check bool "finite past the geometric radius" true
    (Float.is_finite (Fault.expected_timeout_s ~loss_rate:0.5 heavy));
  (* Slowdown is 1 at p = 0 and grows with p. *)
  let l = Link.alveolink in
  check fl "slowdown 1 at p=0" 1.0 (Fault.slowdown ~loss_rate:0.0 l);
  check bool "slowdown grows with loss" true
    (Fault.slowdown ~loss_rate:0.05 l > Fault.slowdown ~loss_rate:0.01 l
    && Fault.slowdown ~loss_rate:0.01 l > 1.0)

let test_fault_transfer_time () =
  let l = Link.alveolink in
  (* fault = ideal reproduces Link.transfer_time_s exactly. *)
  List.iter
    (fun bytes ->
      check fl
        (Printf.sprintf "ideal fault = ideal link at %g B" bytes)
        (Link.transfer_time_s l bytes)
        (Fault.transfer_time_s ~fault:Fault.ideal l bytes))
    [ 0.0; 100.0; 1e6; 64e6 ];
  (* A down window the busy interval overlaps adds its remaining length. *)
  let ideal_t = Link.transfer_time_s l 1e6 in
  let fault = { Fault.ideal with Fault.down = [ (0.0, 1e-3) ] } in
  check fl "down window at t=0 adds its full length" (ideal_t +. 1e-3)
    (Fault.transfer_time_s ~fault l 1e6);
  (* A window entirely after completion adds nothing. *)
  let late = { Fault.ideal with Fault.down = [ (10.0, 11.0) ] } in
  check fl "late window adds nothing" ideal_t (Fault.transfer_time_s ~fault:late l 1e6);
  (* Starting inside the window waits it out. *)
  check fl "start mid-window waits" (ideal_t +. 0.5e-3)
    (Fault.transfer_time_s ~at:0.5e-3 ~fault l 1e6);
  (* Mean jitter is jitter/2 per packet. *)
  let jit = { Fault.ideal with Fault.jitter_s = 1e-6 } in
  let packets = Float.ceil (1e6 /. float_of_int l.Link.default_packet_bytes) in
  check fl "mean jitter jitter/2 per packet" (ideal_t +. (packets *. 0.5e-6))
    (Fault.transfer_time_s ~fault:jit l 1e6);
  (* Invalid fault specs are rejected. *)
  Alcotest.check_raises "loss_rate 1 rejected" (Invalid_argument "Fault: loss_rate 1 outside [0, 1)")
    (fun () -> ignore (Fault.transfer_time_s ~fault:(Fault.lossy 1.0) l 1e6))

let test_fault_sampling () =
  let l = Link.alveolink in
  let fault = Fault.lossy 0.02 in
  (* Same seed -> bit-identical sample; different seed -> (almost surely)
     different timeline. *)
  let sample seed =
    Fault.sample_transfer_time_s ~fault ~prng:(Tapa_cs_util.Prng.create seed) l 64e6
  in
  check fl "same seed, same sample" (sample 42) (sample 42);
  check bool "different seeds diverge" true (sample 42 <> sample 43);
  (* Sampled time is at least the loss-free wire time. *)
  check bool "sample >= ideal" true (sample 7 >= Link.transfer_time_s l 64e6);
  (* A link with max_retries = 0 gives up on the first loss. *)
  let fragile = { Fault.roce_v2 with Fault.max_retries = 0 } in
  let hot = Fault.lossy 0.9 in
  check bool "fragile link raises Link_lost" true
    (match
       Fault.sample_transfer_time_s ~retrans:fragile ~fault:hot
         ~prng:(Tapa_cs_util.Prng.create 1) l 64e6
     with
    | _ -> false
    | exception Fault.Link_lost _ -> true)

(* qcheck property: the faulty expected time dominates the ideal time and
   equals it at loss rate 0 (satellite). *)
let prop_faulty_dominates =
  QCheck.Test.make ~name:"faulty expected time >= ideal; equal at p=0" ~count:200
    QCheck.(pair (float_bound_exclusive 0.5) (float_range 1.0 1e8))
    (fun (p, bytes) ->
      let l = Link.alveolink in
      let ideal_t = Link.transfer_time_s l bytes in
      let faulty = Fault.transfer_time_s ~fault:(Fault.lossy p) l bytes in
      let at_zero = Fault.transfer_time_s ~fault:(Fault.lossy 0.0) l bytes in
      faulty >= ideal_t -. 1e-12 && Float.abs (at_zero -. ideal_t) < 1e-12)

let () =
  Alcotest.run "network"
    [
      ( "link",
        [
          Alcotest.test_case "alveolink parameters" `Quick test_alveolink_parameters;
          Alcotest.test_case "transfer time components" `Quick test_transfer_time_components;
          Alcotest.test_case "packet size (§7)" `Quick test_packet_size_effect;
          Alcotest.test_case "throughput curve (Fig. 8)" `Quick test_effective_throughput_curve;
          Alcotest.test_case "pcie 12.5x slower" `Quick test_pcie_slower;
          Alcotest.test_case "inter-node slowest" `Quick test_host_mpi_slowest;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "table 10 rows" `Quick test_table10_rows;
          Alcotest.test_case "alveolink tradeoff" `Quick test_alveolink_wins_tradeoff;
          Alcotest.test_case "port overhead (§5.6)" `Quick test_port_overhead_resources;
        ] );
      ( "faults",
        [
          Alcotest.test_case "link edge cases" `Quick test_link_edge_cases;
          Alcotest.test_case "closed forms" `Quick test_fault_closed_forms;
          Alcotest.test_case "faulty transfer time" `Quick test_fault_transfer_time;
          Alcotest.test_case "deterministic sampling" `Quick test_fault_sampling;
          QCheck_alcotest.to_alcotest prop_faulty_dominates;
        ] );
    ]
