(* Tests for the TAPA-style frontend eDSL, the constraint emitters, the
   autoscaler and the RoCE packet accounting. *)

open Tapa_cs
open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_network

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Frontend                                                            *)
(* ------------------------------------------------------------------ *)

let simple_program () =
  let p = Frontend.program () in
  let data = Frontend.stream p ~name:"data" ~width_bits:512 ~elems:1e5 () in
  let out = Frontend.stream p ~name:"out" ~width_bits:64 ~elems:1e3 () in
  Frontend.task p ~name:"load" ~writes:[ data ]
    ~reads_hbm:[ Frontend.hbm ~width_bits:512 ~bytes:6.4e6 () ]
    ~compute:(Task.make_compute ~elems:1e5 ~ii:1.0 ())
    ();
  Frontend.task p ~name:"score" ~reads:[ data ] ~writes:[ out ]
    ~compute:(Task.make_compute ~elems:1e5 ~ii:1.0 ~ops_per_elem:4.0 ())
    ();
  Frontend.task p ~name:"sink" ~reads:[ out ]
    ~compute:(Task.make_compute ~elems:1e3 ~ii:1.0 ())
    ();
  p

let test_frontend_lowers () =
  let g = Frontend.build (simple_program ()) in
  check int "3 tasks" 3 (Taskgraph.num_tasks g);
  check int "2 fifos" 2 (Taskgraph.num_fifos g);
  check bool "connected" true (Taskgraph.is_connected g);
  (match Taskgraph.find_task g "load" with
  | Some t -> check int "hbm port lowered" 1 (List.length t.Task.mem_ports)
  | None -> Alcotest.fail "missing task");
  let f = Taskgraph.fifo g 0 in
  check int "stream width preserved" 512 f.Fifo.width_bits

let test_frontend_detects_dangling () =
  let p = Frontend.program () in
  let s = Frontend.stream p ~name:"lonely" () in
  Frontend.task p ~name:"t" ~writes:[ s ] ();
  (match Frontend.validate p with
  | [ Frontend.Unconnected_stream "lonely" ] -> ()
  | errs ->
    Alcotest.failf "expected dangling-stream error, got %d error(s)" (List.length errs));
  Alcotest.check_raises "build raises"
    (Invalid_argument "Frontend.build: stream \"lonely\" lacks a producer or consumer")
    (fun () -> ignore (Frontend.build p))

let test_frontend_rejects_double_endpoints () =
  let p = Frontend.program () in
  let s = Frontend.stream p ~name:"s" () in
  Frontend.task p ~name:"a" ~writes:[ s ] ();
  Alcotest.check_raises "double producer"
    (Invalid_argument "Frontend.task: stream \"s\" already produced by \"a\"")
    (fun () -> Frontend.task p ~name:"b" ~writes:[ s ] ());
  Frontend.task p ~name:"c" ~reads:[ s ] ();
  Alcotest.check_raises "double consumer"
    (Invalid_argument "Frontend.task: stream \"s\" already consumed by \"c\"")
    (fun () -> Frontend.task p ~name:"d" ~reads:[ s ] ())

let test_frontend_empty_program () =
  let p = Frontend.program () in
  check bool "empty flagged" true (List.mem Frontend.Empty_program (Frontend.validate p))

let test_frontend_replicate () =
  let p = Frontend.program () in
  let ins = List.init 4 (fun i -> Frontend.stream p ~name:(Printf.sprintf "in%d" i) ~elems:100.0 ()) in
  let outs = List.init 4 (fun i -> Frontend.stream p ~name:(Printf.sprintf "out%d" i) ~elems:100.0 ()) in
  Frontend.task p ~name:"src" ~writes:ins ();
  Frontend.replicate p ~count:4 ~name:"worker"
    ~make:(fun i -> ([ List.nth ins i ], [ List.nth outs i ]))
    ~compute:(Task.make_compute ~elems:100.0 ~ii:1.0 ())
    ();
  Frontend.task p ~name:"dst" ~reads:outs ();
  let g = Frontend.build p in
  check int "6 tasks" 6 (Taskgraph.num_tasks g);
  (* replicas share one kind, so synthesis caches them *)
  let syn = Tapa_cs_hls.Synthesis.run g in
  check int "replica cache hits" 3 syn.Tapa_cs_hls.Synthesis.cache_hits

let test_frontend_compiles_end_to_end () =
  let g = Frontend.build (simple_program ()) in
  match Flow.tapa g with
  | Ok d -> check bool "compiles and simulates" true (Flow.latency_s d > 0.0)
  | Error e -> Alcotest.failf "flow failed: %s" e

(* ------------------------------------------------------------------ *)
(* Emit                                                                *)
(* ------------------------------------------------------------------ *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let compiled_fixture () =
  let g = Frontend.build (simple_program ()) in
  let cluster = Cluster.make ~board:Board.u55c 2 in
  match Compiler.compile ~cluster g with
  | Ok c -> c
  | Error e -> Alcotest.failf "fixture compile failed: %s" e

let test_emit_tcl () =
  let c = compiled_fixture () in
  let tcl = Emit.floorplan_tcl c ~fpga:0 in
  check bool "has pblocks" true (contains "create_pblock" tcl);
  check bool "references tasks" true (contains "add_cells_to_pblock" tcl);
  check bool "mentions the clock" true (contains "MHz" tcl)

let test_emit_connectivity () =
  let c = compiled_fixture () in
  let cfg = Emit.connectivity_cfg c ~fpga:0 in
  check bool "connectivity section" true (contains "[connectivity]" cfg);
  check bool "HBM binding lines" true (contains "sp=load.m_axi_0:HBM[" cfg)

let test_emit_json () =
  let c = compiled_fixture () in
  let json = Emit.design_report_json c in
  check bool "fpgas field" true (contains "\"fpgas\": 2" json);
  check bool "devices array" true (contains "\"devices\"" json);
  check bool "task names quoted" true (contains "\"load\"" json)

let test_emit_write_all () =
  let c = compiled_fixture () in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "tapa_cs_emit_test" in
  Emit.write_all c ~dir;
  check bool "tcl written" true (Sys.file_exists (Filename.concat dir "floorplan_f0.tcl"));
  check bool "cfg written" true (Sys.file_exists (Filename.concat dir "connectivity_f1.cfg"));
  check bool "report written" true (Sys.file_exists (Filename.concat dir "design_report.json"))

(* ------------------------------------------------------------------ *)
(* Autoscale                                                           *)
(* ------------------------------------------------------------------ *)

let kernel ?(bytes_per_elem = 8.0) ?(ops = 16.0) () =
  {
    Autoscale.name = "k";
    elems = 1e9;
    ops_per_elem = ops;
    bytes_per_elem;
    pe_resources = Resource.make ~lut:30_000 ~ff:40_000 ~bram:40 ~dsp:64 ();
    pe_lanes = 4;
    exchange_bytes = 1e6;
  }

let test_autoscale_respects_resources () =
  let cluster = Cluster.make ~board:Board.u55c 2 in
  let p = Autoscale.plan ~cluster (kernel ()) in
  check bool "PEs within ceiling" true (p.Autoscale.pes_per_fpga <= p.Autoscale.pe_cap_by_resources);
  check bool "at least one PE" true (p.Autoscale.pes_per_fpga >= 1)

let test_autoscale_memory_bound_kernel () =
  (* Very heavy traffic per element: the advisor must stop replicating at
     the HBM wall and call the design memory-bound. *)
  let cluster = Cluster.make ~board:Board.u55c 1 in
  let p = Autoscale.plan ~cluster (kernel ~bytes_per_elem:256.0 ()) in
  check bool "memory bound" true (p.Autoscale.predicted_bound = Autoscale.Memory);
  check bool "did not max out PEs" true (p.Autoscale.pes_per_fpga < p.Autoscale.pe_cap_by_resources)

let test_autoscale_compute_bound_kernel () =
  let cluster = Cluster.make ~board:Board.u55c 1 in
  let p = Autoscale.plan ~cluster (kernel ~bytes_per_elem:0.1 ()) in
  check bool "compute bound" true (p.Autoscale.predicted_bound = Autoscale.Compute);
  check int "replication maxed" p.Autoscale.pe_cap_by_resources p.Autoscale.pes_per_fpga

let test_autoscale_sweep_monotone () =
  let cluster = Cluster.make ~board:Board.u55c 4 in
  let sweep = Autoscale.sweep ~cluster (kernel ()) in
  check int "4 points" 4 (List.length sweep);
  let lat k = (List.assoc k sweep).Autoscale.predicted_latency_s in
  check bool "more devices, never slower" true (lat 4 <= lat 2 && lat 2 <= lat 1)

let test_autoscale_port_width () =
  let cluster = Cluster.make ~board:Board.u55c 1 in
  (* 8 B/elem x 4 lanes = 32 B/cycle = 256 bits *)
  let p = Autoscale.plan ~cluster (kernel ~bytes_per_elem:8.0 ()) in
  check int "port width" 256 p.Autoscale.port_width_bits

let test_autoscale_oversized_pe () =
  let cluster = Cluster.make ~board:Board.u55c 1 in
  let k = { (kernel ()) with Autoscale.pe_resources = Resource.make ~lut:2_000_000 () } in
  Alcotest.check_raises "oversized PE"
    (Invalid_argument "Autoscale.plan: one PE exceeds the device budget") (fun () ->
      ignore (Autoscale.plan ~cluster k))

(* ------------------------------------------------------------------ *)
(* Packet                                                              *)
(* ------------------------------------------------------------------ *)

let test_packet_framing () =
  check int "RoCE v2 framing is 82 B" 82 Packet.header_bytes;
  check int "wire bytes" (64 + 82) (Packet.wire_bytes ~payload:64);
  check bool "efficiency in (0,1)" true
    (let e = Packet.efficiency ~payload:64 in
     e > 0.0 && e < 1.0)

let test_packet_efficiency_monotone () =
  let effs = List.map (fun p -> Packet.efficiency ~payload:p) [ 64; 128; 256; 1024; 4096 ] in
  let rec mono = function a :: (b :: _ as r) -> a < b && mono r | _ -> true in
  check bool "bigger payloads, better efficiency" true (mono effs);
  check bool "4KB near line rate" true (Packet.effective_gbps ~payload:4096 () > 97.0)

let test_packet_counts () =
  check (Alcotest.float 1e-9) "packet count" 1000.0 (Packet.packets_for ~payload:64 ~bytes:64_000.0);
  check (Alcotest.float 1e-9) "rounds up" 2.0 (Packet.packets_for ~payload:64 ~bytes:65.0)

(* ------------------------------------------------------------------ *)
(* Simulator task traces                                               *)
(* ------------------------------------------------------------------ *)

let test_task_traces () =
  let g = Frontend.build (simple_program ()) in
  match Flow.tapa g with
  | Error e -> Alcotest.failf "flow: %s" e
  | Ok d ->
    let r = Flow.simulate d in
    let stats = r.Tapa_cs_sim.Design_sim.tasks in
    check int "one stat per task" (Taskgraph.num_tasks g) (Array.length stats);
    Array.iter
      (fun (s : Tapa_cs_sim.Design_sim.task_stat) ->
        check bool "busy time positive" true (s.busy_s > 0.0);
        check bool "finish after start" true (s.finish_s >= s.start_s);
        check bool "finish within makespan" true (s.finish_s <= r.Tapa_cs_sim.Design_sim.latency_s +. 1e-12))
      stats;
    let idle = Tapa_cs_sim.Design_sim.fpga_idle_fraction r ~fpga:0 in
    check bool "idle fraction in [0,1]" true (idle >= 0.0 && idle <= 1.0)

let () =
  Alcotest.run "frontend"
    [
      ( "edsl",
        [
          Alcotest.test_case "lowers to the IR" `Quick test_frontend_lowers;
          Alcotest.test_case "dangling streams" `Quick test_frontend_detects_dangling;
          Alcotest.test_case "double endpoints" `Quick test_frontend_rejects_double_endpoints;
          Alcotest.test_case "empty program" `Quick test_frontend_empty_program;
          Alcotest.test_case "replicate" `Quick test_frontend_replicate;
          Alcotest.test_case "end to end" `Quick test_frontend_compiles_end_to_end;
        ] );
      ( "emit",
        [
          Alcotest.test_case "floorplan tcl" `Quick test_emit_tcl;
          Alcotest.test_case "connectivity cfg" `Quick test_emit_connectivity;
          Alcotest.test_case "design report json" `Quick test_emit_json;
          Alcotest.test_case "write_all" `Quick test_emit_write_all;
        ] );
      ( "autoscale",
        [
          Alcotest.test_case "resource ceiling" `Quick test_autoscale_respects_resources;
          Alcotest.test_case "memory-bound kernel" `Quick test_autoscale_memory_bound_kernel;
          Alcotest.test_case "compute-bound kernel" `Quick test_autoscale_compute_bound_kernel;
          Alcotest.test_case "sweep monotone" `Quick test_autoscale_sweep_monotone;
          Alcotest.test_case "port width" `Quick test_autoscale_port_width;
          Alcotest.test_case "oversized PE" `Quick test_autoscale_oversized_pe;
        ] );
      ( "packet",
        [
          Alcotest.test_case "framing" `Quick test_packet_framing;
          Alcotest.test_case "efficiency monotone" `Quick test_packet_efficiency_monotone;
          Alcotest.test_case "packet counts" `Quick test_packet_counts;
        ] );
      ("traces", [ Alcotest.test_case "task stats" `Quick test_task_traces ]);
    ]
