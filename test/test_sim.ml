(* Tests for the discrete-event engine and the design simulator:
   channel semantics, determinism, deadlock detection, server contention,
   and dataflow conservation laws. *)

open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls
open Tapa_cs_sim

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let fl = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_wait_orders_events () =
  let e = Engine.create () in
  let order = ref [] in
  Engine.spawn e ~name:"a" (fun () ->
      Engine.wait 2.0;
      order := "a" :: !order);
  Engine.spawn e ~name:"b" (fun () ->
      Engine.wait 1.0;
      order := "b" :: !order);
  let r = Engine.run e in
  check (Alcotest.list Alcotest.string) "order by time" [ "b"; "a" ] (List.rev !order);
  check fl "end time" 2.0 r.end_time;
  check bool "no deadlock" true (r.deadlocked = [])

let test_same_time_fifo_order () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Engine.spawn e ~name:(string_of_int i) (fun () -> order := i :: !order)
  done;
  ignore (Engine.run e);
  check (Alcotest.list int) "spawn order preserved at equal times" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_negative_wait_rejected () =
  let e = Engine.create () in
  let raised = ref false in
  Engine.spawn e (fun () -> try Engine.wait (-1.0) with Invalid_argument _ -> raised := true);
  ignore (Engine.run e);
  check bool "negative wait rejected" true !raised

let test_channel_backpressure () =
  let e = Engine.create () in
  let ch = Engine.Channel.create e ~name:"c" ~capacity:10.0 in
  let produced_at = ref [] in
  Engine.spawn e ~name:"producer" (fun () ->
      for _ = 1 to 3 do
        Engine.Channel.push ch 10.0;
        produced_at := Engine.time () :: !produced_at
      done);
  Engine.spawn e ~name:"consumer" (fun () ->
      for _ = 1 to 3 do
        Engine.wait 5.0;
        Engine.Channel.pull ch 10.0
      done);
  let r = Engine.run e in
  check bool "no deadlock" true (r.deadlocked = []);
  (* First push is immediate; the rest wait for pulls at t=5,10. *)
  check (Alcotest.list fl) "pushes gated by pulls" [ 0.0; 5.0; 10.0 ] (List.rev !produced_at);
  check fl "conservation" (Engine.Channel.total_pushed ch) (Engine.Channel.total_pulled ch +. Engine.Channel.level ch)

let test_channel_oversized_message_streams () =
  let e = Engine.create () in
  let ch = Engine.Channel.create e ~name:"c" ~capacity:4.0 in
  Engine.spawn e ~name:"p" (fun () -> Engine.Channel.push ch 20.0);
  Engine.spawn e ~name:"c" (fun () -> Engine.Channel.pull ch 20.0);
  let r = Engine.run e in
  check bool "oversized transfer completes" true (r.deadlocked = []);
  check fl "all bytes moved" 20.0 (Engine.Channel.total_pulled ch)

let test_channel_no_float_wedge () =
  (* Regression: repeated large chunk cycles must not wedge on rounding. *)
  let e = Engine.create () in
  let chunk = 18.03e6 +. 0.125 in
  let ch = Engine.Channel.create e ~name:"c" ~capacity:chunk in
  Engine.spawn e ~name:"p" (fun () ->
      for _ = 1 to 64 do
        Engine.Channel.push ch chunk
      done);
  Engine.spawn e ~name:"q" (fun () ->
      for _ = 1 to 64 do
        Engine.Channel.pull ch chunk
      done);
  let r = Engine.run e in
  check bool "no rounding deadlock" true (r.deadlocked = [])

let test_deadlock_detection () =
  let e = Engine.create () in
  let a = Engine.Channel.create e ~name:"a" ~capacity:1.0 in
  let b = Engine.Channel.create e ~name:"b" ~capacity:1.0 in
  Engine.spawn e ~name:"p1" (fun () ->
      Engine.Channel.pull a 1.0;
      Engine.Channel.push b 1.0);
  Engine.spawn e ~name:"p2" (fun () ->
      Engine.Channel.pull b 1.0;
      Engine.Channel.push a 1.0);
  let r = Engine.run e in
  check int "both reported" 2 (List.length r.deadlocked)

let test_server_serializes () =
  let e = Engine.create () in
  let srv = Engine.Server.create e ~name:"link" ~rate_bytes_per_s:100.0 ~latency_s:0.25 () in
  let ends = ref [] in
  for i = 1 to 3 do
    Engine.spawn e ~name:(string_of_int i) (fun () ->
        Engine.Server.transfer srv 100.0;
        ends := Engine.time () :: !ends)
  done;
  ignore (Engine.run e);
  check (Alcotest.list fl) "queueing + latency" [ 1.25; 2.25; 3.25 ] (List.sort compare !ends);
  check fl "busy time" 3.0 (Engine.Server.busy_time srv);
  check fl "bytes" 300.0 (Engine.Server.bytes_moved srv)

let test_server_per_packet_overhead () =
  let e = Engine.create () in
  let srv =
    Engine.Server.create e ~name:"l" ~rate_bytes_per_s:1000.0 ~per_packet_s:0.1 ~packet_bytes:10.0 ()
  in
  Engine.spawn e (fun () -> Engine.Server.transfer srv 30.0);
  let r = Engine.run e in
  (* 3 packets x 0.1 + 30/1000 *)
  check fl "packetized time" 0.33 r.end_time

let test_determinism () =
  let run () =
    let e = Engine.create () in
    let ch = Engine.Channel.create e ~name:"c" ~capacity:7.0 in
    let trace = ref [] in
    for i = 0 to 4 do
      Engine.spawn e ~name:(Printf.sprintf "p%d" i) (fun () ->
          Engine.wait (0.1 *. float_of_int i);
          Engine.Channel.push ch 3.0;
          trace := (i, Engine.time ()) :: !trace)
    done;
    Engine.spawn e ~name:"drain" (fun () ->
        for _ = 1 to 5 do
          Engine.Channel.pull ch 3.0;
          Engine.wait 0.05
        done);
    ignore (Engine.run e);
    !trace
  in
  check bool "identical traces" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Design simulator                                                    *)
(* ------------------------------------------------------------------ *)

let simple_design ?(cross = false) () =
  (* producer -> consumer, optionally split across 2 FPGAs. *)
  let b = Taskgraph.Builder.create () in
  let p =
    Taskgraph.Builder.add_task b ~name:"producer"
      ~compute:(Task.make_compute ~elems:1e6 ~ii:1.0 ())
      ()
  in
  let c =
    Taskgraph.Builder.add_task b ~name:"consumer"
      ~compute:(Task.make_compute ~elems:1e6 ~ii:1.0 ())
      ()
  in
  ignore (Taskgraph.Builder.add_fifo b ~src:p ~dst:c ~width_bits:32 ~elems:1e6 ());
  let g = Taskgraph.Builder.build b in
  let board = Board.u55c () in
  let cluster = Cluster.make ~board:(fun () -> board) (if cross then 2 else 1) in
  let synthesis = Synthesis.run ~board g in
  let assignment = if cross then [| 0; 1 |] else [| 0; 0 |] in
  Design_sim.make_config ~graph:g ~assignment
    ~freq_mhz:(Array.make (Cluster.size cluster) 300.0)
    ~cluster ~synthesis ()

let test_design_sim_local () =
  let r = Design_sim.run (simple_design ()) in
  check bool "completes" true (r.deadlocked = []);
  (* 1e6 elems at 1 elem/cycle at 300 MHz ~ 3.33 ms, pipelined overlap. *)
  check bool "latency near compute bound" true (r.latency_s > 0.003 && r.latency_s < 0.005);
  check bool "no links used" true (r.links = [])

let test_design_sim_cross_fpga () =
  let local = Design_sim.run (simple_design ()) in
  let crossed = Design_sim.run (simple_design ~cross:true ()) in
  check bool "link appears" true (List.length crossed.links = 1);
  let link = List.hd crossed.links in
  check bool "link carried the stream" true (link.Design_sim.bytes >= 4e6);
  check bool "crossing is never faster" true (crossed.latency_s >= local.latency_s -. 1e-6)

let test_design_sim_bulk_serializes () =
  let make mode =
    let b = Taskgraph.Builder.create () in
    let p = Taskgraph.Builder.add_task b ~name:"p" ~compute:(Task.make_compute ~elems:1e6 ~ii:1.0 ()) () in
    let c = Taskgraph.Builder.add_task b ~name:"c" ~compute:(Task.make_compute ~elems:1e6 ~ii:1.0 ()) () in
    ignore (Taskgraph.Builder.add_fifo b ~src:p ~dst:c ~width_bits:32 ~elems:1e6 ~mode ());
    let g = Taskgraph.Builder.build b in
    let board = Board.u55c () in
    let cluster = Cluster.make ~board:(fun () -> board) 2 in
    let synthesis = Synthesis.run ~board g in
    Design_sim.run
      (Design_sim.make_config ~graph:g ~assignment:[| 0; 1 |] ~freq_mhz:[| 300.0; 300.0 |]
         ~cluster ~synthesis ())
  in
  let stream = make Fifo.Stream and bulk = make Fifo.Bulk in
  check bool "bulk strictly slower than stream (no overlap)" true
    (bulk.latency_s > stream.latency_s *. 1.5)

let test_design_sim_cycle_credits () =
  (* a <-> b feedback loop must not deadlock. *)
  let b = Taskgraph.Builder.create () in
  let x = Taskgraph.Builder.add_task b ~name:"x" ~compute:(Task.make_compute ~elems:1000.0 ~ii:1.0 ()) () in
  let y = Taskgraph.Builder.add_task b ~name:"y" ~compute:(Task.make_compute ~elems:1000.0 ~ii:1.0 ()) () in
  ignore (Taskgraph.Builder.add_fifo b ~src:x ~dst:y ~elems:1000.0 ());
  ignore (Taskgraph.Builder.add_fifo b ~src:y ~dst:x ~elems:1000.0 ());
  let g = Taskgraph.Builder.build b in
  let board = Board.u55c () in
  let cluster = Cluster.make ~board:(fun () -> board) 1 in
  let synthesis = Synthesis.run ~board g in
  let r =
    Design_sim.run
      (Design_sim.make_config ~graph:g ~assignment:[| 0; 0 |] ~freq_mhz:[| 300.0 |] ~cluster
         ~synthesis ())
  in
  check bool "cycle completes via credits" true (r.deadlocked = [])

let test_design_sim_memory_bound () =
  (* A reader whose port is narrow must be slower than compute alone. *)
  let make bw =
    let b = Taskgraph.Builder.create () in
    let p =
      Taskgraph.Builder.add_task b ~name:"rd"
        ~compute:(Task.make_compute ~elems:1e6 ~ii:1.0 ())
        ~mem_ports:[ Task.mem_port ~dir:Task.Read ~width_bits:256 ~bytes:1e9 () ]
        ()
    in
    ignore p;
    let g = Taskgraph.Builder.build b in
    let board = Board.u55c () in
    let cluster = Cluster.make ~board:(fun () -> board) 1 in
    let synthesis = Synthesis.run ~board g in
    Design_sim.run
      (Design_sim.make_config
         ~port_bandwidth_gbps:(fun _ _ -> bw)
         ~graph:g ~assignment:[| 0 |] ~freq_mhz:[| 300.0 |] ~cluster ~synthesis ())
  in
  let fast = make 14.4 and slow = make 1.0 in
  check bool "bandwidth starvation slows the task" true (slow.latency_s > fast.latency_s *. 5.0)

let test_design_sim_link_contention () =
  (* Many parallel streams over one FPGA pair share one port. *)
  let make n =
    let b = Taskgraph.Builder.create () in
    let srcs = List.init n (fun i -> Taskgraph.Builder.add_task b ~name:(Printf.sprintf "s%d" i) ~compute:(Task.make_compute ~elems:1e5 ~ii:1.0 ()) ()) in
    let dsts = List.init n (fun i -> Taskgraph.Builder.add_task b ~name:(Printf.sprintf "d%d" i) ~compute:(Task.make_compute ~elems:1e5 ~ii:1.0 ()) ()) in
    List.iter2
      (fun s d -> ignore (Taskgraph.Builder.add_fifo b ~src:s ~dst:d ~width_bits:512 ~elems:1e7 ()))
      srcs dsts;
    let g = Taskgraph.Builder.build b in
    let board = Board.u55c () in
    let cluster = Cluster.make ~board:(fun () -> board) 2 in
    let synthesis = Synthesis.run ~board g in
    let assignment = Array.init (2 * n) (fun i -> if i < n then 0 else 1) in
    Design_sim.run
      (Design_sim.make_config ~graph:g ~assignment ~freq_mhz:[| 300.0; 300.0 |] ~cluster ~synthesis ())
  in
  let one = make 1 and four = make 4 in
  check bool "4 streams contend on the shared port" true (four.latency_s > one.latency_s *. 2.0)

let test_design_sim_validation () =
  let cfg = simple_design () in
  Alcotest.check_raises "bad clock" (Invalid_argument "Design_sim: clock must be positive")
    (fun () -> ignore (Design_sim.run { cfg with Design_sim.freq_mhz = [| 0.0 |] }));
  Alcotest.check_raises "clock count" (Invalid_argument "Design_sim: one clock per FPGA required")
    (fun () -> ignore (Design_sim.run { cfg with Design_sim.freq_mhz = [| 300.0; 300.0 |] }));
  Alcotest.check_raises "assignment range" (Invalid_argument "Design_sim: assignment out of range")
    (fun () -> ignore (Design_sim.run { cfg with Design_sim.assignment = [| 0; 5 |] }));
  Alcotest.check_raises "chunks" (Invalid_argument "Design_sim: chunks must be positive")
    (fun () -> ignore (Design_sim.run { cfg with Design_sim.chunks = 0 }))

let test_engine_exception_propagates () =
  let e = Engine.create () in
  Engine.spawn e (fun () -> failwith "boom");
  Alcotest.check_raises "process exception surfaces" (Failure "boom") (fun () ->
      ignore (Engine.run e))

let test_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  Engine.spawn e ~name:"a" (fun () ->
      Engine.wait 1.0;
      fired := 1 :: !fired;
      Engine.wait 1.0;
      fired := 2 :: !fired);
  let r1 = Engine.run ~until:1.5 e in
  check (Alcotest.list int) "events <= until run, later ones stay queued" [ 1 ] (List.rev !fired);
  check fl "end_time is the last executed event, not the horizon" 1.0 r1.end_time;
  check bool "waiting on time is not a deadlock" true (r1.deadlocked = []);
  (* resuming the same engine drains the rest *)
  let r2 = Engine.run e in
  check (Alcotest.list int) "resumed run finishes" [ 1; 2 ] (List.rev !fired);
  check fl "final end time" 2.0 r2.end_time;
  (* a horizon past the last event never stretches end_time *)
  let e2 = Engine.create () in
  Engine.spawn e2 (fun () -> Engine.wait 1.0);
  check fl "end_time never overshoots an early-drained queue" 1.0
    (Engine.run ~until:5.0 e2).end_time

let test_channel_capacity_invariant () =
  (* Oversized pushes stream through in capacity-sized pieces; at no
     observable instant may the level leave [0, capacity], and free_space
     must always be the clamped complement. *)
  let e = Engine.create () in
  let cap = 4.0 in
  let ch = Engine.Channel.create e ~name:"c" ~capacity:cap in
  let ok = ref true in
  let sample () =
    let lvl = Engine.Channel.level ch in
    if lvl < -1e-9 || lvl > cap +. 1e-9 then ok := false;
    if Float.abs (Engine.Channel.free_space ch -. Float.max 0.0 (cap -. lvl)) > 1e-9 then
      ok := false
  in
  Engine.spawn e ~name:"p" (fun () ->
      for _ = 1 to 5 do
        Engine.Channel.push ch 10.0;
        sample ()
      done);
  Engine.spawn e ~name:"q" (fun () ->
      for _ = 1 to 25 do
        Engine.wait 0.1;
        Engine.Channel.pull ch 2.0;
        sample ()
      done);
  let r = Engine.run e in
  check bool "no deadlock" true (r.deadlocked = []);
  check bool "level stayed inside [0, capacity]" true !ok;
  check fl "conservation" (Engine.Channel.total_pushed ch)
    (Engine.Channel.total_pulled ch +. Engine.Channel.level ch)

(* ------------------------------------------------------------------ *)
(* Fault-injected outcomes (tentpole)                                  *)
(* ------------------------------------------------------------------ *)

let test_outcome_completed () =
  match Design_sim.run_outcome (simple_design ~cross:true ()) with
  | Design_sim.Completed r ->
    check bool "same result as run" true
      (r.latency_s = (Design_sim.run (simple_design ~cross:true ())).latency_s)
  | _ -> Alcotest.fail "fault-free run must report Completed"

let test_outcome_lossy_links_degrade () =
  let clean =
    match Design_sim.run_outcome (simple_design ~cross:true ()) with
    | Design_sim.Completed r -> r
    | _ -> Alcotest.fail "clean run"
  in
  let faults = Tapa_cs_network.Fault.make ~loss_rate:0.05 () in
  match Design_sim.run_outcome ~faults (simple_design ~cross:true ()) with
  | Design_sim.Degraded { result; reasons } ->
    check bool "loss reason reported" true
      (List.exists (fun r -> String.length r > 0) reasons && reasons <> []);
    check bool "lossy run is slower" true (result.latency_s > clean.latency_s)
  | _ -> Alcotest.fail "lossy run must report Degraded"

let test_outcome_loss_local_only_is_harmless () =
  (* Loss only derates inter-FPGA links; a single-FPGA design still
     reports Degraded (the fault was requested) but keeps its latency. *)
  let clean =
    match Design_sim.run_outcome (simple_design ()) with
    | Design_sim.Completed r -> r
    | _ -> Alcotest.fail "clean run"
  in
  let faults = Tapa_cs_network.Fault.make ~loss_rate:0.05 () in
  match Design_sim.run_outcome ~faults (simple_design ()) with
  | Design_sim.Degraded { result; _ } -> check fl "latency unchanged" clean.latency_s result.latency_s
  | Design_sim.Completed _ -> ()
  | Design_sim.Failed _ -> Alcotest.fail "must not fail"

let test_outcome_fifo_stall_degrades () =
  let clean =
    match Design_sim.run_outcome (simple_design ~cross:true ()) with
    | Design_sim.Completed r -> r
    | _ -> Alcotest.fail "clean run"
  in
  let faults = Tapa_cs_network.Fault.make ~fifo_stalls:[ (0, 0.0, 1e-3) ] () in
  match Design_sim.run_outcome ~faults (simple_design ~cross:true ()) with
  | Design_sim.Degraded { result; reasons } ->
    check bool "stall reason reported" true (reasons <> []);
    check bool "stall adds about its duration" true
      (result.latency_s >= clean.latency_s +. 0.9e-3)
  | _ -> Alcotest.fail "stalled run must report Degraded"

let test_outcome_chained_stall_windows () =
  (* Two back-to-back stall windows on the same FIFO, listed out of
     order: serving the first lands the process exactly at the start of
     the second.  The fixpoint walk must serve both; the old single-pass
     walk over unsorted windows silently skipped the second. *)
  let clean =
    match Design_sim.run_outcome (simple_design ~cross:true ()) with
    | Design_sim.Completed r -> r
    | _ -> Alcotest.fail "clean run"
  in
  let faults =
    Tapa_cs_network.Fault.make ~fifo_stalls:[ (0, 2e-3, 1e-3); (0, 1e-3, 1e-3) ] ()
  in
  match Design_sim.run_outcome ~faults (simple_design ~cross:true ()) with
  | Design_sim.Degraded { result; _ } ->
    check bool "both chained windows served" true
      (result.latency_s >= clean.latency_s +. 1.9e-3)
  | _ -> Alcotest.fail "stalled run must report Degraded"

let test_outcome_device_halt_fails () =
  (* Halting the consumer's FPGA at t=0 starves the producer: the run
     cannot finish and must classify as Failed, attributing the halt. *)
  let faults = Tapa_cs_network.Fault.make ~device_halts:[ (1, 0.0) ] () in
  match Design_sim.run_outcome ~faults (simple_design ~cross:true ()) with
  | Design_sim.Failed { fault; partial } ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
      at 0
    in
    check bool "halt attributed" true (contains fault "halt");
    check bool "partial stats present" true (partial.latency_s >= 0.0)
  | Design_sim.Completed _ -> Alcotest.fail "halted run must not complete"
  | Design_sim.Degraded _ -> Alcotest.fail "halted run must not merely degrade"

let test_outcome_deterministic () =
  let faults = Tapa_cs_network.Fault.make ~seed:5 ~loss_rate:0.02 ~fifo_stalls:[ (0, 1e-4, 5e-4) ] () in
  let latency () =
    match Design_sim.run_outcome ~faults (simple_design ~cross:true ()) with
    | Design_sim.Degraded { result; _ } -> result.latency_s
    | Design_sim.Completed r -> r.latency_s
    | Design_sim.Failed _ -> Alcotest.fail "must finish"
  in
  check fl "bit-identical across runs" (latency ()) (latency ())

(* Random layered fan-out/fan-in pipeline split over 2 FPGAs — the corpus
   both the conservation property and the engine-equivalence property
   draw from. *)
let random_pipeline_config seed =
  let rng = Tapa_cs_util.Prng.create seed in
  let b = Taskgraph.Builder.create () in
  let stages = 2 + Tapa_cs_util.Prng.int rng 4 in
  let widths = [| 1; 2; 4 |] in
  (* layered DAG: every node in layer i feeds >= 1 node in layer i+1 *)
  let layers =
    Array.init stages (fun li ->
        Array.init
          (1 + Tapa_cs_util.Prng.int rng widths.(li mod 3))
          (fun ni ->
            Taskgraph.Builder.add_task b
              ~name:(Printf.sprintf "l%dn%d" li ni)
              ~compute:(Task.make_compute ~elems:(float_of_int (100 + Tapa_cs_util.Prng.int rng 1000)) ~ii:1.0 ())
              ()))
  in
  for li = 0 to stages - 2 do
    Array.iter
      (fun src ->
        let dst = layers.(li + 1).(Tapa_cs_util.Prng.int rng (Array.length layers.(li + 1))) in
        ignore
          (Taskgraph.Builder.add_fifo b ~src ~dst
             ~elems:(float_of_int (50 + Tapa_cs_util.Prng.int rng 500))
             ()))
      layers.(li)
  done;
  (* make sure every layer-i+1 node has an input: connect from node 0 *)
  for li = 0 to stages - 2 do
    Array.iter
      (fun dst ->
        ignore
          (Taskgraph.Builder.add_fifo b ~src:layers.(li).(0) ~dst ~elems:100.0 ()))
      layers.(li + 1)
  done;
  let g = Taskgraph.Builder.build b in
  let board = Board.u55c () in
  let cluster = Cluster.make ~board:(fun () -> board) 2 in
  let synthesis = Synthesis.run ~board g in
  let assignment = Array.init (Taskgraph.num_tasks g) (fun _ -> Tapa_cs_util.Prng.int rng 2) in
  Design_sim.make_config ~chunks:8 ~graph:g ~assignment ~freq_mhz:[| 300.0; 250.0 |] ~cluster
    ~synthesis ()

(* Property: random fan-out/fan-in pipelines conserve bytes on every
   channel and never deadlock. *)
let prop_random_pipelines_conserve =
  QCheck.Test.make ~name:"random pipelines complete and conserve" ~count:40
    (QCheck.int_range 0 10_000)
    (fun seed ->
      let r = Design_sim.run ~cache:false (random_pipeline_config seed) in
      r.deadlocked = [] && r.latency_s > 0.0
      && Array.for_all
           (fun (t : Design_sim.task_stat) -> t.finish_s <= r.latency_s +. 1e-9)
           r.tasks)

(* Everything the coalesced/reference equivalence contract covers. *)
let eq_key (r : Design_sim.result) =
  ( r.latency_s,
    r.deadlocked,
    List.map
      (fun (l : Design_sim.link_stat) -> (l.src_fpga, l.dst_fpga, l.bytes, l.busy_s))
      r.links )

(* Property: the coalesced engine is bit-identical to the reference
   engine — latency, deadlock set and link statistics, with no tolerance
   — over the random corpus. *)
let prop_coalesced_equals_reference =
  QCheck.Test.make ~name:"coalesced engine bit-identical to reference" ~count:40
    (QCheck.int_range 0 10_000)
    (fun seed ->
      let cfg = random_pipeline_config seed in
      let c = Design_sim.run ~cache:false cfg in
      let r = Design_sim.run_reference ~cache:false cfg in
      eq_key c = eq_key r && c.events <= r.events)

(* ------------------------------------------------------------------ *)
(* Engine equivalence, sweep harness, cache                            *)
(* ------------------------------------------------------------------ *)

let rate_mismatch_config () =
  (* 4x slower consumer across the link: credit piles up upstream, which
     is exactly where chunk batching compresses the most events. *)
  let b = Taskgraph.Builder.create () in
  let p = Taskgraph.Builder.add_task b ~name:"p" ~compute:(Task.make_compute ~elems:2e5 ~ii:1.0 ()) () in
  let c = Taskgraph.Builder.add_task b ~name:"c" ~compute:(Task.make_compute ~elems:2e5 ~ii:4.0 ()) () in
  ignore (Taskgraph.Builder.add_fifo b ~src:p ~dst:c ~width_bits:32 ~elems:2e5 ());
  let g = Taskgraph.Builder.build b in
  let board = Board.u55c () in
  let cluster = Cluster.make ~board:(fun () -> board) 2 in
  let synthesis = Synthesis.run ~board g in
  Design_sim.make_config ~graph:g ~assignment:[| 0; 1 |] ~freq_mhz:[| 300.0; 300.0 |] ~cluster
    ~synthesis ()

let fan_in_config () =
  (* Two producers at different rates on different FPGAs feeding one
     consumer: one cross FIFO, one local, mixed batch widths. *)
  let b = Taskgraph.Builder.create () in
  let p0 = Taskgraph.Builder.add_task b ~name:"p0" ~compute:(Task.make_compute ~elems:1e5 ~ii:1.0 ()) () in
  let p1 = Taskgraph.Builder.add_task b ~name:"p1" ~compute:(Task.make_compute ~elems:1e5 ~ii:2.0 ()) () in
  let c = Taskgraph.Builder.add_task b ~name:"c" ~compute:(Task.make_compute ~elems:2e5 ~ii:1.0 ()) () in
  ignore (Taskgraph.Builder.add_fifo b ~src:p0 ~dst:c ~width_bits:32 ~elems:1e5 ());
  ignore (Taskgraph.Builder.add_fifo b ~src:p1 ~dst:c ~width_bits:32 ~elems:1e5 ());
  let g = Taskgraph.Builder.build b in
  let board = Board.u55c () in
  let cluster = Cluster.make ~board:(fun () -> board) 2 in
  let synthesis = Synthesis.run ~board g in
  Design_sim.make_config ~graph:g ~assignment:[| 0; 1; 0 |] ~freq_mhz:[| 300.0; 300.0 |] ~cluster
    ~synthesis ()

let test_coalesced_matches_reference () =
  List.iter
    (fun (name, cfg) ->
      let c = Design_sim.run ~cache:false cfg in
      let r = Design_sim.run_reference ~cache:false cfg in
      check bool (name ^ ": latency/deadlocks/links bit-identical") true (eq_key c = eq_key r);
      check bool (name ^ ": coalescing never adds events") true (c.events <= r.events))
    [
      ("local", simple_design ());
      ("cross", simple_design ~cross:true ());
      ("rate mismatch", rate_mismatch_config ());
      ("fan-in", fan_in_config ());
    ];
  (* rate mismatch is where the reference event count actually explodes *)
  let cfg = rate_mismatch_config () in
  let c = Design_sim.run ~cache:false cfg in
  let r = Design_sim.run_reference ~cache:false cfg in
  check bool "rate mismatch coalesces substantially (>= 1.5x fewer events)" true
    (3 * c.events <= 2 * r.events)

let test_sweep_jobs_identity () =
  let points =
    Array.map
      (fun chunks ->
        Sim_sweep.job ~label:(string_of_int chunks)
          { (simple_design ~cross:true ()) with Design_sim.chunks })
      [| 4; 8; 16; 32 |]
  in
  let seq = Sim_sweep.run ~jobs:1 ~cache:false points in
  let par = Sim_sweep.run ~jobs:4 ~cache:false points in
  check bool "jobs=1 and jobs=4 rows byte-identical" true (seq = par);
  Array.iteri
    (fun i (label, _) ->
      check Alcotest.string "labels in job order" (string_of_int [| 4; 8; 16; 32 |].(i)) label)
    seq;
  (* a Reference-mode job rides the same harness and must agree *)
  let both =
    Sim_sweep.run ~jobs:1 ~cache:false
      [|
        Sim_sweep.job ~label:"c" (simple_design ~cross:true ());
        Sim_sweep.job ~mode:Design_sim.Reference ~label:"r" (simple_design ~cross:true ());
      |]
  in
  match (snd both.(0), snd both.(1)) with
  | Design_sim.Completed c, Design_sim.Completed r ->
    check bool "both engine modes agree through the sweep" true (eq_key c = eq_key r)
  | _ -> Alcotest.fail "sweep points must complete"

let test_cache_cold_warm_and_keys () =
  Design_sim.reset_cache ();
  let cfg = simple_design ~cross:true () in
  let cold = Design_sim.run cfg in
  let warm = Design_sim.run cfg in
  check bool "cold and warm results bit-identical (full record)" true (cold = warm);
  check bool "warm hit returns a fresh copy, not the cached arrays" true
    (not (cold.Design_sim.per_fpga_busy_s == warm.Design_sim.per_fpga_busy_s));
  check bool "one miss then one hit" true (Design_sim.cache_stats () = (1, 1));
  ignore (Design_sim.run { cfg with Design_sim.chunks = 32 });
  check bool "chunk count is part of the key" true (snd (Design_sim.cache_stats ()) = 2);
  ignore (Design_sim.run_reference cfg);
  check bool "engine mode is part of the key" true (snd (Design_sim.cache_stats ()) = 3);
  Design_sim.reset_cache ();
  check bool "reset drops entries and zeroes counters" true (Design_sim.cache_stats () = (0, 0))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_random_pipelines_conserve; prop_coalesced_equals_reference ]

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "event ordering" `Quick test_wait_orders_events;
          Alcotest.test_case "FIFO order at equal time" `Quick test_same_time_fifo_order;
          Alcotest.test_case "negative wait" `Quick test_negative_wait_rejected;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "run ~until semantics" `Quick test_run_until;
        ] );
      ( "channel",
        [
          Alcotest.test_case "backpressure" `Quick test_channel_backpressure;
          Alcotest.test_case "oversized messages" `Quick test_channel_oversized_message_streams;
          Alcotest.test_case "capacity invariant" `Quick test_channel_capacity_invariant;
          Alcotest.test_case "float rounding regression" `Quick test_channel_no_float_wedge;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
        ] );
      ( "server",
        [
          Alcotest.test_case "serialization + latency" `Quick test_server_serializes;
          Alcotest.test_case "per-packet overhead" `Quick test_server_per_packet_overhead;
        ] );
      ( "design_sim",
        [
          Alcotest.test_case "local pipeline" `Quick test_design_sim_local;
          Alcotest.test_case "cross-FPGA stream" `Quick test_design_sim_cross_fpga;
          Alcotest.test_case "bulk serializes" `Quick test_design_sim_bulk_serializes;
          Alcotest.test_case "feedback cycles" `Quick test_design_sim_cycle_credits;
          Alcotest.test_case "memory-bound tasks" `Quick test_design_sim_memory_bound;
          Alcotest.test_case "link contention" `Quick test_design_sim_link_contention;
          Alcotest.test_case "config validation" `Quick test_design_sim_validation;
          Alcotest.test_case "exception propagation" `Quick test_engine_exception_propagates;
        ] );
      ( "coalescing",
        [
          Alcotest.test_case "coalesced equals reference" `Quick test_coalesced_matches_reference;
          Alcotest.test_case "sweep jobs identity" `Quick test_sweep_jobs_identity;
          Alcotest.test_case "cache cold/warm + key sensitivity" `Quick test_cache_cold_warm_and_keys;
        ] );
      ( "outcomes",
        [
          Alcotest.test_case "fault-free completes" `Quick test_outcome_completed;
          Alcotest.test_case "lossy links degrade" `Quick test_outcome_lossy_links_degrade;
          Alcotest.test_case "local design shrugs off loss" `Quick test_outcome_loss_local_only_is_harmless;
          Alcotest.test_case "fifo stall degrades" `Quick test_outcome_fifo_stall_degrades;
          Alcotest.test_case "chained stall windows (fixpoint)" `Quick test_outcome_chained_stall_windows;
          Alcotest.test_case "device halt fails" `Quick test_outcome_device_halt_fails;
          Alcotest.test_case "deterministic outcomes" `Quick test_outcome_deterministic;
        ] );
      ("properties", qsuite);
    ]
