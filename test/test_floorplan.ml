(* Tests for the partitioner and both floorplanning levels. *)

open Tapa_cs_util
open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls
open Tapa_cs_floorplan

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let res lut = Resource.make ~lut ()
let caps k lut = Array.make k (res lut)

let simple_problem ?(k = 2) ?(cap = 100) ?(edges = []) ?(pulls = []) ?(fixed = []) areas =
  {
    Partition.areas = Array.of_list (List.map res areas);
    edges;
    pulls;
    k;
    capacities = caps k cap;
    dist = (fun a b -> abs (a - b));
    fixed;
  }

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)
(* ------------------------------------------------------------------ *)

let test_partition_respects_capacity () =
  (* 4 items of 40: at most two share a part of 100, so a 2-2 split. *)
  let p = simple_problem ~cap:100 [ 40; 40; 40; 40 ] in
  match Partition.solve p with
  | Some r ->
    check bool "feasible" true r.Partition.feasible;
    let on0 = Array.fold_left (fun acc x -> if x = 0 then acc + 1 else acc) 0 r.assignment in
    check int "balanced 2-2" 2 on0
  | None -> Alcotest.fail "expected a solution"

let test_partition_infeasible () =
  let p = simple_problem ~cap:50 [ 60 ] in
  check bool "oversized item rejected" true (Partition.solve p = None)

let test_partition_min_cut () =
  (* chain a-b-c-d with a heavy middle edge: optimal cut avoids it. *)
  let edges = [ (0, 1, 1.0); (1, 2, 100.0); (2, 3, 1.0) ] in
  let p = simple_problem ~cap:110 ~edges [ 50; 50; 50; 50 ] in
  match Partition.solve ~strategy:Partition.Exact p with
  | Some r ->
    check bool "1 and 2 colocated" true (r.assignment.(1) = r.assignment.(2));
    check (Alcotest.float 1e-9) "cost avoids heavy edge" 2.0 r.cost;
    check bool "proven optimal" true r.stats.proven_optimal
  | None -> Alcotest.fail "expected a solution"

let test_partition_fixed_respected () =
  let p = simple_problem ~cap:200 ~fixed:[ (0, 1); (3, 0) ] [ 10; 10; 10; 10 ] in
  match Partition.solve p with
  | Some r ->
    check int "item 0 pinned" 1 r.assignment.(0);
    check int "item 3 pinned" 0 r.assignment.(3)
  | None -> Alcotest.fail "expected a solution"

let test_partition_pulls_attract () =
  (* A single item pulled toward part 1 must land there. *)
  let p = simple_problem ~cap:100 ~pulls:[ (0, 1, 5.0) ] [ 10 ] in
  match Partition.solve p with
  | Some r -> check int "pull honored" 1 r.assignment.(0)
  | None -> Alcotest.fail "expected a solution"

let test_partition_k1 () =
  let p = simple_problem ~k:1 ~cap:100 [ 40; 40 ] in
  (match Partition.solve p with
  | Some r -> check bool "all on part 0" true (Array.for_all (( = ) 0) r.assignment)
  | None -> Alcotest.fail "k=1 should fit");
  let p = simple_problem ~k:1 ~cap:50 [ 40; 40 ] in
  check bool "k=1 over capacity" true (Partition.solve p = None)

let test_partition_k4_chain () =
  (* 8-item chain over 4 parts: contiguous split, cost = 3 cut edges. *)
  let edges = List.init 7 (fun i -> (i, i + 1, 1.0)) in
  let p = simple_problem ~k:4 ~cap:25 ~edges [ 10; 10; 10; 10; 10; 10; 10; 10 ] in
  match Partition.solve p with
  | Some r ->
    check bool "feasible" true r.feasible;
    check bool "cost is 3 (contiguous pairs)" true (r.cost <= 3.0 +. 1e-9)
  | None -> Alcotest.fail "expected a solution"

let test_exact_matches_brute_force () =
  (* Random small instances: exact must equal exhaustive search. *)
  let rng = Partition.prng_for_tests 99 in
  for _ = 1 to 25 do
    let n = 2 + Prng.int rng 5 in
    let areas = List.init n (fun _ -> 10 + Prng.int rng 30) in
    let nedges = Prng.int rng 6 in
    let edges =
      List.init nedges (fun _ ->
          let a = Prng.int rng n and b = Prng.int rng n in
          if a = b then None else Some (min a b, max a b, float_of_int (1 + Prng.int rng 9)))
      |> List.filter_map Fun.id
    in
    let cap = 60 + Prng.int rng 60 in
    let p = simple_problem ~cap ~edges areas in
    let brute =
      let best = ref None in
      for mask = 0 to (1 lsl n) - 1 do
        let assignment = Array.init n (fun i -> (mask lsr i) land 1) in
        if Partition.feasible_assignment p assignment then begin
          let c = Partition.cost_of p assignment in
          match !best with Some b when b <= c -> () | _ -> best := Some c
        end
      done;
      !best
    in
    match (Partition.solve ~strategy:Partition.Exact p, brute) with
    | Some r, Some b ->
      if not (Float.abs (r.cost -. b) < 1e-6) then
        Alcotest.failf "exact %f <> brute %f" r.cost b
    | None, None -> ()
    | Some _, None -> Alcotest.fail "solver found a solution brute force missed"
    | None, Some _ -> Alcotest.fail "solver missed a feasible solution"
  done

let test_heuristic_always_feasible_when_returned =
 fun () ->
  let rng = Partition.prng_for_tests 7 in
  for _ = 1 to 30 do
    let n = 2 + Prng.int rng 20 in
    let k = 2 + Prng.int rng 3 in
    let areas = List.init n (fun _ -> 5 + Prng.int rng 20) in
    let edges =
      List.init (Prng.int rng 30) (fun _ ->
          let a = Prng.int rng n and b = Prng.int rng n in
          if a = b then None else Some (a, b, float_of_int (1 + Prng.int rng 5)))
      |> List.filter_map Fun.id
    in
    let total = List.fold_left ( + ) 0 areas in
    let cap = (total / k) + 30 in
    let p = simple_problem ~k ~cap ~edges areas in
    match Partition.solve ~strategy:Partition.Heuristic p with
    | Some r -> check bool "returned solutions are feasible" true r.feasible
    | None -> ()
  done

(* ------------------------------------------------------------------ *)
(* Inter-FPGA floorplanning                                            *)
(* ------------------------------------------------------------------ *)

let big_task_graph ~tasks ~lut =
  let b = Taskgraph.Builder.create () in
  let ids =
    List.init tasks (fun i ->
        Taskgraph.Builder.add_task b ~name:(Printf.sprintf "t%d" i)
          ~resources:(Resource.make ~lut ()) ())
  in
  let rec link = function
    | a :: (c :: _ as rest) ->
      ignore (Taskgraph.Builder.add_fifo b ~src:a ~dst:c ~width_bits:64 ~elems:1e6 ());
      link rest
    | _ -> ()
  in
  link ids;
  Taskgraph.Builder.build b

let test_inter_fpga_spreads_when_needed () =
  (* 8 tasks x 300k LUT = 2.4M > one U55C: needs 4 FPGAs at T=0.7. *)
  let g = big_task_graph ~tasks:8 ~lut:300_000 in
  let synthesis = Synthesis.run g in
  let cluster = Cluster.make ~board:Board.u55c 4 in
  match Inter_fpga.run ~cluster ~synthesis g with
  | Ok r ->
    let used = Array.to_list r.Inter_fpga.assignment |> List.sort_uniq compare in
    check bool "uses several FPGAs" true (List.length used >= 3);
    check bool "chain cut minimal" true (List.length r.Inter_fpga.cut_fifos <= 3);
    check bool "under threshold everywhere" true
      (Array.for_all (fun u -> u <= 0.71) r.Inter_fpga.per_fpga_util)
  | Error e -> Alcotest.failf "unexpected failure: %s" (Inter_fpga.error_message e)

let test_inter_fpga_single_fpga_failure () =
  let g = big_task_graph ~tasks:8 ~lut:300_000 in
  let synthesis = Synthesis.run g in
  let cluster = Cluster.make ~board:Board.u55c 1 in
  match Inter_fpga.run ~cluster ~synthesis g with
  | Ok _ -> Alcotest.fail "2.4M LUTs cannot fit one U55C"
  | Error _ -> ()

let test_inter_fpga_networking_overhead_charged () =
  (* A single 780k-LUT task fits the bare 70 % budget (802k) but not the
     budget after two AlveoLink ports are charged (755k): adding devices
     must push this design off the happy path, proving the overhead is
     accounted.  (The graceful-degradation chain may still rescue it at a
     relaxed threshold — but only by firing a fallback rung.) *)
  let g = big_task_graph ~tasks:1 ~lut:780_000 in
  let synthesis = Synthesis.run g in
  let one = Cluster.make ~board:Board.u55c 1 in
  (match Inter_fpga.run ~cluster:one ~synthesis g with
  | Ok r ->
    check int "single fpga ok" 0 r.Inter_fpga.assignment.(0);
    check (Alcotest.list Alcotest.string) "no fallback on one device" [] r.Inter_fpga.fallbacks
  | Error e -> Alcotest.failf "single: %s" (Inter_fpga.error_message e));
  let two = Cluster.make ~board:Board.u55c 2 in
  match Inter_fpga.run ~cluster:two ~synthesis g with
  | Ok r ->
    check bool "802k budget minus 2 ports hosts 780k only via a fallback" true
      (r.Inter_fpga.fallbacks <> [])
  | Error _ -> ()

let test_inter_fpga_traffic_weighted_by_hops () =
  let g = big_task_graph ~tasks:4 ~lut:10_000 in
  let synthesis = Synthesis.run g in
  let cluster = Cluster.make ~board:Board.u55c 2 in
  match Inter_fpga.run ~cluster ~synthesis g with
  | Ok r ->
    let manual =
      List.fold_left (fun acc f -> acc +. Fifo.traffic_bytes f) 0.0 r.Inter_fpga.cut_fifos
    in
    (* ring of 2: every hop distance is 1 *)
    check (Alcotest.float 1.0) "traffic accounting" manual r.Inter_fpga.traffic_bytes
  | Error e -> Alcotest.failf "unexpected: %s" (Inter_fpga.error_message e)

(* ------------------------------------------------------------------ *)
(* Greedy fallback and degraded-cluster refloorplanning (tentpole)      *)
(* ------------------------------------------------------------------ *)

let test_partition_greedy_packs () =
  (* First-fit decreasing: feasible whenever the bins can hold the load. *)
  let p = simple_problem ~cap:100 [ 60; 60; 40; 40 ] in
  (match Partition.greedy p with
  | Some r ->
    check bool "greedy feasible" true r.Partition.feasible;
    check bool "greedy tagged" true (r.Partition.stats.backend = `Greedy)
  | None -> Alcotest.fail "greedy must pack 2x(60+40)");
  (* Oversized item: greedy returns an (infeasible) best effort, never
     crashes. *)
  let p = simple_problem ~cap:50 [ 60 ] in
  (match Partition.greedy p with
  | Some r -> check bool "over-capacity marked infeasible" false r.Partition.feasible
  | None -> Alcotest.fail "greedy still returns its best effort");
  (* Pinned items stay pinned. *)
  let p = simple_problem ~cap:100 ~fixed:[ (0, 1) ] [ 10; 10 ] in
  match Partition.greedy p with
  | Some r -> check int "fixed respected" 1 r.Partition.assignment.(0)
  | None -> Alcotest.fail "expected a packing"

let test_error_codes_match_linter_registry () =
  List.iter
    (fun (e, code) ->
      check Alcotest.string "TCS code" code (Inter_fpga.error_code e);
      check bool "registered diagnostic" true
        (List.exists
           (fun (c, _, _, _) -> c = code)
           Tapa_cs_analysis.Diagnostic.registry))
    [
      (Inter_fpga.Infeasible, "TCS305");
      (Inter_fpga.Over_capacity 2, "TCS306");
      (Inter_fpga.Solver_timeout, "TCS307");
    ]

let degraded_fixture () =
  (* 6 x 300k LUT needs three U55Cs at T=0.7; a 4-FPGA ring has one to
     spare. *)
  let g = big_task_graph ~tasks:6 ~lut:300_000 in
  let synthesis = Synthesis.run g in
  let cluster = Cluster.make ~board:Board.u55c 4 in
  (g, synthesis, cluster)

let test_run_degraded_avoids_failed_device () =
  let g, synthesis, cluster = degraded_fixture () in
  match Inter_fpga.run_degraded ~failed_devices:[ 2 ] ~cluster ~synthesis g with
  | Ok r ->
    check bool "no task on the dead device" true
      (Array.for_all (fun f -> f <> 2) r.Inter_fpga.assignment);
    check bool "degraded tag recorded" true
      (List.exists
         (fun t -> String.length t >= 8 && String.sub t 0 8 = "degraded")
         r.Inter_fpga.fallbacks)
  | Error e -> Alcotest.failf "degraded solve failed: %s" (Inter_fpga.error_message e)

let test_run_degraded_survives_downed_link () =
  let g, synthesis, cluster = degraded_fixture () in
  match Inter_fpga.run_degraded ~failed_links:[ (0, 1) ] ~cluster ~synthesis g with
  | Ok r ->
    check bool "degraded tag mentions the link" true
      (List.exists
         (fun t -> String.length t >= 8 && String.sub t 0 8 = "degraded")
         r.Inter_fpga.fallbacks);
    (* The mapping is still a valid full-cluster assignment. *)
    check bool "assignment in range" true
      (Array.for_all (fun f -> f >= 0 && f < 4) r.Inter_fpga.assignment)
  | Error e -> Alcotest.failf "downed link failed: %s" (Inter_fpga.error_message e)

let test_run_degraded_deterministic () =
  let g, synthesis, cluster = degraded_fixture () in
  let solve () =
    match Inter_fpga.run_degraded ~seed:3 ~failed_devices:[ 1 ] ~cluster ~synthesis g with
    | Ok r -> r.Inter_fpga.assignment
    | Error e -> Alcotest.failf "unexpected: %s" (Inter_fpga.error_message e)
  in
  check bool "same seed, same degraded mapping" true (solve () = solve ())

let test_run_degraded_edge_cases () =
  let g, synthesis, cluster = degraded_fixture () in
  (* Nothing failed: exactly the healthy path. *)
  (match
     ( Inter_fpga.run_degraded ~cluster ~synthesis g,
       Inter_fpga.run ~cluster ~synthesis g )
   with
  | Ok a, Ok b ->
    check bool "healthy degraded = run" true
      (a.Inter_fpga.assignment = b.Inter_fpga.assignment && a.Inter_fpga.fallbacks = [])
  | _ -> Alcotest.fail "healthy cluster must solve");
  (* Every device failed: infeasible, not a crash. *)
  (match Inter_fpga.run_degraded ~failed_devices:[ 0; 1; 2; 3 ] ~cluster ~synthesis g with
  | Error Inter_fpga.Infeasible -> ()
  | _ -> Alcotest.fail "no survivors must be Infeasible");
  (* Too many failures for the load: typed over-capacity error. *)
  match Inter_fpga.run_degraded ~failed_devices:[ 1; 2; 3 ] ~cluster ~synthesis g with
  | Error (Inter_fpga.Over_capacity n) -> check bool "over-capacity count positive" true (n > 0)
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "1.8M LUT cannot fit one U55C"

let test_run_degraded_masked_devices () =
  let g, synthesis, cluster = degraded_fixture () in
  (* Masking excludes boards from placement (another tenant owns them)
     without declaring them dead: no degraded tag, tasks avoid them. *)
  match Inter_fpga.run_degraded ~masked_devices:[ 0 ] ~cluster ~synthesis g with
  | Ok r ->
    check bool "no task on the masked board" true
      (Array.for_all (fun f -> f <> 0) r.Inter_fpga.assignment);
    check bool "masking alone is not degradation" true
      (not
         (List.exists
            (fun t -> String.length t >= 8 && String.sub t 0 8 = "degraded")
            r.Inter_fpga.fallbacks))
  | Error e -> Alcotest.failf "masked solve failed: %s" (Inter_fpga.error_message e)

let test_survivor_hops () =
  let cluster = Cluster.make ~board:Board.u55c 4 in
  (* Healthy ring of 4: opposite corners are 2 hops apart. *)
  let h = Inter_fpga.survivor_hops cluster in
  check int "ring diameter" 2 (h 0 2);
  check int "diagonal zero" 0 (h 3 3);
  (* Killing device 1 forces 0..2 the long way round. *)
  let h' = Inter_fpga.survivor_hops ~failed_devices:[ 1 ] cluster in
  check int "detour around dead device" 2 (h' 0 2);
  check int "neighbor unaffected" 1 (h' 2 3);
  (* Cutting both links of device 0 isolates it. *)
  let h'' = Inter_fpga.survivor_hops ~failed_links:[ (0, 1); (0, 3) ] cluster in
  check int "isolated device unreachable" Inter_fpga.unreachable_dist (h'' 0 2);
  check int "rest of the ring survives" 2 (h'' 1 3);
  check int "out of range unreachable" Inter_fpga.unreachable_dist (h 0 99)

let test_replace_fast_path_and_affected () =
  let g, synthesis, cluster = degraded_fixture () in
  let prev =
    match Inter_fpga.run_degraded ~cluster ~synthesis g with
    | Ok r -> r
    | Error e -> Alcotest.failf "baseline solve failed: %s" (Inter_fpga.error_message e)
  in
  let baseline = Inter_fpga.survivor_hops cluster in
  let used = Inter_fpga.devices_used prev in
  check bool "uses at least 3 boards" true (List.length used >= 3);
  check bool "cut pairs normalized" true
    (List.for_all (fun (a, b) -> a < b) (Inter_fpga.cut_pairs prev));
  (* A fault touching nothing the placement uses: replace returns the
     previous result physically (the farm's cache-reuse path). *)
  let spare =
    match List.filter (fun d -> not (List.mem d used)) [ 0; 1; 2; 3 ] with
    | d :: _ -> d
    | [] -> Alcotest.fail "fixture must leave a spare board"
  in
  let hops_after = Inter_fpga.survivor_hops ~failed_devices:[ spare ] cluster in
  (match
     ( Inter_fpga.affected ~alive:(fun d -> d <> spare) ~hops:hops_after ~baseline prev,
       Inter_fpga.replace ~failed_devices:[ spare ] ~baseline ~prev ~cluster ~synthesis g )
   with
  | affected, Ok r ->
    (* The spare board sits on the ring, so losing it may still stretch a
       cut pair's route; reuse is exact iff [affected] says untouched. *)
    check bool "replace reuses iff unaffected" (not affected) (r == prev)
  | _, Error e -> Alcotest.failf "spare-fault replace failed: %s" (Inter_fpga.error_message e));
  (* A fault killing a used board forces a real re-solve away from it. *)
  let victim = List.hd used in
  check bool "victim fault is affected" true
    (Inter_fpga.affected
       ~alive:(fun d -> d <> victim)
       ~hops:(Inter_fpga.survivor_hops ~failed_devices:[ victim ] cluster)
       ~baseline prev);
  match Inter_fpga.replace ~failed_devices:[ victim ] ~baseline ~prev ~cluster ~synthesis g with
  | Ok r ->
    check bool "re-solve is a new placement" true (r != prev);
    check bool "victim evacuated" true
      (Array.for_all (fun f -> f <> victim) r.Inter_fpga.assignment)
  | Error e -> Alcotest.failf "victim replace failed: %s" (Inter_fpga.error_message e)

(* ------------------------------------------------------------------ *)
(* Intra-FPGA floorplanning                                            *)
(* ------------------------------------------------------------------ *)

let test_intra_fpga_places_all () =
  let g = big_task_graph ~tasks:12 ~lut:40_000 in
  let board = Board.u55c () in
  let synthesis = Synthesis.run ~board g in
  let tasks = List.init 12 Fun.id in
  match Intra_fpga.run ~board ~synthesis ~graph:g ~tasks () with
  | Ok p ->
    List.iter (fun tid -> check bool "placed" true (p.Intra_fpga.slot_of.(tid) <> None)) tasks;
    check bool "cost accounted" true (p.Intra_fpga.cost >= 0.0);
    check bool "levels recorded" true (List.length p.Intra_fpga.levels >= 1);
    (* slot usage equals the sum of placed task areas *)
    let total_used = Resource.sum (Array.to_list p.Intra_fpga.slot_usage) in
    check bool "usage conserved" true
      (Resource.equal total_used (Resource.make ~lut:(12 * 40_000) ()))
  | Error e -> Alcotest.failf "unexpected: %s" e

let test_intra_fpga_mem_tasks_near_hbm () =
  let b = Taskgraph.Builder.create () in
  let mem =
    Taskgraph.Builder.add_task b ~name:"rd"
      ~mem_ports:[ Task.mem_port ~dir:Task.Read ~width_bits:512 ~bytes:1e9 () ]
      ~resources:(Resource.make ~lut:10_000 ()) ()
  in
  let compute =
    Taskgraph.Builder.add_task b ~name:"pe" ~resources:(Resource.make ~lut:10_000 ()) ()
  in
  ignore (Taskgraph.Builder.add_fifo b ~src:mem ~dst:compute ~width_bits:512 ~elems:1e6 ());
  let g = Taskgraph.Builder.build b in
  let board = Board.u55c () in
  let synthesis = Synthesis.run ~board g in
  match Intra_fpga.run ~board ~synthesis ~graph:g ~tasks:[ mem; compute ] () with
  | Ok p -> (
    match p.Intra_fpga.slot_of.(mem) with
    | Some s -> check int "memory task in the HBM row" 0 (board.Board.slots.(s)).Board.row
    | None -> Alcotest.fail "unplaced")
  | Error e -> Alcotest.failf "unexpected: %s" e

let test_intra_fpga_overflow_fails () =
  let g = big_task_graph ~tasks:4 ~lut:400_000 in
  let board = Board.u55c () in
  let synthesis = Synthesis.run ~board g in
  match Intra_fpga.run ~board ~synthesis ~graph:g ~tasks:[ 0; 1; 2; 3 ] () with
  | Ok _ -> Alcotest.fail "1.6M LUT cannot place on one board"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* HBM binding                                                         *)
(* ------------------------------------------------------------------ *)

let binding_fixture n_ports =
  let b = Taskgraph.Builder.create () in
  let ids =
    List.init n_ports (fun i ->
        Taskgraph.Builder.add_task b ~name:(Printf.sprintf "rd%d" i)
          ~mem_ports:[ Task.mem_port ~dir:Task.Read ~width_bits:256 ~bytes:1e8 () ]
          ())
  in
  (* keep the graph connected *)
  let rec link = function
    | a :: (c :: _ as rest) ->
      ignore (Taskgraph.Builder.add_fifo b ~src:a ~dst:c ());
      link rest
    | _ -> ()
  in
  link ids;
  let g = Taskgraph.Builder.build b in
  let board = Board.u55c () in
  let slot_of = Array.make n_ports (Some 0) in
  (g, board, slot_of)

let test_hbm_binding_balances () =
  let g, board, slot_of = binding_fixture 16 in
  let t = Hbm_binding.run ~board ~graph:g ~slot_of () in
  check int "16 ports bound" 16 (List.length t.Hbm_binding.assignments);
  (* Balanced: no channel should carry more than one of these equal ports. *)
  check (Alcotest.float 0.001) "max load = one port" 1e8 t.Hbm_binding.max_load_bytes;
  List.iter
    (fun (a : Hbm_binding.assignment) ->
      check bool "channel in range" true (a.channel >= 0 && a.channel < 32))
    t.Hbm_binding.assignments

let test_hbm_binding_explore_beats_naive () =
  let g, board, slot_of = binding_fixture 48 in
  let explored = Hbm_binding.run ~explore:true ~board ~graph:g ~slot_of () in
  let naive = Hbm_binding.run ~explore:false ~board ~graph:g ~slot_of () in
  check bool "exploration no worse on max load" true
    (explored.Hbm_binding.max_load_bytes <= naive.Hbm_binding.max_load_bytes +. 1.0)

let test_hbm_port_bandwidth_sharing () =
  let g, board, slot_of = binding_fixture 64 in
  (* 64 equal ports on 32 channels: two per channel, each gets half. *)
  let t = Hbm_binding.run ~board ~graph:g ~slot_of () in
  let bw = Hbm_binding.effective_port_bandwidth_gbps board t ~task_id:0 ~port_index:0 in
  check bool "half a channel" true (bw > 6.0 && bw < 8.0)

let test_hbm_binding_honors_user_channel () =
  let b = Taskgraph.Builder.create () in
  let t0 =
    Taskgraph.Builder.add_task b ~name:"rd"
      ~mem_ports:[ Task.mem_port ~channel:17 ~dir:Task.Read ~width_bits:256 ~bytes:1e6 () ]
      ()
  in
  let g = Taskgraph.Builder.build b in
  let board = Board.u55c () in
  let t = Hbm_binding.run ~board ~graph:g ~slot_of:[| Some 0 |] () in
  let a = List.find (fun (a : Hbm_binding.assignment) -> a.task_id = t0) t.Hbm_binding.assignments in
  check int "user binding kept" 17 a.Hbm_binding.channel

let test_partition_cost_bounded_by_global_mincut () =
  (* Independent oracle: any bipartition of a connected instance costs at
     least the Stoer-Wagner global min cut; with loose capacities the
     exact solver must achieve a cut-compatible cost. *)
  let rng = Partition.prng_for_tests 31 in
  for _ = 1 to 15 do
    let n = 3 + Prng.int rng 5 in
    (* connected: a random tree plus extra edges *)
    let edges = ref [] in
    for v = 1 to n - 1 do
      edges := (Prng.int rng v, v, float_of_int (1 + Prng.int rng 9)) :: !edges
    done;
    for _ = 1 to Prng.int rng 6 do
      let a = Prng.int rng n and b = Prng.int rng n in
      if a <> b then edges := (min a b, max a b, float_of_int (1 + Prng.int rng 9)) :: !edges
    done;
    let edges = !edges in
    (* capacities force a nontrivial split of uniform items *)
    let cap = 10 * (n - 1) in
    let p = simple_problem ~cap ~edges (List.init n (fun _ -> 10)) in
    let mc = Mincut.create n in
    List.iter (fun (a, b, w) -> Mincut.add_edge mc a b w) edges;
    let lower, _ = Mincut.min_cut mc in
    match Partition.solve ~strategy:Partition.Exact p with
    | Some r ->
      check bool "partition cost >= global min cut" true (r.Partition.cost >= lower -. 1e-9)
    | None -> Alcotest.fail "loose capacities must be satisfiable"
  done

let test_partition_deterministic () =
  (* Same seed, same problem -> identical assignment (reproducibility). *)
  let edges = List.init 19 (fun i -> (i, i + 1, float_of_int (1 + (i mod 3)))) in
  let p = simple_problem ~k:4 ~cap:80 ~edges (List.init 20 (fun i -> 10 + (i mod 3))) in
  match (Partition.solve ~seed:9 p, Partition.solve ~seed:9 p) with
  | Some a, Some b -> check bool "deterministic" true (a.Partition.assignment = b.Partition.assignment)
  | _ -> Alcotest.fail "expected solutions"

let test_partition_cache () =
  (* The solution cache must be transparent: a warm solve returns the
     stored record — runtime_s and all — and handing out a copy of the
     assignment keeps caller mutations from poisoning later hits. *)
  Partition.reset_cache ();
  let mk () =
    (* A fresh record (and fresh [dist] closure) per call: the key is
       content-addressed, so physically distinct but equal problems must
       still hit. *)
    simple_problem ~cap:110 ~edges:[ (0, 1, 1.0); (1, 2, 100.0); (2, 3, 1.0) ] [ 50; 50; 50; 50 ]
  in
  let r1 = Partition.solve ~strategy:Partition.Exact (mk ()) in
  let h0, m0 = Partition.cache_stats () in
  check bool "first solve misses" true (m0 >= 1 && h0 = 0);
  let r2 = Partition.solve ~strategy:Partition.Exact (mk ()) in
  let h1, _ = Partition.cache_stats () in
  check bool "second solve hits" true (h1 > h0);
  (match (r1, r2) with
  | Some a, Some b ->
    check bool "identical assignment" true (a.Partition.assignment = b.Partition.assignment);
    check bool "identical cost" true (a.Partition.cost = b.Partition.cost);
    check bool "identical stats (runtime replayed verbatim)" true
      (a.Partition.stats = b.Partition.stats);
    (* Mutate the first result; a later hit must be unaffected. *)
    a.Partition.assignment.(0) <- 99;
    (match Partition.solve ~strategy:Partition.Exact (mk ()) with
    | Some c -> check bool "cache unpoisoned by caller mutation" true (c.Partition.assignment.(0) <> 99)
    | None -> Alcotest.fail "expected a solution")
  | _ -> Alcotest.fail "expected solutions");
  (* A deadline-bearing call bypasses the cache: its result may depend on
     host speed, so it must neither consult nor populate the table. *)
  let h2, m2 = Partition.cache_stats () in
  ignore (Partition.solve ~strategy:Partition.Exact ~deadline_s:10.0 (mk ()));
  check bool "deadline solve bypasses cache" true (Partition.cache_stats () = (h2, m2));
  Partition.reset_cache ();
  check bool "reset clears counters" true (Partition.cache_stats () = (0, 0))

let test_partition_distance_metric_matters () =
  (* The same heavy edge costs more when its endpoints land farther apart:
     a star topology's hub detour must push the solver to colocate. *)
  let edges = [ (0, 1, 10.0) ] in
  let p_chain = simple_problem ~k:3 ~cap:100 ~edges [ 40; 40; 10 ] in
  let star_dist a b = if a = b then 0 else if a = 0 || b = 0 then 1 else 2 in
  let p_star = { p_chain with Partition.dist = star_dist } in
  (match (Partition.solve p_chain, Partition.solve p_star) with
  | Some c, Some s ->
    check bool "chain keeps pair adjacent or together" true (c.Partition.cost <= 10.0);
    check bool "star solution colocates or uses hub" true (s.Partition.cost <= 10.0)
  | _ -> Alcotest.fail "expected solutions")

let test_partition_grouped_decomposition () =
  (* 12 parts in 3 server-node groups: [Auto] routes through the
     hierarchical decomposition — cluster-level assignment, one raced
     subproblem per group, stitch — and the answer is a pure function of
     the inputs: a worker pool changes wall clock only, and the cache
     replays the grouped stats verbatim.  The same problem without
     [groups] takes the flat path (distinct cache entry, no
     subproblems). *)
  Partition.reset_cache ();
  let groups = Array.init 12 (fun part -> part / 4) in
  let gdist a b = if a = b then 0 else if groups.(a) = groups.(b) then 1 else 2 in
  let edges = List.init 35 (fun i -> (i, i + 1, float_of_int (1 + (i mod 5)))) in
  let p = simple_problem ~k:12 ~cap:200 ~edges (List.init 36 (fun _ -> 10)) in
  let p = { p with Partition.dist = gdist } in
  let solve ?pool () = Partition.solve ?pool ~groups p in
  match solve () with
  | None -> Alcotest.fail "expected a grouped solution"
  | Some r ->
    check bool "feasible" true r.Partition.feasible;
    check bool "decomposed into subproblems" true (r.Partition.stats.Partition.subproblems > 0);
    (match solve () with
    | Some r2 ->
      check bool "cache replays grouped stats verbatim" true
        (r.Partition.stats = r2.Partition.stats)
    | None -> Alcotest.fail "expected a warm solution");
    Partition.reset_cache ();
    let pool = Pool.create ~domains:2 () in
    let rp = Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () -> solve ~pool () in
    (match rp with
    | Some rp ->
      check bool "pool: identical assignment" true
        (r.Partition.assignment = rp.Partition.assignment);
      check bool "pool: identical stats" true
        ({ r.Partition.stats with Partition.runtime_s = 0.0 }
        = { rp.Partition.stats with Partition.runtime_s = 0.0 })
    | None -> Alcotest.fail "expected a pooled solution");
    Partition.reset_cache ();
    (match Partition.solve p with
    | Some flat ->
      check int "flat path spawns no subproblems" 0 flat.Partition.stats.Partition.subproblems;
      check int "flat path runs no races" 0
        (flat.Partition.stats.Partition.races_exact
        + flat.Partition.stats.Partition.races_anneal)
    | None -> Alcotest.fail "expected a flat solution")

(* ------------------------------------------------------------------ *)
(* Fragment digest + cache                                             *)
(* ------------------------------------------------------------------ *)

(* Seeded random subproblem of the shape the grouped decomposition
   hands to the fragment cache: a handful of items and parts, random
   edges / pulls / pins and a symmetric distance table. *)
let random_digest_problem rng =
  let n = 3 + Prng.int rng 8 in
  let k = 2 + Prng.int rng 3 in
  let areas = Array.init n (fun _ -> res (10 + Prng.int rng 50)) in
  let edges =
    List.filter_map Fun.id
      (List.init
         (Prng.int rng (2 * n))
         (fun _ ->
           let a = Prng.int rng n and b = Prng.int rng n in
           if a = b then None else Some (a, b, float_of_int (1 + Prng.int rng 64))))
  in
  let pulls =
    List.init (Prng.int rng 3) (fun _ ->
        (Prng.int rng n, Prng.int rng k, float_of_int (1 + Prng.int rng 16)))
  in
  let fixed = if Prng.int rng 4 = 0 then [ (Prng.int rng n, Prng.int rng k) ] else [] in
  let dtab = Array.make_matrix k k 0 in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let d = 1 + Prng.int rng 3 in
      dtab.(i).(j) <- d;
      dtab.(j).(i) <- d
    done
  done;
  {
    Partition.areas;
    edges;
    pulls;
    k;
    capacities = Array.init k (fun _ -> res (100 + Prng.int rng 100));
    dist = (fun a b -> dtab.(a).(b));
    fixed;
  }

let shuffled rng n =
  let a = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

(* Apply an item renumbering and a part permutation: the renamed problem
   describes the identical instance, so its digest must not move. *)
let renamed rng (p : Partition.problem) =
  let n = Array.length p.Partition.areas and k = p.Partition.k in
  let iperm = shuffled rng n and pperm = shuffled rng k in
  let pinv = Array.make k 0 in
  Array.iteri (fun old now -> pinv.(now) <- old) pperm;
  let areas = Array.make n p.Partition.areas.(0) in
  Array.iteri (fun old a -> areas.(iperm.(old)) <- a) p.Partition.areas;
  let capacities = Array.make k p.Partition.capacities.(0) in
  Array.iteri (fun old c -> capacities.(pperm.(old)) <- c) p.Partition.capacities;
  {
    Partition.areas;
    edges = List.map (fun (a, b, w) -> (iperm.(a), iperm.(b), w)) p.Partition.edges;
    pulls = List.map (fun (i, g, w) -> (iperm.(i), pperm.(g), w)) p.Partition.pulls;
    k;
    capacities;
    dist = (fun a b -> p.Partition.dist pinv.(a) pinv.(b));
    fixed = List.map (fun (i, g) -> (iperm.(i), pperm.(g))) p.Partition.fixed;
  }

let prop_digest_renaming_invariant =
  QCheck.Test.make ~name:"fragment digest invariant under renaming" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Prng.create seed in
      let p = random_digest_problem rng in
      let d = Partition.fragment_digest p in
      (* Several independent renamings of the same instance. *)
      List.for_all
        (fun _ -> Partition.fragment_digest (renamed rng p) = d)
        [ (); (); () ])

let prop_digest_mutation_sensitive =
  QCheck.Test.make ~name:"solution-relevant mutation changes fragment digest" ~count:40
    QCheck.(pair (int_range 0 100_000) (int_range 0 2))
    (fun (seed, kind) ->
      let rng = Prng.create seed in
      let p = random_digest_problem rng in
      let d = Partition.fragment_digest p in
      (* Mutate to a value no other element carries, so the change can
         never be absorbed by an automorphism of the instance. *)
      let mutated =
        match kind with
        | 0 when p.Partition.edges <> [] ->
          let wmax =
            List.fold_left (fun m (_, _, w) -> Float.max m w) 0.0 p.Partition.edges
          in
          let (a0, b0, _) = List.hd p.Partition.edges in
          {
            p with
            Partition.edges =
              (a0, b0, wmax +. 17.0) :: List.tl p.Partition.edges;
          }
        | 1 ->
          let areas = Array.copy p.Partition.areas in
          areas.(0) <- res 7777;
          { p with Partition.areas = areas }
        | _ ->
          let capacities = Array.copy p.Partition.capacities in
          capacities.(0) <- res 9999;
          { p with Partition.capacities = capacities }
      in
      Partition.fragment_digest mutated <> d)

let test_fragment_cache () =
  (* A 12-part / 3-group instance through the grouped path twice under
     different caller seeds: the second solve must replay every fragment
     (content-derived identity, caller seed excluded), and reset_cache
     must leave the fragment layer genuinely cold. *)
  Partition.reset_cache ();
  let rng = Prng.create 41 in
  let fpgas = 12 and tasks = 30 in
  let groups = Array.init fpgas (fun f -> f / 4) in
  let dist a b = if a = b then 0 else if groups.(a) = groups.(b) then 1 else 2 in
  let areas = Array.init tasks (fun _ -> res (30_000 + Prng.int rng 20_000)) in
  let edges =
    List.init (tasks - 1) (fun i -> (i, i + 1, float_of_int (32 * (1 + Prng.int rng 8))))
  in
  let p =
    {
      Partition.areas;
      edges;
      pulls = [];
      k = fpgas;
      capacities = caps fpgas 600_000;
      dist;
      fixed = [];
    }
  in
  (match Partition.solve ~groups p with
  | Some r -> check bool "cold grouped solve feasible" true r.Partition.feasible
  | None -> Alcotest.fail "expected a grouped solution");
  let cold = Partition.fragment_stats () in
  check bool "cold solve filled fragments" true (cold.Partition.frag_misses > 0);
  check int "cold solve replayed nothing" 0 cold.Partition.frag_hits;
  check bool "entries track misses" true (cold.Partition.frag_entries > 0);
  (match Partition.solve ~seed:2 ~groups p with
  | Some r -> check bool "warm grouped solve feasible" true r.Partition.feasible
  | None -> Alcotest.fail "expected a warm grouped solution");
  let warm = Partition.fragment_stats () in
  check bool "re-solve under a fresh seed replays fragments" true
    (warm.Partition.frag_hits >= cold.Partition.frag_misses);
  check int "no subproblem re-solved on replay" cold.Partition.groups_resolved
    warm.Partition.groups_resolved;
  Partition.reset_cache ();
  let reset = Partition.fragment_stats () in
  check int "reset clears entries" 0 reset.Partition.frag_entries;
  check int "reset clears hits" 0 reset.Partition.frag_hits;
  check int "reset clears misses" 0 reset.Partition.frag_misses;
  check int "reset clears resolved" 0 reset.Partition.groups_resolved

let test_intra_runtime_positive () =
  let g = big_task_graph ~tasks:10 ~lut:30_000 in
  let board = Board.u55c () in
  let synthesis = Synthesis.run ~board g in
  match Intra_fpga.run ~board ~synthesis ~graph:g ~tasks:(List.init 10 Fun.id) () with
  | Ok p -> check bool "L2 runtime accounted" true (Intra_fpga.runtime_s p >= 0.0)
  | Error e -> Alcotest.failf "unexpected: %s" e

let test_intra_crossings_consistent_with_cost () =
  let g = big_task_graph ~tasks:10 ~lut:60_000 in
  let board = Board.u55c () in
  let synthesis = Synthesis.run ~board g in
  match Intra_fpga.run ~board ~synthesis ~graph:g ~tasks:(List.init 10 Fun.id) () with
  | Ok p ->
    let manual =
      List.fold_left
        (fun acc (fid, d) ->
          acc +. (float_of_int (Taskgraph.fifo g fid).Fifo.width_bits *. float_of_int d))
        0.0 p.Intra_fpga.crossings
    in
    check (Alcotest.float 1e-6) "Eq. 4 cost equals crossing sum" manual p.Intra_fpga.cost
  | Error e -> Alcotest.failf "unexpected: %s" e

let () =
  Alcotest.run "floorplan"
    [
      ( "partition",
        [
          Alcotest.test_case "capacity (Eq. 1)" `Quick test_partition_respects_capacity;
          Alcotest.test_case "infeasible detected" `Quick test_partition_infeasible;
          Alcotest.test_case "min cut (Eq. 2)" `Quick test_partition_min_cut;
          Alcotest.test_case "fixed placements" `Quick test_partition_fixed_respected;
          Alcotest.test_case "pulls" `Quick test_partition_pulls_attract;
          Alcotest.test_case "k = 1" `Quick test_partition_k1;
          Alcotest.test_case "k = 4 chain" `Quick test_partition_k4_chain;
          Alcotest.test_case "exact = brute force" `Slow test_exact_matches_brute_force;
          Alcotest.test_case "heuristic feasibility" `Quick test_heuristic_always_feasible_when_returned;
          Alcotest.test_case "determinism" `Quick test_partition_deterministic;
          Alcotest.test_case "solution cache" `Quick test_partition_cache;
          Alcotest.test_case "min-cut lower bound (oracle)" `Quick test_partition_cost_bounded_by_global_mincut;
          Alcotest.test_case "distance metrics" `Quick test_partition_distance_metric_matters;
          Alcotest.test_case "grouped decomposition" `Quick test_partition_grouped_decomposition;
          Alcotest.test_case "fragment cache" `Quick test_fragment_cache;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_digest_renaming_invariant; prop_digest_mutation_sensitive ] );
      ( "inter_fpga",
        [
          Alcotest.test_case "spreads big designs" `Quick test_inter_fpga_spreads_when_needed;
          Alcotest.test_case "single-FPGA failure" `Quick test_inter_fpga_single_fpga_failure;
          Alcotest.test_case "networking IP overhead (§5.6)" `Quick test_inter_fpga_networking_overhead_charged;
          Alcotest.test_case "hop-weighted traffic" `Quick test_inter_fpga_traffic_weighted_by_hops;
          Alcotest.test_case "greedy fallback packs" `Quick test_partition_greedy_packs;
          Alcotest.test_case "TCS error codes" `Quick test_error_codes_match_linter_registry;
          Alcotest.test_case "degraded avoids failed FPGA" `Quick test_run_degraded_avoids_failed_device;
          Alcotest.test_case "degraded survives downed link" `Quick test_run_degraded_survives_downed_link;
          Alcotest.test_case "degraded deterministic" `Quick test_run_degraded_deterministic;
          Alcotest.test_case "degraded edge cases" `Quick test_run_degraded_edge_cases;
          Alcotest.test_case "masked devices (multi-tenant)" `Quick test_run_degraded_masked_devices;
          Alcotest.test_case "survivor hop metric" `Quick test_survivor_hops;
          Alcotest.test_case "replace fast path" `Quick test_replace_fast_path_and_affected;
        ] );
      ( "intra_fpga",
        [
          Alcotest.test_case "places all tasks" `Quick test_intra_fpga_places_all;
          Alcotest.test_case "HBM pull (§4.5)" `Quick test_intra_fpga_mem_tasks_near_hbm;
          Alcotest.test_case "overflow fails" `Quick test_intra_fpga_overflow_fails;
          Alcotest.test_case "L2 runtime" `Quick test_intra_runtime_positive;
          Alcotest.test_case "cost = crossing sum (Eq. 4)" `Quick test_intra_crossings_consistent_with_cost;
        ] );
      ( "hbm_binding",
        [
          Alcotest.test_case "balances channels" `Quick test_hbm_binding_balances;
          Alcotest.test_case "exploration helps" `Quick test_hbm_binding_explore_beats_naive;
          Alcotest.test_case "bandwidth sharing" `Quick test_hbm_port_bandwidth_sharing;
          Alcotest.test_case "user channel honored" `Quick test_hbm_binding_honors_user_channel;
        ] );
    ]
