(* Integration tests: the full seven-step compiler and the three flows on
   small-but-real designs, with golden-shape checks against the paper's
   qualitative results. *)

open Tapa_cs
open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_floorplan
open Tapa_cs_apps

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* Small configurations keep the ILP instances tiny so this suite stays
   fast; the full-scale paper configurations run in bench/main.exe. *)
let fast_options = { Compiler.default_options with strategy = Partition.Heuristic }

let small_chain ~tasks ~lut =
  let b = Taskgraph.Builder.create () in
  let ids =
    List.init tasks (fun i ->
        Taskgraph.Builder.add_task b ~name:(Printf.sprintf "s%d" i)
          ~compute:(Task.make_compute ~elems:1e5 ~ii:1.0 ())
          ~resources:(Resource.make ~lut ~ff:lut ()) ())
  in
  let rec link = function
    | a :: (c :: _ as rest) ->
      ignore (Taskgraph.Builder.add_fifo b ~src:a ~dst:c ~width_bits:64 ~elems:1e5 ());
      link rest
    | _ -> ()
  in
  link ids;
  Taskgraph.Builder.build b

let test_compile_seven_steps () =
  let g = small_chain ~tasks:6 ~lut:50_000 in
  let cluster = Cluster.make ~board:Board.u55c 2 in
  match Compiler.compile ~options:fast_options ~cluster g with
  | Error e -> Alcotest.failf "compile failed: %s" e
  | Ok c ->
    check int "one placement per FPGA" 2 (Array.length c.Compiler.intra);
    check int "one binding per FPGA" 2 (Array.length c.Compiler.hbm);
    check int "one pipeline report per FPGA" 2 (Array.length c.Compiler.pipeline);
    check bool "clock positive" true (c.Compiler.freq_mhz > 0.0);
    check bool "clock below board max" true (c.Compiler.freq_mhz <= 300.0);
    check bool "L1 timer ran" true (c.Compiler.l1_runtime_s >= 0.0);
    (* every task has an FPGA and a slot *)
    for tid = 0 to Taskgraph.num_tasks g - 1 do
      let fpga = Compiler.fpga_of c tid in
      check bool "fpga in range" true (fpga >= 0 && fpga < 2);
      check bool "slot assigned" true (Compiler.slot_of c tid <> None)
    done

let test_jobs_determinism () =
  (* The acceptance contract of the parallel pipeline: [jobs] may only
     change wall-clock, never the design.  Compare every deterministic
     output field between the sequential path and a 4-domain pool on the
     three example apps.  (The [l1_runtime_s]/[l2_runtime_s] timers are
     measured with [Sys.time] and so are the one legitimately
     nondeterministic part of the result.) *)
  let apps =
    [
      ("stencil", (Stencil.generate (Stencil.make_config ~iterations:8 ~fpgas:2 ())).App.graph);
      ( "pagerank",
        (Pagerank.generate (Pagerank.make_config ~dataset:Dataset.web_notredame ~fpgas:2 ()))
          .App.graph );
      ("knn", (Knn.generate (Knn.make_config ~n_points:100_000 ~dims:4 ~fpgas:2 ())).App.graph);
    ]
  in
  let cluster = Cluster.make ~board:Board.u55c 2 in
  List.iter
    (fun (name, g) ->
      let run jobs =
        match Compiler.compile ~options:{ fast_options with jobs } ~cluster g with
        | Ok c -> c
        | Error e -> Alcotest.failf "%s (jobs=%d): %s" name jobs e
      in
      let seq = run 1 and par = run 4 in
      check bool (name ^ ": synthesis profiles") true
        (seq.Compiler.synthesis.Tapa_cs_hls.Synthesis.profiles
        = par.Compiler.synthesis.Tapa_cs_hls.Synthesis.profiles);
      check int (name ^ ": cache hits") seq.Compiler.synthesis.Tapa_cs_hls.Synthesis.cache_hits
        par.Compiler.synthesis.Tapa_cs_hls.Synthesis.cache_hits;
      check bool (name ^ ": inter assignment") true
        (seq.Compiler.inter.Inter_fpga.assignment = par.Compiler.inter.Inter_fpga.assignment);
      check bool (name ^ ": slot maps") true
        (Array.for_all2
           (fun (a : Intra_fpga.t) (b : Intra_fpga.t) -> a.Intra_fpga.slot_of = b.Intra_fpga.slot_of)
           seq.Compiler.intra par.Compiler.intra);
      check bool (name ^ ": freq estimates") true (seq.Compiler.freq = par.Compiler.freq);
      check (Alcotest.float 0.0) (name ^ ": design clock") seq.Compiler.freq_mhz
        par.Compiler.freq_mhz;
      for tid = 0 to Taskgraph.num_tasks g - 1 do
        check bool (name ^ ": hbm port bandwidth") true
          (Compiler.port_bandwidth_gbps seq tid 0 = Compiler.port_bandwidth_gbps par tid 0)
      done)
    apps

let test_external_pool_equivalence () =
  (* A caller-owned domain pool (sweeps, the farm controller) must
     produce the same design as the compiler's own per-call pool, and
     must survive the compile: Compiler.compile never shuts down a pool
     it did not create. *)
  let g = (Stencil.generate (Stencil.make_config ~iterations:8 ~fpgas:2 ())).App.graph in
  let cluster = Cluster.make ~board:Board.u55c 2 in
  let pool = Tapa_cs_util.Pool.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Tapa_cs_util.Pool.shutdown pool) @@ fun () ->
  let run ?pool () =
    match Compiler.compile ~options:fast_options ?pool ~cluster g with
    | Ok c -> c
    | Error e -> Alcotest.failf "compile: %s" e
  in
  let own = run () in
  let shared = run ~pool () in
  check bool "shared pool: same assignment" true
    (own.Compiler.inter.Inter_fpga.assignment = shared.Compiler.inter.Inter_fpga.assignment);
  check (Alcotest.float 0.0) "shared pool: same clock" own.Compiler.freq_mhz
    shared.Compiler.freq_mhz;
  (* The pool is still usable after both compiles. *)
  let again = run ~pool () in
  check bool "pool survives repeated compiles" true
    (again.Compiler.inter.Inter_fpga.assignment = own.Compiler.inter.Inter_fpga.assignment)

let test_cache_cold_warm_identity () =
  (* The floorplan solution cache's contract: a warm compile replays the
     stored solver records verbatim, so every output field — including
     the Sys.time-derived runtime inside the replayed stats and the
     solver counters — is bit-identical to the cold compile.  Only the
     process-wide hit/miss counters may differ, and they live outside
     the compile result. *)
  let g = (Stencil.generate (Stencil.make_config ~iterations:8 ~fpgas:2 ())).App.graph in
  let cluster = Cluster.make ~board:Board.u55c 2 in
  let run () =
    match Compiler.compile ~options:fast_options ~cluster g with
    | Ok c -> c
    | Error e -> Alcotest.failf "compile: %s" e
  in
  Tapa_cs_floorplan.Partition.reset_cache ();
  let cold = run () in
  let _, misses_after_cold = Tapa_cs_floorplan.Partition.cache_stats () in
  check bool "cold compile populated the cache" true (misses_after_cold > 0);
  let warm = run () in
  let hits_after_warm, _ = Tapa_cs_floorplan.Partition.cache_stats () in
  check bool "warm compile hit the cache" true (hits_after_warm > 0);
  check bool "inter assignment identical" true
    (cold.Compiler.inter.Inter_fpga.assignment = warm.Compiler.inter.Inter_fpga.assignment);
  check bool "inter stats replayed verbatim" true
    (cold.Compiler.inter.Inter_fpga.stats = warm.Compiler.inter.Inter_fpga.stats);
  check (Alcotest.float 0.0) "L1 runtime replayed verbatim" cold.Compiler.l1_runtime_s
    warm.Compiler.l1_runtime_s;
  check bool "slot maps identical" true
    (Array.for_all2
       (fun (a : Intra_fpga.t) (b : Intra_fpga.t) -> a.Intra_fpga.slot_of = b.Intra_fpga.slot_of)
       cold.Compiler.intra warm.Compiler.intra);
  check bool "freq estimates identical" true (cold.Compiler.freq = warm.Compiler.freq);
  check bool "solver counters identical" true
    (Compiler.solver_stats cold = Compiler.solver_stats warm);
  (* A single-node cluster takes the flat paths, so the hierarchical /
     portfolio counters must replay as exact zeroes — any nonzero here
     means a flat solve leaked into the decomposition machinery. *)
  let s = Compiler.solver_stats cold in
  check Alcotest.int "flat path: no hierarchical subproblems" 0 s.Compiler.subproblems;
  check Alcotest.int "flat path: no portfolio races" 0
    (s.Compiler.races_exact + s.Compiler.races_anneal)

let test_flows_on_small_design () =
  let g = small_chain ~tasks:4 ~lut:20_000 in
  (match Flow.vitis g with
  | Ok d ->
    check bool "vitis label" true (d.Flow.label = "F1-V");
    check bool "vitis runs" true (Flow.latency_s d > 0.0)
  | Error e -> Alcotest.failf "vitis: %s" e);
  (match Flow.tapa ~options:fast_options g with
  | Ok d ->
    check bool "tapa label" true (d.Flow.label = "F1-T");
    check bool "compiled attached" true (d.Flow.compiled <> None)
  | Error e -> Alcotest.failf "tapa: %s" e);
  let cluster = Cluster.make ~board:Board.u55c 2 in
  match Flow.tapa_cs ~options:fast_options ~cluster g with
  | Ok d ->
    check bool "F2 label" true (d.Flow.label = "F2");
    check bool "simulates" true (Flow.latency_s d > 0.0)
  | Error e -> Alcotest.failf "tapa_cs: %s" e

let test_tapa_frequency_beats_vitis () =
  (* The floorplanned flow must never clock lower than the naive one on a
     congested memory-heavy design — the core §5 frequency claim. *)
  let b = Taskgraph.Builder.create () in
  let ids =
    List.init 8 (fun i ->
        Taskgraph.Builder.add_task b ~name:(Printf.sprintf "m%d" i)
          ~compute:(Task.make_compute ~elems:1e5 ~ii:1.0 ())
          ~mem_ports:[ Task.mem_port ~dir:Task.Read ~width_bits:512 ~bytes:1e8 () ]
          ~resources:(Resource.make ~lut:90_000 ~ff:110_000 ~bram:120 ()) ())
  in
  let rec link = function
    | a :: (c :: _ as rest) ->
      ignore (Taskgraph.Builder.add_fifo b ~src:a ~dst:c ~width_bits:512 ~elems:1e5 ());
      link rest
    | _ -> ()
  in
  link ids;
  let g = Taskgraph.Builder.build b in
  match (Flow.vitis g, Flow.tapa ~options:fast_options g) with
  | Ok v, Ok t -> check bool "F1-T >= F1-V frequency" true (t.Flow.freq_mhz >= v.Flow.freq_mhz)
  | Error e, _ -> Alcotest.failf "vitis: %s" e
  | _, Error e -> Alcotest.failf "tapa: %s" e

let test_oversized_design_needs_multi_fpga () =
  (* Each task fits a slot (< 191k LUT) but the whole design exceeds one
     U55C's budget — exactly the §5.5 CNN situation. *)
  let g = small_chain ~tasks:8 ~lut:150_000 in
  check bool "single-FPGA flows fail" true (Result.is_error (Flow.tapa ~options:fast_options g));
  let cluster = Cluster.make ~board:Board.u55c 4 in
  check bool "TAPA-CS routes it" true (Result.is_ok (Flow.tapa_cs ~options:fast_options ~cluster g))

let test_multi_fpga_speedup_on_parallel_design () =
  (* Independent branches (KNN-like) must speed up with more devices. *)
  let app1 = Knn.generate (Knn.make_config ~n_points:1_000_000 ~dims:8 ~fpgas:1 ()) in
  let app2 = Knn.generate (Knn.make_config ~n_points:1_000_000 ~dims:8 ~fpgas:2 ()) in
  match
    ( Flow.tapa ~options:fast_options app1.App.graph,
      Flow.tapa_cs ~options:fast_options ~cluster:(Cluster.make ~board:Board.u55c 2) app2.App.graph )
  with
  | Ok single, Ok dual ->
    let l1 = Flow.latency_s single and l2 = Flow.latency_s dual in
    check bool "2 FPGAs faster" true (l2 < l1)
  | Error e, _ -> Alcotest.failf "single: %s" e
  | _, Error e -> Alcotest.failf "dual: %s" e

let test_pagerank_superlinear_shape () =
  (* §5.3's shape: constant transfer volume + parallel launch means the
     per-FPGA latency keeps dropping through F4. *)
  let lat k =
    let app = Pagerank.generate (Pagerank.make_config ~dataset:Dataset.web_notredame ~fpgas:k ()) in
    if k = 1 then
      match Flow.tapa ~options:fast_options app.App.graph with
      | Ok d -> Flow.latency_s d
      | Error e -> Alcotest.failf "F1: %s" e
    else begin
      match
        Flow.tapa_cs ~options:fast_options ~cluster:(Cluster.make ~board:Board.u55c k) app.App.graph
      with
      | Ok d -> Flow.latency_s d
      | Error e -> Alcotest.failf "F%d: %s" k e
    end
  in
  let l1 = lat 1 and l2 = lat 2 and l4 = lat 4 in
  check bool "F2 < F1" true (l2 < l1);
  check bool "F4 < F2" true (l4 < l2)

let test_stencil_8fpga_internode_slowdown () =
  (* §5.7: the 512-iteration stencil over two nodes is slower than one
     FPGA because of host-staged transfers and sequential execution. *)
  let single = Stencil.generate (Stencil.make_config ~iterations:512 ~fpgas:1 ()) in
  let eight =
    Stencil.generate
      (Stencil.make_config ~iterations:512 ~fpgas:8 ~inter_node_at:(Some 4) ())
  in
  match
    ( Flow.vitis single.App.graph,
      (* Auto strategy: the hierarchical bisection is what routes the bulk
         handoff through the host link, as the real tool's ILP would. *)
      Flow.tapa_cs ~cluster:(Cluster.two_node_testbed ()) eight.App.graph )
  with
  | Ok f1, Ok f8 ->
    let l1 = Flow.latency_s f1 and l8 = Flow.latency_s f8 in
    check bool "8-FPGA stencil slower than single (§5.7)" true (l8 > l1 *. 0.8)
  | Error e, _ -> Alcotest.failf "single: %s" e
  | _, Error e -> Alcotest.failf "eight: %s" e

let test_cnn_routability_matches_paper () =
  (* §5.5: 13x4 routes via Vitis, 13x8 via TAPA; 13x12 and larger fail on
     one device and need TAPA-CS. *)
  let single cols flow =
    let app = Cnn.generate (Cnn.make_config ~cols ~fpgas:1 ()) in
    match flow with
    | `V -> Result.is_ok (Flow.vitis app.App.graph)
    | `T -> Result.is_ok (Flow.tapa ~options:fast_options app.App.graph)
  in
  check bool "13x4 routes on Vitis" true (single 4 `V);
  check bool "13x8 routes on TAPA" true (single 8 `T);
  check bool "13x12 fails on Vitis" false (single 12 `V);
  check bool "13x12 fails on TAPA" false (single 12 `T);
  check bool "13x20 fails on Vitis" false (single 20 `V);
  let app = Cnn.generate (Cnn.make_config ~cols:12 ~fpgas:2 ()) in
  check bool "13x12 routes on 2 FPGAs" true
    (Result.is_ok (Flow.tapa_cs ~options:fast_options ~cluster:(Cluster.make ~board:Board.u55c 2) app.App.graph))

let test_compiler_options_ablations () =
  let g = small_chain ~tasks:6 ~lut:80_000 in
  let cluster = Cluster.make ~board:Board.u55c 2 in
  let with_pipe =
    Compiler.compile ~options:{ fast_options with pipeline_interconnect = true } ~cluster g
  in
  let without_pipe =
    Compiler.compile ~options:{ fast_options with pipeline_interconnect = false } ~cluster g
  in
  match (with_pipe, without_pipe) with
  | Ok a, Ok b -> check bool "pipelining never lowers clock" true (a.Compiler.freq_mhz >= b.Compiler.freq_mhz)
  | Error e, _ | _, Error e -> Alcotest.failf "ablation compile: %s" e

let test_board_generality () =
  (* The flow is board-agnostic: the same design compiles on the U250
     (DDR, 8 slots) and the Stratix-10 model (no URAM, single die). *)
  let g = small_chain ~tasks:6 ~lut:50_000 in
  List.iter
    (fun board ->
      let cluster = Cluster.make ~board 2 in
      match Flow.tapa_cs ~options:fast_options ~cluster g with
      | Ok d ->
        check bool "positive clock" true (d.Flow.freq_mhz > 0.0);
        check bool "simulates" true (Flow.latency_s d > 0.0)
      | Error e -> Alcotest.failf "board flow failed: %s" e)
    [ Board.u250; Board.stratix10 ]

let test_degraded_compile_survives_device_failure () =
  (* Design sized for 2 FPGAs, physical cluster of 3 with one failure:
     the compiler must refloorplan onto the survivors and say so. *)
  let g = small_chain ~tasks:6 ~lut:50_000 in
  let cluster = Cluster.make ~board:Board.u55c 3 in
  let fault_plan = Tapa_cs_network.Fault.make ~seed:7 ~failed_devices:[ 2 ] () in
  let options = { fast_options with fault_plan = Some fault_plan } in
  match Compiler.compile ~options ~cluster g with
  | Error e -> Alcotest.failf "degraded compile failed: %s" e
  | Ok c ->
    check bool "flagged Degraded" true c.Compiler.degraded;
    check bool "fallback chain reported" true (c.Compiler.fallbacks <> []);
    Array.iter
      (fun f -> check bool "dead FPGA avoided" true (f <> 2))
      c.Compiler.inter.Inter_fpga.assignment

let test_degraded_compile_deterministic () =
  let g = small_chain ~tasks:6 ~lut:50_000 in
  let cluster = Cluster.make ~board:Board.u55c 3 in
  let fault_plan = Tapa_cs_network.Fault.make ~seed:11 ~loss_rate:0.02 ~failed_devices:[ 0 ] () in
  let compile jobs =
    match
      Compiler.compile
        ~options:{ fast_options with jobs; fault_plan = Some fault_plan }
        ~cluster g
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "compile (jobs=%d): %s" jobs e
  in
  let a = compile 1 and b = compile 4 in
  check bool "same assignment across jobs" true
    (a.Compiler.inter.Inter_fpga.assignment = b.Compiler.inter.Inter_fpga.assignment);
  check bool "same fallback chain" true (a.Compiler.fallbacks = b.Compiler.fallbacks);
  check (Alcotest.float 0.0) "same clock" a.Compiler.freq_mhz b.Compiler.freq_mhz

let test_port_bandwidth_capped_by_wire () =
  (* port bandwidth <= width * clock *)
  let b = Taskgraph.Builder.create () in
  ignore
    (Taskgraph.Builder.add_task b ~name:"rd"
       ~compute:(Task.make_compute ~elems:1e5 ~ii:1.0 ())
       ~mem_ports:[ Task.mem_port ~dir:Task.Read ~width_bits:64 ~bytes:1e8 () ]
       ~resources:(Resource.make ~lut:5_000 ()) ());
  let g = Taskgraph.Builder.build b in
  let cluster = Cluster.make ~board:Board.u55c 1 in
  match Compiler.compile ~options:fast_options ~cluster g with
  | Ok c ->
    let bw = Compiler.port_bandwidth_gbps c 0 0 in
    let wire = 64.0 /. 8.0 *. c.Compiler.freq_mhz *. 1e6 /. 1e9 in
    check bool "wire cap respected" true (bw <= wire +. 1e-9)
  | Error e -> Alcotest.failf "compile: %s" e

(* ------------------------------------------------------------------ *)
(* Static verification gate (--verify-static, TCS503)                  *)
(* ------------------------------------------------------------------ *)

let stencil2 () = (Stencil.generate (Stencil.make_config ~iterations:8 ~fpgas:2 ())).App.graph

let test_static_bounds_attached () =
  let g = stencil2 () in
  let cluster = Cluster.make ~board:Board.u55c 2 in
  match Compiler.compile ~options:fast_options ~cluster g with
  | Error e -> Alcotest.failf "compile: %s" e
  | Ok c ->
    let s = c.Compiler.static in
    let module Sp = Tapa_cs_analysis.Static_perf in
    check bool "interval ordered" true (s.Sp.latency_lower_s <= s.Sp.latency_upper_s);
    check bool "interval positive" true (s.Sp.latency_lower_s > 0.0);
    check bool "depths populated" true (s.Sp.min_depths <> []);
    check bool "bottleneck named" true (s.Sp.bottleneck <> None)

let test_verify_static_passes () =
  let g = stencil2 () in
  let cluster = Cluster.make ~board:Board.u55c 2 in
  let options = { fast_options with verify_static = true } in
  (match Compiler.compile ~options ~cluster g with
  | Error e -> Alcotest.failf "verified compile must pass: %s" e
  | Ok _ -> ());
  (* The simulated latency really is inside the attached interval. *)
  match Flow.tapa_cs ~options:fast_options ~cluster g with
  | Error e -> Alcotest.failf "flow: %s" e
  | Ok d ->
    let c = Option.get d.Flow.compiled in
    let s = c.Compiler.static in
    let module Sp = Tapa_cs_analysis.Static_perf in
    let l = Flow.latency_s d in
    check bool "flow latency inside interval" true
      (l >= s.Sp.latency_lower_s && l <= s.Sp.latency_upper_s)

let test_verify_static_catches_injected_violation () =
  let g = stencil2 () in
  let cluster = Cluster.make ~board:Board.u55c 2 in
  let options = { fast_options with verify_static = true } in
  Unix.putenv "TAPA_CS_INJECT_STATIC_VIOLATION" "1";
  let result = Compiler.compile ~options ~cluster g in
  Unix.putenv "TAPA_CS_INJECT_STATIC_VIOLATION" "";
  (match result with
  | Ok _ -> Alcotest.fail "corrupted interval must fail the verified compile"
  | Error e ->
    check bool "names TCS503" true
      (let nl = String.length "TCS503" and hl = String.length e in
       let rec go i = i + nl <= hl && (String.sub e i nl = "TCS503" || go (i + 1)) in
       go 0));
  (* Without the gate the corruption is carried but not enforced. *)
  Unix.putenv "TAPA_CS_INJECT_STATIC_VIOLATION" "1";
  let unchecked = Compiler.compile ~options:fast_options ~cluster g in
  Unix.putenv "TAPA_CS_INJECT_STATIC_VIOLATION" "";
  check bool "unverified compile unaffected" true (Result.is_ok unchecked)

(* ------------------------------------------------------------------ *)
(* Artifact round-trip and golden files                                *)
(* ------------------------------------------------------------------ *)

let compile_stencil2 () =
  let g = stencil2 () in
  let cluster = Cluster.make ~board:Board.u55c 2 in
  match Compiler.compile ~options:fast_options ~cluster g with
  | Ok c -> c
  | Error e -> Alcotest.failf "compile: %s" e

let test_roundtrip_clean () =
  let c = compile_stencil2 () in
  match Emit.verify_roundtrip c with
  | [] -> ()
  | ds ->
    Alcotest.failf "emit -> parse -> verify must be clean, got:\n%s"
      (Tapa_cs_analysis.Diagnostic.render ds)

(* Replace the first occurrence of [old_] in [s] with [new_]; [s]
   unchanged when absent. *)
let replace_first ~old_ ~new_ s =
  let nl = String.length old_ and hl = String.length s in
  let rec find i = if i + nl > hl then -1 else if String.sub s i nl = old_ then i else find (i + 1) in
  let at = find 0 in
  if at < 0 then s
  else String.sub s 0 at ^ new_ ^ String.sub s (at + nl) (hl - at - nl)

let test_roundtrip_catches_tampering () =
  let c = compile_stencil2 () in
  let roundtrip ~tcl_of ~cfg_of ~report = Emit.verify_artifacts c ~tcl_of ~cfg_of ~report in
  let flags code ds = List.exists (fun d -> d.Tapa_cs_analysis.Diagnostic.code = code) ds in
  let tcl = Emit.floorplan_tcl c and cfg = Emit.connectivity_cfg c in
  let report = Emit.design_report_json c in
  (* Rename a placed cell: the Tcl now places a task the floorplanner
     never assigned (and its real task goes missing). *)
  let ds =
    roundtrip
      ~tcl_of:(fun fpga ->
        let t = tcl ~fpga in
        if fpga = 0 then replace_first ~old_:"[get_cells -hier read" ~new_:"[get_cells -hier impostor" t
        else t)
      ~cfg_of:(fun fpga -> cfg ~fpga) ~report
  in
  check bool "tampered tcl flagged" true (flags "TCS601" ds);
  (* Re-channel an HBM binding. *)
  let ds =
    roundtrip
      ~tcl_of:(fun fpga -> tcl ~fpga)
      ~cfg_of:(fun fpga ->
        let t = cfg ~fpga in
        if fpga = 0 then replace_first ~old_:":HBM[0]" ~new_:":HBM[31]" t else t)
      ~report
  in
  check bool "tampered cfg flagged" true (flags "TCS602" ds);
  (* Wrong device count in the report. *)
  let ds =
    roundtrip
      ~tcl_of:(fun fpga -> tcl ~fpga)
      ~cfg_of:(fun fpga -> cfg ~fpga)
      ~report:(replace_first ~old_:"\"fpgas\": 2" ~new_:"\"fpgas\": 3" report)
  in
  check bool "tampered report flagged" true (flags "TCS603" ds);
  (* Understate a crossing-stage comment: the cut-set balance no longer
     re-derives. *)
  let ds =
    roundtrip
      ~tcl_of:(fun fpga ->
        let t = tcl ~fpga in
        replace_first ~old_:": 1 pipeline stage(s)" ~new_:": 2 pipeline stage(s)" t)
      ~cfg_of:(fun fpga -> cfg ~fpga) ~report
  in
  check bool "tampered stage comment flagged" true (flags "TCS604" ds)

(* Golden files: the emitted artifacts for the 8-iteration 2-FPGA stencil,
   with the two wall-clock floorplanner-runtime lines dropped.  Regenerate
   with TAPA_CS_UPDATE_GOLDEN=1 (writes into TAPA_CS_GOLDEN_DIR, default
   ./golden). *)

let normalize s =
  String.split_on_char '\n' s
  |> List.filter (fun l ->
         let has sub =
           let nl = String.length sub and hl = String.length l in
           let rec go i = i + nl <= hl && (String.sub l i nl = sub || go (i + 1)) in
           go 0
         in
         not (has "_floorplan_seconds"))
  |> String.concat "\n"

(* dune runtest runs in the test directory, dune exec in the workspace
   root: accept both. *)
let golden_dir () =
  match Sys.getenv_opt "TAPA_CS_GOLDEN_DIR" with
  | Some d -> d
  | None -> if Sys.file_exists "golden" then "golden" else Filename.concat "test" "golden"

let golden_check name actual =
  let path = Filename.concat (golden_dir ()) name in
  let actual = normalize actual in
  if Sys.getenv_opt "TAPA_CS_UPDATE_GOLDEN" <> None then begin
    let oc = open_out path in
    output_string oc actual;
    close_out oc
  end
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let expected = really_input_string ic n in
    close_in ic;
    if actual <> expected then
      Alcotest.failf "%s drifted from its golden file (regenerate with TAPA_CS_UPDATE_GOLDEN=1)"
        name
  end

let test_emit_golden () =
  let c = compile_stencil2 () in
  golden_check "stencil2_floorplan_f0.tcl.expected" (Emit.floorplan_tcl c ~fpga:0);
  golden_check "stencil2_floorplan_f1.tcl.expected" (Emit.floorplan_tcl c ~fpga:1);
  golden_check "stencil2_connectivity_f0.cfg.expected" (Emit.connectivity_cfg c ~fpga:0);
  golden_check "stencil2_connectivity_f1.cfg.expected" (Emit.connectivity_cfg c ~fpga:1);
  golden_check "stencil2_design_report.json.expected" (Emit.design_report_json c)

(* ------------------------------------------------------------------ *)
(* SLO pruning: lossless and counted                                   *)
(* ------------------------------------------------------------------ *)

let chain_design ~label ~elems =
  let b = Taskgraph.Builder.create () in
  let ids =
    List.init 3 (fun i ->
        Taskgraph.Builder.add_task b ~name:(Printf.sprintf "c%d" i)
          ~compute:(Task.make_compute ~elems ~ii:1.0 ())
          ~resources:(Resource.make ~lut:20_000 ~ff:20_000 ()) ())
  in
  let rec link = function
    | a :: (c :: _ as rest) ->
      ignore (Taskgraph.Builder.add_fifo b ~src:a ~dst:c ~width_bits:64 ~elems ());
      link rest
    | _ -> ()
  in
  link ids;
  let g = Taskgraph.Builder.build b in
  let cluster = Cluster.make ~board:Board.u55c 2 in
  match Flow.tapa_cs ~options:fast_options ~cluster g with
  | Ok d -> { d with Flow.label }
  | Error e -> Alcotest.failf "chain %s: %s" label e

let test_simulate_many_slo_lossless () =
  let designs =
    [
      chain_design ~label:"fast" ~elems:1e4;
      chain_design ~label:"mid" ~elems:1e6;
      chain_design ~label:"slow" ~elems:1e8;
    ]
  in
  let bounds =
    List.map (fun d -> (Flow.static_bounds d).Tapa_cs_analysis.Static_perf.latency_lower_s) designs
  in
  (* An SLO between the fastest and slowest lower bounds: some points
     survive, some are pruned. *)
  let slo = (List.nth bounds 0 +. List.nth bounds 2) /. 2.0 in
  check bool "slo splits the corpus" true
    (List.exists (fun b -> b <= slo) bounds && List.exists (fun b -> b > slo) bounds);
  let unpruned = Flow.simulate_many ~jobs:1 designs in
  Tapa_cs_sim.Sim_sweep.reset_static_pruned ();
  let pruned = Flow.simulate_many ~jobs:1 ~slo_latency_s:slo designs in
  check bool "pruning counted" true (Tapa_cs_sim.Sim_sweep.static_pruned () > 0);
  check bool "some survivors" true (pruned <> []);
  check bool "fewer rows than unpruned" true (List.length pruned < List.length unpruned);
  (* Lossless: every surviving row is identical to its unpruned twin. *)
  List.iter
    (fun (label, outcome) ->
      match List.assoc_opt label unpruned with
      | None -> Alcotest.failf "survivor %s missing from the unpruned sweep" label
      | Some reference -> check bool (label ^ " identical") true (outcome = reference))
    pruned;
  (* A survivor's simulated latency can still exceed the SLO (the bound
     is a lower bound, not a prediction) — but no pruned point could have
     met it: its lower bound already exceeds the SLO. *)
  List.iter
    (fun d ->
      let lb = (Flow.static_bounds d).Tapa_cs_analysis.Static_perf.latency_lower_s in
      if List.mem_assoc d.Flow.label pruned |> not then
        check bool (d.Flow.label ^ " pruned soundly") true (lb > slo))
    designs

let test_autoscale_slo () =
  let kernel =
    {
      Autoscale.name = "slo-kernel";
      elems = 1e8;
      ops_per_elem = 8.0;
      bytes_per_elem = 8.0;
      pe_resources = Resource.make ~lut:30_000 ~ff:45_000 ~bram:37 ~dsp:75 ();
      pe_lanes = 4;
      exchange_bytes = 8e6;
    }
  in
  let cluster = Cluster.make ~board:Board.u55c 3 in
  (* Unreachable SLO: everything prunes, nothing simulates. *)
  Tapa_cs_sim.Sim_sweep.reset_static_pruned ();
  let rows = Autoscale.measured_sweep_slo ~jobs:1 ~slo_latency_s:1e-9 ~cluster kernel in
  check int "all pruned" (List.length rows) (Tapa_cs_sim.Sim_sweep.static_pruned ());
  List.iter
    (fun (_, _, row) ->
      match row with
      | Tapa_cs_sim.Sim_sweep.Pruned { lower_bound_s } ->
        check bool "bound above slo" true (lower_bound_s > 1e-9)
      | Tapa_cs_sim.Sim_sweep.Simulated _ -> Alcotest.fail "nothing can meet a 1ns SLO")
    rows;
  (* Generous SLO: nothing prunes, and the rows match the unpruned sweep. *)
  let unpruned = Autoscale.measured_sweep ~jobs:1 ~cluster kernel in
  Tapa_cs_sim.Sim_sweep.reset_static_pruned ();
  let rows = Autoscale.measured_sweep_slo ~jobs:1 ~slo_latency_s:3600.0 ~cluster kernel in
  check int "none pruned" 0 (Tapa_cs_sim.Sim_sweep.static_pruned ());
  List.iter2
    (fun (k1, _, row) (k2, _, outcome) ->
      check int "same point" k1 k2;
      match row with
      | Tapa_cs_sim.Sim_sweep.Simulated o -> check bool "same outcome" true (o = outcome)
      | Tapa_cs_sim.Sim_sweep.Pruned _ -> Alcotest.fail "generous SLO must not prune")
    rows unpruned

let () =
  Alcotest.run "core"
    [
      ( "compiler",
        [
          Alcotest.test_case "seven steps" `Quick test_compile_seven_steps;
          Alcotest.test_case "ablation knobs" `Quick test_compiler_options_ablations;
          Alcotest.test_case "port bandwidth wire cap" `Quick test_port_bandwidth_capped_by_wire;
          Alcotest.test_case "board generality (U250, Stratix-10)" `Quick test_board_generality;
          Alcotest.test_case "jobs=1 and jobs=4 outputs identical" `Quick test_jobs_determinism;
          Alcotest.test_case "caller-owned pool equivalent and survives" `Quick
            test_external_pool_equivalence;
          Alcotest.test_case "cache-cold and cache-warm outputs identical" `Quick
            test_cache_cold_warm_identity;
          Alcotest.test_case "degraded compile survives device failure" `Quick
            test_degraded_compile_survives_device_failure;
          Alcotest.test_case "degraded compile deterministic" `Quick
            test_degraded_compile_deterministic;
        ] );
      ( "flows",
        [
          Alcotest.test_case "all three flows run" `Quick test_flows_on_small_design;
          Alcotest.test_case "TAPA clock >= Vitis clock" `Quick test_tapa_frequency_beats_vitis;
          Alcotest.test_case "multi-FPGA unlocks big designs" `Quick test_oversized_design_needs_multi_fpga;
          Alcotest.test_case "CNN routability (§5.5)" `Slow test_cnn_routability_matches_paper;
        ] );
      ( "golden shapes",
        [
          Alcotest.test_case "parallel design scales" `Slow test_multi_fpga_speedup_on_parallel_design;
          Alcotest.test_case "pagerank keeps scaling" `Slow test_pagerank_superlinear_shape;
          Alcotest.test_case "8-FPGA stencil slowdown (§5.7)" `Slow test_stencil_8fpga_internode_slowdown;
        ] );
      ( "static verifier",
        [
          Alcotest.test_case "bounds attached to the compile" `Quick test_static_bounds_attached;
          Alcotest.test_case "--verify-static passes on honest bounds" `Quick
            test_verify_static_passes;
          Alcotest.test_case "--verify-static catches injected violation" `Quick
            test_verify_static_catches_injected_violation;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "emit -> parse -> verify is clean" `Quick test_roundtrip_clean;
          Alcotest.test_case "round-trip catches tampering" `Quick test_roundtrip_catches_tampering;
          Alcotest.test_case "emitters match golden files" `Quick test_emit_golden;
        ] );
      ( "slo pruning",
        [
          Alcotest.test_case "simulate_many pruning is lossless" `Quick
            test_simulate_many_slo_lossless;
          Alcotest.test_case "autoscale sweep pruning" `Quick test_autoscale_slo;
        ] );
    ]
