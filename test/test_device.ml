(* Tests for the device models: resource vectors, boards, topologies,
   clusters, and the calibration constants. *)

open Tapa_cs_device

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Resource                                                            *)
(* ------------------------------------------------------------------ *)

let test_resource_arith () =
  let a = Resource.make ~lut:100 ~ff:200 ~bram:3 ~dsp:4 ~uram:5 () in
  let b = Resource.make ~lut:10 ~ff:20 ~bram:1 ~dsp:1 ~uram:1 () in
  let s = Resource.add a b in
  check int "lut" 110 s.Resource.lut;
  check int "uram" 6 s.Resource.uram;
  let d = Resource.sub s b in
  check bool "sub inverts add" true (Resource.equal d a);
  check bool "sum" true (Resource.equal (Resource.sum [ a; b; b ]) (Resource.add a (Resource.scale_int 2 b)))

let test_resource_scale_rounds_up () =
  let a = Resource.make ~lut:10 () in
  check int "ceil scaling" 4 (Resource.scale 0.35 a).Resource.lut

let test_resource_fits () =
  let small = Resource.make ~lut:10 ~bram:5 () in
  let big = Resource.make ~lut:20 ~ff:1 ~bram:5 ~dsp:1 ~uram:1 () in
  check bool "fits" true (Resource.fits small ~within:big);
  check bool "not fits (one component)" false
    (Resource.fits (Resource.make ~lut:10 ~bram:6 ()) ~within:big);
  check bool "exceeds" true (Resource.exceeds (Resource.make ~dsp:2 ()) ~limit:big)

let test_resource_utilization () =
  let total = Resource.make ~lut:100 ~ff:100 ~bram:100 ~dsp:100 ~uram:100 () in
  let used = Resource.make ~lut:10 ~ff:20 ~bram:90 ~dsp:5 () in
  check (Alcotest.float 1e-9) "max component" 0.9 (Resource.utilization used ~total);
  check Alcotest.string "binding resource" "BRAM" (Resource.max_component_name used ~total);
  check (Alcotest.float 1e-9) "zero total safe" 0.0
    (Resource.utilization Resource.zero ~total:Resource.zero)

(* ------------------------------------------------------------------ *)
(* Board                                                               *)
(* ------------------------------------------------------------------ *)

let test_u55c_shape () =
  let b = Board.u55c () in
  check int "rows" 3 b.Board.rows;
  check int "cols" 2 b.Board.cols;
  check int "slots" 6 (Board.num_slots b);
  (* Paper Table 2 *)
  check int "LUT" 1_146_240 b.Board.total.Resource.lut;
  check int "FF" 2_292_480 b.Board.total.Resource.ff;
  check int "BRAM" 1776 b.Board.total.Resource.bram;
  check int "DSP" 8376 b.Board.total.Resource.dsp;
  check int "URAM" 960 b.Board.total.Resource.uram;
  check int "HBM channels" 32 b.Board.num_hbm_channels;
  check int "QSFP ports" 2 b.Board.num_qsfp;
  check (Alcotest.float 1e-9) "max freq" 300.0 b.Board.max_freq_mhz

let test_u55c_hbm_bottom_row () =
  let b = Board.u55c () in
  let hbm = Board.hbm_slots b in
  check int "two HBM slots" 2 (List.length hbm);
  List.iter (fun s -> check int "bottom row" 0 (b.Board.slots.(s)).Board.row) hbm;
  (* all 32 channels reachable *)
  let chans = List.concat_map (fun s -> (b.Board.slots.(s)).Board.hbm_channels) hbm in
  check int "all channels exposed" 32 (List.length (List.sort_uniq compare chans))

let test_board_manhattan () =
  let b = Board.u55c () in
  let s00 = Board.slot_index b ~row:0 ~col:0 in
  let s21 = Board.slot_index b ~row:2 ~col:1 in
  check int "manhattan" 3 (Board.manhattan b s00 s21);
  check int "self distance" 0 (Board.manhattan b s00 s00);
  check int "die crossings" 2 (Board.die_crossings b s00 s21)

let test_board_capacity_partition () =
  let b = Board.u55c () in
  let sum =
    Array.fold_left (fun acc (s : Board.slot) -> Resource.add acc s.Board.capacity) Resource.zero
      b.Board.slots
  in
  (* Per-slot ceil rounding can only overshoot. *)
  check bool "slots cover total" true (Resource.fits b.Board.total ~within:sum)

let test_other_boards () =
  let u250 = Board.u250 () in
  check int "u250 slots" 8 (Board.num_slots u250);
  let s10 = Board.stratix10 () in
  check int "stratix slots" 4 (Board.num_slots s10);
  check int "stratix single die" 0 (Board.die_crossings s10 0 3)

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let test_topology_daisy_chain () =
  check int "chain" 3 (Topology.dist Topology.Daisy_chain ~total:4 0 3);
  check int "chain adjacent" 1 (Topology.dist Topology.Daisy_chain ~total:4 1 2)

let test_topology_ring () =
  (* Eq. 3 ring variant: min(|i-j|, total - |i-j|) *)
  check int "ring wraps" 1 (Topology.dist Topology.Ring ~total:4 0 3);
  check int "ring half" 2 (Topology.dist Topology.Ring ~total:4 0 2);
  check int "ring 8" 3 (Topology.dist Topology.Ring ~total:8 1 6)

let test_topology_bus_star () =
  check int "bus" 1 (Topology.dist Topology.Bus ~total:5 0 4);
  check int "star via hub" 2 (Topology.dist Topology.Star ~total:5 1 4);
  check int "star to hub" 1 (Topology.dist Topology.Star ~total:5 0 4)

let test_topology_mesh_hypercube () =
  check int "mesh" 3 (Topology.dist (Topology.Mesh 2) ~total:6 0 5);
  check int "hypercube" 3 (Topology.dist Topology.Hypercube ~total:8 0 7);
  check int "hypercube 1 bit" 1 (Topology.dist Topology.Hypercube ~total:8 2 3);
  Alcotest.check_raises "hypercube size" (Invalid_argument "Topology.Hypercube: size must be a power of two")
    (fun () -> ignore (Topology.dist Topology.Hypercube ~total:6 0 1))

let test_topology_neighbors_diameter () =
  check (Alcotest.list int) "ring neighbors" [ 1; 3 ] (Topology.neighbors Topology.Ring ~total:4 0);
  check int "chain diameter" 3 (Topology.diameter Topology.Daisy_chain ~total:4);
  check int "ring diameter" 2 (Topology.diameter Topology.Ring ~total:4)

(* Metric axioms over all topologies and pairs. *)
let prop_topology_metric =
  QCheck.Test.make ~name:"topology distances are metrics" ~count:200
    QCheck.(triple (int_range 0 7) (int_range 0 7) (int_range 0 7))
    (fun (i, j, k) ->
      List.for_all
        (fun topo ->
          let d = Topology.dist topo ~total:8 in
          d i j = d j i && d i i = 0 && (i = j || d i j > 0) && d i k <= d i j + d j k)
        (Topology.all_basic 8))

(* ------------------------------------------------------------------ *)
(* Cluster                                                             *)
(* ------------------------------------------------------------------ *)

let test_cluster_single_node () =
  let c = Cluster.make ~board:Board.u55c 4 in
  check int "size" 4 (Cluster.size c);
  check bool "same node" true (Cluster.same_node c 0 3);
  check (Alcotest.float 1e-9) "lambda ethernet" 1.0 (Cluster.lambda c);
  check (Alcotest.float 1e-9) "link bw GB/s" 12.5 (Cluster.link_bandwidth_gbytes c 0 1);
  check (Alcotest.float 1e-9) "rtt" 1.0 (Cluster.link_rtt_us c 0 1)

let test_cluster_pcie () =
  let c = Cluster.make ~link:Cluster.Pcie_gen3x16 ~board:Board.u55c 2 in
  check (Alcotest.float 1e-9) "lambda pcie" 12.5 (Cluster.lambda c);
  check (Alcotest.float 1e-6) "pcie bw = ethernet / 12.5" 1.0 (Cluster.link_bandwidth_gbytes c 0 1)

let test_two_node_testbed () =
  let c = Cluster.two_node_testbed () in
  check int "8 FPGAs" 8 (Cluster.size c);
  check int "2 nodes" 2 c.Cluster.num_nodes;
  check bool "0 and 3 same node" true (Cluster.same_node c 0 3);
  check bool "3 and 4 cross node" false (Cluster.same_node c 3 4);
  check (Alcotest.float 1e-9) "inter-node bw 10Gbps" 1.25 (Cluster.link_bandwidth_gbytes c 3 4);
  check bool "inter-node slower than intra"
    true
    (Cluster.link_bandwidth_gbytes c 3 4 < Cluster.link_bandwidth_gbytes c 0 1)

let test_heterogeneous_farm () =
  let mix = [ Board.u55c; Board.u250; Board.stratix10 ] in
  let c = Cluster.heterogeneous ~boards_per_node:4 mix 10 in
  check int "10 boards" 10 (Cluster.size c);
  check int "3 nodes of <=4" 3 c.Cluster.num_nodes;
  (* The mix cycles: board i has the model of mix[i mod 3]. *)
  let u55c = Board.u55c () and u250 = Board.u250 () and s10 = Board.stratix10 () in
  check Alcotest.string "board 0 is u55c" u55c.Board.name (Cluster.board c 0).Board.name;
  check Alcotest.string "board 1 is u250" u250.Board.name (Cluster.board c 1).Board.name;
  check Alcotest.string "board 2 is stratix10" s10.Board.name (Cluster.board c 2).Board.name;
  check Alcotest.string "board 3 cycles back" u55c.Board.name (Cluster.board c 3).Board.name;
  (* Node grouping: 0..3 share a node, 4 starts the next one. *)
  check bool "0 and 3 same node" true (Cluster.same_node c 0 3);
  check bool "3 and 4 cross node" false (Cluster.same_node c 3 4);
  check bool "cross-node slower" true
    (Cluster.link_bandwidth_gbytes c 3 4 < Cluster.link_bandwidth_gbytes c 0 1);
  (* Invalid shapes are rejected. *)
  let rejects name bad =
    check bool name true (match bad () with _ -> false | exception Invalid_argument _ -> true)
  in
  rejects "empty mix" (fun () -> Cluster.heterogeneous [] 4);
  rejects "zero boards" (fun () -> Cluster.heterogeneous mix 0);
  rejects "zero per node" (fun () -> Cluster.heterogeneous ~boards_per_node:0 mix 4)

let test_survivor_views () =
  let c = Cluster.make ~board:Board.u55c 4 in
  let v = Cluster.full_view c in
  check int "all alive initially" 4 (Cluster.num_alive v);
  check (Alcotest.list int) "no failures" [] (Cluster.failed_devices v);
  let v2 = Cluster.prune_device v 2 in
  (* Persistence: the original view is untouched. *)
  check int "original still 4 alive" 4 (Cluster.num_alive v);
  check int "pruned view 3 alive" 3 (Cluster.num_alive v2);
  check bool "2 dead in pruned" false (Cluster.alive v2 2);
  check (Alcotest.list int) "survivors ascend" [ 0; 1; 3 ] (Cluster.alive_devices v2);
  check (Alcotest.list int) "failed ascend" [ 2 ] (Cluster.failed_devices v2);
  (* Idempotence and physical sharing on no-ops. *)
  check bool "re-prune is a no-op" true (Cluster.prune_device v2 2 == v2);
  check bool "restore of alive is a no-op" true (Cluster.restore_device v2 0 == v2);
  check bool "out-of-range ignored" true
    (Cluster.prune_device v2 99 == v2 && Cluster.prune_device v2 (-1) == v2);
  let v3 = Cluster.restore_device v2 2 in
  check int "restored back to 4" 4 (Cluster.num_alive v3);
  check bool "underlying cluster shared" true (v3.Cluster.cluster == c)

let test_constants () =
  check (Alcotest.float 1e-9) "HBM aggregate" 460.0 Constants.hbm_bandwidth_gbps;
  check (Alcotest.float 1e-6) "per-channel" (460.0 /. 32.0) Constants.hbm_channel_bandwidth_gbps;
  check (Alcotest.float 1e-9) "SRAM/HBM latency ratio" 76.0 Constants.hbm_vs_sram_latency_ratio;
  check (Alcotest.float 1e-9) "pcie scale" 12.5 Constants.pcie_cost_scale;
  check int "table9 rows" 4 (List.length Constants.bandwidth_hierarchy);
  let b = Board.u55c () in
  let ov = Constants.alveolink_overhead_frac b.Board.total in
  check bool "alveolink LUT overhead ~2%" true
    (let f = float_of_int ov.Resource.lut /. float_of_int b.Board.total.Resource.lut in
     f > 0.0203 && f < 0.0206);
  check int "no DSP overhead" 0 ov.Resource.dsp

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_topology_metric ]

let () =
  Alcotest.run "device"
    [
      ( "resource",
        [
          Alcotest.test_case "arithmetic" `Quick test_resource_arith;
          Alcotest.test_case "scale rounds up" `Quick test_resource_scale_rounds_up;
          Alcotest.test_case "fits" `Quick test_resource_fits;
          Alcotest.test_case "utilization" `Quick test_resource_utilization;
        ] );
      ( "board",
        [
          Alcotest.test_case "u55c matches Table 2" `Quick test_u55c_shape;
          Alcotest.test_case "HBM pinned to bottom row" `Quick test_u55c_hbm_bottom_row;
          Alcotest.test_case "manhattan + die crossings" `Quick test_board_manhattan;
          Alcotest.test_case "slot capacities cover total" `Quick test_board_capacity_partition;
          Alcotest.test_case "u250 and stratix10" `Quick test_other_boards;
        ] );
      ( "topology",
        [
          Alcotest.test_case "daisy chain (Eq. 3)" `Quick test_topology_daisy_chain;
          Alcotest.test_case "ring" `Quick test_topology_ring;
          Alcotest.test_case "bus and star" `Quick test_topology_bus_star;
          Alcotest.test_case "mesh and hypercube" `Quick test_topology_mesh_hypercube;
          Alcotest.test_case "neighbors and diameter" `Quick test_topology_neighbors_diameter;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "single node ring" `Quick test_cluster_single_node;
          Alcotest.test_case "pcie scaling" `Quick test_cluster_pcie;
          Alcotest.test_case "two-node testbed (§5.7)" `Quick test_two_node_testbed;
          Alcotest.test_case "heterogeneous farm" `Quick test_heterogeneous_farm;
          Alcotest.test_case "survivor views" `Quick test_survivor_views;
          Alcotest.test_case "calibration constants" `Quick test_constants;
        ] );
      ("properties", qsuite);
    ]
