(* Tests for the HLS synthesis estimator and the parallel-synthesis step. *)

open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let mk_task ?(id = 0) ?(name = "t") ?(kind = "k") ?(compute = Task.default_compute)
    ?(mem_ports = []) ?resources () =
  { Task.id; name; kind; compute; mem_ports; resources }

let test_override_wins () =
  let r = Resource.make ~lut:123 ~ff:456 () in
  let t = mk_task ~resources:r () in
  check bool "explicit resources returned verbatim" true (Resource.equal r (Estimator.estimate t))

let test_base_cost_positive () =
  let t = mk_task () in
  let r = Estimator.estimate t in
  check bool "every task pays FSM cost" true (r.Resource.lut >= Estimator.fsm_base.Resource.lut)

let test_ops_add_dsp () =
  let no_ops = Estimator.estimate (mk_task ~compute:(Task.make_compute ~elems:10.0 ()) ()) in
  let with_ops =
    Estimator.estimate (mk_task ~compute:(Task.make_compute ~elems:10.0 ~ops_per_elem:8.0 ()) ())
  in
  check int "no ops, no DSP" 0 no_ops.Resource.dsp;
  check bool "ops consume DSPs" true (with_ops.Resource.dsp > 0);
  check bool "ops consume LUTs too" true (with_ops.Resource.lut > no_ops.Resource.lut)

let test_lanes_scale_datapath () =
  let one = Estimator.estimate (mk_task ~compute:(Task.make_compute ~ops_per_elem:4.0 ~lanes:1 ()) ()) in
  let four = Estimator.estimate (mk_task ~compute:(Task.make_compute ~ops_per_elem:4.0 ~lanes:4 ()) ()) in
  check bool "lanes multiply dsp" true (four.Resource.dsp = 4 * one.Resource.dsp)

let test_buffers_map_to_uram_or_bram () =
  let small = Estimator.estimate (mk_task ~compute:(Task.make_compute ~buffer_bytes:8192 ()) ()) in
  check bool "small buffer -> BRAM" true (small.Resource.bram > 0 && small.Resource.uram = 0);
  let big = Estimator.estimate (mk_task ~compute:(Task.make_compute ~buffer_bytes:(256 * 1024) ()) ()) in
  check bool "large buffer -> URAM" true (big.Resource.uram > 0);
  (* A board without URAM keeps everything in BRAM. *)
  let no_uram_board = Board.stratix10 () in
  let big' =
    Estimator.estimate ~board:no_uram_board
      (mk_task ~compute:(Task.make_compute ~buffer_bytes:(256 * 1024) ()) ())
  in
  check int "no URAM on Stratix-10 model" 0 big'.Resource.uram;
  check bool "falls back to BRAM" true (big'.Resource.bram > small.Resource.bram)

let test_mem_ports_cost () =
  let none = Estimator.estimate (mk_task ()) in
  let one_port =
    Estimator.estimate
      (mk_task ~mem_ports:[ Task.mem_port ~dir:Task.Read ~width_bits:512 ~bytes:1e6 () ] ())
  in
  check bool "AXI engine costs LUT/FF/BRAM" true
    (one_port.Resource.lut > none.Resource.lut && one_port.Resource.bram > none.Resource.bram)

let test_cycles_model () =
  let t = mk_task ~compute:(Task.make_compute ~elems:1000.0 ~ii:2.0 ~lanes:4 ()) () in
  check (Alcotest.float 1e-9) "steady cycles = elems*ii/lanes" 500.0 (Estimator.steady_cycles t);
  check bool "startup positive" true (Estimator.startup_cycles t > 0.0);
  check (Alcotest.float 1e-9) "total" (Estimator.task_cycles t)
    (Estimator.startup_cycles t +. Estimator.steady_cycles t)

let test_synthesis_caching () =
  let b = Taskgraph.Builder.create () in
  let c = Task.make_compute ~elems:10.0 ~ops_per_elem:2.0 () in
  for i = 0 to 9 do
    ignore (Taskgraph.Builder.add_task b ~name:(Printf.sprintf "pe%d" i) ~kind:"pe" ~compute:c ())
  done;
  ignore (Taskgraph.Builder.add_task b ~name:"other" ~kind:"io" ());
  let g = Taskgraph.Builder.build b in
  let r = Synthesis.run g in
  check int "2 distinct kinds" 2 r.Synthesis.distinct_kinds;
  check int "9 cache hits" 9 r.Synthesis.cache_hits;
  check int "11 sequential runs" 11 r.Synthesis.sequential_runs;
  check bool "profiles indexed by id" true
    (Array.for_all (fun (p : Synthesis.profile) -> p.task_id = p.task_id) r.Synthesis.profiles);
  (* identical kinds share identical resources *)
  check bool "same kind same profile" true
    (Resource.equal (Synthesis.profile_of r 0).resources (Synthesis.profile_of r 9).resources)

let test_synthesis_distinguishes_overrides () =
  let b = Taskgraph.Builder.create () in
  ignore
    (Taskgraph.Builder.add_task b ~name:"a" ~kind:"pe"
       ~resources:(Resource.make ~lut:100 ()) ());
  ignore
    (Taskgraph.Builder.add_task b ~name:"b" ~kind:"pe"
       ~resources:(Resource.make ~lut:200 ()) ());
  let g = Taskgraph.Builder.build b in
  let r = Synthesis.run g in
  check int "overrides keep kinds distinct" 2 r.Synthesis.distinct_kinds;
  check bool "totals add up" true
    (Resource.equal r.Synthesis.total_resources (Resource.make ~lut:300 ()))

let test_cache_key_canonical () =
  (* Identical tasks (ids/names aside) share a key; any semantic field
     difference separates them. *)
  let c = Task.make_compute ~elems:10.0 ~ops_per_elem:2.0 () in
  let base = mk_task ~kind:"pe" ~compute:c () in
  check bool "id/name irrelevant" true
    (Synthesis.cache_key base = Synthesis.cache_key (mk_task ~id:7 ~name:"other" ~kind:"pe" ~compute:c ()));
  check bool "kind separates" true
    (Synthesis.cache_key base <> Synthesis.cache_key (mk_task ~kind:"pe2" ~compute:c ()));
  check bool "compute separates" true
    (Synthesis.cache_key base
    <> Synthesis.cache_key (mk_task ~kind:"pe" ~compute:(Task.make_compute ~elems:11.0 ~ops_per_elem:2.0 ()) ()));
  check bool "override separates" true
    (Synthesis.cache_key base
    <> Synthesis.cache_key (mk_task ~kind:"pe" ~compute:c ~resources:(Resource.make ~lut:1 ()) ()));
  check bool "mem ports separate" true
    (Synthesis.cache_key base
    <> Synthesis.cache_key
         (mk_task ~kind:"pe" ~compute:c
            ~mem_ports:[ Task.mem_port ~dir:Task.Read ~width_bits:512 ~bytes:1e6 () ]
            ()))

let test_cache_key_no_field_aliasing () =
  (* Regression for the structural-tuple key's framing defect: the kind
     string must be length-prefixed so it cannot bleed into the adjacent
     numeric fields of the serialization. *)
  let k1 = Synthesis.cache_key (mk_task ~kind:"a1" ()) in
  let k2 = Synthesis.cache_key (mk_task ~kind:"a" ()) in
  check bool "kind framed" true (k1 <> k2)

let test_cache_key_nan_stable () =
  (* Regression for the second defect: a NaN traffic volume compared
     with polymorphic equality never equalled itself, so such tasks
     resynthesized on every occurrence.  The digest key must map a task
     to the same key every time, NaN or not. *)
  let nan_port = Task.mem_port ~dir:Task.Write ~width_bits:256 ~bytes:(0.0 /. 0.0) () in
  let t1 = mk_task ~kind:"pe" ~mem_ports:[ nan_port ] () in
  let t2 = mk_task ~id:1 ~kind:"pe" ~mem_ports:[ nan_port ] () in
  check bool "NaN task keys consistently" true (Synthesis.cache_key t1 = Synthesis.cache_key t2)

let () =
  Alcotest.run "hls"
    [
      ( "estimator",
        [
          Alcotest.test_case "override wins" `Quick test_override_wins;
          Alcotest.test_case "FSM base cost" `Quick test_base_cost_positive;
          Alcotest.test_case "ops cost DSP" `Quick test_ops_add_dsp;
          Alcotest.test_case "lanes scale datapath" `Quick test_lanes_scale_datapath;
          Alcotest.test_case "buffer URAM/BRAM policy" `Quick test_buffers_map_to_uram_or_bram;
          Alcotest.test_case "mem port cost" `Quick test_mem_ports_cost;
          Alcotest.test_case "cycle model" `Quick test_cycles_model;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "per-kind caching" `Quick test_synthesis_caching;
          Alcotest.test_case "distinct overrides" `Quick test_synthesis_distinguishes_overrides;
          Alcotest.test_case "canonical cache key" `Quick test_cache_key_canonical;
          Alcotest.test_case "cache key framing" `Quick test_cache_key_no_field_aliasing;
          Alcotest.test_case "cache key NaN-stable" `Quick test_cache_key_nan_stable;
        ] );
    ]
