(* Tests for the static design linter: the diagnostics core, each TCS
   code on a minimal trigger graph, the error-cleanliness of the shipped
   benchmarks, the seeded-defect example, the ILP model validator and
   the compiler's step-0 gate. *)

open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_analysis
module Ilp = Tapa_cs_ilp
module Rat = Tapa_cs_util.Rat

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let codes_of ds = List.sort_uniq compare (List.map (fun d -> d.Diagnostic.code) ds)
let has code ds = List.mem code (codes_of ds)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let cluster1 () = Cluster.make ~board:Board.u55c 1

(* Minimal builders ------------------------------------------------- *)

let compute = Task.make_compute ~elems:1000.0 ~ii:1.0 ~elem_bits:32 ()

let task ?(compute = compute) ?(mem_ports = []) ?resources b name =
  Taskgraph.Builder.add_task b ~name ?compute:(Some compute) ~mem_ports ?resources ()

let fifo ?(width = 32) ?(depth = 16) ?(elems = 1000.0) ?mode b src dst =
  ignore (Taskgraph.Builder.add_fifo b ~src ~dst ~width_bits:width ~depth ~elems ?mode ())

let read_port = Task.mem_port ~dir:Task.Read ~width_bits:32 ~bytes:4000.0 ()
let write_port = Task.mem_port ~dir:Task.Write ~width_bits:32 ~bytes:4000.0 ()

(* A well-formed pipeline: read -> mid -> write. *)
let clean_graph () =
  let b = Taskgraph.Builder.create () in
  let a = task b "read" ~mem_ports:[ read_port ] in
  let m = task b "mid" in
  let z = task b "write" ~mem_ports:[ write_port ] in
  fifo b a m;
  fifo b m z;
  Taskgraph.Builder.build b

(* ------------------------------------------------------------------ *)
(* Diagnostics core                                                    *)
(* ------------------------------------------------------------------ *)

let test_registry_well_formed () =
  let codes = List.map (fun (c, _, _, _) -> c) Diagnostic.registry in
  check int "codes unique" (List.length codes) (List.length (List.sort_uniq compare codes));
  List.iter
    (fun (c, _, meaning, _) ->
      check bool (c ^ " prefixed") true (String.length c = 6 && String.sub c 0 3 = "TCS");
      check bool (c ^ " described") true (meaning <> "" && Diagnostic.describe c = meaning))
    Diagnostic.registry;
  (* Unknown codes fail safe as errors. *)
  check bool "unknown is error" true (Diagnostic.default_severity "TCS999" = Diagnostic.Error)

let test_render_pretty_and_json () =
  let d =
    Diagnostic.make ~code:"TCS101" ~severity:Diagnostic.Error
      ~loc:(Diagnostic.Fifo { id = 3; src = "a"; dst = "b" })
      ~hint:"break the \"cycle\"" "bulk FIFO on a cycle"
  in
  let pretty = Diagnostic.render [ d ] in
  check bool "pretty has code" true (contains "error[TCS101]" pretty);
  check bool "pretty has loc" true (contains "fifo #3 (a -> b)" pretty);
  check bool "pretty has hint" true (contains "fix:" pretty);
  check bool "pretty has tally" true (contains "1 error(s)" pretty);
  let json = Diagnostic.render ~json:true [ d ] in
  check bool "json one line" true (not (String.contains json '\n'));
  check bool "json code" true (contains {|"code":"TCS101"|} json);
  check bool "json escaping" true (contains {|\"cycle\"|} json)

let test_sort_errors_first () =
  let mk code sev = Diagnostic.make ~code ~severity:sev ~loc:Diagnostic.Design "m" in
  let sorted =
    Diagnostic.sort
      [ mk "TCS201" Diagnostic.Warning; mk "TCS301" Diagnostic.Error; mk "TCS001" Diagnostic.Warning ]
  in
  check bool "error first" true ((List.hd sorted).Diagnostic.code = "TCS301");
  check int "errors subset" 1 (List.length (Diagnostic.errors sorted))

(* ------------------------------------------------------------------ *)
(* Graph-shape lints                                                   *)
(* ------------------------------------------------------------------ *)

let test_clean_graph_clean () =
  let g = clean_graph () in
  check bool "no shape findings" true (Lint.graph_shape g = []);
  check bool "no deadlock findings" true (Lint.deadlock g = []);
  check bool "no rate findings" true (Lint.rates g = [])

let test_disconnected_and_dead () =
  let b = Taskgraph.Builder.create () in
  let a = task b "read" ~mem_ports:[ read_port ] in
  let z = task b "write" ~mem_ports:[ write_port ] in
  fifo b a z;
  (* No compute, no streams, no ports: dead, and its own component. *)
  ignore
    (Taskgraph.Builder.add_task b ~name:"idle"
       ~compute:(Task.make_compute ~elems:0.0 ())
       ());
  let ds = Lint.graph_shape (Taskgraph.Builder.build b) in
  check bool "TCS001 raised" true (has "TCS001" ds);
  check bool "TCS002 raised" true (has "TCS002" ds)

let test_no_source_no_sink_unreachable () =
  (* A pure 2-cycle: no task qualifies as source or sink. *)
  let b = Taskgraph.Builder.create () in
  let x = task b "x" in
  let y = task b "y" in
  fifo b x y;
  fifo b y x;
  let ds = Lint.graph_shape (Taskgraph.Builder.build b) in
  check bool "TCS003 raised" true (has "TCS003" ds);
  check bool "TCS004 raised" true (has "TCS004" ds);
  (* Unreachability needs a source to be unreachable from. *)
  let b = Taskgraph.Builder.create () in
  let r = task b "read" ~mem_ports:[ read_port ] in
  let w = task b "write" ~mem_ports:[ write_port ] in
  fifo b r w;
  let x = task b "x" in
  let y = task b "y" in
  fifo b x y;
  fifo b y x;
  let ds = Lint.graph_shape (Taskgraph.Builder.build b) in
  check bool "TCS005 on both spinners" true
    (List.length (List.filter (fun d -> d.Diagnostic.code = "TCS005") ds) = 2)

(* ------------------------------------------------------------------ *)
(* Deadlock lints                                                      *)
(* ------------------------------------------------------------------ *)

let cycle_graph ~mode () =
  let b = Taskgraph.Builder.create () in
  let r = task b "read" ~mem_ports:[ read_port ] in
  let x = task b "x" in
  let y = task b "y" in
  fifo b r x;
  fifo b x y ?mode:(Some mode);
  fifo b y x;
  let w = task b "write" ~mem_ports:[ write_port ] in
  fifo b y w;
  Taskgraph.Builder.build b

let test_bulk_cycle_is_error () =
  let ds = Lint.deadlock (cycle_graph ~mode:Fifo.Bulk ()) in
  check bool "TCS101 raised" true (has "TCS101" ds);
  check bool "TCS101 is error" true (Diagnostic.errors ds <> [])

let test_stream_cycle_is_warning () =
  let ds = Lint.deadlock (cycle_graph ~mode:Fifo.Stream ()) in
  check bool "TCS102 raised" true (has "TCS102" ds);
  check bool "only warnings" true (Diagnostic.errors ds = [])

let test_reconvergent_depth () =
  (* Long arm src->a->b->c->join vs. a depth-2 shortcut src->join: the
     shortcut FIFO must buffer 3 tokens while the arm catches up. *)
  let b = Taskgraph.Builder.create () in
  let s = task b "src" ~mem_ports:[ read_port ] in
  let a = task b "a" in
  let b2 = task b "b" in
  let c = task b "c" in
  let j = task b "join" ~mem_ports:[ write_port ] in
  fifo b s a;
  fifo b a b2;
  fifo b b2 c;
  fifo b c j;
  fifo b s j ~depth:2;
  let ds = Lint.deadlock (Taskgraph.Builder.build b) in
  check bool "TCS103 raised" true (has "TCS103" ds)

(* ------------------------------------------------------------------ *)
(* Rate / width lints                                                  *)
(* ------------------------------------------------------------------ *)

let test_rate_mismatch () =
  let b = Taskgraph.Builder.create () in
  let fast = task b "fast" ~compute:(Task.make_compute ~elems:1000.0 ~ii:1.0 ()) in
  let slow =
    task b "slow"
      ~compute:(Task.make_compute ~elems:1000.0 ~ii:16.0 ())
      ~mem_ports:[ write_port ]
  in
  fifo b fast slow;
  let ds = Lint.rates (Taskgraph.Builder.build b) in
  check bool "TCS201 raised" true (has "TCS201" ds)

let test_width_conflict () =
  let b = Taskgraph.Builder.create () in
  let a = task b "a" in
  let z = task b "z" ~mem_ports:[ write_port ] in
  fifo b a z ~width:48;
  let ds = Lint.rates (Taskgraph.Builder.build b) in
  check bool "TCS202 raised" true (has "TCS202" ds);
  (* 2:1 serialization is legitimate, not a conflict. *)
  let b = Taskgraph.Builder.create () in
  let a = task b "a" in
  let z = task b "z" ~mem_ports:[ write_port ] in
  fifo b a z ~width:64;
  check bool "divisor widths pass" true (Lint.rates (Taskgraph.Builder.build b) = [])

(* ------------------------------------------------------------------ *)
(* Capacity lints                                                      *)
(* ------------------------------------------------------------------ *)

let huge = Resource.make ~lut:2_000_000 ~ff:100 ~bram:10 ~dsp:10 ()

let capacity_of g = Lint.capacity ~cluster:(cluster1 ()) ~synthesis:(Tapa_cs_hls.Synthesis.run g) g

let test_capacity_overflow () =
  let b = Taskgraph.Builder.create () in
  let a = task b "big" ~resources:huge ~mem_ports:[ read_port ] in
  let z = task b "write" ~mem_ports:[ write_port ] in
  fifo b a z;
  let ds = capacity_of (Taskgraph.Builder.build b) in
  check bool "TCS301 raised" true (has "TCS301" ds);
  check bool "clean design passes" true (capacity_of (clean_graph ()) = [])

let test_channel_binding () =
  let b = Taskgraph.Builder.create () in
  let bad = Task.mem_port ~channel:99 ~dir:Task.Read ~width_bits:32 ~bytes:4000.0 () in
  let a = task b "a" ~mem_ports:[ bad ] in
  let z = task b "z" ~mem_ports:[ write_port ] in
  fifo b a z;
  let ds = capacity_of (Taskgraph.Builder.build b) in
  check bool "TCS302 raised" true (has "TCS302" ds)

let test_port_counts () =
  (* 5 tasks x 7 ports = 35 ports > 32 channels, but each task is fine. *)
  let b = Taskgraph.Builder.create () in
  let ports n = List.init n (fun _ -> read_port) in
  let ts = List.init 5 (fun i -> task b (Printf.sprintf "t%d" i) ~mem_ports:(ports 7)) in
  (match ts with
  | t0 :: rest -> List.iter (fun t -> fifo b t0 t) rest
  | [] -> ());
  let ds = capacity_of (Taskgraph.Builder.build b) in
  check bool "TCS303 raised" true (has "TCS303" ds);
  check bool "no TCS304" true (not (has "TCS304" ds));
  (* One task with 33 ports trips the per-board bound too. *)
  let b = Taskgraph.Builder.create () in
  let a = task b "mega" ~mem_ports:(ports 33) in
  let z = task b "z" ~mem_ports:[ write_port ] in
  fifo b a z;
  let ds = capacity_of (Taskgraph.Builder.build b) in
  check bool "TCS304 raised" true (has "TCS304" ds)

(* ------------------------------------------------------------------ *)
(* ILP validation                                                      *)
(* ------------------------------------------------------------------ *)

let lin x = Ilp.Linear.var x

let test_ilp_trivially_infeasible () =
  let m = Ilp.Model.create () in
  let x =
    Ilp.Model.add_var m ~name:"x" ~lb:(Rat.of_int 2) ~ub:(Rat.of_int 5) Ilp.Model.Continuous
  in
  Ilp.Model.add_constraint m ~name:"cap" (lin x) Ilp.Model.Le Rat.one;
  (match Ilp.Validate.check m with
  | [ Ilp.Validate.Infeasible_constraint { name; _ } ] -> check bool "named" true (name = "cap")
  | _ -> Alcotest.fail "expected one infeasible issue");
  check bool "solver rejects fast" true (Ilp.Branch_bound.solve m = Ilp.Branch_bound.Infeasible);
  let ds = Lint.ilp_model m in
  check bool "TCS401 raised" true (has "TCS401" ds)

let test_ilp_trivially_unbounded () =
  let m = Ilp.Model.create () in
  let x = Ilp.Model.add_var m ~name:"x" Ilp.Model.Continuous in
  Ilp.Model.set_objective m Ilp.Model.Maximize (lin x);
  (match Ilp.Validate.check m with
  | [ Ilp.Validate.Unbounded_direction { var; _ } ] -> check bool "named" true (var = "x")
  | _ -> Alcotest.fail "expected one unbounded issue");
  check bool "solver rejects fast" true (Ilp.Branch_bound.solve m = Ilp.Branch_bound.Unbounded);
  check bool "TCS402 raised" true (has "TCS402" (Lint.ilp_model m));
  (* A capping constraint restores soundness. *)
  Ilp.Model.add_constraint m ~name:"cap" (lin x) Ilp.Model.Le (Rat.of_int 7);
  check bool "capped model passes" true (Ilp.Validate.check m = [])

let test_named_constraints () =
  let m = Ilp.Model.create () in
  let x = Ilp.Model.add_var m ~name:"x" ~ub:Rat.one Ilp.Model.Continuous in
  Ilp.Model.add_constraint m ~name:"first" (lin x) Ilp.Model.Le Rat.one;
  Ilp.Model.add_constraint m (lin x) Ilp.Model.Ge Rat.zero;
  match Ilp.Model.named_constraints m with
  | [ (n0, _, _, _); (n1, _, _, _) ] ->
    check bool "explicit name kept" true (n0 = "first");
    check bool "fallback name indexed" true (n1 = "c1")
  | l -> Alcotest.failf "expected 2 constraints, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Shipped apps and the seeded-defect example                          *)
(* ------------------------------------------------------------------ *)

let shipped () =
  [
    Tapa_cs_apps.Stencil.generate (Tapa_cs_apps.Stencil.make_config ~iterations:64 ~fpgas:1 ());
    Tapa_cs_apps.Pagerank.generate
      (Tapa_cs_apps.Pagerank.make_config
         ~dataset:(List.hd Tapa_cs_apps.Dataset.all)
         ~fpgas:1 ());
    Tapa_cs_apps.Knn.generate (Tapa_cs_apps.Knn.make_config ~n_points:4_000_000 ~dims:2 ~fpgas:1 ());
    Tapa_cs_apps.Cnn.generate (Tapa_cs_apps.Cnn.make_config ~cols:8 ~fpgas:1 ());
  ]

let test_shipped_apps_error_clean () =
  List.iter
    (fun (a : Tapa_cs_apps.App.t) ->
      let ds = Lint.run_all ~cluster:(cluster1 ()) a.graph in
      match Diagnostic.errors ds with
      | [] -> ()
      | errs ->
        Alcotest.failf "%s has %d lint error(s): %s" a.name (List.length errs)
          (Diagnostic.render errs))
    (shipped ())

let test_broken_app_flagged () =
  let a = Tapa_cs_apps.Broken.generate () in
  let ds = Lint.run_all ~cluster:(cluster1 ()) a.Tapa_cs_apps.App.graph in
  Alcotest.(check (list string))
    "expected codes" Tapa_cs_apps.Broken.expected_codes (codes_of ds);
  check bool "has errors" true (Diagnostic.errors ds <> [])

(* ------------------------------------------------------------------ *)
(* Compiler gate and simulator deadlock                                *)
(* ------------------------------------------------------------------ *)

let test_compile_gate_oversubscribed () =
  let b = Taskgraph.Builder.create () in
  let a = task b "big" ~resources:huge ~mem_ports:[ read_port ] in
  let z = task b "write" ~mem_ports:[ write_port ] in
  fifo b a z;
  let g = Taskgraph.Builder.build b in
  (match Tapa_cs.Compiler.compile ~cluster:(cluster1 ()) g with
  | Error e -> check bool "coded diagnostic" true (contains "TCS301" e)
  | Ok _ -> Alcotest.fail "expected the step-0 gate to reject");
  (* The same design with the gate off fails later, without the code. *)
  let options = { Tapa_cs.Compiler.default_options with lint = false } in
  match Tapa_cs.Compiler.compile ~options ~cluster:(cluster1 ()) g with
  | Error e -> check bool "uncoded failure" true (not (contains "TCS301" e))
  | Ok _ -> Alcotest.fail "expected the floorplanner to reject"

let test_compile_gate_bulk_cycle () =
  let g = cycle_graph ~mode:Fifo.Bulk () in
  match Tapa_cs.Compiler.compile ~cluster:(cluster1 ()) g with
  | Error e -> check bool "coded diagnostic" true (contains "TCS101" e)
  | Ok _ -> Alcotest.fail "expected the step-0 gate to reject"

let test_sim_deadlock_named () =
  let g = cycle_graph ~mode:Fifo.Bulk () in
  let cluster = cluster1 () in
  let synthesis = Tapa_cs_hls.Synthesis.run g in
  let cfg =
    Tapa_cs_sim.Design_sim.make_config ~graph:g
      ~assignment:(Array.make (Taskgraph.num_tasks g) 0)
      ~freq_mhz:[| 200.0 |] ~cluster ~synthesis ()
  in
  match Tapa_cs_sim.Design_sim.run cfg with
  | exception Tapa_cs_sim.Design_sim.Deadlock d ->
    check bool "names a blocked task" true (d.tasks <> []);
    check bool "points at the linter" true
      (contains "TCS101" d.message && contains "lint" d.message)
  | _ -> Alcotest.fail "expected Design_sim.Deadlock"

(* ------------------------------------------------------------------ *)
(* Static performance bounds (TCS5xx)                                  *)
(* ------------------------------------------------------------------ *)

module Design_sim = Tapa_cs_sim.Design_sim

let sim_config ?(chunks = 8) ?(fpgas = 2) g =
  let board = Board.u55c () in
  let cluster = Cluster.make ~board:(fun () -> board) fpgas in
  let synthesis = Tapa_cs_hls.Synthesis.run ~board g in
  let assignment = Array.init (Taskgraph.num_tasks g) (fun i -> i mod fpgas) in
  Design_sim.make_config ~chunks ~graph:g ~assignment ~freq_mhz:(Array.make fpgas 300.0)
    ~cluster ~synthesis ()

let reconvergent ~shortcut_depth () =
  let b = Taskgraph.Builder.create () in
  let s = task b "src" ~mem_ports:[ read_port ] in
  let a = task b "a" in
  let b2 = task b "b" in
  let c = task b "c" in
  let j = task b "join" ~mem_ports:[ write_port ] in
  fifo b s a;
  fifo b a b2;
  fifo b b2 c;
  fifo b c j;
  fifo b s j ~depth:shortcut_depth;
  Taskgraph.Builder.build b

(* clean_graph with every FIFO declared absurdly deep. *)
let deep_graph () =
  let b = Taskgraph.Builder.create () in
  let a = task b "read" ~mem_ports:[ read_port ] in
  let m = task b "mid" in
  let z = task b "write" ~mem_ports:[ write_port ] in
  fifo b a m ~depth:512;
  fifo b m z ~depth:512;
  Taskgraph.Builder.build b

let inside (s : Static_perf.t) latency =
  latency >= s.Static_perf.latency_lower_s && latency <= s.Static_perf.latency_upper_s

let test_bounds_contain_unit_designs () =
  List.iter
    (fun (label, fpgas, g) ->
      let cfg = sim_config ~fpgas g in
      let s = Static_perf.bounds cfg in
      check bool (label ^ ": interval ordered") true
        (s.Static_perf.latency_lower_s <= s.Static_perf.latency_upper_s
        && s.Static_perf.latency_lower_s > 0.0);
      check bool (label ^ ": ii positive") true (s.Static_perf.steady_ii_s > 0.0);
      check bool (label ^ ": throughput inverse") true
        (Float.abs (s.Static_perf.throughput_chunks_per_s *. s.Static_perf.steady_ii_s -. 1.0)
        < 1e-9);
      check bool (label ^ ": bottleneck named") true (s.Static_perf.bottleneck <> None);
      let c = Design_sim.run ~cache:false cfg in
      let r = Design_sim.run_reference ~cache:false cfg in
      check bool (label ^ ": coalesced inside") true (inside s c.Design_sim.latency_s);
      check bool (label ^ ": reference inside") true (inside s r.Design_sim.latency_s))
    [
      ("clean x1", 1, clean_graph ());
      ("clean x2", 2, clean_graph ());
      ("reconvergent x1", 1, reconvergent ~shortcut_depth:16 ());
      ("reconvergent x2", 2, reconvergent ~shortcut_depth:16 ());
      ("deep x2", 2, deep_graph ());
    ]

(* Mirror of test_sim's random layered fan-out/fan-in corpus. *)
let random_pipeline_config seed =
  let rng = Tapa_cs_util.Prng.create seed in
  let b = Taskgraph.Builder.create () in
  let stages = 2 + Tapa_cs_util.Prng.int rng 4 in
  let widths = [| 1; 2; 4 |] in
  let layers =
    Array.init stages (fun li ->
        Array.init
          (1 + Tapa_cs_util.Prng.int rng widths.(li mod 3))
          (fun ni ->
            Taskgraph.Builder.add_task b
              ~name:(Printf.sprintf "l%dn%d" li ni)
              ~compute:
                (Task.make_compute
                   ~elems:(float_of_int (100 + Tapa_cs_util.Prng.int rng 1000))
                   ~ii:1.0 ())
              ()))
  in
  for li = 0 to stages - 2 do
    Array.iter
      (fun src ->
        let dst = layers.(li + 1).(Tapa_cs_util.Prng.int rng (Array.length layers.(li + 1))) in
        ignore
          (Taskgraph.Builder.add_fifo b ~src ~dst
             ~elems:(float_of_int (50 + Tapa_cs_util.Prng.int rng 500))
             ()))
      layers.(li)
  done;
  for li = 0 to stages - 2 do
    Array.iter
      (fun dst ->
        ignore (Taskgraph.Builder.add_fifo b ~src:layers.(li).(0) ~dst ~elems:100.0 ()))
      layers.(li + 1)
  done;
  let g = Taskgraph.Builder.build b in
  let board = Board.u55c () in
  let cluster = Cluster.make ~board:(fun () -> board) 2 in
  let synthesis = Tapa_cs_hls.Synthesis.run ~board g in
  let assignment = Array.init (Taskgraph.num_tasks g) (fun _ -> Tapa_cs_util.Prng.int rng 2) in
  Design_sim.make_config ~chunks:8 ~graph:g ~assignment ~freq_mhz:[| 300.0; 250.0 |] ~cluster
    ~synthesis ()

(* Property: over the random corpus, the closed-form interval contains
   the latency of BOTH simulator engines — the soundness gate. *)
let prop_static_bounds_sound =
  QCheck.Test.make ~name:"static interval contains both engines" ~count:40
    (QCheck.int_range 0 10_000)
    (fun seed ->
      let cfg = random_pipeline_config seed in
      let s = Static_perf.bounds cfg in
      let c = Design_sim.run ~cache:false cfg in
      let r = Design_sim.run_reference ~cache:false cfg in
      s.Static_perf.latency_lower_s <= s.Static_perf.latency_upper_s
      && inside s c.Design_sim.latency_s
      && inside s r.Design_sim.latency_s)

let test_interval_check () =
  let s = Static_perf.bounds (sim_config (clean_graph ())) in
  let mid = (s.Static_perf.latency_lower_s +. s.Static_perf.latency_upper_s) /. 2.0 in
  check bool "inside passes" true (Static_perf.interval_check s ~latency_s:mid = None);
  (match Static_perf.interval_check s ~latency_s:(s.Static_perf.latency_upper_s *. 2.0 +. 1.0) with
  | Some d ->
    check bool "TCS503" true (d.Diagnostic.code = "TCS503");
    check bool "is error" true (d.Diagnostic.severity = Diagnostic.Error)
  | None -> Alcotest.fail "latency above upper must flag TCS503");
  match Static_perf.interval_check s ~latency_s:(s.Static_perf.latency_lower_s /. 2.0) with
  | Some d -> check bool "below lower flags too" true (d.Diagnostic.code = "TCS503")
  | None -> Alcotest.fail "latency below lower must flag TCS503"

let test_depth_diagnostics () =
  (* Shallow shortcut across a 4-hop arm: minimal depth exceeds 2. *)
  let g = reconvergent ~shortcut_depth:2 () in
  let s = Static_perf.analyze (sim_config ~fpgas:1 g) in
  check bool "min_depths populated" true (s.Static_perf.min_depths <> []);
  let ds = Static_perf.depth_diagnostics ~graph:g s in
  check bool "TCS501 raised" true (has "TCS501" ds);
  check bool "TCS501 is warning" true
    (List.for_all
       (fun d -> d.Diagnostic.code <> "TCS501" || d.Diagnostic.severity = Diagnostic.Warning)
       ds);
  (* A comfortable depth silences it. *)
  let g = reconvergent ~shortcut_depth:16 () in
  let s = Static_perf.analyze (sim_config ~fpgas:1 g) in
  check bool "deep shortcut clean" true
    (not (has "TCS501" (Static_perf.depth_diagnostics ~graph:g s)));
  (* 512 deep on a straight pipe is flagged wasteful, as info. *)
  let g = deep_graph () in
  let s = Static_perf.analyze (sim_config ~fpgas:1 g) in
  let ds = Static_perf.depth_diagnostics ~graph:g s in
  check bool "TCS502 raised" true (has "TCS502" ds);
  check bool "TCS502 only info" true (Diagnostic.errors ds = []);
  (* The default depth-16 pipeline raises neither. *)
  let g = clean_graph () in
  let s = Static_perf.analyze (sim_config ~fpgas:1 g) in
  check bool "defaults clean" true (Static_perf.depth_diagnostics ~graph:g s = [])

(* bounds is the screening path: it must agree with analyze on the
   interval and skip only the depth work. *)
let test_bounds_vs_analyze () =
  let cfg = sim_config (clean_graph ()) in
  let b = Static_perf.bounds cfg and a = Static_perf.analyze cfg in
  check bool "same interval" true
    (b.Static_perf.latency_lower_s = a.Static_perf.latency_lower_s
    && b.Static_perf.latency_upper_s = a.Static_perf.latency_upper_s
    && b.Static_perf.steady_ii_s = a.Static_perf.steady_ii_s);
  check bool "bounds skips depths" true (b.Static_perf.min_depths = []);
  check bool "analyze computes depths" true (a.Static_perf.min_depths <> [])

(* ------------------------------------------------------------------ *)
(* Artifact round-trip checking (TCS6xx)                               *)
(* ------------------------------------------------------------------ *)

module AC = Artifact_check

let sample_tcl =
  String.concat "\n"
    [
      "# TAPA-CS floorplan";
      "create_pblock pblock_SLR0_X0";
      "resize_pblock pblock_SLR0_X0 -add CLOCKREGION_X0Y0:CLOCKREGION_X3Y3";
      "add_cells_to_pblock pblock_SLR0_X0 [get_cells -hier read]";
      "create_pblock pblock_SLR1_X0";
      "add_cells_to_pblock pblock_SLR1_X0 [get_cells -hier mid]";
      "# pblock_SLR0_X0 abuts HBM channels 0-7";
      "# fifo read->mid: 2 pipeline stage(s) inserted at slot crossings";
      "";
    ]

let sample_cfg =
  String.concat "\n"
    [
      "[connectivity]";
      "sp=read.m_axi_0:HBM[3]";
      "stream_connect=mid.out:hivenet_tx.in   # to FPGA 1";
      "stream_connect=hivenet_rx.out:read.in   # from FPGA 1";
      "";
    ]

let sample_report =
  String.concat "\n"
    [
      "{";
      "  \"fpgas\": 2,";
      "  \"clock_mhz\": 250.0,";
      "  \"l1_floorplan_seconds\": 0.010,";
      "  \"cut_fifos\": [3, 5],";
      "  \"devices\": [";
      "    { \"index\": 0, \"clock_mhz\": 250.0, \"tasks\": [\"read\", \"mid\"] },";
      "    { \"index\": 1, \"clock_mhz\": 260.0, \"tasks\": [\"write\"] }";
      "  ]";
      "}";
    ]

let test_parse_floorplan () =
  let fp = AC.parse_floorplan_tcl sample_tcl in
  check int "two pblocks" 2 (List.length fp.AC.pblocks);
  check bool "read placed" true (List.assoc "SLR0_X0" fp.AC.pblocks = [ "read" ]);
  check bool "mid placed" true (List.assoc "SLR1_X0" fp.AC.pblocks = [ "mid" ]);
  check bool "stage note" true (fp.AC.stage_notes = [ ("read", "mid", 2) ])

let test_parse_connectivity () =
  let conn = AC.parse_connectivity_cfg sample_cfg in
  check bool "binding" true
    (conn.AC.bindings = [ { AC.task = "read"; port_index = 0; channel = 3 } ]);
  check bool "streams" true
    (conn.AC.streams
    = [
        { AC.task = "mid"; dir = `Tx; peer_fpga = 1 };
        { AC.task = "read"; dir = `Rx; peer_fpga = 1 };
      ])

let test_parse_report () =
  (match AC.parse_design_report sample_report with
  | Error m -> Alcotest.failf "report should parse: %s" m
  | Ok r ->
    check int "fpgas" 2 r.AC.fpgas;
    check bool "clock" true (r.AC.clock_mhz = 250.0);
    check bool "cut ids" true (r.AC.cut_fifo_ids = [ 3; 5 ]);
    check bool "device clocks" true (r.AC.device_clock_mhz = [ (0, 250.0); (1, 260.0) ]);
    check bool "device tasks" true
      (r.AC.device_tasks = [ (0, [ "read"; "mid" ]); (1, [ "write" ]) ]));
  match AC.parse_design_report "{}" with
  | Error m -> check bool "error names the field" true (contains "devices" m)
  | Ok _ -> Alcotest.fail "junk must not parse"

let good_slots = [ ("read", "SLR0_X0"); ("mid", "SLR1_X0") ]

let test_check_floorplan () =
  let fp = AC.parse_floorplan_tcl sample_tcl in
  check bool "faithful passes" true (AC.check_floorplan ~fpga:0 ~expected_slots:good_slots fp = []);
  let ds =
    AC.check_floorplan ~fpga:0
      ~expected_slots:[ ("read", "SLR1_X0"); ("mid", "SLR1_X0"); ("ghost", "SLR0_X0") ]
      fp
  in
  check bool "TCS601 on wrong slot" true (has "TCS601" ds);
  (* wrong slot for read, missing ghost = 2 findings *)
  check int "one per defect" 2 (List.length ds);
  check bool "all errors" true (List.length (Diagnostic.errors ds) = 2);
  (* A cell the floorplanner never assigned is also flagged. *)
  let ds = AC.check_floorplan ~fpga:0 ~expected_slots:[ ("read", "SLR0_X0") ] fp in
  check bool "unassigned cell flagged" true (has "TCS601" ds)

let test_check_connectivity () =
  let conn = AC.parse_connectivity_cfg sample_cfg in
  let expected_bindings = [ { AC.task = "read"; port_index = 0; channel = 3 } ] in
  let expected_streams =
    [
      { AC.task = "mid"; dir = `Tx; peer_fpga = 1 }; { AC.task = "read"; dir = `Rx; peer_fpga = 1 };
    ]
  in
  check bool "faithful passes" true
    (AC.check_connectivity ~fpga:0 ~expected_bindings ~expected_streams conn = []);
  (* Re-channeled binding: missing + extra = two TCS602. *)
  let ds =
    AC.check_connectivity ~fpga:0
      ~expected_bindings:[ { AC.task = "read"; port_index = 0; channel = 4 } ]
      ~expected_streams conn
  in
  check bool "TCS602 on rebind" true (has "TCS602" ds);
  check int "missing plus extra" 2 (List.length ds);
  (* Dropped stream line. *)
  let ds = AC.check_connectivity ~fpga:0 ~expected_bindings ~expected_streams:[] conn in
  check bool "TCS602 on extra stream" true (has "TCS602" ds)

let faithful_report =
  {
    AC.fpgas = 2;
    clock_mhz = 250.0;
    cut_fifo_ids = [ 3; 5 ];
    device_clock_mhz = [ (0, 250.0); (1, 260.0) ];
    device_tasks = [ (0, [ "read"; "mid" ]); (1, [ "write" ]) ];
  }

let test_check_report () =
  check bool "faithful passes" true (AC.check_report ~expected:faithful_report faithful_report = []);
  let tampered = { faithful_report with AC.fpgas = 1; cut_fifo_ids = [ 3 ] } in
  let ds = AC.check_report ~expected:faithful_report tampered in
  check bool "TCS603 raised" true (has "TCS603" ds);
  check int "one per field" 2 (List.length ds);
  (* %.1f rounding of the clock is within tolerance, not a mismatch. *)
  let rounded = { faithful_report with AC.clock_mhz = 250.04 } in
  check bool "rounding tolerated" true (AC.check_report ~expected:faithful_report rounded = [])

let test_check_stage_balance () =
  let g = clean_graph () in
  (* In-memory pipeline: FIFO 0 crosses with 2 stages. *)
  let pipe = Tapa_cs_pipeline.Pipelining.run ~graph:g ~crossings:[ (0, 2) ] in
  let expected_insertions =
    List.map
      (fun i ->
        (i.Tapa_cs_pipeline.Pipelining.fifo_id, i.Tapa_cs_pipeline.Pipelining.stages))
      pipe.Tapa_cs_pipeline.Pipelining.insertions
  in
  let expected_total = Tapa_cs_pipeline.Pipelining.stages_of pipe in
  let faithful = { AC.pblocks = []; stage_notes = [ ("read", "mid", 2) ] } in
  check bool "faithful passes" true
    (AC.check_stage_balance ~graph:g ~fpga:0 ~expected_insertions ~expected_total faithful = []);
  (* Tampered stage count: the comment disagrees AND the re-derived
     balance no longer matches. *)
  let tampered = { AC.pblocks = []; stage_notes = [ ("read", "mid", 1) ] } in
  let ds = AC.check_stage_balance ~graph:g ~fpga:0 ~expected_insertions ~expected_total tampered in
  check bool "TCS604 raised" true (has "TCS604" ds);
  (* A comment naming a FIFO that does not exist. *)
  let ghost = { AC.pblocks = []; stage_notes = [ ("read", "mid", 2); ("x", "y", 1) ] } in
  let ds = AC.check_stage_balance ~graph:g ~fpga:0 ~expected_insertions ~expected_total ghost in
  check bool "unknown fifo flagged" true (has "TCS604" ds)

(* ------------------------------------------------------------------ *)
(* Registry exhaustiveness: every code must be demonstrably raisable    *)
(* and demonstrably absent on a corrected input.                        *)
(* ------------------------------------------------------------------ *)

let test_registry_exhaustive () =
  let shape_bad () =
    let b = Taskgraph.Builder.create () in
    let a = task b "read" ~mem_ports:[ read_port ] in
    let z = task b "write" ~mem_ports:[ write_port ] in
    fifo b a z;
    ignore
      (Taskgraph.Builder.add_task b ~name:"idle" ~compute:(Task.make_compute ~elems:0.0 ()) ());
    Taskgraph.Builder.build b
  in
  let pure_cycle () =
    let b = Taskgraph.Builder.create () in
    let x = task b "x" in
    let y = task b "y" in
    fifo b x y;
    fifo b y x;
    Taskgraph.Builder.build b
  in
  let spinners () =
    let b = Taskgraph.Builder.create () in
    let r = task b "read" ~mem_ports:[ read_port ] in
    let w = task b "write" ~mem_ports:[ write_port ] in
    fifo b r w;
    let x = task b "x" in
    let y = task b "y" in
    fifo b x y;
    fifo b y x;
    Taskgraph.Builder.build b
  in
  let rate_bad () =
    let b = Taskgraph.Builder.create () in
    let fast = task b "fast" ~compute:(Task.make_compute ~elems:1000.0 ~ii:1.0 ()) in
    let slow =
      task b "slow" ~compute:(Task.make_compute ~elems:1000.0 ~ii:16.0 ()) ~mem_ports:[ write_port ]
    in
    fifo b fast slow;
    Taskgraph.Builder.build b
  in
  let width_graph w () =
    let b = Taskgraph.Builder.create () in
    let a = task b "a" in
    let z = task b "z" ~mem_ports:[ write_port ] in
    fifo b a z ~width:w;
    Taskgraph.Builder.build b
  in
  let capacity_bad () =
    let b = Taskgraph.Builder.create () in
    let a = task b "big" ~resources:huge ~mem_ports:[ read_port ] in
    let z = task b "write" ~mem_ports:[ write_port ] in
    fifo b a z;
    Taskgraph.Builder.build b
  in
  let channel_bad () =
    let b = Taskgraph.Builder.create () in
    let bad = Task.mem_port ~channel:99 ~dir:Task.Read ~width_bits:32 ~bytes:4000.0 () in
    let a = task b "a" ~mem_ports:[ bad ] in
    let z = task b "z" ~mem_ports:[ write_port ] in
    fifo b a z;
    Taskgraph.Builder.build b
  in
  let ports n = List.init n (fun _ -> read_port) in
  let many_tasks_many_ports () =
    let b = Taskgraph.Builder.create () in
    let ts = List.init 5 (fun i -> task b (Printf.sprintf "t%d" i) ~mem_ports:(ports 7)) in
    (match ts with t0 :: rest -> List.iter (fun t -> fifo b t0 t) rest | [] -> ());
    Taskgraph.Builder.build b
  in
  let mega_task () =
    let b = Taskgraph.Builder.create () in
    let a = task b "mega" ~mem_ports:(ports 33) in
    let z = task b "z" ~mem_ports:[ write_port ] in
    fifo b a z;
    Taskgraph.Builder.build b
  in
  let infeasible_model () =
    let m = Ilp.Model.create () in
    let x =
      Ilp.Model.add_var m ~name:"x" ~lb:(Rat.of_int 2) ~ub:(Rat.of_int 5) Ilp.Model.Continuous
    in
    Ilp.Model.add_constraint m ~name:"cap" (lin x) Ilp.Model.Le Rat.one;
    m
  in
  let unbounded_model () =
    let m = Ilp.Model.create () in
    let x = Ilp.Model.add_var m ~name:"x" Ilp.Model.Continuous in
    Ilp.Model.set_objective m Ilp.Model.Maximize (lin x);
    m
  in
  let capped_model () =
    let m = unbounded_model () in
    Ilp.Model.add_constraint m ~name:"cap"
      (Ilp.Linear.var 0)
      Ilp.Model.Le (Rat.of_int 7);
    m
  in
  let depth_ds shortcut_depth () =
    let g = reconvergent ~shortcut_depth () in
    Static_perf.depth_diagnostics ~graph:g (Static_perf.analyze (sim_config ~fpgas:1 g))
  in
  let deep_ds () =
    let g = deep_graph () in
    Static_perf.depth_diagnostics ~graph:g (Static_perf.analyze (sim_config ~fpgas:1 g))
  in
  let interval_ds outside () =
    let s = Static_perf.bounds (sim_config (clean_graph ())) in
    let latency_s =
      if outside then (s.Static_perf.latency_upper_s *. 2.0) +. 1.0
      else (s.Static_perf.latency_lower_s +. s.Static_perf.latency_upper_s) /. 2.0
    in
    Option.to_list (Static_perf.interval_check s ~latency_s)
  in
  let fp () = AC.parse_floorplan_tcl sample_tcl in
  let conn () = AC.parse_connectivity_cfg sample_cfg in
  let stage_fixture tamper () =
    let g = clean_graph () in
    let pipe = Tapa_cs_pipeline.Pipelining.run ~graph:g ~crossings:[ (0, 2) ] in
    let expected_insertions =
      List.map
        (fun i -> (i.Tapa_cs_pipeline.Pipelining.fifo_id, i.Tapa_cs_pipeline.Pipelining.stages))
        pipe.Tapa_cs_pipeline.Pipelining.insertions
    in
    let notes = if tamper then [ ("read", "mid", 1) ] else [ ("read", "mid", 2) ] in
    AC.check_stage_balance ~graph:g ~fpga:0 ~expected_insertions
      ~expected_total:(Tapa_cs_pipeline.Pipelining.stages_of pipe)
      { AC.pblocks = []; stage_notes = notes }
  in
  let module If = Tapa_cs_floorplan.Inter_fpga in
  (* (code, positive trigger, corrected negative) — the positive must
     raise the code, the negative must not. *)
  let triggers =
    [
      ("TCS001", (fun () -> Lint.graph_shape (shape_bad ())), fun () -> Lint.graph_shape (clean_graph ()));
      ("TCS002", (fun () -> Lint.graph_shape (shape_bad ())), fun () -> Lint.graph_shape (clean_graph ()));
      ("TCS003", (fun () -> Lint.graph_shape (pure_cycle ())), fun () -> Lint.graph_shape (clean_graph ()));
      ("TCS004", (fun () -> Lint.graph_shape (pure_cycle ())), fun () -> Lint.graph_shape (clean_graph ()));
      ("TCS005", (fun () -> Lint.graph_shape (spinners ())), fun () -> Lint.graph_shape (clean_graph ()));
      ( "TCS101",
        (fun () -> Lint.deadlock (cycle_graph ~mode:Fifo.Bulk ())),
        fun () -> Lint.deadlock (clean_graph ()) );
      ( "TCS102",
        (fun () -> Lint.deadlock (cycle_graph ~mode:Fifo.Stream ())),
        fun () -> Lint.deadlock (clean_graph ()) );
      ( "TCS103",
        (fun () -> Lint.deadlock (reconvergent ~shortcut_depth:2 ())),
        fun () -> Lint.deadlock (reconvergent ~shortcut_depth:16 ()) );
      ("TCS201", (fun () -> Lint.rates (rate_bad ())), fun () -> Lint.rates (clean_graph ()));
      ( "TCS202",
        (fun () -> Lint.rates (width_graph 48 ())),
        fun () -> Lint.rates (width_graph 64 ()) );
      ("TCS301", (fun () -> capacity_of (capacity_bad ())), fun () -> capacity_of (clean_graph ()));
      ("TCS302", (fun () -> capacity_of (channel_bad ())), fun () -> capacity_of (clean_graph ()));
      ( "TCS303",
        (fun () -> capacity_of (many_tasks_many_ports ())),
        fun () -> capacity_of (clean_graph ()) );
      ( "TCS304",
        (fun () -> capacity_of (mega_task ())),
        fun () -> capacity_of (many_tasks_many_ports ()) );
      ( "TCS305",
        (fun () -> [ Lint.floorplan_error If.Infeasible ]),
        fun () -> [ Lint.floorplan_error If.Solver_timeout ] );
      ( "TCS306",
        (fun () -> [ Lint.floorplan_error (If.Over_capacity 3) ]),
        fun () -> [ Lint.floorplan_error If.Infeasible ] );
      ( "TCS307",
        (fun () -> [ Lint.floorplan_error If.Solver_timeout ]),
        fun () -> [ Lint.floorplan_error (If.Over_capacity 1) ] );
      ( "TCS308",
        (fun () ->
          match Tapa_cs_network.Fault.parse_link_spec "0:x" with
          | Error reason -> [ Lint.fault_spec_error ~flag:"--fail-link" ~spec:"0:x" ~reason ]
          | Ok _ -> []),
        fun () ->
          match Tapa_cs_network.Fault.parse_link_spec "0:1" with
          | Error reason -> [ Lint.fault_spec_error ~flag:"--fail-link" ~spec:"0:1" ~reason ]
          | Ok _ -> [] );
      ( "TCS401",
        (fun () -> Lint.ilp_model (infeasible_model ())),
        fun () -> Lint.ilp_model (capped_model ()) );
      ( "TCS402",
        (fun () -> Lint.ilp_model (unbounded_model ())),
        fun () -> Lint.ilp_model (capped_model ()) );
      ("TCS501", depth_ds 2, depth_ds 16);
      ("TCS502", deep_ds, depth_ds 16);
      ("TCS503", interval_ds true, interval_ds false);
      ( "TCS601",
        (fun () ->
          AC.check_floorplan ~fpga:0 ~expected_slots:[ ("read", "SLR1_X0") ] (fp ())),
        fun () -> AC.check_floorplan ~fpga:0 ~expected_slots:good_slots (fp ()) );
      ( "TCS602",
        (fun () ->
          AC.check_connectivity ~fpga:0
            ~expected_bindings:[ { AC.task = "read"; port_index = 0; channel = 4 } ]
            ~expected_streams:[] (conn ())),
        fun () ->
          AC.check_connectivity ~fpga:0
            ~expected_bindings:[ { AC.task = "read"; port_index = 0; channel = 3 } ]
            ~expected_streams:
              [
                { AC.task = "mid"; dir = `Tx; peer_fpga = 1 };
                { AC.task = "read"; dir = `Rx; peer_fpga = 1 };
              ]
            (conn ()) );
      ( "TCS603",
        (fun () ->
          AC.check_report ~expected:faithful_report { faithful_report with AC.fpgas = 1 }),
        fun () -> AC.check_report ~expected:faithful_report faithful_report );
      ("TCS604", stage_fixture true, stage_fixture false);
      ( "TCS701",
        (fun () -> [ Lint.admission_reject ~klass:"best-effort" ~depth:64 ~limit:48 ]),
        fun () -> [ Lint.floorplan_error If.Infeasible ] );
    ]
  in
  List.iter
    (fun (code, pos, neg) ->
      check bool (code ^ " raised by its trigger") true (has code (pos ()));
      check bool (code ^ " absent from the corrected input") true (not (has code (neg ()))))
    triggers;
  let covered = List.sort_uniq compare (List.map (fun (c, _, _) -> c) triggers) in
  let registered = List.sort compare (List.map (fun (c, _, _, _) -> c) Diagnostic.registry) in
  Alcotest.(check (list string)) "every registry code has a trigger pair" registered covered

let () =
  Alcotest.run "analysis"
    [
      ( "diagnostic",
        [
          Alcotest.test_case "registry well-formed" `Quick test_registry_well_formed;
          Alcotest.test_case "render pretty and json" `Quick test_render_pretty_and_json;
          Alcotest.test_case "sort errors first" `Quick test_sort_errors_first;
        ] );
      ( "shape",
        [
          Alcotest.test_case "clean graph clean" `Quick test_clean_graph_clean;
          Alcotest.test_case "disconnected and dead" `Quick test_disconnected_and_dead;
          Alcotest.test_case "no source/sink, unreachable" `Quick test_no_source_no_sink_unreachable;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "bulk cycle is error" `Quick test_bulk_cycle_is_error;
          Alcotest.test_case "stream cycle is warning" `Quick test_stream_cycle_is_warning;
          Alcotest.test_case "reconvergent depth" `Quick test_reconvergent_depth;
        ] );
      ( "rates",
        [
          Alcotest.test_case "rate mismatch" `Quick test_rate_mismatch;
          Alcotest.test_case "width conflict" `Quick test_width_conflict;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "resource overflow" `Quick test_capacity_overflow;
          Alcotest.test_case "channel binding" `Quick test_channel_binding;
          Alcotest.test_case "port counts" `Quick test_port_counts;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "trivially infeasible" `Quick test_ilp_trivially_infeasible;
          Alcotest.test_case "trivially unbounded" `Quick test_ilp_trivially_unbounded;
          Alcotest.test_case "named constraints" `Quick test_named_constraints;
        ] );
      ( "designs",
        [
          Alcotest.test_case "shipped apps error-clean" `Quick test_shipped_apps_error_clean;
          Alcotest.test_case "broken app flagged" `Quick test_broken_app_flagged;
        ] );
      ( "integration",
        [
          Alcotest.test_case "compile gate: over-subscribed" `Quick test_compile_gate_oversubscribed;
          Alcotest.test_case "compile gate: bulk cycle" `Quick test_compile_gate_bulk_cycle;
          Alcotest.test_case "simulator deadlock named" `Quick test_sim_deadlock_named;
        ] );
      ( "static_perf",
        [
          Alcotest.test_case "bounds contain unit designs" `Quick test_bounds_contain_unit_designs;
          Alcotest.test_case "interval check" `Quick test_interval_check;
          Alcotest.test_case "depth diagnostics" `Quick test_depth_diagnostics;
          Alcotest.test_case "bounds vs analyze" `Quick test_bounds_vs_analyze;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_static_bounds_sound ] );
      ( "artifacts",
        [
          Alcotest.test_case "parse floorplan tcl" `Quick test_parse_floorplan;
          Alcotest.test_case "parse connectivity cfg" `Quick test_parse_connectivity;
          Alcotest.test_case "parse design report" `Quick test_parse_report;
          Alcotest.test_case "check floorplan" `Quick test_check_floorplan;
          Alcotest.test_case "check connectivity" `Quick test_check_connectivity;
          Alcotest.test_case "check report" `Quick test_check_report;
          Alcotest.test_case "check stage balance" `Quick test_check_stage_balance;
        ] );
      ( "registry",
        [ Alcotest.test_case "exhaustive trigger coverage" `Quick test_registry_exhaustive ] );
    ]
