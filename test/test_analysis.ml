(* Tests for the static design linter: the diagnostics core, each TCS
   code on a minimal trigger graph, the error-cleanliness of the shipped
   benchmarks, the seeded-defect example, the ILP model validator and
   the compiler's step-0 gate. *)

open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_analysis
module Ilp = Tapa_cs_ilp
module Rat = Tapa_cs_util.Rat

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let codes_of ds = List.sort_uniq compare (List.map (fun d -> d.Diagnostic.code) ds)
let has code ds = List.mem code (codes_of ds)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let cluster1 () = Cluster.make ~board:Board.u55c 1

(* Minimal builders ------------------------------------------------- *)

let compute = Task.make_compute ~elems:1000.0 ~ii:1.0 ~elem_bits:32 ()

let task ?(compute = compute) ?(mem_ports = []) ?resources b name =
  Taskgraph.Builder.add_task b ~name ?compute:(Some compute) ~mem_ports ?resources ()

let fifo ?(width = 32) ?(depth = 16) ?(elems = 1000.0) ?mode b src dst =
  ignore (Taskgraph.Builder.add_fifo b ~src ~dst ~width_bits:width ~depth ~elems ?mode ())

let read_port = Task.mem_port ~dir:Task.Read ~width_bits:32 ~bytes:4000.0 ()
let write_port = Task.mem_port ~dir:Task.Write ~width_bits:32 ~bytes:4000.0 ()

(* A well-formed pipeline: read -> mid -> write. *)
let clean_graph () =
  let b = Taskgraph.Builder.create () in
  let a = task b "read" ~mem_ports:[ read_port ] in
  let m = task b "mid" in
  let z = task b "write" ~mem_ports:[ write_port ] in
  fifo b a m;
  fifo b m z;
  Taskgraph.Builder.build b

(* ------------------------------------------------------------------ *)
(* Diagnostics core                                                    *)
(* ------------------------------------------------------------------ *)

let test_registry_well_formed () =
  let codes = List.map (fun (c, _, _, _) -> c) Diagnostic.registry in
  check int "codes unique" (List.length codes) (List.length (List.sort_uniq compare codes));
  List.iter
    (fun (c, _, meaning, _) ->
      check bool (c ^ " prefixed") true (String.length c = 6 && String.sub c 0 3 = "TCS");
      check bool (c ^ " described") true (meaning <> "" && Diagnostic.describe c = meaning))
    Diagnostic.registry;
  (* Unknown codes fail safe as errors. *)
  check bool "unknown is error" true (Diagnostic.default_severity "TCS999" = Diagnostic.Error)

let test_render_pretty_and_json () =
  let d =
    Diagnostic.make ~code:"TCS101" ~severity:Diagnostic.Error
      ~loc:(Diagnostic.Fifo { id = 3; src = "a"; dst = "b" })
      ~hint:"break the \"cycle\"" "bulk FIFO on a cycle"
  in
  let pretty = Diagnostic.render [ d ] in
  check bool "pretty has code" true (contains "error[TCS101]" pretty);
  check bool "pretty has loc" true (contains "fifo #3 (a -> b)" pretty);
  check bool "pretty has hint" true (contains "fix:" pretty);
  check bool "pretty has tally" true (contains "1 error(s)" pretty);
  let json = Diagnostic.render ~json:true [ d ] in
  check bool "json one line" true (not (String.contains json '\n'));
  check bool "json code" true (contains {|"code":"TCS101"|} json);
  check bool "json escaping" true (contains {|\"cycle\"|} json)

let test_sort_errors_first () =
  let mk code sev = Diagnostic.make ~code ~severity:sev ~loc:Diagnostic.Design "m" in
  let sorted =
    Diagnostic.sort
      [ mk "TCS201" Diagnostic.Warning; mk "TCS301" Diagnostic.Error; mk "TCS001" Diagnostic.Warning ]
  in
  check bool "error first" true ((List.hd sorted).Diagnostic.code = "TCS301");
  check int "errors subset" 1 (List.length (Diagnostic.errors sorted))

(* ------------------------------------------------------------------ *)
(* Graph-shape lints                                                   *)
(* ------------------------------------------------------------------ *)

let test_clean_graph_clean () =
  let g = clean_graph () in
  check bool "no shape findings" true (Lint.graph_shape g = []);
  check bool "no deadlock findings" true (Lint.deadlock g = []);
  check bool "no rate findings" true (Lint.rates g = [])

let test_disconnected_and_dead () =
  let b = Taskgraph.Builder.create () in
  let a = task b "read" ~mem_ports:[ read_port ] in
  let z = task b "write" ~mem_ports:[ write_port ] in
  fifo b a z;
  (* No compute, no streams, no ports: dead, and its own component. *)
  ignore
    (Taskgraph.Builder.add_task b ~name:"idle"
       ~compute:(Task.make_compute ~elems:0.0 ())
       ());
  let ds = Lint.graph_shape (Taskgraph.Builder.build b) in
  check bool "TCS001 raised" true (has "TCS001" ds);
  check bool "TCS002 raised" true (has "TCS002" ds)

let test_no_source_no_sink_unreachable () =
  (* A pure 2-cycle: no task qualifies as source or sink. *)
  let b = Taskgraph.Builder.create () in
  let x = task b "x" in
  let y = task b "y" in
  fifo b x y;
  fifo b y x;
  let ds = Lint.graph_shape (Taskgraph.Builder.build b) in
  check bool "TCS003 raised" true (has "TCS003" ds);
  check bool "TCS004 raised" true (has "TCS004" ds);
  (* Unreachability needs a source to be unreachable from. *)
  let b = Taskgraph.Builder.create () in
  let r = task b "read" ~mem_ports:[ read_port ] in
  let w = task b "write" ~mem_ports:[ write_port ] in
  fifo b r w;
  let x = task b "x" in
  let y = task b "y" in
  fifo b x y;
  fifo b y x;
  let ds = Lint.graph_shape (Taskgraph.Builder.build b) in
  check bool "TCS005 on both spinners" true
    (List.length (List.filter (fun d -> d.Diagnostic.code = "TCS005") ds) = 2)

(* ------------------------------------------------------------------ *)
(* Deadlock lints                                                      *)
(* ------------------------------------------------------------------ *)

let cycle_graph ~mode () =
  let b = Taskgraph.Builder.create () in
  let r = task b "read" ~mem_ports:[ read_port ] in
  let x = task b "x" in
  let y = task b "y" in
  fifo b r x;
  fifo b x y ?mode:(Some mode);
  fifo b y x;
  let w = task b "write" ~mem_ports:[ write_port ] in
  fifo b y w;
  Taskgraph.Builder.build b

let test_bulk_cycle_is_error () =
  let ds = Lint.deadlock (cycle_graph ~mode:Fifo.Bulk ()) in
  check bool "TCS101 raised" true (has "TCS101" ds);
  check bool "TCS101 is error" true (Diagnostic.errors ds <> [])

let test_stream_cycle_is_warning () =
  let ds = Lint.deadlock (cycle_graph ~mode:Fifo.Stream ()) in
  check bool "TCS102 raised" true (has "TCS102" ds);
  check bool "only warnings" true (Diagnostic.errors ds = [])

let test_reconvergent_depth () =
  (* Long arm src->a->b->c->join vs. a depth-2 shortcut src->join: the
     shortcut FIFO must buffer 3 tokens while the arm catches up. *)
  let b = Taskgraph.Builder.create () in
  let s = task b "src" ~mem_ports:[ read_port ] in
  let a = task b "a" in
  let b2 = task b "b" in
  let c = task b "c" in
  let j = task b "join" ~mem_ports:[ write_port ] in
  fifo b s a;
  fifo b a b2;
  fifo b b2 c;
  fifo b c j;
  fifo b s j ~depth:2;
  let ds = Lint.deadlock (Taskgraph.Builder.build b) in
  check bool "TCS103 raised" true (has "TCS103" ds)

(* ------------------------------------------------------------------ *)
(* Rate / width lints                                                  *)
(* ------------------------------------------------------------------ *)

let test_rate_mismatch () =
  let b = Taskgraph.Builder.create () in
  let fast = task b "fast" ~compute:(Task.make_compute ~elems:1000.0 ~ii:1.0 ()) in
  let slow =
    task b "slow"
      ~compute:(Task.make_compute ~elems:1000.0 ~ii:16.0 ())
      ~mem_ports:[ write_port ]
  in
  fifo b fast slow;
  let ds = Lint.rates (Taskgraph.Builder.build b) in
  check bool "TCS201 raised" true (has "TCS201" ds)

let test_width_conflict () =
  let b = Taskgraph.Builder.create () in
  let a = task b "a" in
  let z = task b "z" ~mem_ports:[ write_port ] in
  fifo b a z ~width:48;
  let ds = Lint.rates (Taskgraph.Builder.build b) in
  check bool "TCS202 raised" true (has "TCS202" ds);
  (* 2:1 serialization is legitimate, not a conflict. *)
  let b = Taskgraph.Builder.create () in
  let a = task b "a" in
  let z = task b "z" ~mem_ports:[ write_port ] in
  fifo b a z ~width:64;
  check bool "divisor widths pass" true (Lint.rates (Taskgraph.Builder.build b) = [])

(* ------------------------------------------------------------------ *)
(* Capacity lints                                                      *)
(* ------------------------------------------------------------------ *)

let huge = Resource.make ~lut:2_000_000 ~ff:100 ~bram:10 ~dsp:10 ()

let capacity_of g = Lint.capacity ~cluster:(cluster1 ()) ~synthesis:(Tapa_cs_hls.Synthesis.run g) g

let test_capacity_overflow () =
  let b = Taskgraph.Builder.create () in
  let a = task b "big" ~resources:huge ~mem_ports:[ read_port ] in
  let z = task b "write" ~mem_ports:[ write_port ] in
  fifo b a z;
  let ds = capacity_of (Taskgraph.Builder.build b) in
  check bool "TCS301 raised" true (has "TCS301" ds);
  check bool "clean design passes" true (capacity_of (clean_graph ()) = [])

let test_channel_binding () =
  let b = Taskgraph.Builder.create () in
  let bad = Task.mem_port ~channel:99 ~dir:Task.Read ~width_bits:32 ~bytes:4000.0 () in
  let a = task b "a" ~mem_ports:[ bad ] in
  let z = task b "z" ~mem_ports:[ write_port ] in
  fifo b a z;
  let ds = capacity_of (Taskgraph.Builder.build b) in
  check bool "TCS302 raised" true (has "TCS302" ds)

let test_port_counts () =
  (* 5 tasks x 7 ports = 35 ports > 32 channels, but each task is fine. *)
  let b = Taskgraph.Builder.create () in
  let ports n = List.init n (fun _ -> read_port) in
  let ts = List.init 5 (fun i -> task b (Printf.sprintf "t%d" i) ~mem_ports:(ports 7)) in
  (match ts with
  | t0 :: rest -> List.iter (fun t -> fifo b t0 t) rest
  | [] -> ());
  let ds = capacity_of (Taskgraph.Builder.build b) in
  check bool "TCS303 raised" true (has "TCS303" ds);
  check bool "no TCS304" true (not (has "TCS304" ds));
  (* One task with 33 ports trips the per-board bound too. *)
  let b = Taskgraph.Builder.create () in
  let a = task b "mega" ~mem_ports:(ports 33) in
  let z = task b "z" ~mem_ports:[ write_port ] in
  fifo b a z;
  let ds = capacity_of (Taskgraph.Builder.build b) in
  check bool "TCS304 raised" true (has "TCS304" ds)

(* ------------------------------------------------------------------ *)
(* ILP validation                                                      *)
(* ------------------------------------------------------------------ *)

let lin x = Ilp.Linear.var x

let test_ilp_trivially_infeasible () =
  let m = Ilp.Model.create () in
  let x =
    Ilp.Model.add_var m ~name:"x" ~lb:(Rat.of_int 2) ~ub:(Rat.of_int 5) Ilp.Model.Continuous
  in
  Ilp.Model.add_constraint m ~name:"cap" (lin x) Ilp.Model.Le Rat.one;
  (match Ilp.Validate.check m with
  | [ Ilp.Validate.Infeasible_constraint { name; _ } ] -> check bool "named" true (name = "cap")
  | _ -> Alcotest.fail "expected one infeasible issue");
  check bool "solver rejects fast" true (Ilp.Branch_bound.solve m = Ilp.Branch_bound.Infeasible);
  let ds = Lint.ilp_model m in
  check bool "TCS401 raised" true (has "TCS401" ds)

let test_ilp_trivially_unbounded () =
  let m = Ilp.Model.create () in
  let x = Ilp.Model.add_var m ~name:"x" Ilp.Model.Continuous in
  Ilp.Model.set_objective m Ilp.Model.Maximize (lin x);
  (match Ilp.Validate.check m with
  | [ Ilp.Validate.Unbounded_direction { var; _ } ] -> check bool "named" true (var = "x")
  | _ -> Alcotest.fail "expected one unbounded issue");
  check bool "solver rejects fast" true (Ilp.Branch_bound.solve m = Ilp.Branch_bound.Unbounded);
  check bool "TCS402 raised" true (has "TCS402" (Lint.ilp_model m));
  (* A capping constraint restores soundness. *)
  Ilp.Model.add_constraint m ~name:"cap" (lin x) Ilp.Model.Le (Rat.of_int 7);
  check bool "capped model passes" true (Ilp.Validate.check m = [])

let test_named_constraints () =
  let m = Ilp.Model.create () in
  let x = Ilp.Model.add_var m ~name:"x" ~ub:Rat.one Ilp.Model.Continuous in
  Ilp.Model.add_constraint m ~name:"first" (lin x) Ilp.Model.Le Rat.one;
  Ilp.Model.add_constraint m (lin x) Ilp.Model.Ge Rat.zero;
  match Ilp.Model.named_constraints m with
  | [ (n0, _, _, _); (n1, _, _, _) ] ->
    check bool "explicit name kept" true (n0 = "first");
    check bool "fallback name indexed" true (n1 = "c1")
  | l -> Alcotest.failf "expected 2 constraints, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Shipped apps and the seeded-defect example                          *)
(* ------------------------------------------------------------------ *)

let shipped () =
  [
    Tapa_cs_apps.Stencil.generate (Tapa_cs_apps.Stencil.make_config ~iterations:64 ~fpgas:1 ());
    Tapa_cs_apps.Pagerank.generate
      (Tapa_cs_apps.Pagerank.make_config
         ~dataset:(List.hd Tapa_cs_apps.Dataset.all)
         ~fpgas:1 ());
    Tapa_cs_apps.Knn.generate (Tapa_cs_apps.Knn.make_config ~n_points:4_000_000 ~dims:2 ~fpgas:1 ());
    Tapa_cs_apps.Cnn.generate (Tapa_cs_apps.Cnn.make_config ~cols:8 ~fpgas:1 ());
  ]

let test_shipped_apps_error_clean () =
  List.iter
    (fun (a : Tapa_cs_apps.App.t) ->
      let ds = Lint.run_all ~cluster:(cluster1 ()) a.graph in
      match Diagnostic.errors ds with
      | [] -> ()
      | errs ->
        Alcotest.failf "%s has %d lint error(s): %s" a.name (List.length errs)
          (Diagnostic.render errs))
    (shipped ())

let test_broken_app_flagged () =
  let a = Tapa_cs_apps.Broken.generate () in
  let ds = Lint.run_all ~cluster:(cluster1 ()) a.Tapa_cs_apps.App.graph in
  Alcotest.(check (list string))
    "expected codes" Tapa_cs_apps.Broken.expected_codes (codes_of ds);
  check bool "has errors" true (Diagnostic.errors ds <> [])

(* ------------------------------------------------------------------ *)
(* Compiler gate and simulator deadlock                                *)
(* ------------------------------------------------------------------ *)

let test_compile_gate_oversubscribed () =
  let b = Taskgraph.Builder.create () in
  let a = task b "big" ~resources:huge ~mem_ports:[ read_port ] in
  let z = task b "write" ~mem_ports:[ write_port ] in
  fifo b a z;
  let g = Taskgraph.Builder.build b in
  (match Tapa_cs.Compiler.compile ~cluster:(cluster1 ()) g with
  | Error e -> check bool "coded diagnostic" true (contains "TCS301" e)
  | Ok _ -> Alcotest.fail "expected the step-0 gate to reject");
  (* The same design with the gate off fails later, without the code. *)
  let options = { Tapa_cs.Compiler.default_options with lint = false } in
  match Tapa_cs.Compiler.compile ~options ~cluster:(cluster1 ()) g with
  | Error e -> check bool "uncoded failure" true (not (contains "TCS301" e))
  | Ok _ -> Alcotest.fail "expected the floorplanner to reject"

let test_compile_gate_bulk_cycle () =
  let g = cycle_graph ~mode:Fifo.Bulk () in
  match Tapa_cs.Compiler.compile ~cluster:(cluster1 ()) g with
  | Error e -> check bool "coded diagnostic" true (contains "TCS101" e)
  | Ok _ -> Alcotest.fail "expected the step-0 gate to reject"

let test_sim_deadlock_named () =
  let g = cycle_graph ~mode:Fifo.Bulk () in
  let cluster = cluster1 () in
  let synthesis = Tapa_cs_hls.Synthesis.run g in
  let cfg =
    Tapa_cs_sim.Design_sim.make_config ~graph:g
      ~assignment:(Array.make (Taskgraph.num_tasks g) 0)
      ~freq_mhz:[| 200.0 |] ~cluster ~synthesis ()
  in
  match Tapa_cs_sim.Design_sim.run cfg with
  | exception Tapa_cs_sim.Design_sim.Deadlock d ->
    check bool "names a blocked task" true (d.tasks <> []);
    check bool "points at the linter" true
      (contains "TCS101" d.message && contains "lint" d.message)
  | _ -> Alcotest.fail "expected Design_sim.Deadlock"

let () =
  Alcotest.run "analysis"
    [
      ( "diagnostic",
        [
          Alcotest.test_case "registry well-formed" `Quick test_registry_well_formed;
          Alcotest.test_case "render pretty and json" `Quick test_render_pretty_and_json;
          Alcotest.test_case "sort errors first" `Quick test_sort_errors_first;
        ] );
      ( "shape",
        [
          Alcotest.test_case "clean graph clean" `Quick test_clean_graph_clean;
          Alcotest.test_case "disconnected and dead" `Quick test_disconnected_and_dead;
          Alcotest.test_case "no source/sink, unreachable" `Quick test_no_source_no_sink_unreachable;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "bulk cycle is error" `Quick test_bulk_cycle_is_error;
          Alcotest.test_case "stream cycle is warning" `Quick test_stream_cycle_is_warning;
          Alcotest.test_case "reconvergent depth" `Quick test_reconvergent_depth;
        ] );
      ( "rates",
        [
          Alcotest.test_case "rate mismatch" `Quick test_rate_mismatch;
          Alcotest.test_case "width conflict" `Quick test_width_conflict;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "resource overflow" `Quick test_capacity_overflow;
          Alcotest.test_case "channel binding" `Quick test_channel_binding;
          Alcotest.test_case "port counts" `Quick test_port_counts;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "trivially infeasible" `Quick test_ilp_trivially_infeasible;
          Alcotest.test_case "trivially unbounded" `Quick test_ilp_trivially_unbounded;
          Alcotest.test_case "named constraints" `Quick test_named_constraints;
        ] );
      ( "designs",
        [
          Alcotest.test_case "shipped apps error-clean" `Quick test_shipped_apps_error_clean;
          Alcotest.test_case "broken app flagged" `Quick test_broken_app_flagged;
        ] );
      ( "integration",
        [
          Alcotest.test_case "compile gate: over-subscribed" `Quick test_compile_gate_oversubscribed;
          Alcotest.test_case "compile gate: bulk cycle" `Quick test_compile_gate_bulk_cycle;
          Alcotest.test_case "simulator deadlock named" `Quick test_sim_deadlock_named;
        ] );
    ]
