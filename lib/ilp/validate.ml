open Tapa_cs_util

type issue =
  | Infeasible_constraint of { name : string; detail : string }
  | Unbounded_direction of { var : string; detail : string }

(* Extremes of a linear expression over the bounds box.  [None] means the
   extreme is infinite (a variable with no finite upper bound and a
   coefficient pointing that way). *)
let lhs_min model expr =
  List.fold_left
    (fun acc (v, c) ->
      match acc with
      | None -> None
      | Some m -> (
        if Rat.sign c >= 0 then Some (Rat.add m (Rat.mul c (Model.var_lb model v)))
        else
          match Model.var_ub model v with
          | Some u -> Some (Rat.add m (Rat.mul c u))
          | None -> None))
    (Some Rat.zero) (Linear.terms expr)

let lhs_max model expr =
  List.fold_left
    (fun acc (v, c) ->
      match acc with
      | None -> None
      | Some m -> (
        if Rat.sign c <= 0 then Some (Rat.add m (Rat.mul c (Model.var_lb model v)))
        else
          match Model.var_ub model v with
          | Some u -> Some (Rat.add m (Rat.mul c u))
          | None -> None))
    (Some Rat.zero) (Linear.terms expr)

let check_constraint model (name, expr, rel, rhs) =
  let detail lo_hi bound =
    Printf.sprintf "%s achievable LHS is %s but the constraint needs %s %s" lo_hi
      (Rat.to_string bound)
      (match rel with Model.Le -> "<=" | Model.Ge -> ">=" | Model.Eq -> "=")
      (Rat.to_string rhs)
  in
  match rel with
  | Model.Le -> (
    match lhs_min model expr with
    | Some lo when Rat.compare lo rhs > 0 ->
      Some (Infeasible_constraint { name; detail = detail "minimum" lo })
    | _ -> None)
  | Model.Ge -> (
    match lhs_max model expr with
    | Some hi when Rat.compare hi rhs < 0 ->
      Some (Infeasible_constraint { name; detail = detail "maximum" hi })
    | _ -> None)
  | Model.Eq -> (
    match lhs_min model expr with
    | Some lo when Rat.compare lo rhs > 0 ->
      Some (Infeasible_constraint { name; detail = detail "minimum" lo })
    | _ -> (
      match lhs_max model expr with
      | Some hi when Rat.compare hi rhs < 0 ->
        Some (Infeasible_constraint { name; detail = detail "maximum" hi })
      | _ -> None))

(* A constraint bounds variable [v] from above when raising [v] (all else
   fixed) eventually violates it. *)
let bounds_above rel coeff =
  match rel with
  | Model.Le -> Rat.sign coeff > 0
  | Model.Ge -> Rat.sign coeff < 0
  | Model.Eq -> Rat.sign coeff <> 0

let check_unbounded model =
  let sense, obj = Model.objective model in
  let constrs = Model.named_constraints model in
  List.filter_map
    (fun (v, c) ->
      let improving =
        match sense with Model.Minimize -> Rat.sign c < 0 | Model.Maximize -> Rat.sign c > 0
      in
      if (not improving) || Model.var_ub model v <> None then None
      else if
        List.exists (fun (_, e, rel, _) -> bounds_above rel (Linear.coeff e v)) constrs
      then None
      else
        Some
          (Unbounded_direction
             {
               var = Model.var_name model v;
               detail =
                 Printf.sprintf
                   "objective improves without limit along %s: no upper bound and no \
                    constraint caps it"
                   (Model.var_name model v);
             }))
    (Linear.terms obj)

let check model =
  let infeasible =
    List.filter_map (check_constraint model) (Model.named_constraints model)
  in
  (* Unbounded directions are only meaningful on a box that is not already
     empty; report infeasibility first when both are present. *)
  if infeasible <> [] then infeasible else check_unbounded model

let issue_name = function
  | Infeasible_constraint { name; _ } -> name
  | Unbounded_direction { var; _ } -> var

let pp_issue fmt = function
  | Infeasible_constraint { name; detail } ->
    Format.fprintf fmt "trivially infeasible constraint %s: %s" name detail
  | Unbounded_direction { var; detail } ->
    Format.fprintf fmt "trivially unbounded via %s: %s" var detail
