(** Exact primal simplex over rationals.

    Two implementations share one result type:

    {ul
    {- {!solve_reference} — the original two-phase dense-tableau solver.
       Variable upper bounds are materialized as explicit [y_j <= u_j]
       tableau rows, and the whole standard form is rebuilt from the
       {!Model} on every call.  Kept as the independently-written oracle
       for differential testing and as the cold-rebuild baseline of the
       [bench/micro] warm-vs-cold measurement.}
    {- {!prepare} / {!solve_prepared} — the incremental hot path used by
       {!Branch_bound}.  [prepare] computes the standard-form layout
       (row collection from the model, slack/artificial column
       assignment, dense +/- coefficient templates) {e once per model};
       [solve_prepared ~bounds] only re-applies the variable-bound shifts
       before the two-phase run.  Variable bounds are handled {e
       implicitly} (bounded-variable simplex: nonbasic variables may sit
       at either bound, and a ratio test hitting the entering variable's
       own bound is a cheap bound flip, not a pivot), so the working
       tableau has one row per model constraint instead of one per
       constraint plus one per bounded variable.  On the floorplanner's
       binary-heavy models this shrinks the tableau several-fold and
       turns most knapsack-style pivots into O(m) flips.}}

    All arithmetic is exact ({!Tapa_cs_util.Rat}), so "optimal" means
    provably optimal — this is what lets branch-and-bound certify the same
    partitions a commercial ILP solver would return.  Both paths agree on
    the result constructor and the objective value (enforced by a qcheck
    property); when an LP has several optimal vertices they may return
    different ones. *)

open Tapa_cs_util

type solution = {
  objective : Rat.t;  (** value of the model's objective at the optimum *)
  values : Rat.t array;  (** one value per model variable *)
  pivots : int;
      (** simplex iterations across both phases: basis changes plus, on
          the prepared path, bound flips (each counts toward
          [max_pivots]) *)
}

type result = Optimal of solution | Infeasible | Unbounded

exception Pivot_limit

type prepared
(** Standard-form template of one model: row layout, slack/artificial
    column indices, dense positive/negated coefficient rows and the
    sparse terms needed to re-shift right-hand sides under new bounds.
    Immutable after {!prepare}; a single template may be shared by
    concurrent solves (every {!solve_prepared} call allocates its own
    working tableau). *)

val prepare : Model.t -> prepared
(** Builds the template in O(constraints x vars).  {!Branch_bound} calls
    this once at the root and reuses the template at every node,
    eliminating the per-node model -> tableau rebuild. *)

val solve_prepared :
  ?bounds:Rat.t array * Rat.t option array -> ?max_pivots:int -> prepared -> result
(** Solves the continuous relaxation under the template's model with the
    per-variable lower/upper bounds overridden by [bounds] (defaults: the
    model's own bounds).  Only the bound shifts are recomputed — O(nnz)
    per row — before the two-phase run.
    @raise Pivot_limit when [max_pivots] (default 2_000_000) is
    exhausted. *)

val solve :
  ?bounds:Rat.t array * Rat.t option array ->
  ?max_pivots:int ->
  Model.t ->
  result
(** Thin wrapper: [solve model = solve_prepared (prepare model)].  Every
    pre-existing caller compiles unchanged and transparently gets the
    bounded-variable path.
    @raise Pivot_limit when [max_pivots] is exhausted. *)

type basis
(** A simplex basis proposed by the float path: one basic column per
    template row plus the nonbasic-at-upper-bound flags.  Opaque —
    meaningful only together with the {!prepared} template it came from.
    {!Branch_bound} threads a parent's basis to its children so their
    solves can warm-restart with a dual simplex phase. *)

type float_first_outcome = {
  ff_result : result;
  ff_basis : basis option;
      (** the certified optimal basis; [None] on exact fallback (or when
          the node was decided by a bound conflict) *)
  ff_certified : bool;
      (** [true] when the float proposal passed exact certification (or
          the node was infeasible by an exact bound conflict); [false]
          when the exact solver had to be consulted *)
}

val solve_float_first :
  ?bounds:Rat.t array * Rat.t option array ->
  ?warm:basis ->
  ?max_pivots:int ->
  prepared ->
  float_first_outcome
(** Float-first solve with exact certification.  Runs the prepared
    bounded-variable simplex in double precision (warm-restarting from
    [warm] with a dual simplex phase when given), then re-derives the
    proposed basis's solution {e exactly}: basic values via a rational
    LU solve of [B x_B = b], reduced costs via [B^T y = c_B].  If the
    basis passes the exact primal and dual feasibility checks the
    reconstructed rational solution is provably optimal and is returned
    with [ff_certified = true].  On any violation — and on float claims
    of infeasibility or unboundedness, which carry no certificate — the
    node is re-solved by {!solve_prepared} (falling back to
    {!solve_reference} as before), so the result is always exact; only
    [ff_certified] records that the fast path missed.
    @raise Pivot_limit when the exact fallback exhausts [max_pivots]
    (the float attempt itself is capped separately and cheaply). *)

val solve_reference :
  ?bounds:Rat.t array * Rat.t option array ->
  ?max_pivots:int ->
  Model.t ->
  result
(** The original (seed) implementation: full standard-form rebuild with
    explicit upper-bound rows.  Slower; retained as the oracle for the
    differential qcheck property and as the cold baseline of
    [Branch_bound.solve ~warm_start:false].
    @raise Pivot_limit when [max_pivots] is exhausted. *)
