open Tapa_cs_util

type relation = Le | Ge | Eq
type kind = Continuous | Binary
type sense = Minimize | Maximize

type var_info = { name : string; kind : kind; lb : Rat.t; ub : Rat.t option }

type t = {
  mutable vars : var_info array;
  mutable nvars : int;
  mutable constrs : (string option * Linear.t * relation * Rat.t) list; (* reversed *)
  mutable nconstrs : int;
  mutable obj : sense * Linear.t;
}

let create () = { vars = [||]; nvars = 0; constrs = []; nconstrs = 0; obj = (Minimize, Linear.zero) }

let dummy = { name = ""; kind = Continuous; lb = Rat.zero; ub = None }

let add_var t ?name ?lb ?ub kind =
  let idx = t.nvars in
  let name = match name with Some n -> n | None -> Printf.sprintf "x%d" idx in
  let lb = Option.value lb ~default:Rat.zero in
  if Rat.sign lb < 0 then invalid_arg "Model.add_var: negative lower bound unsupported";
  let ub =
    match (kind, ub) with
    | Binary, None -> Some Rat.one
    | Binary, Some u -> Some (Rat.min u Rat.one)
    | Continuous, u -> u
  in
  (match ub with
  | Some u when Rat.compare u lb < 0 -> invalid_arg "Model.add_var: ub < lb"
  | _ -> ());
  if t.nvars >= Array.length t.vars then begin
    let ncap = Stdlib.max 16 (2 * Array.length t.vars) in
    let nv = Array.make ncap dummy in
    Array.blit t.vars 0 nv 0 t.nvars;
    t.vars <- nv
  end;
  t.vars.(idx) <- { name; kind; lb; ub };
  t.nvars <- t.nvars + 1;
  idx

let add_constraint t ?name expr rel rhs =
  if Linear.max_var expr >= t.nvars then invalid_arg "Model.add_constraint: unknown variable";
  (* Fold the expression's constant into the right-hand side. *)
  let rhs = Rat.sub rhs (Linear.const expr) in
  let expr = Linear.sub expr (Linear.constant (Linear.const expr)) in
  t.constrs <- (name, expr, rel, rhs) :: t.constrs;
  t.nconstrs <- t.nconstrs + 1

let set_objective t sense expr =
  if Linear.max_var expr >= t.nvars then invalid_arg "Model.set_objective: unknown variable";
  t.obj <- (sense, expr)

let num_vars t = t.nvars
let num_constraints t = t.nconstrs

let var_info t v =
  if v < 0 || v >= t.nvars then invalid_arg "Model: variable out of range";
  t.vars.(v)

let var_name t v = (var_info t v).name
let var_kind t v = (var_info t v).kind
let var_lb t v = (var_info t v).lb
let var_ub t v = (var_info t v).ub
let constraints t = List.rev_map (fun (_, e, rel, rhs) -> (e, rel, rhs)) t.constrs

let named_constraints t =
  let n = t.nconstrs in
  List.rev
    (List.mapi
       (fun rev_i (name, e, rel, rhs) ->
         (* constrs is reversed, so the i-th added constraint sits at
            rev position nconstrs-1-i. *)
         let i = n - 1 - rev_i in
         let name = match name with Some s -> s | None -> Printf.sprintf "c%d" i in
         (name, e, rel, rhs))
       t.constrs)

let objective t = t.obj

let pp fmt t =
  let names v = var_name t v in
  let sense, obj = t.obj in
  Format.fprintf fmt "%s %a@."
    (match sense with Minimize -> "minimize" | Maximize -> "maximize")
    (Linear.pp ~names) obj;
  Format.fprintf fmt "subject to@.";
  List.iter
    (fun (cname, e, rel, rhs) ->
      Format.fprintf fmt "  %s: %a %s %s@." cname (Linear.pp ~names) e
        (match rel with Le -> "<=" | Ge -> ">=" | Eq -> "=")
        (Rat.to_string rhs))
    (named_constraints t);
  Format.fprintf fmt "vars:@.";
  for v = 0 to t.nvars - 1 do
    let i = t.vars.(v) in
    Format.fprintf fmt "  %s : %s in [%s, %s]@." i.name
      (match i.kind with Binary -> "bin" | Continuous -> "cont")
      (Rat.to_string i.lb)
      (match i.ub with Some u -> Rat.to_string u | None -> "inf")
  done
