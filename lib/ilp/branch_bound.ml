open Tapa_cs_util

type solution = {
  objective : Rat.t;
  values : Rat.t array;
  nodes : int;
  lp_solves : int;
  lp_pivots : int;
  lp_certified : int;
  lp_fallbacks : int;
}
type result =
  | Optimal of solution
  | Feasible of solution
  | Infeasible
  | Unbounded
  | Timeout of solution option

type par_stats = {
  par_subproblems : int;
  par_pruned : int;
  par_broadcasts : int;
}

let is_feasible model values =
  let nv = Model.num_vars model in
  Array.length values = nv
  && (let ok = ref true in
      for j = 0 to nv - 1 do
        let v = values.(j) in
        if Rat.compare v (Model.var_lb model j) < 0 then ok := false;
        (match Model.var_ub model j with
        | Some u when Rat.compare v u > 0 -> ok := false
        | _ -> ());
        if Model.var_kind model j = Model.Binary && not (Rat.is_integer v) then ok := false
      done;
      !ok)
  && List.for_all
       (fun (e, rel, rhs) ->
         let lhs = Linear.eval e (fun v -> values.(v)) in
         match rel with
         | Model.Le -> Rat.compare lhs rhs <= 0
         | Model.Ge -> Rat.compare lhs rhs >= 0
         | Model.Eq -> Rat.equal lhs rhs)
       (Model.constraints model)

type node = {
  bound : Rat.t;
  depth : int;
  seq : int;
      (* insertion order.  The frontier comparison breaks bound ties on
         [seq], making the pop order a total function of the search inputs
         rather than of heap internals — required so the carved subtrees
         and every tie-heavy best-first run are reproducible under any
         heap implementation. *)
  lbs : Rat.t array;
  ubs : Rat.t option array;
  warm : Simplex.basis option;
      (* the parent's certified LP basis: after one bound tightened it
         stays dual-feasible, so the child restarts with a dual simplex
         phase instead of solving from scratch *)
}

(* Outcome of one best-first run, rich enough for the parallel driver:
   the plain [result] plus the raw counters and, when the run was asked
   to carve, the drained frontier in deterministic pop order. *)
type core = {
  c_result : result;
  c_best : solution option; (* finalized best incumbent, if any *)
  c_limit : bool;
  c_deadline : bool;
  c_stopped : bool; (* cooperative [should_stop] fired *)
  c_carved : node list;
  c_nodes : int;
  c_lp_solves : int;
  c_lp_pivots : int;
  c_lp_certified : int;
  c_lp_fallbacks : int;
}

(* The best-first search engine shared by {!solve} (single run over the
   whole model) and {!solve_parallel} (one run per carved subtree).
   [root] seeds the search inside a subtree's bound box; [carve = Some k]
   stops the loop once the frontier holds [k] nodes and hands them back
   instead of finishing; [template] is the prepared simplex shared across
   runs (read-only, so safe to share between domains). *)
let solve_core ~max_nodes ~max_pivots ~stall_nodes ~deadline_s ~should_stop ~incumbent
    ~float_first ~template ~root ~carve model =
  let nv = Model.num_vars model in
  let sense, obj_expr = Model.objective model in
  (* Internally minimize: flip the comparison for maximization. *)
  let better a b =
    match sense with Model.Minimize -> Rat.compare a b < 0 | Model.Maximize -> Rat.compare a b > 0
  in
  let node_cmp a b =
    let c =
      match sense with
      | Model.Minimize -> Rat.compare a.bound b.bound
      | Model.Maximize -> Rat.compare b.bound a.bound
    in
    if c <> 0 then c else Stdlib.compare a.seq b.seq
  in
  let binaries =
    List.filter (fun j -> Model.var_kind model j = Model.Binary) (List.init nv (fun j -> j))
  in
  let best : solution option ref =
    ref
      (match incumbent with
      | Some values when is_feasible model values ->
        Some
          {
            objective = Linear.eval obj_expr (fun v -> values.(v));
            values;
            nodes = 0;
            lp_solves = 0;
            lp_pivots = 0;
            lp_certified = 0;
            lp_fallbacks = 0;
          }
      | _ -> None)
  in
  (* Wall-clock budget.  Deliberately opt-in: a deadline makes the
     incumbent depend on host speed, breaking the determinism contract,
     so the compile pipeline prefers node budgets and only the CLI /
     robustness paths reach for this. *)
  let deadline_hit = ref false in
  let past_deadline =
    match deadline_s with
    | None -> fun () -> false
    | Some budget ->
      let t0 = Sys.time () in
      fun () ->
        if Sys.time () -. t0 >= budget then begin
          deadline_hit := true;
          true
        end
        else false
  in
  (* Cooperative cancellation, polled once per node like the deadline.
     Purely a wall-clock lever: every caller either discards a stopped
     run's answer outright (portfolio loser) or deterministically
     recomputes it (parallel merge). *)
  let stop_hit = ref false in
  let stop_requested =
    match should_stop with
    | None -> fun () -> false
    | Some f ->
      fun () ->
        if f () then begin
          stop_hit := true;
          true
        end
        else false
  in
  let nodes = ref 0 and pivots = ref 0 and lp_solves = ref 0 in
  let certified = ref 0 and fallbacks = ref 0 in
  let last_improvement = ref 0 in
  let pivots_left () = Stdlib.max 1 (max_pivots - !pivots) in
  let frontier = Fourheap.create ~cmp:node_cmp in
  let next_seq = ref 0 in
  let push_node ~bound ~depth ~lbs ~ubs ~warm =
    let seq = !next_seq in
    incr next_seq;
    Fourheap.push frontier { bound; depth; seq; lbs; ubs; warm }
  in
  let limit_hit = ref false in
  let record_candidate sol =
    match !best with
    | Some b when not (better sol.objective b.objective) -> ()
    | _ ->
      best := Some sol;
      last_improvement := !nodes
  in
  let prune_by_incumbent bound =
    match !best with Some b -> not (better bound b.objective) | None -> false
  in
  let solve_lp ?warm lbs ubs =
    incr lp_solves;
    let outcome () =
      match template with
      | Some t when float_first ->
        (* Float-first with exact certification; the parent basis (when
           carried by the node) turns the solve into a dual restart. *)
        let ff = Simplex.solve_float_first ~bounds:(lbs, ubs) ?warm ~max_pivots:(pivots_left ()) t in
        if ff.Simplex.ff_certified then incr certified else incr fallbacks;
        (ff.Simplex.ff_result, ff.Simplex.ff_basis)
      | Some t -> (Simplex.solve_prepared ~bounds:(lbs, ubs) ~max_pivots:(pivots_left ()) t, None)
      | None -> (Simplex.solve_reference ~bounds:(lbs, ubs) ~max_pivots:(pivots_left ()) model, None)
    in
    match outcome () with
    | exception Simplex.Pivot_limit ->
      limit_hit := true;
      None
    | Simplex.Infeasible, _ -> None
    | Simplex.Unbounded, _ -> raise Exit (* surfaced as Unbounded below *)
    | Simplex.Optimal sol, basis ->
      pivots := !pivots + sol.pivots;
      Some (sol, basis)
  in
  let pick_branch_var values =
    (* Most fractional binary: fractional part closest to 1/2. *)
    let best_v = ref (-1) and best_score = ref Rat.one in
    List.iter
      (fun j ->
        let f = Rat.fractional values.(j) in
        if not (Rat.is_zero f) then begin
          let score = Rat.abs (Rat.sub f (Rat.of_ints 1 2)) in
          if !best_v < 0 || Rat.compare score !best_score < 0 then begin
            best_v := j;
            best_score := score
          end
        end)
      binaries;
    !best_v
  in
  let expand node =
    if prune_by_incumbent node.bound || !limit_hit then ()
    else begin
      match solve_lp ?warm:node.warm node.lbs node.ubs with
      | None -> ()
      | Some (lp, basis) ->
        if prune_by_incumbent lp.objective then ()
        else begin
          let v = pick_branch_var lp.values in
          if v < 0 then
            record_candidate
              {
                objective = lp.objective;
                values = lp.values;
                nodes = !nodes;
                lp_solves = !lp_solves;
                lp_pivots = !pivots;
                lp_certified = !certified;
                lp_fallbacks = !fallbacks;
              }
          else begin
            let child fix =
              let lbs = Array.copy node.lbs and ubs = Array.copy node.ubs in
              if fix = 0 then ubs.(v) <- Some Rat.zero else lbs.(v) <- Rat.one;
              (node.depth + 1, lp.objective, lbs, ubs, basis)
            in
            (* Explore the branch suggested by the LP value first. *)
            let primary = if Rat.compare (Rat.fractional lp.values.(v)) (Rat.of_ints 1 2) >= 0 then 1 else 0 in
            let push (depth, bound, lbs, ubs, warm) = push_node ~bound ~depth ~lbs ~ubs ~warm in
            push (child primary);
            push (child (1 - primary))
          end
        end
    end
  in
  let carved = ref [] in
  match
    (let root_lbs, root_ubs, root_warm, root_depth =
       match root with
       | Some n -> (n.lbs, n.ubs, n.warm, n.depth)
       | None -> (Array.init nv (Model.var_lb model), Array.init nv (Model.var_ub model), None, 0)
     in
     (* Seed the frontier from the root LP; the root is not counted as a
        node and is never pruned by the seed incumbent (its children are,
        on pop). *)
     (match solve_lp ?warm:root_warm root_lbs root_ubs with
     | None -> if not !limit_hit then raise Not_found (* root infeasible *)
     | Some (lp, basis) ->
       let v = pick_branch_var lp.values in
       if v < 0 then
         record_candidate
           {
             objective = lp.objective;
             values = lp.values;
             nodes = 0;
             lp_solves = !lp_solves;
             lp_pivots = !pivots;
             lp_certified = !certified;
             lp_fallbacks = !fallbacks;
           }
       else begin
         let child fix =
           let lbs = Array.copy root_lbs and ubs = Array.copy root_ubs in
           if fix = 0 then ubs.(v) <- Some Rat.zero else lbs.(v) <- Rat.one;
           push_node ~bound:lp.objective ~depth:(root_depth + 1) ~lbs ~ubs ~warm:basis
         in
         child 0;
         child 1
       end);
     let stalled () = !best <> None && !nodes - !last_improvement > stall_nodes in
     let carve_cap = match carve with Some c -> Stdlib.max 2 c | None -> max_int in
     while (not (Fourheap.is_empty frontier)) && (not !limit_hit) && !nodes < max_nodes
           && Fourheap.length frontier < carve_cap
           && (not (stalled ())) && (not (past_deadline ())) && not (stop_requested ()) do
       incr nodes;
       expand (Fourheap.pop_exn frontier)
     done;
     if (not (Fourheap.is_empty frontier)) && (!nodes >= max_nodes || stalled ()) then
       limit_hit := true;
     if carve <> None && (not !limit_hit) && (not !deadline_hit) && (not !stop_hit)
        && Fourheap.length frontier >= Stdlib.min carve_cap 2 && not (Fourheap.is_empty frontier)
     then begin
       (* Drain in pop order (total thanks to [seq]), so the subtree list
          is deterministic. *)
       let rec drain acc =
         match Fourheap.pop frontier with None -> List.rev acc | Some n -> drain (n :: acc)
       in
       carved := drain []
     end)
  with
  | exception Exit ->
    {
      c_result = Unbounded;
      c_best = None;
      c_limit = false;
      c_deadline = false;
      c_stopped = false;
      c_carved = [];
      c_nodes = !nodes;
      c_lp_solves = !lp_solves;
      c_lp_pivots = !pivots;
      c_lp_certified = !certified;
      c_lp_fallbacks = !fallbacks;
    }
  | exception Not_found ->
    {
      c_result = Infeasible;
      c_best = None;
      c_limit = false;
      c_deadline = false;
      c_stopped = false;
      c_carved = [];
      c_nodes = !nodes;
      c_lp_solves = !lp_solves;
      c_lp_pivots = !pivots;
      c_lp_certified = !certified;
      c_lp_fallbacks = !fallbacks;
    }
  | () ->
    let finalize sol =
      {
        sol with
        nodes = !nodes;
        lp_solves = !lp_solves;
        lp_pivots = !pivots;
        lp_certified = !certified;
        lp_fallbacks = !fallbacks;
      }
    in
    let fbest = Option.map finalize !best in
    let result =
      if !deadline_hit || !stop_hit then Timeout fbest
      else
        match fbest with
        | Some sol -> if !limit_hit then Feasible sol else Optimal sol
        | None ->
          (* Hitting a search limit with no incumbent yields no feasibility
             certificate either way; the result type has no "unknown" arm and
             every caller (e.g. Partition) treats [Infeasible] as "no ILP
             answer, fall back to the heuristic", which is the right reaction
             to both outcomes — so the limit-hit case is also [Infeasible]. *)
          Infeasible
    in
    {
      c_result = result;
      c_best = fbest;
      c_limit = !limit_hit;
      c_deadline = !deadline_hit;
      c_stopped = !stop_hit;
      c_carved = !carved;
      c_nodes = !nodes;
      c_lp_solves = !lp_solves;
      c_lp_pivots = !pivots;
      c_lp_certified = !certified;
      c_lp_fallbacks = !fallbacks;
    }

let solve ?(max_nodes = 20_000) ?(max_pivots = 1_500_000) ?(stall_nodes = max_int) ?deadline_s
    ?incumbent ?(warm_start = true) ?(float_first = true) ?should_stop model =
  match Validate.check model with
  | Validate.Infeasible_constraint _ :: _ -> Infeasible
  | Validate.Unbounded_direction _ :: _ -> Unbounded
  | [] ->
    (* Warm start: lower the model to its standard-form template once at the
       root; every node then only re-applies its branching bounds.  The cold
       path ([warm_start = false]) re-runs the full model -> tableau lowering
       per node via the reference solver — it exists as the baseline of the
       bench/micro warm-vs-cold measurement. *)
    let template = if warm_start then Some (Simplex.prepare model) else None in
    (solve_core ~max_nodes ~max_pivots ~stall_nodes ~deadline_s ~should_stop ~incumbent
       ~float_first ~template ~root:None ~carve:None model)
      .c_result

(* ------------------------------------------------------------------ *)
(* Parallel search: speculative execution with sequential replay        *)
(* semantics.                                                           *)
(*                                                                      *)
(* Phase A carves the root's best-first frontier into a FIXED list of    *)
(* subtrees (a pure function of the model — never of the worker count).  *)
(* Phase B solves every subtree with FIXED inputs: the phase-A incumbent *)
(* and the full node budget, so each subtree's answer is deterministic.  *)
(* The shared atomic incumbent is used ONLY to abort a subtree whose     *)
(* root bound is already dominated — any solution inside such a subtree  *)
(* loses (or ties, which the merge also discards) against the published  *)
(* one, so the abort can never change which answer wins.  Phase C merges *)
(* sequentially in subtree index order: a subtree is pruned iff the      *)
(* merge-best so far dominates its bound (exactly the sequential          *)
(* incumbent-pruning rule); an aborted subtree the merge still needs is  *)
(* recomputed on the spot with the same fixed inputs.  Published results *)
(* and counters therefore depend only on the phase-A carve and the pure  *)
(* per-subtree solves — jobs=N is byte-identical to jobs=1.              *)
(* ------------------------------------------------------------------ *)

let no_par = { par_subproblems = 0; par_pruned = 0; par_broadcasts = 0 }

let solve_parallel ?(max_nodes = 20_000) ?(max_pivots = 1_500_000) ?(stall_nodes = max_int)
    ?deadline_s ?incumbent ?(warm_start = true) ?(float_first = true) ?(subtrees = 8) ?pool
    ?should_stop model =
  match Validate.check model with
  | Validate.Infeasible_constraint _ :: _ -> (Infeasible, no_par)
  | Validate.Unbounded_direction _ :: _ -> (Unbounded, no_par)
  | [] ->
    let sense, _ = Model.objective model in
    let better a b =
      match sense with
      | Model.Minimize -> Rat.compare a b < 0
      | Model.Maximize -> Rat.compare a b > 0
    in
    let template = if warm_start then Some (Simplex.prepare model) else None in
    let a =
      solve_core ~max_nodes ~max_pivots ~stall_nodes ~deadline_s ~should_stop ~incumbent
        ~float_first ~template ~root:None ~carve:(Some subtrees) model
    in
    (match a.c_carved with
    | [] -> (a.c_result, no_par)
    | boxes_list ->
      let boxes = Array.of_list boxes_list in
      (* Fixed seed for every subtree: the phase-A incumbent (already the
         better of the caller's seed and any integral node phase A hit). *)
      let seed_values = Option.map (fun s -> s.values) a.c_best in
      let shared = Atomic.make (Option.map (fun s -> s.objective) a.c_best) in
      let publish obj =
        let rec go () =
          let cur = Atomic.get shared in
          let improved = match cur with None -> true | Some b -> better obj b in
          if improved && not (Atomic.compare_and_set shared cur (Some obj)) then go ()
        in
        go ()
      in
      let external_stop () = match should_stop with Some f -> f () | None -> false in
      let pure_solve ~stop box =
        solve_core ~max_nodes ~max_pivots ~stall_nodes ~deadline_s ~should_stop:stop
          ~incumbent:seed_values ~float_first ~template ~root:(Some box) ~carve:None model
      in
      let run_box box =
        let stop () =
          external_stop ()
          ||
          match Atomic.get shared with
          | Some b -> not (better box.bound b) (* dominated: the box cannot win *)
          | None -> false
        in
        let c = pure_solve ~stop:(Some stop) box in
        (match c.c_best with Some s -> publish s.objective | None -> ());
        c
      in
      let results = Pool.parallel_map ?pool run_box boxes in
      (* Phase C: deterministic sequential replay merge. *)
      let merged = ref a.c_best in
      let broadcasts = ref 0 and pruned = ref 0 in
      let tot_nodes = ref a.c_nodes
      and tot_lp = ref a.c_lp_solves
      and tot_piv = ref a.c_lp_pivots
      and tot_cert = ref a.c_lp_certified
      and tot_fall = ref a.c_lp_fallbacks in
      let any_limit = ref a.c_limit
      and any_deadline = ref a.c_deadline
      and any_stop = ref false
      and any_unbounded = ref false in
      Array.iteri
        (fun i box ->
          let prune =
            match !merged with
            | Some s -> not (better box.bound s.objective)
            | None -> false
          in
          if prune then incr pruned
          else begin
            let c =
              let c0 = results.(i) in
              if c0.c_stopped then
                (* Speculation (or a late external cancel) stopped a
                   subtree the deterministic merge still needs: re-solve
                   it with the same fixed inputs, minus the shared flag. *)
                pure_solve ~stop:(match should_stop with None -> None | Some _ -> Some external_stop) box
              else c0
            in
            (match c.c_result with Unbounded -> any_unbounded := true | _ -> ());
            if c.c_limit then any_limit := true;
            if c.c_deadline then any_deadline := true;
            if c.c_stopped then any_stop := true;
            tot_nodes := !tot_nodes + c.c_nodes;
            tot_lp := !tot_lp + c.c_lp_solves;
            tot_piv := !tot_piv + c.c_lp_pivots;
            tot_cert := !tot_cert + c.c_lp_certified;
            tot_fall := !tot_fall + c.c_lp_fallbacks;
            match c.c_best with
            | Some s
              when (match !merged with
                   | None -> true
                   | Some m -> better s.objective m.objective) ->
              merged := Some s;
              incr broadcasts
            | _ -> ()
          end)
        boxes;
      let stats =
        {
          par_subproblems = Array.length boxes;
          par_pruned = !pruned;
          par_broadcasts = !broadcasts;
        }
      in
      let totalize s =
        {
          s with
          nodes = !tot_nodes;
          lp_solves = !tot_lp;
          lp_pivots = !tot_piv;
          lp_certified = !tot_cert;
          lp_fallbacks = !tot_fall;
        }
      in
      if !any_unbounded then (Unbounded, stats)
      else
        let best = Option.map totalize !merged in
        if !any_deadline || !any_stop then (Timeout best, stats)
        else (
          match best with
          | Some sol -> if !any_limit then (Feasible sol, stats) else (Optimal sol, stats)
          | None -> (Infeasible, stats)))
