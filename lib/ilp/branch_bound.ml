open Tapa_cs_util

type solution = {
  objective : Rat.t;
  values : Rat.t array;
  nodes : int;
  lp_solves : int;
  lp_pivots : int;
  lp_certified : int;
  lp_fallbacks : int;
}
type result =
  | Optimal of solution
  | Feasible of solution
  | Infeasible
  | Unbounded
  | Timeout of solution option

let is_feasible model values =
  let nv = Model.num_vars model in
  Array.length values = nv
  && (let ok = ref true in
      for j = 0 to nv - 1 do
        let v = values.(j) in
        if Rat.compare v (Model.var_lb model j) < 0 then ok := false;
        (match Model.var_ub model j with
        | Some u when Rat.compare v u > 0 -> ok := false
        | _ -> ());
        if Model.var_kind model j = Model.Binary && not (Rat.is_integer v) then ok := false
      done;
      !ok)
  && List.for_all
       (fun (e, rel, rhs) ->
         let lhs = Linear.eval e (fun v -> values.(v)) in
         match rel with
         | Model.Le -> Rat.compare lhs rhs <= 0
         | Model.Ge -> Rat.compare lhs rhs >= 0
         | Model.Eq -> Rat.equal lhs rhs)
       (Model.constraints model)

type node = {
  bound : Rat.t;
  depth : int;
  lbs : Rat.t array;
  ubs : Rat.t option array;
  warm : Simplex.basis option;
      (* the parent's certified LP basis: after one bound tightened it
         stays dual-feasible, so the child restarts with a dual simplex
         phase instead of solving from scratch *)
}

let solve ?(max_nodes = 20_000) ?(max_pivots = 1_500_000) ?(stall_nodes = max_int) ?deadline_s
    ?incumbent ?(warm_start = true) ?(float_first = true) model =
  match Validate.check model with
  | Validate.Infeasible_constraint _ :: _ -> Infeasible
  | Validate.Unbounded_direction _ :: _ -> Unbounded
  | [] ->
  let nv = Model.num_vars model in
  let sense, obj_expr = Model.objective model in
  (* Internally minimize: flip the comparison for maximization. *)
  let better a b =
    match sense with Model.Minimize -> Rat.compare a b < 0 | Model.Maximize -> Rat.compare a b > 0
  in
  let node_cmp a b =
    match sense with Model.Minimize -> Rat.compare a.bound b.bound | Model.Maximize -> Rat.compare b.bound a.bound
  in
  let binaries =
    List.filter (fun j -> Model.var_kind model j = Model.Binary) (List.init nv (fun j -> j))
  in
  let best : solution option ref =
    ref
      (match incumbent with
      | Some values when is_feasible model values ->
        Some
          {
            objective = Linear.eval obj_expr (fun v -> values.(v));
            values;
            nodes = 0;
            lp_solves = 0;
            lp_pivots = 0;
            lp_certified = 0;
            lp_fallbacks = 0;
          }
      | _ -> None)
  in
  (* Warm start: lower the model to its standard-form template once at the
     root; every node then only re-applies its branching bounds.  The cold
     path ([warm_start = false]) re-runs the full model -> tableau lowering
     per node via the reference solver — it exists as the baseline of the
     bench/micro warm-vs-cold measurement. *)
  let template = if warm_start then Some (Simplex.prepare model) else None in
  (* Wall-clock budget.  Deliberately opt-in: a deadline makes the
     incumbent depend on host speed, breaking the determinism contract,
     so the compile pipeline prefers node budgets and only the CLI /
     robustness paths reach for this. *)
  let deadline_hit = ref false in
  let past_deadline =
    match deadline_s with
    | None -> fun () -> false
    | Some budget ->
      let t0 = Sys.time () in
      fun () ->
        if Sys.time () -. t0 >= budget then begin
          deadline_hit := true;
          true
        end
        else false
  in
  let nodes = ref 0 and pivots = ref 0 and lp_solves = ref 0 in
  let certified = ref 0 and fallbacks = ref 0 in
  let last_improvement = ref 0 in
  let pivots_left () = Stdlib.max 1 (max_pivots - !pivots) in
  let frontier = Heap.create ~cmp:node_cmp in
  let root_lbs = Array.init nv (Model.var_lb model) in
  let root_ubs = Array.init nv (Model.var_ub model) in
  let limit_hit = ref false in
  let record_candidate sol =
    match !best with
    | Some b when not (better sol.objective b.objective) -> ()
    | _ ->
      best := Some sol;
      last_improvement := !nodes
  in
  let prune_by_incumbent bound =
    match !best with Some b -> not (better bound b.objective) | None -> false
  in
  let solve_lp ?warm lbs ubs =
    incr lp_solves;
    let outcome () =
      match template with
      | Some t when float_first ->
        (* Float-first with exact certification; the parent basis (when
           carried by the node) turns the solve into a dual restart. *)
        let ff = Simplex.solve_float_first ~bounds:(lbs, ubs) ?warm ~max_pivots:(pivots_left ()) t in
        if ff.Simplex.ff_certified then incr certified else incr fallbacks;
        (ff.Simplex.ff_result, ff.Simplex.ff_basis)
      | Some t -> (Simplex.solve_prepared ~bounds:(lbs, ubs) ~max_pivots:(pivots_left ()) t, None)
      | None -> (Simplex.solve_reference ~bounds:(lbs, ubs) ~max_pivots:(pivots_left ()) model, None)
    in
    match outcome () with
    | exception Simplex.Pivot_limit ->
      limit_hit := true;
      None
    | Simplex.Infeasible, _ -> None
    | Simplex.Unbounded, _ -> raise Exit (* surfaced as Unbounded below *)
    | Simplex.Optimal sol, basis ->
      pivots := !pivots + sol.pivots;
      Some (sol, basis)
  in
  let pick_branch_var values =
    (* Most fractional binary: fractional part closest to 1/2. *)
    let best_v = ref (-1) and best_score = ref Rat.one in
    List.iter
      (fun j ->
        let f = Rat.fractional values.(j) in
        if not (Rat.is_zero f) then begin
          let score = Rat.abs (Rat.sub f (Rat.of_ints 1 2)) in
          if !best_v < 0 || Rat.compare score !best_score < 0 then begin
            best_v := j;
            best_score := score
          end
        end)
      binaries;
    !best_v
  in
  let expand node =
    if prune_by_incumbent node.bound || !limit_hit then ()
    else begin
      match solve_lp ?warm:node.warm node.lbs node.ubs with
      | None -> ()
      | Some (lp, basis) ->
        if prune_by_incumbent lp.objective then ()
        else begin
          let v = pick_branch_var lp.values in
          if v < 0 then
            record_candidate
              {
                objective = lp.objective;
                values = lp.values;
                nodes = !nodes;
                lp_solves = !lp_solves;
                lp_pivots = !pivots;
                lp_certified = !certified;
                lp_fallbacks = !fallbacks;
              }
          else begin
            let child fix =
              let lbs = Array.copy node.lbs and ubs = Array.copy node.ubs in
              if fix = 0 then ubs.(v) <- Some Rat.zero else lbs.(v) <- Rat.one;
              { bound = lp.objective; depth = node.depth + 1; lbs; ubs; warm = basis }
            in
            (* Explore the branch suggested by the LP value first. *)
            let primary = if Rat.compare (Rat.fractional lp.values.(v)) (Rat.of_ints 1 2) >= 0 then 1 else 0 in
            Heap.push frontier (child primary);
            Heap.push frontier (child (1 - primary))
          end
        end
    end
  in
  match
    (let root = { bound = Rat.zero; depth = 0; lbs = root_lbs; ubs = root_ubs; warm = None } in
     (* Seed the frontier with the root; its [bound] is a placeholder that
        never prunes because the incumbent check re-solves the LP. *)
     (match solve_lp root.lbs root.ubs with
     | None -> if not !limit_hit then raise Not_found (* root infeasible *)
     | Some (lp, basis) ->
       let v = pick_branch_var lp.values in
       if v < 0 then
         record_candidate
           {
             objective = lp.objective;
             values = lp.values;
             nodes = 0;
             lp_solves = !lp_solves;
             lp_pivots = !pivots;
             lp_certified = !certified;
             lp_fallbacks = !fallbacks;
           }
       else begin
         let child fix =
           let lbs = Array.copy root.lbs and ubs = Array.copy root.ubs in
           if fix = 0 then ubs.(v) <- Some Rat.zero else lbs.(v) <- Rat.one;
           { bound = lp.objective; depth = 1; lbs; ubs; warm = basis }
         in
         Heap.push frontier (child 0);
         Heap.push frontier (child 1)
       end);
     let stalled () = !best <> None && !nodes - !last_improvement > stall_nodes in
     while (not (Heap.is_empty frontier)) && (not !limit_hit) && !nodes < max_nodes
           && (not (stalled ())) && not (past_deadline ()) do
       incr nodes;
       expand (Heap.pop_exn frontier)
     done;
     if (not (Heap.is_empty frontier)) && (!nodes >= max_nodes || stalled ()) then
       limit_hit := true)
  with
  | exception Exit -> Unbounded
  | exception Not_found -> Infeasible
  | () -> (
    let finalize sol =
      {
        sol with
        nodes = !nodes;
        lp_solves = !lp_solves;
        lp_pivots = !pivots;
        lp_certified = !certified;
        lp_fallbacks = !fallbacks;
      }
    in
    if !deadline_hit then Timeout (Option.map finalize !best)
    else
    match !best with
    | Some sol ->
      let sol = finalize sol in
      if !limit_hit then Feasible sol else Optimal sol
    | None ->
      (* Hitting a search limit with no incumbent yields no feasibility
         certificate either way; the result type has no "unknown" arm and
         every caller (e.g. Partition) treats [Infeasible] as "no ILP
         answer, fall back to the heuristic", which is the right reaction
         to both outcomes — so the limit-hit case is also [Infeasible]. *)
      Infeasible)
