(** Exact 0-1 branch-and-bound built on {!Simplex}.

    Best-first search on the LP-relaxation bound, branching on the most
    fractional binary variable.  With exact rational LP bounds the search
    returns provably optimal integer solutions — the same answers the
    paper obtains from Gurobi / python-MIP. *)

open Tapa_cs_util

type solution = {
  objective : Rat.t;
  values : Rat.t array;
  nodes : int;  (** branch-and-bound nodes explored *)
  lp_solves : int;  (** LP relaxations solved (root + per-node) *)
  lp_pivots : int;
      (** total simplex iterations across all LP solves (float iterations
          on certified solves, exact pivots on fallbacks) *)
  lp_certified : int;
      (** LP solves settled by the float-first path: the float basis
          passed exact certification (or the node was decided by an exact
          bound conflict) *)
  lp_fallbacks : int;
      (** LP solves where certification rejected the float result and the
          exact solver was consulted; always 0 when [float_first=false] *)
}

type result =
  | Optimal of solution
  | Feasible of solution  (** best incumbent when a search limit was hit *)
  | Infeasible
  | Unbounded
  | Timeout of solution option
      (** the wall-clock [deadline_s] budget expired mid-search; carries
          the best incumbent found so far, if any *)

val solve :
  ?max_nodes:int ->
  ?max_pivots:int ->
  ?stall_nodes:int ->
  ?deadline_s:float ->
  ?incumbent:Rat.t array ->
  ?warm_start:bool ->
  ?float_first:bool ->
  Model.t ->
  result
(** [deadline_s] is a wall-clock budget: when it expires the search stops
    and returns [Timeout] with its best incumbent instead of spinning.
    Unlike the node/pivot/stall budgets it is {e not} deterministic — the
    incumbent depends on host speed — so the compile pipeline's fallback
    chain uses node budgets and reserves the deadline for interactive /
    fault-injection runs that must never hang.

    [incumbent] seeds the search with a known feasible assignment (e.g.
    from a heuristic) so the solver can prune from the first node.  An
    infeasible seed is rejected silently.

    [warm_start] (default [true]) lowers the model to a
    {!Simplex.prepared} template once at the root and solves every node
    relaxation with {!Simplex.solve_prepared}, so per-node cost is the
    bound shift plus the simplex run itself.  [~warm_start:false]
    re-lowers the model at every node via {!Simplex.solve_reference} —
    the cold baseline the [bench/micro] warm-vs-cold benchmark measures
    against.  Both settings return the same result constructor and
    objective; when an instance has several optima they may pick
    different optimal assignments.

    [float_first] (default [true]; only meaningful with [warm_start])
    solves node relaxations through {!Simplex.solve_float_first}: a
    double-precision simplex proposes the basis, exact rational
    certification accepts or rejects it, and rejected nodes fall back to
    the exact solver — results are exact either way, and the
    [lp_certified] / [lp_fallbacks] counters record which route each
    solve took.  Each node also carries its parent's certified basis;
    since tightening a single bound keeps that basis dual-feasible, the
    child's float solve warm-restarts with a dual simplex phase instead
    of a from-scratch two-phase run.

    Models are screened through {!Validate.check} first: trivially
    infeasible or unbounded instances return [Infeasible] / [Unbounded]
    immediately, without spending the node or pivot budget. *)

val is_feasible : Model.t -> Rat.t array -> bool
(** Exact feasibility check of an assignment against all constraints,
    bounds and integrality requirements. *)
