(** Exact 0-1 branch-and-bound built on {!Simplex}.

    Best-first search on the LP-relaxation bound, branching on the most
    fractional binary variable.  With exact rational LP bounds the search
    returns provably optimal integer solutions — the same answers the
    paper obtains from Gurobi / python-MIP. *)

open Tapa_cs_util

type solution = {
  objective : Rat.t;
  values : Rat.t array;
  nodes : int;  (** branch-and-bound nodes explored *)
  lp_solves : int;  (** LP relaxations solved (root + per-node) *)
  lp_pivots : int;
      (** total simplex iterations across all LP solves (float iterations
          on certified solves, exact pivots on fallbacks) *)
  lp_certified : int;
      (** LP solves settled by the float-first path: the float basis
          passed exact certification (or the node was decided by an exact
          bound conflict) *)
  lp_fallbacks : int;
      (** LP solves where certification rejected the float result and the
          exact solver was consulted; always 0 when [float_first=false] *)
}

type result =
  | Optimal of solution
  | Feasible of solution  (** best incumbent when a search limit was hit *)
  | Infeasible
  | Unbounded
  | Timeout of solution option
      (** the wall-clock [deadline_s] budget expired mid-search; carries
          the best incumbent found so far, if any *)

type par_stats = {
  par_subproblems : int;
      (** subtrees carved from the root frontier by {!solve_parallel}
          (0 when the carve phase solved the model outright) *)
  par_pruned : int;
      (** subtrees discarded by the deterministic merge bound without
          their solution being consulted *)
  par_broadcasts : int;
      (** incumbent improvements during the sequential replay merge —
          the deterministic analogue of "shared bound broadcasts" *)
}
(** Counters of one {!solve_parallel} run.  All three are pure functions
    of the model and the budgets — independent of worker count — so they
    can feed the compiler's bit-identical stats contract. *)

val solve :
  ?max_nodes:int ->
  ?max_pivots:int ->
  ?stall_nodes:int ->
  ?deadline_s:float ->
  ?incumbent:Rat.t array ->
  ?warm_start:bool ->
  ?float_first:bool ->
  ?should_stop:(unit -> bool) ->
  Model.t ->
  result
(** [deadline_s] is a wall-clock budget: when it expires the search stops
    and returns [Timeout] with its best incumbent instead of spinning.
    Unlike the node/pivot/stall budgets it is {e not} deterministic — the
    incumbent depends on host speed — so the compile pipeline's fallback
    chain uses node budgets and reserves the deadline for interactive /
    fault-injection runs that must never hang.

    [incumbent] seeds the search with a known feasible assignment (e.g.
    from a heuristic) so the solver can prune from the first node.  An
    infeasible seed is rejected silently.

    [warm_start] (default [true]) lowers the model to a
    {!Simplex.prepared} template once at the root and solves every node
    relaxation with {!Simplex.solve_prepared}, so per-node cost is the
    bound shift plus the simplex run itself.  [~warm_start:false]
    re-lowers the model at every node via {!Simplex.solve_reference} —
    the cold baseline the [bench/micro] warm-vs-cold benchmark measures
    against.  Both settings return the same result constructor and
    objective; when an instance has several optima they may pick
    different optimal assignments.

    [float_first] (default [true]; only meaningful with [warm_start])
    solves node relaxations through {!Simplex.solve_float_first}: a
    double-precision simplex proposes the basis, exact rational
    certification accepts or rejects it, and rejected nodes fall back to
    the exact solver — results are exact either way, and the
    [lp_certified] / [lp_fallbacks] counters record which route each
    solve took.  Each node also carries its parent's certified basis;
    since tightening a single bound keeps that basis dual-feasible, the
    child's float solve warm-restarts with a dual simplex phase instead
    of a from-scratch two-phase run.

    [should_stop] is polled once per node (like the deadline).  When it
    fires the search stops and returns [Timeout] with the best incumbent
    so far — the cooperative-cancellation hook of the portfolio racer.
    Like [deadline_s] it is a wall-clock lever only: callers must either
    discard a stopped run's answer or deterministically recompute it.

    Models are screened through {!Validate.check} first: trivially
    infeasible or unbounded instances return [Infeasible] / [Unbounded]
    immediately, without spending the node or pivot budget. *)

val solve_parallel :
  ?max_nodes:int ->
  ?max_pivots:int ->
  ?stall_nodes:int ->
  ?deadline_s:float ->
  ?incumbent:Rat.t array ->
  ?warm_start:bool ->
  ?float_first:bool ->
  ?subtrees:int ->
  ?pool:Pool.t ->
  ?should_stop:(unit -> bool) ->
  Model.t ->
  result * par_stats
(** Parallel best-first search with sequential replay semantics.

    Phase A carves the root's best-first frontier into a fixed list of
    [subtrees] (default 8) bound boxes — a pure function of the model,
    never of the worker count (the frontier order is total: LP bound,
    then insertion sequence).  Phase B solves every box concurrently on
    [pool] with {e fixed} inputs (the phase-A incumbent and the full node
    budget), so each box's answer is deterministic; a shared atomic
    incumbent is consulted only to {e abort} boxes whose root bound is
    already dominated — any solution inside such a box loses (or ties,
    which the merge also discards), so aborting cannot change the
    outcome.  Phase C merges box results sequentially in index order,
    pruning exactly as the sequential incumbent rule would and
    recomputing any speculatively aborted box it still needs.

    Consequently the returned result, solution values and every counter
    (including {!par_stats}) are byte-identical for [jobs = 1] and
    [jobs = N].  Each box receives the full [max_nodes]/[max_pivots]
    budget, so the aggregate node budget scales with the carve width.

    [deadline_s] and [should_stop] retain their wall-clock,
    non-deterministic semantics from {!solve}: when either fires the
    merge surfaces [Timeout] with the best merged incumbent. *)

val is_feasible : Model.t -> Rat.t array -> bool
(** Exact feasibility check of an assignment against all constraints,
    bounds and integrality requirements. *)
