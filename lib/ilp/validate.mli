(** Static model validation: reject trivially broken ILP models with a
    named diagnostic before the branch-and-bound search spends its node
    and pivot budget on them.

    Two families of defects are caught exactly (no LP solve involved):

    - {b trivially infeasible constraints}: a single constraint that no
      point inside the variable bounds can satisfy — e.g. a capacity
      row whose right-hand side is below the sum of lower-bound
      contributions.  This is precisely the shape an under-provisioned
      floorplanning instance takes.
    - {b trivially unbounded directions}: an objective variable with no
      finite upper bound that improves the objective and that no
      constraint bounds from above, so the optimum diverges.

    The check is sound but not complete: models it passes can still be
    infeasible (jointly, across constraints) — those are left to the
    solver, which proves it with LP certificates. *)

type issue =
  | Infeasible_constraint of { name : string; detail : string }
      (** The named constraint excludes every point in the bounds box. *)
  | Unbounded_direction of { var : string; detail : string }
      (** The named variable improves the objective without limit. *)

val check : Model.t -> issue list
(** All trivial defects, in constraint/variable order.  Empty for any
    model worth handing to {!Branch_bound.solve}. *)

val pp_issue : Format.formatter -> issue -> unit

val issue_name : issue -> string
(** The constraint or variable name the issue is anchored to. *)
