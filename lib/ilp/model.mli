(** Mixed 0-1 / continuous linear-program model builder.

    Mirrors the little slice of the Gurobi / python-MIP API that TAPA-CS's
    floorplanner needs: binary assignment variables, continuous cut
    variables, linear constraints and a linear objective. *)

open Tapa_cs_util

type relation = Le | Ge | Eq
type kind = Continuous | Binary
type sense = Minimize | Maximize

type t

val create : unit -> t

val add_var : t -> ?name:string -> ?lb:Rat.t -> ?ub:Rat.t -> kind -> int
(** Returns the variable index.  Binary variables are implicitly bounded to
    [0,1] (explicit bounds further tighten them).  Continuous variables
    default to [lb = 0] and no upper bound.
    @raise Invalid_argument when [lb < 0] — the solver works in the
    nonnegative orthant, which is all the floorplanner formulations need. *)

val add_constraint : t -> ?name:string -> Linear.t -> relation -> Rat.t -> unit
(** [name] labels the constraint for diagnostics ({!Validate}, {!pp});
    unnamed constraints render as [c<index>]. *)

val set_objective : t -> sense -> Linear.t -> unit

val num_vars : t -> int
val num_constraints : t -> int
val var_name : t -> int -> string
val var_kind : t -> int -> kind
val var_lb : t -> int -> Rat.t
val var_ub : t -> int -> Rat.t option
val constraints : t -> (Linear.t * relation * Rat.t) list

val named_constraints : t -> (string * Linear.t * relation * Rat.t) list
(** Constraints with their diagnostic names, in insertion order. *)

val objective : t -> sense * Linear.t

val pp : Format.formatter -> t -> unit
