open Tapa_cs_util

type solution = { objective : Rat.t; values : Rat.t array; pivots : int }
type result = Optimal of solution | Infeasible | Unbounded

exception Pivot_limit

(* ================================================================== *)
(* Reference implementation (the original seed solver).                *)
(*                                                                     *)
(* Standard form  min c.y  s.t.  T.y = b, y >= 0, b >= 0  where        *)
(* structural variables y_j = x_j - lb_j occupy columns 0..nv-1,       *)
(* slack/surplus variables follow, then artificials.  Upper bounds     *)
(* become explicit  y_j <= u_j  rows.  The whole tableau is rebuilt    *)
(* from the model on every call — this is the cold path the prepared   *)
(* solver below is benchmarked against, and the independently written  *)
(* oracle the qcheck differential property compares against.           *)
(* ================================================================== *)

type tableau = {
  mutable rows : Rat.t array array; (* m rows of length ncols+1; last entry is rhs *)
  mutable basis : int array; (* basic variable of each row *)
  obj : Rat.t array; (* reduced-cost row, length ncols+1; last = -objective *)
  ncols : int;
  art_start : int; (* first artificial column *)
  mutable pivots : int;
  max_pivots : int;
}

let pivot tab r c =
  tab.pivots <- tab.pivots + 1;
  if tab.pivots > tab.max_pivots then raise Pivot_limit;
  let row = tab.rows.(r) in
  let p = row.(c) in
  let n = tab.ncols in
  for j = 0 to n do
    row.(j) <- Rat.div row.(j) p
  done;
  let eliminate target =
    let f = target.(c) in
    if not (Rat.is_zero f) then
      for j = 0 to n do
        target.(j) <- Rat.sub target.(j) (Rat.mul f row.(j))
      done
  in
  Array.iteri (fun i other -> if i <> r then eliminate other) tab.rows;
  eliminate tab.obj;
  tab.basis.(r) <- c

(* Pricing: Dantzig's rule (most negative reduced cost) for speed, falling
   back to Bland's rule (lowest index) after a pivot budget to guarantee
   termination on degenerate cycles. *)
let bland_switch = 400

let optimize tab ~allowed =
  let m = Array.length tab.rows in
  let start_pivots = tab.pivots in
  let rec step () =
    let bland = tab.pivots - start_pivots > bland_switch in
    let entering = ref (-1) in
    if bland then begin
      let j = ref 0 in
      while !entering < 0 && !j < tab.ncols do
        if allowed !j && Rat.sign tab.obj.(!j) < 0 then entering := !j;
        incr j
      done
    end
    else begin
      let best = ref Rat.zero in
      for j = 0 to tab.ncols - 1 do
        if allowed j && Rat.compare tab.obj.(j) !best < 0 then begin
          best := tab.obj.(j);
          entering := j
        end
      done
    end;
    if !entering < 0 then `Optimal
    else begin
      let c = !entering in
      let best_row = ref (-1) in
      let best_ratio = ref Rat.zero in
      for i = 0 to m - 1 do
        let a = tab.rows.(i).(c) in
        if Rat.sign a > 0 then begin
          let ratio = Rat.div tab.rows.(i).(tab.ncols) a in
          let better =
            !best_row < 0
            || Rat.compare ratio !best_ratio < 0
            || (Rat.compare ratio !best_ratio = 0 && tab.basis.(i) < tab.basis.(!best_row))
          in
          if better then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        pivot tab !best_row c;
        step ()
      end
    end
  in
  step ()

let solve_reference ?bounds ?(max_pivots = 2_000_000) model =
  let nv = Model.num_vars model in
  let lb = Array.init nv (Model.var_lb model) in
  let ub = Array.init nv (Model.var_ub model) in
  (match bounds with
  | Some (l, u) ->
    Array.blit l 0 lb 0 nv;
    Array.blit u 0 ub 0 nv
  | None -> ());
  let bound_conflict = ref false in
  let shifted_ub =
    Array.init nv (fun j ->
        match ub.(j) with
        | None -> None
        | Some u ->
          let d = Rat.sub u lb.(j) in
          if Rat.sign d < 0 then bound_conflict := true;
          Some d)
  in
  if !bound_conflict then Infeasible
  else begin
    (* Collect rows over the shifted variables y = x - lb. *)
    let raw_rows = ref [] in
    let add_row coeffs rel rhs = raw_rows := (coeffs, rel, rhs) :: !raw_rows in
    List.iter
      (fun (e, rel, rhs) ->
        let coeffs = Array.make nv Rat.zero in
        List.iter (fun (v, c) -> coeffs.(v) <- c) (Linear.terms e);
        let shift = ref Rat.zero in
        for j = 0 to nv - 1 do
          if not (Rat.is_zero coeffs.(j)) then shift := Rat.add !shift (Rat.mul coeffs.(j) lb.(j))
        done;
        add_row coeffs rel (Rat.sub rhs !shift))
      (Model.constraints model);
    Array.iteri
      (fun j u ->
        match u with
        | Some u ->
          let coeffs = Array.make nv Rat.zero in
          coeffs.(j) <- Rat.one;
          add_row coeffs Model.Le u
        | None -> ())
      shifted_ub;
    let rows = List.rev !raw_rows in
    (* Normalize to nonnegative right-hand sides. *)
    let rows =
      List.map
        (fun (coeffs, rel, rhs) ->
          if Rat.sign rhs < 0 then begin
            let coeffs = Array.map Rat.neg coeffs in
            let rel = match rel with Model.Le -> Model.Ge | Model.Ge -> Model.Le | Model.Eq -> Model.Eq in
            (coeffs, rel, Rat.neg rhs)
          end
          else (coeffs, rel, rhs))
        rows
    in
    let m = List.length rows in
    let nslack = List.length (List.filter (fun (_, rel, _) -> rel <> Model.Eq) rows) in
    let nart = List.length (List.filter (fun (_, rel, _) -> rel <> Model.Le) rows) in
    let art_start = nv + nslack in
    let ncols = nv + nslack + nart in
    let tab =
      {
        rows = Array.init m (fun _ -> Array.make (ncols + 1) Rat.zero);
        basis = Array.make m (-1);
        obj = Array.make (ncols + 1) Rat.zero;
        ncols;
        art_start;
        pivots = 0;
        max_pivots;
      }
    in
    let next_slack = ref nv and next_art = ref art_start in
    List.iteri
      (fun i (coeffs, rel, rhs) ->
        let row = tab.rows.(i) in
        Array.blit coeffs 0 row 0 nv;
        row.(ncols) <- rhs;
        (match rel with
        | Model.Le ->
          row.(!next_slack) <- Rat.one;
          tab.basis.(i) <- !next_slack;
          incr next_slack
        | Model.Ge ->
          row.(!next_slack) <- Rat.minus_one;
          incr next_slack;
          row.(!next_art) <- Rat.one;
          tab.basis.(i) <- !next_art;
          incr next_art
        | Model.Eq ->
          row.(!next_art) <- Rat.one;
          tab.basis.(i) <- !next_art;
          incr next_art))
      rows;
    (* Phase 1: minimize the sum of artificials.  Price out basic
       artificials so their reduced costs start at zero. *)
    let need_phase1 = nart > 0 in
    let feasible =
      if not need_phase1 then true
      else begin
        for j = art_start to ncols - 1 do
          tab.obj.(j) <- Rat.one
        done;
        Array.iteri
          (fun i b ->
            if b >= art_start then
              for j = 0 to ncols do
                tab.obj.(j) <- Rat.sub tab.obj.(j) tab.rows.(i).(j)
              done)
          tab.basis;
        (match optimize tab ~allowed:(fun _ -> true) with
        | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
        | `Optimal -> ());
        let phase1_obj = Rat.neg tab.obj.(ncols) in
        Rat.is_zero phase1_obj
      end
    in
    if not feasible then Infeasible
    else begin
      (* Drive any basic artificial (necessarily at value zero) out of the
         basis, or drop its row when it is redundant. *)
      if need_phase1 then begin
        let keep = ref [] in
        Array.iteri
          (fun i b ->
            if b >= art_start then begin
              let row = tab.rows.(i) in
              let col = ref (-1) in
              (let j = ref 0 in
               while !col < 0 && !j < art_start do
                 if not (Rat.is_zero row.(!j)) then col := !j;
                 incr j
               done);
              if !col >= 0 then begin
                pivot tab i !col;
                keep := i :: !keep
              end
              (* else: redundant row, dropped below *)
            end
            else keep := i :: !keep)
          tab.basis;
        let keep = List.sort compare !keep in
        let nkeep = List.length keep in
        if nkeep <> Array.length tab.rows then begin
          let rows' = Array.make nkeep [||] in
          let basis' = Array.make nkeep (-1) in
          List.iteri
            (fun k i ->
              rows'.(k) <- tab.rows.(i);
              basis'.(k) <- tab.basis.(i))
            keep;
          tab.rows <- rows';
          tab.basis <- basis'
        end
      end;
      (* Phase 2: install the real objective (internally minimized). *)
      let sense, obj_expr = Model.objective model in
      let c = Array.make ncols Rat.zero in
      List.iter
        (fun (v, k) -> c.(v) <- (match sense with Model.Minimize -> k | Model.Maximize -> Rat.neg k))
        (Linear.terms obj_expr);
      Array.fill tab.obj 0 (ncols + 1) Rat.zero;
      Array.blit c 0 tab.obj 0 ncols;
      Array.iteri
        (fun i b ->
          let cb = if b < ncols then c.(b) else Rat.zero in
          if not (Rat.is_zero cb) then
            for j = 0 to ncols do
              tab.obj.(j) <- Rat.sub tab.obj.(j) (Rat.mul cb tab.rows.(i).(j))
            done)
        tab.basis;
      match optimize tab ~allowed:(fun j -> j < art_start) with
      | `Unbounded -> Unbounded
      | `Optimal ->
        let values = Array.init nv (fun j -> lb.(j)) in
        Array.iteri
          (fun i b -> if b < nv then values.(b) <- Rat.add values.(b) tab.rows.(i).(ncols))
          tab.basis;
        let objective = Linear.eval obj_expr (fun v -> values.(v)) in
        Optimal { objective; values; pivots = tab.pivots }
    end
  end

(* ================================================================== *)
(* Prepared template + bounded-variable simplex (the hot path).        *)
(* ================================================================== *)

(* One model constraint, pre-lowered to dense form.  [coeffs] and [neg]
   are the +/- coefficient rows (both precomputed so a per-node sign
   normalization is a blit, not nv Rat.neg allocations); [terms] is the
   sparse view used to re-shift the rhs under new lower bounds. *)
type prow = {
  coeffs : Rat.t array; (* length nv *)
  neg : Rat.t array;
  terms : (int * Rat.t) list;
  rel : Model.relation;
  rhs : Rat.t;
  slack : int; (* slack/surplus column; -1 for Eq rows *)
  art : int; (* artificial column (used only when the node needs it) *)
}

type prepared = {
  model : Model.t;
  nv : int;
  prows : prow array;
  part_start : int; (* first artificial column *)
  pncols : int;
  base_lb : Rat.t array;
  base_ub : Rat.t option array;
}

let prepare model =
  let nv = Model.num_vars model in
  let constrs = Array.of_list (Model.constraints model) in
  let next_slack = ref nv in
  let slack_cols =
    Array.map
      (fun (_, rel, _) ->
        if rel <> Model.Eq then begin
          let c = !next_slack in
          incr next_slack;
          c
        end
        else -1)
      constrs
  in
  (* A [Le] row flips to [Ge] when its shifted rhs goes negative under some
     node's bounds, so every row gets a (possibly unused) artificial
     column: the layout must not depend on the bounds. *)
  let part_start = !next_slack in
  let pncols = part_start + Array.length constrs in
  let prows =
    Array.mapi
      (fun i (e, rel, rhs) ->
        let coeffs = Array.make nv Rat.zero in
        List.iter (fun (v, c) -> coeffs.(v) <- c) (Linear.terms e);
        {
          coeffs;
          neg = Array.map Rat.neg coeffs;
          terms = Linear.terms e;
          rel;
          rhs;
          slack = slack_cols.(i);
          art = part_start + i;
        })
      constrs
  in
  {
    model;
    nv;
    prows;
    part_start;
    pncols;
    base_lb = Array.init nv (Model.var_lb model);
    base_ub = Array.init nv (Model.var_ub model);
  }

(* Working tableau of the bounded-variable simplex.  Unlike the reference
   tableau, the rhs is NOT part of the coefficient rows: [bxb] holds the
   current values of the basic variables directly (with the contributions
   of nonbasic-at-upper columns folded in), so pivoting touches only the
   coefficient matrix and the step logic updates the values. *)
type btab = {
  mutable brows : Rat.t array array; (* m x ncols, B^-1 A *)
  mutable bxb : Rat.t array; (* current basic values *)
  mutable bbasis : int array;
  bobj : Rat.t array; (* reduced costs, length ncols *)
  bubs : Rat.t option array; (* per-column upper bound (structural only) *)
  at_upper : bool array; (* nonbasic column currently at its upper bound *)
  bncols : int;
  mutable iters : int; (* pivots + bound flips *)
  max_iters : int;
}

(* Rare corner (redundant constraints whose rows end up expressible only
   through columns pinned at their upper bound): punt to the reference
   solver instead of growing a basis-repair special case. *)
exception Fallback

let bpivot tab r c =
  tab.iters <- tab.iters + 1;
  if tab.iters > tab.max_iters then raise Pivot_limit;
  let row = tab.brows.(r) in
  let p = row.(c) in
  let n = tab.bncols in
  for j = 0 to n - 1 do
    row.(j) <- Rat.div row.(j) p
  done;
  let eliminate target =
    let f = target.(c) in
    if not (Rat.is_zero f) then
      for j = 0 to n - 1 do
        target.(j) <- Rat.sub target.(j) (Rat.mul f row.(j))
      done
  in
  Array.iteri (fun i other -> if i <> r then eliminate other) tab.brows;
  eliminate tab.bobj;
  tab.bbasis.(r) <- c

(* Minimize bobj.x.  A nonbasic column is eligible when moving it off its
   current bound improves the objective: reduced cost < 0 at lower, > 0
   at upper.  Basic columns keep reduced cost 0, so they are never
   selected.  The ratio test additionally considers (a) the entering
   variable reaching its own opposite bound — a bound flip, O(m) value
   updates and no pivot — and (b) a basic variable climbing to its upper
   bound (it then leaves the basis AT that bound). *)
let boptimize tab ~allowed =
  let start = tab.iters in
  let rec step () =
    let m = Array.length tab.brows in
    let bland = tab.iters - start > bland_switch in
    let eligible j =
      allowed j
      &&
      let s = Rat.sign tab.bobj.(j) in
      if tab.at_upper.(j) then s > 0 else s < 0
    in
    let entering = ref (-1) in
    if bland then begin
      let j = ref 0 in
      while !entering < 0 && !j < tab.bncols do
        if eligible !j then entering := !j;
        incr j
      done
    end
    else begin
      let best = ref Rat.zero in
      for j = 0 to tab.bncols - 1 do
        if eligible j then begin
          let score = Rat.abs tab.bobj.(j) in
          if Rat.compare score !best > 0 then begin
            best := score;
            entering := j
          end
        end
      done
    end;
    if !entering < 0 then `Optimal
    else begin
      let e = !entering in
      let from_upper = tab.at_upper.(e) in
      (* The entering variable moves distance t >= 0 away from its bound;
         the effective column of that motion is +col from lower, -col
         from upper. *)
      let best_row = ref (-1) in
      let best_t = ref Rat.zero in
      let leave_at_upper = ref false in
      for i = 0 to m - 1 do
        let a0 = tab.brows.(i).(e) in
        let a = if from_upper then Rat.neg a0 else a0 in
        let s = Rat.sign a in
        if s > 0 then begin
          (* basic i decreases toward 0 *)
          let t = Rat.div tab.bxb.(i) a in
          let better =
            !best_row < 0
            || Rat.compare t !best_t < 0
            || (Rat.compare t !best_t = 0 && tab.bbasis.(i) < tab.bbasis.(!best_row))
          in
          if better then begin
            best_row := i;
            best_t := t;
            leave_at_upper := false
          end
        end
        else if s < 0 then begin
          match tab.bubs.(tab.bbasis.(i)) with
          | Some u ->
            (* basic i increases toward its upper bound *)
            let t = Rat.div (Rat.sub u tab.bxb.(i)) (Rat.neg a) in
            let better =
              !best_row < 0
              || Rat.compare t !best_t < 0
              || (Rat.compare t !best_t = 0 && tab.bbasis.(i) < tab.bbasis.(!best_row))
            in
            if better then begin
              best_row := i;
              best_t := t;
              leave_at_upper := true
            end
          | None -> ()
        end
      done;
      let flip =
        match tab.bubs.(e) with
        | Some u -> !best_row < 0 || Rat.compare u !best_t <= 0
        | None -> false
      in
      if flip then begin
        tab.iters <- tab.iters + 1;
        if tab.iters > tab.max_iters then raise Pivot_limit;
        let u = Option.get tab.bubs.(e) in
        let delta = if from_upper then Rat.neg u else u in
        for i = 0 to m - 1 do
          let a0 = tab.brows.(i).(e) in
          if not (Rat.is_zero a0) then tab.bxb.(i) <- Rat.sub tab.bxb.(i) (Rat.mul delta a0)
        done;
        tab.at_upper.(e) <- not from_upper;
        step ()
      end
      else if !best_row < 0 then `Unbounded
      else begin
        let r = !best_row and t = !best_t in
        let lv = tab.bbasis.(r) in
        let delta = if from_upper then Rat.neg t else t in
        if not (Rat.is_zero delta) then
          for i = 0 to m - 1 do
            if i <> r then begin
              let a0 = tab.brows.(i).(e) in
              if not (Rat.is_zero a0) then tab.bxb.(i) <- Rat.sub tab.bxb.(i) (Rat.mul delta a0)
            end
          done;
        let enter_val = if from_upper then Rat.sub (Option.get tab.bubs.(e)) t else t in
        bpivot tab r e;
        tab.bxb.(r) <- enter_val;
        tab.at_upper.(lv) <- !leave_at_upper;
        tab.at_upper.(e) <- false;
        step ()
      end
    end
  in
  step ()

let solve_prepared_exn ?bounds ~max_pivots p =
  let nv = p.nv in
  let lb = Array.copy p.base_lb in
  let ub = Array.copy p.base_ub in
  (match bounds with
  | Some (l, u) ->
    Array.blit l 0 lb 0 nv;
    Array.blit u 0 ub 0 nv
  | None -> ());
  let bound_conflict = ref false in
  let shifted_ub =
    Array.init nv (fun j ->
        match ub.(j) with
        | None -> None
        | Some u ->
          if Rat.is_zero lb.(j) then begin
            if Rat.sign u < 0 then bound_conflict := true;
            Some u
          end
          else begin
            let d = Rat.sub u lb.(j) in
            if Rat.sign d < 0 then bound_conflict := true;
            Some d
          end)
  in
  if !bound_conflict then Infeasible
  else begin
    let m0 = Array.length p.prows in
    let ncols = p.pncols in
    let tab =
      {
        brows = Array.init m0 (fun _ -> Array.make ncols Rat.zero);
        bxb = Array.make m0 Rat.zero;
        bbasis = Array.make m0 (-1);
        bobj = Array.make ncols Rat.zero;
        bubs = Array.make ncols None;
        at_upper = Array.make ncols false;
        bncols = ncols;
        iters = 0;
        max_iters = max_pivots;
      }
    in
    Array.blit shifted_ub 0 tab.bubs 0 nv;
    (* A variable fixed by its bounds (shifted ub = 0) stays glued to 0;
       excluding its column from pricing removes it from the search
       entirely — the incremental payoff deep in the branch-and-bound
       tree, where most binaries are fixed. *)
    let fixed j =
      j < nv && match tab.bubs.(j) with Some u -> Rat.is_zero u | None -> false
    in
    let nart_basic = ref 0 in
    Array.iteri
      (fun i pr ->
        (* Most lower bounds are zero (free or 0-fixed binaries), so guard
           the Rat.mul: exact-rational ops dominate the per-node cost. *)
        let shift =
          List.fold_left
            (fun acc (v, c) ->
              if Rat.is_zero lb.(v) then acc else Rat.add acc (Rat.mul c lb.(v)))
            Rat.zero pr.terms
        in
        let rhs = Rat.sub pr.rhs shift in
        let negate = Rat.sign rhs < 0 in
        let src = if negate then pr.neg else pr.coeffs in
        let rhs = if negate then Rat.neg rhs else rhs in
        let rel =
          if negate then
            match pr.rel with Model.Le -> Model.Ge | Model.Ge -> Model.Le | Model.Eq -> Model.Eq
          else pr.rel
        in
        let row = tab.brows.(i) in
        Array.blit src 0 row 0 nv;
        (match rel with
        | Model.Le ->
          row.(pr.slack) <- Rat.one;
          tab.bbasis.(i) <- pr.slack
        | Model.Ge ->
          row.(pr.slack) <- Rat.minus_one;
          row.(pr.art) <- Rat.one;
          tab.bbasis.(i) <- pr.art;
          incr nart_basic
        | Model.Eq ->
          row.(pr.art) <- Rat.one;
          tab.bbasis.(i) <- pr.art;
          incr nart_basic);
        tab.bxb.(i) <- rhs)
      p.prows;
    (* Phase 1: minimize the sum of artificials (cost 1 each, priced out
       over the initial basis so basic artificials start at reduced cost
       zero). *)
    let feasible =
      if !nart_basic = 0 then true
      else begin
        for j = p.part_start to ncols - 1 do
          tab.bobj.(j) <- Rat.one
        done;
        Array.iteri
          (fun i b ->
            if b >= p.part_start then begin
              let row = tab.brows.(i) in
              for j = 0 to ncols - 1 do
                tab.bobj.(j) <- Rat.sub tab.bobj.(j) row.(j)
              done
            end)
          tab.bbasis;
        (match boptimize tab ~allowed:(fun j -> not (fixed j)) with
        | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
        | `Optimal -> ());
        (* Artificials have no upper bound, so nonbasic ones sit at 0 and
           the phase-1 objective is exactly the sum of basic artificial
           values. *)
        let infeas = ref Rat.zero in
        Array.iteri
          (fun i b -> if b >= p.part_start then infeas := Rat.add !infeas tab.bxb.(i))
          tab.bbasis;
        Rat.is_zero !infeas
      end
    in
    if not feasible then Infeasible
    else begin
      if !nart_basic > 0 then begin
        (* Drive any basic artificial (necessarily at value zero) out of
           the basis through a column currently at value zero (nonbasic at
           lower, not fixed), or drop its row when it is redundant. *)
        let keep = ref [] in
        Array.iteri
          (fun i b ->
            if b >= p.part_start then begin
              let row = tab.brows.(i) in
              let col = ref (-1) in
              let redundant = ref true in
              (let j = ref 0 in
               while !col < 0 && !j < p.part_start do
                 if not (Rat.is_zero row.(!j)) then begin
                   redundant := false;
                   if (not tab.at_upper.(!j)) && not (fixed !j) then col := !j
                 end;
                 incr j
               done);
              if !col >= 0 then begin
                bpivot tab i !col;
                tab.bxb.(i) <- Rat.zero;
                keep := i :: !keep
              end
              else if not !redundant then raise Fallback
              (* else: redundant row, dropped below *)
            end
            else keep := i :: !keep)
          tab.bbasis;
        let keep = List.sort compare !keep in
        let nkeep = List.length keep in
        if nkeep <> Array.length tab.brows then begin
          let rows' = Array.make nkeep [||] in
          let xb' = Array.make nkeep Rat.zero in
          let basis' = Array.make nkeep (-1) in
          List.iteri
            (fun k i ->
              rows'.(k) <- tab.brows.(i);
              xb'.(k) <- tab.bxb.(i);
              basis'.(k) <- tab.bbasis.(i))
            keep;
          tab.brows <- rows';
          tab.bxb <- xb';
          tab.bbasis <- basis'
        end
      end;
      (* Phase 2: install the real objective (internally minimized). *)
      let sense, obj_expr = Model.objective p.model in
      let c = Array.make ncols Rat.zero in
      List.iter
        (fun (v, k) -> c.(v) <- (match sense with Model.Minimize -> k | Model.Maximize -> Rat.neg k))
        (Linear.terms obj_expr);
      Array.fill tab.bobj 0 ncols Rat.zero;
      Array.blit c 0 tab.bobj 0 ncols;
      Array.iteri
        (fun i b ->
          let cb = if b < nv then c.(b) else Rat.zero in
          if not (Rat.is_zero cb) then begin
            let row = tab.brows.(i) in
            for j = 0 to ncols - 1 do
              tab.bobj.(j) <- Rat.sub tab.bobj.(j) (Rat.mul cb row.(j))
            done
          end)
        tab.bbasis;
      match boptimize tab ~allowed:(fun j -> j < p.part_start && not (fixed j)) with
      | `Unbounded -> Unbounded
      | `Optimal ->
        let values =
          Array.init nv (fun j ->
              if tab.at_upper.(j) then Rat.add lb.(j) (Option.get shifted_ub.(j)) else lb.(j))
        in
        Array.iteri
          (fun i b -> if b < nv then values.(b) <- Rat.add lb.(b) tab.bxb.(i))
          tab.bbasis;
        let objective = Linear.eval obj_expr (fun v -> values.(v)) in
        Optimal { objective; values; pivots = tab.iters }
    end
  end

let solve_prepared ?bounds ?(max_pivots = 2_000_000) p =
  match solve_prepared_exn ?bounds ~max_pivots p with
  | r -> r
  | exception Fallback -> solve_reference ?bounds ~max_pivots p.model

let solve ?bounds ?max_pivots model = solve_prepared ?bounds ?max_pivots (prepare model)
