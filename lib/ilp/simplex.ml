open Tapa_cs_util

type solution = { objective : Rat.t; values : Rat.t array; pivots : int }
type result = Optimal of solution | Infeasible | Unbounded

exception Pivot_limit

(* ================================================================== *)
(* Reference implementation (the original seed solver).                *)
(*                                                                     *)
(* Standard form  min c.y  s.t.  T.y = b, y >= 0, b >= 0  where        *)
(* structural variables y_j = x_j - lb_j occupy columns 0..nv-1,       *)
(* slack/surplus variables follow, then artificials.  Upper bounds     *)
(* become explicit  y_j <= u_j  rows.  The whole tableau is rebuilt    *)
(* from the model on every call — this is the cold path the prepared   *)
(* solver below is benchmarked against, and the independently written  *)
(* oracle the qcheck differential property compares against.           *)
(* ================================================================== *)

type tableau = {
  mutable rows : Rat.t array array; (* m rows of length ncols+1; last entry is rhs *)
  mutable basis : int array; (* basic variable of each row *)
  obj : Rat.t array; (* reduced-cost row, length ncols+1; last = -objective *)
  ncols : int;
  art_start : int; (* first artificial column *)
  mutable pivots : int;
  max_pivots : int;
}

let pivot tab r c =
  tab.pivots <- tab.pivots + 1;
  if tab.pivots > tab.max_pivots then raise Pivot_limit;
  let row = tab.rows.(r) in
  let p = row.(c) in
  let n = tab.ncols in
  for j = 0 to n do
    row.(j) <- Rat.div row.(j) p
  done;
  let eliminate target =
    let f = target.(c) in
    if not (Rat.is_zero f) then
      for j = 0 to n do
        target.(j) <- Rat.sub target.(j) (Rat.mul f row.(j))
      done
  in
  Array.iteri (fun i other -> if i <> r then eliminate other) tab.rows;
  eliminate tab.obj;
  tab.basis.(r) <- c

(* Pricing: Dantzig's rule (most negative reduced cost) for speed, falling
   back to Bland's rule (lowest index) after a pivot budget to guarantee
   termination on degenerate cycles. *)
let bland_switch = 400

let optimize tab ~allowed =
  let m = Array.length tab.rows in
  let start_pivots = tab.pivots in
  let rec step () =
    let bland = tab.pivots - start_pivots > bland_switch in
    let entering = ref (-1) in
    if bland then begin
      let j = ref 0 in
      while !entering < 0 && !j < tab.ncols do
        if allowed !j && Rat.sign tab.obj.(!j) < 0 then entering := !j;
        incr j
      done
    end
    else begin
      let best = ref Rat.zero in
      for j = 0 to tab.ncols - 1 do
        if allowed j && Rat.compare tab.obj.(j) !best < 0 then begin
          best := tab.obj.(j);
          entering := j
        end
      done
    end;
    if !entering < 0 then `Optimal
    else begin
      let c = !entering in
      let best_row = ref (-1) in
      let best_ratio = ref Rat.zero in
      for i = 0 to m - 1 do
        let a = tab.rows.(i).(c) in
        if Rat.sign a > 0 then begin
          let ratio = Rat.div tab.rows.(i).(tab.ncols) a in
          let better =
            !best_row < 0
            || Rat.compare ratio !best_ratio < 0
            || (Rat.compare ratio !best_ratio = 0 && tab.basis.(i) < tab.basis.(!best_row))
          in
          if better then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        pivot tab !best_row c;
        step ()
      end
    end
  in
  step ()

let solve_reference ?bounds ?(max_pivots = 2_000_000) model =
  let nv = Model.num_vars model in
  let lb = Array.init nv (Model.var_lb model) in
  let ub = Array.init nv (Model.var_ub model) in
  (match bounds with
  | Some (l, u) ->
    Array.blit l 0 lb 0 nv;
    Array.blit u 0 ub 0 nv
  | None -> ());
  let bound_conflict = ref false in
  let shifted_ub =
    Array.init nv (fun j ->
        match ub.(j) with
        | None -> None
        | Some u ->
          let d = Rat.sub u lb.(j) in
          if Rat.sign d < 0 then bound_conflict := true;
          Some d)
  in
  if !bound_conflict then Infeasible
  else begin
    (* Collect rows over the shifted variables y = x - lb. *)
    let raw_rows = ref [] in
    let add_row coeffs rel rhs = raw_rows := (coeffs, rel, rhs) :: !raw_rows in
    List.iter
      (fun (e, rel, rhs) ->
        let coeffs = Array.make nv Rat.zero in
        List.iter (fun (v, c) -> coeffs.(v) <- c) (Linear.terms e);
        let shift = ref Rat.zero in
        for j = 0 to nv - 1 do
          if not (Rat.is_zero coeffs.(j)) then shift := Rat.add !shift (Rat.mul coeffs.(j) lb.(j))
        done;
        add_row coeffs rel (Rat.sub rhs !shift))
      (Model.constraints model);
    Array.iteri
      (fun j u ->
        match u with
        | Some u ->
          let coeffs = Array.make nv Rat.zero in
          coeffs.(j) <- Rat.one;
          add_row coeffs Model.Le u
        | None -> ())
      shifted_ub;
    let rows = List.rev !raw_rows in
    (* Normalize to nonnegative right-hand sides. *)
    let rows =
      List.map
        (fun (coeffs, rel, rhs) ->
          if Rat.sign rhs < 0 then begin
            let coeffs = Array.map Rat.neg coeffs in
            let rel = match rel with Model.Le -> Model.Ge | Model.Ge -> Model.Le | Model.Eq -> Model.Eq in
            (coeffs, rel, Rat.neg rhs)
          end
          else (coeffs, rel, rhs))
        rows
    in
    let m = List.length rows in
    let nslack = List.length (List.filter (fun (_, rel, _) -> rel <> Model.Eq) rows) in
    let nart = List.length (List.filter (fun (_, rel, _) -> rel <> Model.Le) rows) in
    let art_start = nv + nslack in
    let ncols = nv + nslack + nart in
    let tab =
      {
        rows = Array.init m (fun _ -> Array.make (ncols + 1) Rat.zero);
        basis = Array.make m (-1);
        obj = Array.make (ncols + 1) Rat.zero;
        ncols;
        art_start;
        pivots = 0;
        max_pivots;
      }
    in
    let next_slack = ref nv and next_art = ref art_start in
    List.iteri
      (fun i (coeffs, rel, rhs) ->
        let row = tab.rows.(i) in
        Array.blit coeffs 0 row 0 nv;
        row.(ncols) <- rhs;
        (match rel with
        | Model.Le ->
          row.(!next_slack) <- Rat.one;
          tab.basis.(i) <- !next_slack;
          incr next_slack
        | Model.Ge ->
          row.(!next_slack) <- Rat.minus_one;
          incr next_slack;
          row.(!next_art) <- Rat.one;
          tab.basis.(i) <- !next_art;
          incr next_art
        | Model.Eq ->
          row.(!next_art) <- Rat.one;
          tab.basis.(i) <- !next_art;
          incr next_art))
      rows;
    (* Phase 1: minimize the sum of artificials.  Price out basic
       artificials so their reduced costs start at zero. *)
    let need_phase1 = nart > 0 in
    let feasible =
      if not need_phase1 then true
      else begin
        for j = art_start to ncols - 1 do
          tab.obj.(j) <- Rat.one
        done;
        Array.iteri
          (fun i b ->
            if b >= art_start then
              for j = 0 to ncols do
                tab.obj.(j) <- Rat.sub tab.obj.(j) tab.rows.(i).(j)
              done)
          tab.basis;
        (match optimize tab ~allowed:(fun _ -> true) with
        | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
        | `Optimal -> ());
        let phase1_obj = Rat.neg tab.obj.(ncols) in
        Rat.is_zero phase1_obj
      end
    in
    if not feasible then Infeasible
    else begin
      (* Drive any basic artificial (necessarily at value zero) out of the
         basis, or drop its row when it is redundant. *)
      if need_phase1 then begin
        let keep = ref [] in
        Array.iteri
          (fun i b ->
            if b >= art_start then begin
              let row = tab.rows.(i) in
              let col = ref (-1) in
              (let j = ref 0 in
               while !col < 0 && !j < art_start do
                 if not (Rat.is_zero row.(!j)) then col := !j;
                 incr j
               done);
              if !col >= 0 then begin
                pivot tab i !col;
                keep := i :: !keep
              end
              (* else: redundant row, dropped below *)
            end
            else keep := i :: !keep)
          tab.basis;
        let keep = List.sort compare !keep in
        let nkeep = List.length keep in
        if nkeep <> Array.length tab.rows then begin
          let rows' = Array.make nkeep [||] in
          let basis' = Array.make nkeep (-1) in
          List.iteri
            (fun k i ->
              rows'.(k) <- tab.rows.(i);
              basis'.(k) <- tab.basis.(i))
            keep;
          tab.rows <- rows';
          tab.basis <- basis'
        end
      end;
      (* Phase 2: install the real objective (internally minimized). *)
      let sense, obj_expr = Model.objective model in
      let c = Array.make ncols Rat.zero in
      List.iter
        (fun (v, k) -> c.(v) <- (match sense with Model.Minimize -> k | Model.Maximize -> Rat.neg k))
        (Linear.terms obj_expr);
      Array.fill tab.obj 0 (ncols + 1) Rat.zero;
      Array.blit c 0 tab.obj 0 ncols;
      Array.iteri
        (fun i b ->
          let cb = if b < ncols then c.(b) else Rat.zero in
          if not (Rat.is_zero cb) then
            for j = 0 to ncols do
              tab.obj.(j) <- Rat.sub tab.obj.(j) (Rat.mul cb tab.rows.(i).(j))
            done)
        tab.basis;
      match optimize tab ~allowed:(fun j -> j < art_start) with
      | `Unbounded -> Unbounded
      | `Optimal ->
        let values = Array.init nv (fun j -> lb.(j)) in
        Array.iteri
          (fun i b -> if b < nv then values.(b) <- Rat.add values.(b) tab.rows.(i).(ncols))
          tab.basis;
        let objective = Linear.eval obj_expr (fun v -> values.(v)) in
        Optimal { objective; values; pivots = tab.pivots }
    end
  end

(* ================================================================== *)
(* Prepared template + bounded-variable simplex (the hot path).        *)
(* ================================================================== *)

(* One model constraint, pre-lowered to dense form.  [coeffs] and [neg]
   are the +/- coefficient rows (both precomputed so a per-node sign
   normalization is a blit, not nv Rat.neg allocations); [terms] is the
   sparse view used to re-shift the rhs under new lower bounds. *)
type prow = {
  coeffs : Rat.t array; (* length nv *)
  neg : Rat.t array;
  terms : (int * Rat.t) list;
  rel : Model.relation;
  rhs : Rat.t;
  slack : int; (* slack/surplus column; -1 for Eq rows *)
  art : int; (* artificial column (used only when the node needs it) *)
}

type prepared = {
  model : Model.t;
  nv : int;
  prows : prow array;
  part_start : int; (* first artificial column *)
  pncols : int;
  base_lb : Rat.t array;
  base_ub : Rat.t option array;
}

let prepare model =
  let nv = Model.num_vars model in
  let constrs = Array.of_list (Model.constraints model) in
  let next_slack = ref nv in
  let slack_cols =
    Array.map
      (fun (_, rel, _) ->
        if rel <> Model.Eq then begin
          let c = !next_slack in
          incr next_slack;
          c
        end
        else -1)
      constrs
  in
  (* A [Le] row flips to [Ge] when its shifted rhs goes negative under some
     node's bounds, so every row gets a (possibly unused) artificial
     column: the layout must not depend on the bounds. *)
  let part_start = !next_slack in
  let pncols = part_start + Array.length constrs in
  let prows =
    Array.mapi
      (fun i (e, rel, rhs) ->
        let coeffs = Array.make nv Rat.zero in
        List.iter (fun (v, c) -> coeffs.(v) <- c) (Linear.terms e);
        {
          coeffs;
          neg = Array.map Rat.neg coeffs;
          terms = Linear.terms e;
          rel;
          rhs;
          slack = slack_cols.(i);
          art = part_start + i;
        })
      constrs
  in
  {
    model;
    nv;
    prows;
    part_start;
    pncols;
    base_lb = Array.init nv (Model.var_lb model);
    base_ub = Array.init nv (Model.var_ub model);
  }

(* Working tableau of the bounded-variable simplex.  Unlike the reference
   tableau, the rhs is NOT part of the coefficient rows: [bxb] holds the
   current values of the basic variables directly (with the contributions
   of nonbasic-at-upper columns folded in), so pivoting touches only the
   coefficient matrix and the step logic updates the values. *)
type btab = {
  mutable brows : Rat.t array array; (* m x ncols, B^-1 A *)
  mutable bxb : Rat.t array; (* current basic values *)
  mutable bbasis : int array;
  bobj : Rat.t array; (* reduced costs, length ncols *)
  bubs : Rat.t option array; (* per-column upper bound (structural only) *)
  at_upper : bool array; (* nonbasic column currently at its upper bound *)
  mutable bncols : int; (* active column window; shrinks to [part_start]
                           once the artificial block can no longer enter *)
  mutable iters : int; (* pivots + bound flips *)
  max_iters : int;
}

(* Rare corner (redundant constraints whose rows end up expressible only
   through columns pinned at their upper bound): punt to the reference
   solver instead of growing a basis-repair special case. *)
exception Fallback

let bpivot tab r c =
  tab.iters <- tab.iters + 1;
  if tab.iters > tab.max_iters then raise Pivot_limit;
  let row = tab.brows.(r) in
  let p = row.(c) in
  let n = tab.bncols in
  for j = 0 to n - 1 do
    row.(j) <- Rat.div row.(j) p
  done;
  let eliminate target =
    let f = target.(c) in
    if not (Rat.is_zero f) then
      for j = 0 to n - 1 do
        target.(j) <- Rat.sub target.(j) (Rat.mul f row.(j))
      done
  in
  Array.iteri (fun i other -> if i <> r then eliminate other) tab.brows;
  eliminate tab.bobj;
  tab.bbasis.(r) <- c

(* Minimize bobj.x.  A nonbasic column is eligible when moving it off its
   current bound improves the objective: reduced cost < 0 at lower, > 0
   at upper.  Basic columns keep reduced cost 0, so they are never
   selected.  The ratio test additionally considers (a) the entering
   variable reaching its own opposite bound — a bound flip, O(m) value
   updates and no pivot — and (b) a basic variable climbing to its upper
   bound (it then leaves the basis AT that bound). *)
let boptimize tab ~allowed =
  let start = tab.iters in
  let rec step () =
    let m = Array.length tab.brows in
    let bland = tab.iters - start > bland_switch in
    let eligible j =
      allowed j
      &&
      let s = Rat.sign tab.bobj.(j) in
      if tab.at_upper.(j) then s > 0 else s < 0
    in
    let entering = ref (-1) in
    if bland then begin
      let j = ref 0 in
      while !entering < 0 && !j < tab.bncols do
        if eligible !j then entering := !j;
        incr j
      done
    end
    else begin
      let best = ref Rat.zero in
      for j = 0 to tab.bncols - 1 do
        if eligible j then begin
          let score = Rat.abs tab.bobj.(j) in
          if Rat.compare score !best > 0 then begin
            best := score;
            entering := j
          end
        end
      done
    end;
    if !entering < 0 then `Optimal
    else begin
      let e = !entering in
      let from_upper = tab.at_upper.(e) in
      (* The entering variable moves distance t >= 0 away from its bound;
         the effective column of that motion is +col from lower, -col
         from upper. *)
      let best_row = ref (-1) in
      let best_t = ref Rat.zero in
      let leave_at_upper = ref false in
      for i = 0 to m - 1 do
        let a0 = tab.brows.(i).(e) in
        let a = if from_upper then Rat.neg a0 else a0 in
        let s = Rat.sign a in
        if s > 0 then begin
          (* basic i decreases toward 0 *)
          let t = Rat.div tab.bxb.(i) a in
          let better =
            !best_row < 0
            || Rat.compare t !best_t < 0
            || (Rat.compare t !best_t = 0 && tab.bbasis.(i) < tab.bbasis.(!best_row))
          in
          if better then begin
            best_row := i;
            best_t := t;
            leave_at_upper := false
          end
        end
        else if s < 0 then begin
          match tab.bubs.(tab.bbasis.(i)) with
          | Some u ->
            (* basic i increases toward its upper bound *)
            let t = Rat.div (Rat.sub u tab.bxb.(i)) (Rat.neg a) in
            let better =
              !best_row < 0
              || Rat.compare t !best_t < 0
              || (Rat.compare t !best_t = 0 && tab.bbasis.(i) < tab.bbasis.(!best_row))
            in
            if better then begin
              best_row := i;
              best_t := t;
              leave_at_upper := true
            end
          | None -> ()
        end
      done;
      let flip =
        match tab.bubs.(e) with
        | Some u -> !best_row < 0 || Rat.compare u !best_t <= 0
        | None -> false
      in
      if flip then begin
        tab.iters <- tab.iters + 1;
        if tab.iters > tab.max_iters then raise Pivot_limit;
        let u = Option.get tab.bubs.(e) in
        let delta = if from_upper then Rat.neg u else u in
        for i = 0 to m - 1 do
          let a0 = tab.brows.(i).(e) in
          if not (Rat.is_zero a0) then tab.bxb.(i) <- Rat.sub tab.bxb.(i) (Rat.mul delta a0)
        done;
        tab.at_upper.(e) <- not from_upper;
        step ()
      end
      else if !best_row < 0 then `Unbounded
      else begin
        let r = !best_row and t = !best_t in
        let lv = tab.bbasis.(r) in
        let delta = if from_upper then Rat.neg t else t in
        if not (Rat.is_zero delta) then
          for i = 0 to m - 1 do
            if i <> r then begin
              let a0 = tab.brows.(i).(e) in
              if not (Rat.is_zero a0) then tab.bxb.(i) <- Rat.sub tab.bxb.(i) (Rat.mul delta a0)
            end
          done;
        let enter_val = if from_upper then Rat.sub (Option.get tab.bubs.(e)) t else t in
        bpivot tab r e;
        tab.bxb.(r) <- enter_val;
        tab.at_upper.(lv) <- !leave_at_upper;
        tab.at_upper.(e) <- false;
        step ()
      end
    end
  in
  step ()

let solve_prepared_exn ?bounds ~max_pivots p =
  let nv = p.nv in
  (* The node bounds are only read below, never written, so alias them
     directly instead of copy-then-overwrite: two array allocations per
     LP solve saved on the branch-and-bound hot path. *)
  let lb, ub =
    match bounds with Some (l, u) -> (l, u) | None -> (p.base_lb, p.base_ub)
  in
  let bound_conflict = ref false in
  let shifted_ub =
    Array.init nv (fun j ->
        match ub.(j) with
        | None -> None
        | Some u ->
          if Rat.is_zero lb.(j) then begin
            if Rat.sign u < 0 then bound_conflict := true;
            Some u
          end
          else begin
            let d = Rat.sub u lb.(j) in
            if Rat.sign d < 0 then bound_conflict := true;
            Some d
          end)
  in
  if !bound_conflict then Infeasible
  else begin
    let m0 = Array.length p.prows in
    let ncols = p.pncols in
    let tab =
      {
        brows = Array.init m0 (fun _ -> Array.make ncols Rat.zero);
        bxb = Array.make m0 Rat.zero;
        bbasis = Array.make m0 (-1);
        bobj = Array.make ncols Rat.zero;
        bubs = Array.make ncols None;
        at_upper = Array.make ncols false;
        bncols = ncols;
        iters = 0;
        max_iters = max_pivots;
      }
    in
    Array.blit shifted_ub 0 tab.bubs 0 nv;
    (* A variable fixed by its bounds (shifted ub = 0) stays glued to 0;
       excluding its column from pricing removes it from the search
       entirely — the incremental payoff deep in the branch-and-bound
       tree, where most binaries are fixed. *)
    let fixed j =
      j < nv && match tab.bubs.(j) with Some u -> Rat.is_zero u | None -> false
    in
    let nart_basic = ref 0 in
    Array.iteri
      (fun i pr ->
        (* Most lower bounds are zero (free or 0-fixed binaries), so guard
           the Rat.mul: exact-rational ops dominate the per-node cost. *)
        let shift =
          List.fold_left
            (fun acc (v, c) ->
              if Rat.is_zero lb.(v) then acc else Rat.add acc (Rat.mul c lb.(v)))
            Rat.zero pr.terms
        in
        let rhs = Rat.sub pr.rhs shift in
        let negate = Rat.sign rhs < 0 in
        let src = if negate then pr.neg else pr.coeffs in
        let rhs = if negate then Rat.neg rhs else rhs in
        let rel =
          if negate then
            match pr.rel with Model.Le -> Model.Ge | Model.Ge -> Model.Le | Model.Eq -> Model.Eq
          else pr.rel
        in
        let row = tab.brows.(i) in
        Array.blit src 0 row 0 nv;
        (match rel with
        | Model.Le ->
          row.(pr.slack) <- Rat.one;
          tab.bbasis.(i) <- pr.slack
        | Model.Ge ->
          row.(pr.slack) <- Rat.minus_one;
          row.(pr.art) <- Rat.one;
          tab.bbasis.(i) <- pr.art;
          incr nart_basic
        | Model.Eq ->
          row.(pr.art) <- Rat.one;
          tab.bbasis.(i) <- pr.art;
          incr nart_basic);
        tab.bxb.(i) <- rhs)
      p.prows;
    (* Phase 1: minimize the sum of artificials (cost 1 each, priced out
       over the initial basis so basic artificials start at reduced cost
       zero). *)
    let feasible =
      if !nart_basic = 0 then true
      else begin
        for j = p.part_start to ncols - 1 do
          tab.bobj.(j) <- Rat.one
        done;
        Array.iteri
          (fun i b ->
            if b >= p.part_start then begin
              let row = tab.brows.(i) in
              for j = 0 to ncols - 1 do
                tab.bobj.(j) <- Rat.sub tab.bobj.(j) row.(j)
              done
            end)
          tab.bbasis;
        (match boptimize tab ~allowed:(fun j -> not (fixed j)) with
        | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
        | `Optimal -> ());
        (* Artificials have no upper bound, so nonbasic ones sit at 0 and
           the phase-1 objective is exactly the sum of basic artificial
           values. *)
        let infeas = ref Rat.zero in
        Array.iteri
          (fun i b -> if b >= p.part_start then infeas := Rat.add !infeas tab.bxb.(i))
          tab.bbasis;
        Rat.is_zero !infeas
      end
    in
    if not feasible then Infeasible
    else begin
      if !nart_basic > 0 then begin
        (* Drive any basic artificial (necessarily at value zero) out of
           the basis through a column currently at value zero (nonbasic at
           lower, not fixed), or drop its row when it is redundant. *)
        let keep = ref [] in
        Array.iteri
          (fun i b ->
            if b >= p.part_start then begin
              let row = tab.brows.(i) in
              let col = ref (-1) in
              let redundant = ref true in
              (let j = ref 0 in
               while !col < 0 && !j < p.part_start do
                 if not (Rat.is_zero row.(!j)) then begin
                   redundant := false;
                   if (not tab.at_upper.(!j)) && not (fixed !j) then col := !j
                 end;
                 incr j
               done);
              if !col >= 0 then begin
                bpivot tab i !col;
                tab.bxb.(i) <- Rat.zero;
                keep := i :: !keep
              end
              else if not !redundant then raise Fallback
              (* else: redundant row, dropped below *)
            end
            else keep := i :: !keep)
          tab.bbasis;
        let keep = List.sort compare !keep in
        let nkeep = List.length keep in
        if nkeep <> Array.length tab.brows then begin
          let rows' = Array.make nkeep [||] in
          let xb' = Array.make nkeep Rat.zero in
          let basis' = Array.make nkeep (-1) in
          List.iteri
            (fun k i ->
              rows'.(k) <- tab.brows.(i);
              xb'.(k) <- tab.bxb.(i);
              basis'.(k) <- tab.bbasis.(i))
            keep;
          tab.brows <- rows';
          tab.bxb <- xb';
          tab.bbasis <- basis'
        end
      end;
      (* Every artificial is now out of the basis (or its row dropped), and
         phase 2 never lets one re-enter, so the artificial block can no
         longer influence anything: shrink the active column window and
         spare every pivot/elimination loop the all-zero tail.  On the
         all-[Le] models branch-and-bound produces this skips the block
         from the very first pivot. *)
      tab.bncols <- p.part_start;
      (* Phase 2: install the real objective (internally minimized). *)
      let sense, obj_expr = Model.objective p.model in
      let pncols = tab.bncols in
      let c = Array.make pncols Rat.zero in
      List.iter
        (fun (v, k) -> c.(v) <- (match sense with Model.Minimize -> k | Model.Maximize -> Rat.neg k))
        (Linear.terms obj_expr);
      (* Stale phase-1 entries past [pncols] are unreachable once the
         window is shrunk, so only the active prefix needs installing. *)
      Array.blit c 0 tab.bobj 0 pncols;
      Array.iteri
        (fun i b ->
          let cb = if b < nv then c.(b) else Rat.zero in
          if not (Rat.is_zero cb) then begin
            let row = tab.brows.(i) in
            for j = 0 to pncols - 1 do
              tab.bobj.(j) <- Rat.sub tab.bobj.(j) (Rat.mul cb row.(j))
            done
          end)
        tab.bbasis;
      match boptimize tab ~allowed:(fun j -> j < p.part_start && not (fixed j)) with
      | `Unbounded -> Unbounded
      | `Optimal ->
        let values =
          Array.init nv (fun j ->
              if tab.at_upper.(j) then Rat.add lb.(j) (Option.get shifted_ub.(j)) else lb.(j))
        in
        Array.iteri
          (fun i b -> if b < nv then values.(b) <- Rat.add lb.(b) tab.bxb.(i))
          tab.bbasis;
        let objective = Linear.eval obj_expr (fun v -> values.(v)) in
        Optimal { objective; values; pivots = tab.iters }
    end
  end

let solve_prepared ?bounds ?(max_pivots = 2_000_000) p =
  match solve_prepared_exn ?bounds ~max_pivots p with
  | r -> r
  | exception Fallback -> solve_reference ?bounds ~max_pivots p.model

(* ================================================================== *)
(* Float-first path: double-precision simplex proposes a basis, exact  *)
(* rational linear algebra certifies it.                               *)
(*                                                                     *)
(* The float tableau is a structural mirror of the bounded-variable    *)
(* solver above (same column layout, same sign normalization, same     *)
(* two-phase structure) but runs in doubles with epsilon tolerances.   *)
(* Nothing it computes is trusted: the only thing taken from it is the *)
(* final basis (one column per row plus the at-upper flags), and that  *)
(* basis is re-checked from scratch in Rat.t — basic values via an     *)
(* exact LU solve of B x_B = b_eff, reduced costs via B^T y = c_B.     *)
(* Any violation, numerical failure, or float-claimed infeasibility /  *)
(* unboundedness routes to the exact solver, so results are exact      *)
(* regardless of floating-point behaviour.                             *)
(* ================================================================== *)

type basis = {
  bcols : int array; (* basic column of each template row *)
  bupper : bool array; (* per-column nonbasic-at-upper-bound flags *)
}

(* Any situation the float path does not model (redundant rows that the
   exact path would drop, singular warm bases, iteration exhaustion,
   tiny pivots) — abandon the float attempt, never guess. *)
exception Float_give_up

let f_feas_eps = 1e-7 (* primal feasibility / phase-1 residual tolerance *)
let f_cost_eps = 1e-9 (* reduced-cost sign tolerance *)
let f_piv_eps = 1e-8 (* minimum acceptable pivot magnitude *)

type ftab = {
  frows : float array array; (* m x ncols, B^-1 A *)
  fxb : float array; (* current basic values *)
  fbasis : int array;
  fobj : float array; (* reduced costs *)
  fubs : float array; (* per-column upper bound; infinity when none *)
  fupper : bool array;
  mutable fncols : int; (* active column window; shrinks to [part_start]
                           once no artificial can re-enter the basis *)
  mutable fiters : int;
  fmax : int;
}

let f_tick tab =
  tab.fiters <- tab.fiters + 1;
  if tab.fiters > tab.fmax then raise Float_give_up

let fpivot tab r c =
  f_tick tab;
  let row = tab.frows.(r) in
  let p = row.(c) in
  if Float.abs p < f_piv_eps then raise Float_give_up;
  let n = tab.fncols in
  for j = 0 to n - 1 do
    row.(j) <- row.(j) /. p
  done;
  let eliminate target =
    let f = target.(c) in
    if f <> 0. then
      for j = 0 to n - 1 do
        target.(j) <- target.(j) -. (f *. row.(j))
      done
  in
  Array.iteri (fun i other -> if i <> r then eliminate other) tab.frows;
  eliminate tab.fobj;
  tab.fbasis.(r) <- c

(* Gaussian pivot used while installing a warm basis: the rhs column is
   transformed alongside the rows (valid because at-upper contributions
   are already folded into [fxb] and no bound status changes during the
   install). *)
let fginstall tab r c =
  f_tick tab;
  let row = tab.frows.(r) in
  let p = row.(c) in
  if Float.abs p < f_piv_eps then raise Float_give_up;
  let n = tab.fncols in
  for j = 0 to n - 1 do
    row.(j) <- row.(j) /. p
  done;
  tab.fxb.(r) <- tab.fxb.(r) /. p;
  Array.iteri
    (fun i other ->
      if i <> r then begin
        let f = other.(c) in
        if f <> 0. then begin
          for j = 0 to n - 1 do
            other.(j) <- other.(j) -. (f *. row.(j))
          done;
          tab.fxb.(i) <- tab.fxb.(i) -. (f *. tab.fxb.(r))
        end
      end)
    tab.frows;
  tab.fbasis.(r) <- c

(* Primal bounded-variable simplex in floats; mirrors [boptimize]. *)
let foptimize tab ~allowed =
  let start = tab.fiters in
  let m = Array.length tab.frows in
  let rec step () =
    let bland = tab.fiters - start > bland_switch in
    let eligible j =
      allowed j
      &&
      let d = tab.fobj.(j) in
      if tab.fupper.(j) then d > f_cost_eps else d < -.f_cost_eps
    in
    let entering = ref (-1) in
    if bland then begin
      let j = ref 0 in
      while !entering < 0 && !j < tab.fncols do
        if eligible !j then entering := !j;
        incr j
      done
    end
    else begin
      let best = ref 0. in
      for j = 0 to tab.fncols - 1 do
        if eligible j then begin
          let score = Float.abs tab.fobj.(j) in
          if score > !best then begin
            best := score;
            entering := j
          end
        end
      done
    end;
    if !entering < 0 then `Optimal
    else begin
      let e = !entering in
      let from_upper = tab.fupper.(e) in
      let best_row = ref (-1) in
      let best_t = ref 0. in
      let leave_at_upper = ref false in
      for i = 0 to m - 1 do
        let a0 = tab.frows.(i).(e) in
        let a = if from_upper then -.a0 else a0 in
        if a > f_piv_eps then begin
          let t = Float.max 0. (tab.fxb.(i) /. a) in
          let better =
            !best_row < 0
            || t < !best_t
            || (t = !best_t && tab.fbasis.(i) < tab.fbasis.(!best_row))
          in
          if better then begin
            best_row := i;
            best_t := t;
            leave_at_upper := false
          end
        end
        else if a < -.f_piv_eps then begin
          let u = tab.fubs.(tab.fbasis.(i)) in
          if u < infinity then begin
            let t = Float.max 0. ((u -. tab.fxb.(i)) /. -.a) in
            let better =
              !best_row < 0
              || t < !best_t
              || (t = !best_t && tab.fbasis.(i) < tab.fbasis.(!best_row))
            in
            if better then begin
              best_row := i;
              best_t := t;
              leave_at_upper := true
            end
          end
        end
      done;
      let u_e = tab.fubs.(e) in
      let flip = u_e < infinity && (!best_row < 0 || u_e <= !best_t) in
      if flip then begin
        f_tick tab;
        let delta = if from_upper then -.u_e else u_e in
        for i = 0 to m - 1 do
          let a0 = tab.frows.(i).(e) in
          if a0 <> 0. then tab.fxb.(i) <- tab.fxb.(i) -. (delta *. a0)
        done;
        tab.fupper.(e) <- not from_upper;
        step ()
      end
      else if !best_row < 0 then `Unbounded
      else begin
        let r = !best_row and t = !best_t in
        let lv = tab.fbasis.(r) in
        let delta = if from_upper then -.t else t in
        if delta <> 0. then
          for i = 0 to m - 1 do
            if i <> r then begin
              let a0 = tab.frows.(i).(e) in
              if a0 <> 0. then tab.fxb.(i) <- tab.fxb.(i) -. (delta *. a0)
            end
          done;
        let enter_val = if from_upper then u_e -. t else t in
        fpivot tab r e;
        tab.fxb.(r) <- enter_val;
        tab.fupper.(lv) <- !leave_at_upper;
        tab.fupper.(e) <- false;
        step ()
      end
    end
  in
  step ()

(* Dual simplex: repair primal feasibility of a dual-feasible basis after
   bound changes.  Leaving row = most violated basic (below 0 or above its
   upper bound); entering column = minimum |reduced cost| / |pivot| ratio
   among columns whose sign keeps the cost row dual-feasible.  When the
   dual step would push the entering variable past its own opposite bound
   it bound-flips instead (standard bounded-variable dual step). *)
let fdual tab ~allowed =
  let m = Array.length tab.frows in
  let rec step () =
    let r = ref (-1) in
    let viol = ref f_feas_eps in
    let over = ref false in
    for i = 0 to m - 1 do
      let x = tab.fxb.(i) in
      if -.x > !viol then begin
        r := i;
        viol := -.x;
        over := false
      end;
      let u = tab.fubs.(tab.fbasis.(i)) in
      if u < infinity && x -. u > !viol then begin
        r := i;
        viol := x -. u;
        over := true
      end
    done;
    if !r < 0 then `Feasible
    else begin
      let r = !r in
      let row = tab.frows.(r) in
      let leaving = tab.fbasis.(r) in
      let best = ref (-1) in
      let best_ratio = ref infinity in
      for j = 0 to tab.fncols - 1 do
        if allowed j && j <> leaving then begin
          let a = row.(j) in
          let eligible, denom =
            if !over then
              if tab.fupper.(j) then (a < -.f_piv_eps, -.a) else (a > f_piv_eps, a)
            else if tab.fupper.(j) then (a > f_piv_eps, a)
            else (a < -.f_piv_eps, -.a)
          in
          if eligible then begin
            let ratio = Float.abs tab.fobj.(j) /. denom in
            if ratio < !best_ratio then begin
              best_ratio := ratio;
              best := j
            end
          end
        end
      done;
      if !best < 0 then `Infeasible (* dual unbounded: no primal solution *)
      else begin
        let e = !best in
        let from_upper = tab.fupper.(e) in
        let a_re = row.(e) in
        let a = if from_upper then -.a_re else a_re in
        let target = if !over then tab.fubs.(leaving) else 0. in
        let t = (tab.fxb.(r) -. target) /. a in
        let u_e = tab.fubs.(e) in
        if u_e < infinity && t > u_e +. f_feas_eps then begin
          (* Entering would overshoot its opposite bound: flip it and
             re-examine the still-violated row. *)
          f_tick tab;
          let delta = if from_upper then -.u_e else u_e in
          for i = 0 to m - 1 do
            let a0 = tab.frows.(i).(e) in
            if a0 <> 0. then tab.fxb.(i) <- tab.fxb.(i) -. (delta *. a0)
          done;
          tab.fupper.(e) <- not from_upper;
          step ()
        end
        else begin
          let delta = if from_upper then -.t else t in
          for i = 0 to m - 1 do
            if i <> r then begin
              let a0 = tab.frows.(i).(e) in
              if a0 <> 0. then tab.fxb.(i) <- tab.fxb.(i) -. (delta *. a0)
            end
          done;
          let enter_val = if from_upper then u_e -. t else t in
          fpivot tab r e;
          tab.fxb.(r) <- enter_val;
          tab.fupper.(leaving) <- !over;
          tab.fupper.(e) <- false;
          step ()
        end
      end
    end
  in
  step ()

(* Node-specific variable bounds, computed exactly once and shared by the
   float tableau and the certification pass. *)
let node_bounds p bounds =
  let nv = p.nv in
  (* Read-only below: alias instead of copy-then-overwrite. *)
  let lb, ub =
    match bounds with Some (l, u) -> (l, u) | None -> (p.base_lb, p.base_ub)
  in
  let conflict = ref false in
  let shifted_ub =
    Array.init nv (fun j ->
        match ub.(j) with
        | None -> None
        | Some u ->
          let d = if Rat.is_zero lb.(j) then u else Rat.sub u lb.(j) in
          if Rat.sign d < 0 then conflict := true;
          Some d)
  in
  (lb, shifted_ub, !conflict)

let f_fixed shifted_ub nv j =
  j < nv && match shifted_ub.(j) with Some u -> Rat.is_zero u | None -> false

(* Build the float tableau in the same normalized orientation as the
   exact prepared path (rows with exact negative shifted rhs are negated,
   flipping their relation).  Shifts are computed exactly before the
   float conversion so the orientation decision can never disagree with
   the exact path. *)
let build_ftab p ~lb ~shifted_ub ~max_iters =
  let nv = p.nv in
  let ncols = p.pncols in
  let m0 = Array.length p.prows in
  let tab =
    {
      frows = Array.init m0 (fun _ -> Array.make ncols 0.);
      fxb = Array.make m0 0.;
      fbasis = Array.make m0 (-1);
      fobj = Array.make ncols 0.;
      fubs = Array.make ncols infinity;
      fupper = Array.make ncols false;
      fncols = ncols;
      fiters = 0;
      fmax = max_iters;
    }
  in
  Array.iteri
    (fun j u -> match u with Some u -> tab.fubs.(j) <- Rat.to_float u | None -> ())
    shifted_ub;
  let nart_basic = ref 0 in
  Array.iteri
    (fun i pr ->
      let shift =
        List.fold_left
          (fun acc (v, c) ->
            if Rat.is_zero lb.(v) then acc else Rat.add acc (Rat.mul c lb.(v)))
          Rat.zero pr.terms
      in
      let rhs = Rat.sub pr.rhs shift in
      let negate = Rat.sign rhs < 0 in
      let src = if negate then pr.neg else pr.coeffs in
      let rhs = if negate then Rat.neg rhs else rhs in
      let rel =
        if negate then
          match pr.rel with Model.Le -> Model.Ge | Model.Ge -> Model.Le | Model.Eq -> Model.Eq
        else pr.rel
      in
      let row = tab.frows.(i) in
      for j = 0 to nv - 1 do
        row.(j) <- Rat.to_float src.(j)
      done;
      (match rel with
      | Model.Le ->
        row.(pr.slack) <- 1.;
        tab.fbasis.(i) <- pr.slack
      | Model.Ge ->
        row.(pr.slack) <- -1.;
        row.(pr.art) <- 1.;
        tab.fbasis.(i) <- pr.art;
        incr nart_basic
      | Model.Eq ->
        row.(pr.art) <- 1.;
        tab.fbasis.(i) <- pr.art;
        incr nart_basic);
      tab.fxb.(i) <- Rat.to_float rhs)
    p.prows;
  (tab, !nart_basic)

let finstall_objective p tab =
  let sense, obj_expr = Model.objective p.model in
  let c = Array.make tab.fncols 0. in
  List.iter
    (fun (v, k) ->
      c.(v) <- (match sense with Model.Minimize -> Rat.to_float k | Model.Maximize -> -.(Rat.to_float k)))
    (Linear.terms obj_expr);
  Array.blit c 0 tab.fobj 0 tab.fncols;
  Array.iteri
    (fun i b ->
      let cb = if b < p.nv then c.(b) else 0. in
      if cb <> 0. then begin
        let row = tab.frows.(i) in
        for j = 0 to tab.fncols - 1 do
          tab.fobj.(j) <- tab.fobj.(j) -. (cb *. row.(j))
        done
      end)
    tab.fbasis

let fextract_basis tab =
  { bcols = Array.copy tab.fbasis; bupper = Array.copy tab.fupper }

(* Cold float solve: two-phase, mirroring [solve_prepared_exn].  Returns
   the proposed optimal basis or an (untrusted) infeasible/unbounded
   claim.  Rows whose artificial cannot be driven out (the exact path
   would drop them as redundant) give up: certification needs one basic
   column per template row. *)
let fsolve_cold p ~lb ~shifted_ub ~max_iters =
  let tab, nart_basic = build_ftab p ~lb ~shifted_ub ~max_iters in
  let fixed = f_fixed shifted_ub p.nv in
  let feasible =
    if nart_basic = 0 then true
    else begin
      for j = p.part_start to tab.fncols - 1 do
        tab.fobj.(j) <- 1.
      done;
      Array.iteri
        (fun i b ->
          if b >= p.part_start then begin
            let row = tab.frows.(i) in
            for j = 0 to tab.fncols - 1 do
              tab.fobj.(j) <- tab.fobj.(j) -. row.(j)
            done
          end)
        tab.fbasis;
      (match foptimize tab ~allowed:(fun j -> not (fixed j)) with
      | `Unbounded -> raise Float_give_up
      | `Optimal -> ());
      let infeas = ref 0. in
      Array.iteri
        (fun i b -> if b >= p.part_start then infeas := !infeas +. Float.abs tab.fxb.(i))
        tab.fbasis;
      !infeas <= f_feas_eps
    end
  in
  if not feasible then `Infeasible
  else begin
    if nart_basic > 0 then
      Array.iteri
        (fun i b ->
          if b >= p.part_start then begin
            let row = tab.frows.(i) in
            let col = ref (-1) in
            (let j = ref 0 in
             while !col < 0 && !j < p.part_start do
               if Float.abs row.(!j) > f_piv_eps && (not tab.fupper.(!j)) && not (fixed !j)
               then col := !j;
               incr j
             done);
            if !col < 0 then raise Float_give_up;
            fpivot tab i !col;
            tab.fxb.(i) <- 0.
          end)
        tab.fbasis;
    (* No artificial is basic any more and phase 2 never re-admits one:
       drop the artificial block from the active window. *)
    tab.fncols <- p.part_start;
    finstall_objective p tab;
    match foptimize tab ~allowed:(fun j -> j < p.part_start && not (fixed j)) with
    | `Unbounded -> `Unbounded
    | `Optimal -> `Basis (fextract_basis tab, tab.fiters)
  end

(* Warm float solve: re-install a parent basis (dual-feasible after a
   branching bound change), fold the at-upper contributions into the rhs,
   run the dual simplex until primal feasible, then finish with the
   primal phase.  Phase 1 is skipped entirely. *)
let fsolve_warm p warm ~lb ~shifted_ub ~max_iters =
  let m0 = Array.length p.prows in
  if Array.length warm.bcols <> m0 then raise Float_give_up;
  Array.iter (fun c -> if c < 0 || c >= p.part_start then raise Float_give_up) warm.bcols;
  let tab, _ = build_ftab p ~lb ~shifted_ub ~max_iters in
  (* The warm basis uses only structural/slack columns (checked above),
     so the artificial block is dead weight from the start. *)
  tab.fncols <- p.part_start;
  let fixed = f_fixed shifted_ub p.nv in
  let is_basic = Array.make p.pncols false in
  Array.iter
    (fun c ->
      if is_basic.(c) then raise Float_give_up;
      is_basic.(c) <- true)
    warm.bcols;
  for j = 0 to p.nv - 1 do
    if warm.bupper.(j) && not is_basic.(j) then begin
      let u = tab.fubs.(j) in
      if u < infinity then begin
        if u <> 0. then
          for i = 0 to m0 - 1 do
            tab.fxb.(i) <- tab.fxb.(i) -. (u *. tab.frows.(i).(j))
          done;
        tab.fupper.(j) <- true
      end
    end
  done;
  let assigned = Array.make m0 false in
  Array.iter
    (fun c ->
      let best = ref (-1) in
      let best_mag = ref 0. in
      for r = 0 to m0 - 1 do
        if not assigned.(r) then begin
          let a = Float.abs tab.frows.(r).(c) in
          if a > !best_mag then begin
            best := r;
            best_mag := a
          end
        end
      done;
      if !best < 0 || !best_mag < f_piv_eps then raise Float_give_up;
      assigned.(!best) <- true;
      fginstall tab !best c)
    warm.bcols;
  finstall_objective p tab;
  let allowed j = j < p.part_start && not (fixed j) in
  match fdual tab ~allowed with
  | `Infeasible -> `Infeasible
  | `Feasible -> (
    match foptimize tab ~allowed with
    | `Unbounded -> `Unbounded
    | `Optimal -> `Basis (fextract_basis tab, tab.fiters))

(* ------------------------------------------------------------------ *)
(* Exact certification of a proposed basis.                            *)
(* ------------------------------------------------------------------ *)

(* Dense LU with partial pivoting over Rat, preferring +/-1 pivots (the
   basis matrix is dominated by unit slack columns, so most elimination
   steps are exact unit pivots with no fraction growth).  Returns the
   row permutation, or None when the matrix is singular.  The factors
   overwrite [a]: L below the diagonal (unit diagonal implicit), U on
   and above. *)
let lu_factor a =
  let m = Array.length a in
  let perm = Array.init m (fun i -> i) in
  let singular = ref false in
  (try
     for k = 0 to m - 1 do
       let first = ref (-1) in
       let unit = ref (-1) in
       for i = k to m - 1 do
         if not (Rat.is_zero a.(i).(k)) then begin
           if !first < 0 then first := i;
           if !unit < 0 && Rat.equal (Rat.abs a.(i).(k)) Rat.one then unit := i
         end
       done;
       let r = if !unit >= 0 then !unit else !first in
       if r < 0 then begin
         singular := true;
         raise Exit
       end;
       if r <> k then begin
         let tmp = a.(k) in
         a.(k) <- a.(r);
         a.(r) <- tmp;
         let tp = perm.(k) in
         perm.(k) <- perm.(r);
         perm.(r) <- tp
       end;
       let piv = a.(k).(k) in
       for i = k + 1 to m - 1 do
         if not (Rat.is_zero a.(i).(k)) then begin
           let f = Rat.div a.(i).(k) piv in
           a.(i).(k) <- f;
           for j = k + 1 to m - 1 do
             if not (Rat.is_zero a.(k).(j)) then
               a.(i).(j) <- Rat.sub a.(i).(j) (Rat.mul f a.(k).(j))
           done
         end
       done
     done
   with Exit -> ());
  if !singular then None else Some perm

(* Solve (P^-1 L U) x = b, i.e. L U x = P b. *)
let lu_solve a perm b =
  let m = Array.length a in
  let x = Array.init m (fun k -> b.(perm.(k))) in
  for i = 1 to m - 1 do
    for k = 0 to i - 1 do
      if not (Rat.is_zero a.(i).(k)) && not (Rat.is_zero x.(k)) then
        x.(i) <- Rat.sub x.(i) (Rat.mul a.(i).(k) x.(k))
    done
  done;
  for i = m - 1 downto 0 do
    for k = i + 1 to m - 1 do
      if not (Rat.is_zero a.(i).(k)) && not (Rat.is_zero x.(k)) then
        x.(i) <- Rat.sub x.(i) (Rat.mul a.(i).(k) x.(k))
    done;
    x.(i) <- Rat.div x.(i) a.(i).(i)
  done;
  x

(* Solve B^T y = c given B = P^-1 L U: U^T z = c (forward), L^T w = z
   (backward), y.(perm.(k)) = w.(k). *)
let lu_solve_transpose a perm c =
  let m = Array.length a in
  let z = Array.make m Rat.zero in
  for i = 0 to m - 1 do
    let acc = ref c.(i) in
    for k = 0 to i - 1 do
      if not (Rat.is_zero a.(k).(i)) && not (Rat.is_zero z.(k)) then
        acc := Rat.sub !acc (Rat.mul a.(k).(i) z.(k))
    done;
    z.(i) <- Rat.div !acc a.(i).(i)
  done;
  let w = Array.make m Rat.zero in
  for i = m - 1 downto 0 do
    let acc = ref z.(i) in
    for k = i + 1 to m - 1 do
      if not (Rat.is_zero a.(k).(i)) && not (Rat.is_zero w.(k)) then
        acc := Rat.sub !acc (Rat.mul a.(k).(i) w.(k))
    done;
    w.(i) <- !acc
  done;
  let y = Array.make m Rat.zero in
  Array.iteri (fun k wk -> y.(perm.(k)) <- wk) w;
  y

(* Certify a proposed basis against the CANONICAL (un-negated) row
   orientation: row negation in the solvers multiplies an entire
   equation by -1, which changes neither its solution set nor which
   column sets form a nonsingular basis, so certification is
   representation-independent.  Checks, all in exact arithmetic:
   - B nonsingular (LU succeeds);
   - primal: 0 <= x_B <= ub for x_B = B^-1 b_eff, where b_eff folds the
     exact lower-bound shift and the nonbasic-at-upper contributions;
   - dual: reduced costs d_j = c_j - y.A_j (y = B^-T c_B) are >= 0 at
     lower bound and <= 0 at upper bound for every priceable column.
   Passing both proves the basis optimal for the minimized objective, so
   the reconstructed rational solution is exactly optimal. *)
let certify p ~lb ~shifted_ub ~basis =
  let nv = p.nv in
  let m0 = Array.length p.prows in
  if Array.length basis.bcols <> m0 then None
  else begin
    let ok = ref true in
    let is_basic = Array.make p.pncols false in
    Array.iter
      (fun c ->
        if c < 0 || c >= p.part_start || is_basic.(c) then ok := false
        else is_basic.(c) <- true)
      basis.bcols;
    if not !ok then None
    else begin
      let fixed = f_fixed shifted_ub nv in
      let slack_row = Array.make p.pncols (-1) in
      Array.iteri (fun i pr -> if pr.slack >= 0 then slack_row.(pr.slack) <- i) p.prows;
      let entry i j =
        if j < nv then p.prows.(i).coeffs.(j)
        else if slack_row.(j) = i then
          match p.prows.(i).rel with
          | Model.Le -> Rat.one
          | Model.Ge -> Rat.minus_one
          | Model.Eq -> Rat.zero
        else Rat.zero
      in
      let at_up j =
        j < nv
        && basis.bupper.(j)
        && (not is_basic.(j))
        && match shifted_ub.(j) with Some u -> not (Rat.is_zero u) | None -> false
      in
      let bmat = Array.init m0 (fun i -> Array.init m0 (fun k -> entry i basis.bcols.(k))) in
      match lu_factor bmat with
      | None -> None
      | Some perm ->
        let b_eff =
          Array.init m0 (fun i ->
              let pr = p.prows.(i) in
              List.fold_left
                (fun acc (v, c) ->
                  let acc =
                    if Rat.is_zero lb.(v) then acc else Rat.sub acc (Rat.mul c lb.(v))
                  in
                  if at_up v then Rat.sub acc (Rat.mul c (Option.get shifted_ub.(v))) else acc)
                pr.rhs pr.terms)
        in
        let x_b = lu_solve bmat perm b_eff in
        let primal_ok = ref true in
        Array.iteri
          (fun k x ->
            if Rat.sign x < 0 then primal_ok := false
            else begin
              let c = basis.bcols.(k) in
              if c < nv then
                match shifted_ub.(c) with
                | Some u -> if Rat.compare x u > 0 then primal_ok := false
                | None -> ()
            end)
          x_b;
        if not !primal_ok then None
        else begin
          let sense, obj_expr = Model.objective p.model in
          let c = Array.make p.pncols Rat.zero in
          List.iter
            (fun (v, k) ->
              c.(v) <- (match sense with Model.Minimize -> k | Model.Maximize -> Rat.neg k))
            (Linear.terms obj_expr);
          let c_b = Array.map (fun col -> c.(col)) basis.bcols in
          let y = lu_solve_transpose bmat perm c_b in
          let dual_ok = ref true in
          let j = ref 0 in
          while !dual_ok && !j < p.part_start do
            let jc = !j in
            if (not is_basic.(jc)) && not (fixed jc) then begin
              let d = ref c.(jc) in
              for i = 0 to m0 - 1 do
                if not (Rat.is_zero y.(i)) then begin
                  let a = entry i jc in
                  if not (Rat.is_zero a) then d := Rat.sub !d (Rat.mul y.(i) a)
                end
              done;
              let s = Rat.sign !d in
              if at_up jc then begin
                if s > 0 then dual_ok := false
              end
              else if s < 0 then dual_ok := false
            end;
            incr j
          done;
          if not !dual_ok then None
          else begin
            let values =
              Array.init nv (fun v ->
                  if at_up v then Rat.add lb.(v) (Option.get shifted_ub.(v)) else lb.(v))
            in
            Array.iteri
              (fun k col -> if col < nv then values.(col) <- Rat.add lb.(col) x_b.(k))
              basis.bcols;
            let objective = Linear.eval obj_expr (fun v -> values.(v)) in
            Some { objective; values; pivots = 0 }
          end
        end
    end
  end

type float_first_outcome = {
  ff_result : result;
  ff_basis : basis option;
  ff_certified : bool;
}

(* Cap on float iterations: float pivots are ~1000x cheaper than exact
   ones, and a float run that long signals numerical trouble — better to
   hand the node to the exact solver with its budget intact. *)
let float_iter_cap = 20_000

let solve_float_first ?bounds ?warm ?(max_pivots = 2_000_000) p =
  let lb, shifted_ub, conflict = node_bounds p bounds in
  if conflict then { ff_result = Infeasible; ff_basis = None; ff_certified = true }
  else begin
    let fallback () =
      let r =
        match solve_prepared_exn ?bounds ~max_pivots p with
        | r -> r
        | exception Fallback -> solve_reference ?bounds ~max_pivots p.model
      in
      { ff_result = r; ff_basis = None; ff_certified = false }
    in
    let fmax = min max_pivots float_iter_cap in
    let attempt () =
      match warm with
      | Some w -> (
        try fsolve_warm p w ~lb ~shifted_ub ~max_iters:fmax
        with Float_give_up -> fsolve_cold p ~lb ~shifted_ub ~max_iters:fmax)
      | None -> fsolve_cold p ~lb ~shifted_ub ~max_iters:fmax
    in
    match attempt () with
    | exception Float_give_up -> fallback ()
    | `Infeasible | `Unbounded ->
      (* Float claims of infeasibility/unboundedness carry no certificate:
         re-derive the verdict exactly. *)
      fallback ()
    | `Basis (b, fiters) -> (
      match certify p ~lb ~shifted_ub ~basis:b with
      | Some sol ->
        {
          ff_result = Optimal { sol with pivots = fiters };
          ff_basis = Some b;
          ff_certified = true;
        }
      | None -> fallback ())
  end

let solve ?bounds ?max_pivots model = solve_prepared ?bounds ?max_pivots (prepare model)
