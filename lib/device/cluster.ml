type link_kind = Ethernet_100g | Pcie_gen3x16

type t = {
  boards : Board.t array;
  topology : Topology.t;
  link : link_kind;
  node_of : int -> int;
  num_nodes : int;
}

let make ?(link = Ethernet_100g) ?(topology = Topology.Ring) ~board n =
  if n <= 0 then invalid_arg "Cluster.make: need at least one FPGA";
  {
    boards = Array.init n (fun _ -> board ());
    topology;
    link;
    node_of = (fun _ -> 0);
    num_nodes = 1;
  }

let heterogeneous ?(link = Ethernet_100g) ?(topology = Topology.Ring) ?(boards_per_node = 4)
    mix n =
  if mix = [] then invalid_arg "Cluster.heterogeneous: empty board mix";
  if n <= 0 then invalid_arg "Cluster.heterogeneous: need at least one FPGA";
  if boards_per_node <= 0 then invalid_arg "Cluster.heterogeneous: boards_per_node <= 0";
  let mix = Array.of_list mix in
  {
    boards = Array.init n (fun i -> mix.(i mod Array.length mix) ());
    topology;
    link;
    node_of = (fun i -> i / boards_per_node);
    num_nodes = (n + boards_per_node - 1) / boards_per_node;
  }

let two_node_testbed () =
  {
    boards = Array.init 8 (fun _ -> Board.u55c ());
    (* Two 4-FPGA rings; modeled as one ring whose 4/0 boundary is the
       inter-node hop.  Distances within a node follow the ring metric. *)
    topology = Topology.Ring;
    link = Ethernet_100g;
    node_of = (fun i -> i / 4);
    num_nodes = 2;
  }

let size t = Array.length t.boards
let board t i = t.boards.(i)

let dist t i j = Topology.dist t.topology ~total:(size t) i j
let same_node t i j = t.node_of i = t.node_of j

let lambda t = match t.link with Ethernet_100g -> 1.0 | Pcie_gen3x16 -> Constants.pcie_cost_scale

let link_bandwidth_gbytes t i j =
  if i = j then Constants.hbm_bandwidth_gbps
  else if not (same_node t i j) then Constants.inter_node_gbps
  else begin
    match t.link with
    | Ethernet_100g -> Constants.inter_fpga_gbps
    | Pcie_gen3x16 -> Constants.inter_fpga_gbps /. Constants.pcie_cost_scale
  end

let link_rtt_us t i j =
  if i = j then 0.0
  else if not (same_node t i j) then 100.0 (* device->host->NIC->host->device *)
  else begin
    match t.link with
    | Ethernet_100g -> Constants.alveolink_rtt_us
    | Pcie_gen3x16 -> Constants.pcie_rtt_ns /. 1000.0
  end

let total_resources t =
  Array.fold_left (fun acc b -> Resource.add acc b.Board.total) Resource.zero t.boards

type view = { cluster : t; down : bool array }

let full_view cluster = { cluster; down = Array.make (size cluster) false }

let set_down view d flag =
  if d < 0 || d >= Array.length view.down || view.down.(d) = flag then view
  else begin
    let down = Array.copy view.down in
    down.(d) <- flag;
    { view with down }
  end

let prune_device view d = set_down view d true
let restore_device view d = set_down view d false
let alive view d = d >= 0 && d < Array.length view.down && not view.down.(d)

let alive_devices view =
  List.filter (fun d -> not view.down.(d)) (List.init (Array.length view.down) Fun.id)

let num_alive view = Array.fold_left (fun acc b -> if b then acc else acc + 1) 0 view.down

let failed_devices view =
  List.filter (fun d -> view.down.(d)) (List.init (Array.length view.down) Fun.id)

let pp fmt t =
  Format.fprintf fmt "%d x %s over %a (%s), %d node(s)" (size t) t.boards.(0).Board.name
    Topology.pp t.topology
    (match t.link with Ethernet_100g -> "100G Ethernet" | Pcie_gen3x16 -> "PCIe Gen3x16")
    t.num_nodes
