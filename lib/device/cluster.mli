(** A cluster of network-connected FPGAs (paper Fig. 1): a set of boards,
    the topology wiring their QSFP ports together, the link medium, and an
    optional grouping of boards into server nodes bridged by a slower
    host-side network (§5.7). *)

type link_kind = Ethernet_100g | Pcie_gen3x16

type t = {
  boards : Board.t array;
  topology : Topology.t;
  link : link_kind;
  node_of : int -> int;  (** server node hosting each FPGA *)
  num_nodes : int;
}

val make : ?link:link_kind -> ?topology:Topology.t -> board:(unit -> Board.t) -> int -> t
(** [make ~board n] builds a single-node cluster of [n] identical boards,
    ring-connected over 100 Gbps Ethernet by default (the paper's
    testbed). *)

val heterogeneous :
  ?link:link_kind ->
  ?topology:Topology.t ->
  ?boards_per_node:int ->
  (unit -> Board.t) list ->
  int ->
  t
(** [heterogeneous mix n] builds an [n]-board farm cycling through the
    board constructors of [mix] (e.g. U55C, U250, Stratix-10), grouped
    into server nodes of [boards_per_node] boards each (default 4, the
    paper's per-node testbed size; the last node may be short).
    @raise Invalid_argument on an empty mix, [n <= 0] or
    [boards_per_node <= 0]. *)

val two_node_testbed : unit -> t
(** The paper's §5.7 setup: two server nodes, each a 4-FPGA U55C ring,
    bridged by a 10 Gbps host link. *)

val size : t -> int
val board : t -> int -> Board.t

val dist : t -> int -> int -> int
(** Topology hop count between two FPGAs. *)

val same_node : t -> int -> int -> bool

val lambda : t -> float
(** Communication-cost scaling factor λ of Eq. 2: 1 for 100 Gbps Ethernet,
    12.5 for PCIe Gen3x16. *)

val link_bandwidth_gbytes : t -> int -> int -> float
(** Effective link bandwidth in GB/s between two FPGAs: the FPGA-to-FPGA
    medium within a node, the 10 Gbps host path across nodes. *)

val link_rtt_us : t -> int -> int -> float

val total_resources : t -> Resource.t
val pp : Format.formatter -> t -> unit

(** {1 Survivor views}

    A farm controller tracks which devices of a fixed cluster are
    currently alive.  A {!view} is that overlay: the cluster itself never
    changes (indices stay stable for placements and caches), only the
    alive set does.  Views are persistent — {!prune_device} and
    {!restore_device} return fresh views, so a controller can keep the
    pre-fault view for accounting while it re-places tenants on the
    post-fault one. *)

type view = private { cluster : t; down : bool array }

val full_view : t -> view
(** Every device alive. *)

val prune_device : view -> int -> view
(** Mark a device dead (idempotent; out-of-range indices are ignored). *)

val restore_device : view -> int -> view
(** Bring a device back (idempotent; out-of-range indices are ignored). *)

val alive : view -> int -> bool
val alive_devices : view -> int list
(** Ascending device indices of the survivors. *)

val num_alive : view -> int
val failed_devices : view -> int list
(** Ascending device indices of the dead — the shape
    {!Tapa_cs_floorplan.Inter_fpga.run_degraded} consumes. *)
