(** Deterministic discrete-time controller for a fault-tolerant
    multi-tenant FPGA farm.

    The controller admits a stream of arriving {!Tenant.t} designs onto a
    (typically heterogeneous) {!Tapa_cs_device.Cluster.t}, placing each
    with {!Tapa_cs_floorplan.Inter_fpga.run_degraded}: boards owned by
    co-located tenants are masked (they keep forwarding packets but take
    no tasks), dead boards and downed links come from the live
    {!Tapa_cs_network.Fault.timeline}.  On each fault event only the
    displaced tenants re-place — {!Tapa_cs_floorplan.Inter_fpga.replace}
    returns untouched placements unchanged — under a bounded
    retry/backoff budget ([max_retries] attempts, [backoff_s * 2^i]
    spacing).  Strict-SLO tenants fail over to spare capacity or are
    explicitly reported down; best-effort tenants accept the relaxation
    ladder.

    Availability accounting is exact by construction: each tenant's
    healthy/degraded/down seconds are accrued between consecutive events,
    so they always sum to [horizon - arrival].  Everything here runs on
    the simulated farm clock — the emitted {!stats_json} carries no
    wall-clock field and is a pure function of (cluster, workload,
    timeline, config), identical across runs and [jobs] values. *)

open Tapa_cs_device

type health = Healthy | Degraded | Down
(** [Healthy]: placed at the requested threshold, no greedy rung, every
    cut FIFO routable, no ambient-loss episode touching its traffic.
    [Degraded]: placed, but one of those holds.  [Down]: not placed
    (awaiting a retry, or out of retry budget). *)

val health_label : health -> string

type config = {
  threshold : float;  (** requested per-board utilization ceiling *)
  seed : int;  (** root of every per-tenant solver seed *)
  max_retries : int;  (** consecutive failed placement attempts allowed *)
  backoff_s : float;  (** base retry spacing; doubles per failure *)
  horizon_s : float;  (** farm-clock end of the run *)
}

val default_config : config
(** Threshold {!Tapa_cs_device.Constants.utilization_threshold}, seed 1,
    3 retries, 5 s backoff, 600 s horizon. *)

type tenant_report = {
  tenant : Tenant.t;
  final_health : health;
  failed_over : bool;  (** ever re-placed onto a different board set *)
  gave_up : bool;  (** exhausted the retry budget; explicitly down *)
  placements : int;  (** successful installs, initial one included *)
  replacements : int;  (** installs that replaced a live placement *)
  attempts : int;  (** solver attempts, failures included *)
  healthy_s : float;
  degraded_s : float;
  down_s : float;  (** the three always sum to [horizon - arrival] *)
  devices : int list;  (** boards owned at the horizon *)
}

type fault_report = {
  at_s : float;
  event : string;
  displaced : int list;  (** tenant ids the event forced to re-place *)
  ttr_s : float option;
      (** farm-clock delay until the last displaced tenant was placed
          again; [Some 0.] when re-placement succeeded at the fault
          instant, [None] when some displaced tenant never recovered *)
}

type sample = {
  t_s : float;
  label : string;  (** events processed at this instant *)
  placed : int;
  dead_devices : int;
  utilization : float;  (** tenant-owned fraction of the alive boards *)
  fragmentation : float;
      (** [1 - largest-single-node free block / total free boards]: 0
          when the free capacity is one contiguous node, approaching 1 as
          it shatters across nodes *)
  max_link_sharers : int;
      (** most tenants whose cut traffic shares one physical link, over
          deterministic BFS shortest routes *)
}

type stats = {
  boards : int;
  horizon_s : float;
  seed : int;
  tenants : tenant_report list;  (** in tenant-id order *)
  faults : fault_report list;  (** in event order *)
  timeline : sample list;  (** one per processed instant, in time order *)
  reused : int;
      (** re-placement rounds answered by the unaffected fast path — the
          placement (and its cached solve) survived the fleet change *)
  frag_hits : int;
      (** per-group floorplan subproblems replayed from the fragment
          cache during this run — e.g. the untouched node groups of a
          re-placement after a board death, or content-identical
          subproblems shared across tenants *)
  frag_misses : int;  (** subproblem lookups that had to solve *)
  groups_resolved : int;
      (** subproblems actually (re-)solved — the cumulative dirty set *)
}

val run :
  ?pool:Tapa_cs_util.Pool.t ->
  ?config:config ->
  cluster:Cluster.t ->
  timeline:Tapa_cs_network.Fault.timeline ->
  Tenant.t list ->
  stats
(** Run the farm to the horizon.  [pool] parallelizes the per-tenant
    solver portfolios (wall-clock only; the stats are bit-identical with
    and without it).  Tenants arriving after the horizon are ignored.
    Starts from cold floorplan caches (solution + fragment), so the
    emitted stats — including the fragment-cache counters — are a pure
    function of the inputs, independent of process history. *)

val total_tenant_s : stats -> float
(** Sum of every tenant's three buckets = total accounted tenant-time. *)

val mean_ttr_s : stats -> float option
(** Mean time-to-recover over faults that fully recovered; [None] when
    no fault did. *)

val stats_json : stats -> string
(** Machine-readable stats timeline.  No wall-clock content: byte-
    identical across runs and [--jobs] values for equal inputs. *)

val pp_summary : Format.formatter -> stats -> unit
