open Tapa_cs_util
open Tapa_cs_apps

type slo = Strict | Best_effort

let slo_label = function Strict -> "strict" | Best_effort -> "best-effort"

type t = {
  id : int;
  name : string;
  slo : slo;
  arrival_s : float;
  graph : Tapa_cs_graph.Taskgraph.t;
}

let make ~id ~name ~slo ~arrival_s graph =
  if id < 0 then invalid_arg "Tenant.make: negative id";
  if arrival_s < 0.0 || not (Float.is_finite arrival_s) then
    invalid_arg "Tenant.make: bad arrival time";
  { id; name; slo; arrival_s; graph }

(* The synthetic admission stream: small instances of the paper's three
   benchmark families, sized for 1-3 boards each so a farm holds dozens of
   them.  Every draw comes from one splitmix64 stream in a fixed order, so
   a seed pins the whole workload bit-for-bit. *)
let workload ?(strict_every = 3) ?(mean_gap_s = 30.0) ~seed ~tenants () =
  if tenants < 0 then invalid_arg "Tenant.workload: negative tenant count";
  if mean_gap_s <= 0.0 then invalid_arg "Tenant.workload: mean_gap_s <= 0";
  let prng = Prng.create seed in
  let rec gen i t acc =
    if i >= tenants then List.rev acc
    else begin
      (* Uniform over [0, 2*mean); mean inter-arrival = mean_gap_s. *)
      let t = t +. Prng.float prng (2.0 *. mean_gap_s) in
      let fpgas = 1 + Prng.int prng 3 in
      let name, graph =
        match Prng.int prng 3 with
        | 0 ->
          let iterations = [| 64; 128; 256 |].(Prng.int prng 3) in
          ( Printf.sprintf "stencil-i%d-f%d" iterations fpgas,
            (Stencil.generate (Stencil.make_config ~iterations ~fpgas ())).App.graph )
        | 1 ->
          let n_points = 1_000_000 * (1 + Prng.int prng 2) in
          ( Printf.sprintf "knn-n%dM-f%d" (n_points / 1_000_000) fpgas,
            (Knn.generate (Knn.make_config ~n_points ~dims:8 ~fpgas ())).App.graph )
        | _ ->
          ( Printf.sprintf "cnn-c4-f%d" fpgas,
            (Cnn.generate (Cnn.make_config ~cols:4 ~fpgas ())).App.graph )
      in
      let slo = if strict_every > 0 && i mod strict_every = 0 then Strict else Best_effort in
      gen (i + 1) t (make ~id:i ~name ~slo ~arrival_s:t graph :: acc)
    end
  in
  gen 0 0.0 []
