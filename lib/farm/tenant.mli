(** A tenant of the multi-FPGA farm: one design plus its service-level
    class and arrival time.

    [Strict] tenants accept only clean placements — the requested
    utilization threshold, no greedy rung, every cut FIFO routable — and
    fail over to spare capacity when a fault displaces them; when no
    clean placement exists they are reported [Down], never silently
    degraded.  [Best_effort] tenants ride the whole
    {!Tapa_cs_floorplan.Inter_fpga} relaxation ladder and accept degraded
    thresholds. *)

type slo = Strict | Best_effort

val slo_label : slo -> string

type t = {
  id : int;
  name : string;
  slo : slo;
  arrival_s : float;  (** admission request time on the farm clock *)
  graph : Tapa_cs_graph.Taskgraph.t;
}

val make : id:int -> name:string -> slo:slo -> arrival_s:float -> Tapa_cs_graph.Taskgraph.t -> t
(** @raise Invalid_argument on a negative id or a non-finite/negative
    arrival time. *)

val workload : ?strict_every:int -> ?mean_gap_s:float -> seed:int -> tenants:int -> unit -> t list
(** Seeded synthetic admission stream: [tenants] designs drawn from the
    paper's stencil / KNN / CNN families at 1-3 board scale, arriving
    with uniform inter-arrival gaps of mean [mean_gap_s] (default 30 s);
    every [strict_every]-th tenant (default 3, starting with tenant 0) is
    [Strict].  One {!Tapa_cs_util.Prng} stream drives every draw, so a
    seed pins the workload bit-for-bit. *)
