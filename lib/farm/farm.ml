open Tapa_cs_device
module Fault = Tapa_cs_network.Fault
module If = Tapa_cs_floorplan.Inter_fpga
module Synthesis = Tapa_cs_hls.Synthesis

type health = Healthy | Degraded | Down

let health_label = function Healthy -> "healthy" | Degraded -> "degraded" | Down -> "down"

type config = {
  threshold : float;
  seed : int;
  max_retries : int;
  backoff_s : float;
  horizon_s : float;
}

let default_config =
  {
    threshold = Constants.utilization_threshold;
    seed = 1;
    max_retries = 3;
    backoff_s = 5.0;
    horizon_s = 600.0;
  }

type tenant_report = {
  tenant : Tenant.t;
  final_health : health;
  failed_over : bool;
  gave_up : bool;
  placements : int;
  replacements : int;
  attempts : int;
  healthy_s : float;
  degraded_s : float;
  down_s : float;
  devices : int list;
}

type fault_report = {
  at_s : float;
  event : string;
  displaced : int list;
  ttr_s : float option;
}

type sample = {
  t_s : float;
  label : string;
  placed : int;
  dead_devices : int;
  utilization : float;
  fragmentation : float;
  max_link_sharers : int;
}

type stats = {
  boards : int;
  horizon_s : float;
  seed : int;
  tenants : tenant_report list;
  faults : fault_report list;
  timeline : sample list;
  reused : int;
  frag_hits : int;
  frag_misses : int;
  groups_resolved : int;
}

(* ------------------------------------------------------------------ *)
(* Internal controller state *)

type tstate = {
  spec : Tenant.t;
  mutable synthesis : Synthesis.report option;
  mutable placement : If.t option;
  mutable baseline : (int -> int -> int) option;
      (* survivor-hops snapshot at placement time, the [If.affected] input *)
  mutable clean : bool;  (* no relaxed-threshold / greedy rung fired *)
  mutable connected : bool;  (* every cut pair routable when placed *)
  mutable health : health;
  mutable arrived : bool;
  mutable last_t : float;
  mutable healthy_s : float;
  mutable degraded_s : float;
  mutable down_s : float;
  mutable attempts : int;  (* consecutive failures since the last success *)
  mutable total_attempts : int;
  mutable placements : int;
  mutable replacements : int;
  mutable gave_up : bool;
  mutable retry_at : float option;
  mutable failed_over : bool;
}

type frecord = {
  f_at : float;
  f_event : string;
  f_displaced : int list;
  mutable f_pending : int list;
  mutable f_abandoned : bool;
  mutable f_recovered_at : float option;
}

let norm_pair (a, b) = (min a b, max a b)

let run ?pool ?(config = default_config) ~cluster ~timeline tenants =
  (* Start from cold caches so every counter in the emitted stats —
     including the fragment-cache fields below — is a pure function of
     (cluster, workload, timeline, config), never of what ran earlier in
     the process.  That is the byte-identity contract farmgate pins
     across repeats and [--jobs] values. *)
  Tapa_cs_floorplan.Partition.reset_cache ();
  let k = Cluster.size cluster in
  let horizon = config.horizon_s in
  let states =
    tenants
    |> List.filter (fun (t : Tenant.t) -> t.arrival_s <= horizon)
    |> List.sort (fun (a : Tenant.t) (b : Tenant.t) ->
           compare (a.arrival_s, a.id) (b.arrival_s, b.id))
    |> List.map (fun spec ->
           {
             spec;
             synthesis = None;
             placement = None;
             baseline = None;
             clean = false;
             connected = false;
             health = Down;
             arrived = false;
             last_t = spec.Tenant.arrival_s;
             healthy_s = 0.0;
             degraded_s = 0.0;
             down_s = 0.0;
             attempts = 0;
             total_attempts = 0;
             placements = 0;
             replacements = 0;
             gave_up = false;
             retry_at = None;
             failed_over = false;
           })
  in
  let view = ref (Cluster.full_view cluster) in
  let down_links = ref [] in
  let loss = ref 0.0 in
  let reused = ref 0 in
  let faults : frecord list ref = ref [] in
  let samples = ref [] in

  let synth_of st =
    match st.synthesis with
    | Some s -> s
    | None ->
      let s = Synthesis.run ~board:(Cluster.board cluster 0) ?pool st.spec.Tenant.graph in
      st.synthesis <- Some s;
      s
  in
  let owned st = match st.placement with Some p -> If.devices_used p | None -> [] in
  let masked_for st =
    List.concat_map (fun o -> if o == st then [] else owned o) states
  in
  let compute_health st =
    match st.placement with
    | None -> Down
    | Some p ->
      if not st.connected then Degraded
      else if not st.clean then Degraded
      else if !loss > 0.0 && p.If.cut_fifos <> [] then Degraded
      else Healthy
  in
  let update_health () =
    List.iter (fun st -> if st.arrived then st.health <- compute_health st) states
  in
  let accrue t =
    List.iter
      (fun st ->
        if st.arrived && t > st.last_t then begin
          let d = t -. st.last_t in
          (match st.health with
          | Healthy -> st.healthy_s <- st.healthy_s +. d
          | Degraded -> st.degraded_s <- st.degraded_s +. d
          | Down -> st.down_s <- st.down_s +. d);
          st.last_t <- t
        end)
      states
  in
  let note_recovered t st =
    List.iter
      (fun f ->
        if List.mem st.spec.Tenant.id f.f_pending then begin
          f.f_pending <- List.filter (fun id -> id <> st.spec.Tenant.id) f.f_pending;
          if f.f_pending = [] && not f.f_abandoned then f.f_recovered_at <- Some t
        end)
      !faults
  in
  let note_gave_up st =
    List.iter
      (fun f ->
        if List.mem st.spec.Tenant.id f.f_pending then begin
          f.f_pending <- List.filter (fun id -> id <> st.spec.Tenant.id) f.f_pending;
          f.f_abandoned <- true
        end)
      !faults
  in
  let fail_attempt t st =
    st.attempts <- st.attempts + 1;
    if st.attempts > config.max_retries then begin
      st.gave_up <- true;
      st.retry_at <- None;
      note_gave_up st
    end
    else
      st.retry_at <- Some (t +. (config.backoff_s *. (2.0 ** float_of_int (st.attempts - 1))))
  in
  let acceptable st ~clean ~connected =
    match st.spec.Tenant.slo with Tenant.Best_effort -> true | Tenant.Strict -> clean && connected
  in
  let install t st (p : If.t) =
    let failed = Cluster.failed_devices !view in
    let hops = If.survivor_hops ~failed_devices:failed ~failed_links:!down_links cluster in
    let clean =
      p.If.threshold_used <= config.threshold +. 1e-9
      && not (List.mem "greedy" p.If.fallbacks)
    in
    let connected =
      List.for_all (fun (i, j) -> hops i j < If.unreachable_dist) (If.cut_pairs p)
    in
    if not (acceptable st ~clean ~connected) then false
    else begin
      let prev_devices = owned st in
      (match st.placement with
      | Some _ ->
        st.replacements <- st.replacements + 1;
        if If.devices_used p <> prev_devices then st.failed_over <- true
      | None -> if st.placements > 0 then st.failed_over <- true);
      st.placement <- Some p;
      st.baseline <- Some hops;
      st.clean <- clean;
      st.connected <- connected;
      st.placements <- st.placements + 1;
      st.attempts <- 0;
      st.retry_at <- None;
      note_recovered t st;
      true
    end
  in
  (* Fresh placement of an unplaced tenant: every board another tenant
     owns is masked (still routable, receives no tasks), every dead board
     is failed.  Seeds derive from (farm seed, tenant, attempt) so a farm
     run is one deterministic function of its inputs. *)
  let admit t st =
    if st.placement = None && not st.gave_up then begin
      let synthesis = synth_of st in
      let seed = config.seed + (1009 * st.spec.Tenant.id) + st.total_attempts in
      st.total_attempts <- st.total_attempts + 1;
      match
        If.run_degraded ~seed ~threshold:config.threshold ?pool
          ~failed_devices:(Cluster.failed_devices !view) ~failed_links:!down_links
          ~masked_devices:(masked_for st) ~cluster ~synthesis st.spec.Tenant.graph
      with
      | Ok p -> if not (install t st p) then fail_attempt t st
      | Error _ -> fail_attempt t st
    end
  in
  (* Re-placement round after a fleet change: [If.replace] returns the
     previous placement physically unchanged when the change does not
     touch this tenant (the cache-reuse fast path); otherwise it re-solves
     warm-started from the old assignment.  A strict tenant whose only
     feasible re-placement is dirty loses its boards and joins the retry
     queue instead of running degraded silently. *)
  let refresh t st =
    match st.placement with
    | None -> false
    | Some prev -> (
      let synthesis = synth_of st in
      let seed = config.seed + (1009 * st.spec.Tenant.id) + st.total_attempts in
      match
        If.replace ~seed ~threshold:config.threshold ?pool
          ~failed_devices:(Cluster.failed_devices !view) ~failed_links:!down_links
          ~masked_devices:(masked_for st) ?baseline:st.baseline ~prev ~cluster ~synthesis
          st.spec.Tenant.graph
      with
      | Ok p when p == prev ->
        incr reused;
        false
      | Ok p ->
        st.total_attempts <- st.total_attempts + 1;
        if not (install t st p) then begin
          st.placement <- None;
          st.baseline <- None;
          fail_attempt t st
        end;
        true
      | Error _ ->
        st.total_attempts <- st.total_attempts + 1;
        st.placement <- None;
        st.baseline <- None;
        fail_attempt t st;
        true)
  in
  (* Strict tenants re-place first (they have the failover claim on spare
     capacity), then best-effort, both in id order. *)
  let in_slo_order f =
    let rank st = match st.spec.Tenant.slo with Tenant.Strict -> 0 | Tenant.Best_effort -> 1 in
    List.iter f
      (List.stable_sort (fun a b -> compare (rank a, a.spec.Tenant.id) (rank b, b.spec.Tenant.id)) states)
  in
  let retry_pending t =
    in_slo_order (fun st ->
        if st.arrived && st.placement = None && not st.gave_up then admit t st)
  in
  let apply_fleet_event t ev =
    let displaced = ref [] in
    let refresh_all () =
      in_slo_order (fun st ->
          if st.arrived && refresh t st then displaced := st.spec.Tenant.id :: !displaced)
    in
    (match ev with
    | Fault.Device_down d ->
      view := Cluster.prune_device !view d;
      refresh_all ()
    | Fault.Device_up d ->
      view := Cluster.restore_device !view d;
      retry_pending t;
      (* Placed-but-degraded tenants try to climb back to a clean mapping
         on the recovered fleet. *)
      in_slo_order (fun st ->
          if st.arrived && st.placement <> None && compute_health st = Degraded then
            ignore (refresh t st))
    | Fault.Link_down l ->
      let l = norm_pair l in
      if not (List.mem l !down_links) then down_links := List.sort compare (l :: !down_links);
      refresh_all ()
    | Fault.Link_up l ->
      let l = norm_pair l in
      down_links := List.filter (fun x -> x <> l) !down_links;
      retry_pending t;
      in_slo_order (fun st ->
          if st.arrived && st.placement <> None && compute_health st = Degraded then
            ignore (refresh t st))
    | Fault.Loss_rate r -> loss := r);
    let displaced = List.sort compare !displaced in
    match ev with
    | Fault.Device_down _ | Fault.Link_down _ ->
      let pending =
        List.filter_map
          (fun st ->
            if List.mem st.spec.Tenant.id displaced && st.placement = None && not st.gave_up
            then Some st.spec.Tenant.id
            else None)
          states
      in
      let abandoned =
        List.exists
          (fun st -> List.mem st.spec.Tenant.id displaced && st.gave_up)
          states
      in
      faults :=
        {
          f_at = t;
          f_event = Fault.describe_event ev;
          f_displaced = displaced;
          f_pending = pending;
          f_abandoned = abandoned;
          f_recovered_at = (if pending = [] && not abandoned then Some t else None);
        }
        :: !faults
    | _ -> ()
  in
  (* Deterministic shortest routes (BFS, lowest-index tie-break) of every
     placed tenant's cut pairs over the live topology; the per-physical-
     link tenant count is the bandwidth-sharing exposure co-location
     creates. *)
  let link_sharing () =
    let adj v w =
      Cluster.alive !view v && Cluster.alive !view w
      && Cluster.dist cluster v w = 1
      && not (List.mem (norm_pair (v, w)) !down_links)
    in
    let route src dst =
      if src = dst then Some []
      else begin
        let parent = Array.make k (-1) in
        let seen = Array.make k false in
        seen.(src) <- true;
        let q = Queue.create () in
        Queue.add src q;
        while not (Queue.is_empty q) do
          let v = Queue.pop q in
          for w = 0 to k - 1 do
            if (not seen.(w)) && adj v w then begin
              seen.(w) <- true;
              parent.(w) <- v;
              Queue.add w q
            end
          done
        done;
        if not seen.(dst) then None
        else begin
          let rec back v acc = if v = src then acc else back parent.(v) (norm_pair (parent.(v), v) :: acc) in
          Some (back dst [])
        end
      end
    in
    let counts = Hashtbl.create 64 in
    List.iter
      (fun st ->
        match st.placement with
        | None -> ()
        | Some p ->
          let edges =
            List.concat_map
              (fun (i, j) -> match route i j with Some es -> es | None -> [])
              (If.cut_pairs p)
            |> List.sort_uniq compare
          in
          List.iter
            (fun e -> Hashtbl.replace counts e (1 + Option.value ~default:0 (Hashtbl.find_opt counts e)))
            edges)
      states;
    Hashtbl.fold (fun _ n acc -> max n acc) counts 0
  in
  let sample t label =
    let alive = Cluster.alive_devices !view in
    let owned_alive =
      List.concat_map owned states |> List.filter (Cluster.alive !view) |> List.sort_uniq compare
    in
    let utilization =
      if alive = [] then 0.0
      else float_of_int (List.length owned_alive) /. float_of_int (List.length alive)
    in
    let free = List.filter (fun d -> not (List.mem d owned_alive)) alive in
    let fragmentation =
      if free = [] then 0.0
      else begin
        let per_node = Hashtbl.create 8 in
        List.iter
          (fun d ->
            let n = cluster.Cluster.node_of d in
            Hashtbl.replace per_node n (1 + Option.value ~default:0 (Hashtbl.find_opt per_node n)))
          free;
        let largest = Hashtbl.fold (fun _ n acc -> max n acc) per_node 0 in
        1.0 -. (float_of_int largest /. float_of_int (List.length free))
      end
    in
    samples :=
      {
        t_s = t;
        label;
        placed = List.length (List.filter (fun st -> st.placement <> None) states);
        dead_devices = k - Cluster.num_alive !view;
        utilization;
        fragmentation;
        max_link_sharers = link_sharing ();
      }
      :: !samples
  in

  (* --------------------------------------------------------------- *)
  (* Event loop: fleet events, arrivals and scheduled retries merged in
     time order; ties resolve fleet-first (the fault is visible to the
     placement it displaces), then arrivals, then retries, each in a
     fixed id order.  Pure simulated time — nothing here reads a clock. *)
  let fleet = ref (List.filter (fun (t, _) -> t <= horizon) (Fault.timeline_events timeline)) in
  let pending_arrivals = ref states in
  let next_time () =
    let cands =
      (match !fleet with (t, _) :: _ -> [ t ] | [] -> [])
      @ (match !pending_arrivals with st :: _ -> [ st.spec.Tenant.arrival_s ] | [] -> [])
      @ List.filter_map (fun st -> if st.gave_up then None else st.retry_at) states
    in
    match cands with [] -> None | l -> Some (List.fold_left Float.min infinity l)
  in
  let rec step () =
    match next_time () with
    | None -> ()
    | Some t when t > horizon -> ()
    | Some t ->
      accrue t;
      let labels = ref [] in
      let rec drain_fleet () =
        match !fleet with
        | (te, ev) :: rest when te <= t ->
          fleet := rest;
          labels := Fault.describe_event ev :: !labels;
          apply_fleet_event t ev;
          drain_fleet ()
        | _ -> ()
      in
      drain_fleet ();
      let rec drain_arrivals () =
        match !pending_arrivals with
        | st :: rest when st.spec.Tenant.arrival_s <= t ->
          pending_arrivals := rest;
          st.arrived <- true;
          st.last_t <- t;
          labels := Printf.sprintf "arrive(%s#%d)" st.spec.Tenant.name st.spec.Tenant.id :: !labels;
          admit t st;
          drain_arrivals ()
        | _ -> ()
      in
      drain_arrivals ();
      let retried = ref false in
      in_slo_order (fun st ->
          match st.retry_at with
          | Some tr when tr <= t && st.placement = None && not st.gave_up ->
            st.retry_at <- None;
            retried := true;
            admit t st
          | _ -> ());
      if !retried then labels := "retry" :: !labels;
      update_health ();
      sample t (String.concat "; " (List.rev !labels));
      step ()
  in
  update_health ();
  step ();
  accrue horizon;

  let tenant_reports =
    List.map
      (fun st ->
        {
          tenant = st.spec;
          final_health = st.health;
          failed_over = st.failed_over;
          gave_up = st.gave_up;
          placements = st.placements;
          replacements = st.replacements;
          attempts = st.total_attempts;
          healthy_s = st.healthy_s;
          degraded_s = st.degraded_s;
          down_s = st.down_s;
          devices = owned st;
        })
      (List.sort (fun a b -> compare a.spec.Tenant.id b.spec.Tenant.id) states)
  in
  let fault_reports =
    List.rev_map
      (fun f ->
        {
          at_s = f.f_at;
          event = f.f_event;
          displaced = f.f_displaced;
          ttr_s = Option.map (fun r -> r -. f.f_at) f.f_recovered_at;
        })
      !faults
  in
  (* Fragment counters since the reset at entry: single-flight makes the
     hit/miss totals a pure function of the subproblem multiset, so they
     are identical across repeats and [--jobs] values. *)
  let fs = Tapa_cs_floorplan.Partition.fragment_stats () in
  {
    boards = k;
    horizon_s = horizon;
    seed = config.seed;
    tenants = tenant_reports;
    faults = fault_reports;
    timeline = List.rev !samples;
    reused = !reused;
    frag_hits = fs.Tapa_cs_floorplan.Partition.frag_hits;
    frag_misses = fs.Tapa_cs_floorplan.Partition.frag_misses;
    groups_resolved = fs.Tapa_cs_floorplan.Partition.groups_resolved;
  }

(* ------------------------------------------------------------------ *)
(* Summaries *)

let total_tenant_s stats =
  List.fold_left
    (fun acc (r : tenant_report) -> acc +. r.healthy_s +. r.degraded_s +. r.down_s)
    0.0 stats.tenants

let mean_ttr_s stats =
  let ttrs = List.filter_map (fun f -> f.ttr_s) stats.faults in
  match ttrs with
  | [] -> None
  | l -> Some (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l))

(* ------------------------------------------------------------------ *)
(* Machine-readable stats.  Deliberately free of wall-clock fields
   (solver runtimes etc.) so the emitted bytes are a pure function of
   (cluster, workload, timeline, config) — the determinism contract the
   farmgate pins across runs and [--jobs] values. *)

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_float f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let stats_json stats =
  let b = Buffer.create 4096 in
  let str s =
    Buffer.add_char b '"';
    buf_escape b s;
    Buffer.add_char b '"'
  in
  let field first name v =
    if not first then Buffer.add_char b ',';
    str name;
    Buffer.add_char b ':';
    v ()
  in
  let int_list l =
    Buffer.add_char b '[';
    List.iteri
      (fun i d ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (string_of_int d))
      l;
    Buffer.add_char b ']'
  in
  Buffer.add_char b '{';
  field true "boards" (fun () -> Buffer.add_string b (string_of_int stats.boards));
  field false "horizon_s" (fun () -> Buffer.add_string b (json_float stats.horizon_s));
  field false "seed" (fun () -> Buffer.add_string b (string_of_int stats.seed));
  field false "reused_placements" (fun () -> Buffer.add_string b (string_of_int stats.reused));
  field false "frag_hits" (fun () -> Buffer.add_string b (string_of_int stats.frag_hits));
  field false "frag_misses" (fun () -> Buffer.add_string b (string_of_int stats.frag_misses));
  field false "groups_resolved" (fun () ->
      Buffer.add_string b (string_of_int stats.groups_resolved));
  field false "total_tenant_s" (fun () -> Buffer.add_string b (json_float (total_tenant_s stats)));
  field false "mean_ttr_s" (fun () ->
      Buffer.add_string b
        (match mean_ttr_s stats with None -> "null" | Some v -> json_float v));
  field false "tenants" (fun () ->
      Buffer.add_char b '[';
      List.iteri
        (fun i r ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '{';
          field true "id" (fun () -> Buffer.add_string b (string_of_int r.tenant.Tenant.id));
          field false "name" (fun () -> str r.tenant.Tenant.name);
          field false "slo" (fun () -> str (Tenant.slo_label r.tenant.Tenant.slo));
          field false "arrival_s" (fun () ->
              Buffer.add_string b (json_float r.tenant.Tenant.arrival_s));
          field false "final_health" (fun () -> str (health_label r.final_health));
          field false "failed_over" (fun () ->
              Buffer.add_string b (string_of_bool r.failed_over));
          field false "gave_up" (fun () -> Buffer.add_string b (string_of_bool r.gave_up));
          field false "placements" (fun () -> Buffer.add_string b (string_of_int r.placements));
          field false "replacements" (fun () ->
              Buffer.add_string b (string_of_int r.replacements));
          field false "attempts" (fun () -> Buffer.add_string b (string_of_int r.attempts));
          field false "healthy_s" (fun () -> Buffer.add_string b (json_float r.healthy_s));
          field false "degraded_s" (fun () -> Buffer.add_string b (json_float r.degraded_s));
          field false "down_s" (fun () -> Buffer.add_string b (json_float r.down_s));
          field false "devices" (fun () -> int_list r.devices);
          Buffer.add_char b '}')
        stats.tenants;
      Buffer.add_char b ']');
  field false "faults" (fun () ->
      Buffer.add_char b '[';
      List.iteri
        (fun i f ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '{';
          field true "at_s" (fun () -> Buffer.add_string b (json_float f.at_s));
          field false "event" (fun () -> str f.event);
          field false "displaced" (fun () -> int_list f.displaced);
          field false "ttr_s" (fun () ->
              Buffer.add_string b
                (match f.ttr_s with None -> "null" | Some v -> json_float v));
          Buffer.add_char b '}')
        stats.faults;
      Buffer.add_char b ']');
  field false "timeline" (fun () ->
      Buffer.add_char b '[';
      List.iteri
        (fun i s ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '{';
          field true "t_s" (fun () -> Buffer.add_string b (json_float s.t_s));
          field false "label" (fun () -> str s.label);
          field false "placed" (fun () -> Buffer.add_string b (string_of_int s.placed));
          field false "dead_devices" (fun () ->
              Buffer.add_string b (string_of_int s.dead_devices));
          field false "utilization" (fun () -> Buffer.add_string b (json_float s.utilization));
          field false "fragmentation" (fun () ->
              Buffer.add_string b (json_float s.fragmentation));
          field false "max_link_sharers" (fun () ->
              Buffer.add_string b (string_of_int s.max_link_sharers));
          Buffer.add_char b '}')
        stats.timeline;
      Buffer.add_char b ']');
  Buffer.add_char b '}';
  Buffer.contents b

let pp_summary fmt stats =
  let n = List.length stats.tenants in
  let healthy =
    List.length (List.filter (fun r -> r.final_health = Healthy) stats.tenants)
  in
  let degraded =
    List.length (List.filter (fun r -> r.final_health = Degraded) stats.tenants)
  in
  let down = n - healthy - degraded in
  Format.fprintf fmt
    "farm: %d board(s), %d tenant(s) over %.0f s: %d healthy, %d degraded, %d down@." stats.boards
    n stats.horizon_s healthy degraded down;
  let t = total_tenant_s stats in
  let h = List.fold_left (fun a (r : tenant_report) -> a +. r.healthy_s) 0.0 stats.tenants in
  let d = List.fold_left (fun a (r : tenant_report) -> a +. r.degraded_s) 0.0 stats.tenants in
  let dn = List.fold_left (fun a (r : tenant_report) -> a +. r.down_s) 0.0 stats.tenants in
  if t > 0.0 then
    Format.fprintf fmt
      "  tenant-time: %.1f s total = %.1f healthy + %.1f degraded + %.1f down (%.1f%% available)@."
      t h d dn
      (100.0 *. (h +. d) /. t);
  Format.fprintf fmt "  faults: %d; " (List.length stats.faults);
  (match mean_ttr_s stats with
  | None -> Format.fprintf fmt "no recoveries measured"
  | Some m -> Format.fprintf fmt "mean time-to-recover %.1f s" m);
  Format.fprintf fmt "; %d placement(s) reused unchanged@." stats.reused;
  List.iter
    (fun r ->
      if r.final_health <> Healthy || r.failed_over then
        Format.fprintf fmt "  tenant %d (%s, %s): %s%s%s@." r.tenant.Tenant.id
          r.tenant.Tenant.name
          (Tenant.slo_label r.tenant.Tenant.slo)
          (health_label r.final_health)
          (if r.failed_over then ", failed over" else "")
          (if r.gave_up then ", gave up after retry budget" else ""))
    stats.tenants
