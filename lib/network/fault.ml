module Prng = Tapa_cs_util.Prng

type link_fault = {
  loss_rate : float;
  down : (float * float) list;
  jitter_s : float;
}

let check_fault f =
  if not (f.loss_rate >= 0.0 && f.loss_rate < 1.0) then
    invalid_arg (Printf.sprintf "Fault: loss_rate %g outside [0, 1)" f.loss_rate);
  if f.jitter_s < 0.0 then invalid_arg "Fault: negative jitter";
  List.iter
    (fun (s, e) -> if s < 0.0 || e < s then invalid_arg "Fault: malformed down window")
    f.down

(* Sort by start and coalesce overlapping or touching windows, so every
   [link_fault] that goes through the constructor satisfies the
   "disjoint and sorted by start" invariant [add_down_windows] needs.
   Zero-length windows stall nothing and are dropped. *)
let normalize_down down =
  List.iter
    (fun (s, e) -> if s < 0.0 || e < s then invalid_arg "Fault: malformed down window")
    down;
  let sorted = List.sort compare (List.filter (fun (s, e) -> e > s) down) in
  let rec merge = function
    | (s1, e1) :: (s2, e2) :: rest when s2 <= e1 -> merge ((s1, Float.max e1 e2) :: rest)
    | w :: rest -> w :: merge rest
    | [] -> []
  in
  merge sorted

let link_fault ?(loss_rate = 0.0) ?(down = []) ?(jitter_s = 0.0) () =
  let f = { loss_rate; down = normalize_down down; jitter_s } in
  check_fault f;
  f

let ideal = link_fault ()
let lossy p = link_fault ~loss_rate:p ()

type retrans = { window : int; timeout_s : float; backoff : float; max_retries : int }

let roce_v2 = { window = 16; timeout_s = 20e-6; backoff = 2.0; max_retries = 8 }

exception Link_lost of { link : string; retries : int }

(* Under go-back-N, a delivered packet costs one successful transmission
   plus, for each of its losses, a full window of N resent packets.  A
   packet is lost Geom(p) times before success — expectation p/(1-p) —
   so the expected wire transmissions per delivered packet are
   1 + N * p/(1-p) = (1 - p + N*p) / (1 - p). *)
let expected_transmissions ~loss_rate r =
  if loss_rate <= 0.0 then 1.0
  else (1.0 -. loss_rate +. (float_of_int r.window *. loss_rate)) /. (1.0 -. loss_rate)

(* The j-th consecutive loss of a packet (probability p^(j+1)) stalls the
   sender timeout * backoff^j.  Summing over j < max_retries gives
   timeout * p * sum_{j=0}^{R-1} (p*backoff)^j — a partial geometric sum,
   finite even when p*backoff >= 1. *)
let expected_timeout_s ~loss_rate r =
  if loss_rate <= 0.0 then 0.0
  else begin
    let ratio = loss_rate *. r.backoff in
    let sum = ref 0.0 and term = ref 1.0 in
    for _ = 1 to r.max_retries do
      sum := !sum +. !term;
      term := !term *. ratio
    done;
    r.timeout_s *. loss_rate *. !sum
  end

(* Per-packet ideal service time on the wire: serialized bytes plus the
   fixed per-packet overhead (same decomposition as Link.transfer_time_s). *)
let packet_service_s ~packet_bytes link =
  let open Link in
  (float_of_int packet_bytes /. (link.bandwidth_gbytes *. link.derate *. 1e9))
  +. (link.per_packet_overhead_ns *. 1e-9)

let slowdown ?packet_bytes ?(retrans = roce_v2) ~loss_rate link =
  let packet_bytes =
    match packet_bytes with Some b -> b | None -> link.Link.default_packet_bytes
  in
  if loss_rate <= 0.0 then 1.0
  else begin
    let service = packet_service_s ~packet_bytes link in
    let extra =
      ((expected_transmissions ~loss_rate retrans -. 1.0) *. service)
      +. expected_timeout_s ~loss_rate retrans
    in
    1.0 +. (extra /. service)
  end

(* Stretch a busy interval [at, at + dur) past every down window it
   overlaps: each overlapped window adds its remaining length, pushing
   the completion time (and possibly into the next window — windows are
   sorted, so a single left-to-right fold settles it). *)
let add_down_windows ~at ~down dur =
  List.fold_left
    (fun finish (s, e) -> if s < finish && e > at then finish +. (e -. Float.max s at) else finish)
    (at +. dur) down
  -. at

let num_packets ~packet_bytes bytes =
  if bytes <= 0.0 then 1.0 else Float.ceil (bytes /. float_of_int packet_bytes)

let transfer_time_s ?packet_bytes ?(retrans = roce_v2) ?(at = 0.0) ~fault link bytes =
  check_fault fault;
  let packet_bytes =
    match packet_bytes with Some b -> b | None -> link.Link.default_packet_bytes
  in
  let ideal_t = Link.transfer_time_s ~packet_bytes link bytes in
  let packets = num_packets ~packet_bytes bytes in
  let p = fault.loss_rate in
  let retry_wire =
    if p <= 0.0 then 0.0
    else
      (expected_transmissions ~loss_rate:p retrans -. 1.0)
      *. packets *. packet_service_s ~packet_bytes link
  in
  let timeouts = packets *. expected_timeout_s ~loss_rate:p retrans in
  let jitter = packets *. fault.jitter_s /. 2.0 in
  add_down_windows ~at ~down:fault.down (ideal_t +. retry_wire +. timeouts +. jitter)

let sample_transfer_time_s ?packet_bytes ?(retrans = roce_v2) ?(at = 0.0) ~fault ~prng link
    bytes =
  check_fault fault;
  let packet_bytes =
    match packet_bytes with Some b -> b | None -> link.Link.default_packet_bytes
  in
  let open Link in
  let packets = int_of_float (num_packets ~packet_bytes bytes) in
  let service = packet_service_s ~packet_bytes link in
  let t = ref (at +. (link.one_way_latency_us *. 1e-6)) in
  let advance dur = t := !t +. add_down_windows ~at:!t ~down:fault.down dur in
  for _ = 1 to packets do
    let jitter = if fault.jitter_s > 0.0 then Prng.float prng fault.jitter_s else 0.0 in
    advance (service +. jitter);
    (* Bernoulli losses with backed-off timeouts; each loss also resends
       the in-flight window behind the lost packet (go-back-N). *)
    let retries = ref 0 in
    while fault.loss_rate > 0.0 && Prng.float prng 1.0 < fault.loss_rate do
      if !retries >= retrans.max_retries then
        raise (Link_lost { link = link.name; retries = !retries });
      let timeout = retrans.timeout_s *. (retrans.backoff ** float_of_int !retries) in
      advance (timeout +. (float_of_int retrans.window *. service));
      incr retries
    done
  done;
  !t -. at

type plan = {
  seed : int;
  loss_rate : float;
  failed_devices : int list;
  failed_links : (int * int) list;
  device_halts : (int * float) list;
  fifo_stalls : (int * float * float) list;
}

let no_faults =
  {
    seed = 0;
    loss_rate = 0.0;
    failed_devices = [];
    failed_links = [];
    device_halts = [];
    fifo_stalls = [];
  }

let make ?(seed = 0) ?(loss_rate = 0.0) ?(failed_devices = []) ?(failed_links = [])
    ?(device_halts = []) ?(fifo_stalls = []) () =
  if not (loss_rate >= 0.0 && loss_rate < 1.0) then
    invalid_arg (Printf.sprintf "Fault.make: loss_rate %g outside [0, 1)" loss_rate);
  List.iter
    (fun (_, t) -> if t < 0.0 then invalid_arg "Fault.make: negative halt time")
    device_halts;
  List.iter
    (fun (_, s, d) ->
      if s < 0.0 || d < 0.0 then invalid_arg "Fault.make: negative stall time/duration")
    fifo_stalls;
  let failed_devices = List.sort_uniq compare failed_devices in
  let failed_links =
    List.sort_uniq compare (List.map (fun (a, b) -> (min a b, max a b)) failed_links)
  in
  { seed; loss_rate; failed_devices; failed_links; device_halts; fifo_stalls }

let is_trivial p =
  p.loss_rate = 0.0 && p.failed_devices = [] && p.failed_links = [] && p.device_halts = []
  && p.fifo_stalls = []

let describe p =
  let items = ref [] in
  let add s = items := s :: !items in
  if p.loss_rate > 0.0 then add (Printf.sprintf "link loss rate %g" p.loss_rate);
  List.iter (fun d -> add (Printf.sprintf "FPGA %d failed" d)) p.failed_devices;
  List.iter (fun (a, b) -> add (Printf.sprintf "link %d-%d down" a b)) p.failed_links;
  List.iter
    (fun (d, t) -> add (Printf.sprintf "FPGA %d halts at %.3g s" d t))
    p.device_halts;
  List.iter
    (fun (f, s, d) -> add (Printf.sprintf "FIFO %d stalled %.3g s at %.3g s" f d s))
    p.fifo_stalls;
  List.rev !items

let pp ppf p =
  if is_trivial p then Format.fprintf ppf "no faults"
  else
    Format.fprintf ppf "@[<hov 2>faults(seed=%d):@ %a@]" p.seed
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
         Format.pp_print_string)
      (describe p)

(* ------------------------------------------------------------------ *)
(* Fleet fault/recovery timelines                                      *)
(* ------------------------------------------------------------------ *)

let parse_link_spec s =
  match String.split_on_char ':' (String.trim s) with
  | [ a; b ] -> (
    match (int_of_string_opt (String.trim a), int_of_string_opt (String.trim b)) with
    | Some a, Some b when a >= 0 && b >= 0 && a <> b -> Ok (min a b, max a b)
    | Some a, Some b when a = b -> Error (Printf.sprintf "link %d:%d connects a device to itself" a b)
    | Some _, Some _ -> Error "device indices must be non-negative"
    | _ -> Error (Printf.sprintf "%S is not a pair of device indices" s))
  | _ -> Error (Printf.sprintf "%S is not of the form A:B" s)

type fleet_event =
  | Device_down of int
  | Device_up of int
  | Link_down of (int * int)
  | Link_up of (int * int)
  | Loss_rate of float

type timeline_entry = { at_s : float; event : fleet_event }
type timeline = timeline_entry list

let check_event = function
  | Device_down d | Device_up d ->
    if d < 0 then invalid_arg "Fault.timeline: negative device index"
  | Link_down (a, b) | Link_up (a, b) ->
    if a < 0 || b < 0 then invalid_arg "Fault.timeline: negative device index";
    if a = b then invalid_arg "Fault.timeline: self-link"
  | Loss_rate r ->
    if not (r >= 0.0 && r < 1.0) then
      invalid_arg (Printf.sprintf "Fault.timeline: loss rate %g outside [0, 1)" r)

let normalize_event = function
  | Link_down (a, b) -> Link_down (min a b, max a b)
  | Link_up (a, b) -> Link_up (min a b, max a b)
  | e -> e

let timeline events =
  let entries =
    List.map
      (fun (at_s, event) ->
        if at_s < 0.0 || not (Float.is_finite at_s) then
          invalid_arg "Fault.timeline: negative or non-finite timestamp";
        check_event event;
        { at_s; event = normalize_event event })
      events
  in
  List.stable_sort (fun a b -> Float.compare a.at_s b.at_s) entries

let timeline_events tl = List.map (fun e -> (e.at_s, e.event)) tl

(* Fold matched down/up events into [(start, stop))] windows, closing a
   dangling down at the horizon, then normalize through the link_fault
   constructor so the result obeys its disjoint-and-sorted contract. *)
let windows_of ~horizon_s ~is_down ~is_up tl =
  let open_since = ref None in
  let windows = ref [] in
  List.iter
    (fun { at_s; event } ->
      if at_s < horizon_s then begin
        if is_down event then begin
          match !open_since with Some _ -> () | None -> open_since := Some at_s
        end
        else if is_up event then begin
          match !open_since with
          | Some s ->
            windows := (s, at_s) :: !windows;
            open_since := None
          | None -> ()
        end
      end)
    tl;
  (match !open_since with Some s -> windows := (s, horizon_s) :: !windows | None -> ());
  (link_fault ~down:!windows ()).down

let device_down_windows tl ~horizon_s d =
  windows_of ~horizon_s
    ~is_down:(function Device_down x -> x = d | _ -> false)
    ~is_up:(function Device_up x -> x = d | _ -> false)
    tl

let link_down_windows tl ~horizon_s (a, b) =
  let a, b = (min a b, max a b) in
  let own =
    windows_of ~horizon_s
      ~is_down:(function Link_down l -> l = (a, b) | _ -> false)
      ~is_up:(function Link_up l -> l = (a, b) | _ -> false)
      tl
  in
  let ends =
    device_down_windows tl ~horizon_s a @ device_down_windows tl ~horizon_s b
  in
  (link_fault ~down:(own @ ends) ()).down

let loss_episodes tl ~horizon_s =
  let episodes = ref [] in
  let current = ref None in
  List.iter
    (fun { at_s; event } ->
      match event with
      | Loss_rate r when at_s < horizon_s ->
        (match !current with
        | Some (s, rate) when rate > 0.0 && at_s > s -> episodes := (s, at_s, rate) :: !episodes
        | _ -> ());
        current := if r > 0.0 then Some (at_s, r) else None
      | _ -> ())
    tl;
  (match !current with
  | Some (s, rate) when rate > 0.0 && horizon_s > s -> episodes := (s, horizon_s, rate) :: !episodes
  | _ -> ());
  List.rev !episodes

let parse_timeline_entry line =
  let ( let* ) = Result.bind in
  match
    String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")
  with
  | [ t; kind; arg ] -> (
    let* at_s =
      match float_of_string_opt t with
      | Some t when t >= 0.0 && Float.is_finite t -> Ok t
      | _ -> Error (Printf.sprintf "%S is not a non-negative timestamp" t)
    in
    let device () =
      match int_of_string_opt arg with
      | Some d when d >= 0 -> Ok d
      | _ -> Error (Printf.sprintf "%S is not a device index" arg)
    in
    match kind with
    | "device-down" ->
      let* d = device () in
      Ok (at_s, Device_down d)
    | "device-up" ->
      let* d = device () in
      Ok (at_s, Device_up d)
    | "link-down" ->
      let* l = parse_link_spec arg in
      Ok (at_s, Link_down l)
    | "link-up" ->
      let* l = parse_link_spec arg in
      Ok (at_s, Link_up l)
    | "loss" -> (
      match float_of_string_opt arg with
      | Some r when r >= 0.0 && r < 1.0 -> Ok (at_s, Loss_rate r)
      | _ -> Error (Printf.sprintf "%S is not a loss rate in [0, 1)" arg))
    | other ->
      Error
        (Printf.sprintf
           "unknown event %S (expected device-down, device-up, link-down, link-up or loss)"
           other))
  | _ -> Error (Printf.sprintf "%S is not of the form '<t> <event> <arg>'" (String.trim line))

let describe_event = function
  | Device_down d -> Printf.sprintf "device %d down" d
  | Device_up d -> Printf.sprintf "device %d up" d
  | Link_down (a, b) -> Printf.sprintf "link %d-%d down" a b
  | Link_up (a, b) -> Printf.sprintf "link %d-%d up" a b
  | Loss_rate r -> if r > 0.0 then Printf.sprintf "loss episode %g" r else "loss episode ends"

let pp_timeline ppf tl =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf { at_s; event } ->
         Format.fprintf ppf "%8.3f s: %s" at_s (describe_event event)))
    tl
