module Prng = Tapa_cs_util.Prng

type link_fault = {
  loss_rate : float;
  down : (float * float) list;
  jitter_s : float;
}

let ideal = { loss_rate = 0.0; down = []; jitter_s = 0.0 }

let check_fault f =
  if not (f.loss_rate >= 0.0 && f.loss_rate < 1.0) then
    invalid_arg (Printf.sprintf "Fault: loss_rate %g outside [0, 1)" f.loss_rate);
  if f.jitter_s < 0.0 then invalid_arg "Fault: negative jitter";
  List.iter
    (fun (s, e) -> if s < 0.0 || e < s then invalid_arg "Fault: malformed down window")
    f.down

let lossy p =
  let f = { ideal with loss_rate = p } in
  check_fault f;
  f

type retrans = { window : int; timeout_s : float; backoff : float; max_retries : int }

let roce_v2 = { window = 16; timeout_s = 20e-6; backoff = 2.0; max_retries = 8 }

exception Link_lost of { link : string; retries : int }

(* Under go-back-N, a delivered packet costs one successful transmission
   plus, for each of its losses, a full window of N resent packets.  A
   packet is lost Geom(p) times before success — expectation p/(1-p) —
   so the expected wire transmissions per delivered packet are
   1 + N * p/(1-p) = (1 - p + N*p) / (1 - p). *)
let expected_transmissions ~loss_rate r =
  if loss_rate <= 0.0 then 1.0
  else (1.0 -. loss_rate +. (float_of_int r.window *. loss_rate)) /. (1.0 -. loss_rate)

(* The j-th consecutive loss of a packet (probability p^(j+1)) stalls the
   sender timeout * backoff^j.  Summing over j < max_retries gives
   timeout * p * sum_{j=0}^{R-1} (p*backoff)^j — a partial geometric sum,
   finite even when p*backoff >= 1. *)
let expected_timeout_s ~loss_rate r =
  if loss_rate <= 0.0 then 0.0
  else begin
    let ratio = loss_rate *. r.backoff in
    let sum = ref 0.0 and term = ref 1.0 in
    for _ = 1 to r.max_retries do
      sum := !sum +. !term;
      term := !term *. ratio
    done;
    r.timeout_s *. loss_rate *. !sum
  end

(* Per-packet ideal service time on the wire: serialized bytes plus the
   fixed per-packet overhead (same decomposition as Link.transfer_time_s). *)
let packet_service_s ~packet_bytes link =
  let open Link in
  (float_of_int packet_bytes /. (link.bandwidth_gbytes *. link.derate *. 1e9))
  +. (link.per_packet_overhead_ns *. 1e-9)

let slowdown ?packet_bytes ?(retrans = roce_v2) ~loss_rate link =
  let packet_bytes =
    match packet_bytes with Some b -> b | None -> link.Link.default_packet_bytes
  in
  if loss_rate <= 0.0 then 1.0
  else begin
    let service = packet_service_s ~packet_bytes link in
    let extra =
      ((expected_transmissions ~loss_rate retrans -. 1.0) *. service)
      +. expected_timeout_s ~loss_rate retrans
    in
    1.0 +. (extra /. service)
  end

(* Stretch a busy interval [at, at + dur) past every down window it
   overlaps: each overlapped window adds its remaining length, pushing
   the completion time (and possibly into the next window — windows are
   sorted, so a single left-to-right fold settles it). *)
let add_down_windows ~at ~down dur =
  List.fold_left
    (fun finish (s, e) -> if s < finish && e > at then finish +. (e -. Float.max s at) else finish)
    (at +. dur) down
  -. at

let num_packets ~packet_bytes bytes =
  if bytes <= 0.0 then 1.0 else Float.ceil (bytes /. float_of_int packet_bytes)

let transfer_time_s ?packet_bytes ?(retrans = roce_v2) ?(at = 0.0) ~fault link bytes =
  check_fault fault;
  let packet_bytes =
    match packet_bytes with Some b -> b | None -> link.Link.default_packet_bytes
  in
  let ideal_t = Link.transfer_time_s ~packet_bytes link bytes in
  let packets = num_packets ~packet_bytes bytes in
  let p = fault.loss_rate in
  let retry_wire =
    if p <= 0.0 then 0.0
    else
      (expected_transmissions ~loss_rate:p retrans -. 1.0)
      *. packets *. packet_service_s ~packet_bytes link
  in
  let timeouts = packets *. expected_timeout_s ~loss_rate:p retrans in
  let jitter = packets *. fault.jitter_s /. 2.0 in
  add_down_windows ~at ~down:fault.down (ideal_t +. retry_wire +. timeouts +. jitter)

let sample_transfer_time_s ?packet_bytes ?(retrans = roce_v2) ?(at = 0.0) ~fault ~prng link
    bytes =
  check_fault fault;
  let packet_bytes =
    match packet_bytes with Some b -> b | None -> link.Link.default_packet_bytes
  in
  let open Link in
  let packets = int_of_float (num_packets ~packet_bytes bytes) in
  let service = packet_service_s ~packet_bytes link in
  let t = ref (at +. (link.one_way_latency_us *. 1e-6)) in
  let advance dur = t := !t +. add_down_windows ~at:!t ~down:fault.down dur in
  for _ = 1 to packets do
    let jitter = if fault.jitter_s > 0.0 then Prng.float prng fault.jitter_s else 0.0 in
    advance (service +. jitter);
    (* Bernoulli losses with backed-off timeouts; each loss also resends
       the in-flight window behind the lost packet (go-back-N). *)
    let retries = ref 0 in
    while fault.loss_rate > 0.0 && Prng.float prng 1.0 < fault.loss_rate do
      if !retries >= retrans.max_retries then
        raise (Link_lost { link = link.name; retries = !retries });
      let timeout = retrans.timeout_s *. (retrans.backoff ** float_of_int !retries) in
      advance (timeout +. (float_of_int retrans.window *. service));
      incr retries
    done
  done;
  !t -. at

type plan = {
  seed : int;
  loss_rate : float;
  failed_devices : int list;
  failed_links : (int * int) list;
  device_halts : (int * float) list;
  fifo_stalls : (int * float * float) list;
}

let no_faults =
  {
    seed = 0;
    loss_rate = 0.0;
    failed_devices = [];
    failed_links = [];
    device_halts = [];
    fifo_stalls = [];
  }

let make ?(seed = 0) ?(loss_rate = 0.0) ?(failed_devices = []) ?(failed_links = [])
    ?(device_halts = []) ?(fifo_stalls = []) () =
  if not (loss_rate >= 0.0 && loss_rate < 1.0) then
    invalid_arg (Printf.sprintf "Fault.make: loss_rate %g outside [0, 1)" loss_rate);
  List.iter
    (fun (_, t) -> if t < 0.0 then invalid_arg "Fault.make: negative halt time")
    device_halts;
  List.iter
    (fun (_, s, d) ->
      if s < 0.0 || d < 0.0 then invalid_arg "Fault.make: negative stall time/duration")
    fifo_stalls;
  let failed_devices = List.sort_uniq compare failed_devices in
  let failed_links =
    List.sort_uniq compare (List.map (fun (a, b) -> (min a b, max a b)) failed_links)
  in
  { seed; loss_rate; failed_devices; failed_links; device_halts; fifo_stalls }

let is_trivial p =
  p.loss_rate = 0.0 && p.failed_devices = [] && p.failed_links = [] && p.device_halts = []
  && p.fifo_stalls = []

let describe p =
  let items = ref [] in
  let add s = items := s :: !items in
  if p.loss_rate > 0.0 then add (Printf.sprintf "link loss rate %g" p.loss_rate);
  List.iter (fun d -> add (Printf.sprintf "FPGA %d failed" d)) p.failed_devices;
  List.iter (fun (a, b) -> add (Printf.sprintf "link %d-%d down" a b)) p.failed_links;
  List.iter
    (fun (d, t) -> add (Printf.sprintf "FPGA %d halts at %.3g s" d t))
    p.device_halts;
  List.iter
    (fun (f, s, d) -> add (Printf.sprintf "FIFO %d stalled %.3g s at %.3g s" f d s))
    p.fifo_stalls;
  List.rev !items

let pp ppf p =
  if is_trivial p then Format.fprintf ppf "no faults"
  else
    Format.fprintf ppf "@[<hov 2>faults(seed=%d):@ %a@]" p.seed
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
         Format.pp_print_string)
      (describe p)
