(** Deterministic link-fault model and RoCE-v2-style recovery.

    Real QSFP28/RoCE-v2 deployments (§4.4) survive dropped packets and
    downed ports: the NIC's go-back-N retransmission resends the lost
    packet plus everything already in flight behind it, pacing retries
    with an exponentially backed-off timeout.  This module models that
    recovery twice over:

    - {!transfer_time_s} gives the {e expected} completion time in closed
      form, so the degradation is analyzable and unit-testable — at loss
      rate 0 (and no jitter / down windows) it equals
      {!Link.transfer_time_s} exactly, and it is never smaller;
    - {!sample_transfer_time_s} draws one concrete outcome from a
      {!Tapa_cs_util.Prng.t}, matching the repo's bit-reproducibility
      contract: same seed, same sampled timeline.

    {!plan} is the compile/sim-level fault description the compiler and
    the simulator thread through their pipelines. *)

type link_fault = {
  loss_rate : float;  (** per-packet loss probability, [0, 1) *)
  down : (float * float) list;
      (** absolute [(start, stop))] outage windows in seconds, disjoint
          and sorted by start; the link makes no progress inside one *)
  jitter_s : float;  (** per-packet jitter, uniform over [0, jitter_s] *)
}

val ideal : link_fault
(** No loss, no outages, no jitter. *)

val lossy : float -> link_fault
(** [lossy p] is {!ideal} with [loss_rate = p]. *)

val link_fault :
  ?loss_rate:float -> ?down:(float * float) list -> ?jitter_s:float -> unit -> link_fault
(** The validating constructor every fault description should go through
    (and {!ideal} / {!lossy} do): [down] windows are sorted by start and
    overlapping or touching windows are merged, so the result always
    satisfies the "disjoint and sorted" invariant the record type
    documents.  Zero-length windows are dropped.
    @raise Invalid_argument on a loss rate outside [0, 1), a negative
    jitter, a negative window start, or a window whose stop precedes its
    start. *)

type retrans = {
  window : int;  (** go-back-N window: packets in flight per loss event *)
  timeout_s : float;  (** initial retransmission timeout *)
  backoff : float;  (** >= 1: timeout multiplier per consecutive loss *)
  max_retries : int;  (** consecutive losses before the link gives up *)
}

val roce_v2 : retrans
(** Defaults shaped after RoCE-v2 NIC behaviour over one QSFP28 port:
    16-packet window, 20 us initial timeout, doubling per retry, 8
    retries. *)

exception
  Link_lost of {
    link : string;
    retries : int;  (** consecutive losses when the link gave up *)
  }

val expected_transmissions : loss_rate:float -> retrans -> float
(** Expected wire transmissions per delivered packet under go-back-N:
    [(1 - p + N*p) / (1 - p)].  Every loss retransmits the lost packet
    plus the [N - 1] packets behind it in the window; 1 at [p = 0]. *)

val expected_timeout_s : loss_rate:float -> retrans -> float
(** Expected timeout stall per delivered packet with exponential backoff:
    [timeout * p * sum_{j=0}^{max_retries-1} (p*backoff)^j] — the partial
    geometric sum, so it stays finite even when [p * backoff >= 1].
    0 at [p = 0]. *)

val slowdown : ?packet_bytes:int -> ?retrans:retrans -> loss_rate:float -> Link.t -> float
(** Expected per-packet service-time inflation factor (>= 1) of a lossy
    link versus the ideal one — the factor the simulator derates link
    servers by. *)

val transfer_time_s :
  ?packet_bytes:int -> ?retrans:retrans -> ?at:float -> fault:link_fault -> Link.t -> float -> float
(** Expected one-message transfer time under the fault model, for a
    transfer starting at absolute time [at] (default 0): the ideal
    {!Link.transfer_time_s} plus expected retransmission wire time,
    expected timeout stalls, mean jitter, and the full length of every
    down window the busy interval overlaps.

    Equals {!Link.transfer_time_s} when [fault = ideal]; never below it.
    @raise Invalid_argument if [loss_rate] is outside [0, 1) or
    [jitter_s] is negative. *)

val sample_transfer_time_s :
  ?packet_bytes:int ->
  ?retrans:retrans ->
  ?at:float ->
  fault:link_fault ->
  prng:Tapa_cs_util.Prng.t ->
  Link.t ->
  float ->
  float
(** One sampled transfer: per-packet Bernoulli losses, per-packet jitter
    draws, go-back-N retransmission with backed-off timeouts, down-window
    stalls.  Deterministic given the {!Tapa_cs_util.Prng.t} state.
    @raise Link_lost when one packet fails [max_retries + 1] times in a
    row. *)

(** {1 Compile/sim-level fault plans} *)

type plan = {
  seed : int;  (** root seed for every stochastic draw under this plan *)
  loss_rate : float;  (** applied to every inter-FPGA link *)
  failed_devices : int list;  (** FPGAs dead before the compile starts *)
  failed_links : (int * int) list;
      (** undirected topology edges (by device index) that are down *)
  device_halts : (int * float) list;  (** (fpga, time_s): dies mid-run *)
  fifo_stalls : (int * float * float) list;
      (** (fifo id, start_s, duration_s): the FIFO stops moving data *)
}

val no_faults : plan

val make :
  ?seed:int ->
  ?loss_rate:float ->
  ?failed_devices:int list ->
  ?failed_links:(int * int) list ->
  ?device_halts:(int * float) list ->
  ?fifo_stalls:(int * float * float) list ->
  unit ->
  plan
(** @raise Invalid_argument on a loss rate outside [0, 1), a negative
    halt/stall time, or a negative stall duration. *)

val is_trivial : plan -> bool
(** [true] when the plan injects nothing (loss 0, no failures/halts/stalls);
    such a plan leaves every pipeline bit-identical to no plan at all. *)

val describe : plan -> string list
(** Human-readable summary of the injected faults, one entry each — the
    [Degraded] reasons the simulator and compiler report. *)

val pp : Format.formatter -> plan -> unit

val parse_link_spec : string -> (int * int, string) Stdlib.result
(** Parse an undirected link as ["A:B"] (two distinct non-negative device
    indices, normalized to [(min, max)]) — the CLI [--fail-link] format.
    [Error] carries the reason for a TCS308 diagnostic; this function
    never raises. *)

(** {1 Fleet fault/recovery timelines}

    {!plan} describes faults fixed before a compile starts.  A farm of
    FPGAs additionally churns {e over time}: devices and links fail and
    recover mid-operation, and the interconnect suffers loss-rate
    episodes.  A {!timeline} is that event sequence — the input of the
    farm controller ({!Tapa_cs_farm.Farm}). *)

type fleet_event =
  | Device_down of int
  | Device_up of int
  | Link_down of (int * int)  (** undirected topology edge, normalized [(min, max)] *)
  | Link_up of (int * int)
  | Loss_rate of float
      (** ambient per-packet loss on every inter-FPGA link from this
          instant on; [0] ends the episode *)

type timeline_entry = { at_s : float; event : fleet_event }

type timeline = timeline_entry list
(** Sorted by time (stable for simultaneous events); only the smart
    constructor {!timeline} builds values of this type. *)

val timeline : (float * fleet_event) list -> timeline
(** Smart constructor: normalizes link pairs to [(min, max)], sorts by
    timestamp (stable, so simultaneous events keep their given order).
    @raise Invalid_argument on a negative timestamp, a negative device
    index, a self-link, or a loss rate outside [0, 1). *)

val timeline_events : timeline -> (float * fleet_event) list

val device_down_windows : timeline -> horizon_s:float -> int -> (float * float) list
(** The absolute [(start, stop))] outage windows of one device implied by
    its [Device_down]/[Device_up] events, clamped to [[0, horizon_s]] and
    normalized through {!link_fault} (sorted, disjoint, merged). *)

val link_down_windows : timeline -> horizon_s:float -> int * int -> (float * float) list
(** Same for one undirected link: its own [Link_down]/[Link_up] windows
    merged with the outage windows of both endpoint devices (a link makes
    no progress while either endpoint is dead). *)

val loss_episodes : timeline -> horizon_s:float -> (float * float * float) list
(** [(start, stop, rate)] episodes of ambient link loss, in time order;
    an episode ends at the next [Loss_rate] event or the horizon. *)

val parse_timeline_entry : string -> (float * fleet_event, string) Stdlib.result
(** One timeline line: [<t> device-down <i>], [<t> device-up <i>],
    [<t> link-down <A:B>], [<t> link-up <A:B>] or [<t> loss <rate>].
    Blank lines and [#] comments are rejected here — callers filter them.
    [Error] carries the reason for a TCS308 diagnostic; never raises. *)

val describe_event : fleet_event -> string
val pp_timeline : Format.formatter -> timeline -> unit
