(** End-to-end timed simulation of a compiled multi-FPGA design.

    Builds one simulator process per task, one channel per FIFO, and one
    serially-shared {!Engine.Server} per directed FPGA pair (the AlveoLink
    port — this is where the CNN's many-writers contention of §5.5 shows
    up).  Tasks stream data in chunks, so downstream FPGAs overlap with
    upstream ones exactly when the dataflow allows it; [Bulk] FIFOs force
    the §5.2 sequential-stencil behaviour.

    FIFOs that close a dependency cycle (PageRank's PE/controller loop)
    receive one chunk of initial credit, the standard synchronous-dataflow
    treatment of feedback edges.

    {2 Engine modes}

    Two engines compute the same schedule.  The {!Reference} mode
    advances strictly one chunk per event, always re-entering the event
    queue — the original, obviously-correct schedule.  The default
    {!Coalesced} mode plans ahead instead of blocking: every local FIFO
    between two coalescing tasks becomes a {e commitment ledger} of
    timestamped whole-chunk tokens (committed pushes / committed free
    slots), against which a task can price an arbitrary number of future
    chunks by exact token algebra — the same float expressions the
    reference fiber would evaluate, in the same order.  Commitments
    propagate transitively through a work-list cascade (publishing
    supply downstream and space upstream extends the neighbours' plans
    while they sleep), typically collapsing a whole pipeline into one
    planning pass and a single wake per fiber.  Cross-FPGA endpoints
    keep real channels: their planned ops replay as bare events at their
    exact reference instants, bounded by buffered level / free space;
    movers batch buffered whole pieces through
    {!Engine.Server.transfer_batch} under the same monotonicity guards,
    and the engine resumes unblocked processes inline ([inline_wake]).
    When nothing is plannable, a fiber falls back to blocking reference
    ops for one chunk, preserving liveness and deadlock reporting.  The
    contract, gated in the test suite over a randomized corpus:
    [latency_s], [deadlocked] and [links] are bit-identical between the
    two modes — only [events] and the internal schedule differ.

    {2 Simulation cache}

    Results are memoized under a canonical content digest of everything
    the simulator reads: graph structure and per-task synthesis keys,
    assignment, clocks, cluster hop/locality tables, synthesis timing
    profiles, applied port-bandwidth and stage-cycle tables, chunk count,
    engine mode, and the consumed fault fields ([loss_rate],
    [device_halts], [fifo_stalls] — [seed], [failed_devices] and
    [failed_links] never reach the simulator and are deliberately
    excluded).  Warm hits return a defensive copy; cold and warm results
    are bit-identical. *)

open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls

type config = {
  graph : Taskgraph.t;
  assignment : int array;  (** task id -> FPGA index *)
  freq_mhz : float array;  (** per FPGA *)
  cluster : Cluster.t;
  synthesis : Synthesis.report;
  port_bandwidth_gbps : int -> int -> float;  (** task id, port index -> GB/s *)
  extra_stage_cycles : int -> int;  (** fifo id -> pipeline stages added *)
  chunks : int;  (** simulation granularity: chunks per task stream *)
}

val default_chunks : int

type engine_mode =
  | Coalesced  (** batched chunks + inline wakes; the default engine *)
  | Reference  (** one chunk per event; the equivalence oracle *)

type link_stat = { src_fpga : int; dst_fpga : int; bytes : float; busy_s : float }

type task_stat = {
  task_id : int;
  fpga : int;
  start_s : float;  (** first cycle of useful work *)
  finish_s : float;
  busy_s : float;  (** accumulated compute time *)
}

type result = {
  latency_s : float;
  events : int;
  deadlocked : string list;
  per_fpga_busy_s : float array;  (** summed task compute time per FPGA *)
  links : link_stat list;
  tasks : task_stat array;  (** indexed by task id *)
}

exception
  Deadlock of {
    tasks : string list;  (** names of the blocked tasks *)
    fifos : int list;  (** ids of inter-FPGA FIFOs stuck mid-transfer *)
    message : string;
        (** full report, pointing at the matching linter codes (TCS101:
            bulk FIFO on a cycle; TCS102: under-sized feedback FIFO) *)
  }

(** Structured run status for fault-injected simulations — the
    no-exceptions counterpart of {!run}. *)
type outcome =
  | Completed of result  (** clean run, no faults applied *)
  | Degraded of { result : result; reasons : string list }
      (** the run finished, but faults slowed or perturbed it; [reasons]
          lists each injected fault that actually bit *)
  | Failed of { fault : string; partial : result }
      (** the run could not finish — a device halt starved the dataflow,
          or the design deadlocked; [partial] holds the statistics up to
          the stall point *)

val fpga_idle_fraction : result -> fpga:int -> float
(** 1 - (average task busy time on this FPGA / makespan): the §5.2/§5.5
    idle-PE metric.  0 when the device computes the whole run. *)

val run : ?cache:bool -> config -> result
(** Simulate with the {!Coalesced} engine.  [cache] (default [true])
    consults the content-addressed result cache first.
    @raise Deadlock when the simulation cannot make progress, naming the
    blocked tasks and FIFOs — the dynamic counterpart of the TCS101/TCS102
    lints, which catch these designs statically. *)

val run_reference : ?cache:bool -> config -> result
(** {!run} on the {!Reference} engine: one chunk per event, queued wakes.
    The oracle the coalesced engine is gated against; also what benches
    use to price the coalescing win. *)

val run_outcome :
  ?mode:engine_mode -> ?cache:bool -> ?faults:Tapa_cs_network.Fault.plan -> config -> outcome
(** Like {!run}, but injects the plan's simulator-level faults and never
    raises on stalls.  Packet loss derates every link server by the
    closed-form go-back-N slowdown (deterministic — no sampling);
    [device_halts] abandon a device's tasks at the given time;
    [fifo_stalls] freeze a FIFO's data movement for a window.  The
    compile-level fields ([failed_devices], [failed_links]) are ignored
    here — they act before simulation, in
    {!Tapa_cs_floorplan.Inter_fpga.run_degraded}. *)

val make_config :
  ?chunks:int ->
  ?port_bandwidth_gbps:(int -> int -> float) ->
  ?extra_stage_cycles:(int -> int) ->
  graph:Taskgraph.t ->
  assignment:int array ->
  freq_mhz:float array ->
  cluster:Cluster.t ->
  synthesis:Synthesis.report ->
  unit ->
  config
(** Convenience constructor; the port bandwidth defaults to the full
    per-channel HBM bandwidth and no extra pipeline latency. *)

(** {2 Cache observability} *)

val cache_stats : unit -> int * int
(** [(hits, misses)] of the simulation result cache since start (or the
    last {!reset_cache}).  Observability only — never feeds back into
    simulated values. *)

val reset_cache : unit -> unit
(** Drop all cached results and zero the counters (tests, benches). *)
