(** Parallel harness for independent design simulations.

    A sweep runs a batch of unrelated {!Design_sim} points — candidate
    FPGA counts, frequency settings, fault scenarios — across worker
    domains via {!Tapa_cs_util.Pool.parallel_map}.  Each simulation is a
    pure function of its job (the engine is deterministic and the shared
    result cache content-addressed and domain-safe), and results are
    assembled in index order, so the output array is byte-identical
    whatever the [jobs] count: parallelism may only change wall-clock
    time.  The CI determinism gate ([bench/exp_simgate.ml]) enforces
    exactly this. *)

type job = {
  label : string;  (** carried through to the result row *)
  config : Design_sim.config;
  mode : Design_sim.engine_mode;
  faults : Tapa_cs_network.Fault.plan;
}

val job :
  ?mode:Design_sim.engine_mode ->
  ?faults:Tapa_cs_network.Fault.plan ->
  label:string ->
  Design_sim.config ->
  job
(** Convenience constructor: coalesced engine, no faults. *)

val run : ?jobs:int -> ?cache:bool -> job array -> (string * Design_sim.outcome) array
(** Simulate every job and return [(label, outcome)] rows in job order.

    [jobs] caps the worker count: [Some 1] forces the sequential path,
    [Some n] runs on an ephemeral [n]-domain pool (shut down afterwards),
    and [None] defaults to {!Tapa_cs_util.Pool.default_jobs} — sequential
    on single-core hosts or under [TAPA_CS_JOBS=1].  [cache] (default
    [true]) is passed through to the per-point simulation cache. *)
