(** Parallel harness for independent design simulations.

    A sweep runs a batch of unrelated {!Design_sim} points — candidate
    FPGA counts, frequency settings, fault scenarios — across worker
    domains via {!Tapa_cs_util.Pool.parallel_map}.  Each simulation is a
    pure function of its job (the engine is deterministic and the shared
    result cache content-addressed and domain-safe), and results are
    assembled in index order, so the output array is byte-identical
    whatever the [jobs] count: parallelism may only change wall-clock
    time.  The CI determinism gate ([bench/exp_simgate.ml]) enforces
    exactly this. *)

type job = {
  label : string;  (** carried through to the result row *)
  config : Design_sim.config;
  mode : Design_sim.engine_mode;
  faults : Tapa_cs_network.Fault.plan;
}

val job :
  ?mode:Design_sim.engine_mode ->
  ?faults:Tapa_cs_network.Fault.plan ->
  label:string ->
  Design_sim.config ->
  job
(** Convenience constructor: coalesced engine, no faults. *)

val run : ?jobs:int -> ?cache:bool -> job array -> (string * Design_sim.outcome) array
(** Simulate every job and return [(label, outcome)] rows in job order.

    [jobs] caps the worker count: [Some 1] forces the sequential path,
    [Some n] runs on an ephemeral [n]-domain pool (shut down afterwards),
    and [None] defaults to {!Tapa_cs_util.Pool.default_jobs} — sequential
    on single-core hosts or under [TAPA_CS_JOBS=1].  [cache] (default
    [true]) is passed through to the per-point simulation cache. *)

(** {2 SLO pruning}

    Static-bound screening for sweeps with a latency target: points
    whose certified lower bound already misses the SLO are skipped
    without simulating.  The bound callback lives with the caller
    (normally {!Tapa_cs_analysis.Static_perf.bounds} via [Flow]) so this
    library stays independent of the analysis layer. *)

type slo_row =
  | Simulated of Design_sim.outcome  (** the point was simulated as usual *)
  | Pruned of { lower_bound_s : float }
      (** skipped: even the certified lower bound exceeds the SLO *)

val run_slo :
  ?jobs:int ->
  ?cache:bool ->
  slo_latency_s:float ->
  lower_bound_s:(job -> float) ->
  job array ->
  (string * slo_row) array
(** Like {!run}, with rows in job order, but a job is only simulated when
    [lower_bound_s job <= slo_latency_s].  Pruning is lossless as long as
    the callback is a true lower bound on the job's simulated latency
    (return [neg_infinity] to force simulation): surviving rows are
    byte-identical to the matching rows of an unpruned {!run}.  Each
    pruned point bumps the process-wide {!static_pruned} tally. *)

val static_pruned : unit -> int
(** Points pruned by {!run_slo} since start (or {!reset_static_pruned});
    surfaced as ["static_pruned"] in the CLI's [--stats-json]. *)

val reset_static_pruned : unit -> unit
