module Pool = Tapa_cs_util.Pool
module Network = Tapa_cs_network

type job = {
  label : string;
  config : Design_sim.config;
  mode : Design_sim.engine_mode;
  faults : Network.Fault.plan;
}

let job ?(mode = Design_sim.Coalesced) ?(faults = Network.Fault.no_faults) ~label config =
  { label; config; mode; faults }

let run_one ~cache j = Design_sim.run_outcome ~mode:j.mode ~cache ~faults:j.faults j.config

let run ?jobs ?(cache = true) (js : job array) =
  let one j = (j.label, run_one ~cache j) in
  match jobs with
  | Some n when n <= 1 -> Array.map one js
  | None ->
    if Pool.default_jobs () < 2 || Array.length js < 2 then Array.map one js
    else Pool.parallel_map one js
  | Some n ->
    if Array.length js < 2 then Array.map one js
    else begin
      let pool = Pool.create ~domains:(n - 1) () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> Pool.parallel_map ~pool one js)
    end
