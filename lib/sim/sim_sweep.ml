module Pool = Tapa_cs_util.Pool
module Network = Tapa_cs_network

type job = {
  label : string;
  config : Design_sim.config;
  mode : Design_sim.engine_mode;
  faults : Network.Fault.plan;
}

let job ?(mode = Design_sim.Coalesced) ?(faults = Network.Fault.no_faults) ~label config =
  { label; config; mode; faults }

let run_one ~cache j = Design_sim.run_outcome ~mode:j.mode ~cache ~faults:j.faults j.config

type slo_row =
  | Simulated of Design_sim.outcome
  | Pruned of { lower_bound_s : float }

(* Process-wide pruning tally for --stats-json observability.  Pruning
   decisions are made on the calling domain (the bound computation is
   microsecond-scale), so a plain ref suffices. *)
let pruned_count = ref 0
let static_pruned () = !pruned_count
let reset_static_pruned () = pruned_count := 0

let run ?jobs ?(cache = true) (js : job array) =
  let one j = (j.label, run_one ~cache j) in
  match jobs with
  | Some n when n <= 1 -> Array.map one js
  | None ->
    if Pool.default_jobs () < 2 || Array.length js < 2 then Array.map one js
    else Pool.parallel_map one js
  | Some n ->
    if Array.length js < 2 then Array.map one js
    else begin
      let pool = Pool.create ~domains:(n - 1) () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> Pool.parallel_map ~pool one js)
    end

let run_slo ?jobs ?cache ~slo_latency_s ~lower_bound_s (js : job array) =
  (* The screen is a pure function of each job, so the surviving subset
     is deterministic and its simulated rows — produced by the very same
     [run] — are byte-identical to the matching rows of an unpruned
     sweep.  A point is pruned only when even its certified lower bound
     misses the SLO; the bound is sound, so no survivor is lost. *)
  let bound = Array.map lower_bound_s js in
  let keep = Array.map (fun b -> b <= slo_latency_s) bound in
  let survivors =
    Array.of_list
      (List.filteri (fun i _ -> keep.(i)) (Array.to_list js))
  in
  let simulated = run ?jobs ?cache survivors in
  let next = ref 0 in
  Array.mapi
    (fun i j ->
      if keep.(i) then begin
        let _, outcome = simulated.(!next) in
        incr next;
        (j.label, Simulated outcome)
      end
      else begin
        incr pruned_count;
        (j.label, Pruned { lower_bound_s = bound.(i) })
      end)
    js
