open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls
module Network = Tapa_cs_network

type config = {
  graph : Taskgraph.t;
  assignment : int array;
  freq_mhz : float array;
  cluster : Cluster.t;
  synthesis : Synthesis.report;
  port_bandwidth_gbps : int -> int -> float;
  extra_stage_cycles : int -> int;
  chunks : int;
}

let default_chunks = 64

type link_stat = { src_fpga : int; dst_fpga : int; bytes : float; busy_s : float }

type task_stat = {
  task_id : int;
  fpga : int;
  start_s : float;
  finish_s : float;
  busy_s : float;
}

type result = {
  latency_s : float;
  events : int;
  deadlocked : string list;
  per_fpga_busy_s : float array;
  links : link_stat list;
  tasks : task_stat array;
}

exception Deadlock of { tasks : string list; fifos : int list; message : string }

type outcome =
  | Completed of result
  | Degraded of { result : result; reasons : string list }
  | Failed of { fault : string; partial : result }

let () =
  Printexc.register_printer (function
    | Deadlock d -> Some ("Design_sim.Deadlock: " ^ d.message)
    | _ -> None)

let fpga_idle_fraction r ~fpga =
  let stats = Array.to_list r.tasks |> List.filter (fun t -> t.fpga = fpga) in
  match (stats, r.latency_s) with
  | [], _ | _, 0.0 -> 0.0
  | _ ->
    let busy = List.fold_left (fun acc t -> acc +. t.busy_s) 0.0 stats in
    let avg = busy /. float_of_int (List.length stats) in
    Float.max 0.0 (1.0 -. (avg /. r.latency_s))

let make_config ?(chunks = default_chunks)
    ?(port_bandwidth_gbps = fun _ _ -> Constants.hbm_channel_bandwidth_gbps)
    ?(extra_stage_cycles = fun _ -> 0) ~graph ~assignment ~freq_mhz ~cluster ~synthesis () =
  { graph; assignment; freq_mhz; cluster; synthesis; port_bandwidth_gbps; extra_stage_cycles; chunks }

(* Shortest routing path length between two FPGAs; multi-hop transfers pay
   serialization on every hop of the path. *)
let hops cfg i j = Cluster.dist cfg.cluster i j

let link_params cfg i j =
  if not (Cluster.same_node cfg.cluster i j) then Network.Link.host_mpi_10g
  else begin
    match cfg.cluster.Cluster.link with
    | Cluster.Ethernet_100g -> Network.Link.alveolink
    | Cluster.Pcie_gen3x16 -> Network.Link.pcie_p2p
  end

(* Structured deadlock details shared by the raising entry point ([run])
   and the outcome-classifying one ([run_outcome]). *)
type deadlock_info = { d_tasks : string list; d_fifos : int list; d_message : string }

(* A halted device abandons its task processes mid-run; local to the
   process bodies, never escapes the engine. *)
exception Halted

let run_sim ~(faults : Network.Fault.plan) cfg =
  let g = cfg.graph in
  let n = Taskgraph.num_tasks g in
  if Array.length cfg.assignment <> n then invalid_arg "Design_sim: assignment size mismatch";
  let k = Cluster.size cfg.cluster in
  if Array.length cfg.freq_mhz <> k then invalid_arg "Design_sim: one clock per FPGA required";
  Array.iter (fun f -> if f <= 0.0 then invalid_arg "Design_sim: clock must be positive") cfg.freq_mhz;
  Array.iter
    (fun fpga -> if fpga < 0 || fpga >= k then invalid_arg "Design_sim: assignment out of range")
    cfg.assignment;
  if cfg.chunks <= 0 then invalid_arg "Design_sim: chunks must be positive";
  let eng = Engine.create () in
  let freq_hz fpga = cfg.freq_mhz.(fpga) *. 1e6 in
  (* FIFOs inside a strongly connected component get one chunk of credit. *)
  let comps = Taskgraph.sccs g in
  let comp_of = Array.make n (-1) in
  List.iteri (fun ci members -> List.iter (fun v -> comp_of.(v) <- ci) members) comps;
  let chunk_bytes (f : Fifo.t) =
    Float.max 1.0 (Fifo.traffic_bytes f /. float_of_int cfg.chunks)
  in
  (* Producers, movers and consumers all agree on this rounded-up volume so
     every pull is eventually satisfied. *)
  let sim_volume f = float_of_int (Stdlib.max 1 cfg.chunks) *. chunk_bytes f in
  (* Channels: one per FIFO endpoint pair.  Cross-FPGA FIFOs get a source
     side channel, a mover process modelling the network, and a
     destination-side channel. *)
  let in_channel = Array.make (Taskgraph.num_fifos g) None in
  let out_channel = Array.make (Taskgraph.num_fifos g) None in
  let links = Hashtbl.create 16 in
  (* Injected faults.  Packet loss inflates every link's expected
     per-packet service time by the closed-form go-back-N slowdown —
     deterministic, so faulty runs stay bit-reproducible. *)
  let loss = faults.Network.Fault.loss_rate in
  let halt_at = Array.make k infinity in
  List.iter
    (fun (d, t) -> if d >= 0 && d < k then halt_at.(d) <- Float.min halt_at.(d) t)
    faults.Network.Fault.device_halts;
  let stall_of = Hashtbl.create 4 in
  List.iter
    (fun (fid, s, d) -> if d > 0.0 then Hashtbl.add stall_of fid (s, s +. d))
    faults.Network.Fault.fifo_stalls;
  (* Block the calling process past every stall window of this FIFO that
     is currently open. *)
  let stall_wait fid =
    List.iter
      (fun (s, e) ->
        let now = Engine.time () in
        if now >= s && now < e then Engine.wait (e -. now))
      (Hashtbl.find_all stall_of fid)
  in
  let halted = ref [] in
  let link_server i j =
    match Hashtbl.find_opt links (i, j) with
    | Some s -> s
    | None ->
      let p = link_params cfg i j in
      let h = float_of_int (Stdlib.max 1 (hops cfg i j)) in
      let slow = if loss > 0.0 then Network.Fault.slowdown ~loss_rate:loss p else 1.0 in
      let s =
        Engine.Server.create eng
          ~name:(Printf.sprintf "link-%d->%d" i j)
          ~rate_bytes_per_s:(p.Network.Link.bandwidth_gbytes *. p.Network.Link.derate *. 1e9 /. h /. slow)
          ~latency_s:(p.Network.Link.one_way_latency_us *. 1e-6 *. h)
          ~per_packet_s:(p.Network.Link.per_packet_overhead_ns *. 1e-9 *. h *. slow)
          ~packet_bytes:(float_of_int p.Network.Link.default_packet_bytes)
          ()
      in
      Hashtbl.add links (i, j) s;
      s
  in
  Array.iter
    (fun (f : Fifo.t) ->
      let same_fpga = cfg.assignment.(f.src) = cfg.assignment.(f.dst) in
      let base_cap =
        match f.mode with
        | Fifo.Bulk -> sim_volume f
        | Fifo.Stream ->
          (* Two chunks of headroom: double buffering, without which the
             strict joins of 2-D grids (systolic arrays) run in lockstep at
             half throughput. *)
          Float.max (float_of_int (f.depth * f.width_bits / 8)) (2.0 *. chunk_bytes f)
      in
      let credit = if comp_of.(f.src) = comp_of.(f.dst) then chunk_bytes f else 0.0 in
      let cap = Float.max base_cap (2.0 *. credit) in
      let mk tag = Engine.Channel.create eng ~name:(Printf.sprintf "f%d.%s" f.id tag) ~capacity:cap in
      if same_fpga then begin
        let ch = mk "local" in
        if credit > 0.0 then Engine.Channel.push ch credit;
        (* push before run: safe, channel has room by construction *)
        in_channel.(f.id) <- Some ch;
        out_channel.(f.id) <- Some ch
      end
      else begin
        let src_side = mk "src" and dst_side = mk "dst" in
        if credit > 0.0 then Engine.Channel.push dst_side credit;
        out_channel.(f.id) <- Some src_side;
        in_channel.(f.id) <- Some dst_side;
        let srv = link_server cfg.assignment.(f.src) cfg.assignment.(f.dst) in
        let volume = sim_volume f in
        let move_granularity =
          match f.mode with Fifo.Bulk -> volume | Fifo.Stream -> chunk_bytes f
        in
        Engine.spawn eng ~name:(Printf.sprintf "mover-f%d" f.id) (fun () ->
            let moved = ref 0.0 in
            while !moved < volume -. 1e-9 do
              let piece = Float.min move_granularity (volume -. !moved) in
              Engine.Channel.pull src_side piece;
              stall_wait f.id;
              Engine.Server.transfer srv piece;
              Engine.Channel.push dst_side piece;
              moved := !moved +. piece
            done)
      end)
    (Taskgraph.fifos g);
  (* Task processes. *)
  let per_fpga_busy = Array.make (Cluster.size cfg.cluster) 0.0 in
  let task_start = Array.make n nan in
  let task_finish = Array.make n 0.0 in
  let task_busy = Array.make n 0.0 in
  Array.iter
    (fun (t : Task.t) ->
      let fpga = cfg.assignment.(t.id) in
      let f_hz = freq_hz fpga in
      let profile = Synthesis.profile_of cfg.synthesis t.id in
      let in_fifos = Taskgraph.in_fifos g t.id and out_fifos = Taskgraph.out_fifos g t.id in
      let bulk_in, stream_in =
        List.partition (fun (f : Fifo.t) -> f.mode = Fifo.Bulk) in_fifos
      in
      (* Extra pipeline-register latency on inbound wires: a pure latency
         add, by cut-set balancing it cannot change throughput. *)
      let stage_latency =
        List.fold_left
          (fun acc (f : Fifo.t) -> Stdlib.max acc (cfg.extra_stage_cycles f.id))
          0 in_fifos
      in
      let nchunks = Stdlib.max 1 cfg.chunks in
      let compute_chunk = profile.steady_cycles /. float_of_int nchunks /. f_hz in
      let mem_chunk =
        List.fold_left (fun acc i ->
            let p = List.nth t.mem_ports i in
            let bw = cfg.port_bandwidth_gbps t.id i *. 1e9 in
            if bw <= 0.0 then acc
            else Float.max acc (p.Task.bytes /. float_of_int nchunks /. bw))
          0.0
          (List.init (List.length t.mem_ports) Fun.id)
      in
      let chunk_time = Float.max compute_chunk mem_chunk in
      (* A device halt is checked at chunk granularity: once the halt time
         passes, the task abandons the rest of its stream.  The exception
         stays inside the process body (the engine would otherwise abort
         the whole run); downstream tasks then starve and surface in the
         deadlock set, which [run_outcome] classifies as [Failed]. *)
      let check_halt () = if Engine.time () >= halt_at.(fpga) then raise Halted in
      Engine.spawn eng ~name:(Printf.sprintf "task-%s" t.name) (fun () ->
          try
            (* Bulk inputs must arrive in full before anything starts. *)
            List.iter
              (fun (f : Fifo.t) ->
                match in_channel.(f.id) with
                | Some ch ->
                  stall_wait f.id;
                  Engine.Channel.pull ch (sim_volume f)
                | None -> ())
              bulk_in;
            check_halt ();
            Engine.wait ((profile.startup_cycles +. float_of_int stage_latency) /. f_hz);
            for _ = 1 to nchunks do
              check_halt ();
              List.iter
                (fun (f : Fifo.t) ->
                  match in_channel.(f.id) with
                  | Some ch ->
                    stall_wait f.id;
                    Engine.Channel.pull ch (chunk_bytes f)
                  | None -> ())
                stream_in;
              check_halt ();
              if Float.is_nan task_start.(t.id) then task_start.(t.id) <- Engine.time ();
              Engine.wait chunk_time;
              per_fpga_busy.(fpga) <- per_fpga_busy.(fpga) +. chunk_time;
              task_busy.(t.id) <- task_busy.(t.id) +. chunk_time;
              task_finish.(t.id) <- Engine.time ();
              List.iter
                (fun (f : Fifo.t) ->
                  match out_channel.(f.id) with
                  | Some ch -> Engine.Channel.push ch (chunk_bytes f)
                  | None -> ())
                out_fifos
            done
          with Halted -> halted := (fpga, t.name) :: !halted))
    (Taskgraph.tasks g);
  let r = Engine.run eng in
  let dead =
    if r.deadlocked = [] then None
    else begin
      (* Recover the design-level names from the process labels so the
         error talks about the user's tasks and FIFOs, not simulator
         internals. *)
      let strip prefix s =
        let lp = String.length prefix in
        if String.length s > lp && String.sub s 0 lp = prefix then
          Some (String.sub s lp (String.length s - lp))
        else None
      in
      let blocked_tasks = List.filter_map (strip "task-") r.deadlocked in
      let blocked_fifos =
        List.filter_map
          (fun p ->
            match strip "mover-f" p with
            | Some n -> int_of_string_opt n
            | None -> None)
          r.deadlocked
      in
      let fifo_desc fid =
        let f = Taskgraph.fifo g fid in
        Printf.sprintf "#%d (%s -> %s)" fid (Taskgraph.task g f.Fifo.src).Task.name
          (Taskgraph.task g f.Fifo.dst).Task.name
      in
      let parts = [] in
      let parts =
        if blocked_fifos = [] then parts
        else
          Printf.sprintf "inter-FPGA FIFO(s) %s stuck mid-transfer"
            (String.concat ", " (List.map fifo_desc blocked_fifos))
          :: parts
      in
      let parts =
        if blocked_tasks = [] then parts
        else Printf.sprintf "task(s) %s blocked" (String.concat ", " blocked_tasks) :: parts
      in
      Some
        {
          d_tasks = blocked_tasks;
          d_fifos = blocked_fifos;
          d_message =
            Printf.sprintf
              "simulation deadlock: %s. A feedback cycle cannot make progress — likely a \
               bulk-mode FIFO on a cycle (TCS101) or an under-sized feedback FIFO (TCS102); \
               run `tapa_cs_cli lint` on the design."
              (String.concat "; " parts);
        }
    end
  in
  let link_stats =
    Hashtbl.fold
      (fun (i, j) srv acc ->
        {
          src_fpga = i;
          dst_fpga = j;
          bytes = Engine.Server.bytes_moved srv;
          busy_s = Engine.Server.busy_time srv;
        }
        :: acc)
      links []
    |> List.sort compare
  in
  let tasks =
    Array.init n (fun tid ->
        {
          task_id = tid;
          fpga = cfg.assignment.(tid);
          start_s = (if Float.is_nan task_start.(tid) then 0.0 else task_start.(tid));
          finish_s = task_finish.(tid);
          busy_s = task_busy.(tid);
        })
  in
  let result =
    {
      latency_s = r.end_time;
      events = r.events;
      deadlocked = r.deadlocked;
      per_fpga_busy_s = per_fpga_busy;
      links = link_stats;
      tasks;
    }
  in
  (result, dead, List.sort_uniq compare !halted)

let run cfg =
  let result, dead, _ = run_sim ~faults:Network.Fault.no_faults cfg in
  match dead with
  | None -> result
  | Some d -> raise (Deadlock { tasks = d.d_tasks; fifos = d.d_fifos; message = d.d_message })

let run_outcome ?(faults = Network.Fault.no_faults) cfg =
  let result, dead, halted = run_sim ~faults cfg in
  let pp_halted halted =
    String.concat ", "
      (List.map (fun (fpga, name) -> Printf.sprintf "FPGA %d (task %s)" fpga name) halted)
  in
  match dead with
  | Some d ->
    (* A mid-run device halt starves everything downstream of the dead
       tasks; attribute the stall to the fault, not to the design. *)
    if halted <> [] then
      Failed
        {
          fault = Printf.sprintf "device halt: %s abandoned the run mid-stream" (pp_halted halted);
          partial = result;
        }
    else Failed { fault = d.d_message; partial = result }
  | None ->
    let reasons = ref [] in
    if faults.Network.Fault.loss_rate > 0.0 then
      reasons :=
        Printf.sprintf "link loss rate %g absorbed by go-back-N retransmission"
          faults.Network.Fault.loss_rate
        :: !reasons;
    List.iter
      (fun (fid, s, d) ->
        if d > 0.0 && s < result.latency_s then
          reasons := Printf.sprintf "FIFO %d stalled %.3g s at %.3g s" fid d s :: !reasons)
      faults.Network.Fault.fifo_stalls;
    if halted <> [] then
      reasons := Printf.sprintf "device halt after useful work: %s" (pp_halted halted) :: !reasons;
    match List.rev !reasons with
    | [] -> Completed result
    | reasons -> Degraded { result; reasons }
