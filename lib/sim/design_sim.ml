open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls
module Memo = Tapa_cs_util.Memo
module Network = Tapa_cs_network

type config = {
  graph : Taskgraph.t;
  assignment : int array;
  freq_mhz : float array;
  cluster : Cluster.t;
  synthesis : Synthesis.report;
  port_bandwidth_gbps : int -> int -> float;
  extra_stage_cycles : int -> int;
  chunks : int;
}

let default_chunks = 64

type engine_mode = Coalesced | Reference

type link_stat = { src_fpga : int; dst_fpga : int; bytes : float; busy_s : float }

type task_stat = {
  task_id : int;
  fpga : int;
  start_s : float;
  finish_s : float;
  busy_s : float;
}

type result = {
  latency_s : float;
  events : int;
  deadlocked : string list;
  per_fpga_busy_s : float array;
  links : link_stat list;
  tasks : task_stat array;
}

exception Deadlock of { tasks : string list; fifos : int list; message : string }

type outcome =
  | Completed of result
  | Degraded of { result : result; reasons : string list }
  | Failed of { fault : string; partial : result }

let () =
  Printexc.register_printer (function
    | Deadlock d -> Some ("Design_sim.Deadlock: " ^ d.message)
    | _ -> None)

let fpga_idle_fraction r ~fpga =
  let stats = Array.to_list r.tasks |> List.filter (fun t -> t.fpga = fpga) in
  match (stats, r.latency_s) with
  | [], _ | _, 0.0 -> 0.0
  | _ ->
    let busy = List.fold_left (fun acc t -> acc +. t.busy_s) 0.0 stats in
    let avg = busy /. float_of_int (List.length stats) in
    Float.max 0.0 (1.0 -. (avg /. r.latency_s))

let make_config ?(chunks = default_chunks)
    ?(port_bandwidth_gbps = fun _ _ -> Constants.hbm_channel_bandwidth_gbps)
    ?(extra_stage_cycles = fun _ -> 0) ~graph ~assignment ~freq_mhz ~cluster ~synthesis () =
  { graph; assignment; freq_mhz; cluster; synthesis; port_bandwidth_gbps; extra_stage_cycles; chunks }

(* Shortest routing path length between two FPGAs; multi-hop transfers pay
   serialization on every hop of the path. *)
let hops cfg i j = Cluster.dist cfg.cluster i j

let link_params cfg i j =
  if not (Cluster.same_node cfg.cluster i j) then Network.Link.host_mpi_10g
  else begin
    match cfg.cluster.Cluster.link with
    | Cluster.Ethernet_100g -> Network.Link.alveolink
    | Cluster.Pcie_gen3x16 -> Network.Link.pcie_p2p
  end

(* Structured deadlock details shared by the raising entry point ([run])
   and the outcome-classifying one ([run_outcome]). *)
type deadlock_info = { d_tasks : string list; d_fifos : int list; d_message : string }

(* A halted device abandons its task processes mid-run; local to the
   process bodies, never escapes the engine. *)
exception Halted

(* Explicit comparators for the sorted outputs.  Polymorphic [compare]
   on float-carrying records would silently start ordering by payload
   fields if the record layout changes; these pin the order to the
   identity keys only. *)
let link_stat_cmp (a : link_stat) (b : link_stat) =
  let c = Int.compare a.src_fpga b.src_fpga in
  if c <> 0 then c else Int.compare a.dst_fpga b.dst_fpga

let halted_cmp (fa, na) (fb, nb) =
  let c = Int.compare fa fb in
  if c <> 0 then c else String.compare na nb

(* === Commitment ledgers (coalesced engine) =============================

   A local (same-FPGA) FIFO between two coalescing task fibers is not
   simulated through an [Engine.Channel] at all.  Instead it carries two
   queues of timestamped whole-chunk tokens:

   - [sup]:   committed chunk arrivals — one token per push, stamped with
              the exact simulated instant the push completes;
   - [space]: committed capacity slots — one token per pull, stamped with
              the instant the pull completes and the slot frees up.

   Because every FIFO is single-producer/single-consumer and every local
   endpoint moves whole chunks, the reference engine's blocking channel
   ops reduce to exact token algebra: a pull of chunk [j] completes at
   [max t sup_j], a push at [max t space_j], and a compute chunk advances
   [t] by the fiber's own iterated [t +. chunk_time] — the very float
   expressions the reference fiber evaluates, in the same order, so
   every committed timestamp is bit-identical to the reference schedule.

   The payoff is lookahead: tokens describe the *future*, so a task can
   plan (and commit) many chunks ahead of the clock, publishing supply
   downstream and space upstream.  A work-list cascade then extends the
   plans of *sleeping* neighbours — commitments propagate transitively
   until the token algebra runs dry, typically collapsing a whole
   pipeline into one planning pass and a single wake per fiber.  The
   [Fourheap]/event machinery only sees each fiber's final horizon.

   Cross-FPGA endpoints keep their channels (the mover on the other side
   is not a planner): a planned channel op is replayed as a bare
   [Engine.at] event at its exact reference instant, and the plan only
   extends as far as buffered level / free space — both monotone under a
   single counterpart, so the commitment can never be invalidated.  When
   nothing is plannable the fiber falls back to blocking ledger/channel
   ops for one chunk — the reference path itself — which preserves
   liveness and deadlock reporting (ledger waiters park the fiber via
   [Engine.suspend], so it shows up blocked like any channel waiter). *)

type ledger = {
  sup : float Queue.t;  (** committed chunk arrivals, chronological *)
  space : float Queue.t;  (** committed capacity slots, chronological *)
  mutable sup_waiter : (unit -> unit) option;
  mutable space_waiter : (unit -> unit) option;
  producer : int;  (** task id of the pushing endpoint *)
  consumer : int;  (** task id of the pulling endpoint *)
}

(* A cross-FPGA endpoint as seen by the planner: the channel stays, and
   [pending] counts chunks planned but not yet materialized (their
   [Engine.at] replay has not fired), so availability is always judged
   net of our own outstanding commitments. *)
type chan_port = { cch : Engine.Channel.t; piece : float; mutable pending : int }

type port =
  | Ledger_in of ledger
  | Ledger_out of ledger
  | Chan_in of chan_port
  | Chan_out of chan_port

type plan = {
  ptid : int;
  pnchunks : int;
  pchunk_time : float;
  pins : port array;  (** stream inputs, in reference pull order *)
  pouts : port array;  (** outputs, in reference push order *)
  mutable planned : int;  (** chunks committed so far *)
  mutable cursor : float;  (** fiber trajectory time after chunk [planned] *)
  mutable last_wait_end : float;  (** wait-end instant of chunk [planned] *)
  mutable active : bool;  (** extendable: fiber is planning, not in fallback *)
  ptail : (float * (unit -> unit)) Queue.t;
      (** channel ops landing exactly on a planning horizon, deferred to
          the fiber's wake there instead of paying their own event *)
}

let validate cfg =
  let n = Taskgraph.num_tasks cfg.graph in
  if Array.length cfg.assignment <> n then invalid_arg "Design_sim: assignment size mismatch";
  let k = Cluster.size cfg.cluster in
  if Array.length cfg.freq_mhz <> k then invalid_arg "Design_sim: one clock per FPGA required";
  Array.iter (fun f -> if f <= 0.0 then invalid_arg "Design_sim: clock must be positive") cfg.freq_mhz;
  Array.iter
    (fun fpga -> if fpga < 0 || fpga >= k then invalid_arg "Design_sim: assignment out of range")
    cfg.assignment;
  if cfg.chunks <= 0 then invalid_arg "Design_sim: chunks must be positive"

let run_sim ~(mode : engine_mode) ~(faults : Network.Fault.plan) cfg =
  let g = cfg.graph in
  let n = Taskgraph.num_tasks g in
  let k = Cluster.size cfg.cluster in
  (* Coalescing batches a fiber's chunk loop into one wake while
     chunk-boundary channel/server operations replay at their exact
     reference instants (see the commitment-ledger machinery above), so
     it is disabled whenever exactness cannot be argued locally:

     - mid-run faults: a halt or a stall lands between chunks, and the
       fiber must be awake at every chunk boundary to observe it.  Link
       loss only derates server parameters, so it coalesces fine;
     - shared links: when two FIFOs ride the same directed FPGA pair,
       their movers contend on one server, and which of two same-instant
       transfers queues first depends on event sequence numbers — which
       coalescing elsewhere in the design perturbs.  Channels are
       single-producer/single-consumer so same-instant reordering cannot
       shift their timings, but a shared server can; those designs (the
       CNN of §5.5) keep the reference engine wholesale. *)
  let shared_link =
    let cross = Hashtbl.create 8 in
    Array.exists
      (fun (f : Fifo.t) ->
        let i = cfg.assignment.(f.Fifo.src) and j = cfg.assignment.(f.Fifo.dst) in
        i <> j
        &&
        let seen = Hashtbl.mem cross (i, j) in
        Hashtbl.replace cross (i, j) ();
        seen)
      (Taskgraph.fifos g)
  in
  let coalesce =
    mode = Coalesced
    && faults.Network.Fault.device_halts = []
    && faults.Network.Fault.fifo_stalls = []
    && not shared_link
  in
  let eng = Engine.create ~inline_wake:coalesce () in
  let freq_hz fpga = cfg.freq_mhz.(fpga) *. 1e6 in
  (* FIFOs inside a strongly connected component get one chunk of credit. *)
  let comps = Taskgraph.sccs g in
  let comp_of = Array.make n (-1) in
  List.iteri (fun ci members -> List.iter (fun v -> comp_of.(v) <- ci) members) comps;
  let chunk_bytes (f : Fifo.t) =
    Float.max 1.0 (Fifo.traffic_bytes f /. float_of_int cfg.chunks)
  in
  (* Producers, movers and consumers all agree on this rounded-up volume so
     every pull is eventually satisfied. *)
  let sim_volume f = float_of_int (Stdlib.max 1 cfg.chunks) *. chunk_bytes f in
  (* Channels: one per FIFO endpoint pair.  Cross-FPGA FIFOs get a source
     side channel, a mover process modelling the network, and a
     destination-side channel. *)
  let in_channel = Array.make (Taskgraph.num_fifos g) None in
  let out_channel = Array.make (Taskgraph.num_fifos g) None in
  (* Commitment ledgers for local FIFOs under the coalesced engine; [None]
     everywhere in reference mode, and for every cross-FPGA FIFO. *)
  let ledgers = Array.make (Taskgraph.num_fifos g) None in
  let links = Hashtbl.create 16 in
  (* Injected faults.  Packet loss inflates every link's expected
     per-packet service time by the closed-form go-back-N slowdown —
     deterministic, so faulty runs stay bit-reproducible. *)
  let loss = faults.Network.Fault.loss_rate in
  let halt_at = Array.make k infinity in
  List.iter
    (fun (d, t) -> if d >= 0 && d < k then halt_at.(d) <- Float.min halt_at.(d) t)
    faults.Network.Fault.device_halts;
  let stall_of = Hashtbl.create 4 in
  List.iter
    (fun (fid, s, d) ->
      if d > 0.0 then
        Hashtbl.replace stall_of fid
          ((s, s +. d) :: Option.value (Hashtbl.find_opt stall_of fid) ~default:[]))
    faults.Network.Fault.fifo_stalls;
  Hashtbl.filter_map_inplace
    (fun _ ws -> Some (List.sort (fun (a, _) (b, _) -> Float.compare a b) ws))
    stall_of;
  let have_stalls = Hashtbl.length stall_of > 0 in
  (* Block the calling process past every stall window of this FIFO that
     is currently open.  Iterated to fixpoint over the time-sorted
     windows: waiting out one window can land the process inside an
     earlier-listed one, which a single pass (the old [find_all] walk)
     silently skipped. *)
  let stall_wait fid =
    match Hashtbl.find_opt stall_of fid with
    | None -> ()
    | Some windows ->
      let rec fix () =
        let now = Engine.time () in
        match List.find_opt (fun (s, e) -> now >= s && now < e) windows with
        | Some (_, e) ->
          Engine.wait (e -. now);
          fix ()
        | None -> ()
      in
      fix ()
  in
  let halted = ref [] in
  let link_server i j =
    match Hashtbl.find_opt links (i, j) with
    | Some s -> s
    | None ->
      let p = link_params cfg i j in
      let h = float_of_int (Stdlib.max 1 (hops cfg i j)) in
      let slow = if loss > 0.0 then Network.Fault.slowdown ~loss_rate:loss p else 1.0 in
      let s =
        Engine.Server.create eng
          ~name:(Printf.sprintf "link-%d->%d" i j)
          ~rate_bytes_per_s:(p.Network.Link.bandwidth_gbytes *. p.Network.Link.derate *. 1e9 /. h /. slow)
          ~latency_s:(p.Network.Link.one_way_latency_us *. 1e-6 *. h)
          ~per_packet_s:(p.Network.Link.per_packet_overhead_ns *. 1e-9 *. h *. slow)
          ~packet_bytes:(float_of_int p.Network.Link.default_packet_bytes)
          ()
      in
      Hashtbl.add links (i, j) s;
      s
  in
  (* Whole-unit counts for the batching guards.  The 1e-9 nudge sits
     above float accumulation noise (levels are sums of identical chunk
     amounts, relative error ~1e-13) but within the channels' own
     relative slack, so an over-count by the nudge still satisfies the
     channel; an under-count only shrinks a batch — never wedges it. *)
  let units_of amount unit_ = int_of_float (Float.floor ((amount /. unit_) +. 1e-9)) in
  Array.iter
    (fun (f : Fifo.t) ->
      let same_fpga = cfg.assignment.(f.src) = cfg.assignment.(f.dst) in
      let base_cap =
        match f.mode with
        | Fifo.Bulk -> sim_volume f
        | Fifo.Stream ->
          (* Two chunks of headroom: double buffering, without which the
             strict joins of 2-D grids (systolic arrays) run in lockstep at
             half throughput. *)
          Float.max (float_of_int (f.depth * f.width_bits / 8)) (2.0 *. chunk_bytes f)
      in
      let credit = if comp_of.(f.src) = comp_of.(f.dst) then chunk_bytes f else 0.0 in
      let cap = Float.max base_cap (2.0 *. credit) in
      let mk tag = Engine.Channel.create eng ~name:(Printf.sprintf "f%d.%s" f.id tag) ~capacity:cap in
      if same_fpga then begin
        let ch = mk "local" in
        if credit > 0.0 then Engine.Channel.push ch credit;
        (* push before run: safe, channel has room by construction *)
        in_channel.(f.id) <- Some ch;
        out_channel.(f.id) <- Some ch;
        if coalesce then begin
          (* Token mirror of the channel: [cap_c] whole-chunk slots, of
             which [credit_c] start as supply (the cycle credit above) and
             the rest as free space, all stamped at t=0.  Whole-chunk ops
             against this ledger admit and block exactly when the float
             channel would. *)
          let cb = chunk_bytes f in
          let cap_c = units_of cap cb and credit_c = units_of credit cb in
          let l =
            {
              sup = Queue.create ();
              space = Queue.create ();
              sup_waiter = None;
              space_waiter = None;
              producer = f.src;
              consumer = f.dst;
            }
          in
          for _ = 1 to credit_c do Queue.push 0.0 l.sup done;
          for _ = 1 to cap_c - credit_c do Queue.push 0.0 l.space done;
          ledgers.(f.id) <- Some l
        end
      end
      else begin
        let src_side = mk "src" and dst_side = mk "dst" in
        if credit > 0.0 then Engine.Channel.push dst_side credit;
        out_channel.(f.id) <- Some src_side;
        in_channel.(f.id) <- Some dst_side;
        let srv = link_server cfg.assignment.(f.src) cfg.assignment.(f.dst) in
        let volume = sim_volume f in
        let move_granularity =
          match f.mode with Fifo.Bulk -> volume | Fifo.Stream -> chunk_bytes f
        in
        Engine.spawn eng ~name:(Printf.sprintf "mover-f%d" f.id) (fun () ->
            let moved = ref 0.0 in
            while !moved < volume -. 1e-9 do
              let piece = Float.min move_granularity (volume -. !moved) in
              (* Batch whole pieces already buffered at the source when
                 the destination has room for all of them: one fiber
                 wake, with each intermediate piece's push (and next
                 pull) replayed by [transfer_batch] at the exact instant
                 the unbatched mover would have performed it.  The guard
                 is sound against the future because [src_side] has a
                 single producer (its level only grows under us) and
                 [dst_side] a single consumer (its space only grows);
                 [coalesce] already excludes shared-server designs. *)
              let pieces =
                if (not coalesce) || piece < move_granularity -. 1e-9 then 1
                else begin
                  let full_left = units_of (volume -. !moved) move_granularity in
                  let by_src = units_of (Engine.Channel.level src_side) move_granularity in
                  let by_dst = units_of (Engine.Channel.free_space dst_side) move_granularity in
                  Stdlib.max 1 (Stdlib.min full_left (Stdlib.min by_src by_dst))
                end
              in
              if pieces = 1 then begin
                Engine.Channel.pull src_side piece;
                if have_stalls then stall_wait f.id;
                Engine.Server.transfer srv piece;
                Engine.Channel.push dst_side piece;
                moved := !moved +. piece
              end
              else begin
                Engine.Channel.pull src_side move_granularity;
                Engine.Server.transfer_batch srv ~pieces
                  ~on_piece:(fun _ ->
                    Engine.Channel.push dst_side move_granularity;
                    Engine.Channel.pull src_side move_granularity)
                  move_granularity;
                Engine.Channel.push dst_side move_granularity;
                moved := !moved +. (float_of_int pieces *. move_granularity)
              end
            done)
      end)
    (Taskgraph.fifos g);
  (* Task processes. *)
  let per_fpga_busy = Array.make (Cluster.size cfg.cluster) 0.0 in
  let task_start = Array.make n nan in
  let task_finish = Array.make n 0.0 in
  let task_busy = Array.make n 0.0 in
  let nchunks = Stdlib.max 1 cfg.chunks in
  let chunk_time_of (t : Task.t) =
    let f_hz = freq_hz cfg.assignment.(t.id) in
    let profile = Synthesis.profile_of cfg.synthesis t.id in
    let compute_chunk = profile.steady_cycles /. float_of_int nchunks /. f_hz in
    let mem_chunk =
      List.fold_left
        (fun acc i ->
          let p = List.nth t.mem_ports i in
          let bw = cfg.port_bandwidth_gbps t.id i *. 1e9 in
          if bw <= 0.0 then acc
          else Float.max acc (p.Task.bytes /. float_of_int nchunks /. bw))
        0.0
        (List.init (List.length t.mem_ports) Fun.id)
    in
    Float.max compute_chunk mem_chunk
  in
  (* One plan per task (coalesced mode).  Port arrays preserve the
     reference op order: stream inputs are pulled, then the compute wait,
     then outputs pushed, chunk by chunk. *)
  let plans =
    if not coalesce then [||]
    else
      Array.map
        (fun (t : Task.t) ->
          let stream_in =
            List.filter (fun (f : Fifo.t) -> f.mode = Fifo.Stream) (Taskgraph.in_fifos g t.id)
          in
          let mk_in (f : Fifo.t) =
            match ledgers.(f.id) with
            | Some l -> Ledger_in l
            | None -> Chan_in { cch = Option.get in_channel.(f.id); piece = chunk_bytes f; pending = 0 }
          in
          let mk_out (f : Fifo.t) =
            match ledgers.(f.id) with
            | Some l -> Ledger_out l
            | None -> Chan_out { cch = Option.get out_channel.(f.id); piece = chunk_bytes f; pending = 0 }
          in
          {
            ptid = t.id;
            pnchunks = nchunks;
            pchunk_time = chunk_time_of t;
            pins = Array.of_list (List.map mk_in stream_in);
            pouts = Array.of_list (List.map mk_out (Taskgraph.out_fifos g t.id));
            planned = 0;
            cursor = 0.0;
            last_wait_end = 0.0;
            active = false;
            ptail = Queue.create ();
          })
        (Taskgraph.tasks g)
  in
  (* Work-list cascade over plans.  Publishing tokens enqueues the
     counterpart task; [cascade] keeps extending plans until the token
     algebra runs dry.  Processing order cannot affect any committed
     timestamp: a plan's extension reads only its own port state, token
     queues grow monotonically, and each ledger has exactly one task on
     each side — the fixpoint is unique (chaotic iteration of monotone
     operators), so the work-list is purely a traversal order. *)
  let worklist = Queue.create () in
  let in_worklist = Array.make n false in
  let enqueue tid =
    if not in_worklist.(tid) then begin
      in_worklist.(tid) <- true;
      Queue.push tid worklist
    end
  in
  let wake w =
    match !w with
    | None -> ()
    | Some resume ->
      w := None;
      resume ()
  in
  let notify_sup (l : ledger) =
    enqueue l.consumer;
    let w = ref l.sup_waiter in
    l.sup_waiter <- None;
    wake w
  in
  let notify_space (l : ledger) =
    enqueue l.producer;
    let w = ref l.space_waiter in
    l.space_waiter <- None;
    wake w
  in
  (* Extend [p] by as many whole chunks as every port can commit to.
     Ledger ops are pure token algebra at exact reference instants;
     channel ops are replayed at theirs.  A replayed op is free when it
     needs no event of its own: due right now with the task's own fiber
     running ([infiber]), it executes directly; due exactly at the
     extension's final horizon, it rides the fiber's wake there
     ([ptail]).  Everything in between gets a bare [Engine.at] event.
     Notifications are deferred past the mutation loop: waking a parked
     fiber nests its execution here (inline_wake), and it must observe a
     consistent ledger. *)
  let extend_plan ~infiber (p : plan) =
    if (not p.active) || p.planned >= p.pnchunks then false
    else begin
      let avail = function
        | Ledger_in l -> Queue.length l.sup
        | Ledger_out l -> Queue.length l.space
        | Chan_in c -> units_of (Engine.Channel.level c.cch) c.piece - c.pending
        | Chan_out c -> units_of (Engine.Channel.free_space c.cch) c.piece - c.pending
      in
      let m = ref (p.pnchunks - p.planned) in
      Array.iter (fun pt -> m := Stdlib.min !m (avail pt)) p.pins;
      Array.iter (fun pt -> m := Stdlib.min !m (avail pt)) p.pouts;
      if !m <= 0 then false
      else begin
        (* Ops deferred to a previous horizon lose their free ride once
           the horizon moves: flush them to real events at their exact
           instants (all still >= now — the fiber has not slept past
           them, or it would have drained them). *)
        while not (Queue.is_empty p.ptail) do
          let tm, op = Queue.pop p.ptail in
          Engine.at eng tm op
        done;
        let now = Engine.now eng in
        let sup_touched = ref [] and space_touched = ref [] in
        let chan_ops = ref [] in
        let emit tm op =
          if infiber && tm = now then op () else chan_ops := (tm, op) :: !chan_ops
        in
        for _ = 1 to !m do
          let t = ref p.cursor in
          Array.iter
            (fun pt ->
              match pt with
              | Ledger_in l ->
                let ts = Queue.pop l.sup in
                if ts > !t then t := ts;
                (* this pull's completion frees one slot upstream *)
                Queue.push !t l.space;
                space_touched := l :: !space_touched
              | Chan_in c ->
                c.pending <- c.pending + 1;
                emit !t (fun () ->
                    Engine.Channel.pull c.cch c.piece;
                    c.pending <- c.pending - 1)
              | Ledger_out _ | Chan_out _ -> assert false)
            p.pins;
          if Float.is_nan task_start.(p.ptid) then task_start.(p.ptid) <- !t;
          t := !t +. p.pchunk_time;
          p.last_wait_end <- !t;
          Array.iter
            (fun pt ->
              match pt with
              | Ledger_out l ->
                let ts = Queue.pop l.space in
                if ts > !t then t := ts;
                Queue.push !t l.sup;
                sup_touched := l :: !sup_touched
              | Chan_out c ->
                c.pending <- c.pending + 1;
                emit !t (fun () ->
                    Engine.Channel.push c.cch c.piece;
                    c.pending <- c.pending - 1)
              | Ledger_in _ | Chan_in _ -> assert false)
            p.pouts;
          p.cursor <- !t;
          p.planned <- p.planned + 1
        done;
        List.iter
          (fun (tm, op) ->
            if tm = p.cursor then Queue.push (tm, op) p.ptail else Engine.at eng tm op)
          (List.rev !chan_ops);
        List.iter notify_space !space_touched;
        List.iter notify_sup !sup_touched;
        true
      end
    end
  in
  let in_cascade = ref false in
  (* [self] is the task whose fiber is actually executing this call, so
     its due-now channel ops can run directly instead of as events. *)
  let cascade ?(self = -1) () =
    if not !in_cascade then begin
      in_cascade := true;
      while not (Queue.is_empty worklist) do
        let tid = Queue.pop worklist in
        in_worklist.(tid) <- false;
        ignore (extend_plan ~infiber:(tid = self) plans.(tid))
      done;
      in_cascade := false
    end
  in
  (* Fallback: the blocking reference op for one port.  Ledger flavours
     park the fiber with [Engine.suspend] (so it counts as blocked for
     deadlock reporting) until the counterpart publishes a token, then
     sleep to the token's exact instant — precisely when the reference
     channel op would have resumed. *)
  let fb_pull = function
    | Ledger_in l ->
      while Queue.is_empty l.sup do
        Engine.suspend (fun resume -> l.sup_waiter <- Some resume)
      done;
      let ts = Queue.pop l.sup in
      if ts > Engine.time () then Engine.wait_until ts;
      Queue.push (Engine.time ()) l.space;
      notify_space l
    | Chan_in c -> Engine.Channel.pull c.cch c.piece
    | Ledger_out _ | Chan_out _ -> assert false
  in
  let fb_push = function
    | Ledger_out l ->
      while Queue.is_empty l.space do
        Engine.suspend (fun resume -> l.space_waiter <- Some resume)
      done;
      let ts = Queue.pop l.space in
      if ts > Engine.time () then Engine.wait_until ts;
      Queue.push (Engine.time ()) l.sup;
      notify_sup l
    | Chan_out c -> Engine.Channel.push c.cch c.piece
    | Ledger_in _ | Chan_in _ -> assert false
  in
  (* Bulk input over a ledger: the reference pull of the whole volume
     completes when the covering push lands (cycle credit included) and
     frees all capacity at that instant. *)
  let ledger_pull_all (l : ledger) count =
    while Queue.length l.sup < count do
      Engine.suspend (fun resume -> l.sup_waiter <- Some resume)
    done;
    let last = ref 0.0 in
    for _ = 1 to count do
      let ts = Queue.pop l.sup in
      if ts > !last then last := ts
    done;
    if !last > Engine.time () then Engine.wait_until !last;
    let tdone = Engine.time () in
    for _ = 1 to count do Queue.push tdone l.space done;
    notify_space l
  in
  (* Fiber body under the coalesced engine: kick the cascade, sleep to
     whatever horizon the plan reaches, account the chunks slept past;
     when nothing is plannable, run one chunk through the blocking
     reference ops and resync the plan to reality. *)
  let planner_loop (p : plan) fpga chunk_time =
    p.cursor <- Engine.time ();
    p.last_wait_end <- Engine.time ();
    p.active <- true;
    let done_ = ref 0 in
    while !done_ < p.pnchunks do
      enqueue p.ptid;
      cascade ~self:p.ptid ();
      if p.planned > !done_ then begin
        let target = p.planned and horizon = p.cursor and fin = p.last_wait_end in
        if horizon > Engine.time () then Engine.wait_until horizon;
        while
          (not (Queue.is_empty p.ptail)) && fst (Queue.peek p.ptail) <= Engine.time ()
        do
          (snd (Queue.pop p.ptail)) ()
        done;
        let delta = float_of_int (target - !done_) in
        per_fpga_busy.(fpga) <- per_fpga_busy.(fpga) +. (delta *. chunk_time);
        task_busy.(p.ptid) <- task_busy.(p.ptid) +. (delta *. chunk_time);
        task_finish.(p.ptid) <- fin;
        done_ := target
      end
      else begin
        p.active <- false;
        Array.iter fb_pull p.pins;
        if Float.is_nan task_start.(p.ptid) then task_start.(p.ptid) <- Engine.time ();
        Engine.wait chunk_time;
        per_fpga_busy.(fpga) <- per_fpga_busy.(fpga) +. chunk_time;
        task_busy.(p.ptid) <- task_busy.(p.ptid) +. chunk_time;
        task_finish.(p.ptid) <- Engine.time ();
        Array.iter fb_push p.pouts;
        incr done_;
        p.planned <- !done_;
        p.cursor <- Engine.time ();
        p.last_wait_end <- task_finish.(p.ptid);
        p.active <- true
      end
    done;
    p.active <- false
  in
  Array.iter
    (fun (t : Task.t) ->
      let fpga = cfg.assignment.(t.id) in
      let f_hz = freq_hz fpga in
      let profile = Synthesis.profile_of cfg.synthesis t.id in
      let in_fifos = Taskgraph.in_fifos g t.id and out_fifos = Taskgraph.out_fifos g t.id in
      let bulk_in, stream_in =
        List.partition (fun (f : Fifo.t) -> f.mode = Fifo.Bulk) in_fifos
      in
      (* Extra pipeline-register latency on inbound wires: a pure latency
         add, by cut-set balancing it cannot change throughput. *)
      let stage_latency =
        List.fold_left
          (fun acc (f : Fifo.t) -> Stdlib.max acc (cfg.extra_stage_cycles f.id))
          0 in_fifos
      in
      let chunk_time = chunk_time_of t in
      (* A device halt is checked at chunk granularity: once the halt time
         passes, the task abandons the rest of its stream.  The exception
         stays inside the process body (the engine would otherwise abort
         the whole run); downstream tasks then starve and surface in the
         deadlock set, which [run_outcome] classifies as [Failed].  Halts
         force the reference engine, so the planner never checks. *)
      let check_halt () = if Engine.time () >= halt_at.(fpga) then raise Halted in
      let push_outputs () =
        List.iter
          (fun (f : Fifo.t) ->
            match out_channel.(f.id) with
            | Some ch -> Engine.Channel.push ch (chunk_bytes f)
            | None -> ())
          out_fifos
      in
      let pull_stream_inputs () =
        List.iter
          (fun (f : Fifo.t) ->
            match in_channel.(f.id) with
            | Some ch ->
              if have_stalls then stall_wait f.id;
              Engine.Channel.pull ch (chunk_bytes f)
            | None -> ())
          stream_in
      in
      Engine.spawn eng ~name:(Printf.sprintf "task-%s" t.name) (fun () ->
          try
            (* Bulk inputs must arrive in full before anything starts. *)
            List.iter
              (fun (f : Fifo.t) ->
                match ledgers.(f.id) with
                | Some l -> ledger_pull_all l nchunks
                | None -> (
                  match in_channel.(f.id) with
                  | Some ch ->
                    if have_stalls then stall_wait f.id;
                    Engine.Channel.pull ch (sim_volume f)
                  | None -> ()))
              bulk_in;
            check_halt ();
            Engine.wait ((profile.startup_cycles +. float_of_int stage_latency) /. f_hz);
            if coalesce then planner_loop plans.(t.id) fpga chunk_time
            else begin
              let remaining = ref nchunks in
              while !remaining > 0 do
                check_halt ();
                pull_stream_inputs ();
                check_halt ();
                if Float.is_nan task_start.(t.id) then task_start.(t.id) <- Engine.time ();
                Engine.wait chunk_time;
                per_fpga_busy.(fpga) <- per_fpga_busy.(fpga) +. chunk_time;
                task_busy.(t.id) <- task_busy.(t.id) +. chunk_time;
                task_finish.(t.id) <- Engine.time ();
                push_outputs ();
                decr remaining
              done
            end
          with Halted -> halted := (fpga, t.name) :: !halted))
    (Taskgraph.tasks g);
  let r = Engine.run eng in
  let dead =
    if r.deadlocked = [] then None
    else begin
      (* Recover the design-level names from the process labels so the
         error talks about the user's tasks and FIFOs, not simulator
         internals. *)
      let strip prefix s =
        let lp = String.length prefix in
        if String.length s > lp && String.sub s 0 lp = prefix then
          Some (String.sub s lp (String.length s - lp))
        else None
      in
      let blocked_tasks = List.filter_map (strip "task-") r.deadlocked in
      let blocked_fifos =
        List.filter_map
          (fun p ->
            match strip "mover-f" p with
            | Some n -> int_of_string_opt n
            | None -> None)
          r.deadlocked
      in
      let fifo_desc fid =
        let f = Taskgraph.fifo g fid in
        Printf.sprintf "#%d (%s -> %s)" fid (Taskgraph.task g f.Fifo.src).Task.name
          (Taskgraph.task g f.Fifo.dst).Task.name
      in
      let parts = [] in
      let parts =
        if blocked_fifos = [] then parts
        else
          Printf.sprintf "inter-FPGA FIFO(s) %s stuck mid-transfer"
            (String.concat ", " (List.map fifo_desc blocked_fifos))
          :: parts
      in
      let parts =
        if blocked_tasks = [] then parts
        else Printf.sprintf "task(s) %s blocked" (String.concat ", " blocked_tasks) :: parts
      in
      Some
        {
          d_tasks = blocked_tasks;
          d_fifos = blocked_fifos;
          d_message =
            Printf.sprintf
              "simulation deadlock: %s. A feedback cycle cannot make progress — likely a \
               bulk-mode FIFO on a cycle (TCS101) or an under-sized feedback FIFO (TCS102); \
               run `tapa_cs_cli lint` on the design."
              (String.concat "; " parts);
        }
    end
  in
  let link_stats =
    Hashtbl.fold
      (fun (i, j) srv acc ->
        {
          src_fpga = i;
          dst_fpga = j;
          bytes = Engine.Server.bytes_moved srv;
          busy_s = Engine.Server.busy_time srv;
        }
        :: acc)
      links []
    |> List.sort link_stat_cmp
  in
  let tasks =
    Array.init n (fun tid ->
        {
          task_id = tid;
          fpga = cfg.assignment.(tid);
          start_s = (if Float.is_nan task_start.(tid) then 0.0 else task_start.(tid));
          finish_s = task_finish.(tid);
          busy_s = task_busy.(tid);
        })
  in
  let result =
    {
      latency_s = r.end_time;
      events = r.events;
      deadlocked = r.deadlocked;
      per_fpga_busy_s = per_fpga_busy;
      links = link_stats;
      tasks;
    }
  in
  (result, dead, List.sort_uniq halted_cmp !halted)

(* ------------------------------------------------------------------ *)
(* Content-addressed simulation cache.

   [run_sim] is a pure function of (mode, faults, config): the engine is
   deterministic and the fault model closed-form, so the whole result
   triple can be memoized under a canonical digest — the same discipline
   as [Partition]'s floorplan cache.  The sweep harness and the exp_*
   benches re-simulate identical points constantly (shared baselines,
   repeated flows); a warm cache answers those without running the
   engine.  Hit/miss counters are observability-only and never feed back
   into results, so cold and warm runs are bit-identical. *)

type sim_memo = result * deadlock_info option * (int * string) list

let cache : sim_memo Memo.t = Memo.create ()

let cache_stats () =
  let s = Memo.stats cache in
  (s.Memo.hits, s.Memo.misses)

let reset_cache () = Memo.reset cache

let sim_key ~mode ~(faults : Network.Fault.plan) cfg =
  let buf = Buffer.create 1024 in
  let str s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  let int i = Buffer.add_string buf (string_of_int i); Buffer.add_char buf ';' in
  (* %h is exact (hex float): no decimal rounding can merge keys *)
  let flt f = Buffer.add_string buf (Printf.sprintf "%h" f); Buffer.add_char buf ';' in
  Buffer.add_char buf (match mode with Coalesced -> 'C' | Reference -> 'R');
  int cfg.chunks;
  let g = cfg.graph in
  int (Taskgraph.num_tasks g);
  (* Task names land in deadlock reports, so they are part of the value;
     the compute/mem shape reuses the synthesis digest. *)
  Array.iter (fun (t : Task.t) -> str t.Task.name; str (Synthesis.cache_key t)) (Taskgraph.tasks g);
  int (Taskgraph.num_fifos g);
  Array.iter
    (fun (f : Fifo.t) ->
      int f.src; int f.dst; int f.width_bits; int f.depth; flt f.elems;
      Buffer.add_char buf (match f.mode with Fifo.Stream -> 'S' | Fifo.Bulk -> 'B'))
    (Taskgraph.fifos g);
  Array.iter int cfg.assignment;
  Array.iter flt cfg.freq_mhz;
  let k = Cluster.size cfg.cluster in
  int k;
  Buffer.add_char buf
    (match cfg.cluster.Cluster.link with Cluster.Ethernet_100g -> 'E' | Cluster.Pcie_gen3x16 -> 'P');
  (* The cluster enters the timing only through hop counts and node
     co-location; hash those tables, not the structure behind them. *)
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      int (Cluster.dist cfg.cluster i j);
      Buffer.add_char buf (if Cluster.same_node cfg.cluster i j then '=' else '/')
    done
  done;
  (* Function-typed config fields: hash the applied tables over their
     finite domains (task ports, fifo ids), like [Partition] does for
     [dist]. *)
  Array.iter
    (fun (t : Task.t) ->
      let p = Synthesis.profile_of cfg.synthesis t.id in
      flt p.Synthesis.startup_cycles;
      flt p.Synthesis.steady_cycles;
      List.iteri (fun i _ -> flt (cfg.port_bandwidth_gbps t.id i)) t.Task.mem_ports)
    (Taskgraph.tasks g);
  Array.iter (fun (f : Fifo.t) -> int (cfg.extra_stage_cycles f.id)) (Taskgraph.fifos g);
  (* Only the fault fields the simulator consumes: [failed_devices] /
     [failed_links] act before simulation and [seed] feeds only sampled
     paths, which the closed-form simulator never draws from. *)
  flt faults.Network.Fault.loss_rate;
  int (List.length faults.Network.Fault.device_halts);
  List.iter (fun (d, t) -> int d; flt t) faults.Network.Fault.device_halts;
  int (List.length faults.Network.Fault.fifo_stalls);
  List.iter (fun (fid, s, d) -> int fid; flt s; flt d) faults.Network.Fault.fifo_stalls;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Callers own their result arrays; a mutation must not poison later
   hits. *)
let copy_result r =
  { r with per_fpga_busy_s = Array.copy r.per_fpga_busy_s; tasks = Array.copy r.tasks }

let run_sim_cached ~mode ~use_cache ~faults cfg =
  validate cfg;
  if not use_cache then run_sim ~mode ~faults cfg
  else begin
    let key = sim_key ~mode ~faults cfg in
    let (r, dead, halted), _hit =
      Memo.find_or_compute cache ~key (fun () -> run_sim ~mode ~faults cfg)
    in
    (copy_result r, dead, halted)
  end

let raise_on_deadlock (result, dead, _halted) =
  match dead with
  | None -> result
  | Some d -> raise (Deadlock { tasks = d.d_tasks; fifos = d.d_fifos; message = d.d_message })

let run ?(cache = true) cfg =
  raise_on_deadlock (run_sim_cached ~mode:Coalesced ~use_cache:cache ~faults:Network.Fault.no_faults cfg)

let run_reference ?(cache = true) cfg =
  raise_on_deadlock (run_sim_cached ~mode:Reference ~use_cache:cache ~faults:Network.Fault.no_faults cfg)

let run_outcome ?(mode = Coalesced) ?(cache = true) ?(faults = Network.Fault.no_faults) cfg =
  let result, dead, halted = run_sim_cached ~mode ~use_cache:cache ~faults cfg in
  let pp_halted halted =
    String.concat ", "
      (List.map (fun (fpga, name) -> Printf.sprintf "FPGA %d (task %s)" fpga name) halted)
  in
  match dead with
  | Some d ->
    (* A mid-run device halt starves everything downstream of the dead
       tasks; attribute the stall to the fault, not to the design. *)
    if halted <> [] then
      Failed
        {
          fault = Printf.sprintf "device halt: %s abandoned the run mid-stream" (pp_halted halted);
          partial = result;
        }
    else Failed { fault = d.d_message; partial = result }
  | None ->
    let reasons = ref [] in
    if faults.Network.Fault.loss_rate > 0.0 then
      reasons :=
        Printf.sprintf "link loss rate %g absorbed by go-back-N retransmission"
          faults.Network.Fault.loss_rate
        :: !reasons;
    List.iter
      (fun (fid, s, d) ->
        if d > 0.0 && s < result.latency_s then
          reasons := Printf.sprintf "FIFO %d stalled %.3g s at %.3g s" fid d s :: !reasons)
      faults.Network.Fault.fifo_stalls;
    if halted <> [] then
      reasons := Printf.sprintf "device halt after useful work: %s" (pp_halted halted) :: !reasons;
    match List.rev !reasons with
    | [] -> Completed result
    | reasons -> Degraded { result; reasons }
