(** Discrete-event simulation engine.

    Processes are ordinary OCaml functions running on top of effect
    handlers (OCaml 5): inside a process, {!wait}, {!Channel.push},
    {!Channel.pull} and {!Server.transfer} suspend the fiber and the
    engine resumes it when simulated time or resources allow.  Determinism
    comes from a (time, sequence-number) total order on events.

    The event queue is two-tier: a {!Tapa_cs_util.Fourheap} for timed
    events and an O(1) FIFO ring for zero-delay ones (wakes, spawns),
    merged under the same (time, seq) total order — the execution
    schedule is bit-identical to a single binary heap, only cheaper. *)

type t

val create : ?inline_wake:bool -> unit -> t
(** [inline_wake] (default [false]) makes a blocked process resume
    immediately inside the push/pull that unblocks it — nested, at the
    same simulated time — instead of re-entering through the event
    queue.  This removes one counted event per channel rendezvous and is
    what the coalesced {!Design_sim} engine runs on.  It reorders
    same-instant operations (the woken fiber runs before the waker's
    remaining code, where the queued wake ran after), so callers that
    need the reference interleaving must keep the default. *)

val now : t -> float
(** Current simulated time in seconds. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** Register a process; it starts at the current simulated time when
    {!run} (or the ongoing run) reaches it. *)

val at : t -> float -> (unit -> unit) -> unit
(** [at eng time fn] runs the bare closure [fn] in its own event at the
    {e absolute} simulated time [time] (raises [Invalid_argument] when
    [time] is already past).  Unlike a process, [fn] has no fiber: it
    must not block (a {!Channel.push}/{!Channel.pull} inside it must be
    satisfiable immediately).  Taking an absolute instant rather than a
    delta is deliberate: the coalescing simulator replays reference
    chunk-boundary times it computed by the reference's own iterated
    additions, and a delta-based API would re-round them.  This is the
    escape hatch that keeps chunk-boundary channel operations at their
    exact reference times while the owning fiber sleeps through the
    whole batch. *)

type run_result = {
  end_time : float;
  events : int;
  deadlocked : string list;  (** names of processes still blocked at the end *)
}

val run : ?until:float -> t -> run_result
(** Executes events until the queue drains or [until] is passed.  A
    non-empty [deadlocked] list means some channel dependency cycle never
    resolved — surfaced, never silently dropped.

    [until] semantics: events with time [<= until] still run; the first
    event strictly beyond [until] stays queued.  [end_time] is the time
    of the {e last executed event}, NOT [until] — when the queue runs dry
    early (or nothing was due at all) it lands short of [until], and it
    never overshoots.  Callers wanting a clock pinned to the horizon
    should take [Float.max until end_time] themselves; clamping here
    would silently stretch the makespan of designs that finish early. *)

(** {1 Operations usable inside a process} *)

val wait : float -> unit
(** Advance this process by a simulated duration (seconds, >= 0). *)

val wait_until : float -> unit
(** Sleep this process until an {e absolute} simulated time (raises
    [Invalid_argument] when it is already past).  The absolute form
    exists for the same reason as {!at}: resuming at a precomputed
    reference instant bit-for-bit, where [wait (target -. now)] would
    introduce a rounding step the reference schedule never performed. *)

val time : unit -> float
(** Current simulated time as seen by this process. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks this process and hands [register] a wake
    thunk; calling the thunk resumes the process at the waker's current
    simulated time (through the event queue, or nested when the engine
    was created with [inline_wake]).  While parked the process counts as
    blocked for deadlock reporting, exactly like one suspended inside a
    {!Channel} operation.  This is the primitive custom synchronisation
    structures (e.g. {!Design_sim}'s commitment ledgers) build on. *)

(** Bounded byte-counting FIFO channels. *)
module Channel : sig
  type engine := t
  type t

  val create : engine -> name:string -> capacity:float -> t
  (** [capacity] in bytes; must be positive. *)

  val push : t -> float -> unit
  (** Blocks while the channel lacks space.  Amounts larger than the
      capacity are streamed through in capacity-sized pieces. *)

  val pull : t -> float -> unit
  (** Blocks until the requested bytes are available. *)

  val level : t -> float
  val free_space : t -> float
  (** [capacity - level], clamped at 0 — the room a push of that size
      would find right now. *)

  val has_waiting_pushers : t -> bool
  val has_waiting_pullers : t -> bool
  (** Whether some process is currently suspended on this channel.  The
      coalescing simulator uses these as guards: batching is only safe
      when nobody is parked on the channel waiting to observe the
      intermediate levels the batch would skip. *)

  val total_pushed : t -> float
  val total_pulled : t -> float
  val name : t -> string
end

(** A serially shared resource with rate, per-packet overhead and
    propagation latency — the model of one AlveoLink port or a host NIC. *)
module Server : sig
  type engine := t
  type t

  val create :
    engine ->
    name:string ->
    rate_bytes_per_s:float ->
    ?latency_s:float ->
    ?per_packet_s:float ->
    ?packet_bytes:float ->
    unit ->
    t

  val transfer : t -> float -> unit
  (** Queue behind earlier transfers, hold the server for the
      serialization time, then wait the propagation latency. *)

  val transfer_batch : t -> ?on_piece:(int -> unit) -> pieces:int -> float -> unit
  (** [transfer_batch srv ~pieces amount] is [pieces] back-to-back
      {!transfer}s of [amount] each, paid for with a single fiber wait.
      The per-piece start/finish instants, busy time, bytes and busy
      horizon are computed by iterating the exact float expressions the
      unbatched calls would evaluate, so server statistics and timing
      are bit-identical to [pieces] separate {!transfer}s.  [on_piece p]
      (1-based, [p < pieces]) fires at exactly piece [p]'s reference
      resume instant in a bare event — it must not block — and the
      caller resumes at the last piece's.  Only valid while {e no other
      process shares the server during the batch}: the whole busy window
      is claimed up front. *)

  val busy_time : t -> float
  val bytes_moved : t -> float
  val name : t -> string
end
