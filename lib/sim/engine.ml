open Tapa_cs_util

type event = { etime : float; seq : int; fn : unit -> unit }

type t = {
  mutable enow : float;
  queue : event Heap.t;
  mutable seq : int;
  mutable events : int;
  mutable current : string;
  suspended : (int, string) Hashtbl.t;
  mutable suspend_id : int;
}

let event_cmp a b =
  let c = Float.compare a.etime b.etime in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    enow = 0.0;
    queue = Heap.create ~cmp:event_cmp;
    seq = 0;
    events = 0;
    current = "<main>";
    suspended = Hashtbl.create 16;
    suspend_id = 0;
  }

let now t = t.enow

let schedule t dt fn =
  t.seq <- t.seq + 1;
  Heap.push t.queue { etime = t.enow +. dt; seq = t.seq; fn }

(* Effects performed by process code.  [Suspend register] hands the
   channel/server a wake thunk; the handler wraps the continuation so the
   wake re-enters through the event queue (keeping determinism). *)
type _ Effect.t +=
  | Wait : float -> unit Effect.t
  | Time : float Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let wait dt =
  if dt < 0.0 then invalid_arg "Engine.wait: negative duration";
  Effect.perform (Wait dt)

let time () = Effect.perform Time

let spawn t ?(name = "process") body =
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait dt ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let resume_name = t.current in
                schedule t dt (fun () ->
                    t.current <- resume_name;
                    Effect.Deep.continue k ()))
          | Time -> Some (fun (k : (a, unit) Effect.Deep.continuation) -> Effect.Deep.continue k t.enow)
          | Suspend register ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let resume_name = t.current in
                t.suspend_id <- t.suspend_id + 1;
                let sid = t.suspend_id in
                Hashtbl.replace t.suspended sid resume_name;
                register (fun () ->
                    schedule t 0.0 (fun () ->
                        Hashtbl.remove t.suspended sid;
                        t.current <- resume_name;
                        Effect.Deep.continue k ())))
          | _ -> None);
    }
  in
  schedule t 0.0 (fun () ->
      t.current <- name;
      Effect.Deep.match_with body () handler)

type run_result = { end_time : float; events : int; deadlocked : string list }

let run ?until t =
  let continue_run () =
    match Heap.peek t.queue with
    | None -> false
    | Some ev -> ( match until with None -> true | Some u -> ev.etime <= u)
  in
  while continue_run () do
    let ev = Heap.pop_exn t.queue in
    t.enow <- Float.max t.enow ev.etime;
    t.events <- t.events + 1;
    ev.fn ()
  done;
  let deadlocked = Hashtbl.fold (fun _ name acc -> name :: acc) t.suspended [] in
  { end_time = t.enow; events = t.events; deadlocked = List.sort_uniq compare deadlocked }

module Channel = struct
  type engine = t

  type t = {
    eng : engine;
    cname : string;
    capacity : float;
    mutable clevel : float;
    mutable pushers : (unit -> unit) list;
    mutable pullers : (unit -> unit) list;
    mutable pushed : float;
    mutable pulled : float;
  }

  let create eng ~name ~capacity =
    if capacity <= 0.0 then invalid_arg "Channel.create: capacity must be positive";
    { eng; cname = name; capacity; clevel = 0.0; pushers = []; pullers = []; pushed = 0.0; pulled = 0.0 }

  let wake_pullers ch =
    let ws = ch.pullers in
    ch.pullers <- [];
    List.iter (fun w -> w ()) (List.rev ws)

  let wake_pushers ch =
    let ws = ch.pushers in
    ch.pushers <- [];
    List.iter (fun w -> w ()) (List.rev ws)

  (* Tolerances are relative to the magnitudes involved: channels move
     hundreds of megabytes in repeated chunks, so absolute epsilons would
     let rounding residue wedge a full pipeline. *)
  let eps = 1e-12
  let slack ch amount = (1e-9 *. (ch.capacity +. Float.abs amount)) +. 1e-9

  let rec push_piece ch amount =
    if amount > eps then begin
      if ch.clevel +. amount <= ch.capacity +. slack ch amount then begin
        ch.clevel <- ch.clevel +. amount;
        ch.pushed <- ch.pushed +. amount;
        wake_pullers ch
      end
      else begin
        Effect.perform (Suspend (fun resume -> ch.pushers <- resume :: ch.pushers));
        push_piece ch amount
      end
    end

  let push ch amount =
    if amount < 0.0 then invalid_arg "Channel.push: negative amount";
    (* Stream oversized messages through in capacity-sized pieces. *)
    let rec go remaining =
      if remaining > eps then begin
        let piece = Float.min remaining ch.capacity in
        push_piece ch piece;
        go (remaining -. piece)
      end
    in
    go amount

  let rec pull_piece ch amount =
    if amount > eps then begin
      if ch.clevel +. slack ch amount >= amount then begin
        ch.clevel <- Float.max 0.0 (ch.clevel -. amount);
        ch.pulled <- ch.pulled +. amount;
        wake_pushers ch
      end
      else begin
        Effect.perform (Suspend (fun resume -> ch.pullers <- resume :: ch.pullers));
        pull_piece ch amount
      end
    end

  let pull ch amount =
    if amount < 0.0 then invalid_arg "Channel.pull: negative amount";
    let rec go remaining =
      if remaining > eps then begin
        let piece = Float.min remaining ch.capacity in
        pull_piece ch piece;
        go (remaining -. piece)
      end
    in
    go amount

  let level ch = ch.clevel
  let total_pushed ch = ch.pushed
  let total_pulled ch = ch.pulled
  let name ch = ch.cname
end

module Server = struct
  type engine = t

  type t = {
    eng : engine;
    sname : string;
    rate : float;
    latency : float;
    per_packet : float;
    packet : float;
    mutable busy_until : float;
    mutable busy : float;
    mutable bytes : float;
  }

  let create eng ~name ~rate_bytes_per_s ?(latency_s = 0.0) ?(per_packet_s = 0.0)
      ?(packet_bytes = 4096.0) () =
    if rate_bytes_per_s <= 0.0 then invalid_arg "Server.create: rate must be positive";
    {
      eng;
      sname = name;
      rate = rate_bytes_per_s;
      latency = latency_s;
      per_packet = per_packet_s;
      packet = packet_bytes;
      busy_until = 0.0;
      busy = 0.0;
      bytes = 0.0;
    }

  let transfer srv amount =
    if amount < 0.0 then invalid_arg "Server.transfer: negative amount";
    let tnow = srv.eng.enow in
    let packets = if amount <= 0.0 then 0.0 else ceil (amount /. srv.packet) in
    let ser = (amount /. srv.rate) +. (packets *. srv.per_packet) in
    let start = Float.max tnow srv.busy_until in
    srv.busy_until <- start +. ser;
    srv.busy <- srv.busy +. ser;
    srv.bytes <- srv.bytes +. amount;
    wait (srv.busy_until -. tnow +. srv.latency)

  let busy_time srv = srv.busy
  let bytes_moved srv = srv.bytes
  let name srv = srv.sname
end
