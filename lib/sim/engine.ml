open Tapa_cs_util

type event = { etime : float; seq : int; fn : unit -> unit }

(* Growable FIFO ring for the zero-delay events (process wake-ups and
   spawns).  They are always scheduled at the current simulated time with
   a fresh (strictly larger) sequence number, so arrival order here IS
   (etime, seq) order — an O(1) append/pop replaces a heap round-trip for
   roughly half of a dataflow simulation's events. *)
module Ring = struct
  type t = { mutable data : event array; mutable head : int; mutable len : int }

  let dummy = { etime = 0.0; seq = 0; fn = ignore }
  let create () = { data = Array.make 64 dummy; head = 0; len = 0 }

  let push r ev =
    let cap = Array.length r.data in
    if r.len = cap then begin
      let nd = Array.make (2 * cap) dummy in
      for i = 0 to r.len - 1 do
        nd.(i) <- r.data.((r.head + i) mod cap)
      done;
      r.data <- nd;
      r.head <- 0
    end;
    r.data.((r.head + r.len) mod Array.length r.data) <- ev;
    r.len <- r.len + 1

  let peek r = if r.len = 0 then None else Some r.data.(r.head)

  let pop_exn r =
    if r.len = 0 then raise Not_found;
    let ev = r.data.(r.head) in
    r.data.(r.head) <- dummy;
    r.head <- (r.head + 1) mod Array.length r.data;
    r.len <- r.len - 1;
    ev
end

type t = {
  mutable enow : float;
  queue : event Fourheap.t;
  immediate : Ring.t;
  inline_wake : bool;
  mutable seq : int;
  mutable events : int;
  mutable current : string;
  suspended : (int, string) Hashtbl.t;
  mutable suspend_id : int;
}

let event_cmp a b =
  let c = Float.compare a.etime b.etime in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(inline_wake = false) () =
  {
    enow = 0.0;
    queue = Fourheap.create ~cmp:event_cmp;
    immediate = Ring.create ();
    inline_wake;
    seq = 0;
    events = 0;
    current = "<main>";
    suspended = Hashtbl.create 16;
    suspend_id = 0;
  }

let now t = t.enow

let schedule t dt fn =
  t.seq <- t.seq + 1;
  let etime = t.enow +. dt in
  let ev = { etime; seq = t.seq; fn } in
  (* Events landing exactly at the current time keep FIFO order in the
     ring; anything in the future takes the heap.  [etime = enow] covers
     both literal zero delays and delays that round away. *)
  if etime = t.enow then Ring.push t.immediate ev else Fourheap.push t.queue ev

(* Absolute-time variant of [schedule]: the caller supplies the exact
   event time instead of a delta.  Coalescing depends on this — replaying
   a reference schedule bit-for-bit means reproducing the very float
   values iterated [enow +. dt] additions produce, which a delta-based
   API would re-round. *)
let at t time fn =
  if time < t.enow then invalid_arg "Engine.at: time in the past";
  t.seq <- t.seq + 1;
  let ev = { etime = time; seq = t.seq; fn } in
  if time = t.enow then Ring.push t.immediate ev else Fourheap.push t.queue ev

(* Effects performed by process code.  [Suspend register] hands the
   channel/server a wake thunk; the handler wraps the continuation so the
   wake re-enters through the event queue (keeping determinism).  With
   [inline_wake] the wake instead continues the fiber on the spot, nested
   inside the waker — same simulated time, no queue round-trip, and one
   fewer counted event per rendezvous. *)
type _ Effect.t +=
  | Wait : float -> unit Effect.t
  | WaitUntil : float -> unit Effect.t
  | Time : float Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let wait dt =
  if dt < 0.0 then invalid_arg "Engine.wait: negative duration";
  Effect.perform (Wait dt)

let wait_until time = Effect.perform (WaitUntil time)

let suspend register = Effect.perform (Suspend register)

let time () = Effect.perform Time

let spawn t ?(name = "process") body =
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait dt ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let resume_name = t.current in
                schedule t dt (fun () ->
                    t.current <- resume_name;
                    Effect.Deep.continue k ()))
          | WaitUntil tgt ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if tgt < t.enow then
                  Effect.Deep.discontinue k (Invalid_argument "Engine.wait_until: time in the past")
                else begin
                  let resume_name = t.current in
                  at t tgt (fun () ->
                      t.current <- resume_name;
                      Effect.Deep.continue k ())
                end)
          | Time -> Some (fun (k : (a, unit) Effect.Deep.continuation) -> Effect.Deep.continue k t.enow)
          | Suspend register ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let resume_name = t.current in
                t.suspend_id <- t.suspend_id + 1;
                let sid = t.suspend_id in
                Hashtbl.replace t.suspended sid resume_name;
                if t.inline_wake then
                  register (fun () ->
                      Hashtbl.remove t.suspended sid;
                      let caller = t.current in
                      t.current <- resume_name;
                      Effect.Deep.continue k ();
                      t.current <- caller)
                else
                  register (fun () ->
                      schedule t 0.0 (fun () ->
                          Hashtbl.remove t.suspended sid;
                          t.current <- resume_name;
                          Effect.Deep.continue k ())))
          | _ -> None);
    }
  in
  schedule t 0.0 (fun () ->
      t.current <- name;
      Effect.Deep.match_with body () handler)

type run_result = { end_time : float; events : int; deadlocked : string list }

let next_event t =
  (* Merge the ring and the heap under the (etime, seq) total order: the
     ring is FIFO in that order by construction, so comparing fronts is
     enough to replay exactly the single-heap schedule. *)
  match (Ring.peek t.immediate, Fourheap.peek t.queue) with
  | None, None -> None
  | Some i, None -> Some i
  | None, Some h -> Some h
  | Some i, Some h -> if event_cmp i h <= 0 then Some i else Some h

let pop_event t =
  match (Ring.peek t.immediate, Fourheap.peek t.queue) with
  | Some i, Some h -> if event_cmp i h <= 0 then Ring.pop_exn t.immediate else Fourheap.pop_exn t.queue
  | Some _, None -> Ring.pop_exn t.immediate
  | None, _ -> Fourheap.pop_exn t.queue

let run ?until t =
  let continue_run () =
    match next_event t with
    | None -> false
    | Some ev -> ( match until with None -> true | Some u -> ev.etime <= u)
  in
  while continue_run () do
    let ev = pop_event t in
    t.enow <- Float.max t.enow ev.etime;
    t.events <- t.events + 1;
    ev.fn ()
  done;
  let deadlocked = Hashtbl.fold (fun _ name acc -> name :: acc) t.suspended [] in
  { end_time = t.enow; events = t.events; deadlocked = List.sort_uniq String.compare deadlocked }

module Channel = struct
  type engine = t

  type t = {
    eng : engine;
    cname : string;
    capacity : float;
    mutable clevel : float;
    mutable pushers : (unit -> unit) list;
    mutable pullers : (unit -> unit) list;
    mutable pushed : float;
    mutable pulled : float;
  }

  let create eng ~name ~capacity =
    if capacity <= 0.0 then invalid_arg "Channel.create: capacity must be positive";
    { eng; cname = name; capacity; clevel = 0.0; pushers = []; pullers = []; pushed = 0.0; pulled = 0.0 }

  let wake_pullers ch =
    match ch.pullers with
    | [] -> ()
    | ws ->
      ch.pullers <- [];
      List.iter (fun w -> w ()) (List.rev ws)

  let wake_pushers ch =
    match ch.pushers with
    | [] -> ()
    | ws ->
      ch.pushers <- [];
      List.iter (fun w -> w ()) (List.rev ws)

  (* Tolerances are relative to the magnitudes involved: channels move
     hundreds of megabytes in repeated chunks, so absolute epsilons would
     let rounding residue wedge a full pipeline. *)
  let eps = 1e-12
  let slack ch amount = (1e-9 *. (ch.capacity +. Float.abs amount)) +. 1e-9

  let rec push_piece ch amount =
    if amount > eps then begin
      if ch.clevel +. amount <= ch.capacity +. slack ch amount then begin
        ch.clevel <- ch.clevel +. amount;
        ch.pushed <- ch.pushed +. amount;
        wake_pullers ch
      end
      else begin
        Effect.perform (Suspend (fun resume -> ch.pushers <- resume :: ch.pushers));
        push_piece ch amount
      end
    end

  let push ch amount =
    if amount < 0.0 then invalid_arg "Channel.push: negative amount";
    (* Stream oversized messages through in capacity-sized pieces. *)
    let rec go remaining =
      if remaining > eps then begin
        let piece = Float.min remaining ch.capacity in
        push_piece ch piece;
        go (remaining -. piece)
      end
    in
    go amount

  let rec pull_piece ch amount =
    if amount > eps then begin
      if ch.clevel +. slack ch amount >= amount then begin
        ch.clevel <- Float.max 0.0 (ch.clevel -. amount);
        ch.pulled <- ch.pulled +. amount;
        wake_pushers ch
      end
      else begin
        Effect.perform (Suspend (fun resume -> ch.pullers <- resume :: ch.pullers));
        pull_piece ch amount
      end
    end

  let pull ch amount =
    if amount < 0.0 then invalid_arg "Channel.pull: negative amount";
    let rec go remaining =
      if remaining > eps then begin
        let piece = Float.min remaining ch.capacity in
        pull_piece ch piece;
        go (remaining -. piece)
      end
    in
    go amount

  let level ch = ch.clevel
  let free_space ch = Float.max 0.0 (ch.capacity -. ch.clevel)
  let has_waiting_pushers ch = ch.pushers <> []
  let has_waiting_pullers ch = ch.pullers <> []
  let total_pushed ch = ch.pushed
  let total_pulled ch = ch.pulled
  let name ch = ch.cname
end

module Server = struct
  type engine = t

  type t = {
    eng : engine;
    sname : string;
    rate : float;
    latency : float;
    per_packet : float;
    packet : float;
    mutable busy_until : float;
    mutable busy : float;
    mutable bytes : float;
  }

  let create eng ~name ~rate_bytes_per_s ?(latency_s = 0.0) ?(per_packet_s = 0.0)
      ?(packet_bytes = 4096.0) () =
    if rate_bytes_per_s <= 0.0 then invalid_arg "Server.create: rate must be positive";
    {
      eng;
      sname = name;
      rate = rate_bytes_per_s;
      latency = latency_s;
      per_packet = per_packet_s;
      packet = packet_bytes;
      busy_until = 0.0;
      busy = 0.0;
      bytes = 0.0;
    }

  let service_time srv amount =
    let packets = if amount <= 0.0 then 0.0 else ceil (amount /. srv.packet) in
    (amount /. srv.rate) +. (packets *. srv.per_packet)

  let transfer srv amount =
    if amount < 0.0 then invalid_arg "Server.transfer: negative amount";
    let tnow = srv.eng.enow in
    let ser = service_time srv amount in
    let start = Float.max tnow srv.busy_until in
    srv.busy_until <- start +. ser;
    srv.busy <- srv.busy +. ser;
    srv.bytes <- srv.bytes +. amount;
    wait (srv.busy_until -. tnow +. srv.latency)

  let transfer_batch srv ?(on_piece = fun _ -> ()) ~pieces amount =
    (* One fiber wait for [pieces] back-to-back transfers of [amount]
       each, replicating the unbatched schedule bit-for-bit: the loop
       below performs, per piece, the very float expressions {!transfer}
       would evaluate when called at piece [p-1]'s resume time — not a
       closed form, which rounds differently in the last ulp.  [on_piece
       p] fires at exactly piece [p]'s reference resume instant for the
       intermediate pieces (the caller moves the piece between its
       channels there); the fiber itself resumes at the last piece's.
       Busy time, bytes and the busy horizon accumulate through the same
       iterated additions as [pieces] separate {!transfer}s.

       The whole busy window is claimed up front, so this is only valid
       while no other process shares the server during the batch. *)
    if amount < 0.0 then invalid_arg "Server.transfer: negative amount";
    if pieces <= 0 then invalid_arg "Server.transfer_batch: pieces must be positive";
    let ser = service_time srv amount in
    let tnow = ref srv.eng.enow in
    let final = ref !tnow in
    for p = 1 to pieces do
      let start = Float.max !tnow srv.busy_until in
      srv.busy_until <- start +. ser;
      srv.busy <- srv.busy +. ser;
      srv.bytes <- srv.bytes +. amount;
      let r = !tnow +. (srv.busy_until -. !tnow +. srv.latency) in
      if p < pieces then at srv.eng r (fun () -> on_piece p) else final := r;
      tnow := r
    done;
    wait_until !final

  let busy_time srv = srv.busy
  let bytes_moved srv = srv.bytes
  let name srv = srv.sname
end
