(** Deterministic simulated annealing for capacity-constrained K-way
    assignment — the heuristic arm {!Partition} races against its exact
    branch-and-bound backend.

    All randomness flows from a seeded {!Tapa_cs_util.Prng}, so the
    answer is a pure function of the inputs (same result on every host
    and worker count).  That purity is what keeps the portfolio race's
    arbitration deterministic: racing only changes how soon the losing
    solver stops, never which answer wins. *)

open Tapa_cs_device

type outcome = {
  assignment : int array;
  cost : float;  (** raw distance objective of [assignment] (no penalty) *)
  feasible : bool;  (** capacities and fixed placements all respected *)
  moves : int;  (** accepted moves (uphill and downhill) *)
}

val run :
  areas:Resource.t array ->
  edges:(int * int * float) list ->
  pulls:(int * int * float) list ->
  k:int ->
  capacities:Resource.t array ->
  dist:(int -> int -> int) ->
  fixed:(int * int) list ->
  seed:int ->
  iters:int ->
  init:int array ->
  unit ->
  outcome
(** Anneal from [init] (fixed items never move) with single-item
    relocation moves under a penalized objective (distance cost plus a
    large normalized-overflow penalty, matching the heuristic backend's
    working objective), geometric cooling over [iters] proposals, and
    Metropolis acceptance.  Returns the best {e feasible} assignment
    observed — falling back to the final state, flagged infeasible, when
    the walk never reached feasibility. *)
