open Tapa_cs_util
open Tapa_cs_device
module Ilp = Tapa_cs_ilp

type problem = {
  areas : Resource.t array;
  edges : (int * int * float) list;
  pulls : (int * int * float) list;
  k : int;
  capacities : Resource.t array;
  dist : int -> int -> int;
  fixed : (int * int) list;
}

type strategy = Exact | Heuristic | Auto

type stats = {
  backend : [ `Exact | `Heuristic | `Greedy ];
  runtime_s : float;
  lp_solves : int;
  lp_pivots : int;
  lp_certified : int;
  lp_fallbacks : int;
  bb_nodes : int;
  refinement_moves : int;
  subproblems : int;
  races_exact : int;
  races_anneal : int;
  incumbent_broadcasts : int;
  proven_optimal : bool;
  timed_out : bool;
}

type result = { assignment : int array; cost : float; feasible : bool; stats : stats }

(* Solver-counter bundle threaded from Branch_bound solutions up through
   the exact / hierarchical backends into [stats]. *)
type ilp_counters = {
  c_nodes : int;
  c_solves : int;
  c_pivots : int;
  c_cert : int;
  c_fb : int;
}

let zero_counters = { c_nodes = 0; c_solves = 0; c_pivots = 0; c_cert = 0; c_fb = 0 }

let add_counters a b =
  {
    c_nodes = a.c_nodes + b.c_nodes;
    c_solves = a.c_solves + b.c_solves;
    c_pivots = a.c_pivots + b.c_pivots;
    c_cert = a.c_cert + b.c_cert;
    c_fb = a.c_fb + b.c_fb;
  }

let counters_of (sol : Ilp.Branch_bound.solution) =
  {
    c_nodes = sol.nodes;
    c_solves = sol.lp_solves;
    c_pivots = sol.lp_pivots;
    c_cert = sol.lp_certified;
    c_fb = sol.lp_fallbacks;
  }

(* Hierarchy / portfolio-race counter bundle: how many subproblems the
   grouped decomposition spawned, which arm won each race, and how often
   the parallel B&B merge improved its incumbent. *)
type race_stats = { r_sub : int; r_exact : int; r_anneal : int; r_bcast : int }

let zero_race = { r_sub = 0; r_exact = 0; r_anneal = 0; r_bcast = 0 }

let add_race a b =
  {
    r_sub = a.r_sub + b.r_sub;
    r_exact = a.r_exact + b.r_exact;
    r_anneal = a.r_anneal + b.r_anneal;
    r_bcast = a.r_bcast + b.r_bcast;
  }

let num_items p = Array.length p.areas

let prng_for_tests seed = Prng.create seed

let validate p =
  if p.k <= 0 then invalid_arg "Partition: k must be positive";
  if Array.length p.capacities <> p.k then invalid_arg "Partition: one capacity per part";
  List.iter
    (fun (a, b, w) ->
      if a < 0 || a >= num_items p || b < 0 || b >= num_items p then
        invalid_arg "Partition: edge endpoint out of range";
      if w < 0.0 then invalid_arg "Partition: negative edge weight")
    p.edges;
  List.iter
    (fun (i, part) ->
      if i < 0 || i >= num_items p || part < 0 || part >= p.k then
        invalid_arg "Partition: bad fixed placement")
    p.fixed;
  List.iter
    (fun (i, part, _) ->
      if i < 0 || i >= num_items p || part < 0 || part >= p.k then
        invalid_arg "Partition: bad pull")
    p.pulls

let cost_of p assignment =
  let edge_cost =
    List.fold_left
      (fun acc (a, b, w) -> acc +. (w *. float_of_int (p.dist assignment.(a) assignment.(b))))
      0.0 p.edges
  in
  List.fold_left
    (fun acc (i, part, w) -> acc +. (w *. float_of_int (p.dist assignment.(i) part)))
    edge_cost p.pulls

let usage_of p assignment =
  let usage = Array.make p.k Resource.zero in
  Array.iteri (fun i part -> usage.(part) <- Resource.add usage.(part) p.areas.(i)) assignment;
  usage

let feasible_assignment p assignment =
  Array.length assignment = num_items p
  && Array.for_all (fun part -> part >= 0 && part < p.k) assignment
  && List.for_all (fun (i, part) -> assignment.(i) = part) p.fixed
  && (let usage = usage_of p assignment in
      let ok = ref true in
      Array.iteri (fun part u -> if not (Resource.fits u ~within:p.capacities.(part)) then ok := false) usage;
      !ok)

(* ------------------------------------------------------------------ *)
(* Heuristic backend: connectivity-ordered first fit + move refinement. *)
(* ------------------------------------------------------------------ *)

(* Normalized overflow of a part: how far past capacity each resource
   goes, as a fraction; drives infeasible starts back to feasibility. *)
let overflow cap (u : Resource.t) =
  let f used total = if used <= total then 0.0 else float_of_int (used - total) /. float_of_int (Stdlib.max 1 total) in
  f u.Resource.lut cap.Resource.lut +. f u.ff cap.ff +. f u.bram cap.bram +. f u.dsp cap.dsp
  +. f u.uram cap.uram

let total_overflow p usage =
  let acc = ref 0.0 in
  Array.iteri (fun part u -> acc := !acc +. overflow p.capacities.(part) u) usage;
  !acc

(* BFS order from a peripheral (lowest-degree) item: on chains and grids
   this yields an order whose prefixes are contiguous regions, which is
   what both first-fit and the prefix sweep need to find minimum cuts. *)
let placement_order ?(perturb = true) p rng =
  let n = num_items p in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b, _) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    p.edges;
  let degree = Array.map List.length adj in
  let visited = Array.make n false in
  let order = ref [] in
  let queue = Queue.create () in
  let starts = Array.init n Fun.id in
  Array.sort (fun a b -> compare (degree.(a), a) (degree.(b), b)) starts;
  Array.iter
    (fun s ->
      if not visited.(s) then begin
        Queue.add s queue;
        visited.(s) <- true;
        while not (Queue.is_empty queue) do
          let v = Queue.pop queue in
          order := v :: !order;
          List.iter
            (fun w ->
              if not visited.(w) then begin
                visited.(w) <- true;
                Queue.add w queue
              end)
            adj.(v)
        done
      end)
    starts;
  let order = Array.of_list (List.rev !order) in
  (* Small random perturbation between multi-starts: swap a few entries.
     The first start keeps the clean BFS order, which on chain- and
     grid-shaped designs yields contiguous (and thus min-cut) prefixes. *)
  if perturb then
    for _ = 1 to Array.length order / 4 do
      let i = Prng.int rng (Array.length order) and j = Prng.int rng (Array.length order) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
  order

let heuristic_once ?(perturb = true) p rng =
  let n = num_items p in
  let fixed_part = Array.make n (-1) in
  List.iter (fun (i, part) -> fixed_part.(i) <- part) p.fixed;
  let assignment = Array.make n (-1) in
  let usage = Array.make p.k Resource.zero in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b, w) ->
      adj.(a) <- (b, w) :: adj.(a);
      adj.(b) <- (a, w) :: adj.(b))
    p.edges;
  let pulls_of = Array.make n [] in
  List.iter (fun (i, part, w) -> pulls_of.(i) <- (part, w) :: pulls_of.(i)) p.pulls;
  (* Incremental cost of placing item [i] on [part] given current placement. *)
  let place_cost i part =
    let c = ref 0.0 in
    List.iter
      (fun (j, w) -> if assignment.(j) >= 0 then c := !c +. (w *. float_of_int (p.dist part assignment.(j))))
      adj.(i);
    List.iter (fun (tp, w) -> c := !c +. (w *. float_of_int (p.dist part tp))) pulls_of.(i);
    !c
  in
  let place i part =
    assignment.(i) <- part;
    usage.(part) <- Resource.add usage.(part) p.areas.(i)
  in
  let order = placement_order ~perturb p rng in
  Array.iter
    (fun i ->
      if fixed_part.(i) >= 0 then place i fixed_part.(i)
      else begin
        let best = ref (-1) and best_key = ref (infinity, infinity) in
        for part = 0 to p.k - 1 do
          let after = Resource.add usage.(part) p.areas.(i) in
          let fits = Resource.fits after ~within:p.capacities.(part) in
          let util = Resource.utilization after ~total:p.capacities.(part) in
          let key = (place_cost i part +. (if fits then 0.0 else 1e9 *. (1.0 +. overflow p.capacities.(part) after)), util) in
          if key < !best_key then begin
            best_key := key;
            best := part
          end
        done;
        place i !best
      end)
    order;
  (* Move refinement: relocate single items while it strictly helps.  The
     working objective adds a large overflow penalty so infeasible starts
     can be repaired. *)
  let penalty = 1e7 in
  let objective () = cost_of p assignment +. (penalty *. total_overflow p usage) in
  let moves = ref 0 in
  let improved = ref true in
  let passes = ref 0 in
  let items = Array.init n Fun.id in
  while !improved && !passes < 40 do
    improved := false;
    incr passes;
    Prng.shuffle rng items;
    Array.iter
      (fun i ->
        if fixed_part.(i) < 0 then begin
          let cur = assignment.(i) in
          let cur_obj = ref (objective ()) in
          for part = 0 to p.k - 1 do
            if part <> assignment.(i) then begin
              let old = assignment.(i) in
              usage.(old) <- Resource.sub usage.(old) p.areas.(i);
              usage.(part) <- Resource.add usage.(part) p.areas.(i);
              assignment.(i) <- part;
              let obj = objective () in
              if obj < !cur_obj -. 1e-9 then begin
                cur_obj := obj;
                incr moves;
                improved := true
              end
              else begin
                (* revert *)
                usage.(part) <- Resource.sub usage.(part) p.areas.(i);
                usage.(old) <- Resource.add usage.(old) p.areas.(i);
                assignment.(i) <- old
              end
            end
          done;
          ignore cur
        end)
      items
  done;
  (assignment, !moves)

(* For two-way instances, sweep every contiguous BFS-prefix cut.  On
   chain- and grid-shaped dataflow designs (stencil chains, systolic
   arrays) the optimal bisection is a contiguous prefix, which single-move
   refinement cannot always reach across zero-gain plateaus. *)
let sweep_two_way p =
  if p.k <> 2 then None
  else begin
    let n = num_items p in
    let order = placement_order ~perturb:false p (Prng.create 0) in
    let fixed_part = Array.make n (-1) in
    List.iter (fun (i, part) -> fixed_part.(i) <- part) p.fixed;
    let best = ref None in
    let assignment = Array.make n 1 in
    (* Start with everything on part 1, move the prefix to part 0 one item
       at a time, re-evaluating cost and feasibility at each cut.  Equal
       costs (every cut of a uniform chain) break toward the balanced cut
       so recursive sub-levels stay solvable. *)
    for cut = 1 to n - 1 do
      assignment.(order.(cut - 1)) <- 0;
      let ok = Array.for_all (fun i -> fixed_part.(i) < 0 || assignment.(i) = fixed_part.(i)) (Array.init n Fun.id) in
      if ok && feasible_assignment p assignment then begin
        let c = cost_of p assignment in
        let usage = usage_of p assignment in
        let balance =
          Float.max
            (Resource.utilization usage.(0) ~total:p.capacities.(0))
            (Resource.utilization usage.(1) ~total:p.capacities.(1))
        in
        match !best with
        | Some (bc, bb, _) when bc < c -. 1e-12 || (Float.abs (bc -. c) <= 1e-12 && bb <= balance) -> ()
        | _ -> best := Some (c, balance, Array.copy assignment)
      end
    done;
    Option.map (fun (c, _, a) -> (a, c)) !best
  end

let heuristic ?(starts = 4) ~seed p =
  let rng = Prng.create seed in
  let best = ref None in
  let total_moves = ref 0 in
  let consider assignment moves =
    total_moves := !total_moves + moves;
    let feasible = feasible_assignment p assignment in
    let cost = cost_of p assignment in
    let better =
      match !best with
      | None -> true
      | Some (bf, bc, _) -> (feasible && not bf) || (feasible = bf && cost < bc -. 1e-12)
    in
    if better then best := Some (feasible, cost, Array.copy assignment)
  in
  for start = 1 to starts do
    let assignment, moves = heuristic_once ~perturb:(start > 1) p (Prng.split rng) in
    consider assignment moves
  done;
  (match sweep_two_way p with Some (a, _) -> consider a 0 | None -> ());
  match !best with
  | None -> None
  | Some (feasible, cost, assignment) -> Some (assignment, cost, feasible, !total_moves)

(* ------------------------------------------------------------------ *)
(* Exact backend: 0-1 ILP with pairwise distance linearization.        *)
(* ------------------------------------------------------------------ *)

(* Edge weights are floats (bit widths scaled by λ); the ILP needs exact
   rationals.  Weights come from integer bit widths and small rational λ,
   so a bounded-denominator conversion is exact in practice. *)
let rat_of_weight w = Rat.of_float_approx ~max_den:10_000 w

(* Exact rational objective of an assignment — the same arithmetic the
   ILP objective uses (edge weights through [rat_of_weight], integer
   distances), so equality with the root LP bound is a proof of
   optimality for the portfolio racer's annealing arm. *)
let cost_rat p assignment =
  let d a b = Rat.of_int (p.dist a b) in
  let edge =
    List.fold_left
      (fun acc (a, b, w) ->
        Rat.add acc (Rat.mul (rat_of_weight w) (d assignment.(a) assignment.(b))))
      Rat.zero p.edges
  in
  List.fold_left
    (fun acc (i, part, w) -> Rat.add acc (Rat.mul (rat_of_weight w) (d assignment.(i) part)))
    edge p.pulls

(* Lower a problem to its 0-1 ILP.  Returns the model, the encoded warm
   incumbent (when given) and the decoder from ILP variable values back
   to an assignment.  Shared by the flat exact backend and the portfolio
   racer, which additionally needs the model itself for the root LP
   bound and the parallel subtree search. *)
let build_ilp ~incumbent p =
  let n = num_items p in
  let m = Ilp.Model.create () in
  let r_area (r : Resource.t) = [ r.lut; r.ff; r.bram; r.dsp; r.uram ] in
  let r_names = [ "LUT"; "FF"; "BRAM"; "DSP"; "URAM" ] in
  let r_name ridx = List.nth r_names ridx in
  if p.k = 2 then begin
    (* One binary per item: its part index. *)
    let y = Array.init n (fun i -> Ilp.Model.add_var m ~name:(Printf.sprintf "y%d" i) Ilp.Model.Binary) in
    List.iter
      (fun (i, part) ->
        Ilp.Model.add_constraint m
          ~name:(Printf.sprintf "fix[%d]" i)
          (Ilp.Linear.var y.(i)) Ilp.Model.Eq (Rat.of_int part))
      p.fixed;
    (* Capacity of part 1: sum area*y <= cap1.  Part 0: total - sum area*y <= cap0. *)
    List.iteri
      (fun ridx _ ->
        let pick r = List.nth (r_area r) ridx in
        let expr = Ilp.Linear.of_terms (List.init n (fun i -> (y.(i), Rat.of_int (pick p.areas.(i))))) in
        Ilp.Model.add_constraint m
          ~name:(Printf.sprintf "cap[p1].%s" (r_name ridx))
          expr Ilp.Model.Le (Rat.of_int (pick p.capacities.(1)));
        let total = Array.fold_left (fun acc a -> acc + pick a) 0 p.areas in
        Ilp.Model.add_constraint m
          ~name:(Printf.sprintf "cap[p0].%s" (r_name ridx))
          expr Ilp.Model.Ge (Rat.of_int (total - pick p.capacities.(0))))
      (r_area Resource.zero);
    let d01 = p.dist 0 1 in
    let obj = ref Ilp.Linear.zero in
    let cut_vars =
      List.map
        (fun (a, b, w) ->
          let e = Ilp.Model.add_var m Ilp.Model.Continuous ~ub:Rat.one in
          let open Ilp.Linear in
          Ilp.Model.add_constraint m (sub (var e) (sub (var y.(a)) (var y.(b)))) Ilp.Model.Ge Rat.zero;
          Ilp.Model.add_constraint m (sub (var e) (sub (var y.(b)) (var y.(a)))) Ilp.Model.Ge Rat.zero;
          obj := add !obj (var e ~coeff:(Rat.mul (rat_of_weight w) (Rat.of_int d01)));
          (e, a, b))
        p.edges
    in
    List.iter
      (fun (i, part, w) ->
        (* w * dist(y_i, part) = w*d(0,part) + w*(d(1,part)-d(0,part))*y_i *)
        let d0 = p.dist 0 part and d1 = p.dist 1 part in
        let wr = rat_of_weight w in
        let open Ilp.Linear in
        obj := add !obj (constant (Rat.mul wr (Rat.of_int d0)));
        obj := add !obj (var y.(i) ~coeff:(Rat.mul wr (Rat.of_int (d1 - d0)))))
      p.pulls;
    Ilp.Model.set_objective m Ilp.Model.Minimize !obj;
    let incumbent_values =
      Option.map
        (fun assign ->
          let values = Array.make (Ilp.Model.num_vars m) Rat.zero in
          Array.iteri (fun i part -> values.(y.(i)) <- Rat.of_int part) assign;
          List.iter
            (fun (e, a, b) -> values.(e) <- Rat.of_int (abs (assign.(a) - assign.(b))))
            cut_vars;
          values)
        incumbent
    in
    let decode values =
      Array.init n (fun i -> if Rat.is_zero values.(y.(i)) then 0 else 1)
    in
    (m, incumbent_values, decode)
  end
  else begin
    (* x.(i).(part) assignment binaries. *)
    let x =
      Array.init n (fun i ->
          Array.init p.k (fun part ->
              Ilp.Model.add_var m ~name:(Printf.sprintf "x%d_%d" i part) Ilp.Model.Binary))
    in
    for i = 0 to n - 1 do
      let expr = Ilp.Linear.of_terms (List.init p.k (fun part -> (x.(i).(part), Rat.one))) in
      Ilp.Model.add_constraint m ~name:(Printf.sprintf "assign[%d]" i) expr Ilp.Model.Eq Rat.one
    done;
    List.iter
      (fun (i, part) ->
        Ilp.Model.add_constraint m
          ~name:(Printf.sprintf "fix[%d]" i)
          (Ilp.Linear.var x.(i).(part)) Ilp.Model.Eq Rat.one)
      p.fixed;
    for part = 0 to p.k - 1 do
      List.iteri
        (fun ridx _ ->
          let pick r = List.nth (r_area r) ridx in
          let expr =
            Ilp.Linear.of_terms (List.init n (fun i -> (x.(i).(part), Rat.of_int (pick p.areas.(i)))))
          in
          Ilp.Model.add_constraint m
            ~name:(Printf.sprintf "cap[p%d].%s" part (r_name ridx))
            expr Ilp.Model.Le (Rat.of_int (pick p.capacities.(part))))
        (r_area Resource.zero)
    done;
    let obj = ref Ilp.Linear.zero in
    let zvars = ref [] in
    List.iter
      (fun (a, b, w) ->
        for pa = 0 to p.k - 1 do
          for pb = 0 to p.k - 1 do
            let d = p.dist pa pb in
            if d > 0 then begin
              let z = Ilp.Model.add_var m Ilp.Model.Continuous ~ub:Rat.one in
              let open Ilp.Linear in
              (* z >= x_a,pa + x_b,pb - 1 *)
              Ilp.Model.add_constraint m
                (sub (var z) (add (var x.(a).(pa)) (var x.(b).(pb))))
                Ilp.Model.Ge Rat.minus_one;
              obj := add !obj (var z ~coeff:(Rat.mul (rat_of_weight w) (Rat.of_int d)));
              zvars := (z, a, pa, b, pb) :: !zvars
            end
          done
        done)
      p.edges;
    List.iter
      (fun (i, part, w) ->
        let wr = rat_of_weight w in
        for pa = 0 to p.k - 1 do
          let d = p.dist pa part in
          if d > 0 then
            obj := Ilp.Linear.add !obj (Ilp.Linear.var x.(i).(pa) ~coeff:(Rat.mul wr (Rat.of_int d)))
        done)
      p.pulls;
    Ilp.Model.set_objective m Ilp.Model.Minimize !obj;
    let incumbent_values =
      Option.map
        (fun assign ->
          let values = Array.make (Ilp.Model.num_vars m) Rat.zero in
          Array.iteri (fun i part -> values.(x.(i).(part)) <- Rat.one) assign;
          List.iter
            (fun (z, a, pa, b, pb) ->
              if assign.(a) = pa && assign.(b) = pb then values.(z) <- Rat.one)
            !zvars;
          values)
        incumbent
    in
    let decode values =
      Array.init n (fun i ->
          let part = ref 0 in
          for pa = 0 to p.k - 1 do
            if Rat.equal values.(x.(i).(pa)) Rat.one then part := pa
          done;
          !part)
    in
    (m, incumbent_values, decode)
  end

let exact ?deadline_s ?timeout_flag ~incumbent p =
  let mark_timeout () = Option.iter (fun r -> r := true) timeout_flag in
  let m, incumbent_values, decode = build_ilp ~incumbent p in
  match
    Ilp.Branch_bound.solve ~max_nodes:800 ~max_pivots:300_000 ~stall_nodes:80 ?deadline_s
      ?incumbent:incumbent_values m
  with
  | (Ilp.Branch_bound.Optimal sol | Ilp.Branch_bound.Feasible sol | Ilp.Branch_bound.Timeout (Some sol))
    as result ->
    (match result with Ilp.Branch_bound.Timeout _ -> mark_timeout () | _ -> ());
    let proven = match result with Ilp.Branch_bound.Optimal _ -> true | _ -> false in
    Some (decode sol.values, counters_of sol, proven)
  | Ilp.Branch_bound.Infeasible | Ilp.Branch_bound.Unbounded -> None
  | Ilp.Branch_bound.Timeout None ->
    mark_timeout ();
    None

(* ------------------------------------------------------------------ *)
(* Hierarchical backend for k > 2: recursive two-way bisection over
   contiguous part ranges (exact at each level when small enough), then a
   global move-refinement polish.  Mirrors the paper's own "two-way
   ILP-based partitioning scheme" (§4.5) applied at the cluster level.    *)
(* ------------------------------------------------------------------ *)

let avg_dist p parts target =
  let s = List.fold_left (fun acc q -> acc + p.dist q target) 0 parts in
  float_of_int s /. float_of_int (List.length parts)

let refine_global p assignment =
  let n = num_items p in
  let usage = usage_of p assignment in
  let fixed_part = Array.make n (-1) in
  List.iter (fun (i, part) -> fixed_part.(i) <- part) p.fixed;
  let penalty = 1e7 in
  let objective () = cost_of p assignment +. (penalty *. total_overflow p usage) in
  let moves = ref 0 in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < 20 do
    improved := false;
    incr passes;
    for i = 0 to n - 1 do
      if fixed_part.(i) < 0 then begin
        let cur_obj = ref (objective ()) in
        for part = 0 to p.k - 1 do
          if part <> assignment.(i) then begin
            let old = assignment.(i) in
            usage.(old) <- Resource.sub usage.(old) p.areas.(i);
            usage.(part) <- Resource.add usage.(part) p.areas.(i);
            assignment.(i) <- part;
            let obj = objective () in
            if obj < !cur_obj -. 1e-9 then begin
              cur_obj := obj;
              incr moves;
              improved := true
            end
            else begin
              usage.(part) <- Resource.sub usage.(part) p.areas.(i);
              usage.(old) <- Resource.add usage.(old) p.areas.(i);
              assignment.(i) <- old
            end
          end
        done
      end
    done
  done;
  !moves

let solve_two_way ~strategy ~seed ~exact_var_limit sub =
  let h = heuristic ~seed sub in
  let incumbent = match h with Some (a, _, true, _) -> Some a | _ -> None in
  let try_exact () =
    if num_items sub <= exact_var_limit then exact ~incumbent sub else None
  in
  match strategy with
  | Heuristic -> (
    match h with Some (a, _, true, m) -> Some (a, zero_counters, m, false) | _ -> None)
  | Exact -> (
    match exact ~incumbent:None sub with
    | Some (a, counters, proven) -> Some (a, counters, 0, proven)
    | None -> None)
  | Auto -> (
    match h with
    (* A feasible zero-cost split is optimal by definition (costs are
       nonnegative): skip the ILP entirely. *)
    | Some (a, cost, true, m) when cost <= 1e-12 -> Some (a, zero_counters, m, true)
    | _ -> (
      match try_exact () with
      | Some (a, counters, proven) -> Some (a, counters, 0, proven)
      | None -> (
        match h with Some (a, _, true, m) -> Some (a, zero_counters, m, false) | _ -> None)))

let hierarchical ~strategy ~seed ~exact_var_limit p =
  let n = num_items p in
  let assignment = Array.make n (-1) in
  let fixed_part = Array.make n (-1) in
  List.iter (fun (i, part) -> fixed_part.(i) <- part) p.fixed;
  let counters = ref zero_counters and moves = ref 0 in
  let failed = ref false in
  (* BFS over (part range, member items); sibling ranges are known, so
     edges leaving the current range become pulls toward whichever half
     sits closer to the partner's (eventual) range. *)
  let range_of = Array.make n (0, p.k) in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b, w) ->
      adj.(a) <- (b, w) :: adj.(a);
      adj.(b) <- (a, w) :: adj.(b))
    p.edges;
  let pulls_of = Array.make n [] in
  List.iter (fun (i, part, w) -> pulls_of.(i) <- (part, w) :: pulls_of.(i)) p.pulls;
  let queue = Queue.create () in
  Queue.add ((0, p.k), List.init n Fun.id) queue;
  while (not (Queue.is_empty queue)) && not !failed do
    let (lo, hi), members = Queue.pop queue in
    if hi - lo = 1 then List.iter (fun i -> assignment.(i) <- lo) members
    else begin
      let mid = (lo + hi) / 2 in
      let ga = List.init (mid - lo) (fun i -> lo + i) in
      let gb = List.init (hi - mid) (fun i -> mid + i) in
      let cap parts = Resource.sum (List.map (fun q -> p.capacities.(q)) parts) in
      let member_arr = Array.of_list members in
      let index_of = Hashtbl.create 16 in
      Array.iteri (fun i tid -> Hashtbl.replace index_of tid i) member_arr;
      let sub_edges = ref [] and sub_pulls = ref [] and sub_fixed = ref [] in
      let add_pull i target w =
        let da = avg_dist p ga target and db = avg_dist p gb target in
        if Float.abs (da -. db) > 1e-9 && w > 0.0 then
          sub_pulls := (i, (if da < db then 0 else 1), w *. Float.abs (da -. db)) :: !sub_pulls
      in
      Array.iteri
        (fun i tid ->
          List.iter
            (fun (other, w) ->
              match Hashtbl.find_opt index_of other with
              | Some j -> if i < j then sub_edges := (i, j, w) :: !sub_edges
              | None ->
                if assignment.(other) >= 0 then add_pull i assignment.(other) w
                else begin
                  (* partner is in a sibling range; use its range midpoint *)
                  let rlo, rhi = range_of.(other) in
                  add_pull i ((rlo + rhi - 1) / 2) w
                end)
            adj.(tid);
          List.iter (fun (part, w) -> add_pull i part w) pulls_of.(tid);
          if fixed_part.(tid) >= 0 then
            sub_fixed := (i, if fixed_part.(tid) < mid then 0 else 1) :: !sub_fixed)
        member_arr;
      let sub =
        {
          areas = Array.map (fun tid -> p.areas.(tid)) member_arr;
          edges = !sub_edges;
          pulls = !sub_pulls;
          k = 2;
          capacities = [| cap ga; cap gb |];
          dist = (fun a b -> abs (a - b));
          fixed = !sub_fixed;
        }
      in
      match solve_two_way ~strategy ~seed ~exact_var_limit sub with
      | None -> failed := true
      | Some (a, cnt, mv, _) ->
        counters := add_counters !counters cnt;
        moves := !moves + mv;
        let ma = ref [] and mb = ref [] in
        Array.iteri
          (fun i tid ->
            if a.(i) = 0 then begin
              range_of.(tid) <- (lo, mid);
              ma := tid :: !ma
            end
            else begin
              range_of.(tid) <- (mid, hi);
              mb := tid :: !mb
            end)
          member_arr;
        Queue.add ((lo, mid), List.rev !ma) queue;
        Queue.add ((mid, hi), List.rev !mb) queue
    end
  done;
  if !failed then None
  else begin
    moves := !moves + refine_global p assignment;
    Some (assignment, !counters, !moves)
  end

let binary_var_count p = if p.k = 2 then num_items p else num_items p * p.k

(* ------------------------------------------------------------------ *)
(* Greedy backend: deterministic first-fit-decreasing by area.  The last
   rung of the compile path's fallback chain — no search, no randomness,
   always terminates; may return an infeasible or high-cut answer, which
   the caller surfaces as degraded rather than failing outright.         *)
(* ------------------------------------------------------------------ *)

let greedy p =
  validate p;
  let t0 = Sys.time () in
  let n = num_items p in
  if n = 0 then None
  else begin
    let assignment = Array.make n (-1) in
    let usage = Array.make p.k Resource.zero in
    List.iter
      (fun (i, part) ->
        assignment.(i) <- part;
        usage.(part) <- Resource.add usage.(part) p.areas.(i))
      p.fixed;
    (* Biggest items first (ties broken by id for determinism), each onto
       the fitting part with the lowest resulting utilization; when
       nothing fits, the least-overflowing part. *)
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        compare
          (Resource.utilization p.areas.(b) ~total:p.capacities.(0), a)
          (Resource.utilization p.areas.(a) ~total:p.capacities.(0), b))
      order;
    Array.iter
      (fun i ->
        if assignment.(i) < 0 then begin
          let best = ref 0 and best_key = ref (infinity, infinity) in
          for part = 0 to p.k - 1 do
            let after = Resource.add usage.(part) p.areas.(i) in
            let fits = Resource.fits after ~within:p.capacities.(part) in
            let util = Resource.utilization after ~total:p.capacities.(part) in
            let key =
              ((if fits then 0.0 else 1e9 *. (1.0 +. overflow p.capacities.(part) after)), util)
            in
            if key < !best_key then begin
              best_key := key;
              best := part
            end
          done;
          assignment.(i) <- !best;
          usage.(!best) <- Resource.add usage.(!best) p.areas.(i)
        end)
      order;
    Some
      {
        assignment;
        cost = cost_of p assignment;
        feasible = feasible_assignment p assignment;
        stats =
          {
            backend = `Greedy;
            runtime_s = Sys.time () -. t0;
            lp_solves = 0;
            lp_pivots = 0;
            lp_certified = 0;
            lp_fallbacks = 0;
            bb_nodes = 0;
            refinement_moves = 0;
            subproblems = 0;
            races_exact = 0;
            races_anneal = 0;
            incumbent_broadcasts = 0;
            proven_optimal = false;
            timed_out = false;
          };
      }
  end

(* ------------------------------------------------------------------ *)
(* Portfolio race: deterministic simulated annealing vs parallel exact
   branch-and-bound on the same subproblem.

   Both arms are deterministic, so the race only affects wall-clock: the
   anneal arm "wins" exactly when its feasible answer's exact rational
   cost equals the root LP bound (a proof of optimality), in which case
   the exact arm is cancelled via a shared token and its (now
   wall-clock-dependent) partial counters are discarded.  Otherwise the
   token is never raised, the exact arm runs to its full budget, and the
   arbitration below is a pure function of two deterministic results —
   identical under jobs = 1 and jobs = N.                               *)
(* ------------------------------------------------------------------ *)

let race_iters p = Stdlib.min 200_000 (2_000 * num_items p)

let exact_race ?timeout_flag ?pool ~seed ~incumbent p =
  let mark_timeout () = Option.iter (fun r -> r := true) timeout_flag in
  let m, incumbent_values, decode = build_ilp ~incumbent p in
  let lp_bound =
    match Ilp.Simplex.solve m with
    | Ilp.Simplex.Optimal s -> Some s.objective
    | Ilp.Simplex.Infeasible | Ilp.Simplex.Unbounded -> None
    | exception Ilp.Simplex.Pivot_limit -> None
  in
  let token = Pool.cancel_token () in
  let run_anneal () =
    let init =
      match incumbent with
      | Some a -> Array.copy a
      | None -> (
        match greedy p with Some r -> r.assignment | None -> Array.make (num_items p) 0)
    in
    let o =
      Anneal.run ~areas:p.areas ~edges:p.edges ~pulls:p.pulls ~k:p.k ~capacities:p.capacities
        ~dist:p.dist ~fixed:p.fixed ~seed ~iters:(race_iters p) ~init ()
    in
    let certified =
      o.feasible
      && feasible_assignment p o.assignment
      && (match lp_bound with Some b -> Rat.equal (cost_rat p o.assignment) b | None -> false)
    in
    if certified then Pool.cancel token;
    `Anneal (o, certified)
  in
  let run_bb () =
    let result, ps =
      Ilp.Branch_bound.solve_parallel ~max_nodes:800 ~max_pivots:300_000 ~stall_nodes:80
        ?incumbent:incumbent_values ?pool
        ~should_stop:(fun () -> Pool.cancelled token)
        m
    in
    `Bb (result, ps)
  in
  (* The anneal arm is listed first so the sequential fallback (jobs = 1,
     or a nested call inside a pool worker) runs it before the exact arm:
     cancellation then has the same observable effect in both modes — a
     certified anneal means the exact arm's answer is discarded. *)
  let outs = Pool.parallel_map ?pool (fun f -> f ()) [| run_anneal; run_bb |] in
  let anneal_o, anneal_certified =
    match outs.(0) with `Anneal (o, c) -> (o, c) | _ -> assert false
  in
  let bb_result, bb_par = match outs.(1) with `Bb (r, ps) -> (r, ps) | _ -> assert false in
  if anneal_certified then
    (* Provably optimal: the anneal cost equals the exact root LP bound.
       Only the deterministic root LP solve is accounted — the cancelled
       exact arm's partial counters depend on how fast it was stopped. *)
    Some
      ( anneal_o.assignment,
        { zero_counters with c_solves = 1 },
        true,
        { zero_race with r_anneal = 1 },
        anneal_o.moves )
  else
    match bb_result with
    | (Ilp.Branch_bound.Optimal sol | Ilp.Branch_bound.Feasible sol
      | Ilp.Branch_bound.Timeout (Some sol)) as result ->
      (match result with Ilp.Branch_bound.Timeout _ -> mark_timeout () | _ -> ());
      let proven = match result with Ilp.Branch_bound.Optimal _ -> true | _ -> false in
      let a = decode sol.values in
      (* An uncertified but feasible anneal answer can still beat a
         budget-limited exact incumbent; the exact arm wins ties. *)
      if
        (not proven)
        && anneal_o.feasible
        && feasible_assignment p anneal_o.assignment
        && Rat.compare (cost_rat p anneal_o.assignment) (cost_rat p a) < 0
      then
        Some
          ( anneal_o.assignment,
            counters_of sol,
            false,
            { zero_race with r_anneal = 1; r_bcast = bb_par.par_broadcasts },
            anneal_o.moves )
      else
        Some
          (a, counters_of sol, proven, { zero_race with r_exact = 1; r_bcast = bb_par.par_broadcasts }, 0)
    | Ilp.Branch_bound.Infeasible | Ilp.Branch_bound.Unbounded | Ilp.Branch_bound.Timeout None ->
      (match bb_result with Ilp.Branch_bound.Timeout None -> mark_timeout () | _ -> ());
      (* The exact arm's budget-limited "Infeasible" is a conflation (no
         incumbent found in budget); a feasible anneal answer refutes it. *)
      if anneal_o.feasible && feasible_assignment p anneal_o.assignment then
        Some
          ( anneal_o.assignment,
            { zero_counters with c_solves = 1 },
            false,
            { zero_race with r_anneal = 1 },
            anneal_o.moves )
      else None

(* ------------------------------------------------------------------ *)
(* Subproblem fragments: renaming-invariant canonicalization and the
   second-level fragment cache.

   The grouped decomposition re-derives one subproblem per part group
   from scratch on every solve.  After a small design edit, a board
   fault or a farm re-placement, almost all of those subproblems are
   unchanged *up to renaming* — local task ids and part ids shift, the
   content does not.  Each subproblem is therefore canonicalized
   (renaming-invariant digest plus canonical form), solved in canonical
   space with a seed derived from its own content, memoized in a
   process-wide [Util.Memo], and mapped back through the permutation.
   The dirty set falls out for free: groups whose digest changed miss
   the cache and re-solve; untouched groups replay their fragment.

   Determinism contract (same as the solution cache): fragments change
   wall-clock only, never results.  Cold and warm solves are
   byte-identical by construction because *both* solve the canonical
   problem with the content-derived seed — the cache merely skips the
   recomputation.  The caller's seed must not enter fragment identity:
   the farm seeds every placement attempt differently and tenants seed
   independently, so a caller-seeded fragment would never be shared. *)
(* ------------------------------------------------------------------ *)

(* Exact, order-normalized serialization: every input the sub-solver
   consults is in the bytes ([dist] as its full k x k table, floats
   hex-exact, edge/pull/fixed lists sorted), so two problems with equal
   [problem_bytes] are solution-equivalent. *)
let problem_bytes p =
  let buf = Buffer.create 1024 in
  let int i =
    Buffer.add_string buf (string_of_int i);
    Buffer.add_char buf ';'
  in
  let flt f =
    Buffer.add_string buf (Printf.sprintf "%h" f);
    Buffer.add_char buf ';'
  in
  let res (r : Resource.t) = int r.lut; int r.ff; int r.bram; int r.dsp; int r.uram in
  int (num_items p);
  Array.iter res p.areas;
  int p.k;
  Array.iter res p.capacities;
  let edges =
    List.sort compare
      (List.map (fun (a, b, w) -> (Stdlib.min a b, Stdlib.max a b, w)) p.edges)
  in
  int (List.length edges);
  List.iter (fun (a, b, w) -> int a; int b; flt w) edges;
  let pulls = List.sort compare p.pulls in
  int (List.length pulls);
  List.iter (fun (i, part, w) -> int i; int part; flt w) pulls;
  for a = 0 to p.k - 1 do
    for b = 0 to p.k - 1 do
      int (p.dist a b)
    done
  done;
  let fixed = List.sort compare p.fixed in
  int (List.length fixed);
  List.iter (fun (i, part) -> int i; int part) fixed;
  Buffer.contents buf

(* Iterated structural color refinement (Weisfeiler-Leman over the
   bipartite item/part structure).  Initial colors come from content
   (areas, capacities); each round folds in the sorted multiset of each
   element's weighted relations — item edges, pulls in both directions,
   pins, and the distance row for parts.  Renumbering items or permuting
   parts permutes the color arrays but never changes any color value or
   any multiset, which is exactly the invariance the digest needs.  The
   round count is bounded and content-determined (stop when the distinct
   counts stabilize), so it is itself renaming-invariant.  More rounds
   only sharpen the canonical *order* (fewer index tie-breaks); they
   cannot affect correctness — ties are guarded by the exact
   serialization in the cache key, so a tie broken differently across
   renamings costs a cache miss, never a wrong replay. *)
let refine_rounds = 8

let refine_colors p =
  let n = num_items p and k = p.k in
  let dtab = Array.init k (fun a -> Array.init k (fun b -> p.dist a b)) in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b, w) ->
      adj.(a) <- (w, b) :: adj.(a);
      adj.(b) <- (w, a) :: adj.(b))
    p.edges;
  let pulls_of = Array.make n [] and pulled = Array.make k [] in
  List.iter
    (fun (i, part, w) ->
      pulls_of.(i) <- (w, part) :: pulls_of.(i);
      pulled.(part) <- (w, i) :: pulled.(part))
    p.pulls;
  let pins_of = Array.make n [] and pinned = Array.make k [] in
  List.iter
    (fun (i, part) ->
      pins_of.(i) <- part :: pins_of.(i);
      pinned.(part) <- i :: pinned.(part))
    p.fixed;
  let res_str (r : Resource.t) =
    Printf.sprintf "%d,%d,%d,%d,%d" r.lut r.ff r.bram r.dsp r.uram
  in
  let item_c = Array.init n (fun i -> Digest.string ("I" ^ res_str p.areas.(i))) in
  let part_c = Array.init k (fun q -> Digest.string ("P" ^ res_str p.capacities.(q))) in
  let distinct a = List.length (List.sort_uniq compare (Array.to_list a)) in
  let sig_list parts = String.concat "" (List.sort compare parts) in
  let rounds = ref 0 and stable = ref false in
  while (not !stable) && !rounds < refine_rounds do
    let before = (distinct item_c, distinct part_c) in
    let item_c' =
      Array.init n (fun i ->
          let buf = Buffer.create 256 in
          Buffer.add_string buf item_c.(i);
          Buffer.add_char buf 'E';
          Buffer.add_string buf
            (sig_list (List.map (fun (w, j) -> Printf.sprintf "%h|" w ^ item_c.(j)) adj.(i)));
          Buffer.add_char buf 'U';
          Buffer.add_string buf
            (sig_list
               (List.map (fun (w, q) -> Printf.sprintf "%h|" w ^ part_c.(q)) pulls_of.(i)));
          Buffer.add_char buf 'F';
          Buffer.add_string buf (sig_list (List.map (fun q -> part_c.(q)) pins_of.(i)));
          Digest.string (Buffer.contents buf))
    in
    let part_c' =
      Array.init k (fun q ->
          let buf = Buffer.create 256 in
          Buffer.add_string buf part_c.(q);
          Buffer.add_char buf 'D';
          Buffer.add_string buf
            (sig_list
               (List.init k (fun q' -> Printf.sprintf "%d|" dtab.(q).(q') ^ part_c.(q'))));
          Buffer.add_char buf 'U';
          Buffer.add_string buf
            (sig_list (List.map (fun (w, i) -> Printf.sprintf "%h|" w ^ item_c.(i)) pulled.(q)));
          Buffer.add_char buf 'F';
          Buffer.add_string buf (sig_list (List.map (fun i -> item_c.(i)) pinned.(q)));
          Digest.string (Buffer.contents buf))
    in
    Array.blit item_c' 0 item_c 0 n;
    Array.blit part_c' 0 part_c 0 k;
    incr rounds;
    stable := (distinct item_c, distinct part_c) = before
  done;
  (item_c, part_c)

type canon = {
  c_problem : problem;  (* the canonical-space instance *)
  c_bytes : string;  (* [problem_bytes c_problem] *)
  c_digest : string;  (* renaming-invariant digest, hex *)
  c_items : int array;  (* canonical item position -> original item *)
  c_parts : int array;  (* canonical part position -> original part *)
}

let canonicalize p =
  let n = num_items p and k = p.k in
  let item_c, part_c = refine_colors p in
  (* Canonical order: refined color, ties broken by original index.  The
     tie-break is the one renaming-sensitive step — two automorphic
     items can land in either order — which is why the cache key carries
     the full canonical serialization besides the digest. *)
  let items = Array.init n Fun.id in
  Array.sort (fun a b -> compare (item_c.(a), a) (item_c.(b), b)) items;
  let parts = Array.init k Fun.id in
  Array.sort (fun a b -> compare (part_c.(a), a) (part_c.(b), b)) parts;
  let inv_item = Array.make n 0 and inv_part = Array.make k 0 in
  Array.iteri (fun ci oi -> inv_item.(oi) <- ci) items;
  Array.iteri (fun cq oq -> inv_part.(oq) <- cq) parts;
  let dtab = Array.init k (fun a -> Array.init k (fun b -> p.dist parts.(a) parts.(b))) in
  let c_problem =
    {
      areas = Array.map (fun oi -> p.areas.(oi)) items;
      edges =
        List.sort compare
          (List.map
             (fun (a, b, w) ->
               let a = inv_item.(a) and b = inv_item.(b) in
               (Stdlib.min a b, Stdlib.max a b, w))
             p.edges);
      pulls =
        List.sort compare
          (List.map (fun (i, part, w) -> (inv_item.(i), inv_part.(part), w)) p.pulls);
      k;
      capacities = Array.map (fun oq -> p.capacities.(oq)) parts;
      dist = (fun a b -> dtab.(a).(b));
      fixed =
        List.sort compare
          (List.map (fun (i, part) -> (inv_item.(i), inv_part.(part))) p.fixed);
    }
  in
  (* The invariant digest hashes only permutation-invariant views: the
     sorted color multisets and every relation re-expressed in color
     space, sorted. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf ';';
  Buffer.add_string buf (string_of_int k);
  Buffer.add_char buf ';';
  List.iter (Buffer.add_string buf) (List.sort compare (Array.to_list item_c));
  Buffer.add_char buf '/';
  List.iter (Buffer.add_string buf) (List.sort compare (Array.to_list part_c));
  Buffer.add_char buf '/';
  List.iter
    (fun (a, b, w) ->
      Buffer.add_string buf a;
      Buffer.add_string buf b;
      Buffer.add_string buf w;
      Buffer.add_char buf ';')
    (List.sort compare
       (List.map
          (fun (a, b, w) ->
            let ca = item_c.(a) and cb = item_c.(b) in
            (Stdlib.min ca cb, Stdlib.max ca cb, Printf.sprintf "%h" w))
          p.edges));
  Buffer.add_char buf '/';
  List.iter
    (fun (a, b, w) ->
      Buffer.add_string buf a;
      Buffer.add_string buf b;
      Buffer.add_string buf w;
      Buffer.add_char buf ';')
    (List.sort compare
       (List.map (fun (i, q, w) -> (item_c.(i), part_c.(q), Printf.sprintf "%h" w)) p.pulls));
  Buffer.add_char buf '/';
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf a;
      Buffer.add_string buf b;
      Buffer.add_char buf ';')
    (List.sort compare (List.map (fun (i, q) -> (item_c.(i), part_c.(q))) p.fixed));
  let c_digest = Digest.to_hex (Digest.string (Buffer.contents buf)) in
  { c_problem; c_bytes = problem_bytes c_problem; c_digest; c_items = items; c_parts = parts }

let fragment_digest p = (canonicalize p).c_digest

type fragment_stats = {
  frag_hits : int;
  frag_misses : int;
  groups_resolved : int;
  frag_entries : int;
  frag_evictions : int;
}

let frag_cache : (int array * ilp_counters * race_stats * int) option Memo.t =
  Memo.create ~max_entries:8192 ()

let frag_resolved = Atomic.make 0

let fragment_stats () =
  let s = Memo.stats frag_cache in
  {
    frag_hits = s.Memo.hits;
    frag_misses = s.Memo.misses;
    groups_resolved = Atomic.get frag_resolved;
    frag_entries = s.Memo.young_entries + s.Memo.old_entries;
    frag_evictions = s.Memo.evictions;
  }

let reset_fragments () =
  Memo.reset frag_cache;
  Atomic.set frag_resolved 0

(* The canonical-space solve seeds its heuristics from the fragment's
   own content, never from the caller: farm attempts and independent
   tenants all seed differently, and a caller-seeded fragment would
   neither be shared across requests nor renaming-invariant. *)
let frag_seed bytes =
  let d = Digest.string bytes in
  (Char.code d.[0] lor (Char.code d.[1] lsl 8) lor (Char.code d.[2] lsl 16)
  lor (Char.code d.[3] lsl 24))
  land 0x3FFFFFFF

(* One per-group subproblem, solved directly (no cache): the portfolio
   race when the exact arm can afford it — its B&B arm is the parallel
   subtree search, and a certified anneal cancels it early on the easy
   instances — otherwise anneal from the heuristic start with greedy as
   the last rung. *)
let solve_sub_core ?pool ~seed ~exact_var_limit sub =
  if binary_var_count sub <= 2 * exact_var_limit then
    match exact_race ?pool ~seed ~incumbent:None sub with
    | Some (a, cnt, _proven, race, mv) -> Some (a, cnt, { race with r_sub = 1 }, mv)
    | None -> None
  else begin
    let h = heuristic ~seed sub in
    let init =
      match h with
      | Some (a, _, _, _) -> a
      | None -> (
        match greedy sub with Some r -> r.assignment | None -> Array.make (num_items sub) 0)
    in
    let o =
      Anneal.run ~areas:sub.areas ~edges:sub.edges ~pulls:sub.pulls ~k:sub.k
        ~capacities:sub.capacities ~dist:sub.dist ~fixed:sub.fixed ~seed
        ~iters:(race_iters sub) ~init ()
    in
    if o.feasible && feasible_assignment sub o.assignment then
      (* no exact arm ran, so this is not a race win — only [r_sub] *)
      Some (o.assignment, zero_counters, { zero_race with r_sub = 1 }, o.moves)
    else
      match h with
      | Some (a, _, true, mv) -> Some (a, zero_counters, { zero_race with r_sub = 1 }, mv)
      | _ -> (
        (* last rung: first-fit-decreasing, accepted only when feasible *)
        match greedy sub with
        | Some r when r.feasible ->
          Some (r.assignment, zero_counters, { zero_race with r_sub = 1 }, 0)
        | _ -> None)
  end

(* Canonicalize, consult the fragment cache, solve in canonical space on
   a miss, map the assignment back through the item/part permutations.
   The key pairs the invariant digest with a hash of the exact canonical
   serialization (plus the exact-arm budget, which routes the backend):
   a digest collision or an automorphism tie broken differently can only
   cause a miss, never a wrong replay.  The cached array is shared; it
   is read (never mutated) while mapping back into a fresh array. *)
let solve_fragment ?pool ~exact_var_limit sub =
  let c = canonicalize sub in
  let key =
    c.c_digest ^ "/"
    ^ Digest.to_hex (Digest.string c.c_bytes)
    ^ ";" ^ string_of_int exact_var_limit
  in
  let solved, _hit =
    Memo.find_or_compute frag_cache ~key (fun () ->
        Atomic.incr frag_resolved;
        solve_sub_core ?pool ~seed:(frag_seed c.c_bytes) ~exact_var_limit c.c_problem)
  in
  Option.map
    (fun (a, cnt, race, mv) ->
      let back = Array.make (num_items sub) 0 in
      Array.iteri (fun ci part -> back.(c.c_items.(ci)) <- c.c_parts.(part)) a;
      (back, cnt, race, mv))
    solved

(* Cluster-level chunking: the deterministic BFS placement order —
   structure only, no edge weights — packed contiguously into groups
   under a quantized utilization target.  Edit-stable by design:
   changing an edge weight or a pull cannot move a chunk boundary, so
   after a small design edit every untouched group re-derives the same
   subproblem and replays its fragment.  (A capacity change — e.g. a
   dead board — shifts boundaries only from the affected group onward:
   the dirty set is a suffix, not the whole design.)  The legacy greedy
   + cluster anneal (~295 ms of the 703 ms 100-FPGA/1000-task pin, and
   weight-sensitive: one edited weight reshuffles every group) remains
   the fallback when chunking cannot place feasibly. *)
let cluster_chunk gproblem =
  let n = num_items gproblem and g = gproblem.k in
  let fixed_part = Array.make n (-1) in
  List.iter (fun (i, part) -> fixed_part.(i) <- part) gproblem.fixed;
  let assignment = Array.make n (-1) in
  let usage = Array.make g Resource.zero in
  for i = 0 to n - 1 do
    if fixed_part.(i) >= 0 then begin
      assignment.(i) <- fixed_part.(i);
      usage.(fixed_part.(i)) <- Resource.add usage.(fixed_part.(i)) gproblem.areas.(i)
    end
  done;
  (* Fill groups toward a common utilization target with a little slack,
     quantized to 1/32 so a marginal change in total area or capacity
     cannot shift every boundary. *)
  let total_area = Resource.sum (Array.to_list gproblem.areas) in
  let total_cap = Resource.sum (Array.to_list gproblem.capacities) in
  let u = Resource.utilization total_area ~total:total_cap in
  let target = Float.min 1.0 (1.10 *. (Float.ceil (u *. 32.0) /. 32.0)) in
  let order = placement_order ~perturb:false gproblem (Prng.create 0) in
  let gi = ref 0 and ok = ref true in
  Array.iter
    (fun i ->
      if assignment.(i) < 0 then begin
        let fits q =
          Resource.fits
            (Resource.add usage.(q) gproblem.areas.(i))
            ~within:gproblem.capacities.(q)
        in
        let below q =
          Resource.utilization
            (Resource.add usage.(q) gproblem.areas.(i))
            ~total:gproblem.capacities.(q)
          <= target
        in
        (* monotone group pointer: chunks are contiguous in BFS order *)
        while !gi < g - 1 && not (fits !gi && below !gi) do
          incr gi
        done;
        if fits !gi then begin
          assignment.(i) <- !gi;
          usage.(!gi) <- Resource.add usage.(!gi) gproblem.areas.(i)
        end
        else ok := false
      end)
    order;
  if !ok && feasible_assignment gproblem assignment then Some assignment else None

(* ------------------------------------------------------------------ *)
(* Grouped decomposition (hierarchical floorplanning across server
   nodes): a cluster-level assignment of items to part *groups* (the
   FPGAs of one server node), then one independent subproblem per group
   — each a portfolio race — solved concurrently on the pool, stitched
   into a global assignment and polished across the cut.  Feasibility of
   the stitched result is by construction (each subproblem respects its
   own parts' capacities); the final anneal polish only ever replaces it
   with a feasible, no-worse assignment.                                *)
(* ------------------------------------------------------------------ *)

let solve_grouped ~seed ~exact_var_limit ?pool ~groups p =
  let n = num_items p in
  let g_count = 1 + Array.fold_left Stdlib.max 0 groups in
  let gparts = Array.make g_count [] in
  for part = p.k - 1 downto 0 do
    gparts.(groups.(part)) <- part :: gparts.(groups.(part))
  done;
  if Array.exists (fun l -> l = []) gparts then None
  else begin
    let parts_arr = Array.map Array.of_list gparts in
    (* Cluster-level metric: min distance between any two member parts. *)
    let gdist = Array.make_matrix g_count g_count max_int in
    for a = 0 to p.k - 1 do
      for b = 0 to p.k - 1 do
        let ga = groups.(a) and gb = groups.(b) in
        if p.dist a b < gdist.(ga).(gb) then gdist.(ga).(gb) <- p.dist a b
      done
    done;
    let gproblem =
      {
        areas = p.areas;
        edges = p.edges;
        pulls = List.map (fun (i, part, w) -> (i, groups.(part), w)) p.pulls;
        k = g_count;
        capacities =
          (* 10% headroom under the summed member capacities: a group
             filled to the exact sum is a bin-packing instance with zero
             slack, which the per-part subproblem routinely cannot
             split.  The headroom trades a little cluster-level freedom
             for subproblems that actually place. *)
          Array.map
            (fun parts ->
              Resource.scale 0.9 (Resource.sum (List.map (fun q -> p.capacities.(q)) parts)))
            gparts;
        dist = (fun a b -> gdist.(a).(b));
        fixed = List.map (fun (i, part) -> (i, groups.(part))) p.fixed;
      }
    in
    (* Cluster-level solve: deterministic weight-independent BFS
       chunking first (edit-stable, which is what keeps the fragment
       cache warm across design edits), falling back to greedy first
       fit + delta-cost annealing when chunking cannot place.  The
       move-refinement heuristic recomputes the full objective per
       candidate move (O(n * k * E) per pass) — fine at intra-node
       scale, hopeless at 1000 tasks x dozens of groups — whereas the
       annealer's per-proposal cost is O(degree). *)
    let cluster =
      match cluster_chunk gproblem with
      | Some a -> Some (a, zero_counters, 0)
      | None -> (
        match greedy gproblem with
        | None -> None
        | Some g0 ->
          let o =
            Anneal.run ~areas:gproblem.areas ~edges:gproblem.edges ~pulls:gproblem.pulls
              ~k:gproblem.k ~capacities:gproblem.capacities ~dist:gproblem.dist
              ~fixed:gproblem.fixed ~seed
              ~iters:(Stdlib.min 400_000 (400 * n))
              ~init:g0.assignment ()
          in
          if o.feasible && feasible_assignment gproblem o.assignment then
            Some (o.assignment, zero_counters, o.moves)
          else if g0.feasible then Some (g0.assignment, zero_counters, 0)
          else None)
    in
    match cluster with
    | None -> None
    | Some (cluster_assign, cluster_counters, cluster_moves) ->
      (* Gateway part of group g toward group g': the member part closest
         to g'.  Cross-group edges become pulls toward it — the cut-set
         reconciliation that keeps boundary traffic near the links that
         will carry it. *)
      let gateway =
        Array.init g_count (fun g ->
            Array.init g_count (fun g' ->
                if g = g' then parts_arr.(g).(0)
                else begin
                  let best = ref parts_arr.(g).(0) and bestd = ref max_int in
                  Array.iter
                    (fun q ->
                      let d =
                        Array.fold_left
                          (fun acc q' -> Stdlib.min acc (p.dist q q'))
                          max_int parts_arr.(g')
                      in
                      if d < !bestd then begin
                        bestd := d;
                        best := q
                      end)
                    parts_arr.(g);
                  !best
                end))
      in
      let members = Array.make g_count [] in
      for i = n - 1 downto 0 do
        members.(cluster_assign.(i)) <- i :: members.(cluster_assign.(i))
      done;
      let local_part = Array.make p.k (-1) in
      Array.iteri
        (fun _g parts -> Array.iteri (fun li q -> local_part.(q) <- li) parts)
        parts_arr;
      let adj = Array.make n [] in
      List.iter
        (fun (a, b, w) ->
          adj.(a) <- (b, w) :: adj.(a);
          adj.(b) <- (a, w) :: adj.(b))
        p.edges;
      let pulls_of = Array.make n [] in
      List.iter (fun (i, part, w) -> pulls_of.(i) <- (part, w) :: pulls_of.(i)) p.pulls;
      let fixed_part = Array.make n (-1) in
      List.iter (fun (i, part) -> fixed_part.(i) <- part) p.fixed;
      let make_sub g =
        let mem = Array.of_list members.(g) in
        let index_of = Hashtbl.create 16 in
        Array.iteri (fun li tid -> Hashtbl.replace index_of tid li) mem;
        let parts = parts_arr.(g) in
        let sub_edges = ref [] and sub_pulls = ref [] and sub_fixed = ref [] in
        Array.iteri
          (fun li tid ->
            List.iter
              (fun (other, w) ->
                match Hashtbl.find_opt index_of other with
                | Some lj -> if li < lj then sub_edges := (li, lj, w) :: !sub_edges
                | None ->
                  let g' = cluster_assign.(other) in
                  if g' <> g then
                    sub_pulls := (li, local_part.(gateway.(g).(g')), w) :: !sub_pulls)
              adj.(tid);
            List.iter
              (fun (part, w) ->
                let tgt = if groups.(part) = g then part else gateway.(g).(groups.(part)) in
                sub_pulls := (li, local_part.(tgt), w) :: !sub_pulls)
              pulls_of.(tid);
            if fixed_part.(tid) >= 0 then
              sub_fixed := (li, local_part.(fixed_part.(tid))) :: !sub_fixed)
          mem;
        {
          areas = Array.map (fun tid -> p.areas.(tid)) mem;
          edges = !sub_edges;
          pulls = !sub_pulls;
          k = Array.length parts;
          capacities = Array.map (fun q -> p.capacities.(q)) parts;
          dist = (fun a b -> p.dist parts.(a) parts.(b));
          fixed = !sub_fixed;
        }
      in
      (* Every non-empty subproblem goes through the fragment cache: an
         unchanged group replays its cached solution, a dirty group
         re-solves in canonical space (content-derived seed, so the
         answer — and hence the fragment — is shareable across attempts,
         tenants and renamings). *)
      let solve_sub sub =
        if num_items sub = 0 then Some (Array.make 0 0, zero_counters, zero_race, 0)
        else solve_fragment ?pool ~exact_var_limit sub
      in
      let subs = Array.init g_count make_sub in
      let solved = Pool.parallel_map ?pool solve_sub subs in
      if Array.exists Option.is_none solved then None
      else begin
        let assignment = Array.make n (-1) in
        let counters = ref cluster_counters in
        let race = ref { zero_race with r_sub = 1 } in
        let moves = ref cluster_moves in
        Array.iteri
          (fun g s ->
            let a, cnt, rc, mv = Option.get s in
            let mem = Array.of_list members.(g) in
            Array.iteri (fun li tid -> assignment.(tid) <- parts_arr.(g).(a.(li))) mem;
            counters := add_counters !counters cnt;
            race := add_race !race rc;
            moves := !moves + mv)
          solved;
        (* Polish across group boundaries only: interior items are
           pinned, so the anneal explores the cut — the only place the
           decomposition can have lost cost — and its budget scales with
           the boundary size, not the whole design.  Only a feasible,
           no-worse answer may replace the stitched one. *)
        let boundary = Array.make n false in
        List.iter
          (fun (a, b, _) ->
            if cluster_assign.(a) <> cluster_assign.(b) then begin
              boundary.(a) <- true;
              boundary.(b) <- true
            end)
          p.edges;
        List.iter
          (fun (i, part, _) ->
            if groups.(part) <> cluster_assign.(i) then boundary.(i) <- true)
          p.pulls;
        let n_boundary = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 boundary in
        let final =
          if n_boundary = 0 then assignment
          else begin
            let pins = ref p.fixed in
            Array.iteri
              (fun i b ->
                if (not b) && fixed_part.(i) < 0 then pins := (i, assignment.(i)) :: !pins)
              boundary;
            let o =
              Anneal.run ~areas:p.areas ~edges:p.edges ~pulls:p.pulls ~k:p.k
                ~capacities:p.capacities ~dist:p.dist ~fixed:!pins ~seed
                ~iters:(Stdlib.min 200_000 (30 * n_boundary))
                ~init:assignment ()
            in
            if
              o.feasible
              && feasible_assignment p o.assignment
              && cost_of p o.assignment <= cost_of p assignment +. 1e-9
            then begin
              moves := !moves + o.moves;
              o.assignment
            end
            else assignment
          end
        in
        Some (final, !counters, !race, !moves)
      end
  end

let solve_uncached ~strategy ~seed ~exact_var_limit ?deadline_s ?warm_incumbent ?pool ?groups p =
  (* An externally supplied incumbent (e.g. the previous attempt's mapping
     re-checked against relaxed capacities) only helps if it is feasible
     for *this* problem; otherwise it is dropped silently. *)
  let warm_incumbent =
    match warm_incumbent with
    | Some a when feasible_assignment p a -> Some (Array.copy a)
    | _ -> None
  in
  let t0 = Sys.time () in
  let timeout_flag = ref false in
  let finish backend ?(moves = 0) ?(counters = zero_counters) ?(race = zero_race) ~proven
      assignment =
    let cost = cost_of p assignment in
    let feasible = feasible_assignment p assignment in
    Some
      {
        assignment;
        cost;
        feasible;
        stats =
          {
            backend;
            runtime_s = Sys.time () -. t0;
            lp_solves = counters.c_solves;
            lp_pivots = counters.c_pivots;
            lp_certified = counters.c_cert;
            lp_fallbacks = counters.c_fb;
            bb_nodes = counters.c_nodes;
            refinement_moves = moves;
            subproblems = race.r_sub;
            races_exact = race.r_exact;
            races_anneal = race.r_anneal;
            incumbent_broadcasts = race.r_bcast;
            proven_optimal = proven;
            timed_out = !timeout_flag;
          };
      }
  in
  if p.k = 1 then begin
    let assignment = Array.make (num_items p) 0 in
    if feasible_assignment p assignment then finish `Heuristic ~proven:true assignment else None
  end
  else begin
    let run_heuristic () = heuristic ~seed p in
    let run_exact incumbent = exact ?deadline_s ~timeout_flag ~incumbent p in
    match strategy with
    | Heuristic -> (
      match run_heuristic () with
      | Some (assignment, _, feasible, moves) when feasible -> finish `Heuristic ~moves ~proven:false assignment
      | Some _ | None -> None)
    | Exact -> (
      match run_exact warm_incumbent with
      | Some (assignment, counters, proven) -> finish `Exact ~counters ~proven assignment
      | None -> None)
    | Auto -> (
      (* Grouped decomposition fires only for large clusters with a real
         grouping (several groups, each with several parts) and no
         wall-clock deadline: every legacy path stays bit-identical. *)
      let grouped =
        match groups with
        | Some g when deadline_s = None && p.k > 8 && Array.length g = p.k ->
          let gc = 1 + Array.fold_left Stdlib.max 0 g in
          if gc >= 2 && gc < p.k && Array.for_all (fun x -> x >= 0) g then solve_grouped ~seed ~exact_var_limit ?pool ~groups:g p
          else None
        | _ -> None
      in
      match grouped with
      | Some (assignment, counters, race, moves) ->
        finish `Heuristic ~moves ~counters ~race ~proven:false assignment
      | None ->
      let h = run_heuristic () in
      let incumbent =
        let from_h = match h with Some (assignment, _, true, _) -> Some assignment | _ -> None in
        match (warm_incumbent, from_h) with
        | Some w, Some hh -> if cost_of p w <= cost_of p hh then Some w else Some hh
        | Some w, None -> Some w
        | None, hh -> hh
      in
      match h with
      (* A feasible zero-cost assignment is optimal outright. *)
      | Some (assignment, cost, true, moves) when cost <= 1e-12 ->
        finish `Heuristic ~moves ~proven:true assignment
      | _ ->
      (* Joint k-way ILPs carry k*(k-1) linearization variables per edge,
         so they earn a much smaller size budget than two-way instances. *)
      let joint_limit = if p.k = 2 then exact_var_limit else exact_var_limit / 2 in
      if binary_var_count p <= joint_limit then begin
        match run_exact incumbent with
        | Some (assignment, counters, true) ->
          finish `Exact ~counters ~proven:true assignment
        | Some (assignment, counters, false) -> (
          (* Search budget exhausted: the recursive-bisection backend often
             beats a stalled joint search on k > 2 instances. *)
          let hier =
            if p.k > 2 then hierarchical ~strategy:Auto ~seed ~exact_var_limit p else None
          in
          match hier with
          | Some (ha, hc, hm)
            when feasible_assignment p ha && cost_of p ha < cost_of p assignment -. 1e-9 ->
            finish `Heuristic ~moves:hm ~counters:(add_counters counters hc) ~proven:false ha
          | _ -> finish `Exact ~counters ~proven:false assignment)
        | None -> None (* exact proof of infeasibility *)
      end
      else begin
        (* Too large for one joint ILP: recursive two-way bisection (exact
           at each level), falling back to the flat heuristic.  Keep the
           better of the two. *)
        let hier =
          if p.k > 2 then hierarchical ~strategy:Auto ~seed ~exact_var_limit p else None
        in
        let flat = match h with Some (a, c, true, m) -> Some (a, c, m) | _ -> None in
        match (hier, flat) with
        | Some (a, counters, moves), Some (fa, fc, _)
          when feasible_assignment p a && cost_of p a <= fc +. 1e-9 ->
          ignore fa;
          finish `Heuristic ~moves ~counters ~proven:false a
        | Some (a, counters, moves), None when feasible_assignment p a ->
          finish `Heuristic ~moves ~counters ~proven:false a
        | _, Some (fa, _, fm) -> finish `Heuristic ~moves:fm ~proven:false fa
        | Some (a, counters, moves), _ when feasible_assignment p a ->
          finish `Heuristic ~moves ~counters ~proven:false a
        | _ -> None
      end)
  end

(* ------------------------------------------------------------------ *)
(* Content-addressed solution cache.

   Stencil-style designs ask the floorplanner the same question many
   times: identical task graphs partitioned under identical capacities
   recur across compile attempts, fault-injection retries and the
   intra-FPGA levels of a hierarchical run.  Since [solve_uncached] is a
   pure function of its arguments (the PRNG is seeded, the ILP is
   deterministic), the whole [result option] can be memoized under a
   canonical digest of every input that influences the answer.

   Determinism contract: the cache must never change *what* is returned,
   only how fast.  Two consequences shape the code below:
   - [runtime_s] is part of the stored record and is returned verbatim
     on a hit, so cache-cold and cache-warm compiles emit bit-identical
     reports.  Hit/miss observability lives in [cache_stats] only.
   - a wall-clock [deadline_s] budget makes the result host-speed
     dependent, so deadline-bearing calls bypass the cache entirely. *)

let cache : result option Memo.t = Memo.create ()

let cache_key ~strategy ~seed ~exact_var_limit ?warm_incumbent ?groups p =
  let buf = Buffer.create 512 in
  let int i = Buffer.add_string buf (string_of_int i); Buffer.add_char buf ';' in
  let flt f =
    (* %h is exact (hex float): no decimal rounding can merge keys *)
    Buffer.add_string buf (Printf.sprintf "%h" f);
    Buffer.add_char buf ';'
  in
  let res (r : Resource.t) =
    int r.lut; int r.ff; int r.bram; int r.dsp; int r.uram
  in
  Buffer.add_string buf
    (match strategy with Exact -> "E" | Heuristic -> "H" | Auto -> "A");
  int seed;
  int exact_var_limit;
  (match warm_incumbent with
  | None -> Buffer.add_char buf 'n'
  | Some a ->
    Buffer.add_char buf 'w';
    int (Array.length a);
    Array.iter int a);
  int (Array.length p.areas);
  Array.iter res p.areas;
  int (List.length p.edges);
  List.iter (fun (a, b, w) -> int a; int b; flt w) p.edges;
  int (List.length p.pulls);
  List.iter (fun (i, part, w) -> int i; int part; flt w) p.pulls;
  int p.k;
  Array.iter res p.capacities;
  (* [dist] is a function; its observable behaviour on this problem is
     exactly the k x k table, so that table is what gets hashed. *)
  for a = 0 to p.k - 1 do
    for b = 0 to p.k - 1 do
      int (p.dist a b)
    done
  done;
  int (List.length p.fixed);
  List.iter (fun (i, part) -> int i; int part) p.fixed;
  (* The part grouping routes the decomposition, so it is part of the
     answer's identity; the worker pool is deliberately NOT hashed — it
     may only change wall-clock, never the result. *)
  (match groups with
  | None -> Buffer.add_char buf 'n'
  | Some g ->
    Buffer.add_char buf 'g';
    int (Array.length g);
    Array.iter int g);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let solve ?(strategy = Auto) ?(seed = 1) ?(exact_var_limit = 28) ?deadline_s ?warm_incumbent
    ?pool ?groups p =
  validate p;
  match deadline_s with
  | Some _ ->
    solve_uncached ~strategy ~seed ~exact_var_limit ?deadline_s ?warm_incumbent ?pool ?groups p
  | None ->
    let key = cache_key ~strategy ~seed ~exact_var_limit ?warm_incumbent ?groups p in
    let r, _hit =
      Memo.find_or_compute cache ~key (fun () ->
          solve_uncached ~strategy ~seed ~exact_var_limit ?warm_incumbent ?pool ?groups p)
    in
    (* Deep-copy the assignment: callers own their result arrays and a
       mutation must not poison later hits. *)
    Option.map (fun r -> { r with assignment = Array.copy r.assignment }) r

let cache_stats () =
  let s = Memo.stats cache in
  (s.Memo.hits, s.Memo.misses)

(* "Cold means cold": clearing the solution cache also clears the
   fragment cache, so benchmarks and tests that reset before a cold
   measurement cannot be silently warmed by second-level fragments. *)
let reset_cache () =
  Memo.reset cache;
  reset_fragments ()
