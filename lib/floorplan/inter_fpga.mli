(** Level-1 floorplanning (§4.3): map every task to an FPGA of the
    cluster, minimizing width-weighted topology distance (Eq. 2) under the
    per-device utilization threshold (Eq. 1).

    Capacities are reduced by the AlveoLink networking IP overhead on
    every board that participates in inter-FPGA links (§5.6).

    Placement failures are typed (not strings) so callers can react
    per-cause, and every solve runs a graceful-degradation chain: the
    primary partitioner, then warm-started re-solves climbing a
    threshold-relaxation ladder (+0.05 per rung, up to 0.95), then a
    deterministic greedy packer.  Rungs that fire are recorded in
    [fallbacks], and [threshold_used] reports the rung that finally
    succeeded so downstream stages can budget consistently. *)

open Tapa_cs_util
open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls

type t = {
  assignment : int array;  (** task id -> FPGA index *)
  cut_fifos : Fifo.t list;  (** FIFOs crossing devices *)
  traffic_bytes : float;  (** inter-FPGA volume, hop-weighted *)
  per_fpga_usage : Resource.t array;
  per_fpga_util : float array;  (** max component utilization per device *)
  cost : float;  (** Eq. 2 objective of the chosen mapping *)
  stats : Partition.stats;
  fallbacks : string list;
      (** degradation rungs that fired, outermost first: e.g.
          ["degraded(3/4 FPGAs)"; "relaxed-threshold(0.75)"]; empty on the
          happy path *)
  threshold_used : float;
      (** the utilization threshold of the rung that produced this
          mapping; equals the requested threshold unless a
          relaxed-threshold fallback fired *)
}

type error =
  | Infeasible  (** no feasible mapping exists (or none was found) *)
  | Over_capacity of int
      (** every fallback produced only over-capacity mappings; carries the
          smallest number of over-budget devices across attempts *)
  | Solver_timeout
      (** the exact solver hit its wall-clock deadline with no feasible
          incumbent *)

val error_code : error -> string
(** Matching TCS diagnostic code: TCS305 / TCS306 / TCS307 (the linter's
    registry in {!Tapa_cs_analysis.Diagnostic} is the source of truth). *)

val error_message : error -> string
val pp_error : Format.formatter -> error -> unit

val capacities : threshold:float -> Cluster.t -> Resource.t array
(** Per-FPGA resource budgets the partitioner enforces: [threshold] x the
    board totals, minus the AlveoLink networking overhead on every QSFP
    port whenever the cluster spans more than one device.  Exposed so the
    linter's capacity pre-check is consistent with the floorplanner. *)

val run :
  ?strategy:Partition.strategy ->
  ?threshold:float ->
  ?seed:int ->
  ?pool:Pool.t ->
  cluster:Cluster.t ->
  synthesis:Synthesis.report ->
  Taskgraph.t ->
  (t, error) Stdlib.result
(** Floorplan onto the full healthy cluster.  [Error] only after the
    whole fallback chain is exhausted.

    Multi-node clusters route large [Auto] instances through
    {!Partition}'s hierarchical decomposition, grouped by server node —
    the per-node subproblems race exact branch-and-bound against
    simulated annealing concurrently on [pool].  [pool] is a wall-clock
    lever only: the mapping, cost and stats are identical with and
    without it. *)

val run_degraded :
  ?strategy:Partition.strategy ->
  ?threshold:float ->
  ?seed:int ->
  ?pool:Pool.t ->
  ?failed_devices:int list ->
  ?failed_links:(int * int) list ->
  ?masked_devices:int list ->
  ?warm_assignment:int array ->
  cluster:Cluster.t ->
  synthesis:Synthesis.report ->
  Taskgraph.t ->
  (t, error) Stdlib.result
(** Refloorplan onto the surviving sub-topology: [failed_devices] are
    excluded outright, [failed_links] (undirected device pairs) are
    removed from the hop metric, and distances are recomputed by BFS over
    what remains — disconnected pairs get a large finite distance so the
    solve degrades instead of crashing.  The returned [assignment] still
    indexes the original cluster (failed devices simply receive no
    tasks), and [fallbacks] is prefixed with a [degraded(k'/k FPGAs)]
    tag.  With nothing failed this is exactly {!run}.

    [masked_devices] are the multi-tenant overlay: boards owned by other
    tenants receive no tasks but stay in the BFS routing metric (they
    still forward packets), and masking alone adds no [degraded] tag.
    [warm_assignment] seeds the relaxation ladder with a previous
    device-space assignment (tasks stranded on dead or masked devices are
    remapped arbitrarily; an infeasible seed is dropped silently), which
    is how a re-placement after a small fault converges fast. *)

val unreachable_dist : int
(** Surrogate hop count reported for device pairs the surviving topology
    cannot connect — large but finite so solves degrade instead of
    crashing. *)

val survivor_hops :
  ?failed_devices:int list -> ?failed_links:(int * int) list -> Cluster.t -> int -> int -> int
(** [survivor_hops cluster] precomputes (eagerly, O(k^2) BFS) the hop
    metric of the surviving sub-topology that {!run_degraded} uses:
    unit-distance edges of the original topology minus failed devices and
    downed links.  Unreachable or out-of-range pairs get
    {!unreachable_dist}; the diagonal is 0.  Snapshot one of these at
    placement time and hand it to {!affected} as the [baseline]. *)

val devices_used : t -> int list
(** Ascending device indices actually hosting at least one task. *)

val cut_pairs : t -> (int * int) list
(** Normalized [(min, max)] device pairs joined by at least one cut FIFO,
    sorted, deduplicated. *)

val affected : alive:(int -> bool) -> hops:(int -> int -> int) -> baseline:(int -> int -> int) -> t -> bool
(** Does a fleet change touch this placement?  True iff some used device
    is no longer [alive], or some cut pair's hop distance under the
    current [hops] metric differs from the [baseline] snapshot taken when
    the placement was made (covering both links going down {e and}
    recovering). *)

val replace :
  ?strategy:Partition.strategy ->
  ?threshold:float ->
  ?seed:int ->
  ?pool:Pool.t ->
  ?failed_devices:int list ->
  ?failed_links:(int * int) list ->
  ?masked_devices:int list ->
  ?baseline:(int -> int -> int) ->
  prev:t ->
  cluster:Cluster.t ->
  synthesis:Synthesis.report ->
  Taskgraph.t ->
  (t, error) Stdlib.result
(** Incremental re-placement.  When [baseline] is given and {!affected}
    says the fleet change leaves [prev] untouched (all its devices alive
    and unmasked, all its cut-pair hop distances unchanged), returns
    [Ok prev] without solving — the farm's cache-reuse fast path for
    unaffected tenants.  Otherwise {!run_degraded} warm-started from
    [prev.assignment]. *)

val fifos_between : Taskgraph.t -> t -> src_fpga:int -> dst_fpga:int -> Fifo.t list
