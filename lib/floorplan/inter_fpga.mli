(** Level-1 floorplanning (§4.3): map every task to an FPGA of the
    cluster, minimizing width-weighted topology distance (Eq. 2) under the
    per-device utilization threshold (Eq. 1).

    Capacities are reduced by the AlveoLink networking IP overhead on
    every board that participates in inter-FPGA links (§5.6). *)

open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls

type t = {
  assignment : int array;  (** task id -> FPGA index *)
  cut_fifos : Fifo.t list;  (** FIFOs crossing devices *)
  traffic_bytes : float;  (** inter-FPGA volume, hop-weighted *)
  per_fpga_usage : Resource.t array;
  per_fpga_util : float array;  (** max component utilization per device *)
  cost : float;  (** Eq. 2 objective of the chosen mapping *)
  stats : Partition.stats;
}

val capacities : threshold:float -> Cluster.t -> Resource.t array
(** Per-FPGA resource budgets the partitioner enforces: [threshold] x the
    board totals, minus the AlveoLink networking overhead on every QSFP
    port whenever the cluster spans more than one device.  Exposed so the
    linter's capacity pre-check is consistent with the floorplanner. *)

val run :
  ?strategy:Partition.strategy ->
  ?threshold:float ->
  ?seed:int ->
  cluster:Cluster.t ->
  synthesis:Synthesis.report ->
  Taskgraph.t ->
  (t, string) Stdlib.result
(** [Error] carries a human-readable reason (e.g. the design does not fit
    the cluster under the threshold — the analogue of a routing failure). *)

val fifos_between : Taskgraph.t -> t -> src_fpga:int -> dst_fpga:int -> Fifo.t list
