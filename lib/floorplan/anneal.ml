(* Deterministic simulated annealing over capacity-constrained K-way
   assignments — the heuristic arm of the exact-vs-anneal portfolio race.

   The module deliberately takes plain labelled inputs instead of a
   [Partition.problem] so it sits below Partition in the module graph
   (Partition races it against its own exact backend).  Everything is
   driven by a seeded {!Tapa_cs_util.Prng}: same inputs, same answer, on
   every host — which is what lets the racer's arbitration stay
   deterministic while the race itself only shaves wall-clock. *)

open Tapa_cs_util
open Tapa_cs_device

type outcome = {
  assignment : int array;
  cost : float;  (** raw distance objective of [assignment] (no penalty) *)
  feasible : bool;  (** capacities and fixed placements all respected *)
  moves : int;  (** accepted moves (uphill and downhill) *)
}

(* Mirrors Partition's working objective: normalized per-resource
   overshoot, so the penalty scale is comparable across instances. *)
let overflow (cap : Resource.t) (u : Resource.t) =
  let f used total =
    if used <= total then 0.0
    else float_of_int (used - total) /. float_of_int (Stdlib.max 1 total)
  in
  f u.Resource.lut cap.Resource.lut
  +. f u.ff cap.ff +. f u.bram cap.bram +. f u.dsp cap.dsp +. f u.uram cap.uram

let penalty = 1e7

let run ~areas ~edges ~pulls ~k ~capacities ~(dist : int -> int -> int) ~fixed ~seed ~iters
    ~(init : int array) () =
  let n = Array.length areas in
  let assignment = Array.copy init in
  let movable = Array.make n true in
  List.iter (fun (i, _) -> movable.(i) <- false) fixed;
  let adj = Array.make n [] in
  List.iter
    (fun (a, b, w) ->
      adj.(a) <- (b, w) :: adj.(a);
      adj.(b) <- (a, w) :: adj.(b))
    edges;
  let pulls_of = Array.make n [] in
  List.iter (fun (i, part, w) -> pulls_of.(i) <- (part, w) :: pulls_of.(i)) pulls;
  let usage = Array.make k Resource.zero in
  Array.iteri (fun i part -> usage.(part) <- Resource.add usage.(part) areas.(i)) assignment;
  let raw_cost a =
    let c = ref 0.0 in
    List.iter (fun (x, y, w) -> c := !c +. (w *. float_of_int (dist a.(x) a.(y)))) edges;
    List.iter (fun (i, part, w) -> c := !c +. (w *. float_of_int (dist a.(i) part))) pulls;
    !c
  in
  let total_over () =
    let acc = ref 0.0 in
    Array.iteri (fun part u -> acc := !acc +. overflow capacities.(part) u) usage;
    !acc
  in
  (* Delta of the penalized working objective for moving [i] to [dst]. *)
  let move_delta i dst =
    let src = assignment.(i) in
    let d = ref 0.0 in
    List.iter
      (fun (j, w) ->
        if j <> i then
          d := !d +. (w *. float_of_int (dist dst assignment.(j) - dist src assignment.(j))))
      adj.(i);
    List.iter (fun (tp, w) -> d := !d +. (w *. float_of_int (dist dst tp - dist src tp))) pulls_of.(i);
    let a = areas.(i) in
    let over_src = overflow capacities.(src) usage.(src) in
    let over_src' = overflow capacities.(src) (Resource.sub usage.(src) a) in
    let over_dst = overflow capacities.(dst) usage.(dst) in
    let over_dst' = overflow capacities.(dst) (Resource.add usage.(dst) a) in
    !d +. (penalty *. (over_src' -. over_src +. over_dst' -. over_dst))
  in
  let apply i dst =
    let src = assignment.(i) in
    usage.(src) <- Resource.sub usage.(src) areas.(i);
    usage.(dst) <- Resource.add usage.(dst) areas.(i);
    assignment.(i) <- dst
  in
  let moves = ref 0 in
  let best = ref None in
  (* best feasible raw cost seen *)
  let consider_best () =
    if total_over () = 0.0 then begin
      let c = raw_cost assignment in
      match !best with
      | Some (bc, _) when bc <= c -> ()
      | _ -> best := Some (c, Array.copy assignment)
    end
  in
  consider_best ();
  if n > 0 && k > 1 && iters > 0 then begin
    let rng = Prng.create seed in
    (* Temperature: start proportional to the objective scale, cool
       geometrically to ~1/1000th over the iteration budget. *)
    let obj0 = raw_cost assignment +. (penalty *. total_over ()) in
    let t0 = Stdlib.max 1.0 (0.10 *. Float.abs obj0) in
    let ratio = 1e-3 in
    let movable_ids = Array.of_list (List.filter (fun i -> movable.(i)) (List.init n Fun.id)) in
    let m = Array.length movable_ids in
    if m > 0 then
      for it = 0 to iters - 1 do
        let temp = t0 *. (ratio ** (float_of_int it /. float_of_int iters)) in
        let i = movable_ids.(Prng.int rng m) in
        let dst = Prng.int rng k in
        if dst <> assignment.(i) then begin
          let delta = move_delta i dst in
          if delta < 0.0 || Prng.float rng 1.0 < Float.exp (-.delta /. temp) then begin
            apply i dst;
            incr moves;
            if delta < 0.0 then consider_best ()
          end
        end
      done;
    consider_best ()
  end;
  match !best with
  | Some (c, a) -> { assignment = a; cost = c; feasible = true; moves = !moves }
  | None ->
    { assignment; cost = raw_cost assignment; feasible = total_over () = 0.0; moves = !moves }
