open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls
module Network = Tapa_cs_network

type t = {
  assignment : int array;
  cut_fifos : Fifo.t list;
  traffic_bytes : float;
  per_fpga_usage : Resource.t array;
  per_fpga_util : float array;
  cost : float;
  stats : Partition.stats;
  fallbacks : string list;
  threshold_used : float;
}

type error = Infeasible | Over_capacity of int | Solver_timeout

let error_code = function
  | Infeasible -> "TCS305"
  | Over_capacity _ -> "TCS306"
  | Solver_timeout -> "TCS307"

let error_message = function
  | Infeasible ->
    "design does not fit the cluster under the utilization threshold (placement failure)"
  | Over_capacity n ->
    Printf.sprintf "best mapping leaves %d device(s) over capacity (placement failure)" n
  | Solver_timeout -> "floorplan solver hit its deadline without a feasible incumbent"

let pp_error ppf e = Format.fprintf ppf "[%s] %s" (error_code e) (error_message e)

let capacities ~threshold cluster =
  let k = Cluster.size cluster in
  Array.init k (fun i ->
      let board = Cluster.board cluster i in
      let cap = Resource.scale threshold board.Board.total in
      if k > 1 then begin
        (* Both QSFP ports carry the networking IPs once the design spans
           devices. *)
        let per_port = Network.Protocol.alveolink_port_overhead board in
        Resource.sub cap (Resource.scale_int board.Board.num_qsfp per_port)
      end
      else cap)

(* Topology-aware distance penalty: pairs straddling server nodes ride the
   ~10x slower 10 Gb/s host path (§5.7) — the λ media-scaling of Eq. 2. *)
let node_penalty = 10

(* Surrogate hop count for device pairs the surviving topology cannot
   connect at all: finite (the partitioner must still return an answer)
   but large enough that any connected alternative wins. *)
let unreachable_dist = 1000

(* How far past its capacity each part ends up under [r.assignment] —
   the payload of [Over_capacity]. *)
let over_capacity_count (p : Partition.problem) (r : Partition.result) =
  let usage = Array.make p.k Resource.zero in
  Array.iteri
    (fun tid part -> usage.(part) <- Resource.add usage.(part) p.areas.(tid))
    r.assignment;
  let n = ref 0 in
  Array.iteri
    (fun part u -> if not (Resource.fits u ~within:p.capacities.(part)) then incr n)
    usage;
  !n

(* The graceful-degradation chain (tentpole §3): the primary solve, then
   warm-started re-solves climbing a threshold-relaxation ladder toward the
   routability ceiling, then the deterministic greedy packer (tried at the
   base and at the most-relaxed capacities).  Every rung that fires is
   recorded as a fallback tag so the compiler can report degraded
   operation.  [relax_limit] stops short of physical capacity: past ~95 %
   the frequency model cannot route the device anyway. *)
let relax_step = 0.05
let relax_limit = 0.95

let solve_chain ~strategy ~seed ~threshold ?pool ?groups ?warm ~problem_at () =
  let p0 = problem_at threshold in
  let attempts = ref [] in
  let record p att =
    attempts := (p, att) :: !attempts;
    att
  in
  let rec climb ~warm th =
    let p = problem_at th in
    match record p (Partition.solve ~strategy ~seed ?warm_incumbent:warm ?pool ?groups p) with
    | Some r when r.Partition.feasible ->
      let tags = if th > threshold then [ Printf.sprintf "relaxed-threshold(%.2f)" th ] else [] in
      Ok (r, p, th, tags)
    | att ->
      let next = th +. relax_step in
      if next <= relax_limit +. 1e-9 then
        climb ~warm:(Option.map (fun (r : Partition.result) -> r.assignment) att) next
      else greedy_rungs ()
  and greedy_rungs () =
    match record p0 (Partition.greedy p0) with
    | Some r when r.Partition.feasible -> Ok (r, p0, threshold, [ "greedy" ])
    | _ -> (
      let relaxed = Float.max threshold relax_limit in
      let pmax = problem_at relaxed in
      match record pmax (Partition.greedy pmax) with
      | Some r when r.Partition.feasible ->
        Ok (r, pmax, relaxed, [ "greedy"; Printf.sprintf "relaxed-threshold(%.2f)" relaxed ])
      | _ ->
        let timed_out =
          List.exists
            (function _, Some (r : Partition.result) -> r.stats.timed_out | _, None -> false)
            !attempts
        in
        let overflow_counts =
          List.filter_map
            (fun (p, att) ->
              Option.map (fun (r : Partition.result) -> over_capacity_count p r) att)
            !attempts
        in
        Error
          (match overflow_counts with
          | [] -> if timed_out then Solver_timeout else Infeasible
          | counts -> Over_capacity (List.fold_left min max_int counts)))
  in
  climb ~warm threshold

(* Shared post-processing: project a partition result back onto the full
   cluster.  [to_device] maps part indices to device indices (identity for
   the healthy cluster, survivor lookup when degraded); [hop_dist] is the
   hop metric of the (possibly pruned) topology. *)
let build ~cluster ~areas ~to_device ~hop_dist ~fallbacks ~threshold_used g (r : Partition.result) =
  let k = Cluster.size cluster in
  let assignment = Array.map to_device r.Partition.assignment in
  let cut_fifos =
    Array.to_list (Taskgraph.fifos g)
    |> List.filter (fun (f : Fifo.t) -> assignment.(f.src) <> assignment.(f.dst))
  in
  let traffic_bytes =
    List.fold_left
      (fun acc (f : Fifo.t) ->
        let hops = hop_dist assignment.(f.src) assignment.(f.dst) in
        acc +. (Fifo.traffic_bytes f *. float_of_int hops))
      0.0 cut_fifos
  in
  let per_fpga_usage = Array.make k Resource.zero in
  Array.iteri
    (fun tid fpga -> per_fpga_usage.(fpga) <- Resource.add per_fpga_usage.(fpga) areas.(tid))
    assignment;
  let per_fpga_util =
    Array.mapi
      (fun i u -> Resource.utilization u ~total:(Cluster.board cluster i).Board.total)
      per_fpga_usage
  in
  {
    assignment;
    cut_fifos;
    traffic_bytes;
    per_fpga_usage;
    per_fpga_util;
    cost = r.Partition.cost;
    stats = r.Partition.stats;
    fallbacks;
    threshold_used;
  }

let edges_of ~cluster g =
  let lambda = Cluster.lambda cluster in
  Array.to_list (Taskgraph.fifos g)
  |> List.map (fun (f : Fifo.t) -> (f.src, f.dst, float_of_int f.width_bits *. lambda))

(* Server-node grouping for the hierarchical decomposition: one group per
   node, meaningful only when the cluster actually spans nodes.  The
   mapping is a pure function of the cluster (and, degraded, of the
   survivor list), so the cache key stays stable across runs. *)
let node_groups ~cluster ~part_device k =
  if cluster.Cluster.num_nodes > 1 then
    Some (Array.init k (fun part -> cluster.Cluster.node_of (part_device part)))
  else None

let run ?(strategy = Partition.Auto) ?(threshold = Constants.utilization_threshold) ?(seed = 1)
    ?pool ~cluster ~synthesis g =
  let k = Cluster.size cluster in
  let areas = Array.map (fun (p : Synthesis.profile) -> p.resources) synthesis.Synthesis.profiles in
  let edges = edges_of ~cluster g in
  let dist i j =
    let d = Cluster.dist cluster i j in
    if d = 0 || Cluster.same_node cluster i j then d else d * node_penalty
  in
  let problem_at threshold =
    {
      Partition.areas;
      edges;
      pulls = [];
      k;
      capacities = capacities ~threshold cluster;
      dist;
      fixed = [];
    }
  in
  let groups = node_groups ~cluster ~part_device:Fun.id k in
  match solve_chain ~strategy ~seed ~threshold ?pool ?groups ~problem_at () with
  | Error e -> Error e
  | Ok (r, _, threshold_used, fallbacks) ->
    Ok
      (build ~cluster ~areas ~to_device:Fun.id ~hop_dist:(Cluster.dist cluster) ~fallbacks
         ~threshold_used g r)

(* Hop metric of the surviving sub-topology: BFS over the healthy
   unit-distance edges of the original cluster, skipping failed devices
   and downed links.  Disconnected pairs get a large finite distance so
   the partitioner avoids (but survives) them. *)
let survivor_hops ?(failed_devices = []) ?(failed_links = []) cluster =
  let k = Cluster.size cluster in
  let failed = Array.make k false in
  List.iter (fun d -> if d >= 0 && d < k then failed.(d) <- true) failed_devices;
  let failed_links =
    List.sort_uniq compare (List.map (fun (a, b) -> (min a b, max a b)) failed_links)
  in
  let routable = Array.of_list (List.filter (fun i -> not failed.(i)) (List.init k Fun.id)) in
  let link_up i j =
    Cluster.dist cluster i j = 1 && not (List.mem (min i j, max i j) failed_links)
  in
  let hops = Array.make_matrix k k unreachable_dist in
  Array.iter
    (fun s ->
      let dist_from = Array.make k (-1) in
      dist_from.(s) <- 0;
      let q = Queue.create () in
      Queue.add s q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        Array.iter
          (fun w ->
            if dist_from.(w) < 0 && link_up v w then begin
              dist_from.(w) <- dist_from.(v) + 1;
              Queue.add w q
            end)
          routable
      done;
      Array.iter (fun d -> if dist_from.(d) >= 0 then hops.(s).(d) <- dist_from.(d)) routable)
    routable;
  fun i j ->
    if i = j then 0
    else if i < 0 || j < 0 || i >= k || j >= k then unreachable_dist
    else hops.(i).(j)

let run_degraded ?(strategy = Partition.Auto) ?(threshold = Constants.utilization_threshold)
    ?(seed = 1) ?pool ?(failed_devices = []) ?(failed_links = []) ?(masked_devices = [])
    ?warm_assignment ~cluster ~synthesis g =
  let k = Cluster.size cluster in
  let failed = Array.make k false in
  List.iter (fun d -> if d >= 0 && d < k then failed.(d) <- true) failed_devices;
  (* Masked devices stay routable (they still forward packets for their
     own tenants) but receive no tasks; a device both failed and masked
     counts as failed. *)
  let masked = Array.make k false in
  List.iter (fun d -> if d >= 0 && d < k && not failed.(d) then masked.(d) <- true) masked_devices;
  let failed_links =
    List.sort_uniq compare (List.map (fun (a, b) -> (min a b, max a b)) failed_links)
  in
  let placeable = List.filter (fun i -> not failed.(i) && not masked.(i)) (List.init k Fun.id) in
  let num_failed = Array.fold_left (fun n b -> if b then n + 1 else n) 0 failed in
  match placeable with
  | [] -> Error Infeasible
  | _ ->
    let surv = Array.of_list placeable in
    let k' = Array.length surv in
    if k' = k && failed_links = [] then run ~strategy ~threshold ~seed ?pool ~cluster ~synthesis g
    else begin
      let hop_dist = survivor_hops ~failed_devices ~failed_links cluster in
      let areas =
        Array.map (fun (p : Synthesis.profile) -> p.resources) synthesis.Synthesis.profiles
      in
      let edges = edges_of ~cluster g in
      let dist a b =
        if a = b then 0
        else begin
          let i = surv.(a) and j = surv.(b) in
          let d = hop_dist i j in
          if Cluster.same_node cluster i j then d else d * node_penalty
        end
      in
      let problem_at threshold =
        let caps = capacities ~threshold cluster in
        {
          Partition.areas;
          edges;
          pulls = [];
          k = k';
          capacities = Array.map (fun i -> caps.(i)) surv;
          dist;
          fixed = [];
        }
      in
      let groups = node_groups ~cluster ~part_device:(fun part -> surv.(part)) k' in
      (* A previous device-space assignment warm-starts the ladder: tasks
         stranded on dead or masked devices fall back to part 0 and rely
         on the partitioner dropping infeasible incumbents silently. *)
      let warm =
        Option.map
          (fun prev ->
            let part_of = Array.make k 0 in
            Array.iteri (fun part d -> part_of.(d) <- part) surv;
            Array.map
              (fun d ->
                if d >= 0 && d < k && not failed.(d) && not masked.(d) then part_of.(d) else 0)
              prev)
          warm_assignment
      in
      match solve_chain ~strategy ~seed ~threshold ?pool ?groups ?warm ~problem_at () with
      | Error e -> Error e
      | Ok (r, _, threshold_used, fallbacks) ->
        let fallbacks =
          (* Masking alone is normal multi-tenant operation, not
             degradation — tag only when real faults shrank the fleet. *)
          if num_failed = 0 && failed_links = [] then fallbacks
          else
            Printf.sprintf "degraded(%d/%d FPGAs%s)" (k - num_failed) k
              (match failed_links with
              | [] -> ""
              | l -> Printf.sprintf ", %d links down" (List.length l))
            :: fallbacks
        in
        Ok
          (build ~cluster ~areas ~to_device:(fun part -> surv.(part)) ~hop_dist ~fallbacks
             ~threshold_used g r)
    end

let fifos_between g t ~src_fpga ~dst_fpga =
  Array.to_list (Taskgraph.fifos g)
  |> List.filter (fun (f : Fifo.t) ->
         t.assignment.(f.src) = src_fpga && t.assignment.(f.dst) = dst_fpga)

let devices_used t =
  let k = Array.length t.per_fpga_usage in
  let used = Array.make k false in
  Array.iter (fun d -> if d >= 0 && d < k then used.(d) <- true) t.assignment;
  List.filter (fun d -> used.(d)) (List.init k Fun.id)

let cut_pairs t =
  List.sort_uniq compare
    (List.map
       (fun (f : Fifo.t) ->
         let a = t.assignment.(f.src) and b = t.assignment.(f.dst) in
         (min a b, max a b))
       t.cut_fifos)

let affected ~alive ~hops ~baseline t =
  List.exists (fun d -> not (alive d)) (devices_used t)
  || List.exists (fun (i, j) -> hops i j <> baseline i j) (cut_pairs t)

let replace ?strategy ?threshold ?seed ?pool ?(failed_devices = []) ?(failed_links = [])
    ?(masked_devices = []) ?baseline ~prev ~cluster ~synthesis g =
  let k = Cluster.size cluster in
  let unusable = Array.make k false in
  List.iter (fun d -> if d >= 0 && d < k then unusable.(d) <- true) failed_devices;
  List.iter (fun d -> if d >= 0 && d < k then unusable.(d) <- true) masked_devices;
  let reusable =
    match baseline with
    | None -> false
    | Some base ->
      let hops = survivor_hops ~failed_devices ~failed_links cluster in
      affected
        ~alive:(fun d -> d >= 0 && d < k && not unusable.(d))
        ~hops ~baseline:base prev
      |> not
  in
  if reusable then Ok prev
  else
    run_degraded ?strategy ?threshold ?seed ?pool ~failed_devices ~failed_links ~masked_devices
      ~warm_assignment:prev.assignment ~cluster ~synthesis g
