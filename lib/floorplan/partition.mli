(** Capacity-constrained K-way graph partitioning — the optimization
    engine behind both floorplanning levels (Eqs. 1–4).

    An instance places [n] items (tasks), each with a resource vector,
    into [k] parts (FPGAs at level 1, slot regions at level 2) so that no
    part exceeds its capacity and the distance-weighted edge cost is
    minimal.  Edges to entities outside the instance (already-placed
    tasks, I/O pins, HBM columns) enter as linear "pull" terms.

    Two backends: an exact 0-1 ILP (what the paper solves with Gurobi /
    python-MIP) and a first-fit + move-refinement heuristic for instances
    too large for exact search.  [Auto] picks per instance and seeds the
    exact solver with the heuristic incumbent. *)

open Tapa_cs_util
open Tapa_cs_device

type problem = {
  areas : Resource.t array;  (** per-item resource profile (v_area of Eq. 1) *)
  edges : (int * int * float) list;  (** (a, b, weight); weight = width x λ of Eq. 2 *)
  pulls : (int * int * float) list;  (** (item, part, weight): cost [weight * dist(part_of item, part)] *)
  k : int;
  capacities : Resource.t array;  (** per-part budget, threshold already applied *)
  dist : int -> int -> int;  (** inter-part distance metric (Eqs. 3–4) *)
  fixed : (int * int) list;  (** pre-assigned items *)
}

type strategy = Exact | Heuristic | Auto

type stats = {
  backend : [ `Exact | `Heuristic | `Greedy ];
  runtime_s : float;
  lp_solves : int;  (** LP relaxations solved; 0 for the heuristic backend *)
  lp_pivots : int;  (** 0 for the heuristic backend *)
  lp_certified : int;
      (** LP solves settled by the float-first simplex path whose basis
          passed exact rational certification *)
  lp_fallbacks : int;
      (** LP solves where certification rejected the float basis and the
          exact solver was consulted *)
  bb_nodes : int;
  refinement_moves : int;  (** 0 for the exact backend *)
  subproblems : int;
      (** node/board-level subproblems the grouped decomposition spawned
          (cluster-level problem included); 0 on the flat paths *)
  races_exact : int;
      (** portfolio races won by the exact branch-and-bound arm *)
  races_anneal : int;
      (** portfolio races won by the simulated-annealing arm, i.e. the
          anneal cost matched the exact root LP bound *)
  incumbent_broadcasts : int;
      (** incumbent improvements during the parallel B&B replay merges —
          deterministic, independent of worker count *)
  proven_optimal : bool;
  timed_out : bool;
      (** the exact backend hit its wall-clock [deadline_s]; the answer
          (if any) is its best incumbent, not a completed search *)
}

type result = { assignment : int array; cost : float; feasible : bool; stats : stats }

val cost_of : problem -> int array -> float
(** Objective value of an assignment (Eq. 2 plus pulls). *)

val feasible_assignment : problem -> int array -> bool
(** Capacity (Eq. 1) and fixed-placement compliance. *)

val solve :
  ?strategy:strategy ->
  ?seed:int ->
  ?exact_var_limit:int ->
  ?deadline_s:float ->
  ?warm_incumbent:int array ->
  ?pool:Pool.t ->
  ?groups:int array ->
  problem ->
  result option
(** [None] when no feasible assignment was found (exact proof of
    infeasibility for the exact backend; search failure for the
    heuristic).  [exact_var_limit] caps the binary-variable count at which
    [Auto] still tries the exact backend (default 96).  [deadline_s]
    bounds the flat exact search by wall clock; expiry sets
    [stats.timed_out] and falls back to the best incumbent — it trades
    the determinism contract for liveness, so only interactive paths set
    it.  [warm_incumbent] seeds the exact search with an externally known
    assignment (e.g. the previous fallback-chain attempt re-checked
    against relaxed capacities); infeasible seeds are dropped silently.

    [groups] (one group id per part, e.g. the server node hosting each
    FPGA) enables the hierarchical decomposition on large [Auto]
    instances ([k > 8], at least two non-trivial groups, no deadline): a
    cluster-level assignment of items to groups (deterministic
    weight-independent BFS chunking, greedy + anneal as fallback), then
    one independent subproblem per group — each racing exact parallel
    branch-and-bound against deterministic simulated annealing — solved
    concurrently on [pool], stitched and polished across the group
    boundary.  Without [groups] (or outside those conditions) the flat
    paths run exactly as before.  [pool] only ever changes wall-clock
    time, never the answer: both race arms are deterministic and the
    arbitration is a pure function of their results.

    Each per-group subproblem additionally goes through a second-level
    {e fragment cache}: the subproblem is canonicalized under a
    renaming-invariant digest, solved in canonical space with a seed
    derived from its own content, memoized process-wide, and mapped
    back.  After a design edit, a board fault or a farm re-placement,
    only the groups whose digest changed (the dirty set) re-solve;
    untouched groups replay their fragments — and distinct callers
    (attempts, tenants) with content-identical subproblems share them.
    Fragments obey the same determinism contract as the solution cache:
    cold and warm solves are byte-identical by construction, because
    both solve the canonical problem with the content-derived seed.
    Observe via {!fragment_stats}.

    Results are memoized in a content-addressed cache keyed on a
    canonical digest of every argument that influences the answer
    (strategy, seed, limits, incumbent, areas, edges, pulls, [k],
    capacities, the [k x k] distance table, fixed placements and
    [groups]; [pool] is deliberately excluded — it cannot change the
    answer).  The
    cache is transparent: hits return the stored record — including its
    original [runtime_s] — so compile output is bit-identical whether the
    cache is cold or warm, and it is safe under domain-parallel compile.
    Calls that set [deadline_s] bypass the cache (their result may depend
    on host speed).  Observe it via {!cache_stats} / {!reset_cache}. *)

val cache_stats : unit -> int * int
(** [(hits, misses)] of the process-wide solution cache. *)

val reset_cache : unit -> unit
(** Clears the solution cache, the fragment cache and all their counters
    (tests / benchmarks): "cold" measurements must not be warmed by
    second-level fragments either. *)

type fragment_stats = {
  frag_hits : int;
      (** per-group subproblems replayed from the fragment cache *)
  frag_misses : int;  (** subproblem lookups that had to solve *)
  groups_resolved : int;
      (** subproblems actually (re-)solved — the cumulative dirty set;
          [= frag_misses] minus single-flight de-duplication *)
  frag_entries : int;  (** fragments currently cached *)
  frag_evictions : int;  (** fragments dropped by generation rotation *)
}

val fragment_stats : unit -> fragment_stats
(** Process-wide counters of the second-level fragment cache.  These are
    deliberately {e not} part of {!stats} / {!result}: the result record
    is bit-identical between cache-cold and cache-warm solves, and a
    cache-state-dependent count would break that contract. *)

val reset_fragments : unit -> unit
(** Clears only the fragment cache and its counters. *)

val fragment_digest : problem -> string
(** Renaming-invariant digest of a subproblem: invariant under any item
    renumbering and part permutation (areas, capacities, edges, pulls,
    distance table and pins are all hashed in canonical color space).
    Digest inequality therefore implies a solution-relevant difference —
    the two instances are not renamings of each other.  Exposed for
    property tests and diagnostics; the fragment cache key additionally
    carries the exact canonical serialization, so digest collisions can
    only cost a miss, never a wrong replay. *)

val greedy : problem -> result option
(** Deterministic first-fit-decreasing placement — no search, no
    randomness, always terminates.  The last rung of the compile path's
    fallback chain: the answer may be infeasible ([result.feasible] =
    false) or high-cut, which callers surface as degraded operation.
    [None] only for empty instances. *)

val num_items : problem -> int

val prng_for_tests : int -> Prng.t
(** Exposed so property tests can reproduce heuristic randomness. *)
