open Tapa_cs_device
open Tapa_cs_graph

type profile = {
  task_id : int;
  resources : Resource.t;
  startup_cycles : float;
  steady_cycles : float;
}

type report = {
  profiles : profile array;
  distinct_kinds : int;
  cache_hits : int;
  sequential_runs : int;
  total_resources : Resource.t;
}

(* Tasks of the same kind with the same compute shape share one synthesis
   run; tasks with explicit resource overrides are keyed on the override
   too so heterogeneous calibrations stay distinct.

   The key is a digest of a canonical length-prefixed serialization, not
   a structural tuple.  The tuple key had two latent defects: the [kind]
   string sat next to variable-length fields with no framing (so two
   different tasks could in principle serialize alike), and the compute
   record's floats were compared with polymorphic equality, under which
   [nan <> nan] — a task whose traffic came out as NaN would never match
   its own key and silently resynthesize every occurrence. *)
let cache_key (t : Task.t) =
  let buf = Buffer.create 128 in
  let str s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  let int i = Buffer.add_string buf (string_of_int i); Buffer.add_char buf ';' in
  let flt f = Buffer.add_string buf (Printf.sprintf "%h" f); Buffer.add_char buf ';' in
  str t.kind;
  flt t.compute.ii;
  flt t.compute.elems;
  flt t.compute.ops_per_elem;
  int t.compute.elem_bits;
  int t.compute.buffer_bytes;
  int t.compute.lanes;
  int (List.length t.mem_ports);
  List.iter
    (fun (p : Task.mem_port) ->
      Buffer.add_char buf (match p.dir with Task.Read -> 'r' | Task.Write -> 'w');
      int p.width_bits;
      flt p.bytes;
      match p.channel with None -> Buffer.add_char buf 'n' | Some c -> int c)
    t.mem_ports;
  (match t.resources with
  | None -> Buffer.add_char buf 'n'
  | Some (r : Resource.t) ->
    Buffer.add_char buf 'r';
    int r.lut; int r.ff; int r.bram; int r.dsp; int r.uram);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let run ?board ?pool g =
  let tasks = Taskgraph.tasks g in
  (* Collect the distinct synthesis jobs first (one representative task per
     cache key, in first-occurrence order), run them through the domain
     pool, then fill the per-task profiles from the completed cache.  The
     cache-hit accounting is exactly the sequential solver's: every task
     beyond the first of its kind is a hit. *)
  let seen = Hashtbl.create 64 in
  let distinct = ref [] in
  Array.iter
    (fun (t : Task.t) ->
      let key = cache_key t in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        distinct := t :: !distinct
      end)
    tasks;
  let distinct = Array.of_list (List.rev !distinct) in
  let estimates =
    Tapa_cs_util.Pool.parallel_map ?pool (fun t -> Estimator.estimate ?board t) distinct
  in
  let cache = Hashtbl.create 64 in
  Array.iteri (fun i t -> Hashtbl.add cache (cache_key t) estimates.(i)) distinct;
  let profiles =
    Array.map
      (fun (t : Task.t) ->
        {
          task_id = t.id;
          resources = Hashtbl.find cache (cache_key t);
          startup_cycles = Estimator.startup_cycles t;
          steady_cycles = Estimator.steady_cycles t;
        })
      tasks
  in
  let total_resources =
    Array.fold_left (fun acc p -> Resource.add acc p.resources) Resource.zero profiles
  in
  {
    profiles;
    distinct_kinds = Array.length distinct;
    cache_hits = Array.length tasks - Array.length distinct;
    sequential_runs = Taskgraph.num_tasks g;
    total_resources;
  }

let profile_of r id = r.profiles.(id)

let pp_report fmt r =
  Format.fprintf fmt "synthesized %d tasks (%d distinct kinds, %d cache hits), total %a"
    r.sequential_runs r.distinct_kinds r.cache_hits Resource.pp r.total_resources
