(** Step 2 of TAPA-CS (Fig. 5B): task extraction and parallel synthesis.

    Every task of the graph is "synthesized" to get an accurate resource
    utilization profile before floorplanning.  Like TAPA, identical task
    kinds share one synthesis run — the report records the cache hit rate
    and the emulated wall-clock benefit of synthesizing in parallel. *)

open Tapa_cs_device
open Tapa_cs_graph

type profile = {
  task_id : int;
  resources : Resource.t;
  startup_cycles : float;
  steady_cycles : float;
}

type report = {
  profiles : profile array;  (** indexed by task id *)
  distinct_kinds : int;
  cache_hits : int;
  sequential_runs : int;  (** synthesis jobs a naive flow would run *)
  total_resources : Resource.t;
}

val cache_key : Task.t -> string
(** Canonical digest of everything that determines a task's synthesis
    result: kind, compute shape, memory ports and any explicit resource
    override.  Length-prefixed serialization, so adjacent fields cannot
    alias; floats are rendered exactly ([%h]), so NaN traffic still keys
    consistently (the old structural-tuple key compared NaN with
    polymorphic equality and never matched itself). *)

val run : ?board:Board.t -> ?pool:Tapa_cs_util.Pool.t -> Taskgraph.t -> report
(** Synthesizes one representative task per distinct {!cache_key} — via
    [pool] when given, so independent kinds estimate on separate cores —
    then fills every task's profile from the completed cache.  The report
    (profiles, [distinct_kinds], [cache_hits]) is identical whether or
    not a pool is supplied. *)

val profile_of : report -> int -> profile
val pp_report : Format.formatter -> report -> unit
