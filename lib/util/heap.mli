(** Imperative binary min-heap.  Retired from the production hot paths —
    the simulator's event queue and the branch-and-bound frontier both
    moved to the flatter, cache-friendlier {!Fourheap} — and kept as the
    independent oracle the differential property tests drain both
    implementations against. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Not_found when empty. *)

val clear : 'a t -> unit
val to_list : 'a t -> 'a list
(** Unsorted snapshot of the heap contents. *)
