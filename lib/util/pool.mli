(** Fixed-size worker-domain pool for the compile pipeline.

    Built on stdlib [Domain] + [Mutex]/[Condition] only (no opam deps).
    The pool exists so the per-FPGA floorplanning stages and the distinct
    synthesis runs can execute on separate cores while the compiler's
    output stays byte-identical to the sequential path: {!parallel_map}
    assembles results in index order, so the only thing parallelism may
    change is wall-clock time.

    {b Determinism / purity contract}: the mapped function must be pure —
    no shared mutable state, no I/O ordering assumptions, no reads of
    global mutable tables that another worker may write.  Every call site
    in this repository maps over immutable inputs ({!Tapa_cs_graph},
    boards, synthesis reports) and returns freshly allocated values.
    Violating the contract does not crash the pool, but it forfeits the
    [jobs = 1] / [jobs = N] bit-identical-output guarantee that the
    compiler tests enforce. *)

type t
(** A pool of worker domains.  Workers idle on a condition variable
    between batches; {!shutdown} joins them. *)

val default_jobs : unit -> int
(** Effective default parallelism: the [TAPA_CS_JOBS] environment
    variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()].  [TAPA_CS_JOBS=1] (or a
    single-core host) selects the sequential fallback everywhere a pool
    would otherwise be created. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains] worker domains (clamped to
    [>= 0]; default [default_jobs () - 1], i.e. workers in addition to
    the calling domain).  A pool with zero workers is valid and makes
    {!parallel_map} run sequentially. *)

val size : t -> int
(** Number of worker domains (excluding the caller, which also works
    during a batch). *)

val snapshot : t -> int * int
(** [(queue_depth, busy_workers)]: items of the current batch published
    but not yet claimed, and domains (workers or the caller) currently
    inside a mapped closure.  Lock-free atomic reads, observability only
    — the serving layer reports pool saturation from this without ever
    touching scheduling.  Both are [0] when the pool is idle; values read
    while a batch is in flight are instantaneous and may be stale by the
    time the caller uses them. *)

val parallel_map : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map ?pool f a] is [Array.map f a] with the elements
    evaluated concurrently by the pool's workers plus the calling domain.
    Results are assembled by index, so the output array is identical to
    the sequential map for pure [f].

    Runs sequentially when: the array has fewer than two elements, [pool]
    is absent and {!default_jobs} is [1], the pool has zero workers, or
    the caller is itself a pool worker (nested [parallel_map] does not
    deadlock — it degrades to the sequential path).  Without [?pool] and
    with [default_jobs () > 1], an ephemeral pool is created and shut
    down around the call.

    If [f] raises on any element, the first exception observed is
    re-raised in the caller after the whole batch has drained (remaining
    elements are still evaluated; [f] is expected to be cheap to run and
    pure, so no cancellation is attempted). *)

type cancel
(** Cooperative cancellation token shared between racing computations
    (e.g. the exact/heuristic floorplan portfolio).  Purely advisory: a
    long-running closure polls {!cancelled} at its own safe points and
    winds down early.  Cancellation is a wall-clock optimisation only —
    it must never change {e which} answer a deterministic arbitration
    picks, merely how soon the loser stops burning cycles. *)

val cancel_token : unit -> cancel
(** Fresh, uncancelled token. *)

val cancel : cancel -> unit
(** Raise the flag.  Idempotent, safe from any domain. *)

val cancelled : cancel -> bool
(** Poll the flag.  Safe from any domain; a lock-free atomic read. *)

val shutdown : t -> unit
(** Joins all workers.  Idempotent.  Using the pool after [shutdown]
    runs batches sequentially on the caller. *)
