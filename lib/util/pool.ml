(* Worker domains idle on [wake] between batches.  A batch is published as
   a single "help" closure that drains a shared atomic index counter, so
   scheduling is dynamic (fast items don't wait for slow ones) while the
   result array is filled strictly by index. *)

type t = {
  mutex : Mutex.t;
  wake : Condition.t;
  mutable batch : (unit -> unit) option; (* help closure of the running batch *)
  mutable batch_id : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  nworkers : int;
  (* Observability only (atomics, no locks): items published but not yet
     claimed, and domains currently inside a mapped closure.  Never read
     by the scheduler itself. *)
  queued : int Atomic.t;
  busy : int Atomic.t;
}

(* Set in every worker so nested [parallel_map] calls (e.g. a parallel
   stage that itself maps) fall back to the sequential path instead of
   blocking on a pool that is already saturated. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let default_jobs () =
  match Sys.getenv_opt "TAPA_CS_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let worker_loop pool =
  Domain.DLS.set in_worker true;
  let last_seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.mutex;
    while (not pool.stop) && (pool.batch = None || pool.batch_id = !last_seen) do
      Condition.wait pool.wake pool.mutex
    done;
    if pool.stop then Mutex.unlock pool.mutex
    else begin
      let id = pool.batch_id in
      let help = Option.get pool.batch in
      Mutex.unlock pool.mutex;
      last_seen := id;
      help ();
      loop ()
    end
  in
  loop ()

let create ?domains () =
  let nworkers =
    match domains with
    | Some d -> Stdlib.max 0 d
    | None -> Stdlib.max 0 (default_jobs () - 1)
  in
  let pool =
    {
      mutex = Mutex.create ();
      wake = Condition.create ();
      batch = None;
      batch_id = 0;
      stop = false;
      workers = [];
      nworkers;
      queued = Atomic.make 0;
      busy = Atomic.make 0;
    }
  in
  pool.workers <- List.init nworkers (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.nworkers
let snapshot pool = (Atomic.get pool.queued, Atomic.get pool.busy)

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let run_batch pool f a =
  let n = Array.length a in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let failure = Atomic.make None in
  let done_mutex = Mutex.create () in
  let done_cond = Condition.create () in
  let help () =
    let rec claim () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        ignore (Atomic.fetch_and_add pool.queued (-1));
        ignore (Atomic.fetch_and_add pool.busy 1);
        (match f a.(i) with
        | v -> results.(i) <- Some v
        | exception e -> ignore (Atomic.compare_and_set failure None (Some e)));
        ignore (Atomic.fetch_and_add pool.busy (-1));
        if Atomic.fetch_and_add completed 1 = n - 1 then begin
          Mutex.lock done_mutex;
          Condition.broadcast done_cond;
          Mutex.unlock done_mutex
        end;
        claim ()
      end
    in
    claim ()
  in
  ignore (Atomic.fetch_and_add pool.queued n);
  Mutex.lock pool.mutex;
  pool.batch_id <- pool.batch_id + 1;
  pool.batch <- Some help;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.mutex;
  help ();
  Mutex.lock done_mutex;
  while Atomic.get completed < n do
    Condition.wait done_cond done_mutex
  done;
  Mutex.unlock done_mutex;
  Mutex.lock pool.mutex;
  pool.batch <- None;
  Mutex.unlock pool.mutex;
  (match Atomic.get failure with Some e -> raise e | None -> ());
  Array.map (function Some v -> v | None -> assert false) results

(* Cooperative cancellation: a token is a plain atomic flag shared by the
   racing parties.  Workers poll [cancelled] at their own safe points; the
   pool never preempts a running closure. *)

type cancel = bool Atomic.t

let cancel_token () = Atomic.make false
let cancel t = Atomic.set t true
let cancelled t = Atomic.get t

let parallel_map ?pool f a =
  if Array.length a <= 1 || Domain.DLS.get in_worker then Array.map f a
  else
    match pool with
    | Some p -> if p.nworkers = 0 || p.stop then Array.map f a else run_batch p f a
    | None ->
      let jobs = default_jobs () in
      if jobs <= 1 then Array.map f a
      else begin
        let p = create ~domains:(Stdlib.min (jobs - 1) (Array.length a - 1)) () in
        Fun.protect ~finally:(fun () -> shutdown p) (fun () -> run_batch p f a)
      end
