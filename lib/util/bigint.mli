(** Arbitrary-precision signed integers.

    Built from scratch (no [Zarith] in the sealed environment) to back the
    exact rational arithmetic used by the simplex / branch-and-bound ILP
    solver.  Magnitudes are little-endian arrays of 24-bit digits so that
    schoolbook multiplication and Knuth's algorithm D stay within OCaml's
    63-bit native integers. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val to_small : t -> int option
(** [Some n] when [|x| < 2^30] — small enough that two such values can
    be multiplied, and two such products added, without overflowing a
    native [int].  The guard behind {!Rat}'s native fast paths. *)

val to_float : t -> float

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Truncated division: [divmod a b = (q, r)] with [a = q*b + r],
    [|r| < |b|] and [r] carrying the sign of [a].
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val min : t -> t -> t
val max : t -> t -> t

val mul_int : t -> int -> t
val add_int : t -> int -> t

val pow : t -> int -> t
(** [pow x k] for [k >= 0]. *)

val of_string : string -> t
(** Parses an optional sign followed by decimal digits.
    @raise Failure on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
