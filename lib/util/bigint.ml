(* Arbitrary-precision signed integers over little-endian 24-bit digits.

   Invariants: [mag] has no leading (most-significant) zero digit, and
   [sign = 0] iff [mag] is empty.  All digit arithmetic fits in OCaml's
   63-bit native int: products of two 24-bit digits plus carries stay
   below 2^50. *)

type t = { sign : int; mag : int array }

let base_bits = 24
let base = 1 lsl base_bits
let base_mask = base - 1

let zero = { sign = 0; mag = [||] }

let normalize_mag mag =
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let t = top (Array.length mag - 1) in
  if t < 0 then [||]
  else if t = Array.length mag - 1 then mag
  else Array.sub mag 0 (t + 1)

let make sign mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lmax = Stdlib.max la lb in
  let res = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    res.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  res.(lmax) <- !carry;
  res

let of_nonneg n =
  let rec digits acc n =
    if n = 0 then acc else digits (n land base_mask :: acc) (n lsr base_bits)
  in
  make 1 (Array.of_list (List.rev (digits [] n)))

let of_int n =
  if n = 0 then zero
  else if n = min_int then
    (* |min_int| overflows negation; build |min_int| = 2 * |min_int / 2|. *)
    (let half = of_nonneg (-(n / 2)) in
     make (-1) (add_mag half.mag half.mag))
  else if n < 0 then { (of_nonneg (-n)) with sign = -1 }
  else of_nonneg n

let sign x = x.sign
let is_zero x = x.sign = 0

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let compare x y =
  if x.sign <> y.sign then Stdlib.compare x.sign y.sign
  else if x.sign >= 0 then cmp_mag x.mag y.mag
  else cmp_mag y.mag x.mag

let equal x y = compare x y = 0
let hash x = x.sign + (Array.fold_left (fun acc d -> (acc * 1000003) lxor d) 0 x.mag * 3)

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

(* Precondition: [a >= b] as magnitudes. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let res = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin
      res.(i) <- s + base;
      borrow := 1
    end
    else begin
      res.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  res

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then make x.sign (add_mag x.mag y.mag)
  else begin
    match cmp_mag x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> make x.sign (sub_mag x.mag y.mag)
    | _ -> make y.sign (sub_mag y.mag x.mag)
  end

let sub x y = add x (neg y)

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let res = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    let ai = a.(i) in
    if ai <> 0 then begin
      for j = 0 to lb - 1 do
        let cur = res.(i + j) + (ai * b.(j)) + !carry in
        res.(i + j) <- cur land base_mask;
        carry := cur lsr base_bits
      done;
      res.(i + lb) <- res.(i + lb) + !carry
    end
  done;
  res

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else make (x.sign * y.sign) (mul_mag x.mag y.mag)

(* Magnitude division by a single digit [< base]. Returns (quotient, rem). *)
let divmod_mag_digit u d =
  let n = Array.length u in
  let q = Array.make n 0 in
  let rem = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor u.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (q, !rem)

(* Knuth algorithm D on magnitudes; precondition: |u| >= |v|, len v >= 2. *)
let divmod_mag_knuth u v =
  let n = Array.length v in
  let m = Array.length u - n in
  let shift = base / (v.(n - 1) + 1) in
  let scale a len =
    let res = Array.make (len + 1) 0 in
    let carry = ref 0 in
    for i = 0 to len - 1 do
      let cur = (a.(i) * shift) + !carry in
      res.(i) <- cur land base_mask;
      carry := cur lsr base_bits
    done;
    res.(len) <- !carry;
    res
  in
  let u' = scale u (Array.length u) in
  let v' = scale v n in
  (* v' keeps length n after normalization (shift < base). *)
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    let top2 = (u'.(j + n) lsl base_bits) lor u'.(j + n - 1) in
    let qhat = ref (top2 / v'.(n - 1)) in
    let rhat = ref (top2 mod v'.(n - 1)) in
    let adjust = ref true in
    while !adjust do
      if !qhat >= base || !qhat * v'.(n - 2) > (!rhat lsl base_bits) lor u'.(j + n - 2) then begin
        decr qhat;
        rhat := !rhat + v'.(n - 1);
        if !rhat >= base then adjust := false
      end
      else adjust := false
    done;
    (* Multiply and subtract qhat * v' from u'[j .. j+n]. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v'.(i)) + !carry in
      carry := p lsr base_bits;
      let s = u'.(i + j) - (p land base_mask) - !borrow in
      if s < 0 then begin
        u'.(i + j) <- s + base;
        borrow := 1
      end
      else begin
        u'.(i + j) <- s;
        borrow := 0
      end
    done;
    let s = u'.(j + n) - !carry - !borrow in
    if s < 0 then begin
      (* qhat was one too large: add back. *)
      u'.(j + n) <- s + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let t = u'.(i + j) + v'.(i) + !c in
        u'.(i + j) <- t land base_mask;
        c := t lsr base_bits
      done;
      u'.(j + n) <- (u'.(j + n) + !c) land base_mask
    end
    else u'.(j + n) <- s;
    q.(j) <- !qhat
  done;
  let r_scaled = Array.sub u' 0 n in
  let r, r0 = divmod_mag_digit r_scaled shift in
  assert (r0 = 0);
  (q, r)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else if cmp_mag a.mag b.mag < 0 then (zero, a)
  else begin
    let qmag, rmag =
      if Array.length b.mag = 1 then begin
        let q, r = divmod_mag_digit a.mag b.mag.(0) in
        (q, [| r |])
      end
      else divmod_mag_knuth a.mag b.mag
    in
    (make (a.sign * b.sign) qmag, make a.sign rmag)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let one = of_int 1
let minus_one = of_int (-1)

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let mul_int x n = mul x (of_int n)
let add_int x n = add x (of_int n)

let pow x k =
  if k < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b k = if k = 0 then acc else go (if k land 1 = 1 then mul acc b else acc) (mul b b) (k lsr 1) in
  go one x k

let to_int_opt x =
  (* A native int holds 62 magnitude bits: two 24-bit digits always fit,
     and a third fits when it stays below 2^14. *)
  let n = Array.length x.mag in
  if n > 3 || (n = 3 && x.mag.(2) >= 1 lsl 14) then None
  else begin
    let v = Array.fold_right (fun d acc -> (acc * base) + d) x.mag 0 in
    Some (if x.sign < 0 then -v else v)
  end

let to_int_exn x =
  match to_int_opt x with
  | Some v -> v
  | None -> failwith "Bigint.to_int_exn: out of native int range"

let to_small x =
  (* The 2^30 cap is what makes the caller's fast paths overflow-safe:
     products of two smalls stay below 2^60 and a sum of two such
     products below 2^61, inside the 63-bit native range. *)
  match Array.length x.mag with
  | 0 -> Some 0
  | 1 -> Some (if x.sign < 0 then -x.mag.(0) else x.mag.(0))
  | 2 ->
    let v = x.mag.(0) lor (x.mag.(1) lsl base_bits) in
    if v < 1 lsl 30 then Some (if x.sign < 0 then -v else v) else None
  | _ -> None

let to_float x =
  let m = Array.fold_right (fun d acc -> (acc *. float_of_int base) +. float_of_int d) x.mag 0.0 in
  if x.sign < 0 then -.m else m

let to_string x =
  if is_zero x then "0"
  else begin
    let chunks = ref [] in
    let cur = ref (abs x) in
    let ten9 = of_int 1_000_000_000 in
    while not (is_zero !cur) do
      let q, r = divmod !cur ten9 in
      chunks := to_int_exn r :: !chunks;
      cur := q
    done;
    let buf = Buffer.create 32 in
    if x.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
    | [] -> assert false
    | hd :: tl ->
      Buffer.add_string buf (string_of_int hd);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) tl);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then failwith "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0)
  in
  if start >= len then failwith "Bigint.of_string: no digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then failwith "Bigint.of_string: invalid digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if sign < 0 then neg !acc else !acc

let pp fmt x = Format.pp_print_string fmt (to_string x)
