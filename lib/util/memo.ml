type 'a t = {
  table : (string, 'a) Hashtbl.t;
  lock : Mutex.t;
  max_entries : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create ?(max_entries = 8192) () =
  {
    table = Hashtbl.create 64;
    lock = Mutex.create ();
    max_entries = max max_entries 1;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t ~key =
  match with_lock t (fun () -> Hashtbl.find_opt t.table key) with
  | Some _ as v ->
    Atomic.incr t.hits;
    v
  | None ->
    Atomic.incr t.misses;
    None

let store t key v =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        if Hashtbl.length t.table >= t.max_entries then Hashtbl.reset t.table;
        Hashtbl.add t.table key v
      end)

let find_or_compute t ~key f =
  match find t ~key with
  | Some v -> (v, true)
  | None ->
    (* Compute outside the lock: the determinism contract makes a racing
       duplicate compute return the same value, so first-store-wins is
       safe and slow solves don't block unrelated lookups. *)
    let v = f () in
    store t key v;
    (v, false)

let length t = with_lock t (fun () -> Hashtbl.length t.table)
let stats t = (Atomic.get t.hits, Atomic.get t.misses)

let reset t =
  with_lock t (fun () -> Hashtbl.reset t.table);
  Atomic.set t.hits 0;
  Atomic.set t.misses 0
