(* Two-generation content-addressed memo with single-flight computation.

   Entries live in a [young] and an [old] hash table.  Inserts go to
   [young]; when [young] reaches the per-generation capacity the
   generations rotate: the previous [old] generation is discarded (its
   entries counted as evictions), [young] becomes [old], and a fresh
   [young] receives the insert.  A lookup that finds its key in [old]
   promotes it back into [young], so a hot working set survives
   rotation after rotation — unlike the previous wholesale clear, which
   dropped every entry at once the moment the table overflowed.

   Single-flight: the first caller to miss on a key becomes its leader
   and computes outside the lock; callers that miss on the same key
   while the leader is still computing wait on a condition variable and
   receive the leader's value instead of duplicating the work.  If the
   leader's computation raises, waiters retry from scratch (one of them
   becomes the new leader); the exception propagates only to the leader
   that observed it. *)

type 'a pending = {
  mutable value : 'a option;
  mutable failed : bool;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  young_entries : int;
  old_entries : int;
}

type 'a t = {
  mutable young : (string, 'a) Hashtbl.t;
  mutable old : (string, 'a) Hashtbl.t;
  inflight : (string, 'a pending) Hashtbl.t;
  lock : Mutex.t;
  resolved : Condition.t;
  gen_entries : int;  (* per-generation capacity: max_entries / 2 *)
  (* Counters live under [lock], not in free-running atomics: a hit or
     miss is
     recorded in the same critical section that resolved the lookup, so
     [stats] can never observe a completed lookup that is not yet
     counted — the totals for a set of concurrent same-key calls are a
     pure function of the call multiset, independent of interleaving. *)
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
}

let create ?(max_entries = 8192) () =
  let max_entries = max max_entries 2 in
  {
    young = Hashtbl.create 64;
    old = Hashtbl.create 64;
    inflight = Hashtbl.create 8;
    lock = Mutex.create ();
    resolved = Condition.create ();
    gen_entries = max 1 (max_entries / 2);
    hit_count = 0;
    miss_count = 0;
    eviction_count = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Insert into [young], rotating generations first if it is full.  The
   caller holds the lock.  Values never change on rotation — eviction
   only ever costs a recomputation, never a different answer. *)
let insert_locked t key v =
  if Hashtbl.length t.young >= t.gen_entries && not (Hashtbl.mem t.young key) then begin
    let dropped = Hashtbl.length t.old in
    if dropped > 0 then t.eviction_count <- t.eviction_count + dropped;
    let emptied = t.old in
    t.old <- t.young;
    t.young <- emptied;
    Hashtbl.reset t.young
  end;
  Hashtbl.replace t.young key v

(* Young first, then old with promotion back into young.  The caller
   holds the lock. *)
let lookup_locked t key =
  match Hashtbl.find_opt t.young key with
  | Some _ as v -> v
  | None -> (
    match Hashtbl.find_opt t.old key with
    | Some v ->
      Hashtbl.remove t.old key;
      insert_locked t key v;
      Some v
    | None -> None)

let find t ~key =
  with_lock t (fun () ->
      match lookup_locked t key with
      | Some _ as v ->
        t.hit_count <- t.hit_count + 1;
        v
      | None ->
        t.miss_count <- t.miss_count + 1;
        None)

let find_or_compute t ~key f =
  Mutex.lock t.lock;
  let rec attempt () =
    match lookup_locked t key with
    | Some v ->
      t.hit_count <- t.hit_count + 1;
      Mutex.unlock t.lock;
      (v, true)
    | None -> (
      match Hashtbl.find_opt t.inflight key with
      | Some p ->
        (* A leader is computing this key right now: wait for it instead
           of duplicating the work.  The condition is shared by every
           key, so re-check our pending slot on each wakeup. *)
        while p.value = None && not p.failed do
          Condition.wait t.resolved t.lock
        done;
        (match p.value with
        | Some v ->
          t.hit_count <- t.hit_count + 1;
          Mutex.unlock t.lock;
          (v, true)
        | None ->
          (* The leader raised; race to become the new leader. *)
          attempt ())
      | None ->
        let p = { value = None; failed = false } in
        Hashtbl.add t.inflight key p;
        Mutex.unlock t.lock;
        (* Compute outside the lock so a slow solve does not serialize
           unrelated lookups. *)
        (match f () with
        | v ->
          Mutex.lock t.lock;
          p.value <- Some v;
          Hashtbl.remove t.inflight key;
          insert_locked t key v;
          t.miss_count <- t.miss_count + 1;
          Condition.broadcast t.resolved;
          Mutex.unlock t.lock;
          (v, false)
        | exception e ->
          Mutex.lock t.lock;
          p.failed <- true;
          Hashtbl.remove t.inflight key;
          Condition.broadcast t.resolved;
          Mutex.unlock t.lock;
          raise e))
  in
  attempt ()

let length t = with_lock t (fun () -> Hashtbl.length t.young + Hashtbl.length t.old)

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hit_count;
        misses = t.miss_count;
        evictions = t.eviction_count;
        young_entries = Hashtbl.length t.young;
        old_entries = Hashtbl.length t.old;
      })

let reset t =
  with_lock t (fun () ->
      Hashtbl.reset t.young;
      Hashtbl.reset t.old;
      t.hit_count <- 0;
      t.miss_count <- 0;
      t.eviction_count <- 0)
