(** Content-addressed memo table for deterministic computations.

    A [t] maps canonical string keys (typically a [Digest.string] of a
    serialized problem) to previously computed values.  It is designed for
    caching solver results across the compile pipeline and the serving
    layer:

    - Thread/domain-safe: lookups and insertions take an internal mutex, so
      a single global table can be shared by [Pool] workers.
    - Single-flight: the first caller to miss on a key computes it with
      the mutex released; callers that miss on the {e same} key while that
      computation is still running wait and receive the leader's value
      instead of duplicating the work (one computation, N waiters).
      Waiters count as hits, the leader as a miss, so hit/miss totals for
      a set of concurrent same-key calls are independent of interleaving.
      Distinct keys never wait on each other.
    - Two-generation eviction: entries live in a young and an old
      generation of [max_entries / 2] each.  When the young generation
      fills, the old one is discarded (counted in {!evictions}) and the
      generations rotate; a lookup that lands in the old generation
      promotes its entry back into the young one.  A hot working set
      therefore survives overflow — only entries untouched for a full
      generation are dropped, never the whole table at once.  Eviction
      only ever costs recomputation, never changes results (cold and warm
      lookups are bit-identical by the determinism contract).

    Hit/miss/eviction counters are kept in atomics and can be read or
    reset at any time; they are observability-only and must never feed
    back into cached values (that would break cold-vs-warm bit-identity). *)

type 'a t

val create : ?max_entries:int -> unit -> 'a t
(** [create ()] makes an empty table.  [max_entries] (default 8192,
    clamped to [>= 2]) bounds the total entry count across both
    generations. *)

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a * bool
(** [find_or_compute t ~key f] returns [(v, hit)]: the cached value for
    [key] with [hit = true], or [f ()] (stored under [key]) with
    [hit = false].  A caller arriving while another domain is already
    computing [key] blocks until that computation resolves and returns
    its value with [hit = true] — [f] runs exactly once per miss.  If
    [f] raises, nothing is stored, the exception propagates to the
    caller that ran [f], and any waiters retry (one of them becomes the
    new leader).  The caller must treat [v] as shared: copy any mutable
    structure before handing it out. *)

val find : 'a t -> key:string -> 'a option
(** Lookup without computing; counts as a hit or miss.  Never waits on
    an in-flight computation. *)

val length : 'a t -> int
(** Number of entries currently stored (both generations). *)

val stats : 'a t -> int * int
(** [(hits, misses)] since creation or the last [reset].  Every
    {!find_or_compute} that returns normally and every {!find} counts
    exactly one hit or one miss, so [hits + misses] equals the number of
    completed lookups. *)

val evictions : 'a t -> int
(** Entries dropped by generation rotation since creation or the last
    {!reset}. *)

val reset : 'a t -> unit
(** Drop all entries and zero the counters. *)
