(** Content-addressed memo table for deterministic computations.

    A [t] maps canonical string keys (typically a [Digest.string] of a
    serialized problem) to previously computed values.  It is designed for
    caching solver results across the compile pipeline:

    - Thread/domain-safe: lookups and insertions take an internal mutex, so
      a single global table can be shared by [Pool] workers.
    - Compute-outside-lock: [find_or_compute] releases the mutex while the
      supplied thunk runs, so a slow solve does not serialize unrelated
      lookups.  Two domains racing on the same key may both compute; the
      first store wins and the value is identical by the determinism
      contract (same key => same canonical problem => same result), so the
      duplicate work is harmless.
    - Bounded: when the table exceeds [max_entries] it is cleared wholesale
      before the next insertion.  Eviction only ever costs recomputation,
      never changes results.

    Hit/miss counters are kept in atomics and can be read or reset at any
    time; they are observability-only and must never feed back into cached
    values (that would break cold-vs-warm bit-identity). *)

type 'a t

val create : ?max_entries:int -> unit -> 'a t
(** [create ()] makes an empty table.  [max_entries] defaults to 8192. *)

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a * bool
(** [find_or_compute t ~key f] returns [(v, hit)]: the cached value for
    [key] with [hit = true], or [f ()] (stored under [key]) with
    [hit = false].  If [f] raises, nothing is stored and the exception
    propagates.  The caller must treat [v] as shared: copy any mutable
    structure before handing it out. *)

val find : 'a t -> key:string -> 'a option
(** Lookup without computing; counts as a hit or miss. *)

val length : 'a t -> int
(** Number of entries currently stored. *)

val stats : 'a t -> int * int
(** [(hits, misses)] since creation or the last [reset]. *)

val reset : 'a t -> unit
(** Drop all entries and zero the counters. *)
