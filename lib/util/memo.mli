(** Content-addressed memo table for deterministic computations.

    A [t] maps canonical string keys (typically a [Digest.string] of a
    serialized problem) to previously computed values.  It is designed for
    caching solver results across the compile pipeline and the serving
    layer:

    - Thread/domain-safe: lookups and insertions take an internal mutex, so
      a single global table can be shared by [Pool] workers.
    - Single-flight: the first caller to miss on a key computes it with
      the mutex released; callers that miss on the {e same} key while that
      computation is still running wait and receive the leader's value
      instead of duplicating the work (one computation, N waiters).
      Waiters count as hits, the leader as a miss, so hit/miss totals for
      a set of concurrent same-key calls are independent of interleaving.
      Distinct keys never wait on each other.
    - Two-generation eviction: entries live in a young and an old
      generation of [max_entries / 2] each.  When the young generation
      fills, the old one is discarded (counted in {!evictions}) and the
      generations rotate; a lookup that lands in the old generation
      promotes its entry back into the young one.  A hot working set
      therefore survives overflow — only entries untouched for a full
      generation are dropped, never the whole table at once.  Eviction
      only ever costs recomputation, never changes results (cold and warm
      lookups are bit-identical by the determinism contract).

    Hit/miss/eviction counters are updated inside the same critical
    section that resolves the lookup, so {!stats} never observes a
    completed lookup that is not yet counted, and the totals produced by
    a set of concurrent same-key calls (e.g. a [Pool] fan-out over
    duplicate subproblems) are a pure function of the call multiset —
    one miss for the leader, one hit per follower — independent of how
    the domains interleaved.  The counters are observability-only and
    must never feed back into cached values (that would break
    cold-vs-warm bit-identity). *)

type 'a t

type stats = {
  hits : int;  (** lookups answered from the table or an in-flight leader *)
  misses : int;  (** lookups that ran (or reported the need for) a computation *)
  evictions : int;  (** entries dropped by generation rotation *)
  young_entries : int;  (** current size of the young generation *)
  old_entries : int;  (** current size of the old generation *)
}

val create : ?max_entries:int -> unit -> 'a t
(** [create ()] makes an empty table.  [max_entries] (default 8192,
    clamped to [>= 2]) bounds the total entry count across both
    generations. *)

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a * bool
(** [find_or_compute t ~key f] returns [(v, hit)]: the cached value for
    [key] with [hit = true], or [f ()] (stored under [key]) with
    [hit = false].  A caller arriving while another domain is already
    computing [key] blocks until that computation resolves and returns
    its value with [hit = true] — [f] runs exactly once per miss.  If
    [f] raises, nothing is stored, the exception propagates to the
    caller that ran [f], and any waiters retry (one of them becomes the
    new leader).  The caller must treat [v] as shared: copy any mutable
    structure before handing it out. *)

val find : 'a t -> key:string -> 'a option
(** Lookup without computing; counts as a hit or miss.  Never waits on
    an in-flight computation. *)

val length : 'a t -> int
(** Number of entries currently stored (both generations). *)

val stats : 'a t -> stats
(** Counter snapshot since creation or the last [reset].  Every
    {!find_or_compute} that returns normally and every {!find} counts
    exactly one hit or one miss, so [hits + misses] equals the number of
    completed lookups.  [young_entries + old_entries] equals {!length}.

    Two-generation eviction semantics: an insert that would push the
    young generation past [max_entries / 2] first rotates the
    generations — every entry still sitting in the old generation is
    dropped (added to [evictions]), the young generation becomes the old
    one, and the insert lands in a fresh young generation.  Lookups that
    land in the old generation promote their entry back into the young
    one, so an entry is evicted only after going un-touched for a full
    generation.  Eviction never changes answers, only costs a
    recomputation. *)

val reset : 'a t -> unit
(** Drop all entries and zero the counters. *)
