(** Imperative 4-ary min-heap: the event queue of the coalesced
    simulation engine.

    Same contract as {!Heap} (stable only up to [cmp]-ties, so callers
    needing a total order must break ties in [cmp], as the engine does
    with sequence numbers).  The wider fan-out halves the tree height:
    pops sift through half the levels of a binary heap, which is where a
    discrete-event simulator spends its queue time, at the price of up to
    four child comparisons per level — a net win once the queue holds
    more than a handful of events. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Not_found when empty. *)

val clear : 'a t -> unit
val to_list : 'a t -> 'a list
(** Unsorted snapshot of the heap contents. *)
