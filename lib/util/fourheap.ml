type 'a t = { cmp : 'a -> 'a -> int; mutable data : 'a array; mutable size : int }

let create ~cmp = { cmp; data = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.data in
  if h.size >= cap then begin
    let ncap = Stdlib.max 16 (cap * 2) in
    let nd = Array.make ncap x in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

(* Children of node [i] are [4i+1 .. 4i+4]; parent of [i] is [(i-1)/4].
   Half the tree height of the binary heap, so pops do half the sift
   levels — and pushes compare against a parent chain only a quarter as
   long as the element count would suggest. *)

let push h x =
  grow h x;
  let i = ref h.size in
  h.size <- h.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    if h.cmp x h.data.(parent) < 0 then begin
      h.data.(!i) <- h.data.(parent);
      i := parent
    end
    else continue := false
  done;
  h.data.(!i) <- x

let peek h = if h.size = 0 then None else Some h.data.(0)

let sift_down h x =
  (* Re-inserts [x] starting from the root, moving the smallest child up
     at each level instead of swapping — one store per level. *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let first = (4 * !i) + 1 in
    if first >= h.size then continue := false
    else begin
      let last = Stdlib.min (first + 3) (h.size - 1) in
      let best = ref first in
      for c = first + 1 to last do
        if h.cmp h.data.(c) h.data.(!best) < 0 then best := c
      done;
      if h.cmp h.data.(!best) x < 0 then begin
        h.data.(!i) <- h.data.(!best);
        i := !best
      end
      else continue := false
    end
  done;
  h.data.(!i) <- x

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then sift_down h h.data.(h.size);
    Some top
  end

let pop_exn h = match pop h with Some x -> x | None -> raise Not_found

let clear h =
  h.data <- [||];
  h.size <- 0

let to_list h =
  let rec go i acc = if i < 0 then acc else go (i - 1) (h.data.(i) :: acc) in
  go (h.size - 1) []
