(* Canonical rationals: den > 0, gcd (num, den) = 1. *)

module B = Bigint

type t = { n : B.t; d : B.t }

(* Native fast path: floorplanning data is overwhelmingly small integers
   (binary bounds, single-digit coefficients), and for those the generic
   route — three array multiplications plus an array-based gcd per
   operation — dominates the exact solver's profile.  When both operands
   fit under [Bigint.to_small]'s 2^30 cap the cross-products stay inside
   the native 63-bit range, so the arithmetic and the gcd run on ints and
   only the canonical result is re-boxed. *)
let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

let make_small num den =
  if den = 0 then raise Division_by_zero;
  if num = 0 then { n = B.zero; d = B.one }
  else begin
    let num, den = if den < 0 then (-num, -den) else (num, den) in
    let g = gcd_int (Stdlib.abs num) den in
    { n = B.of_int (num / g); d = B.of_int (den / g) }
  end

let make num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then { n = B.zero; d = B.one }
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    if B.equal g B.one then { n = num; d = den }
    else { n = B.div num g; d = B.div den g }
  end

let zero = { n = B.zero; d = B.one }
let one = { n = B.one; d = B.one }
let minus_one = { n = B.minus_one; d = B.one }

let of_int i = { n = B.of_int i; d = B.one }
let of_ints num den = make (B.of_int num) (B.of_int den)
let of_bigint b = { n = b; d = B.one }

let num x = x.n
let den x = x.d

let sign x = B.sign x.n
let is_zero x = B.is_zero x.n
let is_integer x = B.equal x.d B.one

let equal a b = B.equal a.n b.n && B.equal a.d b.d

let compare a b =
  (* a.n/a.d ? b.n/b.d  <=>  a.n*b.d ? b.n*a.d (denominators positive). *)
  match (B.to_small a.n, B.to_small a.d, B.to_small b.n, B.to_small b.d) with
  | Some an, Some ad, Some bn, Some bd -> Stdlib.compare (an * bd) (bn * ad)
  | _ -> B.compare (B.mul a.n b.d) (B.mul b.n a.d)

let neg x = { x with n = B.neg x.n }
let abs x = { x with n = B.abs x.n }

let inv x =
  if is_zero x then raise Division_by_zero;
  if B.sign x.n < 0 then { n = B.neg x.d; d = B.neg x.n } else { n = x.d; d = x.n }

let add a b =
  if is_zero a then b
  else if is_zero b then a
  else
    match (B.to_small a.n, B.to_small a.d, B.to_small b.n, B.to_small b.d) with
    | Some an, Some ad, Some bn, Some bd -> make_small ((an * bd) + (bn * ad)) (ad * bd)
    | _ -> make (B.add (B.mul a.n b.d) (B.mul b.n a.d)) (B.mul a.d b.d)

let sub a b = add a (neg b)

let mul a b =
  if is_zero a || is_zero b then zero
  else
    match (B.to_small a.n, B.to_small a.d, B.to_small b.n, B.to_small b.d) with
    | Some an, Some ad, Some bn, Some bd -> make_small (an * bn) (ad * bd)
    | _ -> make (B.mul a.n b.n) (B.mul a.d b.d)

let div a b = mul a (inv b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor x =
  let q, r = B.divmod x.n x.d in
  if B.sign r < 0 then B.sub q B.one else q

let ceil x = B.neg (floor (neg x))

let fractional x = sub x (of_bigint (floor x))

let mul_int x i = mul x (of_int i)

let to_float x = B.to_float x.n /. B.to_float x.d

let of_float_approx ?(max_den = 1_000_000) f =
  if Float.is_nan f || Float.is_integer f then of_int (int_of_float f)
  else begin
    (* Continued fractions with convergents (h, k). *)
    let neg_input = Stdlib.(f < 0.0) in
    let f = Float.abs f in
    let rec go x h0 k0 h1 k1 steps =
      let a = int_of_float (Float.floor x) in
      let h2 = (a * h1) + h0 and k2 = (a * k1) + k0 in
      if k2 > max_den || steps > 40 then (h1, k1)
      else begin
        let frac = x -. Float.of_int a in
        if Stdlib.(frac < 1e-12) then (h2, k2) else go (1.0 /. frac) h1 k1 h2 k2 (steps + 1)
      end
    in
    (* Convergent seeds: h_{-2}/k_{-2} = 0/1, h_{-1}/k_{-1} = 1/0. *)
    let h, k = go f 0 1 1 0 0 in
    let r = of_ints h (Stdlib.max k 1) in
    if neg_input then neg r else r
  end

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( < ) a b = Stdlib.(compare a b < 0)
let ( <= ) a b = Stdlib.(compare a b <= 0)
let ( > ) a b = Stdlib.(compare a b > 0)
let ( >= ) a b = Stdlib.(compare a b >= 0)
let ( = ) = equal

let to_string x =
  if is_integer x then B.to_string x.n
  else Printf.sprintf "%s/%s" (B.to_string x.n) (B.to_string x.d)

let pp fmt x = Format.pp_print_string fmt (to_string x)
