(* The compile-as-a-service engine: batched scheduling over the warm
   caches.

   A scheduling round takes every request currently waiting and, before
   any work is placed on the Domain pool:

   1. dedupes against the content-addressed response cache (a
      {!Tapa_cs_util.Memo} over {!Request.key}) — hits are answered
      immediately and cost no admission budget;
   2. coalesces identical misses — the first occurrence of a key becomes
      the leader of one computation, every later occurrence a waiter on
      it (single-flight at the queue level; the Memo's own single-flight
      covers races between concurrent schedulers sharing a cache);
   3. admits the remaining distinct computations against a bounded
      queue: best-effort requests are shed once [best_effort_depth]
      computations are pending, strict requests are rejected only at the
      full [max_depth].  A rejection is always an explicit TCS701
      response, never a silent drop.

   Admitted computations then run as one batch through the shared pool;
   each stores its reply in the response cache, so the steady state of a
   hot request mix is cache-bound, not solver-bound.  All counters are
   deterministic: they depend only on the request sequence and the cache
   state, never on domain scheduling (the Memo's single-flight makes
   concurrent same-key hit/miss counts interleaving-independent). *)

open Tapa_cs_util
open Tapa_cs_device
module Tenant = Tapa_cs_farm.Tenant
module Flow = Tapa_cs.Flow
module Compiler = Tapa_cs.Compiler

type config = {
  max_depth : int;
  best_effort_depth : int;
  cache_entries : int;
}

let default_config = { max_depth = 64; best_effort_depth = 48; cache_entries = 8192 }

type reply =
  | Compiled of {
      freq_mhz : float;
      max_slot_util : float;
      degraded : bool;
      latency_lower_s : float;
      latency_upper_s : float;
    }
  | Simulated of { freq_mhz : float; latency_s : float; events : int }
  | Failed of { reason : string }

type verdict =
  | Hit of reply
  | Done of { reply : reply; comp : int; leader : bool }
  | Rejected of { code : string; reason : string }

type counters = {
  received : int;
  completed : int;
  hits : int;
  misses : int;
  coalesced : int;
  rejected_strict : int;
  shed_best_effort : int;
  rounds : int;
  queue_depth_peak : int;
  inflight_peak : int;
}

type stats = {
  mutable received : int;
  mutable completed : int;
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  mutable rejected_strict : int;
  mutable shed_best_effort : int;
  mutable rounds : int;
  mutable queue_depth_peak : int;
  mutable inflight_peak : int;
  mutable latencies : float list;  (* newest first; sorted at metrics time *)
  mutable nlatencies : int;
  (* Cumulative wall-clock per pipeline stage, for diagnosing where a
     request stream spends its time (e.g. why a warm stream is barely
     faster than a cold one).  Wall-clock, so excluded from the
     deterministic script reports via [metrics_json ~timing_fields:false]. *)
  mutable transport_s : float;  (* parse + response write, noted by the server *)
  mutable admission_s : float;  (* planning pass minus the cache probes *)
  mutable probe_s : float;  (* response-cache lookups in the planning pass *)
  mutable solve_s : float;  (* the batched compute over distinct requests *)
}

type t = {
  config : config;
  pool : Pool.t option;
  cache : reply Memo.t;
  stats : stats;
}

let create ?pool ?(config = default_config) () =
  let config =
    {
      config with
      max_depth = max config.max_depth 1;
      best_effort_depth = max 1 (min config.best_effort_depth config.max_depth);
    }
  in
  {
    config;
    pool;
    cache = Memo.create ~max_entries:config.cache_entries ();
    stats =
      {
        received = 0;
        completed = 0;
        hits = 0;
        misses = 0;
        coalesced = 0;
        rejected_strict = 0;
        shed_best_effort = 0;
        rounds = 0;
        queue_depth_peak = 0;
        inflight_peak = 0;
        latencies = [];
        nlatencies = 0;
        transport_s = 0.0;
        admission_s = 0.0;
        probe_s = 0.0;
        solve_s = 0.0;
      };
  }

let reset_counters t =
  let s = t.stats in
  s.received <- 0;
  s.completed <- 0;
  s.hits <- 0;
  s.misses <- 0;
  s.coalesced <- 0;
  s.rejected_strict <- 0;
  s.shed_best_effort <- 0;
  s.rounds <- 0;
  s.queue_depth_peak <- 0;
  s.inflight_peak <- 0;
  s.latencies <- [];
  s.nlatencies <- 0;
  s.transport_s <- 0.0;
  s.admission_s <- 0.0;
  s.probe_s <- 0.0;
  s.solve_s <- 0.0

let counters t =
  let s = t.stats in
  {
    received = s.received;
    completed = s.completed;
    hits = s.hits;
    misses = s.misses;
    coalesced = s.coalesced;
    rejected_strict = s.rejected_strict;
    shed_best_effort = s.shed_best_effort;
    rounds = s.rounds;
    queue_depth_peak = s.queue_depth_peak;
    inflight_peak = s.inflight_peak;
  }

(* ------------------------------------------------------------------ *)
(* Request evaluation                                                  *)
(* ------------------------------------------------------------------ *)

let make_graph (r : Request.t) =
  let module Apps = Tapa_cs_apps in
  match r.Request.app with
  | "stencil" ->
    let app =
      Apps.Stencil.generate
        (Apps.Stencil.make_config ~iterations:r.Request.iters ~fpgas:r.Request.fpgas ())
    in
    Ok app.Apps.App.graph
  | "pagerank" -> (
    match Apps.Dataset.find r.Request.dataset with
    | Some ds ->
      let app =
        Apps.Pagerank.generate (Apps.Pagerank.make_config ~dataset:ds ~fpgas:r.Request.fpgas ())
      in
      Ok app.Apps.App.graph
    | None -> Error (Printf.sprintf "unknown dataset %S" r.Request.dataset))
  | "knn" ->
    let app =
      Apps.Knn.generate
        (Apps.Knn.make_config ~n_points:r.Request.n ~dims:r.Request.d ~fpgas:r.Request.fpgas ())
    in
    Ok app.Apps.App.graph
  | "cnn" ->
    let app =
      Apps.Cnn.generate (Apps.Cnn.make_config ~cols:r.Request.cols ~fpgas:r.Request.fpgas ())
    in
    Ok app.Apps.App.graph
  | other -> Error (Printf.sprintf "unknown app %S" other)

(* Run one request to a reply.  Everything deterministic: the compiler
   and simulator are bit-identical across jobs and cache states, and
   exceptions are folded into [Failed] so one poisoned request can never
   take the server down. *)
let compute t (r : Request.t) : reply =
  match make_graph r with
  | Error reason -> Failed { reason }
  | Ok graph -> (
    let cluster = Cluster.make ~board:Board.u55c r.Request.fpgas in
    let options = { Compiler.default_options with Compiler.seed = r.Request.seed; jobs = 1 } in
    match Flow.tapa_cs ~options ?pool:t.pool ~cluster graph with
    | Error reason -> Failed { reason }
    | Ok des -> (
      match r.Request.kind with
      | Request.Simulate -> (
        match Flow.simulate des with
        | res ->
          Simulated
            {
              freq_mhz = des.Flow.freq_mhz;
              latency_s = res.Tapa_cs_sim.Design_sim.latency_s;
              events = res.Tapa_cs_sim.Design_sim.events;
            }
        | exception e -> Failed { reason = Printexc.to_string e })
      | Request.Compile | Request.Metrics ->
        let module SP = Tapa_cs_analysis.Static_perf in
        let static, degraded =
          match des.Flow.compiled with
          | Some c -> (c.Compiler.static, c.Compiler.degraded)
          | None -> (Flow.static_bounds des, false)
        in
        Compiled
          {
            freq_mhz = des.Flow.freq_mhz;
            max_slot_util = des.Flow.max_slot_util;
            degraded;
            latency_lower_s = static.SP.latency_lower_s;
            latency_upper_s = static.SP.latency_upper_s;
          }))

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

type plan =
  | Plan_hit of reply
  | Plan_comp of { comp : int; leader : bool }
  | Plan_reject of { code : string; reason : string }

let schedule t (reqs : Request.t array) : verdict array =
  let st = t.stats in
  let nreq = Array.length reqs in
  if nreq = 0 then [||]
  else begin
    st.rounds <- st.rounds + 1;
    st.received <- st.received + nreq;
    if nreq > st.queue_depth_peak then st.queue_depth_peak <- nreq;
    let pending : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let distinct = ref [] in
    let ndistinct = ref 0 in
    (* Stage accounting: the planning pass is split into cache-probe
       time (the [Memo.find] calls) and everything else (admission /
       coalescing bookkeeping); the batched compute below is the solve
       stage.  Timing never influences any decision — the verdicts are
       a pure function of the request array and cache state. *)
    let plan_start = Unix.gettimeofday () in
    let probe_acc = ref 0.0 in
    let plans =
      Array.map
        (fun (r : Request.t) ->
          let key = Request.key r in
          let probe_start = Unix.gettimeofday () in
          let probed = Memo.find t.cache ~key in
          probe_acc := !probe_acc +. (Unix.gettimeofday () -. probe_start);
          match probed with
          | Some reply ->
            st.hits <- st.hits + 1;
            Plan_hit reply
          | None -> (
            match Hashtbl.find_opt pending key with
            | Some comp ->
              st.coalesced <- st.coalesced + 1;
              Plan_comp { comp; leader = false }
            | None ->
              let depth = !ndistinct in
              let limit =
                match r.Request.klass with
                | Tenant.Strict -> t.config.max_depth
                | Tenant.Best_effort -> t.config.best_effort_depth
              in
              if depth >= limit then begin
                (match r.Request.klass with
                | Tenant.Strict -> st.rejected_strict <- st.rejected_strict + 1
                | Tenant.Best_effort -> st.shed_best_effort <- st.shed_best_effort + 1);
                let d =
                  Tapa_cs_analysis.Lint.admission_reject
                    ~klass:(Tenant.slo_label r.Request.klass) ~depth ~limit
                in
                Plan_reject
                  { code = d.Tapa_cs_analysis.Diagnostic.code;
                    reason = d.Tapa_cs_analysis.Diagnostic.message }
              end
              else begin
                let comp = !ndistinct in
                incr ndistinct;
                Hashtbl.add pending key comp;
                distinct := r :: !distinct;
                st.misses <- st.misses + 1;
                Plan_comp { comp; leader = true }
              end))
        reqs
    in
    st.probe_s <- st.probe_s +. !probe_acc;
    st.admission_s <- st.admission_s +. (Unix.gettimeofday () -. plan_start -. !probe_acc);
    let distinct = Array.of_list (List.rev !distinct) in
    if Array.length distinct > st.inflight_peak then st.inflight_peak <- Array.length distinct;
    (* One batch over the shared pool.  Inside a worker the compiler's
       own parallel stages degrade to sequential, so the batch is the
       parallelism; a batch of one runs on the caller and the compile's
       inner stages use the pool instead. *)
    let solve_start = Unix.gettimeofday () in
    let replies =
      Pool.parallel_map ?pool:t.pool
        (fun (r : Request.t) ->
          fst (Memo.find_or_compute t.cache ~key:(Request.key r) (fun () -> compute t r)))
        distinct
    in
    st.solve_s <- st.solve_s +. (Unix.gettimeofday () -. solve_start);
    Array.map
      (fun plan ->
        match plan with
        | Plan_hit reply ->
          st.completed <- st.completed + 1;
          Hit reply
        | Plan_comp { comp; leader } ->
          st.completed <- st.completed + 1;
          Done { reply = replies.(comp); comp; leader }
        | Plan_reject { code; reason } -> Rejected { code; reason })
      plans
  end

let handle t r =
  match schedule t [| r |] with
  | [| v |] -> v
  | _ -> assert false

let note_latency t dt =
  let st = t.stats in
  st.latencies <- dt :: st.latencies;
  st.nlatencies <- st.nlatencies + 1

let note_transport t dt = t.stats.transport_s <- t.stats.transport_s +. dt

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let reply_fields = function
  | Compiled { freq_mhz; max_slot_util; degraded; latency_lower_s; latency_upper_s } ->
    Printf.sprintf
      {|"status":"ok","kind":"compile","freq_mhz":%s,"max_slot_util":%s,"degraded":%b,"latency_lower_s":%s,"latency_upper_s":%s|}
      (Request.json_float freq_mhz)
      (Request.json_float max_slot_util)
      degraded
      (Request.json_float latency_lower_s)
      (Request.json_float latency_upper_s)
  | Simulated { freq_mhz; latency_s; events } ->
    Printf.sprintf {|"status":"ok","kind":"simulate","freq_mhz":%s,"latency_s":%s,"events":%d|}
      (Request.json_float freq_mhz)
      (Request.json_float latency_s)
      events
  | Failed { reason } ->
    Printf.sprintf {|"status":"failed","reason":%s|} (Request.json_str reason)

let served_label = function
  | Hit _ -> "cache"
  | Done { leader = true; _ } -> "computed"
  | Done { leader = false; _ } -> "coalesced"
  | Rejected _ -> "rejected"

let response_json ~id verdict =
  match verdict with
  | Hit reply | Done { reply; _ } ->
    Printf.sprintf {|{"id":%d,%s,"served":%s}|} id (reply_fields reply)
      (Request.json_str (served_label verdict))
  | Rejected { code; reason } ->
    Printf.sprintf {|{"id":%d,"status":"rejected","code":%s,"reason":%s}|} id
      (Request.json_str code) (Request.json_str reason)

let error_json ~id reason =
  Printf.sprintf {|{"id":%d,"status":"error","reason":%s}|} id (Request.json_str reason)

(* ------------------------------------------------------------------ *)
(* Live metrics                                                        *)
(* ------------------------------------------------------------------ *)

(* Nearest-rank percentile over the recorded latencies. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let latency_percentiles t =
  let a = Array.of_list t.stats.latencies in
  Array.sort compare a;
  (percentile a 50.0, percentile a 95.0, percentile a 99.0)

let metrics_json ?(pool_fields = true) ?(timing_fields = true) t =
  let s = t.stats in
  let p50, p95, p99 = latency_percentiles t in
  let fp_hits, fp_misses = Tapa_cs_floorplan.Partition.cache_stats () in
  let sim_hits, sim_misses = Tapa_cs_sim.Design_sim.cache_stats () in
  let pool_queue, pool_busy = match t.pool with Some p -> Pool.snapshot p | None -> (0, 0) in
  let pool_workers = match t.pool with Some p -> Pool.size p | None -> 0 in
  let f = Request.json_float in
  String.concat ""
    [
      Printf.sprintf
        {|{"received":%d,"completed":%d,"rejected_strict":%d,"shed_best_effort":%d,"cache_hits":%d,"cache_misses":%d,"coalesced":%d,"cache_entries":%d,"cache_evictions":%d,"rounds":%d,"queue_depth_peak":%d,"inflight_peak":%d|}
        s.received s.completed s.rejected_strict s.shed_best_effort s.hits s.misses s.coalesced
        (Memo.length t.cache)
        (Memo.stats t.cache).Memo.evictions
        s.rounds s.queue_depth_peak s.inflight_peak;
      (if pool_fields then
         Printf.sprintf {|,"pool_workers":%d,"pool_queue_depth":%d,"pool_busy_workers":%d|}
           pool_workers pool_queue pool_busy
       else "");
      Printf.sprintf {|,"latency_p50_s":%s,"latency_p95_s":%s,"latency_p99_s":%s|} (f p50) (f p95)
        (f p99);
      (if timing_fields then
         Printf.sprintf
           {|,"stage_transport_s":%s,"stage_admission_s":%s,"stage_probe_s":%s,"stage_solve_s":%s|}
           (f s.transport_s) (f s.admission_s) (f s.probe_s) (f s.solve_s)
       else "");
      Printf.sprintf
        {|,"floorplan_cache_hits":%d,"floorplan_cache_misses":%d,"sim_cache_hits":%d,"sim_cache_misses":%d,"static_pruned":%d}|}
        fp_hits fp_misses sim_hits sim_misses
        (Tapa_cs_sim.Sim_sweep.static_pruned ());
    ]

let reset_process_caches () =
  Tapa_cs_floorplan.Partition.reset_cache ();
  Tapa_cs_sim.Design_sim.reset_cache ()
