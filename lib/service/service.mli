(** Compile-as-a-service engine: request coalescing, batched scheduling
    and admission control over the warm caches (DESIGN.md §5j).

    A {!schedule} round answers cache hits immediately, coalesces
    identical misses into one computation, admits the remaining distinct
    computations against a bounded queue (strict requests up to
    [max_depth], best-effort shed at [best_effort_depth]) and runs the
    admitted batch through the shared Domain pool.  Rejections are
    explicit TCS701 responses, never silent drops.  All counters depend
    only on the request sequence and cache state — never on domain
    interleaving — so scripted runs are byte-identical across [--jobs]. *)

type config = {
  max_depth : int;  (** admission bound for strict requests (≥ 1) *)
  best_effort_depth : int;  (** earlier shedding bound, clamped to [max_depth] *)
  cache_entries : int;  (** response-cache capacity ({!Tapa_cs_util.Memo}) *)
}

val default_config : config
(** [{ max_depth = 64; best_effort_depth = 48; cache_entries = 8192 }] *)

type reply =
  | Compiled of {
      freq_mhz : float;
      max_slot_util : float;
      degraded : bool;
      latency_lower_s : float;  (** certified static bound *)
      latency_upper_s : float;
    }
  | Simulated of { freq_mhz : float; latency_s : float; events : int }
  | Failed of { reason : string }
      (** deterministic failures are cached like successes, so a broken
          request does not dodge coalescing and hammer the solver *)

type verdict =
  | Hit of reply  (** answered from the response cache, no work scheduled *)
  | Done of { reply : reply; comp : int; leader : bool }
      (** computed this round; [comp] indexes the round's distinct
          computations, [leader] is false for coalesced followers *)
  | Rejected of { code : string; reason : string }  (** TCS701 *)

type counters = {
  received : int;
  completed : int;  (** hits + computed + coalesced (excludes rejects) *)
  hits : int;
  misses : int;  (** = distinct computations scheduled *)
  coalesced : int;
  rejected_strict : int;
  shed_best_effort : int;
  rounds : int;
  queue_depth_peak : int;
  inflight_peak : int;
}

type t

val create : ?pool:Tapa_cs_util.Pool.t -> ?config:config -> unit -> t
(** The pool is caller-owned and shared across rounds; without one,
    batches run sequentially on the caller. *)

val schedule : t -> Request.t array -> verdict array
(** One scheduling round over a batch of requests; verdicts come back in
    request order.  Metrics-kind requests are treated as ordinary cache
    keys here — transports answer them before scheduling. *)

val handle : t -> Request.t -> verdict
(** [schedule] of a singleton batch. *)

val compute : t -> Request.t -> reply
(** Run one request to a reply, bypassing cache and admission (the
    cache-miss path).  Exposed for tests comparing coalesced against
    uncoalesced answers. *)

val counters : t -> counters

val reset_counters : t -> unit
(** Zero the service counters and recorded latencies without touching
    the response cache (separates a warm-up pass from the measured
    stream). *)

val note_latency : t -> float -> unit
(** Record one request's service latency (wall-clock seconds in live
    mode, virtual seconds in script mode) for the percentile metrics. *)

val note_transport : t -> float -> unit
(** Accrue wall-clock seconds into the transport stage bucket (request
    parsing + response writing, measured by the live server outside
    {!schedule}).  The other three stage buckets — admission, cache
    probe, solve — are accrued inside {!schedule} itself. *)

val latency_percentiles : t -> float * float * float
(** Nearest-rank p50/p95/p99 over latencies recorded so far. *)

val response_json : id:int -> verdict -> string
(** One-line JSON response ([served] is [cache], [computed], [coalesced]
    or the rejection shape with its TCS code). *)

val error_json : id:int -> string -> string
(** Response for a malformed request line. *)

val metrics_json : ?pool_fields:bool -> ?timing_fields:bool -> t -> string
(** Live metrics: service counters, response-cache length/evictions,
    pool queue/busy snapshot, latency percentiles, cumulative per-stage
    wall-clock ([stage_transport_s] / [stage_admission_s] /
    [stage_probe_s] / [stage_solve_s]) and the process-wide
    floorplan/simulation cache counters.  [pool_fields:false] omits the
    pool snapshot and [timing_fields:false] the stage wall-clock — the
    two field sets that legitimately vary with [--jobs] and machine
    speed — so scripted reports stay byte-identical. *)

val reset_process_caches : unit -> unit
(** Clear the process-wide floorplan and simulation caches (scripted
    cold runs; makes repeat runs byte-identical). *)
