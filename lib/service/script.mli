(** Scripted replay: a seeded closed-loop client stream against the
    service on a virtual clock, so throughput and latency reports are
    wall-clock-free and byte-identical across repeats and [--jobs].

    Each client draws requests from a [distinct]-sized universe of
    stencil variants (both kinds, both cluster sizes, both admission
    classes) with its own split PRNG, waits for its response, thinks for
    [think_s] virtual seconds and issues the next.  Leader computations
    are charged fixed virtual costs and packed onto [model_workers]
    virtual workers — real [--jobs] only changes how fast the run
    finishes, never what it reports. *)

type config = {
  clients : int;
  requests_per_client : int;
  distinct : int;
  seed : int;
  warm : bool;  (** pre-fill the response cache with the whole universe first *)
  keep_caches : bool;
      (** skip the entry reset of the process-wide floorplan/sim caches.
          Benchmark-only: lets a warm-stream measurement pre-warm once
          outside the timed region, at the cost of the report depending
          on process history (default [false]). *)
  think_s : float;
  model_workers : int;
  service_config : Service.config;
}

val default_config : config
(** 4 clients × 8 requests over a 6-variant universe, cold, no think
    time, 4 virtual workers, [keep_caches = false]. *)

type report = {
  config : config;
  counters : Service.counters;
  virtual_makespan_s : float;
  virtual_requests_per_s : float;
  metrics : string;
}

val run : ?pool:Tapa_cs_util.Pool.t -> config -> report
(** Resets the process-wide floorplan/sim caches first (unless
    [keep_caches]), so repeat runs are independent and byte-identical. *)

val report_json : report -> string
(** One-line JSON: script parameters, virtual makespan/throughput and
    the embedded {!Service.metrics_json}. *)
