(** Wire format of the compile service: one flat JSON object per line.

    A request names a benchmark generator and its parameters plus the
    operation to run on the resulting design ([compile] or [simulate]);
    [metrics] is a control request the transport answers from the live
    counters without scheduling any work.  The {!key} of a request is
    its content address: every field that can change the answer and none
    that cannot, so identical work is deduplicated and coalesced no
    matter which client (or admission class) asked for it. *)

type kind = Compile | Simulate | Metrics

type t = {
  id : int;  (** client correlation id, echoed in the response *)
  kind : kind;
  app : string;  (** stencil, pagerank, knn or cnn *)
  fpgas : int;
  iters : int;  (** stencil iterations *)
  dataset : string;  (** pagerank dataset *)
  n : int;  (** knn dataset size *)
  d : int;  (** knn feature dimension *)
  cols : int;  (** cnn grid columns *)
  seed : int;
  klass : Tapa_cs_farm.Tenant.slo;
      (** admission class, the farm's SLO vocabulary: [Strict] requests
          are admitted up to the full queue bound, [Best_effort] requests
          are shed earlier under load.  Not part of {!key}. *)
}

val make :
  ?id:int ->
  ?fpgas:int ->
  ?iters:int ->
  ?dataset:string ->
  ?n:int ->
  ?d:int ->
  ?cols:int ->
  ?seed:int ->
  ?klass:Tapa_cs_farm.Tenant.slo ->
  kind:kind ->
  app:string ->
  unit ->
  t

val kind_label : kind -> string

val key : t -> string
(** Canonical content address; excludes [id] and [klass]. *)

val to_line : t -> string
(** One-line JSON encoding (no trailing newline). *)

val of_line : string -> (t, string) result
(** Parse one request line.  Strict: unknown fields, malformed JSON or a
    missing [kind] are errors (returned, never raised), so the transport
    can always answer with an explicit error response. *)

val json_str : string -> string
(** JSON string literal with escaping (shared by the response writers). *)

val json_float : float -> string
(** Deterministic float rendering for response/metrics JSON. *)
