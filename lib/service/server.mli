(** Live transport: newline-delimited JSON over a Unix domain socket.

    A single [select] loop owns every connection; all complete request
    lines collected in one wake-up form one {!Service.schedule} round,
    so concurrent bursts of identical requests coalesce and the
    admission bound applies across connections.  Metrics requests and
    malformed lines are answered inline without scheduling. *)

type t

val create : socket_path:string -> Service.t -> t
(** Bind and listen (replacing any stale socket file). *)

val serve : ?max_requests:int -> t -> int
(** Run the accept/schedule loop until [max_requests] responses have
    been written (0, the default, runs forever).  Returns the number of
    responses written. *)

val close : t -> unit
(** Close every connection and remove the socket file. *)

val request_once :
  ?retries:int -> socket_path:string -> string -> (string, string) result
(** One-shot client: connect (retrying [retries] times at 50 ms while
    the server starts, default 50), send one request line, return the
    response line. *)
