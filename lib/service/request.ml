module Tenant = Tapa_cs_farm.Tenant

type kind = Compile | Simulate | Metrics

type t = {
  id : int;
  kind : kind;
  app : string;
  fpgas : int;
  iters : int;
  dataset : string;
  n : int;
  d : int;
  cols : int;
  seed : int;
  klass : Tenant.slo;
}

let make ?(id = 0) ?(fpgas = 1) ?(iters = 8) ?(dataset = "soc-Slashdot0811") ?(n = 4_000_000)
    ?(d = 2) ?(cols = 8) ?(seed = 1) ?(klass = Tenant.Best_effort) ~kind ~app () =
  { id; kind; app; fpgas = max 1 fpgas; iters; dataset; n; d; cols; seed; klass }

let kind_label = function Compile -> "compile" | Simulate -> "simulate" | Metrics -> "metrics"

(* The content address of a request: every field that can change the
   answer, none that cannot ([id] is correlation, [klass] is admission
   policy).  Two requests with equal keys are served by one
   computation. *)
let key r =
  Printf.sprintf "req-v1|%s|%s|k=%d|iters=%d|ds=%s|n=%d|d=%d|cols=%d|seed=%d" (kind_label r.kind)
    r.app r.fpgas r.iters r.dataset r.n r.d r.cols r.seed

(* ------------------------------------------------------------------ *)
(* JSON codec: newline-delimited flat objects                          *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""

(* Shortest-roundtrip float rendering, stable across runs: %.17g would
   carry noise digits, %g drops precision; OCaml's %h is not JSON.  The
   values serialized here (latencies, frequencies) are deterministic
   doubles, so a fixed %.9g is reproducible and plenty. *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let to_line r =
  Printf.sprintf
    {|{"id":%d,"kind":%s,"app":%s,"fpgas":%d,"iters":%d,"dataset":%s,"n":%d,"d":%d,"cols":%d,"seed":%d,"class":%s}|}
    r.id (json_str (kind_label r.kind)) (json_str r.app) r.fpgas r.iters (json_str r.dataset) r.n
    r.d r.cols r.seed
    (json_str (Tenant.slo_label r.klass))

(* A tiny strict parser for one flat JSON object per line: string,
   number, bool and null values only (requests never nest).  Errors are
   returned, never raised, so a malformed line always turns into an
   explicit error response. *)

exception Bad of string

type value = Vstr of string | Vnum of float | Vbool of bool | Vnull

let parse_flat line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' ->
          incr pos;
          Buffer.contents b
        | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match line.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'u' ->
            if !pos + 4 >= n then fail "bad unicode escape";
            (match int_of_string_opt ("0x" ^ String.sub line (!pos + 1) 4) with
            | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
            | Some _ -> Buffer.add_char b '?'
            | None -> fail "bad unicode escape");
            pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ()
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub line !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Vstr (string_lit ())
    | Some 't' -> literal "true" (Vbool true)
    | Some 'f' -> literal "false" (Vbool false)
    | Some 'n' -> literal "null" Vnull
    | Some _ ->
      let start = !pos in
      while
        !pos < n
        && match line.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      do
        incr pos
      done;
      if !pos = start then fail "expected a value"
      else (
        match float_of_string_opt (String.sub line start (!pos - start)) with
        | Some f -> Vnum f
        | None -> fail "bad number")
    | None -> fail "expected a value"
  in
  expect '{';
  skip_ws ();
  let fields =
    if peek () = Some '}' then begin
      incr pos;
      []
    end
    else begin
      let rec members acc =
        skip_ws ();
        let k = string_lit () in
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          members ((k, v) :: acc)
        | Some '}' ->
          incr pos;
          List.rev ((k, v) :: acc)
        | _ -> fail "expected ',' or '}'"
      in
      members []
    end
  in
  skip_ws ();
  if !pos <> n then fail "trailing bytes after the object";
  fields

let of_line line =
  match parse_flat (String.trim line) with
  | exception Bad msg -> Error msg
  | fields -> (
    let r = ref (make ~kind:Compile ~app:"stencil" ()) in
    let kind_seen = ref false in
    let as_int name = function
      | Vnum f when Float.is_integer f -> int_of_float f
      | _ -> raise (Bad (Printf.sprintf "field %S wants an integer" name))
    in
    let as_str name = function
      | Vstr s -> s
      | _ -> raise (Bad (Printf.sprintf "field %S wants a string" name))
    in
    match
      List.iter
        (fun (k, v) ->
          match k with
          | "id" -> r := { !r with id = as_int k v }
          | "kind" -> (
            kind_seen := true;
            match as_str k v with
            | "compile" -> r := { !r with kind = Compile }
            | "simulate" -> r := { !r with kind = Simulate }
            | "metrics" -> r := { !r with kind = Metrics }
            | other -> raise (Bad (Printf.sprintf "unknown kind %S" other)))
          | "app" -> r := { !r with app = as_str k v }
          | "fpgas" -> r := { !r with fpgas = max 1 (as_int k v) }
          | "iters" -> r := { !r with iters = as_int k v }
          | "dataset" -> r := { !r with dataset = as_str k v }
          | "n" -> r := { !r with n = as_int k v }
          | "d" -> r := { !r with d = as_int k v }
          | "cols" -> r := { !r with cols = as_int k v }
          | "seed" -> r := { !r with seed = as_int k v }
          | "class" -> (
            match as_str k v with
            | "strict" -> r := { !r with klass = Tenant.Strict }
            | "best-effort" -> r := { !r with klass = Tenant.Best_effort }
            | other -> raise (Bad (Printf.sprintf "unknown class %S" other)))
          | other -> raise (Bad (Printf.sprintf "unknown field %S" other)))
        fields
    with
    | () -> if !kind_seen then Ok !r else Error "missing required field \"kind\""
    | exception Bad msg -> Error msg)
