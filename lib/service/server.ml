(* Live transport: newline-delimited JSON over a Unix domain socket.

   One [select] loop owns every connection; each wake-up drains all the
   readable clients, and every complete request line collected in that
   sweep becomes ONE scheduling round ([Service.schedule]).  That is
   where batching comes from in live mode: concurrent clients that race
   a burst of identical requests land in the same round and coalesce to
   a single computation, and the admission bound applies to the whole
   burst, not per connection.  Metrics requests and malformed lines are
   answered inline without touching the scheduler. *)

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes received, not yet terminated by '\n' *)
  mutable closed : bool;
}

type t = {
  service : Service.t;
  listen_fd : Unix.file_descr;
  socket_path : string;
  mutable conns : conn list;
  mutable served : int;  (* completed + rejected + metrics + errors *)
}

let create ~socket_path service =
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec fd;
  Unix.bind fd (Unix.ADDR_UNIX socket_path);
  Unix.listen fd 64;
  { service; listen_fd = fd; socket_path; conns = []; served = 0 }

let close t =
  List.iter (fun c -> if not c.closed then try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  try Unix.unlink t.socket_path with Unix.Unix_error _ -> ()

let write_line fd line =
  let payload = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length payload in
  let off = ref 0 in
  try
    while !off < len do
      off := !off + Unix.write fd payload !off (len - !off)
    done;
    true
  with Unix.Unix_error _ -> false

(* Pull complete lines out of a connection buffer, leaving the partial
   tail in place. *)
let take_lines c =
  let s = Buffer.contents c.buf in
  Buffer.clear c.buf;
  let lines = ref [] in
  let start = ref 0 in
  String.iteri
    (fun i ch ->
      if ch = '\n' then begin
        lines := String.sub s !start (i - !start) :: !lines;
        start := i + 1
      end)
    s;
  Buffer.add_string c.buf (String.sub s !start (String.length s - !start));
  List.rev !lines

let read_chunk = Bytes.create 65536

let drain c =
  match Unix.read c.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 ->
    c.closed <- true;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    []
  | n ->
    Buffer.add_subbytes c.buf read_chunk 0 n;
    List.map (fun line -> (c, line)) (take_lines c)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> []
  | exception Unix.Unix_error _ ->
    c.closed <- true;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    []

(* Serve until [max_requests] requests have been answered (0 = forever).
   Returns the number served. *)
let serve ?(max_requests = 0) t =
  let stop = ref false in
  while not !stop do
    let fds = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
    let readable, _, _ =
      try Unix.select fds [] [] 1.0
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem t.listen_fd readable then begin
      match Unix.accept t.listen_fd with
      | fd, _ ->
        Unix.set_close_on_exec fd;
        t.conns <- { fd; buf = Buffer.create 256; closed = false } :: t.conns
      | exception Unix.Unix_error _ -> ()
    end;
    (* Drain every readable client; the lines collected in this sweep
       are one scheduling round.  Socket reads, request parsing and
       response writes are the transport stage — accounted separately
       from the scheduler so the metrics can say where a stream's time
       actually goes (select idle time is deliberately not counted). *)
    let transport0 = Unix.gettimeofday () in
    let pending =
      List.concat_map
        (fun c -> if c.closed || not (List.memq c.fd readable) then [] else drain c)
        t.conns
    in
    t.conns <- List.filter (fun c -> not c.closed) t.conns;
    (* Answer metrics and malformed lines inline; batch the rest. *)
    let batch = ref [] in
    List.iter
      (fun (c, line) ->
        if String.trim line <> "" then
          match Request.of_line line with
          | Error reason ->
            ignore (write_line c.fd (Service.error_json ~id:0 reason));
            t.served <- t.served + 1
          | Ok r when r.Request.kind = Request.Metrics ->
            ignore (write_line c.fd (Service.metrics_json t.service));
            t.served <- t.served + 1
          | Ok r -> batch := (c, r) :: !batch)
      pending;
    let batch = Array.of_list (List.rev !batch) in
    Service.note_transport t.service (Unix.gettimeofday () -. transport0);
    if Array.length batch > 0 then begin
      let t0 = Unix.gettimeofday () in
      let verdicts = Service.schedule t.service (Array.map snd batch) in
      let dt = Unix.gettimeofday () -. t0 in
      let write0 = Unix.gettimeofday () in
      Array.iteri
        (fun i v ->
          let c, r = batch.(i) in
          Service.note_latency t.service dt;
          ignore (write_line c.fd (Service.response_json ~id:r.Request.id v));
          t.served <- t.served + 1)
        verdicts;
      Service.note_transport t.service (Unix.gettimeofday () -. write0)
    end;
    if max_requests > 0 && t.served >= max_requests then stop := true
  done;
  t.served

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)
(* ------------------------------------------------------------------ *)

let connect ?(retries = 50) socket_path =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () -> Ok fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when n > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.05;
      go (n - 1)
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)
  in
  go retries

let read_line_fd fd =
  let b = Buffer.create 256 in
  let one = Bytes.create 1 in
  let rec go () =
    match Unix.read fd one 0 1 with
    | 0 -> if Buffer.length b = 0 then None else Some (Buffer.contents b)
    | _ ->
      if Bytes.get one 0 = '\n' then Some (Buffer.contents b)
      else begin
        Buffer.add_char b (Bytes.get one 0);
        go ()
      end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* One-shot client: connect (with retries while the server starts up),
   send one request line, return the one response line. *)
let request_once ?retries ~socket_path line =
  match connect ?retries socket_path with
  | Error e -> Error (Printf.sprintf "connect %s: %s" socket_path e)
  | Ok fd ->
    let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
    Fun.protect ~finally (fun () ->
        if not (write_line fd line) then Error "write failed"
        else
          match read_line_fd fd with
          | Some resp -> Ok resp
          | None -> Error "server closed the connection without responding")
