(* Deterministic replay: a seeded synthetic client stream against the
   service on a virtual clock.

   Real compile latency depends on the host, the pool and the OS
   scheduler, so a benchmark that timestamps with the wall clock can
   never be byte-identical across runs or [--jobs].  Script mode instead
   charges every request a fixed virtual cost by outcome (miss, hit,
   coalesced, rejected) and schedules leader computations onto a fixed
   number of *virtual* workers ([model_workers]) that is independent of
   how many real domains executed the batch.  The request stream itself
   comes from split PRNGs, one per client.  Everything the report prints
   — counters, virtual makespan, latency percentiles — is therefore a
   pure function of (config, seed): byte-identical across repeats and
   across [--jobs].

   The clients are closed-loop: each waits for its response before
   issuing the next request, which is what makes the cold/warm
   requests-per-second numbers comparable across cache states. *)

open Tapa_cs_util
module Tenant = Tapa_cs_farm.Tenant

type config = {
  clients : int;
  requests_per_client : int;
  distinct : int;  (** size of the request universe the clients draw from *)
  seed : int;
  warm : bool;  (** pre-warm the response cache with the whole universe *)
  keep_caches : bool;
      (** skip the process-wide cache reset at entry, so the run reuses
          floorplan/sim state left by earlier runs.  Benchmark-only: with
          it set the report is no longer a pure function of (config,
          seed) — it also depends on process history. *)
  think_s : float;  (** virtual pause between a response and the next request *)
  model_workers : int;  (** virtual parallelism of the cost model *)
  service_config : Service.config;
}

let default_config =
  {
    clients = 4;
    requests_per_client = 8;
    distinct = 6;
    seed = 1;
    warm = false;
    keep_caches = false;
    think_s = 0.0;
    model_workers = 4;
    service_config = Service.default_config;
  }

(* Fixed virtual costs, seconds.  Chosen so the modelled cold/warm ratio
   is the same order as the measured one (a compile miss is milliseconds
   of solver work, a cache hit is a hash lookup). *)
let cost_compile_miss = 2e-3
let cost_simulate_miss = 1e-3
let cost_hit = 2e-6
let cost_reject = 1e-6

(* The request universe: [distinct] stencil variants covering both
   request kinds, both cluster sizes and both admission classes, so a
   small universe already exercises every scheduling path. *)
let universe_request ~id u =
  let kind = if u land 1 = 0 then Request.Compile else Request.Simulate in
  let fpgas = 1 + (u / 2 mod 2) in
  let iters = 8 + (8 * (u mod 3)) in
  let klass = if u mod 3 = 0 then Tenant.Strict else Tenant.Best_effort in
  Request.make ~id ~fpgas ~iters ~klass ~kind ~app:"stencil" ()

type report = {
  config : config;
  counters : Service.counters;
  virtual_makespan_s : float;
  virtual_requests_per_s : float;
  metrics : string;  (** the service's {!Service.metrics_json} *)
}

let run ?pool (cfg : config) : report =
  let cfg =
    {
      cfg with
      clients = max 1 cfg.clients;
      requests_per_client = max 0 cfg.requests_per_client;
      distinct = max 1 cfg.distinct;
      model_workers = max 1 cfg.model_workers;
    }
  in
  (* Repeat runs must not see each other's process-wide caches. *)
  if not cfg.keep_caches then Service.reset_process_caches ();
  let svc = Service.create ?pool ~config:cfg.service_config () in
  if cfg.warm then begin
    (* Pre-warm outside the measured stream: one round over the whole
       universe fills the response cache (and the floorplan/sim caches
       under it), then the counters restart so the report covers only
       the measured requests. *)
    ignore
      (Service.schedule svc
         (Array.init cfg.distinct (fun u -> universe_request ~id:(-1 - u) u)));
    Service.reset_counters svc
  end;
  let rngs = Array.init cfg.clients (fun c -> Prng.create (cfg.seed + (7919 * c))) in
  let remaining = Array.make cfg.clients cfg.requests_per_client in
  (* ready.(c) = virtual time client c can issue its next request *)
  let ready = Array.make cfg.clients 0.0 in
  let clock = ref 0.0 in
  let next_id = ref 0 in
  let rec rounds () =
    (* Closed loop, batched: every client whose think time has elapsed
       by the round start contributes its next request. *)
    let batch = ref [] in
    for c = cfg.clients - 1 downto 0 do
      if remaining.(c) > 0 && ready.(c) <= !clock then begin
        remaining.(c) <- remaining.(c) - 1;
        let u = Prng.int rngs.(c) cfg.distinct in
        let id = !next_id in
        incr next_id;
        batch := (c, universe_request ~id u) :: !batch
      end
    done;
    match !batch with
    | [] ->
      (* Nobody ready: either done, or advance the clock to the next
         thinker.  [ready] only moves forward, so this terminates. *)
      let next = ref infinity in
      Array.iteri (fun c t -> if remaining.(c) > 0 && t < !next then next := t) ready;
      if !next < infinity then begin
        clock := !next;
        rounds ()
      end
    | batch ->
      let batch = Array.of_list batch in
      let reqs = Array.map snd batch in
      let verdicts = Service.schedule svc reqs in
      (* Virtual execution: greedy assignment of this round's leader
         computations onto [model_workers] virtual workers, in
         computation order.  Followers finish with their leader. *)
      let worker_free = Array.make cfg.model_workers !clock in
      let comp_finish = Hashtbl.create 16 in
      Array.iteri
        (fun i v ->
          match v with
          | Service.Done { comp; leader = true; _ } ->
            let cost =
              match (reqs.(i)).Request.kind with
              | Request.Simulate -> cost_simulate_miss
              | Request.Compile | Request.Metrics -> cost_compile_miss
            in
            let w = ref 0 in
            for j = 1 to cfg.model_workers - 1 do
              if worker_free.(j) < worker_free.(!w) then w := j
            done;
            let finish = worker_free.(!w) +. cost in
            worker_free.(!w) <- finish;
            Hashtbl.replace comp_finish comp finish
          | _ -> ())
        verdicts;
      let round_end = ref !clock in
      Array.iteri
        (fun i v ->
          let c, _ = batch.(i) in
          let finish =
            match v with
            | Service.Hit _ -> !clock +. cost_hit
            | Service.Rejected _ -> !clock +. cost_reject
            | Service.Done { comp; _ } -> (
              match Hashtbl.find_opt comp_finish comp with
              | Some f -> f
              | None -> !clock +. cost_hit)
          in
          Service.note_latency svc (finish -. !clock);
          ready.(c) <- finish +. cfg.think_s;
          if finish > !round_end then round_end := finish)
        verdicts;
      clock := !round_end;
      rounds ()
  in
  rounds ();
  let counters = Service.counters svc in
  let makespan = !clock in
  let served = counters.Service.received in
  {
    config = cfg;
    counters;
    virtual_makespan_s = makespan;
    virtual_requests_per_s = (if makespan > 0.0 then float_of_int served /. makespan else 0.0);
    metrics = Service.metrics_json ~pool_fields:false ~timing_fields:false svc;
  }

let report_json (r : report) =
  let f = Request.json_float in
  Printf.sprintf
    {|{"mode":"script","clients":%d,"requests_per_client":%d,"distinct":%d,"seed":%d,"warm":%b,"model_workers":%d,"virtual_makespan_s":%s,"virtual_requests_per_s":%s,"service":%s}|}
    r.config.clients r.config.requests_per_client r.config.distinct r.config.seed r.config.warm
    r.config.model_workers (f r.virtual_makespan_s)
    (f r.virtual_requests_per_s)
    r.metrics
