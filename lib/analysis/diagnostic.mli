(** Diagnostics core for the static design linter.

    Every finding carries a stable code ([TCS...]), a severity, a location
    anchored into the design (task / FIFO / HBM channel / ILP constraint by
    id and name), a human message and, where known, a fix hint.  Two
    renderers are provided: a pretty one-line form for terminals and a
    JSON-lines form for tooling. *)

type severity = Error | Warning | Info

type location =
  | Design  (** finding about the design as a whole *)
  | Task of { id : int; name : string }
  | Fifo of { id : int; src : string; dst : string }
  | Channel of { task : string; port_index : int; channel : int }
  | Constraint of { name : string }  (** a named ILP constraint or variable *)

type t = {
  code : string;  (** stable code, e.g. ["TCS101"] *)
  severity : severity;
  loc : location;
  message : string;
  hint : string option;  (** how to fix it, when a fix is known *)
}

val make : ?hint:string -> code:string -> severity:severity -> loc:location -> string -> t
(** [make ~code ~severity ~loc message] builds a diagnostic.  The severity
    passed here should normally come from {!default_severity}. *)

val default_severity : string -> severity
(** Registry severity of a code; [Error] for unknown codes (fail safe: an
    unregistered code must never slip through as ignorable). *)

val is_known : string -> bool
(** Whether a code is in the {!registry}. *)

val describe : string -> string
(** One-line meaning of a code from the registry, or ["?"] if unknown. *)

val default_hint : string -> string option
(** The registry fix hint of a code, if any. *)

val registry : (string * severity * string * string) list
(** [(code, severity, meaning, fix hint)] for every code the linter can
    emit — the table rendered into DESIGN.md. *)

val severity_label : severity -> string
val compare_severity : severity -> severity -> int
(** Orders [Error] above [Warning] above [Info]. *)

val errors : t list -> t list
(** The error-severity subset, preserving order. *)

val sort : t list -> t list
(** Stable sort: errors first, then by code. *)

val pp : Format.formatter -> t -> unit
(** One line: [error[TCS301] cluster: LUT demand ... (fix: ...)]. *)

val pp_list : Format.formatter -> t list -> unit
(** All diagnostics, one per line, followed by a severity tally. *)

val to_json : t -> string
(** One JSON object on one line (JSON-lines), schema:
    [{"code":..., "severity":..., "loc":{...}, "message":..., "hint":...}]. *)

val render : ?json:bool -> t list -> string
(** Whole-list rendering used by the CLI; [json] selects JSON-lines. *)
