open Tapa_cs_util
open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls
open Tapa_cs_floorplan
open Tapa_cs_pipeline
module Ilp = Tapa_cs_ilp

let diag ?hint code loc message =
  let hint = match hint with Some _ as h -> h | None -> Diagnostic.default_hint code in
  Diagnostic.make ?hint ~code ~severity:(Diagnostic.default_severity code) ~loc message

let task_loc (t : Task.t) = Diagnostic.Task { id = t.id; name = t.name }

let fifo_loc g (f : Fifo.t) =
  Diagnostic.Fifo
    { id = f.id; src = (Taskgraph.task g f.src).name; dst = (Taskgraph.task g f.dst).name }

let names_of g ids =
  let names = List.map (fun i -> (Taskgraph.task g i).Task.name) ids in
  match names with
  | a :: b :: c :: d :: e :: f :: _ :: _ ->
    String.concat ", " [ a; b; c; d; e; f ] ^ Printf.sprintf ", ... (%d tasks)" (List.length names)
  | _ -> String.concat ", " names

let is_source g (t : Task.t) =
  Taskgraph.in_fifos g t.id = []
  || List.exists (fun (p : Task.mem_port) -> p.dir = Task.Read) t.mem_ports

let is_sink g (t : Task.t) =
  Taskgraph.out_fifos g t.id = []
  || List.exists (fun (p : Task.mem_port) -> p.dir = Task.Write) t.mem_ports

(* ------------------------------------------------------------------ *)
(* TCS0xx: graph shape                                                 *)
(* ------------------------------------------------------------------ *)

let graph_shape g =
  let n = Taskgraph.num_tasks g in
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  (* TCS001: weak connectivity. *)
  let uf = Union_find.create n in
  Array.iter (fun (f : Fifo.t) -> Union_find.union uf f.src f.dst) (Taskgraph.fifos g);
  let ncomp = Union_find.count uf in
  if ncomp > 1 then
    emit
      (diag "TCS001" Diagnostic.Design
         (Printf.sprintf "task graph splits into %d disconnected components" ncomp));
  (* TCS002: dead tasks.  A single-task design is its own kernel; only
     flag dead logic when there is a dataflow to be dead inside. *)
  if n > 1 then
    Array.iter
      (fun (t : Task.t) ->
        if
          Taskgraph.in_fifos g t.id = []
          && Taskgraph.out_fifos g t.id = []
          && t.mem_ports = []
          && t.compute.Task.elems = 0.0
        then
          emit
            (diag "TCS002" (task_loc t)
               (Printf.sprintf "task %s has no compute, no FIFOs and no memory ports" t.name)))
      (Taskgraph.tasks g);
  let sources =
    Array.to_list (Taskgraph.tasks g) |> List.filter (is_source g) |> List.map (fun t -> t.Task.id)
  in
  let sinks = Array.to_list (Taskgraph.tasks g) |> List.filter (is_sink g) in
  if sources = [] then
    emit
      (diag "TCS003" Diagnostic.Design
         "no source task: every task waits on an upstream FIFO and none reads external memory");
  if sinks = [] then
    emit
      (diag "TCS004" Diagnostic.Design
         "no sink task: no task writes external memory or terminates the dataflow");
  (* TCS005: forward reachability from the sources. *)
  if sources <> [] then begin
    let visited = Array.make n false in
    let rec bfs = function
      | [] -> ()
      | v :: rest ->
        let next =
          List.fold_left
            (fun acc (f : Fifo.t) ->
              if visited.(f.dst) then acc
              else begin
                visited.(f.dst) <- true;
                f.dst :: acc
              end)
            rest (Taskgraph.out_fifos g v)
        in
        bfs next
    in
    List.iter (fun s -> visited.(s) <- true) sources;
    bfs sources;
    Array.iter
      (fun (t : Task.t) ->
        if not visited.(t.id) then
          emit
            (diag "TCS005" (task_loc t)
               (Printf.sprintf "task %s is unreachable from every source task" t.name)))
      (Taskgraph.tasks g)
  end;
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* TCS1xx: deadlock                                                    *)
(* ------------------------------------------------------------------ *)

let deadlock g =
  let n = Taskgraph.num_tasks g in
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  let comps = Taskgraph.sccs g in
  let comp_of = Array.make n (-1) in
  List.iteri (fun ci members -> List.iter (fun v -> comp_of.(v) <- ci) members) comps;
  List.iteri
    (fun ci members ->
      if List.length members > 1 then begin
        let bulk =
          Array.to_list (Taskgraph.fifos g)
          |> List.filter (fun (f : Fifo.t) ->
                 comp_of.(f.src) = ci && comp_of.(f.dst) = ci && f.mode = Fifo.Bulk)
        in
        if bulk <> [] then
          List.iter
            (fun (f : Fifo.t) ->
              emit
                (diag "TCS101" (fifo_loc g f)
                   (Printf.sprintf
                      "bulk-mode FIFO on the feedback cycle through %s: its consumer needs the \
                       full transfer before producing anything the cycle depends on"
                      (names_of g members))))
            bulk
        else
          emit
            (diag "TCS102" Diagnostic.Design
               (Printf.sprintf
                  "feedback cycle through %s: these FIFOs start with only one chunk of credit, \
                   so their depths must absorb the loop's token round-trip"
                  (names_of g members)))
      end)
    comps;
  (* TCS103: reconvergent-path imbalance, via the same cut-set balancing
     fixed point interconnect pipelining uses (§4.6).  Charging one
     latency stage to every FIFO makes [balancing] report, per edge, how
     many stages the longest parallel path is ahead — exactly the token
     imbalance the edge's FIFO must buffer to avoid throttling the join. *)
  let crossings =
    Array.to_list (Taskgraph.fifos g) |> List.map (fun (f : Fifo.t) -> (f.id, 1))
  in
  let bal = Pipelining.run ~graph:g ~crossings in
  List.iter
    (fun (ins : Pipelining.insertion) ->
      let f = Taskgraph.fifo g ins.fifo_id in
      if f.Fifo.depth < ins.stages then
        emit
          (diag "TCS103" (fifo_loc g f)
             (Printf.sprintf
                "reconvergent paths: the longest parallel path runs %d stages ahead but the \
                 FIFO holds only %d elements"
                ins.stages f.Fifo.depth)))
    bal.Pipelining.balancing;
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* TCS2xx: rates and widths                                            *)
(* ------------------------------------------------------------------ *)

let rate_mismatch_ratio = 8.0

let rates g =
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  Array.iter
    (fun (f : Fifo.t) ->
      if f.elems > 0.0 then begin
        let src = Taskgraph.task g f.src and dst = Taskgraph.task g f.dst in
        (* Sustained edge rates: the producer emits f.elems over its steady
           cycles (elems x II / lanes), the consumer drains likewise. *)
        let rate (t : Task.t) =
          let steady = Estimator.steady_cycles t in
          if steady > 0.0 then Some (f.elems /. steady) else None
        in
        (match (rate src, rate dst) with
        | Some rp, Some rc when Float.min rp rc > 0.0 ->
          let ratio = Float.max rp rc /. Float.min rp rc in
          if ratio > rate_mismatch_ratio then
            emit
              (diag "TCS201" (fifo_loc g f)
                 (Printf.sprintf
                    "rate mismatch: %s sustains %.3g elems/cycle but %s %.3g (%.0fx apart)"
                    src.name rp dst.name rc ratio))
        | _ -> ());
        (* Width conflicts: the FIFO width must pack or unpack endpoint
           elements cleanly (serialization by an integer factor is fine). *)
        let conflicts =
          List.filter
            (fun (t : Task.t) ->
              let eb = t.compute.Task.elem_bits in
              eb > 0 && f.width_bits mod eb <> 0 && eb mod f.width_bits <> 0)
            [ src; dst ]
        in
        if conflicts <> [] then
          emit
            (diag "TCS202" (fifo_loc g f)
               (Printf.sprintf "FIFO width %d bits conflicts with element width of %s" f.width_bits
                  (String.concat " and "
                     (List.map
                        (fun (t : Task.t) ->
                          Printf.sprintf "%s (%d bits)" t.name t.compute.Task.elem_bits)
                        conflicts))))
      end)
    (Taskgraph.fifos g);
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* TCS3xx: capacity pre-check                                          *)
(* ------------------------------------------------------------------ *)

let resource_components (r : Resource.t) =
  [ ("LUT", r.lut); ("FF", r.ff); ("BRAM", r.bram); ("DSP", r.dsp); ("URAM", r.uram) ]

let capacity ?(threshold = Constants.utilization_threshold) ~cluster ~synthesis g =
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  let k = Cluster.size cluster in
  let caps = Inter_fpga.capacities ~threshold cluster in
  let total_cap = Array.fold_left Resource.add Resource.zero caps in
  let demand = synthesis.Synthesis.total_resources in
  let board0 = Cluster.board cluster 0 in
  List.iter2
    (fun (name, need) (_, avail) ->
      if need > avail then
        emit
          (diag "TCS301" Diagnostic.Design
             (Printf.sprintf
                "%s demand %d exceeds the %d available across %d x %s at the %.0f%% threshold"
                name need avail k board0.Board.name (100.0 *. threshold))))
    (resource_components demand) (resource_components total_cap);
  (* HBM ports vs. channels. *)
  let channels_per_board =
    Array.init k (fun i -> (Cluster.board cluster i).Board.num_hbm_channels)
  in
  let max_board_channels = Array.fold_left Stdlib.max 0 channels_per_board in
  let total_channels = Array.fold_left ( + ) 0 channels_per_board in
  let total_ports = ref 0 in
  Array.iter
    (fun (t : Task.t) ->
      let nports = List.length t.mem_ports in
      total_ports := !total_ports + nports;
      List.iteri
        (fun pi (p : Task.mem_port) ->
          match p.channel with
          | Some ch when ch < 0 || ch >= board0.Board.num_hbm_channels ->
            emit
              (diag "TCS302"
                 (Diagnostic.Channel { task = t.name; port_index = pi; channel = ch })
                 (Printf.sprintf "port binds channel %d but %s exposes only channels 0..%d" ch
                    board0.Board.name
                    (board0.Board.num_hbm_channels - 1)))
          | _ -> ())
        t.mem_ports;
      if nports > max_board_channels then
        emit
          (diag "TCS304" (task_loc t)
             (Printf.sprintf
                "task %s carries %d memory ports but no board exposes more than %d HBM channels"
                t.name nports max_board_channels)))
    (Taskgraph.tasks g);
  if !total_ports > total_channels then
    emit
      (diag "TCS303" Diagnostic.Design
         (Printf.sprintf "design requests %d memory ports but the cluster exposes %d HBM channels"
            !total_ports total_channels));
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* TCS4xx: ILP model validation                                        *)
(* ------------------------------------------------------------------ *)

let ilp_model m =
  List.map
    (fun issue ->
      let loc = Diagnostic.Constraint { name = Ilp.Validate.issue_name issue } in
      let msg = Format.asprintf "%a" Ilp.Validate.pp_issue issue in
      match issue with
      | Ilp.Validate.Infeasible_constraint _ -> diag "TCS401" loc msg
      | Ilp.Validate.Unbounded_direction _ -> diag "TCS402" loc msg)
    (Ilp.Validate.check m)

(* ------------------------------------------------------------------ *)
(* TCS305..307: floorplanner failures as diagnostics                   *)
(* ------------------------------------------------------------------ *)

let floorplan_error (e : Inter_fpga.error) =
  diag (Inter_fpga.error_code e) Diagnostic.Design (Inter_fpga.error_message e)

(* ------------------------------------------------------------------ *)
(* TCS308: malformed fault specifications from the CLI                 *)
(* ------------------------------------------------------------------ *)

let fault_spec_error ~flag ~spec ~reason =
  diag "TCS308" Diagnostic.Design
    (Printf.sprintf "%s %S: %s" flag spec reason)

(* ------------------------------------------------------------------ *)
(* TCS701: compile-service admission rejection                         *)
(* ------------------------------------------------------------------ *)

let admission_reject ~klass ~depth ~limit =
  diag "TCS701" Diagnostic.Design
    (Printf.sprintf
       "%s request rejected: admission queue holds %d pending computation(s), limit %d" klass
       depth limit)

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

let structural g = graph_shape g @ deadlock g @ rates g

let run_all ?threshold ~cluster g =
  let synthesis = Synthesis.run ~board:(Cluster.board cluster 0) g in
  Diagnostic.sort (structural g @ capacity ?threshold ~cluster ~synthesis g)

let precheck ?threshold ~cluster ~synthesis g =
  Diagnostic.errors
    (Diagnostic.sort (structural g @ capacity ?threshold ~cluster ~synthesis g))
