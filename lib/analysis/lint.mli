(** Static analysis passes over the dataflow IR ({!Tapa_cs_graph.Taskgraph})
    and the cluster model, run before the expensive compiler steps.

    The task/stream abstraction makes these checks purely structural: no
    floorplanning, simulation or LP solve is needed to spot a dead task, a
    bulk-mode feedback loop, a rate mismatch or an over-subscribed
    cluster.  Each pass returns {!Diagnostic.t} values carrying stable
    [TCS] codes (see {!Diagnostic.registry} for the full table):

    - {!graph_shape} — TCS001..TCS005: connectivity, dead/unreachable
      tasks, missing sources and sinks;
    - {!deadlock} — TCS101..TCS103: cycles that cannot make progress
      under the SDF credit treatment of [Design_sim], and reconvergent
      paths whose FIFO depths cannot absorb the imbalance (reusing the
      cut-set balancing math of {!Tapa_cs_pipeline.Pipelining});
    - {!rates} — TCS201..TCS202: producer/consumer throughput imbalance
      and FIFO/element width conflicts;
    - {!capacity} — TCS301..TCS304: post-synthesis demand vs. cluster
      capacity and memory ports vs. HBM channels, per resource class,
      before the inter-FPGA ILP ever runs;
    - {!ilp_model} — TCS401..TCS402: {!Tapa_cs_ilp.Validate} verdicts as
      diagnostics. *)

open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls

val graph_shape : Taskgraph.t -> Diagnostic.t list
val deadlock : Taskgraph.t -> Diagnostic.t list
val rates : Taskgraph.t -> Diagnostic.t list

val capacity :
  ?threshold:float -> cluster:Cluster.t -> synthesis:Synthesis.report -> Taskgraph.t ->
  Diagnostic.t list
(** [threshold] defaults to [Constants.utilization_threshold]; capacities
    are the same post-network-overhead budgets the inter-FPGA
    floorplanner enforces ({!Tapa_cs_floorplan.Inter_fpga.capacities}). *)

val ilp_model : Tapa_cs_ilp.Model.t -> Diagnostic.t list

val floorplan_error : Tapa_cs_floorplan.Inter_fpga.error -> Diagnostic.t
(** A floorplanner failure as its registry diagnostic (TCS305 placement
    infeasible / TCS306 over capacity / TCS307 solver timeout) — the
    single rendering the compiler and the CLI share. *)

val fault_spec_error : flag:string -> spec:string -> reason:string -> Diagnostic.t
(** A malformed CLI fault specification ([--fail-link A:B], a
    [--timeline] line) as its TCS308 registry diagnostic, instead of a
    raw parse exception: [flag] names the offending option, [spec] the
    literal input, [reason] the parser's message
    ({!Tapa_cs_network.Fault.parse_link_spec} /
    {!Tapa_cs_network.Fault.parse_timeline_entry}). *)

val admission_reject : klass:string -> depth:int -> limit:int -> Diagnostic.t
(** A compile-service admission rejection as its TCS701 registry
    diagnostic: the bounded queue already holds [depth] pending
    computations against the [limit] that applies to this request class
    ([klass] is the farm SLO vocabulary: ["strict"] or ["best-effort"]).
    Rejections are always explicit responses — the service never
    silently drops a request. *)

val run_all : ?threshold:float -> cluster:Cluster.t -> Taskgraph.t -> Diagnostic.t list
(** Every pass (synthesizes the graph itself for the capacity check),
    sorted errors-first. *)

val precheck :
  ?threshold:float -> cluster:Cluster.t -> synthesis:Synthesis.report -> Taskgraph.t ->
  Diagnostic.t list
(** The error-severity gate [Compiler.compile] runs as step 0: only
    [Error] diagnostics, reusing the compiler's own synthesis report. *)
