(** Round-trip verification of emitted artifacts.

    Re-parses the three artifacts the emitter produces — the Vivado
    floorplan Tcl, the v++ connectivity config and the design report
    JSON — and re-verifies them against expectations derived from the
    in-memory compile result: slot assignment (TCS601), HBM channel
    binding (TCS602), report contents (TCS603) and cut-set latency
    balance (TCS604, by feeding the parsed insertion stages back through
    the balancing pass and comparing the per-FIFO totals).

    This module is deliberately independent of the compiler: callers
    (see [Emit.verify_roundtrip]) pass the expected facts explicitly, so
    tests can tamper with either side.  Parsers accept exactly the
    emitter's grammar and ignore unrelated lines. *)

open Tapa_cs_graph

type floorplan = {
  pblocks : (string * string list) list;
      (** slot pblock name -> cells added to it, in file order *)
  stage_notes : (string * string * int) list;
      (** (src task, dst task, stages) from the crossing-insertion comments *)
}

val parse_floorplan_tcl : string -> floorplan

type binding = { task : string; port_index : int; channel : int }
type stream = { task : string; dir : [ `Tx | `Rx ]; peer_fpga : int }
type connectivity = { bindings : binding list; streams : stream list }

val parse_connectivity_cfg : string -> connectivity

type report = {
  fpgas : int;
  clock_mhz : float;
  cut_fifo_ids : int list;
  device_clock_mhz : (int * float) list;  (** (device index, achieved clock) *)
  device_tasks : (int * string list) list;  (** (device index, task names) *)
}

val parse_design_report : string -> (report, string) result
(** Minimal scanner for the emitter's fixed JSON shape; [Error] explains
    the first field it could not recover. *)

val check_floorplan :
  fpga:int -> expected_slots:(string * string) list -> floorplan -> Diagnostic.t list
(** TCS601 when a task is missing from its expected pblock, appears in a
    wrong one, or the Tcl places a cell the floorplanner never assigned.
    [expected_slots] lists (task name, slot pblock name) for every placed
    task of this FPGA. *)

val check_stage_balance :
  graph:Taskgraph.t ->
  fpga:int ->
  expected_insertions:(int * int) list ->
  expected_total:(int -> int) ->
  floorplan ->
  Diagnostic.t list
(** TCS604 when the parsed crossing-stage comments differ from
    [expected_insertions] ((fifo id, stages) of the in-memory insertion
    list), or when re-running the latency-balancing pass with the parsed
    stages as crossings yields per-FIFO totals different from
    [expected_total] — i.e. the artifact no longer certifies the
    in-memory cut-set balance. *)

val check_connectivity :
  fpga:int ->
  expected_bindings:binding list ->
  expected_streams:stream list ->
  connectivity ->
  Diagnostic.t list
(** TCS602 for any missing, extra or re-channeled [sp=] binding, or any
    missing/extra inter-FPGA [stream_connect] line. *)

val check_report : expected:report -> report -> Diagnostic.t list
(** TCS603 for each field of the parsed report that disagrees with the
    expectation built from the in-memory result. *)
