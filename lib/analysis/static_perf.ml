module Cluster = Tapa_cs_device.Cluster
module Taskgraph = Tapa_cs_graph.Taskgraph
module Fifo = Tapa_cs_graph.Fifo
module Task = Tapa_cs_graph.Task
module Synthesis = Tapa_cs_hls.Synthesis
module Network = Tapa_cs_network
module Pipelining = Tapa_cs_pipeline.Pipelining
module Design_sim = Tapa_cs_sim.Design_sim

type bottleneck =
  | Task_compute of { task_id : int }
  | Task_memory of { task_id : int; port_index : int }
  | Link of { src_fpga : int; dst_fpga : int }

type t = {
  latency_lower_s : float;
  latency_upper_s : float;
  steady_ii_s : float;
  throughput_chunks_per_s : float;
  bottleneck : bottleneck option;
  min_depths : (int * int) list;
}

(* Relative margin absorbing float-summation order differences between
   this module and the simulator's event trajectory (~1e-11 worst case
   for realistic design sizes; two orders of magnitude of headroom). *)
let margin = 1e-9

let min_depth_floor = 2
let oversize_factor = 64

(* ------------------------------------------------------------------ *)
(* The timing model, replicated float-for-float from Design_sim        *)
(* ------------------------------------------------------------------ *)

(* Per-directed-link service parameters; mirrors Design_sim's server
   construction (link_params + hop scaling + loss derating). *)
type link_model = {
  rate : float;  (* bytes/s *)
  latency : float;  (* one-way seconds, paid per transfer *)
  per_packet : float;  (* seconds per packet *)
  packet : float;  (* bytes *)
}

let link_model (cfg : Design_sim.config) ~loss i j =
  let p =
    if not (Cluster.same_node cfg.cluster i j) then Network.Link.host_mpi_10g
    else begin
      match cfg.cluster.Cluster.link with
      | Cluster.Ethernet_100g -> Network.Link.alveolink
      | Cluster.Pcie_gen3x16 -> Network.Link.pcie_p2p
    end
  in
  let h = float_of_int (Stdlib.max 1 (Cluster.dist cfg.cluster i j)) in
  let slow = if loss > 0.0 then Network.Fault.slowdown ~loss_rate:loss p else 1.0 in
  {
    rate = p.Network.Link.bandwidth_gbytes *. p.Network.Link.derate *. 1e9 /. h /. slow;
    latency = p.Network.Link.one_way_latency_us *. 1e-6 *. h;
    per_packet = p.Network.Link.per_packet_overhead_ns *. 1e-9 *. h *. slow;
    packet = float_of_int p.Network.Link.default_packet_bytes;
  }

(* Engine.Server.service_time, verbatim. *)
let service_time lm amount =
  let packets = if amount <= 0.0 then 0.0 else ceil (amount /. lm.packet) in
  (amount /. lm.rate) +. (packets *. lm.per_packet)

let compute ?(loss_rate = 0.0) ~depths (cfg : Design_sim.config) =
  let g = cfg.graph in
  let nchunks = Stdlib.max 1 cfg.chunks in
  let chunk_bytes (f : Fifo.t) =
    Float.max 1.0 (Fifo.traffic_bytes f /. float_of_int cfg.chunks)
  in
  let sim_volume f = float_of_int nchunks *. chunk_bytes f in
  let freq_hz fpga = cfg.freq_mhz.(fpga) *. 1e6 in
  (* Design_sim.chunk_time_of, split so the bottleneck can name the
     binding term.  [compute_chunk] and the per-port times are the exact
     float expressions the simulator evaluates. *)
  let chunk_parts (t : Task.t) =
    let f_hz = freq_hz cfg.assignment.(t.id) in
    let profile = Synthesis.profile_of cfg.synthesis t.id in
    let compute_chunk = profile.Synthesis.steady_cycles /. float_of_int nchunks /. f_hz in
    let mem_chunk = ref 0.0 and mem_port = ref (-1) in
    List.iteri
      (fun i (p : Task.mem_port) ->
        let bw = cfg.port_bandwidth_gbps t.id i *. 1e9 in
        if bw > 0.0 then begin
          let m = p.Task.bytes /. float_of_int nchunks /. bw in
          if m > !mem_chunk then begin
            mem_chunk := m;
            mem_port := i
          end
        end)
      t.Task.mem_ports;
    (compute_chunk, !mem_chunk, !mem_port)
  in
  let best_ii = ref 0.0 and best = ref None in
  let candidate ii who = if ii > !best_ii || !best = None then begin best_ii := ii; best := Some who end in
  (* Per-task wait sums: iterated exactly as the task fiber accumulates
     them, so [lower] needs no margin on this side. *)
  let task_lower = ref 0.0 and task_upper_sum = ref 0.0 in
  Array.iter
    (fun (t : Task.t) ->
      let f_hz = freq_hz cfg.assignment.(t.id) in
      let profile = Synthesis.profile_of cfg.synthesis t.id in
      let stage_latency =
        List.fold_left
          (fun acc (f : Fifo.t) -> Stdlib.max acc (cfg.extra_stage_cycles f.id))
          0 (Taskgraph.in_fifos g t.id)
      in
      let compute_chunk, mem_chunk, mem_port = chunk_parts t in
      let chunk_time = Float.max compute_chunk mem_chunk in
      let x = ref ((profile.Synthesis.startup_cycles +. float_of_int stage_latency) /. f_hz) in
      for _ = 1 to nchunks do
        x := !x +. chunk_time
      done;
      if !x > !task_lower then task_lower := !x;
      task_upper_sum := !task_upper_sum +. !x;
      if chunk_time > 0.0 then
        candidate chunk_time
          (if compute_chunk >= mem_chunk then Task_compute { task_id = t.id }
           else Task_memory { task_id = t.id; port_index = mem_port }))
    (Taskgraph.tasks g);
  (* Per-directed-link service: every cut FIFO contributes its mover's
     pieces.  Streams move [nchunks] pieces of [chunk_bytes] (plus at
     most one residual piece from float accumulation — charged to the
     upper bound only); Bulk moves one piece of [sim_volume]. *)
  let servers = Hashtbl.create 8 in
  Array.iter
    (fun (f : Fifo.t) ->
      let i = cfg.assignment.(f.src) and j = cfg.assignment.(f.dst) in
      if i <> j then begin
        let key = (i, j) in
        let lm, fifos =
          match Hashtbl.find_opt servers key with
          | Some (lm, fs) -> (lm, fs)
          | None -> (link_model cfg ~loss:loss_rate i j, [])
        in
        Hashtbl.replace servers key (lm, f :: fifos)
      end)
    (Taskgraph.fifos g);
  let link_lower = ref 0.0 and link_upper_sum = ref 0.0 in
  Hashtbl.iter
    (fun (i, j) (lm, fifos) ->
      let sum = ref 0.0 and pieces = ref 0 and spare = ref 0.0 and per_chunk = ref 0.0 in
      List.iter
        (fun (f : Fifo.t) ->
          match f.Fifo.mode with
          | Fifo.Bulk ->
            let s = service_time lm (sim_volume f) in
            sum := !sum +. s;
            incr pieces;
            per_chunk := !per_chunk +. (s /. float_of_int nchunks)
          | Fifo.Stream ->
            let s = service_time lm (chunk_bytes f) in
            for _ = 1 to nchunks do
              sum := !sum +. s
            done;
            pieces := !pieces + nchunks;
            (* the possible residual mover piece (≤ one chunk) *)
            spare := !spare +. s +. lm.latency;
            per_chunk := !per_chunk +. s)
        fifos;
      let lower = (!sum +. lm.latency) *. (1.0 -. margin) in
      if lower > !link_lower then link_lower := lower;
      link_upper_sum :=
        !link_upper_sum +. !sum +. (float_of_int !pieces *. lm.latency) +. !spare;
      if !per_chunk > 0.0 then candidate !per_chunk (Link { src_fpga = i; dst_fpga = j }))
    servers;
  let latency_lower_s = Float.max !task_lower !link_lower in
  let latency_upper_s = (!task_upper_sum +. !link_upper_sum) *. (1.0 +. margin) in
  let steady_ii_s = !best_ii in
  let min_depths =
    if not depths then []
    else begin
      (* Bounded-channel analysis on reconvergent paths: treat every FIFO
         as a unit crossing and let the latency-balancing fixed point
         report, per edge, how far the longest parallel path runs ahead —
         the token imbalance the FIFO must buffer (TCS103's oracle),
         floored at 2 for double buffering. *)
      let crossings =
        Array.to_list (Taskgraph.fifos g) |> List.map (fun (f : Fifo.t) -> (f.Fifo.id, 1))
      in
      let bal = Pipelining.run ~graph:g ~crossings in
      let imbalance = Hashtbl.create 16 in
      List.iter
        (fun (ins : Pipelining.insertion) ->
          Hashtbl.replace imbalance ins.Pipelining.fifo_id ins.Pipelining.stages)
        bal.Pipelining.balancing;
      Array.to_list (Taskgraph.fifos g)
      |> List.map (fun (f : Fifo.t) ->
             let imb = Option.value (Hashtbl.find_opt imbalance f.Fifo.id) ~default:0 in
             (f.Fifo.id, Stdlib.max min_depth_floor imb))
    end
  in
  {
    latency_lower_s;
    latency_upper_s;
    steady_ii_s;
    throughput_chunks_per_s = (if steady_ii_s > 0.0 then 1.0 /. steady_ii_s else Float.infinity);
    bottleneck = !best;
    min_depths;
  }

let bounds ?loss_rate cfg = compute ?loss_rate ~depths:false cfg
let analyze ?loss_rate cfg = compute ?loss_rate ~depths:true cfg

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

let diag ?hint code loc message =
  let hint = match hint with Some _ -> hint | None -> Diagnostic.default_hint code in
  Diagnostic.make ?hint ~code ~severity:(Diagnostic.default_severity code) ~loc message

let fifo_loc g (f : Fifo.t) =
  Diagnostic.Fifo
    {
      id = f.Fifo.id;
      src = (Taskgraph.task g f.Fifo.src).Task.name;
      dst = (Taskgraph.task g f.Fifo.dst).Task.name;
    }

let depth_diagnostics ~graph t =
  List.filter_map
    (fun (fid, min_depth) ->
      let f = Taskgraph.fifo graph fid in
      if f.Fifo.depth < min_depth then
        Some
          (diag "TCS501" (fifo_loc graph f)
             (Printf.sprintf
                "declared depth %d is below the minimal deadlock-free depth %d for its \
                 reconvergent paths"
                f.Fifo.depth min_depth))
      else if f.Fifo.depth >= oversize_factor * min_depth && f.Fifo.depth > oversize_factor then
        Some
          (diag "TCS502" (fifo_loc graph f)
             (Printf.sprintf "declared depth %d is %dx the minimal deadlock-free depth %d"
                f.Fifo.depth (f.Fifo.depth / min_depth) min_depth))
      else None)
    t.min_depths

let interval_check t ~latency_s =
  if latency_s < t.latency_lower_s || latency_s > t.latency_upper_s then
    Some
      (diag "TCS503" Diagnostic.Design
         (Printf.sprintf
            "simulated latency %.9es falls outside the static interval [%.9es, %.9es]"
            latency_s t.latency_lower_s t.latency_upper_s))
  else None

let pp_bottleneck fmt = function
  | None -> Format.fprintf fmt "none (empty design)"
  | Some (Task_compute { task_id }) -> Format.fprintf fmt "task #%d compute" task_id
  | Some (Task_memory { task_id; port_index }) ->
    Format.fprintf fmt "task #%d memory port %d (HBM share)" task_id port_index
  | Some (Link { src_fpga; dst_fpga }) ->
    Format.fprintf fmt "link FPGA %d -> %d" src_fpga dst_fpga

let pp fmt t =
  Format.fprintf fmt "latency interval: [%.6f, %.6f] ms@."
    (t.latency_lower_s *. 1e3) (t.latency_upper_s *. 1e3);
  Format.fprintf fmt "steady-state II:  %.6f us/chunk (%.3f chunks/s)@."
    (t.steady_ii_s *. 1e6) t.throughput_chunks_per_s;
  Format.fprintf fmt "bottleneck:       %a@." pp_bottleneck t.bottleneck;
  if t.min_depths <> [] then begin
    let shallow = List.length (List.filter (fun (_, d) -> d > min_depth_floor) t.min_depths) in
    Format.fprintf fmt "min FIFO depths:  %d fifo(s), %d above the double-buffer floor@."
      (List.length t.min_depths) shallow
  end
