module Taskgraph = Tapa_cs_graph.Taskgraph
module Fifo = Tapa_cs_graph.Fifo
module Task = Tapa_cs_graph.Task
module Pipelining = Tapa_cs_pipeline.Pipelining

type floorplan = {
  pblocks : (string * string list) list;
  stage_notes : (string * string * int) list;
}

type binding = { task : string; port_index : int; channel : int }
type stream = { task : string; dir : [ `Tx | `Rx ]; peer_fpga : int }
type connectivity = { bindings : binding list; streams : stream list }

type report = {
  fpgas : int;
  clock_mhz : float;
  cut_fifo_ids : int list;
  device_clock_mhz : (int * float) list;
  device_tasks : (int * string list) list;
}

(* ------------------------------------------------------------------ *)
(* Small string helpers (no external parsing dependency)               *)
(* ------------------------------------------------------------------ *)

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p
let after p s = String.sub s (String.length p) (String.length s - String.length p)

(* Index of [sub] in [s] at or after [from]; -1 when absent. *)
let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1) in
  if m = 0 then from else go (Stdlib.max 0 from)

(* ------------------------------------------------------------------ *)
(* Parsers — exactly the emitter's grammar, unrelated lines ignored    *)
(* ------------------------------------------------------------------ *)

let parse_floorplan_tcl s =
  let pblocks = ref [] and notes = ref [] in
  let cells name = match List.assoc_opt name !pblocks with
    | Some r -> r
    | None ->
      let r = ref [] in
      pblocks := !pblocks @ [ (name, r) ];
      r
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if has_prefix "create_pblock pblock_" line then
        ignore (cells (after "create_pblock pblock_" line))
      else if has_prefix "add_cells_to_pblock pblock_" line then begin
        try
          Scanf.sscanf line "add_cells_to_pblock pblock_%s@ [get_cells -hier %s@]"
            (fun name task ->
              let r = cells name in
              r := task :: !r)
        with Scanf.Scan_failure _ | End_of_file | Failure _ -> ()
      end
      else if has_prefix "# fifo " line then begin
        (* "# fifo SRC->DST: N pipeline stage(s) inserted at slot crossings" *)
        let body = after "# fifo " line in
        match find_sub body "->" 0 with
        | -1 -> ()
        | arrow -> (
          let src = String.sub body 0 arrow in
          let rest = String.sub body (arrow + 2) (String.length body - arrow - 2) in
          match String.index_opt rest ':' with
          | None -> ()
          | Some colon -> (
            let dst = String.sub rest 0 colon in
            let tail = String.sub rest (colon + 1) (String.length rest - colon - 1) in
            try Scanf.sscanf tail " %d" (fun n -> notes := (src, dst, n) :: !notes)
            with Scanf.Scan_failure _ | End_of_file | Failure _ -> ()))
      end)
    (String.split_on_char '\n' s);
  {
    pblocks = List.map (fun (n, r) -> (n, List.rev !r)) !pblocks;
    stage_notes = List.rev !notes;
  }

let parse_connectivity_cfg s =
  let bindings = ref [] and streams = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if has_prefix "sp=" line then begin
        try
          Scanf.sscanf line "sp=%s@.m_axi_%d:HBM[%d]" (fun task port_index channel ->
              bindings := { task; port_index; channel } :: !bindings)
        with Scanf.Scan_failure _ | End_of_file | Failure _ -> ()
      end
      else if has_prefix "stream_connect=hivenet_rx.out:" line then begin
        try
          Scanf.sscanf line "stream_connect=hivenet_rx.out:%s@.in # from FPGA %d"
            (fun task peer_fpga -> streams := { task; dir = `Rx; peer_fpga } :: !streams)
        with Scanf.Scan_failure _ | End_of_file | Failure _ -> ()
      end
      else if has_prefix "stream_connect=" line then begin
        try
          Scanf.sscanf line "stream_connect=%s@.out:hivenet_tx.in # to FPGA %d"
            (fun task peer_fpga -> streams := { task; dir = `Tx; peer_fpga } :: !streams)
        with Scanf.Scan_failure _ | End_of_file | Failure _ -> ()
      end)
    (String.split_on_char '\n' s);
  { bindings = List.rev !bindings; streams = List.rev !streams }

exception Bad_report of string

let parse_design_report s =
  let scan_from pos fmt conv what =
    try Scanf.sscanf (String.sub s pos (String.length s - pos)) fmt conv
    with Scanf.Scan_failure _ | End_of_file | Failure _ ->
      raise (Bad_report (Printf.sprintf "unreadable %s" what))
  in
  let int_field ?(from = 0) ?limit key =
    let pos = find_sub s (Printf.sprintf "\"%s\":" key) from in
    let ok = pos >= 0 && match limit with None -> true | Some l -> pos < l in
    if not ok then raise (Bad_report (Printf.sprintf "missing field %S" key));
    scan_from (pos + String.length key + 3) " %d" (fun v -> v) key
  in
  let float_field ?(from = 0) ?limit key =
    let pos = find_sub s (Printf.sprintf "\"%s\":" key) from in
    let ok = pos >= 0 && match limit with None -> true | Some l -> pos < l in
    if not ok then raise (Bad_report (Printf.sprintf "missing field %S" key));
    scan_from (pos + String.length key + 3) " %f" (fun v -> v) key
  in
  let bracket_body ?(from = 0) key =
    let pos = find_sub s (Printf.sprintf "\"%s\": [" key) from in
    if pos < 0 then raise (Bad_report (Printf.sprintf "missing list %S" key));
    let open_ = find_sub s "[" pos in
    let close = find_sub s "]" open_ in
    if close < 0 then raise (Bad_report (Printf.sprintf "unterminated list %S" key));
    (String.sub s (open_ + 1) (close - open_ - 1), close)
  in
  try
    let devices_at = find_sub s "\"devices\":" 0 in
    if devices_at < 0 then raise (Bad_report "missing field \"devices\"");
    let fpgas = int_field ~limit:devices_at "fpgas" in
    let clock_mhz = float_field ~limit:devices_at "clock_mhz" in
    let cut_body, _ = bracket_body "cut_fifos" in
    let cut_fifo_ids =
      String.split_on_char ',' cut_body
      |> List.filter_map (fun x ->
             let x = String.trim x in
             if x = "" then None else Some (int_of_string x))
    in
    let device_clock_mhz = ref [] and device_tasks = ref [] in
    let pos = ref devices_at in
    (try
       while true do
         let at = find_sub s "\"index\":" !pos in
         if at < 0 then raise Exit;
         let index = int_field ~from:at "index" in
         let clk = float_field ~from:at "clock_mhz" in
         let tasks_body, close = bracket_body ~from:at "tasks" in
         let names =
           String.split_on_char ',' tasks_body
           |> List.filter_map (fun x ->
                  let x = String.trim x in
                  if String.length x >= 2 && x.[0] = '"' then
                    Some (String.sub x 1 (String.length x - 2))
                  else None)
         in
         device_clock_mhz := (index, clk) :: !device_clock_mhz;
         device_tasks := (index, names) :: !device_tasks;
         pos := close
       done
     with Exit -> ());
    Ok
      {
        fpgas;
        clock_mhz;
        cut_fifo_ids;
        device_clock_mhz = List.rev !device_clock_mhz;
        device_tasks = List.rev !device_tasks;
      }
  with
  | Bad_report m -> Error m
  | Failure m -> Error m

(* ------------------------------------------------------------------ *)
(* Checkers                                                            *)
(* ------------------------------------------------------------------ *)

let diag code loc message =
  Diagnostic.make
    ?hint:(Diagnostic.default_hint code)
    ~code
    ~severity:(Diagnostic.default_severity code)
    ~loc message

let artifact_loc name = Diagnostic.Constraint { name }

let check_floorplan ~fpga ~expected_slots fp =
  let loc = artifact_loc (Printf.sprintf "floorplan_f%d.tcl" fpga) in
  let ds = ref [] in
  let emit m = ds := diag "TCS601" loc m :: !ds in
  let placed_in task =
    List.find_opt (fun (_, cells) -> List.mem task cells) fp.pblocks |> Option.map fst
  in
  List.iter
    (fun (task, slot) ->
      match placed_in task with
      | None -> emit (Printf.sprintf "task %s is missing (expected in pblock_%s)" task slot)
      | Some got when got <> slot ->
        emit (Printf.sprintf "task %s sits in pblock_%s, expected pblock_%s" task got slot)
      | Some _ -> ())
    expected_slots;
  List.iter
    (fun (pb, cells) ->
      List.iter
        (fun cell ->
          if not (List.mem_assoc cell expected_slots) then
            emit
              (Printf.sprintf "pblock_%s places cell %s the floorplanner never assigned" pb cell))
        cells)
    fp.pblocks;
  List.rev !ds

let check_stage_balance ~graph ~fpga ~expected_insertions ~expected_total fp =
  let loc = artifact_loc (Printf.sprintf "floorplan_f%d.tcl" fpga) in
  let ds = ref [] in
  let emit m = ds := diag "TCS604" loc m :: !ds in
  let name tid = (Taskgraph.task graph tid).Task.name in
  let render (fid, stages) =
    let f = Taskgraph.fifo graph fid in
    (name f.Fifo.src, name f.Fifo.dst, stages)
  in
  let expected_notes = List.map render expected_insertions in
  if expected_notes <> fp.stage_notes then
    emit
      (Printf.sprintf
         "crossing-stage comments disagree with the in-memory insertions (%d emitted, %d \
          expected)"
         (List.length fp.stage_notes)
         (List.length expected_notes));
  (* Re-derive the balance from what the artifact says: map each comment
     back to a FIFO (consuming duplicates in graph order) and feed the
     stages as crossings through the balancing pass. *)
  let consumed = Hashtbl.create 8 in
  let resolve (src, dst, stages) =
    let found = ref None in
    Array.iter
      (fun (f : Fifo.t) ->
        if
          !found = None
          && (not (Hashtbl.mem consumed f.Fifo.id))
          && name f.Fifo.src = src
          && name f.Fifo.dst = dst
        then begin
          Hashtbl.add consumed f.Fifo.id ();
          found := Some (f.Fifo.id, stages)
        end)
      (Taskgraph.fifos graph);
    if !found = None then
      emit (Printf.sprintf "stage comment names unknown fifo %s->%s" src dst);
    !found
  in
  let crossings = List.filter_map resolve fp.stage_notes in
  let bal = Pipelining.run ~graph ~crossings in
  Array.iter
    (fun (f : Fifo.t) ->
      let got = Pipelining.stages_of bal f.Fifo.id and want = expected_total f.Fifo.id in
      if got <> want then
        emit
          (Printf.sprintf
             "re-deriving the cut-set balance from the artifact gives %d stage(s) on fifo \
              %s->%s, the in-memory pipeline has %d"
             got (name f.Fifo.src) (name f.Fifo.dst) want))
    (Taskgraph.fifos graph);
  List.rev !ds

let check_connectivity ~fpga ~expected_bindings ~expected_streams conn =
  let file = Printf.sprintf "connectivity_f%d.cfg" fpga in
  let ds = ref [] in
  let bloc (b : binding) =
    Diagnostic.Channel { task = b.task; port_index = b.port_index; channel = b.channel }
  in
  let emit_b code b m = ds := diag code (bloc b) m :: !ds in
  List.iter
    (fun b ->
      if not (List.mem b conn.bindings) then
        emit_b "TCS602" b
          (Printf.sprintf "%s lacks binding sp=%s.m_axi_%d:HBM[%d]" file b.task b.port_index
             b.channel))
    expected_bindings;
  List.iter
    (fun b ->
      if not (List.mem b expected_bindings) then
        emit_b "TCS602" b
          (Printf.sprintf "%s carries binding sp=%s.m_axi_%d:HBM[%d] the compiler never made"
             file b.task b.port_index b.channel))
    conn.bindings;
  let sdesc (st : stream) =
    match st.dir with
    | `Tx -> Printf.sprintf "%s.out -> FPGA %d" st.task st.peer_fpga
    | `Rx -> Printf.sprintf "FPGA %d -> %s.in" st.peer_fpga st.task
  in
  let sloc = artifact_loc file in
  List.iter
    (fun st ->
      if not (List.mem st conn.streams) then
        ds := diag "TCS602" sloc (Printf.sprintf "missing stream_connect for %s" (sdesc st)) :: !ds)
    expected_streams;
  List.iter
    (fun st ->
      if not (List.mem st expected_streams) then
        ds :=
          diag "TCS602" sloc
            (Printf.sprintf "extra stream_connect for %s the cut-set does not contain" (sdesc st))
          :: !ds)
    conn.streams;
  List.rev !ds

let check_report ~expected got =
  let loc = artifact_loc "design_report.json" in
  let ds = ref [] in
  let emit m = ds := diag "TCS603" loc m :: !ds in
  (* Clocks pass through a %.1f rendering; half that quantum is the
     tightest honest tolerance. *)
  let clock_eq a b = Float.abs (a -. b) <= 0.06 in
  if got.fpgas <> expected.fpgas then
    emit (Printf.sprintf "report says %d FPGAs, compile used %d" got.fpgas expected.fpgas);
  if not (clock_eq got.clock_mhz expected.clock_mhz) then
    emit
      (Printf.sprintf "report clock %.1f MHz, compile closed at %.1f MHz" got.clock_mhz
         expected.clock_mhz);
  if got.cut_fifo_ids <> expected.cut_fifo_ids then
    emit
      (Printf.sprintf "report cut-set {%s} differs from the compiler's {%s}"
         (String.concat "," (List.map string_of_int got.cut_fifo_ids))
         (String.concat "," (List.map string_of_int expected.cut_fifo_ids)));
  let by_index l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  let gclk = by_index got.device_clock_mhz and eclk = by_index expected.device_clock_mhz in
  if
    List.length gclk <> List.length eclk
    || not (List.for_all2 (fun (i, a) (j, b) -> i = j && clock_eq a b) gclk eclk)
  then emit "per-device clocks disagree with the compile result";
  let gt = by_index got.device_tasks and et = by_index expected.device_tasks in
  if gt <> et then begin
    let render l =
      String.concat "; "
        (List.map (fun (i, names) -> Printf.sprintf "f%d:[%s]" i (String.concat "," names)) l)
    in
    emit
      (Printf.sprintf "per-device task lists disagree: report %s, compile %s" (render gt)
         (render et))
  end;
  List.rev !ds
