type severity = Error | Warning | Info

type location =
  | Design
  | Task of { id : int; name : string }
  | Fifo of { id : int; src : string; dst : string }
  | Channel of { task : string; port_index : int; channel : int }
  | Constraint of { name : string }

type t = {
  code : string;
  severity : severity;
  loc : location;
  message : string;
  hint : string option;
}

(* The single source of truth for codes: severity, meaning, fix hint.
   DESIGN.md §5b mirrors this table. *)
let registry =
  [
    ( "TCS001",
      Warning,
      "task graph is not weakly connected",
      "split independent kernels into separate designs, or connect the components" );
    ( "TCS002",
      Error,
      "dead task: no compute, no FIFOs and no memory ports",
      "remove the task or give it work (streams, memory ports or compute)" );
    ( "TCS003",
      Warning,
      "design has no source: every task waits on an upstream FIFO and none reads memory",
      "add a task with a memory read port or no stream inputs to seed the dataflow" );
    ( "TCS004",
      Warning,
      "design has no sink: no task writes memory or terminates the dataflow",
      "add a task with a memory write port or no stream outputs" );
    ( "TCS005",
      Warning,
      "task is unreachable from every source task",
      "connect the task downstream of a source, or make it a source" );
    ( "TCS101",
      Error,
      "bulk-mode FIFO on a dependency cycle: the consumer needs the full volume before \
       producing, which its own output transitively feeds",
      "use a streaming FIFO on the feedback path, or break the cycle" );
    ( "TCS102",
      Warning,
      "feedback cycle: FIFO depths must absorb the loop's token round-trip (feedback edges \
       start with a single chunk of credit in simulation)",
      "size the feedback FIFO depths to cover the cycle latency" );
    ( "TCS103",
      Warning,
      "reconvergent paths: FIFO depth cannot absorb the latency imbalance of the longest \
       parallel path",
      "deepen the FIFO to at least the path-imbalance (in elements)" );
    ( "TCS201",
      Warning,
      "producer/consumer rate mismatch on a FIFO (sustained elems/cycle differ by >8x)",
      "re-balance lanes/II across the edge or accept the idle stage" );
    ( "TCS202",
      Warning,
      "FIFO width conflicts with an endpoint's element width (neither divides the other)",
      "make the FIFO width a multiple or divisor of the endpoint element width" );
    ( "TCS301",
      Error,
      "post-synthesis resource demand exceeds cluster capacity under the utilization threshold",
      "add FPGAs, raise the threshold, or shrink the design" );
    ( "TCS302",
      Error,
      "memory port binds an HBM channel id the board does not expose",
      "use a channel id below the board's channel count, or drop the explicit binding" );
    ( "TCS303",
      Error,
      "design requests more memory ports than the cluster exposes HBM channels",
      "reduce memory ports per task or add FPGAs" );
    ( "TCS304",
      Error,
      "a single task carries more memory ports than any one board's HBM channels",
      "split the task: all of a task's ports must bind on its own FPGA" );
    ( "TCS305",
      Error,
      "floorplanner found no feasible task-to-FPGA mapping (placement failure)",
      "add FPGAs, raise the threshold, or shrink the design" );
    ( "TCS306",
      Error,
      "every floorplan fallback produced only over-capacity mappings",
      "add FPGAs or rebalance the largest tasks; the count is the number of over-budget devices" );
    ( "TCS307",
      Error,
      "floorplan solver hit its wall-clock deadline without a feasible incumbent",
      "raise the deadline, use the heuristic strategy, or shrink the instance" );
    ( "TCS308",
      Error,
      "malformed fault specification (link or fleet-timeline syntax)",
      "links are A:B with distinct non-negative device indices; timeline lines are '<t> \
       device-down|device-up <i>', '<t> link-down|link-up <A:B>' or '<t> loss <rate>'" );
    ( "TCS401",
      Error,
      "ILP model is trivially infeasible: a constraint excludes every point in the variable \
       bounds",
      "fix the named constraint (usually an under-provisioned capacity)" );
    ( "TCS402",
      Error,
      "ILP objective is trivially unbounded along an unconstrained variable",
      "bound the named variable or constrain it" );
    ( "TCS501",
      Warning,
      "FIFO depth is below the minimal deadlock-free bound for its reconvergent paths",
      "deepen the FIFO to at least the static minimal depth (path imbalance, floor 2)" );
    ( "TCS502",
      Info,
      "FIFO depth is wastefully oversized versus its minimal deadlock-free bound",
      "shrink the FIFO toward the static minimal depth to reclaim BRAM" );
    ( "TCS503",
      Error,
      "simulated latency falls outside the static [lower, upper] latency interval",
      "the analytic model and the simulator disagree: report the design, do not ship the bound" );
    ( "TCS601",
      Error,
      "emitted floorplan Tcl disagrees with the in-memory slot assignment",
      "re-emit the artifacts; stale or hand-edited Tcl must not drive place-and-route" );
    ( "TCS602",
      Error,
      "emitted connectivity config disagrees with the in-memory HBM binding",
      "re-emit the artifacts; the v++ config must match the bound channels exactly" );
    ( "TCS603",
      Error,
      "emitted design report disagrees with the in-memory compile result",
      "re-emit the artifacts; downstream tooling reads the report as ground truth" );
    ( "TCS604",
      Error,
      "cut-set pipeline stages in the emitted Tcl do not re-derive the in-memory latency balance",
      "re-emit the artifacts; unbalanced cut latencies break the throughput argument" );
    ( "TCS701",
      Error,
      "compile-service admission queue is full: the request was rejected before any work was \
       scheduled",
      "retry with backoff, raise the service --max-depth, or accept best-effort shedding under \
       load" );
  ]

(* One lookup shared by every accessor, so severity / meaning / hint can
   never disagree about whether a code exists. *)
let find code = List.find_opt (fun (c, _, _, _) -> c = code) registry

let is_known code = find code <> None

let default_severity code =
  match find code with
  | Some (_, s, _, _) -> s
  | None -> Error

let describe code =
  match find code with
  | Some (_, _, m, _) -> m
  | None -> "?"

let default_hint code =
  match find code with
  | Some (_, _, _, h) when h <> "" -> Some h
  | _ -> None

let make ?hint ~code ~severity ~loc message = { code; severity; loc; message; hint }

let severity_label = function Error -> "error" | Warning -> "warning" | Info -> "info"

let rank = function Error -> 0 | Warning -> 1 | Info -> 2
let compare_severity a b = compare (rank a) (rank b)

let errors ds = List.filter (fun d -> d.severity = Error) ds

let sort ds =
  List.stable_sort (fun a b ->
      match compare_severity a.severity b.severity with
      | 0 -> compare a.code b.code
      | c -> c)
    ds

let pp_loc fmt = function
  | Design -> Format.fprintf fmt "design"
  | Task { id; name } -> Format.fprintf fmt "task %s (#%d)" name id
  | Fifo { id; src; dst } -> Format.fprintf fmt "fifo #%d (%s -> %s)" id src dst
  | Channel { task; port_index; channel } ->
    Format.fprintf fmt "task %s port %d -> channel %d" task port_index channel
  | Constraint { name } -> Format.fprintf fmt "constraint %s" name

let pp fmt d =
  Format.fprintf fmt "%s[%s] %a: %s" (severity_label d.severity) d.code pp_loc d.loc d.message;
  match d.hint with None -> () | Some h -> Format.fprintf fmt " (fix: %s)" h

let pp_list fmt ds =
  List.iter (fun d -> Format.fprintf fmt "%a@." pp d) ds;
  let count s = List.length (List.filter (fun d -> d.severity = s) ds) in
  Format.fprintf fmt "%d error(s), %d warning(s), %d info@." (count Error) (count Warning)
    (count Info)

(* Minimal JSON string escaping: the linter only emits ASCII messages. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_loc = function
  | Design -> {|{"kind":"design"}|}
  | Task { id; name } -> Printf.sprintf {|{"kind":"task","id":%d,"name":%s}|} id (json_string name)
  | Fifo { id; src; dst } ->
    Printf.sprintf {|{"kind":"fifo","id":%d,"src":%s,"dst":%s}|} id (json_string src)
      (json_string dst)
  | Channel { task; port_index; channel } ->
    Printf.sprintf {|{"kind":"channel","task":%s,"port":%d,"channel":%d}|} (json_string task)
      port_index channel
  | Constraint { name } -> Printf.sprintf {|{"kind":"constraint","name":%s}|} (json_string name)

let to_json d =
  Printf.sprintf {|{"code":%s,"severity":%s,"loc":%s,"message":%s,"hint":%s}|}
    (json_string d.code)
    (json_string (severity_label d.severity))
    (json_loc d.loc) (json_string d.message)
    (match d.hint with None -> "null" | Some h -> json_string h)

let render ?(json = false) ds =
  if json then String.concat "\n" (List.map to_json ds)
  else Format.asprintf "%a" pp_list ds
