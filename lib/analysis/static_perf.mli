(** Closed-form performance bounds for a compiled design.

    Computes, without running the simulator, (a) a steady-state
    throughput bound as the bottleneck over task initiation intervals,
    inter-FPGA link service under the chosen floorplan (and loss-derated
    fault plan), and HBM pseudo-channel contention (which enters through
    the config's [port_bandwidth_gbps]); (b) a certified latency interval
    [[lower, upper]] for the end-to-end makespan; and (c) minimal
    deadlock-free FIFO depths on reconvergent paths.

    The bounds replicate {!Tapa_cs_sim.Design_sim}'s timing model
    float-for-float — same chunking, same per-chunk time, same link
    server service formula — so they are sound against both simulator
    engines (whose latencies are bit-identical by the gated contract):

    - [latency_lower_s]: the maximum over (i) each task's own iterated
      wait sum (startup + pipeline-stage latency + [chunks] chunk times;
      the simulator only ever {e delays} a fiber beyond this, and float
      rounding is monotone, so the iterated sum is an exact float lower
      bound) and (ii) each directed link server's total service plus one
      one-way latency, under a [1 - 1e-9] relative margin for summation
      order.
    - [latency_upper_s]: every time advancement in the reference engine
      ends a timed wait, and each advancement interval lies inside the
      union of task-wait durations, link busy intervals and per-transfer
      latency tails; summing all of them (plus one spare piece per cut
      streaming FIFO for mover float-accumulation slack) under a
      [1 + 1e-9] margin bounds the makespan from above.

    Bounds apply to runs that complete: deadlocks, device halts and FIFO
    stalls are out of model ([loss_rate] is in model — it derates the
    link servers closed-form, exactly as the simulator does). *)

open Tapa_cs_graph
module Design_sim := Tapa_cs_sim.Design_sim

type bottleneck =
  | Task_compute of { task_id : int }
      (** steady-state is limited by this task's per-chunk compute *)
  | Task_memory of { task_id : int; port_index : int }
      (** limited by this memory port's share of HBM channel bandwidth *)
  | Link of { src_fpga : int; dst_fpga : int }
      (** limited by the directed inter-FPGA link's per-chunk service *)

type t = {
  latency_lower_s : float;  (** certified lower bound on makespan *)
  latency_upper_s : float;  (** certified upper bound on makespan *)
  steady_ii_s : float;
      (** steady-state initiation interval: seconds between chunk
          completions once every stage is primed *)
  throughput_chunks_per_s : float;  (** [1 / steady_ii_s] *)
  bottleneck : bottleneck option;  (** what pins [steady_ii_s]; [None] on an empty graph *)
  min_depths : (int * int) list;
      (** (fifo id, minimal deadlock-free depth in elements); only
          populated by {!analyze} — {!bounds} leaves it empty *)
}

val bounds : ?loss_rate:float -> Design_sim.config -> t
(** The fast path: latency interval, initiation interval and bottleneck
    only ([min_depths] is left empty).  Microsecond-scale — cheap enough
    to screen every point of a sweep before simulating it. *)

val analyze : ?loss_rate:float -> Design_sim.config -> t
(** {!bounds} plus the bounded-channel depth analysis: re-runs the
    latency-balancing pass with every FIFO treated as a unit crossing and
    reads off, per FIFO, the path imbalance its depth must absorb
    (floored at 2 for double buffering). *)

val min_depth_floor : int
(** The double-buffering floor applied to every minimal depth (2). *)

val oversize_factor : int
(** A FIFO at least this many times deeper than its minimal depth (and
    deeper than [oversize_factor] absolute) is flagged wasteful (64). *)

val depth_diagnostics : graph:Taskgraph.t -> t -> Diagnostic.t list
(** TCS501 (warning) for each FIFO whose declared depth is below its
    minimal deadlock-free depth; TCS502 (info) for each FIFO wastefully
    oversized versus that bound.  Requires a {!analyze} result. *)

val interval_check : t -> latency_s:float -> Diagnostic.t option
(** [Some] TCS503 (error) when a simulated latency falls outside
    [[latency_lower_s, latency_upper_s]] — the analytic model and the
    simulator disagree, so neither can be trusted. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human summary: interval, II, throughput, bottleneck. *)
