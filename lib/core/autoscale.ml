open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls
open Tapa_cs_sim

type kernel = {
  name : string;
  elems : float;
  ops_per_elem : float;
  bytes_per_elem : float;
  pe_resources : Resource.t;
  pe_lanes : int;
  exchange_bytes : float;
}

type bound = Compute | Memory | Network

type plan = {
  fpgas : int;
  pes_per_fpga : int;
  port_width_bits : int;
  predicted_bound : bound;
  predicted_latency_s : float;
  per_fpga_elem_rate : float;
  pe_cap_by_resources : int;
}

let bound_name = function Compute -> "compute" | Memory -> "memory" | Network -> "network"

(* Largest PE count whose aggregate resources stay within the thresholded
   budget for every resource type. *)
let resource_ceiling ~threshold (board : Board.t) pe =
  let cap = Resource.scale threshold board.Board.total in
  let per (used : int) (avail : int) = if used <= 0 then max_int else avail / used in
  List.fold_left min max_int
    [
      per pe.Resource.lut cap.Resource.lut;
      per pe.Resource.ff cap.Resource.ff;
      per pe.Resource.bram cap.Resource.bram;
      per pe.Resource.dsp cap.Resource.dsp;
      per pe.Resource.uram cap.Resource.uram;
    ]

let next_pow2_width bits =
  let rec go w = if w >= bits || w >= 512 then w else go (2 * w) in
  go 32

let plan ?(threshold = Constants.utilization_threshold) ~cluster kernel =
  let k = Cluster.size cluster in
  let board = Cluster.board cluster 0 in
  let freq_hz = board.Board.max_freq_mhz *. 1e6 in
  let pe_cap = resource_ceiling ~threshold board kernel.pe_resources in
  if pe_cap <= 0 then invalid_arg "Autoscale.plan: one PE exceeds the device budget";
  (* Memory wall: elements/second the HBM can feed. *)
  let mem_rate =
    if kernel.bytes_per_elem <= 0.0 then infinity
    else board.Board.hbm_bandwidth_gbps *. 1e9 /. kernel.bytes_per_elem
  in
  let pe_rate = float_of_int kernel.pe_lanes *. freq_hz in
  (* Replicate until memory-bound; more PEs would idle on starved ports (§3). *)
  let pes_for_memory =
    if mem_rate = infinity then pe_cap else int_of_float (ceil (mem_rate /. pe_rate))
  in
  let pes = max 1 (min pe_cap pes_for_memory) in
  let compute_rate = float_of_int pes *. pe_rate in
  let per_fpga_elem_rate = Float.min compute_rate mem_rate in
  (* Port width: narrowest power of two sustaining the per-PE byte rate. *)
  let bytes_per_cycle = kernel.bytes_per_elem *. float_of_int kernel.pe_lanes in
  let port_width_bits = next_pow2_width (int_of_float (ceil (bytes_per_cycle *. 8.0))) in
  (* Split the elements evenly; boundaries move [exchange_bytes] each. *)
  let elems_per_fpga = kernel.elems /. float_of_int k in
  let work_time = elems_per_fpga /. per_fpga_elem_rate in
  let net_time =
    if k <= 1 then 0.0
    else begin
      let bw = Cluster.link_bandwidth_gbytes cluster 0 1 *. 1e9 in
      kernel.exchange_bytes /. bw
    end
  in
  let predicted_bound =
    if net_time > work_time then Network
    else if mem_rate < compute_rate then Memory
    else Compute
  in
  {
    fpgas = k;
    pes_per_fpga = pes;
    port_width_bits;
    predicted_bound;
    predicted_latency_s = Float.max work_time net_time;
    per_fpga_elem_rate;
    pe_cap_by_resources = pe_cap;
  }

let sweep ?threshold ~cluster kernel =
  List.init (Cluster.size cluster) (fun i ->
      let k = i + 1 in
      let sub = Cluster.make ~topology:cluster.Cluster.topology ~board:(fun () -> Cluster.board cluster 0) k in
      (k, plan ?threshold ~cluster:sub kernel))

(* ------------------------------------------------------------------ *)
(* Measured scaling: lower the analytic plan into a PE-level task graph
   and run it through the event simulator, so the advisor's roofline
   prediction can be checked against the timed dataflow model (HBM port
   contention, link serialization, halo synchronization) instead of
   trusted blindly. *)

let to_graph ~cluster kernel (p : plan) =
  let k = p.fpgas in
  if k > Cluster.size cluster then invalid_arg "Autoscale.to_graph: plan larger than cluster";
  let b = Taskgraph.Builder.create () in
  let total_pes = float_of_int (k * p.pes_per_fpga) in
  let elems_per_pe = kernel.elems /. total_pes in
  let bytes_per_pe = kernel.bytes_per_elem *. elems_per_pe in
  let pe_ids =
    Array.init k (fun d ->
        Array.init p.pes_per_fpga (fun i ->
            let mem_ports =
              if bytes_per_pe <= 0.0 then []
              else
                [
                  Task.mem_port ~dir:Task.Read ~width_bits:p.port_width_bits ~bytes:bytes_per_pe ();
                ]
            in
            Taskgraph.Builder.add_task b
              ~name:(Printf.sprintf "%s.d%d.pe%d" kernel.name d i)
              ~kind:(kernel.name ^ ".pe")
              ~compute:
                (Task.make_compute ~ii:1.0 ~elems:elems_per_pe ~ops_per_elem:kernel.ops_per_elem
                   ~lanes:kernel.pe_lanes ())
              ~mem_ports
              ~resources:kernel.pe_resources ()))
  in
  (* One boundary-exchange FIFO pair between neighbouring devices: the
     halo traffic of a 1-D decomposition.  The pair forms a 2-cycle, so
     the simulator's SCC credit keeps it live. *)
  if k > 1 && kernel.exchange_bytes > 0.0 then begin
    let width = 512 in
    let elems = kernel.exchange_bytes /. float_of_int (width / 8) in
    for d = 0 to k - 2 do
      let l = pe_ids.(d).(0) and r = pe_ids.(d + 1).(0) in
      ignore (Taskgraph.Builder.add_fifo b ~src:l ~dst:r ~width_bits:width ~elems ());
      ignore (Taskgraph.Builder.add_fifo b ~src:r ~dst:l ~width_bits:width ~elems ())
    done
  end;
  let g = Taskgraph.Builder.build b in
  let assignment =
    Array.init (Taskgraph.num_tasks g) (fun tid -> tid / p.pes_per_fpga)
  in
  (g, assignment)

let sweep_jobs ?chunks ?threshold ~mode ~cluster kernel =
  let points = sweep ?threshold ~cluster kernel in
  let board () = Cluster.board cluster 0 in
  let sims =
    List.map
      (fun (k, p) ->
        let sub = Cluster.make ~topology:cluster.Cluster.topology ~board k in
        let g, assignment = to_graph ~cluster:sub kernel p in
        let synthesis = Synthesis.run ~board:(board ()) g in
        let freq_mhz = Array.make k (board ()).Board.max_freq_mhz in
        let cfg =
          Design_sim.make_config ?chunks ~graph:g ~assignment ~freq_mhz ~cluster:sub ~synthesis ()
        in
        Sim_sweep.job ~mode ~label:(Printf.sprintf "%s@%d" kernel.name k) cfg)
      points
  in
  (points, Array.of_list sims)

let measured_sweep ?jobs ?chunks ?threshold ?(mode = Design_sim.Coalesced) ~cluster kernel =
  let points, sims = sweep_jobs ?chunks ?threshold ~mode ~cluster kernel in
  let outcomes = Sim_sweep.run ?jobs sims in
  List.map2 (fun (k, p) (_, outcome) -> (k, p, outcome)) points (Array.to_list outcomes)

let measured_sweep_slo ?jobs ?chunks ?threshold ?(mode = Design_sim.Coalesced) ~slo_latency_s
    ~cluster kernel =
  let points, sims = sweep_jobs ?chunks ?threshold ~mode ~cluster kernel in
  let lower_bound_s (j : Sim_sweep.job) =
    (Tapa_cs_analysis.Static_perf.bounds j.Sim_sweep.config)
      .Tapa_cs_analysis.Static_perf.latency_lower_s
  in
  let rows = Sim_sweep.run_slo ?jobs ~slo_latency_s ~lower_bound_s sims in
  List.map2 (fun (k, p) (_, row) -> (k, p, row)) points (Array.to_list rows)

let pp_plan fmt p =
  Format.fprintf fmt
    "%d FPGA(s): %d PEs/device (ceiling %d), %d-bit ports, %s-bound, %.3f ms predicted" p.fpgas
    p.pes_per_fpga p.pe_cap_by_resources p.port_width_bits (bound_name p.predicted_bound)
    (1e3 *. p.predicted_latency_s)
