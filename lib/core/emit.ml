open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_floorplan

let slot_name (board : Board.t) s =
  let row = s / board.Board.cols and col = s mod board.Board.cols in
  Printf.sprintf "SLR%d_X%d" row col

let floorplan_tcl (c : Compiler.t) ~fpga =
  let board = Cluster.board c.Compiler.cluster fpga in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "# TAPA-CS floorplan constraints for FPGA %d (%s)\n" fpga board.Board.name);
  Buffer.add_string buf
    (Printf.sprintf "# design clock: %.0f MHz\n\n" c.Compiler.freq_mhz);
  let placement = c.Compiler.intra.(fpga) in
  let by_slot = Hashtbl.create 8 in
  Array.iteri
    (fun tid slot ->
      match slot with
      | Some s when Compiler.fpga_of c tid = fpga ->
        let cur = Option.value (Hashtbl.find_opt by_slot s) ~default:[] in
        Hashtbl.replace by_slot s ((Taskgraph.task c.Compiler.graph tid).Task.name :: cur)
      | _ -> ())
    placement.Intra_fpga.slot_of;
  let slots = List.sort compare (Hashtbl.fold (fun s _ acc -> s :: acc) by_slot []) in
  List.iter
    (fun s ->
      let name = slot_name board s in
      Buffer.add_string buf (Printf.sprintf "create_pblock pblock_%s\n" name);
      Buffer.add_string buf
        (Printf.sprintf "resize_pblock pblock_%s -add CLOCKREGION_X%dY%d:CLOCKREGION_X%dY%d\n"
           name
           (2 * (s mod board.Board.cols))
           (4 * (s / board.Board.cols))
           ((2 * (s mod board.Board.cols)) + 1)
           ((4 * (s / board.Board.cols)) + 3));
      let tasks = List.rev (Hashtbl.find by_slot s) in
      List.iter
        (fun t ->
          Buffer.add_string buf
            (Printf.sprintf "add_cells_to_pblock pblock_%s [get_cells -hier %s]\n" name t))
        tasks;
      let slot = board.Board.slots.(s) in
      if slot.Board.hbm_channels <> [] then
        Buffer.add_string buf
          (Printf.sprintf "# pblock_%s abuts HBM channels %s\n" name
             (String.concat "," (List.map string_of_int slot.Board.hbm_channels)));
      if slot.Board.qsfp_ports <> [] then
        Buffer.add_string buf (Printf.sprintf "# pblock_%s hosts the QSFP28/CMAC region\n" name);
      Buffer.add_char buf '\n')
    slots;
  (* Pipeline register hints at the slot crossings. *)
  let pipe = c.Compiler.pipeline.(fpga) in
  List.iter
    (fun (ins : Tapa_cs_pipeline.Pipelining.insertion) ->
      let f = Taskgraph.fifo c.Compiler.graph ins.fifo_id in
      Buffer.add_string buf
        (Printf.sprintf "# fifo %s->%s: %d pipeline stage(s) inserted at slot crossings\n"
           (Taskgraph.task c.Compiler.graph f.Fifo.src).Task.name
           (Taskgraph.task c.Compiler.graph f.Fifo.dst).Task.name
           ins.stages))
    pipe.Tapa_cs_pipeline.Pipelining.insertions;
  Buffer.contents buf

let connectivity_cfg (c : Compiler.t) ~fpga =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# v++ linker config for FPGA %d\n[connectivity]\n" fpga);
  List.iter
    (fun (a : Hbm_binding.assignment) ->
      if Compiler.fpga_of c a.task_id = fpga then
        Buffer.add_string buf
          (Printf.sprintf "sp=%s.m_axi_%d:HBM[%d]\n"
             (Taskgraph.task c.Compiler.graph a.task_id).Task.name a.port_index a.channel))
    c.Compiler.hbm.(fpga).Hbm_binding.assignments;
  (* AlveoLink streams for the FIFOs cut away from this device. *)
  List.iter
    (fun (f : Fifo.t) ->
      let sf = Compiler.fpga_of c f.Fifo.src and df = Compiler.fpga_of c f.Fifo.dst in
      if sf = fpga then
        Buffer.add_string buf
          (Printf.sprintf "stream_connect=%s.out:hivenet_tx.in   # to FPGA %d\n"
             (Taskgraph.task c.Compiler.graph f.Fifo.src).Task.name df)
      else if df = fpga then
        Buffer.add_string buf
          (Printf.sprintf "stream_connect=hivenet_rx.out:%s.in   # from FPGA %d\n"
             (Taskgraph.task c.Compiler.graph f.Fifo.dst).Task.name sf))
    c.Compiler.inter.Inter_fpga.cut_fifos;
  Buffer.contents buf

(* Minimal JSON emission; values are numbers, strings and flat structures,
   so hand-rolled printing suffices. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let design_report_json (c : Compiler.t) =
  let buf = Buffer.create 4096 in
  let k = Cluster.size c.Compiler.cluster in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"fpgas\": %d,\n" k);
  Buffer.add_string buf (Printf.sprintf "  \"clock_mhz\": %.1f,\n" c.Compiler.freq_mhz);
  Buffer.add_string buf
    (Printf.sprintf "  \"l1_floorplan_seconds\": %.3f,\n" c.Compiler.l1_runtime_s);
  Buffer.add_string buf
    (Printf.sprintf "  \"l2_floorplan_seconds\": %.3f,\n" c.Compiler.l2_runtime_s);
  Buffer.add_string buf
    (Printf.sprintf "  \"inter_fpga_traffic_bytes\": %.0f,\n"
       c.Compiler.inter.Inter_fpga.traffic_bytes);
  Buffer.add_string buf "  \"cut_fifos\": [";
  Buffer.add_string buf
    (String.concat ", "
       (List.map (fun (f : Fifo.t) -> string_of_int f.Fifo.id) c.Compiler.inter.Inter_fpga.cut_fifos));
  Buffer.add_string buf "],\n";
  Buffer.add_string buf "  \"devices\": [\n";
  for fpga = 0 to k - 1 do
    let est = c.Compiler.freq.(fpga) in
    let u = c.Compiler.inter.Inter_fpga.per_fpga_util.(fpga) in
    Buffer.add_string buf "    {\n";
    Buffer.add_string buf (Printf.sprintf "      \"index\": %d,\n" fpga);
    Buffer.add_string buf (Printf.sprintf "      \"clock_mhz\": %.1f,\n" est.Tapa_cs_freq.Freq_model.freq_mhz);
    Buffer.add_string buf (Printf.sprintf "      \"utilization\": %.4f,\n" u);
    Buffer.add_string buf
      (Printf.sprintf "      \"binding_resource\": \"%s\",\n"
         (json_escape est.Tapa_cs_freq.Freq_model.binding_resource));
    Buffer.add_string buf "      \"tasks\": [";
    let names = ref [] in
    Array.iteri
      (fun tid f ->
        if f = fpga then
          names := Printf.sprintf "\"%s\"" (json_escape (Taskgraph.task c.Compiler.graph tid).Task.name) :: !names)
      c.Compiler.inter.Inter_fpga.assignment;
    Buffer.add_string buf (String.concat ", " (List.rev !names));
    Buffer.add_string buf "]\n";
    Buffer.add_string buf (if fpga = k - 1 then "    }\n" else "    },\n")
  done;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Round-trip verification (TCS6xx)                                    *)
(* ------------------------------------------------------------------ *)

module Artifact_check = Tapa_cs_analysis.Artifact_check
module Diagnostic = Tapa_cs_analysis.Diagnostic

let verify_artifacts (c : Compiler.t) ~tcl_of ~cfg_of ~report =
  let g = c.Compiler.graph in
  let name tid = (Taskgraph.task g tid).Task.name in
  let k = Cluster.size c.Compiler.cluster in
  let ds = ref [] in
  for fpga = 0 to k - 1 do
    let board = Cluster.board c.Compiler.cluster fpga in
    let fp = Artifact_check.parse_floorplan_tcl (tcl_of fpga) in
    let expected_slots =
      List.filter_map
        (fun tid ->
          if Compiler.fpga_of c tid <> fpga then None
          else
            match Compiler.slot_of c tid with
            | Some s -> Some (name tid, slot_name board s)
            | None -> None)
        (List.init (Taskgraph.num_tasks g) Fun.id)
    in
    ds := !ds @ Artifact_check.check_floorplan ~fpga ~expected_slots fp;
    let pipe = c.Compiler.pipeline.(fpga) in
    let expected_insertions =
      List.map
        (fun (ins : Tapa_cs_pipeline.Pipelining.insertion) ->
          (ins.Tapa_cs_pipeline.Pipelining.fifo_id, ins.Tapa_cs_pipeline.Pipelining.stages))
        pipe.Tapa_cs_pipeline.Pipelining.insertions
    in
    ds :=
      !ds
      @ Artifact_check.check_stage_balance ~graph:g ~fpga ~expected_insertions
          ~expected_total:(Tapa_cs_pipeline.Pipelining.stages_of pipe)
          fp;
    let conn = Artifact_check.parse_connectivity_cfg (cfg_of fpga) in
    let expected_bindings =
      List.filter_map
        (fun (a : Hbm_binding.assignment) ->
          if Compiler.fpga_of c a.task_id <> fpga then None
          else
            Some
              {
                Artifact_check.task = name a.task_id;
                port_index = a.port_index;
                channel = a.channel;
              })
        c.Compiler.hbm.(fpga).Hbm_binding.assignments
    in
    let expected_streams =
      List.filter_map
        (fun (f : Fifo.t) ->
          let sf = Compiler.fpga_of c f.Fifo.src and df = Compiler.fpga_of c f.Fifo.dst in
          if sf = fpga then
            Some { Artifact_check.task = name f.Fifo.src; dir = `Tx; peer_fpga = df }
          else if df = fpga then
            Some { Artifact_check.task = name f.Fifo.dst; dir = `Rx; peer_fpga = sf }
          else None)
        c.Compiler.inter.Inter_fpga.cut_fifos
    in
    ds := !ds @ Artifact_check.check_connectivity ~fpga ~expected_bindings ~expected_streams conn
  done;
  (match Artifact_check.parse_design_report report with
  | Error m ->
    ds :=
      !ds
      @ [
          Diagnostic.make ~code:"TCS603" ~severity:Diagnostic.Error
            ~loc:(Diagnostic.Constraint { name = "design_report.json" })
            (Printf.sprintf "design report is unparseable: %s" m);
        ]
  | Ok got ->
    let expected =
      {
        Artifact_check.fpgas = k;
        clock_mhz = c.Compiler.freq_mhz;
        cut_fifo_ids =
          List.map (fun (f : Fifo.t) -> f.Fifo.id) c.Compiler.inter.Inter_fpga.cut_fifos;
        device_clock_mhz =
          List.init k (fun i -> (i, c.Compiler.freq.(i).Tapa_cs_freq.Freq_model.freq_mhz));
        device_tasks =
          List.init k (fun i ->
              ( i,
                List.filter_map
                  (fun tid -> if Compiler.fpga_of c tid = i then Some (name tid) else None)
                  (List.init (Taskgraph.num_tasks g) Fun.id) ));
      }
    in
    ds := !ds @ Artifact_check.check_report ~expected got);
  !ds

let verify_roundtrip (c : Compiler.t) =
  verify_artifacts c
    ~tcl_of:(fun fpga -> floorplan_tcl c ~fpga)
    ~cfg_of:(fun fpga -> connectivity_cfg c ~fpga)
    ~report:(design_report_json c)

let write_all (c : Compiler.t) ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let k = Cluster.size c.Compiler.cluster in
  let write path contents =
    let oc = open_out (Filename.concat dir path) in
    output_string oc contents;
    close_out oc
  in
  for fpga = 0 to k - 1 do
    write (Printf.sprintf "floorplan_f%d.tcl" fpga) (floorplan_tcl c ~fpga);
    write (Printf.sprintf "connectivity_f%d.cfg" fpga) (connectivity_cfg c ~fpga)
  done;
  write "design_report.json" (design_report_json c)
