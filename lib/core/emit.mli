(** Step 7 of the flow (§4.2): emit the floorplan and binding decisions in
    the formats the vendor CAD stack consumes.

    Real TAPA-CS hands its results back to Vitis as (a) pblock placement
    constraints in Tcl, (b) a v++ linker configuration binding each AXI
    port to its HBM pseudo-channel, and (c) a machine-readable design
    report.  These emitters produce the same artifacts from a compiled
    design, one set per FPGA. *)

val floorplan_tcl : Compiler.t -> fpga:int -> string
(** Vivado Tcl: one pblock per occupied slot (named by its SLR and
    column), `add_cells_to_pblock` lines for every task placed there, and
    properties marking the HBM and QSFP regions. *)

val connectivity_cfg : Compiler.t -> fpga:int -> string
(** v++ `--config` format: an `[connectivity]` section with one
    `sp=<task>.m_axi_<n>:HBM[<channel>]` line per bound memory port, and
    `stream_connect` lines for the inter-FPGA AlveoLink streams. *)

val design_report_json : Compiler.t -> string
(** The whole-design report: per-FPGA clock, utilization, placement, cut
    FIFOs and floorplanner statistics, as a single JSON document (no
    external JSON library — emitted directly). *)

val write_all : Compiler.t -> dir:string -> unit
(** Write `floorplan_f<i>.tcl`, `connectivity_f<i>.cfg` for every FPGA
    plus `design_report.json` into [dir] (created if missing). *)

val verify_artifacts :
  Compiler.t ->
  tcl_of:(int -> string) ->
  cfg_of:(int -> string) ->
  report:string ->
  Tapa_cs_analysis.Diagnostic.t list
(** Re-parse the given artifact texts (per-FPGA Tcl and connectivity
    config, plus the design report) with
    {!Tapa_cs_analysis.Artifact_check} and verify them against the
    in-memory design: slot assignment (TCS601), HBM binding and
    inter-FPGA streams (TCS602), report contents (TCS603) and cut-set
    latency balance re-derivation (TCS604).  Empty means the artifacts
    faithfully describe the compile. *)

val verify_roundtrip : Compiler.t -> Tapa_cs_analysis.Diagnostic.t list
(** {!verify_artifacts} over freshly emitted artifacts — the end-to-end
    emit → parse → re-verify loop the [analyze] CLI subcommand runs.
    Always empty unless the emitters and the checkers disagree. *)
