open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls
open Tapa_cs_floorplan
open Tapa_cs_freq
open Tapa_cs_sim

type design = {
  label : string;
  graph : Taskgraph.t;
  cluster : Cluster.t;
  synthesis : Synthesis.report;
  assignment : int array;
  freq_mhz : float;
  port_bandwidth_gbps : int -> int -> float;
  extra_stage_cycles : int -> int;
  max_slot_util : float;
  compiled : Compiler.t option;
}

let port_bw_of_binding ~board ~graph ~binding ~freq_mhz tid port_index =
  let bound = Hbm_binding.effective_port_bandwidth_gbps board binding ~task_id:tid ~port_index in
  let task = Taskgraph.task graph tid in
  match List.nth_opt task.Task.mem_ports port_index with
  | None -> 0.0
  | Some p ->
    let wire = float_of_int p.Task.width_bits /. 8.0 *. freq_mhz *. 1e6 /. 1e9 in
    Float.min bound wire

let vitis ?(board = Board.u55c) graph =
  let board = board () in
  let cluster = Cluster.make ~board:(fun () -> board) 1 in
  let synthesis = Synthesis.run ~board graph in
  let slot_of = Freq_model.naive_placement ~board ~synthesis graph in
  let est = Freq_model.of_placement ~board ~synthesis ~graph ~slot_of ~pipelined:false () in
  if not est.Freq_model.routed then
    Error "Vitis flow: placement over physical capacity (routing failure)"
  else begin
    let binding = Hbm_binding.run ~explore:false ~board ~graph ~slot_of () in
    Ok
      {
        label = "F1-V";
        graph;
        cluster;
        synthesis;
        assignment = Array.make (Taskgraph.num_tasks graph) 0;
        freq_mhz = est.Freq_model.freq_mhz;
        port_bandwidth_gbps =
          port_bw_of_binding ~board ~graph ~binding ~freq_mhz:est.Freq_model.freq_mhz;
        extra_stage_cycles = (fun _ -> 0);
        max_slot_util = est.Freq_model.max_slot_util;
        compiled = None;
      }
  end

let tapa ?(board = Board.u55c) ?(options = Compiler.default_options) ?pool graph =
  let board = board () in
  let cluster = Cluster.make ~board:(fun () -> board) 1 in
  match Compiler.compile ~options ?pool ~cluster graph with
  | Error e -> Error ("TAPA flow: " ^ e)
  | Ok c ->
    Ok
      {
        label = "F1-T";
        graph;
        cluster;
        synthesis = c.Compiler.synthesis;
        assignment = Array.make (Taskgraph.num_tasks graph) 0;
        freq_mhz = c.Compiler.freq_mhz;
        port_bandwidth_gbps = Compiler.port_bandwidth_gbps c;
        extra_stage_cycles = Compiler.extra_stage_cycles c;
        max_slot_util =
          Array.fold_left
            (fun acc (e : Freq_model.estimate) -> Float.max acc e.max_slot_util)
            0.0 c.Compiler.freq;
        compiled = Some c;
      }

let tapa_cs ?(options = Compiler.default_options) ?pool ~cluster graph =
  match Compiler.compile ~options ?pool ~cluster graph with
  | Error e -> Error ("TAPA-CS flow: " ^ e)
  | Ok c ->
    Ok
      {
        label = Printf.sprintf "F%d" (Cluster.size cluster);
        graph;
        cluster;
        synthesis = c.Compiler.synthesis;
        assignment = c.Compiler.inter.Inter_fpga.assignment;
        freq_mhz = c.Compiler.freq_mhz;
        port_bandwidth_gbps = Compiler.port_bandwidth_gbps c;
        extra_stage_cycles = Compiler.extra_stage_cycles c;
        max_slot_util =
          Array.fold_left
            (fun acc (e : Freq_model.estimate) -> Float.max acc e.max_slot_util)
            0.0 c.Compiler.freq;
        compiled = Some c;
      }

let sim_config ?chunks d =
  let k = Cluster.size d.cluster in
  let config =
    Design_sim.make_config ?chunks ~graph:d.graph ~assignment:d.assignment
      ~freq_mhz:(Array.make k d.freq_mhz) ~cluster:d.cluster ~synthesis:d.synthesis ()
  in
  {
    config with
    Design_sim.port_bandwidth_gbps = d.port_bandwidth_gbps;
    extra_stage_cycles = d.extra_stage_cycles;
  }

let simulate ?chunks d = Design_sim.run (sim_config ?chunks d)

let static_bounds ?chunks ?(loss_rate = 0.0) d =
  Tapa_cs_analysis.Static_perf.analyze ~loss_rate (sim_config ?chunks d)

let simulate_outcome ?chunks ?faults d = Design_sim.run_outcome ?faults (sim_config ?chunks d)

let latency_s ?chunks d = (simulate ?chunks d).Design_sim.latency_s

(* The pruning callback: sound only while the static model covers the
   job's faults — loss is derated closed-form, but halts and stalls can
   cut a run short of its clean lower bound, so those jobs always
   simulate. *)
let job_lower_bound_s (j : Sim_sweep.job) =
  let f = j.Sim_sweep.faults in
  if f.Tapa_cs_network.Fault.device_halts <> [] || f.Tapa_cs_network.Fault.fifo_stalls <> []
  then neg_infinity
  else
    (Tapa_cs_analysis.Static_perf.bounds ~loss_rate:f.Tapa_cs_network.Fault.loss_rate
       j.Sim_sweep.config)
      .Tapa_cs_analysis.Static_perf.latency_lower_s

let simulate_many ?jobs ?chunks ?(faults = fun (_ : design) -> Tapa_cs_network.Fault.no_faults)
    ?slo_latency_s (designs : design list) =
  let jobs_arr =
    Array.of_list
      (List.map (fun d -> Sim_sweep.job ~faults:(faults d) ~label:d.label (sim_config ?chunks d)) designs)
  in
  match slo_latency_s with
  | None -> Array.to_list (Sim_sweep.run ?jobs jobs_arr)
  | Some slo ->
    Sim_sweep.run_slo ?jobs ~slo_latency_s:slo ~lower_bound_s:job_lower_bound_s jobs_arr
    |> Array.to_list
    |> List.filter_map (fun (label, row) ->
           match row with
           | Sim_sweep.Simulated o -> Some (label, o)
           | Sim_sweep.Pruned _ -> None)
