(** The TAPA-CS compiler: the seven steps of §4.2.

    0. static design lint ({!Tapa_cs_analysis.Lint.precheck}): any
       error-severity diagnostic — dead task, bulk feedback cycle,
       cluster over-subscription, invalid channel binding — aborts the
       compile with rendered [TCS] diagnostics before the ILP runs;
    1. task-graph construction (done by the caller / {!Frontend});
    2. task extraction and parallel synthesis;
    3. inter-FPGA floorplanning (ILP, Eqs. 1–3);
    4. inter-FPGA communication logic insertion (AlveoLink);
    5. intra-FPGA floorplanning (recursive bisection, Eq. 4) plus HBM
       channel binding exploration;
    6. interconnect pipelining with cut-set balancing;
    7. "bitstream generation" — here, the frequency estimate and the final
       design report handed to the simulator. *)

open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls
open Tapa_cs_floorplan
open Tapa_cs_pipeline
open Tapa_cs_freq

type t = {
  graph : Taskgraph.t;
  cluster : Cluster.t;
  synthesis : Synthesis.report;
  inter : Inter_fpga.t;
  intra : Intra_fpga.t array;  (** one per FPGA *)
  hbm : Hbm_binding.t array;
  pipeline : Pipelining.t array;
  freq : Freq_model.estimate array;
  freq_mhz : float;  (** design clock: the minimum across devices *)
  l1_runtime_s : float;  (** inter-FPGA floorplanner time (§5.6) *)
  l2_runtime_s : float;  (** intra-FPGA floorplanner time (§5.6) *)
  degraded : bool;
      (** some recovery path fired: a floorplan fallback rung, a solver
          retry, or a refloorplan onto a pruned topology *)
  fallbacks : string list;  (** which, in firing order; empty when healthy *)
  static : Tapa_cs_analysis.Static_perf.t;
      (** closed-form performance bounds of the compiled design at the
          simulator's default chunking: certified latency interval,
          steady-state initiation interval with its bottleneck, and
          minimal deadlock-free FIFO depths.  Computed under the fault
          plan's loss rate when one is set. *)
}

type options = {
  strategy : Partition.strategy;
  threshold : float;
  seed : int;
  explore_hbm : bool;  (** HBM binding exploration (§4.5); ablation knob *)
  pipeline_interconnect : bool;  (** §4.6; ablation knob *)
  lint : bool;  (** run the step-0 static lint gate (default [true]) *)
  jobs : int;
      (** worker domains for the parallel stages (synthesis, per-FPGA
          floorplan/HBM/pipelining/frequency).  Default
          {!Tapa_cs_util.Pool.default_jobs} ([TAPA_CS_JOBS] env override,
          else the recommended domain count); [1] = fully sequential.
          The compile result is bit-identical for every value. *)
  fault_plan : Tapa_cs_network.Fault.plan option;
      (** injected faults (default [None]).  Failed devices and downed
          links reroute step 3 through {!Inter_fpga.run_degraded} on the
          surviving sub-topology; the plan's loss rate and mid-run events
          are consumed by the simulator, not the compiler.  All stochastic
          draws derive from the plan's seed, so a given (design, plan)
          pair compiles bit-identically across runs and [jobs]. *)
  verify_static : bool;
      (** differential gate (default [false]): simulate the compiled
          design once and fail the compile with a rendered TCS503
          diagnostic if the simulated latency falls outside the static
          [lower, upper] interval.  The [TAPA_CS_INJECT_STATIC_VIOLATION]
          environment variable corrupts the interval first — the
          soundness gate uses it to prove the check can fire. *)
}

val default_options : options

val compile :
  ?options:options ->
  ?pool:Tapa_cs_util.Pool.t ->
  cluster:Cluster.t ->
  Taskgraph.t ->
  (t, string) Stdlib.result
(** [Error] carries either the rendered step-0 diagnostics (each line
    tagged with its [TCS] code) or a placement/routing failure reason.
    With [options.jobs > 1] the synthesis estimates and the per-FPGA
    stage tail run on a worker-domain pool; results are assembled in
    index order so the output does not depend on [jobs].  [pool] shares a
    caller-owned worker pool across compiles (sweeps, the farm
    controller) instead of spawning one per compile; it overrides
    [options.jobs] and is never shut down here. *)

type solver_stats = {
  lp_solves : int;  (** LP relaxations solved across all floorplan ILPs *)
  lp_pivots : int;  (** simplex iterations (float on certified solves) *)
  lp_certified : int;  (** solves settled by the float-first path *)
  lp_fallbacks : int;  (** solves where certification forced exact re-solve *)
  bb_nodes : int;  (** branch-and-bound nodes explored *)
  refinement_moves : int;  (** heuristic move-refinement steps *)
  subproblems : int;
      (** node-level subproblems spawned by the hierarchical floorplan
          decomposition; 0 when every solve took a flat path *)
  races_exact : int;  (** portfolio races won by the exact B&B arm *)
  races_anneal : int;
      (** portfolio races won by simulated annealing (cost matched the
          exact LP bound) *)
  incumbent_broadcasts : int;
      (** incumbent improvements shared across parallel B&B subtrees *)
}

val solver_stats : t -> solver_stats
(** Solver counters aggregated over the inter-FPGA solve and every
    intra-FPGA bisection level.  Derived purely from the compile result,
    so it is bit-identical across [jobs] settings and cache states — a
    floorplan-cache hit replays the stored stats of the solve that
    produced it.  Process-wide cache hit/miss counts (which {e do}
    depend on what ran earlier) are reported separately by
    {!Partition.cache_stats} and {!fragment_stats}. *)

type fragment_stats = Partition.fragment_stats = {
  frag_hits : int;
      (** per-group floorplan subproblems replayed from the fragment cache *)
  frag_misses : int;  (** subproblem lookups that had to solve *)
  groups_resolved : int;
      (** subproblems actually (re-)solved — the cumulative dirty set *)
  frag_entries : int;  (** fragments currently cached *)
  frag_evictions : int;  (** fragments dropped by generation rotation *)
}

val fragment_stats : unit -> fragment_stats
(** Process-wide counters of {!Partition}'s second-level subproblem
    fragment cache (see [partition.mli]).  Like the solution-cache
    counts, these depend on process history and are therefore kept out
    of {!solver_stats}. *)

val slot_of : t -> int -> int option
(** Final slot of a task on its FPGA. *)

val fpga_of : t -> int -> int
val port_bandwidth_gbps : t -> int -> int -> float
(** Effective HBM bandwidth of a task's memory port after binding,
    additionally capped by [port_width x clock]. *)

val extra_stage_cycles : t -> int -> int
(** Pipeline stages added to a FIFO (insertion + balancing). *)

val pp_summary : Format.formatter -> t -> unit
