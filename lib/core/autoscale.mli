(** Automatic design scale-up (the §7 challenge 1 extension).

    The paper notes that TAPA-CS partitions an already-scaled design but
    FPGA programmers still size PE counts, widths and tiling by hand, and
    announces work on "map-reduce style" automated scaling.  This module
    implements that advisor over the roofline implied by our device and
    network models: given a data-parallel kernel profile and a cluster,
    it chooses the replication factor and port width per device and
    predicts which wall (compute / memory / network) the scaled design
    hits. *)

open Tapa_cs_device

type kernel = {
  name : string;
  elems : float;  (** total elements of work *)
  ops_per_elem : float;
  bytes_per_elem : float;  (** external-memory traffic per element *)
  pe_resources : Resource.t;  (** one processing element *)
  pe_lanes : int;  (** elements per cycle one PE sustains *)
  exchange_bytes : float;  (** inter-partition traffic per device boundary *)
}

type bound = Compute | Memory | Network

type plan = {
  fpgas : int;
  pes_per_fpga : int;
  port_width_bits : int;
  predicted_bound : bound;
  predicted_latency_s : float;
  per_fpga_elem_rate : float;  (** elements/second each device sustains *)
  pe_cap_by_resources : int;  (** the Eq. 1 replication ceiling *)
}

val plan : ?threshold:float -> cluster:Cluster.t -> kernel -> plan
(** Size the kernel for the whole cluster.  PEs are replicated up to the
    smaller of the resource ceiling and the point where the device's HBM
    bandwidth is saturated (adding PEs past that is waste, §3); the port
    width is the narrowest power of two that sustains the per-PE traffic
    at the design clock. *)

val sweep : ?threshold:float -> cluster:Cluster.t -> kernel -> (int * plan) list
(** The plan at every cluster size from 1 to the full cluster — the
    scaling curve an engineer would sketch by hand. *)

val to_graph :
  cluster:Cluster.t -> kernel -> plan -> Tapa_cs_graph.Taskgraph.t * int array
(** Lower a plan into the PE-level task graph it describes — one
    data-parallel PE task per replica (with its HBM port share) plus a
    bidirectional halo-exchange FIFO pair between neighbouring devices —
    and the task->FPGA assignment.  This is the bridge from the analytic
    advisor to the event simulator. *)

val measured_sweep :
  ?jobs:int ->
  ?chunks:int ->
  ?threshold:float ->
  ?mode:Tapa_cs_sim.Design_sim.engine_mode ->
  cluster:Cluster.t ->
  kernel ->
  (int * plan * Tapa_cs_sim.Design_sim.outcome) list
(** {!sweep}, with every point also lowered via {!to_graph} and run
    through the {!Tapa_cs_sim.Sim_sweep} parallel harness: the scaling
    curve as the timed dataflow model sees it, next to the roofline
    prediction.  [jobs] is the sweep parallelism (results are
    byte-identical for every value); simulation results come from the
    content-addressed cache when warm. *)

val measured_sweep_slo :
  ?jobs:int ->
  ?chunks:int ->
  ?threshold:float ->
  ?mode:Tapa_cs_sim.Design_sim.engine_mode ->
  slo_latency_s:float ->
  cluster:Cluster.t ->
  kernel ->
  (int * plan * Tapa_cs_sim.Sim_sweep.slo_row) list
(** {!measured_sweep} with static pruning: a point whose certified lower
    latency bound ({!Tapa_cs_analysis.Static_perf.bounds}) already
    exceeds the SLO comes back as [Pruned] without simulating — sound,
    because the simulated latency can only be higher.  Each pruned point
    bumps {!Tapa_cs_sim.Sim_sweep.static_pruned} (reported by the CLI's
    [--stats-json] as ["static_pruned"]). *)

val bound_name : bound -> string
val pp_plan : Format.formatter -> plan -> unit
