open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls
open Tapa_cs_floorplan
open Tapa_cs_pipeline
open Tapa_cs_freq
module Pool = Tapa_cs_util.Pool
module Fault = Tapa_cs_network.Fault
module Design_sim = Tapa_cs_sim.Design_sim
module Static_perf = Tapa_cs_analysis.Static_perf
module Diagnostic = Tapa_cs_analysis.Diagnostic

type t = {
  graph : Taskgraph.t;
  cluster : Cluster.t;
  synthesis : Synthesis.report;
  inter : Inter_fpga.t;
  intra : Intra_fpga.t array;
  hbm : Hbm_binding.t array;
  pipeline : Pipelining.t array;
  freq : Freq_model.estimate array;
  freq_mhz : float;
  l1_runtime_s : float;
  l2_runtime_s : float;
  degraded : bool;
  fallbacks : string list;
  static : Static_perf.t;
}

type options = {
  strategy : Partition.strategy;
  threshold : float;
  seed : int;
  explore_hbm : bool;
  pipeline_interconnect : bool;
  lint : bool;
  jobs : int;
  fault_plan : Fault.plan option;
  verify_static : bool;
}

let default_options =
  {
    strategy = Partition.Auto;
    threshold = Constants.utilization_threshold;
    seed = 1;
    explore_hbm = true;
    pipeline_interconnect = true;
    lint = true;
    jobs = Tapa_cs_util.Pool.default_jobs ();
    fault_plan = None;
    verify_static = false;
  }

let ( let* ) = Result.bind

(* Accessors shared by the public API below and the in-compile static
   analysis (which runs before the result record exists), so the two can
   never drift apart. *)
let port_bandwidth_gbps' ~cluster ~graph ~freq_mhz ~hbm ~assignment tid port_index =
  let fpga = assignment.(tid) in
  let board = Cluster.board cluster fpga in
  let bound =
    Hbm_binding.effective_port_bandwidth_gbps board hbm.(fpga) ~task_id:tid ~port_index
  in
  let task = Taskgraph.task graph tid in
  match List.nth_opt task.Task.mem_ports port_index with
  | None -> 0.0
  | Some p ->
    let wire = float_of_int p.Task.width_bits /. 8.0 *. freq_mhz *. 1e6 /. 1e9 in
    Float.min bound wire

let extra_stage_cycles' ~pipeline fid =
  Array.fold_left (fun acc p -> acc + Pipelining.stages_of p fid) 0 pipeline

let compile ?(options = default_options) ?pool ~cluster graph =
  (* One worker pool for every parallel stage of this compile.  A caller
     running many compiles (sweeps, the farm controller) passes its own
     [?pool] to amortize domain spawning; otherwise one is created for
     this compile and torn down after.  [jobs = 1] (or a single-core
     host) keeps the whole pipeline on the calling domain; either way the
     output is bit-identical because every parallel_map assembles its
     results in index order. *)
  let own_pool =
    match pool with
    | Some _ -> None
    | None -> if options.jobs > 1 then Some (Pool.create ~domains:(options.jobs - 1) ()) else None
  in
  let pool = match pool with Some _ -> pool | None -> own_pool in
  Fun.protect ~finally:(fun () -> Option.iter Pool.shutdown own_pool) @@ fun () ->
  (* Step 2: parallel synthesis against the first board model (clusters
     are homogeneous in the paper's testbed). *)
  let board0 = Cluster.board cluster 0 in
  let synthesis = Synthesis.run ~board:board0 ?pool graph in
  (* Step 0 (run once synthesis areas exist): static design lint.  The
     error-severity diagnostics are exactly the defects the later steps
     would fail on anyway — but with a code and a fix hint instead of an
     ILP timeout or a simulator deadlock. *)
  let* () =
    if not options.lint then Ok ()
    else
      match
        Tapa_cs_analysis.Lint.precheck ~threshold:options.threshold ~cluster ~synthesis graph
      with
      | [] -> Ok ()
      | errors -> Error (Tapa_cs_analysis.Diagnostic.render errors)
  in
  (* Step 3: inter-FPGA floorplanning.  A fault plan removes dead devices
     and downed links from the topology before the solve; transient
     solver timeouts are retried a bounded number of times with a
     re-derived (still deterministic) seed before giving up. *)
  let failed_devices, failed_links =
    match options.fault_plan with
    | Some p -> (p.Fault.failed_devices, p.Fault.failed_links)
    | None -> ([], [])
  in
  let run_inter ~seed =
    if failed_devices = [] && failed_links = [] then
      Inter_fpga.run ~strategy:options.strategy ~threshold:options.threshold ~seed ?pool ~cluster
        ~synthesis graph
    else
      Inter_fpga.run_degraded ~strategy:options.strategy ~threshold:options.threshold ~seed ?pool
        ~failed_devices ~failed_links ~cluster ~synthesis graph
  in
  let max_retries = 2 in
  let rec attempt n seed tags =
    match run_inter ~seed with
    | Ok inter -> Ok (inter, List.rev tags)
    | Error Inter_fpga.Solver_timeout when n < max_retries ->
      (* Deterministic reseed: same options -> same retry sequence. *)
      attempt (n + 1) (seed + 1_000_003) (Printf.sprintf "retry(%d)" (n + 1) :: tags)
    | Error e ->
      Error
        (Format.asprintf "inter-FPGA floorplanning failed %a" Diagnostic.pp
           (Tapa_cs_analysis.Lint.floorplan_error e))
  in
  let* inter, retry_tags = attempt 0 options.seed [] in
  let fallbacks = retry_tags @ inter.Inter_fpga.fallbacks in
  let degraded = fallbacks <> [] in
  (* If the inter-FPGA solve only succeeded at a relaxed threshold, the
     per-device floorplans must budget slots at (at least) the same rung —
     a device legitimately holding 80 % of its fabric cannot be split into
     70 %-budget slots. *)
  let intra_threshold = Float.max options.threshold inter.Inter_fpga.threshold_used in
  (* Step 4: communication logic is charged as capacity inside Inter_fpga;
     the cut FIFOs recorded there become AlveoLink streams in the
     simulator. *)
  let k = Cluster.size cluster in
  (* Step 5: intra-FPGA floorplanning per device, cut FIFOs pulling their
     endpoints toward the QSFP slots. *)
  let cut_width = Array.make (Taskgraph.num_tasks graph) 0.0 in
  List.iter
    (fun (f : Fifo.t) ->
      cut_width.(f.src) <- cut_width.(f.src) +. float_of_int f.width_bits;
      cut_width.(f.dst) <- cut_width.(f.dst) +. float_of_int f.width_bits)
    inter.Inter_fpga.cut_fifos;
  (* Steps 5-7 fused into one per-FPGA task: intra floorplan, HBM binding
     exploration, interconnect pipelining (crossings are local to the
     device) and the frequency model all depend only on that device's
     assignment, so each FPGA runs its whole tail of the pipeline on one
     worker.  Results assemble in FPGA index order; on failure the
     lowest-index error is reported — the same one the old sequential
     recursion would have stopped at. *)
  let per_fpga =
    Pool.parallel_map ?pool
      (fun fpga ->
        let board = Cluster.board cluster fpga in
        let tasks =
          List.filter
            (fun tid -> inter.Inter_fpga.assignment.(tid) = fpga)
            (List.init (Taskgraph.num_tasks graph) Fun.id)
        in
        let* placement =
          Intra_fpga.run ~strategy:options.strategy ~threshold:intra_threshold
            ~seed:options.seed ~board ~synthesis ~graph ~tasks
            ~io_pull:(fun tid -> cut_width.(tid))
            ()
        in
        let hbm =
          Hbm_binding.run ~explore:options.explore_hbm ~board ~graph
            ~slot_of:placement.Intra_fpga.slot_of ()
        in
        let pipeline =
          if options.pipeline_interconnect then
            Pipelining.run ~graph ~crossings:placement.Intra_fpga.crossings
          else Pipelining.run ~graph ~crossings:[]
        in
        let freq =
          Freq_model.of_placement ~board ~synthesis ~graph
            ~slot_of:placement.Intra_fpga.slot_of ~pipelined:options.pipeline_interconnect ()
        in
        Ok (placement, hbm, pipeline, freq))
      (Array.init k Fun.id)
  in
  let* staged =
    Array.fold_right
      (fun r acc ->
        let* r = r in
        let* acc = acc in
        Ok (r :: acc))
      per_fpga (Ok [])
  in
  let staged = Array.of_list staged in
  let intra = Array.map (fun (p, _, _, _) -> p) staged in
  let hbm = Array.map (fun (_, h, _, _) -> h) staged in
  let pipeline = Array.map (fun (_, _, p, _) -> p) staged in
  let freq = Array.map (fun (_, _, _, f) -> f) staged in
  let unrouted = Array.exists (fun (e : Freq_model.estimate) -> not e.routed) freq in
  if unrouted then Error "a device placement exceeds physical slot capacity (routing failure)"
  else begin
    let freq_mhz = Array.fold_left (fun acc (e : Freq_model.estimate) -> Float.min acc e.freq_mhz) infinity freq in
    let l2_runtime_s = Array.fold_left (fun acc p -> acc +. Intra_fpga.runtime_s p) 0.0 intra in
    (* Static performance bounds, at the same simulator configuration
       [Flow.sim_config] would build for this compile (design clock on
       every device, bound HBM bandwidth, pipelining stage latency). *)
    let assignment = inter.Inter_fpga.assignment in
    let sim_cfg =
      let cfg =
        Design_sim.make_config ~graph ~assignment ~freq_mhz:(Array.make k freq_mhz) ~cluster
          ~synthesis ()
      in
      {
        cfg with
        Design_sim.port_bandwidth_gbps =
          port_bandwidth_gbps' ~cluster ~graph ~freq_mhz ~hbm ~assignment;
        extra_stage_cycles = extra_stage_cycles' ~pipeline;
      }
    in
    let loss_rate =
      match options.fault_plan with Some p -> p.Fault.loss_rate | None -> 0.0
    in
    let static = Static_perf.analyze ~loss_rate sim_cfg in
    (* Internal testing hook: corrupt the interval so --verify-static has
       a guaranteed violation to catch (the soundness gate uses it). *)
    let static =
      match Sys.getenv_opt "TAPA_CS_INJECT_STATIC_VIOLATION" with
      | None | Some "" | Some "0" -> static
      | Some _ ->
        {
          static with
          Static_perf.latency_lower_s = static.Static_perf.latency_upper_s +. 1.0;
          latency_upper_s = static.Static_perf.latency_upper_s +. 2.0;
        }
    in
    let* () =
      if not options.verify_static then Ok ()
      else begin
        (* Differential check: the simulated latency (loss derating
           applied, halts and stalls out of the static model) must land
           inside the closed-form interval. *)
        let faults = if loss_rate > 0.0 then Fault.make ~loss_rate () else Fault.no_faults in
        match Design_sim.run_outcome ~faults sim_cfg with
        | Design_sim.Completed r | Design_sim.Degraded { result = r; _ } -> (
          match Static_perf.interval_check static ~latency_s:r.Design_sim.latency_s with
          | None -> Ok ()
          | Some d ->
            Error (Format.asprintf "static verification failed %a" Diagnostic.pp d))
        | Design_sim.Failed { fault; _ } ->
          Error
            (Printf.sprintf "static verification failed: simulation did not complete (%s)"
               fault)
      end
    in
    Ok
      {
        graph;
        cluster;
        synthesis;
        inter;
        intra;
        hbm;
        pipeline;
        freq;
        freq_mhz;
        l1_runtime_s = inter.Inter_fpga.stats.runtime_s;
        l2_runtime_s;
        degraded;
        fallbacks;
        static;
      }
  end

type solver_stats = {
  lp_solves : int;
  lp_pivots : int;
  lp_certified : int;
  lp_fallbacks : int;
  bb_nodes : int;
  refinement_moves : int;
  subproblems : int;
  races_exact : int;
  races_anneal : int;
  incumbent_broadcasts : int;
}

(* Aggregated over the inter-FPGA solve and every intra-FPGA bisection
   level.  Deliberately excludes the solution-cache hit/miss counts:
   those depend on what ran earlier in the process (cold vs warm), while
   everything in [t] — including these counters — is bit-identical
   across [jobs] settings and cache states.  Cache observability lives
   in [Partition.cache_stats].  Note the counters describe the solves
   that *produced* the stored results: a cache hit replays the stored
   stats record, so the aggregate is stable by construction. *)
let solver_stats t =
  let add acc (s : Partition.stats) =
    {
      lp_solves = acc.lp_solves + s.lp_solves;
      lp_pivots = acc.lp_pivots + s.lp_pivots;
      lp_certified = acc.lp_certified + s.lp_certified;
      lp_fallbacks = acc.lp_fallbacks + s.lp_fallbacks;
      bb_nodes = acc.bb_nodes + s.bb_nodes;
      refinement_moves = acc.refinement_moves + s.refinement_moves;
      subproblems = acc.subproblems + s.subproblems;
      races_exact = acc.races_exact + s.races_exact;
      races_anneal = acc.races_anneal + s.races_anneal;
      incumbent_broadcasts = acc.incumbent_broadcasts + s.incumbent_broadcasts;
    }
  in
  let zero =
    {
      lp_solves = 0;
      lp_pivots = 0;
      lp_certified = 0;
      lp_fallbacks = 0;
      bb_nodes = 0;
      refinement_moves = 0;
      subproblems = 0;
      races_exact = 0;
      races_anneal = 0;
      incumbent_broadcasts = 0;
    }
  in
  let acc = add zero t.inter.Inter_fpga.stats in
  Array.fold_left
    (fun acc p -> List.fold_left add acc p.Intra_fpga.levels)
    acc t.intra

(* Process-wide fragment-cache counters, re-exported for the CLI and the
   serving layer.  These are deliberately NOT folded into [solver_stats]:
   like the solution-cache hit/miss counts they depend on what ran
   earlier in the process, while [solver_stats] must stay bit-identical
   across cache states. *)
type fragment_stats = Partition.fragment_stats = {
  frag_hits : int;
  frag_misses : int;
  groups_resolved : int;
  frag_entries : int;
  frag_evictions : int;
}

let fragment_stats = Partition.fragment_stats

let fpga_of t tid = t.inter.Inter_fpga.assignment.(tid)

let slot_of t tid =
  let fpga = fpga_of t tid in
  t.intra.(fpga).Intra_fpga.slot_of.(tid)

let port_bandwidth_gbps t tid port_index =
  port_bandwidth_gbps' ~cluster:t.cluster ~graph:t.graph ~freq_mhz:t.freq_mhz ~hbm:t.hbm
    ~assignment:t.inter.Inter_fpga.assignment tid port_index

let extra_stage_cycles t fid = extra_stage_cycles' ~pipeline:t.pipeline fid

let pp_summary fmt t =
  let k = Cluster.size t.cluster in
  Format.fprintf fmt "TAPA-CS design on %d FPGA(s): %.0f MHz, %d cut FIFO(s), %s inter-FPGA traffic@."
    k t.freq_mhz
    (List.length t.inter.Inter_fpga.cut_fifos)
    (Tapa_cs_util.Table.fmt_bytes t.inter.Inter_fpga.traffic_bytes);
  if t.degraded then
    Format.fprintf fmt "  status: Degraded (fallbacks: %s)@." (String.concat ", " t.fallbacks);
  Array.iteri
    (fun i u ->
      Format.fprintf fmt "  FPGA %d: %s utilization, %.0f MHz@." i
        (Tapa_cs_util.Table.fmt_pct u)
        t.freq.(i).Freq_model.freq_mhz)
    t.inter.Inter_fpga.per_fpga_util
