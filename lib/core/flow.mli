(** The three compilation flows compared throughout §5:

    - [vitis] (F1-V): single FPGA, no floorplanning, no interconnect
      pipelining, naive HBM binding — the commercial-HLS baseline;
    - [tapa] (F1-T): single FPGA with AutoBridge-style floorplanning and
      pipelining [35];
    - [tapa_cs] (F2/F3/F4/…): the full multi-FPGA flow of this paper.

    Each flow yields a [design] the simulator can execute; flows fail with
    [Error] when the design cannot be placed/routed, exactly where the
    paper reports routing failures. *)

open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls
open Tapa_cs_sim

type design = {
  label : string;
  graph : Taskgraph.t;
  cluster : Cluster.t;
  synthesis : Synthesis.report;
  assignment : int array;  (** task -> FPGA *)
  freq_mhz : float;
  port_bandwidth_gbps : int -> int -> float;
  extra_stage_cycles : int -> int;
  max_slot_util : float;
  compiled : Compiler.t option;  (** present for the TAPA-CS flow *)
}

val vitis : ?board:(unit -> Board.t) -> Taskgraph.t -> (design, string) Stdlib.result

val tapa :
  ?board:(unit -> Board.t) ->
  ?options:Compiler.options ->
  ?pool:Tapa_cs_util.Pool.t ->
  Taskgraph.t ->
  (design, string) Stdlib.result

val tapa_cs :
  ?options:Compiler.options ->
  ?pool:Tapa_cs_util.Pool.t ->
  cluster:Cluster.t ->
  Taskgraph.t ->
  (design, string) Stdlib.result
(** [pool] shares a caller-owned worker pool across compiles (the
    compile service, sweeps, the farm controller) instead of spawning
    one per compile; it overrides [options.jobs] and is never shut down
    here ({!Compiler.compile}). *)

val sim_config : ?chunks:int -> design -> Design_sim.config
(** The simulator configuration [simulate] runs — exposed so callers can
    drive {!Design_sim} / {!Sim_sweep} directly (engine-mode comparisons,
    sweeps over chunk granularity). *)

val simulate : ?chunks:int -> design -> Design_sim.result

val static_bounds :
  ?chunks:int -> ?loss_rate:float -> design -> Tapa_cs_analysis.Static_perf.t
(** Closed-form bounds for exactly the configuration {!simulate} would
    run ({!Tapa_cs_analysis.Static_perf.analyze}): certified latency
    interval, steady-state II and bottleneck, minimal FIFO depths.
    [loss_rate] (default 0) mirrors a lossy fault plan's link derating. *)

val simulate_outcome :
  ?chunks:int -> ?faults:Tapa_cs_network.Fault.plan -> design -> Design_sim.outcome
(** Fault-injected simulation with a structured status instead of
    exceptions; see {!Design_sim.run_outcome}. *)

val latency_s : ?chunks:int -> design -> float
(** Compile-free convenience: simulate and return end-to-end latency. *)

val simulate_many :
  ?jobs:int ->
  ?chunks:int ->
  ?faults:(design -> Tapa_cs_network.Fault.plan) ->
  ?slo_latency_s:float ->
  design list ->
  (string * Design_sim.outcome) list
(** Simulate a batch of independent designs through the parallel
    {!Design_sim} sweep harness ({!Tapa_cs_sim.Sim_sweep}).  Rows come
    back [(label, outcome)] in input order, byte-identical for every
    [jobs] value; [faults] derives an optional per-design fault plan
    (default: none).

    [slo_latency_s] turns on static pruning: designs whose certified
    lower latency bound already exceeds the SLO are skipped without
    simulating (dropped from the rows; each skip bumps
    {!Sim_sweep.static_pruned}).  The returned rows are byte-identical
    to the matching rows without pruning — a pruned design's simulated
    latency is at least its lower bound, so it could never have met the
    SLO.  Designs whose fault plan injects halts or stalls are out of
    the static model and always simulate. *)
