(** A deliberately defective design exercising the static linter.

    Every defect is seeded on purpose and maps to a diagnostic code
    (see [Tapa_cs_analysis.Diagnostic.registry]):

    - a dead task with no compute, FIFOs or memory ports (TCS002);
    - a bulk-mode FIFO on a feedback cycle (TCS101);
    - an isolated two-task cycle, disconnected from the main dataflow
      and unreachable from any source (TCS001, TCS005, TCS102);
    - a 48-bit FIFO between 32-bit tasks — neither width divides the
      other (TCS202);
    - a >60x producer/consumer rate mismatch (TCS201);
    - a memory port bound to HBM channel 99 (TCS302);
    - enough per-task area that a single U55C cannot host the design
      under the utilization threshold (TCS301 when linted against a
      one-FPGA cluster). *)

val generate : unit -> App.t
(** The defective design, scaled for (and failing on) one FPGA. *)

val expected_codes : string list
(** The distinct diagnostic codes the linter must raise on {!generate},
    sorted — pinned by the test suite. *)
