open Tapa_cs_device
open Tapa_cs_graph

(* Heavy enough that four of them overflow one U55C (1.146M LUTs) at the
   default 70% utilization threshold. *)
let pe_resources = Resource.make ~lut:300_000 ~ff:400_000 ~bram:200 ~dsp:500 ()
let io_resources = Resource.make ~lut:8_000 ~ff:12_000 ~bram:32 ()

let generate () =
  let b = Taskgraph.Builder.create () in
  let elems = 65_536.0 in
  let reader =
    Taskgraph.Builder.add_task b ~name:"read" ~kind:"broken_reader"
      ~compute:(Task.make_compute ~elems ~ii:1.0 ~elem_bits:32 ())
      ~mem_ports:[ Task.mem_port ~dir:Task.Read ~width_bits:32 ~bytes:(elems *. 4.0) () ]
      ~resources:io_resources ()
  in
  (* Feedback pair: acc depends on upd and upd on acc, with the forward
     edge in bulk mode — the consumer wants the whole transfer before
     producing anything, which its own output transitively feeds (TCS101). *)
  let acc =
    Taskgraph.Builder.add_task b ~name:"acc" ~kind:"broken_pe"
      ~compute:(Task.make_compute ~elems ~ii:1.0 ~elem_bits:32 ())
      ~resources:pe_resources ()
  in
  let upd =
    Taskgraph.Builder.add_task b ~name:"upd" ~kind:"broken_pe"
      ~compute:(Task.make_compute ~elems ~ii:1.0 ~elem_bits:32 ())
      ~resources:pe_resources ()
  in
  (* A 64x slower drain than its producer (TCS201), writing through a
     channel id no board exposes (TCS302). *)
  let slow =
    Taskgraph.Builder.add_task b ~name:"drain" ~kind:"broken_drain"
      ~compute:(Task.make_compute ~elems:(64.0 *. elems) ~ii:1.0 ~elem_bits:32 ())
      ~mem_ports:
        [ Task.mem_port ~channel:99 ~dir:Task.Write ~width_bits:32 ~bytes:(elems *. 4.0) () ]
      ~resources:pe_resources ()
  in
  let writer =
    Taskgraph.Builder.add_task b ~name:"write" ~kind:"broken_writer"
      ~compute:(Task.make_compute ~elems ~ii:1.0 ~elem_bits:32 ())
      ~mem_ports:[ Task.mem_port ~dir:Task.Write ~width_bits:32 ~bytes:(elems *. 4.0) () ]
      ~resources:pe_resources ()
  in
  (* Dead logic: no compute, no streams, no memory (TCS002). *)
  let _idle =
    Taskgraph.Builder.add_task b ~name:"idle" ~kind:"broken_idle" ~resources:io_resources ()
  in
  (* An isolated spinner pair: its own component (TCS001), a pure cycle
     with no source feeding it (TCS005 on both tasks, TCS102). *)
  let spin_a =
    Taskgraph.Builder.add_task b ~name:"spin_a" ~kind:"broken_spin"
      ~compute:(Task.make_compute ~elems ~ii:1.0 ~elem_bits:32 ())
      ~resources:io_resources ()
  in
  let spin_b =
    Taskgraph.Builder.add_task b ~name:"spin_b" ~kind:"broken_spin"
      ~compute:(Task.make_compute ~elems ~ii:1.0 ~elem_bits:32 ())
      ~resources:io_resources ()
  in
  ignore (Taskgraph.Builder.add_fifo b ~src:spin_a ~dst:spin_b ~width_bits:32 ~depth:4 ~elems ());
  ignore (Taskgraph.Builder.add_fifo b ~src:spin_b ~dst:spin_a ~width_bits:32 ~depth:4 ~elems ());
  (* Main chain, with a 48-bit link between 32-bit endpoints (TCS202). *)
  ignore (Taskgraph.Builder.add_fifo b ~src:reader ~dst:acc ~width_bits:48 ~depth:16 ~elems ());
  ignore (Taskgraph.Builder.add_fifo b ~src:acc ~dst:upd ~width_bits:32 ~depth:16 ~elems ~mode:Fifo.Bulk ());
  ignore (Taskgraph.Builder.add_fifo b ~src:upd ~dst:acc ~width_bits:32 ~depth:16 ~elems ());
  ignore (Taskgraph.Builder.add_fifo b ~src:upd ~dst:slow ~width_bits:32 ~depth:16 ~elems ());
  ignore (Taskgraph.Builder.add_fifo b ~src:slow ~dst:writer ~width_bits:32 ~depth:16 ~elems ());
  {
    App.name = "broken";
    variant = "seeded-defects";
    fpgas = 1;
    graph = Taskgraph.Builder.build b;
    description = "deliberately defective design: every TCS lint family seeded once";
  }

let expected_codes =
  [ "TCS001"; "TCS002"; "TCS005"; "TCS101"; "TCS102"; "TCS201"; "TCS202"; "TCS301"; "TCS302" ]
