examples/cnn_scaling.ml: App Board Cluster Cnn Compiler Flow Format List Tapa_cs Tapa_cs_apps Tapa_cs_device Tapa_cs_floorplan Tapa_cs_sim Tapa_cs_util
