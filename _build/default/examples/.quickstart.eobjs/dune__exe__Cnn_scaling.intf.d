examples/cnn_scaling.mli:
