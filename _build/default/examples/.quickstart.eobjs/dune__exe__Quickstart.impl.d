examples/quickstart.ml: Array Board Cluster Compiler Flow Format List Printf Tapa_cs Tapa_cs_device Tapa_cs_floorplan Tapa_cs_graph Task Taskgraph
