examples/quickstart.mli:
