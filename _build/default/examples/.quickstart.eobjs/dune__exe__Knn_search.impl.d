examples/knn_search.ml: App Board Cluster Flow Format Knn Tapa_cs Tapa_cs_apps Tapa_cs_device Tapa_cs_util
