examples/autoscaled_design.ml: Autoscale Board Cluster Compiler Emit Flow Format Frontend List Printf Resource Result Tapa_cs Tapa_cs_device Tapa_cs_graph Task Taskgraph
