examples/knn_search.mli:
