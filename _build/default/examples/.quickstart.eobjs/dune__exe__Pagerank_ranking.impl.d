examples/pagerank_ranking.ml: App Array Board Cluster Dataset Flow Format List Pagerank Tapa_cs Tapa_cs_apps Tapa_cs_device
