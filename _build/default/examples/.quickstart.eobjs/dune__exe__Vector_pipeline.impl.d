examples/vector_pipeline.ml: Board Cluster Flow Format List Printf Resource Tapa_cs Tapa_cs_device Tapa_cs_graph Tapa_cs_sim Task Taskgraph Topology
