examples/autoscaled_design.mli:
