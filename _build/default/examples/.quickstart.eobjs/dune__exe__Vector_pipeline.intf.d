examples/vector_pipeline.mli:
