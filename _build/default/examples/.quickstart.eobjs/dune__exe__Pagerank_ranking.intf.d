examples/pagerank_ranking.mli:
