(* End-to-end PageRank example: generate a synthetic web graph, rank it
   in software (the functional reference), then compile and simulate the
   accelerator across 1-4 FPGAs.

     dune exec examples/pagerank_ranking.exe *)

open Tapa_cs
open Tapa_cs_device
open Tapa_cs_apps

(* Software PageRank over the CSR graph: the reference the accelerator
   would have to match. *)
let pagerank_reference (g : Dataset.graph) ~iters ~damping =
  let n = g.Dataset.spec.Dataset.nodes in
  let rank = Array.make n (1.0 /. float_of_int n) in
  let next = Array.make n 0.0 in
  for _ = 1 to iters do
    Array.fill next 0 n ((1.0 -. damping) /. float_of_int n);
    for v = 0 to n - 1 do
      let deg = Dataset.out_degree g v in
      if deg > 0 then begin
        let share = damping *. rank.(v) /. float_of_int deg in
        for e = g.Dataset.offsets.(v) to g.Dataset.offsets.(v + 1) - 1 do
          next.(g.Dataset.targets.(e)) <- next.(g.Dataset.targets.(e)) +. share
        done
      end
      else next.(v) <- next.(v) +. (damping *. rank.(v) /. float_of_int n)
    done;
    Array.blit next 0 rank 0 n
  done;
  rank

let () =
  (* A scaled-down web-Google instance keeps the software reference fast. *)
  let g = Dataset.generate_scaled ~max_edges:100_000 Dataset.web_google in
  Format.printf "synthetic %s: %d nodes, %d edges, max out-degree %d@."
    g.Dataset.spec.Dataset.name g.Dataset.spec.Dataset.nodes g.Dataset.spec.Dataset.edges
    (Dataset.max_out_degree g);
  let rank = pagerank_reference g ~iters:10 ~damping:0.85 in
  let top =
    List.init g.Dataset.spec.Dataset.nodes (fun v -> (rank.(v), v))
    |> List.sort (fun a b -> compare b a)
    |> fun l -> List.filteri (fun i _ -> i < 5) l
  in
  Format.printf "top-5 ranked vertices:@.";
  List.iter (fun (r, v) -> Format.printf "  vertex %-8d rank %.6f@." v r) top;
  (* Now the accelerator, scaled over the cluster. *)
  Format.printf "@.accelerator latency (full-size %s):@." Dataset.web_google.Dataset.name;
  List.iter
    (fun fpgas ->
      let app = Pagerank.generate (Pagerank.make_config ~dataset:Dataset.web_google ~fpgas ()) in
      let result =
        if fpgas = 1 then Flow.tapa app.App.graph
        else Flow.tapa_cs ~cluster:(Cluster.make ~board:Board.u55c fpgas) app.App.graph
      in
      match result with
      | Ok d ->
        Format.printf "  %d FPGA(s): %.0f MHz, %.2f ms (%d PEs)@." fpgas d.Flow.freq_mhz
          (1e3 *. Flow.latency_s d)
          (Pagerank.total_pes (Pagerank.make_config ~dataset:Dataset.web_google ~fpgas ()))
      | Error e -> Format.printf "  %d FPGA(s): %s@." fpgas e)
    [ 1; 2; 3; 4 ]
