(* Quickstart: build a small dataflow design, compile it for a 2-FPGA
   cluster, and inspect the result.

     dune exec examples/quickstart.exe

   The design is a toy histogram pipeline: a reader streams data from HBM,
   four workers bucket it in parallel, a reducer merges the counts. *)

open Tapa_cs
open Tapa_cs_device
open Tapa_cs_graph

let build_design () =
  let b = Taskgraph.Builder.create () in
  (* Each task carries a compute model (how many elements, how many cycles
     per element) and, for memory-facing tasks, HBM ports. *)
  let elems = 16e6 in
  let reader =
    Taskgraph.Builder.add_task b ~name:"reader"
      ~compute:(Task.make_compute ~elems ~ii:1.0 ~elem_bits:256 ())
      ~mem_ports:[ Task.mem_port ~dir:Task.Read ~width_bits:256 ~bytes:(elems *. 4.0) () ]
      ()
  in
  let workers =
    List.init 4 (fun i ->
        Taskgraph.Builder.add_task b
          ~name:(Printf.sprintf "bucket_%d" i)
          ~kind:"bucket" (* same kind => one shared synthesis run *)
          ~compute:(Task.make_compute ~elems:(elems /. 4.0) ~ii:1.0 ~ops_per_elem:3.0 ~lanes:2 ())
          ())
  in
  let reducer =
    Taskgraph.Builder.add_task b ~name:"reducer"
      ~compute:(Task.make_compute ~elems:1e4 ~ii:1.0 ())
      ~mem_ports:[ Task.mem_port ~dir:Task.Write ~width_bits:256 ~bytes:1e5 () ]
      ()
  in
  (* FIFOs are the latency-insensitive cut points TAPA-CS may split at. *)
  List.iter
    (fun w ->
      ignore (Taskgraph.Builder.add_fifo b ~src:reader ~dst:w ~width_bits:64 ~elems:(elems /. 4.0) ());
      ignore (Taskgraph.Builder.add_fifo b ~src:w ~dst:reducer ~width_bits:64 ~elems:2500.0 ()))
    workers;
  Taskgraph.Builder.build b

let () =
  let graph = build_design () in
  Format.printf "design: %a@." Taskgraph.pp_summary graph;
  (* Single-FPGA baselines first. *)
  (match Flow.vitis graph with
  | Ok d -> Format.printf "Vitis-like flow:  %.0f MHz, latency %.3f ms@." d.Flow.freq_mhz (1e3 *. Flow.latency_s d)
  | Error e -> Format.printf "Vitis-like flow failed: %s@." e);
  (match Flow.tapa graph with
  | Ok d -> Format.printf "TAPA flow:        %.0f MHz, latency %.3f ms@." d.Flow.freq_mhz (1e3 *. Flow.latency_s d)
  | Error e -> Format.printf "TAPA flow failed: %s@." e);
  (* Now span two U55C cards connected by 100G Ethernet. *)
  let cluster = Cluster.make ~board:Board.u55c 2 in
  match Flow.tapa_cs ~cluster graph with
  | Error e -> Format.printf "TAPA-CS flow failed: %s@." e
  | Ok d ->
    Format.printf "TAPA-CS (2 FPGA): %.0f MHz, latency %.3f ms@." d.Flow.freq_mhz (1e3 *. Flow.latency_s d);
    (match d.Flow.compiled with
    | Some c ->
      Format.printf "%a" Compiler.pp_summary c;
      Array.iteri
        (fun tid fpga ->
          match Compiler.slot_of c tid with
          | Some slot ->
            Format.printf "  task %-10s -> FPGA %d, slot %d@."
              (Taskgraph.task graph tid).Task.name fpga slot
          | None -> ())
        c.Compiler.inter.Tapa_cs_floorplan.Inter_fpga.assignment
    | None -> ())
