(* The full extended workflow in one example:

   1. profile a data-parallel kernel and ask the autoscaler (the §7
      "future work" feature) how to size it for each cluster size;
   2. author the scaled design through the TAPA-style frontend eDSL;
   3. compile it with the full TAPA-CS flow and simulate;
   4. emit the Vitis-style CAD artifacts (pblock Tcl, v++ connectivity
      config, JSON report) into ./tapa_cs_out/.

     dune exec examples/autoscaled_design.exe *)

open Tapa_cs
open Tapa_cs_device
open Tapa_cs_graph

(* A feature-extraction kernel: for every input record, compute 24 ops
   over 16 bytes of streamed data. *)
let kernel =
  {
    Autoscale.name = "feature-extract";
    elems = 2e8;
    ops_per_elem = 24.0;
    bytes_per_elem = 16.0;
    (* the replication unit is a loader + PE pair, so budget both *)
    pe_resources = Resource.make ~lut:50_000 ~ff:74_000 ~bram:58 ~dsp:96 ();
    pe_lanes = 2;
    exchange_bytes = 4e6;
  }

let build_scaled (plan : Autoscale.plan) =
  let p = Frontend.program () in
  let pes = plan.Autoscale.pes_per_fpga * plan.Autoscale.fpgas in
  let elems_per_pe = kernel.Autoscale.elems /. float_of_int pes in
  let outs =
    List.init pes (fun i ->
        let input = Frontend.stream p ~name:(Printf.sprintf "in_%02d" i) ~width_bits:plan.Autoscale.port_width_bits ~elems:elems_per_pe () in
        let output = Frontend.stream p ~name:(Printf.sprintf "out_%02d" i) ~width_bits:64 ~elems:(elems_per_pe /. 16.0) () in
        Frontend.task p
          ~name:(Printf.sprintf "load_%02d" i)
          ~kind:"loader" ~writes:[ input ]
          ~reads_hbm:
            [ Frontend.hbm ~width_bits:plan.Autoscale.port_width_bits
                ~bytes:(elems_per_pe *. kernel.Autoscale.bytes_per_elem) () ]
          ~compute:(Task.make_compute ~elems:elems_per_pe ~ii:1.0 ())
          ();
        Frontend.task p
          ~name:(Printf.sprintf "pe_%02d" i)
          ~kind:"feature_pe" ~reads:[ input ] ~writes:[ output ]
          ~compute:
            (Task.make_compute ~elems:elems_per_pe ~ii:1.0
               ~ops_per_elem:kernel.Autoscale.ops_per_elem ~lanes:kernel.Autoscale.pe_lanes ())
          ~resources:(Resource.make ~lut:42_000 ~ff:61_000 ~bram:48 ~dsp:96 ())
          ();
        output)
  in
  Frontend.task p ~name:"collect" ~reads:outs
    ~compute:(Task.make_compute ~elems:(kernel.Autoscale.elems /. 16.0) ~ii:1.0 ~lanes:8 ())
    ();
  Frontend.build p

let () =
  let cluster = Cluster.make ~board:Board.u55c 2 in
  Format.printf "autoscaler sweep for kernel %S:@." kernel.Autoscale.name;
  List.iter (fun (_, pl) -> Format.printf "  %a@." Autoscale.pp_plan pl) (Autoscale.sweep ~cluster kernel);
  let plan = Autoscale.plan ~cluster kernel in
  Format.printf "@.chosen: %a@.@." Autoscale.pp_plan plan;
  let graph = build_scaled plan in
  Format.printf "authored design: %a@." Taskgraph.pp_summary graph;
  match Compiler.compile ~cluster graph with
  | Error e -> Format.printf "compile failed: %s@." e
  | Ok c ->
    Format.printf "%a" Compiler.pp_summary c;
    let d = Result.get_ok (Flow.tapa_cs ~cluster graph) in
    Format.printf "simulated latency: %.2f ms (planner predicted %.2f ms)@."
      (1e3 *. Flow.latency_s d)
      (1e3 *. plan.Autoscale.predicted_latency_s);
    Emit.write_all c ~dir:"tapa_cs_out";
    Format.printf "CAD artifacts written to tapa_cs_out/@."
