(* A user-authored design too large for one device: a wide vector-physics
   pipeline (read -> windowed FIR -> nonlinear map -> reduce, replicated
   over 12 parallel lanes).  Demonstrates:

   - the single-FPGA flows failing placement, exactly like the paper's
     large CNN grids (§5.5);
   - TAPA-CS finding a 3-FPGA partition automatically;
   - how frequency and latency respond to the topology choice.

     dune exec examples/vector_pipeline.exe *)

open Tapa_cs
open Tapa_cs_device
open Tapa_cs_graph

let lanes = 12
let samples = 8e6

let build () =
  let b = Taskgraph.Builder.create () in
  let stage_resources = Resource.make ~lut:95_000 ~ff:130_000 ~bram:120 ~dsp:220 () in
  let mk_lane i =
    let rd =
      Taskgraph.Builder.add_task b
        ~name:(Printf.sprintf "rd_%02d" i)
        ~kind:"reader"
        ~compute:(Task.make_compute ~elems:samples ~ii:1.0 ~elem_bits:512 ())
        ~mem_ports:[ Task.mem_port ~dir:Task.Read ~width_bits:512 ~bytes:(samples *. 4.0) () ]
        ()
    in
    let fir =
      Taskgraph.Builder.add_task b
        ~name:(Printf.sprintf "fir_%02d" i)
        ~kind:"fir"
        ~compute:(Task.make_compute ~elems:samples ~ii:1.0 ~ops_per_elem:16.0 ~lanes:4 ~buffer_bytes:32768 ())
        ~resources:stage_resources ()
    in
    let nl =
      Taskgraph.Builder.add_task b
        ~name:(Printf.sprintf "nl_%02d" i)
        ~kind:"nonlinear"
        ~compute:(Task.make_compute ~elems:samples ~ii:1.0 ~ops_per_elem:8.0 ~lanes:4 ())
        ()
    in
    ignore (Taskgraph.Builder.add_fifo b ~src:rd ~dst:fir ~width_bits:512 ~elems:samples ());
    ignore (Taskgraph.Builder.add_fifo b ~src:fir ~dst:nl ~width_bits:512 ~elems:samples ());
    nl
  in
  let outs = List.init lanes mk_lane in
  let reduce =
    Taskgraph.Builder.add_task b ~name:"reduce"
      ~compute:(Task.make_compute ~elems:(samples /. 64.0) ~ii:1.0 ())
      ~mem_ports:[ Task.mem_port ~dir:Task.Write ~width_bits:256 ~bytes:(samples /. 16.0) () ]
      ()
  in
  List.iter
    (fun nl -> ignore (Taskgraph.Builder.add_fifo b ~src:nl ~dst:reduce ~width_bits:64 ~elems:(samples /. 64.0) ()))
    outs;
  Taskgraph.Builder.build b

let () =
  let graph = build () in
  Format.printf "design: %a@." Taskgraph.pp_summary graph;
  (match Flow.tapa graph with
  | Ok d -> Format.printf "unexpected: fits one FPGA at %.0f MHz@." d.Flow.freq_mhz
  | Error e -> Format.printf "single FPGA: %s@." e);
  List.iter
    (fun (name, topo) ->
      let cluster = Cluster.make ~topology:topo ~board:Board.u55c 3 in
      match Flow.tapa_cs ~cluster graph with
      | Ok d ->
        let r = Flow.simulate d in
        Format.printf "3 FPGAs over %-12s %.0f MHz, latency %.2f ms, %d network transfers@." name
          d.Flow.freq_mhz
          (1e3 *. r.Tapa_cs_sim.Design_sim.latency_s)
          (List.length r.Tapa_cs_sim.Design_sim.links)
      | Error e -> Format.printf "3 FPGAs over %-12s failed: %s@." name e)
    [ ("ring", Topology.Ring); ("daisy chain", Topology.Daisy_chain); ("star", Topology.Star) ]
