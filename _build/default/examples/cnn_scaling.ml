(* CNN systolic-array scaling (§5.5): grids beyond 13x8 cannot route on
   one U55C; TAPA-CS splits them column-wise across devices and keeps the
   clock at 300 MHz.

     dune exec examples/cnn_scaling.exe *)

open Tapa_cs
open Tapa_cs_device
open Tapa_cs_apps

let () =
  Format.printf "AutoSA systolic CNN, VGG conv3 (54.5M MACs per input)@.@.";
  List.iter
    (fun (cols, fpgas) ->
      let app = Cnn.generate (Cnn.make_config ~cols ~fpgas ()) in
      Format.printf "13x%-2d grid (%d modules):@." cols (Cnn.module_count (Cnn.make_config ~cols ~fpgas ()));
      (* Does it route on one device? *)
      (match Flow.vitis app.App.graph with
      | Ok d -> Format.printf "  single FPGA (Vitis-like): routes at %.0f MHz@." d.Flow.freq_mhz
      | Error _ -> Format.printf "  single FPGA (Vitis-like): routing FAILS@.");
      if fpgas > 1 then begin
        match Flow.tapa_cs ~cluster:(Cluster.make ~board:Board.u55c fpgas) app.App.graph with
        | Ok d ->
          let r = Flow.simulate d in
          let traffic =
            match d.Flow.compiled with
            | Some c ->
              Tapa_cs_util.Table.fmt_bytes
                c.Compiler.inter.Tapa_cs_floorplan.Inter_fpga.traffic_bytes
            | None -> "?"
          in
          Format.printf "  TAPA-CS on %d FPGAs: %.0f MHz, %.2f ms, %s inter-FPGA traffic@." fpgas
            d.Flow.freq_mhz
            (1e3 *. r.Tapa_cs_sim.Design_sim.latency_s)
            traffic
        | Error e -> Format.printf "  TAPA-CS on %d FPGAs failed: %s@." fpgas e
      end;
      Format.printf "@.")
    [ (4, 1); (8, 1); (12, 2); (16, 3); (20, 4) ]
