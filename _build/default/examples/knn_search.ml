(* The paper's §3 motivating example as a runnable program: the KNN
   accelerator on one FPGA vs two, showing that scale-out pays off even
   when the design *could* route on a single device — because two devices
   expose twice the HBM bandwidth and allow the optimal 512-bit ports.

     dune exec examples/knn_search.exe *)

open Tapa_cs
open Tapa_cs_device
open Tapa_cs_apps

let () =
  let n = 4_000_000 and d = 16 in
  Format.printf "KNN: N=%d points, D=%d dims, K=10 (search space %s)@." n d
    (Tapa_cs_util.Table.fmt_bytes (Knn.search_space_bytes (Knn.make_config ~n_points:n ~dims:d ~fpgas:1 ())));
  let single = Knn.generate (Knn.make_config ~n_points:n ~dims:d ~fpgas:1 ()) in
  let dual = Knn.generate (Knn.make_config ~n_points:n ~dims:d ~fpgas:2 ()) in
  Format.printf "single-FPGA design: %s@." single.App.description;
  Format.printf "dual-FPGA design:   %s@." dual.App.description;
  let show label r =
    match r with
    | Ok des ->
      Format.printf "%-28s %.0f MHz, latency %.2f ms@." label des.Flow.freq_mhz
        (1e3 *. Flow.latency_s des);
      Some (Flow.latency_s des)
    | Error e ->
      Format.printf "%-28s failed: %s@." label e;
      None
  in
  let v = show "Vitis HLS (1 FPGA):" (Flow.vitis single.App.graph) in
  let t = show "TAPA (1 FPGA):" (Flow.tapa single.App.graph) in
  let cs = show "TAPA-CS (2 FPGAs):" (Flow.tapa_cs ~cluster:(Cluster.make ~board:Board.u55c 2) dual.App.graph) in
  (match (v, cs) with
  | Some base, Some two ->
    Format.printf "@.=> 2-FPGA speedup over Vitis: %.2fx (paper reports ~2.0x)@." (base /. two)
  | _ -> ());
  match (t, cs) with
  | Some base, Some two -> Format.printf "=> 2-FPGA speedup over TAPA: %.2fx@." (base /. two)
  | _ -> ()
