(* Tests for the dataflow task-graph IR: builder validation, adjacency,
   SCCs, topological levels, DOT export. *)

open Tapa_cs_graph

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let chain n =
  let b = Taskgraph.Builder.create () in
  let ids = List.init n (fun i -> Taskgraph.Builder.add_task b ~name:(Printf.sprintf "t%d" i) ()) in
  let rec link = function
    | a :: (c :: _ as rest) ->
      ignore (Taskgraph.Builder.add_fifo b ~src:a ~dst:c ~elems:100.0 ());
      link rest
    | _ -> ()
  in
  link ids;
  Taskgraph.Builder.build b

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  let b = Taskgraph.Builder.create () in
  let t () = Taskgraph.Builder.add_task b ~name:(Printf.sprintf "n%d" (Random.int 100000)) () in
  let n0 = t () and n1 = t () and n2 = t () and n3 = t () in
  List.iter
    (fun (s, d) -> ignore (Taskgraph.Builder.add_fifo b ~src:s ~dst:d ()))
    [ (n0, n1); (n0, n2); (n1, n3); (n2, n3) ];
  Taskgraph.Builder.build b

let cyclic () =
  (* 0 -> 1 -> 2 -> 0, plus 2 -> 3 *)
  let b = Taskgraph.Builder.create () in
  let ids = List.init 4 (fun i -> Taskgraph.Builder.add_task b ~name:(Printf.sprintf "c%d" i) ()) in
  let a = List.nth ids in
  List.iter
    (fun (s, d) -> ignore (Taskgraph.Builder.add_fifo b ~src:s ~dst:d ()))
    [ (a 0, a 1); (a 1, a 2); (a 2, a 0); (a 2, a 3) ];
  Taskgraph.Builder.build b

let test_builder_basics () =
  let g = chain 5 in
  check int "tasks" 5 (Taskgraph.num_tasks g);
  check int "fifos" 4 (Taskgraph.num_fifos g);
  check bool "connected" true (Taskgraph.is_connected g);
  check bool "acyclic" true (Taskgraph.is_acyclic g);
  check int "out degree of head" 1 (List.length (Taskgraph.out_fifos g 0));
  check int "in degree of head" 0 (List.length (Taskgraph.in_fifos g 0));
  check bool "find by name" true (Taskgraph.find_task g "t3" <> None);
  check bool "missing name" true (Taskgraph.find_task g "zzz" = None)

let test_builder_validation () =
  let b = Taskgraph.Builder.create () in
  let t0 = Taskgraph.Builder.add_task b ~name:"a" () in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Builder.add_fifo: self-loop FIFOs are not latency-insensitive cut points")
    (fun () -> ignore (Taskgraph.Builder.add_fifo b ~src:t0 ~dst:t0 ()));
  Alcotest.check_raises "unknown endpoint" (Invalid_argument "Builder.add_fifo: unknown endpoint")
    (fun () -> ignore (Taskgraph.Builder.add_fifo b ~src:t0 ~dst:99 ()));
  Alcotest.check_raises "empty graph" (Invalid_argument "Builder.build: empty graph") (fun () ->
      ignore (Taskgraph.Builder.build (Taskgraph.Builder.create ())))

let test_neighbors_dedup () =
  let b = Taskgraph.Builder.create () in
  let a = Taskgraph.Builder.add_task b ~name:"a" () in
  let c = Taskgraph.Builder.add_task b ~name:"b" () in
  ignore (Taskgraph.Builder.add_fifo b ~src:a ~dst:c ());
  ignore (Taskgraph.Builder.add_fifo b ~src:a ~dst:c ());
  ignore (Taskgraph.Builder.add_fifo b ~src:c ~dst:a ());
  let g = Taskgraph.Builder.build b in
  check (Alcotest.list int) "neighbors deduplicated" [ c ] (Taskgraph.neighbors g a)

let test_scc_chain () =
  let g = chain 4 in
  check int "4 singleton SCCs" 4 (List.length (Taskgraph.sccs g))

let test_scc_cycle () =
  let g = cyclic () in
  let comps = Taskgraph.sccs g in
  check int "2 components" 2 (List.length comps);
  let sizes = List.sort compare (List.map List.length comps) in
  check (Alcotest.list int) "sizes" [ 1; 3 ] sizes;
  check bool "cyclic" true (not (Taskgraph.is_acyclic g))

let test_levels_chain () =
  let g = chain 4 in
  check (Alcotest.array int) "levels increase along chain" [| 0; 1; 2; 3 |]
    (Taskgraph.topological_levels g)

let test_levels_diamond () =
  let g = diamond () in
  let l = Taskgraph.topological_levels g in
  check int "source level" 0 l.(0);
  check int "sink level" 2 l.(3);
  check bool "middles at level 1" true (l.(1) = 1 && l.(2) = 1)

let test_levels_cycle_same_level () =
  let g = cyclic () in
  let l = Taskgraph.topological_levels g in
  check bool "SCC members share a level" true (l.(0) = l.(1) && l.(1) = l.(2));
  check bool "downstream strictly above" true (l.(3) > l.(2))

let test_traffic_accounting () =
  let g = chain 3 in
  (* two fifos x 100 elems x 32 bits = 800 bytes *)
  check (Alcotest.float 1e-9) "traffic" 800.0 (Taskgraph.total_fifo_traffic_bytes g);
  let f = Taskgraph.fifo g 0 in
  check (Alcotest.float 1e-9) "per fifo" 400.0 (Fifo.traffic_bytes f)

let test_dot_export () =
  let b = Taskgraph.Builder.create () in
  let a = Taskgraph.Builder.add_task b ~name:"compute" () in
  let m =
    Taskgraph.Builder.add_task b ~name:"mem"
      ~mem_ports:[ Task.mem_port ~dir:Task.Read ~width_bits:256 ~bytes:1e6 () ]
      ()
  in
  ignore (Taskgraph.Builder.add_fifo b ~src:m ~dst:a ~width_bits:256 ());
  let g = Taskgraph.Builder.build b in
  let dot = Taskgraph.to_dot g in
  check bool "has digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  (* memory tasks render as hexagons, like Fig. 9 *)
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check bool "hexagon for mem task" true (contains "hexagon" dot);
  check bool "circle for compute task" true (contains "circle" dot);
  check bool "edge labelled with width" true (contains "256b" dot)

let test_disconnected_graph () =
  let b = Taskgraph.Builder.create () in
  ignore (Taskgraph.Builder.add_task b ~name:"x" ());
  ignore (Taskgraph.Builder.add_task b ~name:"y" ());
  let g = Taskgraph.Builder.build b in
  check bool "disconnected" false (Taskgraph.is_connected g)

(* Property: levels are monotone along every inter-SCC edge of random DAGs. *)
let prop_levels_monotone =
  QCheck.Test.make ~name:"topological levels monotone on random graphs" ~count:100
    (QCheck.int_range 0 10000)
    (fun seed ->
      let rng = Tapa_cs_util.Prng.create seed in
      let n = Tapa_cs_util.Prng.int_in rng 2 30 in
      let b = Taskgraph.Builder.create () in
      let ids = Array.init n (fun i -> Taskgraph.Builder.add_task b ~name:(Printf.sprintf "v%d" i) ()) in
      let ne = Tapa_cs_util.Prng.int_in rng 1 60 in
      for _ = 1 to ne do
        let s = Tapa_cs_util.Prng.int rng n and d = Tapa_cs_util.Prng.int rng n in
        if s <> d then ignore (Taskgraph.Builder.add_fifo b ~src:ids.(s) ~dst:ids.(d) ())
      done;
      let g = Taskgraph.Builder.build b in
      let levels = Taskgraph.topological_levels g in
      let comps = Taskgraph.sccs g in
      let comp_of = Array.make n (-1) in
      List.iteri (fun ci members -> List.iter (fun v -> comp_of.(v) <- ci) members) comps;
      Array.for_all
        (fun (f : Fifo.t) ->
          if comp_of.(f.src) = comp_of.(f.dst) then levels.(f.src) = levels.(f.dst)
          else levels.(f.src) < levels.(f.dst))
        (Taskgraph.fifos g))

(* ------------------------------------------------------------------ *)
(* Mincut (Stoer-Wagner)                                                *)
(* ------------------------------------------------------------------ *)

let test_mincut_path () =
  (* path a-b-c with weights 5, 2: global min cut = 2 *)
  let g = Mincut.create 3 in
  Mincut.add_edge g 0 1 5.0;
  Mincut.add_edge g 1 2 2.0;
  let w, side = Mincut.min_cut g in
  check (Alcotest.float 1e-9) "cut weight" 2.0 w;
  check (Alcotest.float 1e-9) "side is consistent" 2.0 (Mincut.cut_weight g side)

let test_mincut_classic () =
  (* The canonical Stoer-Wagner example graph (8 vertices, min cut 4). *)
  let g = Mincut.create 8 in
  List.iter
    (fun (a, b, w) -> Mincut.add_edge g a b w)
    [ (0, 1, 2.); (0, 4, 3.); (1, 2, 3.); (1, 4, 2.); (1, 5, 2.); (2, 3, 4.); (2, 6, 2.);
      (3, 6, 2.); (3, 7, 2.); (4, 5, 3.); (5, 6, 1.); (6, 7, 3.) ]; 
  let w, _ = Mincut.min_cut g in
  check (Alcotest.float 1e-9) "classic min cut" 4.0 w

let test_mincut_disconnected () =
  let g = Mincut.create 4 in
  Mincut.add_edge g 0 1 7.0;
  Mincut.add_edge g 2 3 9.0;
  let w, _ = Mincut.min_cut g in
  check (Alcotest.float 1e-9) "disconnected cut is 0" 0.0 w

let test_mincut_parallel_edges_accumulate () =
  let g = Mincut.create 2 in
  Mincut.add_edge g 0 1 1.0;
  Mincut.add_edge g 1 0 2.5;
  let w, _ = Mincut.min_cut g in
  check (Alcotest.float 1e-9) "accumulated" 3.5 w

(* Property: on random graphs the Stoer-Wagner result matches brute-force
   enumeration of all bipartitions. *)
let prop_mincut_matches_brute =
  QCheck.Test.make ~name:"stoer-wagner equals brute force" ~count:80 (QCheck.int_range 0 10_000)
    (fun seed ->
      let rng = Tapa_cs_util.Prng.create seed in
      let n = Tapa_cs_util.Prng.int_in rng 2 8 in
      let g = Mincut.create n in
      let nedges = Tapa_cs_util.Prng.int_in rng 1 16 in
      for _ = 1 to nedges do
        let a = Tapa_cs_util.Prng.int rng n and b = Tapa_cs_util.Prng.int rng n in
        if a <> b then Mincut.add_edge g a b (float_of_int (1 + Tapa_cs_util.Prng.int rng 9))
      done;
      let w, side = Mincut.min_cut g in
      let brute = ref infinity in
      for mask = 1 to (1 lsl n) - 2 do
        let s = Array.init n (fun v -> (mask lsr v) land 1 = 1) in
        brute := Float.min !brute (Mincut.cut_weight g s)
      done;
      Float.abs (w -. !brute) < 1e-9 && Float.abs (Mincut.cut_weight g side -. w) < 1e-9)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_levels_monotone; prop_mincut_matches_brute ]

let () =
  Alcotest.run "graph"
    [
      ( "builder",
        [
          Alcotest.test_case "basics" `Quick test_builder_basics;
          Alcotest.test_case "validation" `Quick test_builder_validation;
          Alcotest.test_case "neighbors dedup" `Quick test_neighbors_dedup;
          Alcotest.test_case "disconnected detection" `Quick test_disconnected_graph;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "scc of chain" `Quick test_scc_chain;
          Alcotest.test_case "scc of cycle" `Quick test_scc_cycle;
          Alcotest.test_case "levels of chain" `Quick test_levels_chain;
          Alcotest.test_case "levels of diamond" `Quick test_levels_diamond;
          Alcotest.test_case "levels inside cycles" `Quick test_levels_cycle_same_level;
          Alcotest.test_case "traffic accounting" `Quick test_traffic_accounting;
        ] );
      ("export", [ Alcotest.test_case "dot" `Quick test_dot_export ]);
      ( "mincut",
        [
          Alcotest.test_case "path" `Quick test_mincut_path;
          Alcotest.test_case "classic example" `Quick test_mincut_classic;
          Alcotest.test_case "disconnected" `Quick test_mincut_disconnected;
          Alcotest.test_case "parallel edges" `Quick test_mincut_parallel_edges_accumulate;
        ] );
      ("properties", qsuite);
    ]
