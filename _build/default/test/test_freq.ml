(* Tests for the post-route frequency model. *)

open Tapa_cs_device
open Tapa_cs_graph
open Tapa_cs_hls
open Tapa_cs_freq.Freq_model

let check = Alcotest.check
let bool = Alcotest.bool

let graph_with ~tasks ~lut ~mem =
  let b = Taskgraph.Builder.create () in
  let ids =
    List.init tasks (fun i ->
        Taskgraph.Builder.add_task b ~name:(Printf.sprintf "t%d" i)
          ~mem_ports:
            (if mem then [ Task.mem_port ~dir:Task.Read ~width_bits:512 ~bytes:1e8 () ] else [])
          ~resources:(Resource.make ~lut ~ff:lut ()) ())
  in
  let rec link = function
    | a :: (c :: _ as rest) ->
      ignore (Taskgraph.Builder.add_fifo b ~src:a ~dst:c ~width_bits:512 ~elems:1e6 ());
      link rest
    | _ -> ()
  in
  link ids;
  Taskgraph.Builder.build b

let fixture ~tasks ~lut ~mem =
  let g = graph_with ~tasks ~lut ~mem in
  let board = Board.u55c () in
  let synthesis = Synthesis.run ~board g in
  (g, board, synthesis)

let test_small_design_full_speed () =
  let g, board, synthesis = fixture ~tasks:4 ~lut:5_000 ~mem:false in
  let est = vitis_like ~board ~synthesis g in
  check bool "routed" true est.routed;
  check bool "near board max" true (est.freq_mhz >= 250.0)

let test_congestion_degrades_frequency () =
  let light, board, syn_light = fixture ~tasks:6 ~lut:20_000 ~mem:true in
  let heavy, _, syn_heavy = fixture ~tasks:6 ~lut:150_000 ~mem:true in
  let f_light = vitis_like ~board ~synthesis:syn_light light in
  let f_heavy = vitis_like ~board ~synthesis:syn_heavy heavy in
  check bool "heavier design slower" true (f_heavy.freq_mhz < f_light.freq_mhz);
  check bool "utilization reported" true (f_heavy.max_slot_util > f_light.max_slot_util)

let test_pipelining_improves_over_naive () =
  (* The Vitis-like flow pays wire delay that the pipelined flow does not. *)
  let g, board, synthesis = fixture ~tasks:8 ~lut:80_000 ~mem:true in
  let naive = vitis_like ~board ~synthesis g in
  let slot_of = naive_placement ~board ~synthesis g in
  let pipelined = of_placement ~board ~synthesis ~graph:g ~slot_of ~pipelined:true () in
  check bool "pipelining never hurts" true (pipelined.freq_mhz >= naive.freq_mhz);
  check (Alcotest.float 1e-9) "pipelined designs have no critical wire" 0.0
    pipelined.critical_wire_ns

let test_overcapacity_fails_routing () =
  let g, board, synthesis = fixture ~tasks:8 ~lut:400_000 ~mem:false in
  (* force everything into one slot *)
  let slot_of = Array.make 8 (Some 0) in
  let est = of_placement ~board ~synthesis ~graph:g ~slot_of ~pipelined:true () in
  check bool "unrouted" false est.routed

let test_naive_placement_clusters_mem_tasks () =
  let g, board, synthesis = fixture ~tasks:4 ~lut:10_000 ~mem:true in
  let slot_of = naive_placement ~board ~synthesis g in
  Array.iter
    (fun s ->
      match s with
      | Some s -> check Alcotest.int "memory tasks in HBM row" 0 (board.Board.slots.(s)).Board.row
      | None -> Alcotest.fail "unplaced")
    slot_of

let test_binding_resource_named () =
  let g, board, synthesis = fixture ~tasks:6 ~lut:100_000 ~mem:false in
  let est = vitis_like ~board ~synthesis g in
  check bool "binding resource is a known name" true
    (List.mem est.binding_resource [ "LUT"; "FF"; "BRAM"; "DSP"; "URAM" ])

let test_freq_never_exceeds_board_max () =
  List.iter
    (fun tasks ->
      let g, board, synthesis = fixture ~tasks ~lut:8_000 ~mem:false in
      let est = vitis_like ~board ~synthesis g in
      check bool "capped at board max" true (est.freq_mhz <= board.Board.max_freq_mhz))
    [ 1; 3; 9; 15 ]

let () =
  Alcotest.run "freq"
    [
      ( "freq_model",
        [
          Alcotest.test_case "small design at full speed" `Quick test_small_design_full_speed;
          Alcotest.test_case "congestion degrades" `Quick test_congestion_degrades_frequency;
          Alcotest.test_case "pipelining helps" `Quick test_pipelining_improves_over_naive;
          Alcotest.test_case "routing failure" `Quick test_overcapacity_fails_routing;
          Alcotest.test_case "naive placement crowds HBM" `Quick test_naive_placement_clusters_mem_tasks;
          Alcotest.test_case "binding resource" `Quick test_binding_resource_named;
          Alcotest.test_case "never exceeds board max" `Quick test_freq_never_exceeds_board_max;
        ] );
    ]
