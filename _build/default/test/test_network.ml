(* Tests for the link models and the Table-10 protocol library. *)

open Tapa_cs_device
open Tapa_cs_network

let check = Alcotest.check
let bool = Alcotest.bool
let fl = Alcotest.float 1e-9

let test_alveolink_parameters () =
  let l = Link.alveolink in
  check fl "line rate 12.5 GB/s" 12.5 l.Link.bandwidth_gbytes;
  check fl "one-way 0.5us (1us RTT, §4.4)" 0.5 l.Link.one_way_latency_us

let test_transfer_time_components () =
  let l = Link.alveolink in
  let setup_only = Link.transfer_time_s l 0.0 in
  check fl "zero bytes = setup" (0.5e-6) setup_only;
  let t1 = Link.transfer_time_s l 1e6 and t2 = Link.transfer_time_s l 2e6 in
  check bool "monotone in volume" true (t2 > t1);
  check bool "roughly linear for large transfers" true
    (let ratio = (t2 -. setup_only) /. (t1 -. setup_only) in
     ratio > 1.9 && ratio < 2.1)

let test_packet_size_effect () =
  (* §7: halving packet size increases total time. *)
  let l = Link.alveolink in
  let t64 = Link.transfer_time_s ~packet_bytes:64 l 64e6 in
  let t128 = Link.transfer_time_s ~packet_bytes:128 l 64e6 in
  let t4096 = Link.transfer_time_s ~packet_bytes:4096 l 64e6 in
  check bool "64B slower than 128B" true (t64 > t128);
  check bool "128B slower than 4KB" true (t128 > t4096);
  (* 64MB at 64B packets lands in the §7 millisecond regime *)
  check bool "6-7ms ballpark at 64B" true (t64 > 5e-3 && t64 < 8e-3)

let test_effective_throughput_curve () =
  (* Fig. 8 shape: throughput ramps with transfer size and saturates
     below the 100 Gb/s line rate. *)
  let l = Link.alveolink in
  let sizes = [ 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 ] in
  let tps = List.map (fun s -> Link.effective_throughput_gbps l s) sizes in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  check bool "monotone ramp" true (monotone tps);
  let peak = List.fold_left Float.max 0.0 tps in
  check bool "saturates near 90+ Gbps" true (peak > 85.0 && peak < 100.0);
  check bool "small transfers latency-dominated" true (List.hd tps < 20.0)

let test_pcie_slower () =
  (* §4.4: AlveoLink is 12.5x faster than PCIe Gen3x16. *)
  check bool "PCIe rate = Ethernet/12.5" true
    (Link.alveolink.Link.bandwidth_gbytes /. Link.pcie_p2p.Link.bandwidth_gbytes = 12.5);
  let va = Link.transfer_time_s Link.alveolink 1e9 in
  let vp = Link.transfer_time_s Link.pcie_p2p 1e9 in
  check bool "large transfer ~12x slower on PCIe" true (vp /. va > 10.0 && vp /. va < 15.0)

let test_host_mpi_slowest () =
  let v10g = Link.transfer_time_s Link.host_mpi_10g 1e9 in
  let veth = Link.transfer_time_s Link.alveolink 1e9 in
  check bool "inter-node ~10x slower (§5.7)" true (v10g /. veth > 8.0 && v10g /. veth < 12.0)

let test_table10_rows () =
  check Alcotest.int "7 protocols" 7 (List.length Protocol.all);
  let names = List.map (fun p -> p.Protocol.name) Protocol.all in
  check (Alcotest.list Alcotest.string) "paper order"
    [ "TMD-MPI"; "Galapagos"; "SMI"; "EasyNet"; "ZRLMPI"; "ACCL"; "AlveoLink" ]
    names

let test_alveolink_wins_tradeoff () =
  (* AlveoLink: EasyNet-class throughput at roughly half the overhead. *)
  let a = Protocol.alveolink and e = Protocol.easynet in
  check fl "same 90 Gbps class" a.Protocol.performance_gbps e.Protocol.performance_gbps;
  (match (a.Protocol.resource_overhead_pct, e.Protocol.resource_overhead_pct) with
  | Some ao, Some eo -> check bool "half the overhead" true (ao = 5.0 && eo = 10.0)
  | _ -> Alcotest.fail "overheads must be reported");
  check bool "device orchestrated" true (a.Protocol.orchestration = Protocol.Device);
  check bool "zrlmpi overhead unreported" true (Protocol.zrlmpi.Protocol.resource_overhead_pct = None)

let test_port_overhead_resources () =
  let b = Board.u55c () in
  let ov = Protocol.alveolink_port_overhead b in
  check bool "charges LUT FF BRAM only" true
    (ov.Resource.lut > 0 && ov.Resource.ff > 0 && ov.Resource.bram > 0 && ov.Resource.dsp = 0
   && ov.Resource.uram = 0)

let () =
  Alcotest.run "network"
    [
      ( "link",
        [
          Alcotest.test_case "alveolink parameters" `Quick test_alveolink_parameters;
          Alcotest.test_case "transfer time components" `Quick test_transfer_time_components;
          Alcotest.test_case "packet size (§7)" `Quick test_packet_size_effect;
          Alcotest.test_case "throughput curve (Fig. 8)" `Quick test_effective_throughput_curve;
          Alcotest.test_case "pcie 12.5x slower" `Quick test_pcie_slower;
          Alcotest.test_case "inter-node slowest" `Quick test_host_mpi_slowest;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "table 10 rows" `Quick test_table10_rows;
          Alcotest.test_case "alveolink tradeoff" `Quick test_alveolink_wins_tradeoff;
          Alcotest.test_case "port overhead (§5.6)" `Quick test_port_overhead_resources;
        ] );
    ]
